// Package repro is a from-scratch Go reproduction of "Delay-Cognizant
// Reliable Delivery for Publish/Subscribe Overlay Networks" (ICDCS 2011):
// the DCRD dynamic routing algorithm, the four baselines it is evaluated
// against, the discrete-event network simulator the paper's figures are
// measured on, and a live TCP broker runtime implementing the same
// algorithm over real sockets.
//
// Start with README.md for the tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results. The building blocks:
//
//   - internal/core — DCRD itself: Eq. (1)–(3), Theorem-1 sending lists,
//     Algorithm 1 route setup and Algorithm 2 forwarding.
//   - internal/baseline — R-Tree, D-Tree, ORACLE and Multipath.
//   - internal/des, internal/netsim, internal/topology, internal/pubsub —
//     the simulation substrates.
//   - internal/experiment — per-figure sweeps (Fig. 2–8).
//   - internal/wire, internal/broker — the live middleware.
//
// bench_test.go in this directory regenerates every figure as a Go
// benchmark; cmd/dcrdsim does the same from the command line.
package repro

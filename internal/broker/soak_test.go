package broker

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// The chaos soak is the live analog of Theorem 2: an 8-broker overlay with
// persistency on, driven through compressed churn — per-epoch link failure
// (Pf), per-frame loss, duplication, detected corruption, connection resets
// and one full broker crash/restart — must deliver every published packet
// exactly once per subscriber, and tearing everything down afterwards must
// leak neither goroutines nor pooled engine objects.
//
// Every broker runs with crash-durable custody (Config.DataDir): the relay
// that crashes does so MID-TRAFFIC, with no drain, losing whatever its WAL
// had not yet fsynced (Broker.Crash simulates the power cut). Exactly-once
// must hold anyway — un-fsynced custody was never ACKed so its upstream
// still holds it, and fsynced custody is replayed by the restarted
// incarnation from the same directory (DESIGN.md §16).

const soakTopic = 42

// soakRing is an 8-node ring with cross chords: every node has degree 3, so
// no single broker loss can disconnect the overlay.
func soakRing() [][2]int {
	links := [][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	for i := 0; i < 8; i++ {
		links = append(links, [2]int{i, (i + 1) % 8})
	}
	return links
}

// soakFaults is the compressed churn plan: the paper's Pf=0.2 epoch process
// plus loss, duplication, detected corruption, resets and short stalls.
func soakFaults() chaos.Faults {
	return chaos.Faults{
		PartitionProb: 0.2,
		DropProb:      0.05,
		DupProb:       0.05,
		CorruptProb:   0.002,
		ResetProb:     0.004,
		StallProb:     0.002,
		StallFor:      200 * time.Millisecond,
		Delay:         200 * time.Microsecond,
		DelayJitter:   time.Millisecond,
	}
}

// soakBrokerConfig is the per-broker tuning for chaos tests: compressed
// timers, persistency on, and a lifetime that comfortably outlasts a soak.
// dataDir, when non-empty, turns on crash-durable custody.
func soakBrokerConfig(id int, addr string, neighbors map[int]string, dataDir string) Config {
	return Config{
		DataDir:         dataDir,
		ID:              id,
		Listen:          addr,
		Neighbors:       neighbors,
		PingInterval:    20 * time.Millisecond,
		AdvertInterval:  40 * time.Millisecond,
		DialRetry:       20 * time.Millisecond,
		DialRetryMax:    250 * time.Millisecond,
		AckGuard:        40 * time.Millisecond,
		WriteTimeout:    2 * time.Second,
		MaxLifetime:     60 * time.Second,
		Persistent:      true,
		RetryInterval:   50 * time.Millisecond,
		DefaultDeadline: 30 * time.Second,
		// Pin a multi-shard data plane regardless of the machine's core
		// count: the soak must exercise cross-shard dispatch, per-shard
		// pools and the shard-drain shutdown path.
		Shards: 4,
	}
}

// chaosOverlay is a live overlay whose brokers all listen through one chaos
// network.
type chaosOverlay struct {
	net       *chaos.Network
	brokers   []*Broker
	addrs     []string
	neighbors []map[int]string
	dataDirs  []string // per-broker WAL directories; nil in memory mode
}

// newChaosOverlay builds n brokers on the given adjacency, every listener
// wrapped by cn. A non-empty dataRoot gives every broker its own WAL
// directory beneath it (crash-durable custody); restart reuses the same
// directory, so recovery replays across the crash. Fault injection state
// (SetActive) is the caller's business.
func newChaosOverlay(t *testing.T, cn *chaos.Network, n int, links [][2]int, dataRoot string) *chaosOverlay {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	neighbors := make([]map[int]string, n)
	for i := range neighbors {
		neighbors[i] = make(map[int]string)
	}
	for _, l := range links {
		neighbors[l[0]][l[1]] = addrs[l[1]]
		neighbors[l[1]][l[0]] = addrs[l[0]]
	}
	o := &chaosOverlay{net: cn, addrs: addrs, neighbors: neighbors}
	if dataRoot != "" {
		o.dataDirs = durableDirs(dataRoot, n)
	}
	for i := 0; i < n; i++ {
		b, err := New(soakBrokerConfig(i, addrs[i], neighbors[i], o.dataDir(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.StartListener(cn.Listener(listeners[i], i)); err != nil {
			t.Fatal(err)
		}
		o.brokers = append(o.brokers, b)
	}
	t.Cleanup(func() {
		for _, b := range o.brokers {
			_ = b.Close()
		}
	})
	return o
}

// dataDir returns broker id's WAL directory ("" in memory mode).
func (o *chaosOverlay) dataDir(id int) string {
	if o.dataDirs == nil {
		return ""
	}
	return o.dataDirs[id]
}

// restart brings broker id back after a crash: rebind the same address (the
// neighbors' dial loops know no other), rewrap it in the chaos network and
// replace the dead broker in the slice. In durable mode the same data
// directory is reused, so the WAL's outstanding custody replays.
func (o *chaosOverlay) restart(t *testing.T, id int) {
	t.Helper()
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", o.addrs[id])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", o.addrs[id], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b, err := New(soakBrokerConfig(id, o.addrs[id], o.neighbors[id], o.dataDir(id)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.StartListener(o.net.Listener(ln, id)); err != nil {
		t.Fatal(err)
	}
	o.brokers[id] = b
}

// routesReady reports whether broker b can currently reach every subscriber
// broker for the soak topic.
func routesReady(b *Broker, subs ...int32) func() bool {
	return func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		for _, s := range subs {
			if len(b.sendingListLocked(soakTopic, s)) == 0 {
				return false
			}
		}
		return true
	}
}

// collector counts per-sequence deliveries for one subscriber.
type collector struct {
	mu  sync.Mutex
	got map[uint32]int
}

func newCollector(c *Client) *collector {
	col := &collector{got: make(map[uint32]int)}
	go func() {
		for d := range c.Receive() {
			if len(d.Payload) != 4 {
				continue
			}
			seq := binary.BigEndian.Uint32(d.Payload)
			col.mu.Lock()
			col.got[seq]++
			col.mu.Unlock()
		}
	}()
	return col
}

// have reports whether every sequence in [0, n) arrived at least once.
func (col *collector) have(n uint32) bool {
	col.mu.Lock()
	defer col.mu.Unlock()
	for s := uint32(0); s < n; s++ {
		if col.got[s] == 0 {
			return false
		}
	}
	return true
}

// duplicates returns the sequences delivered more than once.
func (col *collector) duplicates() []uint32 {
	col.mu.Lock()
	defer col.mu.Unlock()
	var d []uint32
	for s, c := range col.got {
		if c > 1 {
			d = append(d, s)
		}
	}
	return d
}

// publishRange publishes sequences [from, to) as 4-byte payloads, paced so
// the overlay sees a stream rather than one burst.
func publishRange(t *testing.T, pub *Client, from, to uint32) {
	t.Helper()
	for s := from; s < to; s++ {
		var payload [4]byte
		binary.BigEndian.PutUint32(payload[:], s)
		if err := pub.Publish(soakTopic, 30*time.Second, payload[:]); err != nil {
			t.Fatalf("publish seq %d: %v", s, err)
		}
		time.Sleep(4 * time.Millisecond)
	}
}

// assertBrokerCrashed crashes b (abrupt node loss: the WAL's un-fsynced
// tail is lost) and asserts the in-process teardown leaked nothing.
func assertBrokerCrashed(t *testing.T, b *Broker) {
	t.Helper()
	if err := b.Crash(); err != nil {
		t.Fatalf("broker %d crash: %v", b.ID(), err)
	}
	if g := b.Goroutines(); g != 0 {
		t.Errorf("broker %d: %d goroutines survived Crash", b.ID(), g)
	}
	works, flights, frames := b.PoolsLive()
	if works != 0 || flights != 0 || frames != 0 {
		t.Errorf("broker %d leaked pooled objects after Crash: works=%d flights=%d frames=%d",
			b.ID(), works, flights, frames)
	}
}

// assertBrokerClean closes b and asserts it leaked nothing.
func assertBrokerClean(t *testing.T, b *Broker) {
	t.Helper()
	if err := b.Close(); err != nil {
		t.Fatalf("broker %d close: %v", b.ID(), err)
	}
	if g := b.Goroutines(); g != 0 {
		t.Errorf("broker %d: %d goroutines survived Close", b.ID(), g)
	}
	works, flights, frames := b.PoolsLive()
	if works != 0 || flights != 0 || frames != 0 {
		t.Errorf("broker %d leaked pooled objects after Close: works=%d flights=%d frames=%d",
			b.ID(), works, flights, frames)
	}
}

func TestChaosSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	perPhase := uint32(25)
	if testing.Short() {
		seeds = seeds[:1]
		perPhase = 12
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed, perPhase)
		})
	}
}

func runChaosSoak(t *testing.T, seed uint64, perPhase uint32) {
	cn := chaos.NewNetwork(chaos.Config{
		Seed:    seed,
		Epoch:   150 * time.Millisecond,
		Default: soakFaults(),
	})
	defer cn.Close()
	cn.SetActive(false) // converge the overlay clean first
	o := newChaosOverlay(t, cn, 8, soakRing(), t.TempDir())

	// Publisher on broker 0, subscribers on brokers 3 and 5; broker 4 (a
	// pure relay adjacent to 0, 3 and 5) is the crash victim.
	subClients := make([]*Client, 0, 2)
	collectors := make([]*collector, 0, 2)
	for _, at := range []int{3, 5} {
		c, err := Dial(o.addrs[at], fmt.Sprintf("sub-%d", at))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Subscribe(soakTopic, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		subClients = append(subClients, c)
		collectors = append(collectors, newCollector(c))
	}
	waitFor(t, 10*time.Second, "routes from broker 0 to both subscriber brokers",
		routesReady(o.brokers[0], 3, 5))
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	cn.SetActive(true) // let the churn begin

	// Phase A: publish through the full overlay under churn, then crash
	// broker 4 MID-TRAFFIC — no drain. Whatever custody it had ACKed but
	// not fsynced is lost with the page cache; whatever it had fsynced is
	// stranded on disk until the restart. Exactly-once must survive both.
	publishRange(t, pub, 0, perPhase)
	assertBrokerCrashed(t, o.brokers[4])
	waitFor(t, 10*time.Second, "broker 0 noticing the crash", func() bool {
		return !o.brokers[0].neighbor(4).connected()
	})

	// Phase B: the overlay routes around the hole while dial loops back off
	// against the dead address.
	publishRange(t, pub, perPhase, 2*perPhase)

	// Restart broker 4 mid-phase-C: neighbors redial, the WAL replays its
	// stranded custody into the fresh engines, and the persisted
	// incarnation keeps its new frame and packet IDs partitioned from every
	// pre-crash ID still inside the peers' dedup horizon.
	o.restart(t, 4)
	publishRange(t, pub, 2*perPhase, 3*perPhase)

	// Heal and require convergence: every packet, every subscriber.
	cn.SetActive(false)
	total := 3 * perPhase
	waitFor(t, 30*time.Second, "full delivery after healing", func() bool {
		return collectors[0].have(total) && collectors[1].have(total)
	})
	for i, col := range collectors {
		if d := col.duplicates(); len(d) != 0 {
			t.Errorf("subscriber %d saw duplicate sequences %v", i, d)
		}
	}

	// All retransmission state must resolve: pooled objects return to zero
	// on every broker while the overlay is still running. The window must
	// cover MaxLifetime: a straggler copy that failed over through the churn
	// can legitimately ride its lifetime out before resolving, and under the
	// race detector everything runs several times slower.
	waitFor(t, 90*time.Second, "engine pools draining on all brokers", func() bool {
		for _, b := range o.brokers {
			if works, flights, frames := b.PoolsLive(); works+flights+frames != 0 {
				return false
			}
		}
		return true
	})

	// The churn must have actually happened for this to certify anything.
	cs := cn.Stats()
	if cs.FramesDropped == 0 || cs.Resets == 0 {
		t.Errorf("implausibly quiet chaos run: %+v", cs)
	}
	var redials, reconnects uint64
	for _, b := range o.brokers {
		st := b.Stats()
		redials += st.Redials
		reconnects += st.Reconnects
	}
	if redials == 0 {
		t.Error("no redials recorded despite a broker crash")
	}
	if reconnects == 0 {
		t.Error("no reconnects recorded despite resets and a restart")
	}
	// The soak ran with relay-plane aggregation negotiated on every link
	// (default config both sides), so the exactly-once result above also
	// certifies coalesced ACKs and batch framing under churn — provided the
	// machinery actually engaged.
	var ackBatches, relaySaved uint64
	for _, b := range o.brokers {
		st := b.Stats()
		ackBatches += st.AckBatches
		relaySaved += st.RelayBytesSaved
	}
	if ackBatches == 0 {
		t.Error("no coalesced ACK batches despite relay batching enabled overlay-wide")
	}
	if relaySaved == 0 {
		t.Error("no relay bytes saved despite relay batching enabled overlay-wide")
	}

	// Likewise the link-state control plane ran overlay-wide through the
	// same churn: every broker must have gossiped, rebuilt tables from the
	// gossip, and kept the data plane correct while doing it.
	for i, b := range o.brokers {
		st := b.Stats()
		if !st.Ctrl.Enabled {
			t.Errorf("broker %d: control plane disabled during soak", i)
			continue
		}
		if st.Ctrl.LinkStatesSent == 0 || st.Ctrl.LinkStatesRecv == 0 {
			t.Errorf("broker %d: no link-state gossip (sent=%d recv=%d)",
				i, st.Ctrl.LinkStatesSent, st.Ctrl.LinkStatesRecv)
		}
		if st.Ctrl.Rebuilds == 0 || st.Ctrl.TablesBuilt == 0 {
			t.Errorf("broker %d: control plane never rebuilt (rebuilds=%d tables=%d)",
				i, st.Ctrl.Rebuilds, st.Ctrl.TablesBuilt)
		}
		if len(st.Links) == 0 {
			t.Errorf("broker %d: empty link estimate table after soak", i)
		}
	}

	// Durable custody ran overlay-wide: every broker journaled, and the
	// restarted broker recovered from the crash victim's directory.
	for i, b := range o.brokers {
		st := b.Stats().Wal
		if !st.Enabled {
			t.Errorf("broker %d: WAL disabled during a durable soak", i)
			continue
		}
		if st.Appends == 0 || st.Fsyncs == 0 {
			t.Errorf("broker %d: no WAL activity (appends=%d fsyncs=%d)", i, st.Appends, st.Fsyncs)
		}
	}

	for _, c := range subClients {
		_ = c.Close()
	}
	_ = pub.Close()
	for _, b := range o.brokers {
		assertBrokerClean(t, b)
	}
}

// TestCloseUnderChaosTraffic slams Close on every broker while publishers
// are mid-stream and the chaos layer is resetting connections: no panic, no
// deadlock, no leaked goroutines or pooled objects.
func TestCloseUnderChaosTraffic(t *testing.T) {
	cn := chaos.NewNetwork(chaos.Config{
		Seed:  7,
		Epoch: 100 * time.Millisecond,
		Default: chaos.Faults{
			DropProb:  0.1,
			ResetProb: 0.02,
			DupProb:   0.05,
		},
	})
	defer cn.Close()
	// Memory-custody mode on purpose: this test certifies the legacy
	// teardown path stays clean without a WAL in the picture.
	o := newChaosOverlay(t, cn, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "")

	sub, err := Dial(o.addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(soakTopic, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sub.Receive() {
		}
	}()
	waitFor(t, 10*time.Second, "route 0→2", routesReady(o.brokers[0], 2))

	// Two publishers hammer broker 0 until their connections die under them.
	var pubs sync.WaitGroup
	for p := 0; p < 2; p++ {
		c, err := Dial(o.addrs[0], fmt.Sprintf("pub-%d", p))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		pubs.Add(1)
		go func(c *Client) {
			defer pubs.Done()
			var payload [4]byte
			for s := uint32(0); ; s++ {
				binary.BigEndian.PutUint32(payload[:], s)
				if err := c.Publish(soakTopic, 10*time.Second, payload[:]); err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(300 * time.Millisecond) // let traffic and resets build up

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		var wg sync.WaitGroup
		for _, b := range o.brokers {
			wg.Add(1)
			go func(b *Broker) {
				defer wg.Done()
				_ = b.Close()
			}(b)
		}
		wg.Wait()
	}()
	select {
	case <-closed:
	case <-time.After(20 * time.Second):
		t.Fatal("Close deadlocked under chaos traffic")
	}
	pubs.Wait()
	for _, b := range o.brokers {
		if g := b.Goroutines(); g != 0 {
			t.Errorf("broker %d: %d goroutines survived Close", b.ID(), g)
		}
		works, flights, frames := b.PoolsLive()
		if works != 0 || flights != 0 || frames != 0 {
			t.Errorf("broker %d leaked pooled objects: works=%d flights=%d frames=%d",
				b.ID(), works, flights, frames)
		}
	}
	// Shard-aware shutdown ordering: Close waits for every shard to drain
	// its mailbox and shut its engine down before tearing connections apart,
	// so once PoolsLive reads zero it must STAY zero — no straggling
	// in-flight work may resurrect a pooled object after the read.
	time.Sleep(200 * time.Millisecond)
	for _, b := range o.brokers {
		works, flights, frames := b.PoolsLive()
		if works != 0 || flights != 0 || frames != 0 {
			t.Errorf("broker %d: pooled objects resurrected after Close: works=%d flights=%d frames=%d",
				b.ID(), works, flights, frames)
		}
	}
}

package broker

import (
	"math/bits"
	"time"

	"repro/internal/wire"
)

// The massive-subscriber edge tier: many logical subscribers share one TCP
// connection (a "session", opened by wire.SessionHello) and the broker's
// subscription state is aggregated per topic instead of per subscriber.
//
// Control plane (under b.mu): b.topics is the per-topic ledger — legacy
// per-connection subscribers keyed by conn, plus per-session subscriber-ID
// bitsets. Mutations mark their topic dirty; the data plane's immutable
// subsSnapshot is rebuilt incrementally (only dirty topics re-materialize)
// either synchronously (legacy subscribe, disconnects — rare, preserves the
// historical immediate visibility) or by the coalescing flusher goroutine
// (session churn — a registration burst of 100k SessionSubs publishes a
// handful of snapshots, not 100k).
//
// Data plane: shard delivery flush looks the packet's topic up in the
// snapshot and encodes each payload once per legacy subscriber plus once
// per (topic, session) — a MuxDeliver carrying the varint subscriber-ID
// list — instead of once per logical subscriber. The payload []byte and the
// snapshot's subscriber-ID slices are shared, never copied per delivery:
// both are immutable once published (copy-on-write snapshot, stable payload
// allocation), so every queued wire message may alias them.

const (
	// maxSessionSubID caps client-chosen subscriber IDs so a hostile
	// session cannot force a multi-gigabyte bitset allocation; 2^20 IDs
	// bounds one session's ledger at 128 KiB of bitset.
	maxSessionSubID = 1 << 20
	// subsFlushInterval is the session-churn coalescing window: dirty
	// topics wait at most this long before the next snapshot publishes.
	// Legacy subscribes and disconnects still flush synchronously.
	subsFlushInterval = 5 * time.Millisecond
)

// bitset is a growable set of small unsigned integers — the per-(topic,
// session) subscriber-ID ledger.
type bitset []uint64

// set inserts i, growing as needed, and reports whether it was newly set.
func (s *bitset) set(i uint32) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	for int(w) >= len(*s) {
		*s = append(*s, 0)
	}
	if (*s)[w]&m != 0 {
		return false
	}
	(*s)[w] |= m
	return true
}

// clear removes i and reports whether it was set.
func (s bitset) clear(i uint32) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	if int(w) >= len(s) || s[w]&m == 0 {
		return false
	}
	s[w] &^= m
	return true
}

// appendIDs appends the set members to dst in ascending order.
func (s bitset) appendIDs(dst []uint32) []uint32 {
	for w, word := range s {
		base := uint32(w) << 6
		for word != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// topicSubs is the mutable per-topic subscription ledger (under b.mu).
type topicSubs struct {
	// legacy[conn] = deadline: one logical subscriber per connection, the
	// pre-session protocol.
	legacy map[*clientConn]time.Duration
	// sessions[conn] = that session's subscriber-ID bitset for this topic.
	sessions map[*clientConn]*sessionTopicSubs
}

// sessionTopicSubs is one session's membership in one topic.
type sessionTopicSubs struct {
	bits  bitset
	count int
	// deadline is the strictest ask is not needed — Algorithm 1 admits on
	// the *loosest* requirement per topic (max), so only the max survives
	// here; it is recomputed only when the session leaves the topic.
	deadline time.Duration
}

// occupied reports whether the topic still has any logical subscriber.
func (ts *topicSubs) occupied() bool {
	return ts != nil && (len(ts.legacy) > 0 || len(ts.sessions) > 0)
}

// maxDeadline is the loosest QoS requirement across the topic's
// subscribers (Algorithm 1 pins the destination deadline to it).
func (ts *topicSubs) maxDeadline() time.Duration {
	var d time.Duration
	for _, v := range ts.legacy {
		if v > d {
			d = v
		}
	}
	for _, st := range ts.sessions {
		if st.deadline > d {
			d = st.deadline
		}
	}
	return d
}

// topicLedger is the immutable per-topic delivery view inside a
// subsSnapshot: the legacy connections plus one materialized, sorted
// subscriber-ID slice per session. Nothing in it is mutated after publish,
// so queued deliveries may alias the slices freely.
type topicLedger struct {
	legacy   []*clientConn
	sessions []sessionDelivery
	// subs is the logical subscriber count (legacy conns + session IDs).
	subs int
}

// sessionDelivery is one (topic, session) aggregation target.
type sessionDelivery struct {
	c      *clientConn
	subIDs []uint32
}

// subscribers reports the ledger's logical subscriber count (nil-safe).
func (l *topicLedger) subscribers() int {
	if l == nil {
		return 0
	}
	return l.subs
}

// localLedger returns the topic's delivery ledger from the current
// snapshot (lock-free), or nil when the topic has no local subscribers.
func (b *Broker) localLedger(topic int32) *topicLedger {
	return b.subsSnap.Load().byTopic[topic]
}

// markSubsDirtyLocked queues a topic for the next snapshot rebuild.
// Caller holds b.mu.
func (b *Broker) markSubsDirtyLocked(topic int32) {
	b.dirtySubs[topic] = struct{}{}
}

// flushSubsLocked publishes a fresh subsSnapshot if any topic is dirty,
// rebuilding only the dirty topics' ledgers (clean topics keep their
// already-immutable ledger pointers). It reports whether anything changed.
// Caller holds b.mu.
func (b *Broker) flushSubsLocked() bool {
	if len(b.dirtySubs) == 0 {
		return false
	}
	old := b.subsSnap.Load()
	byTopic := make(map[int32]*topicLedger, len(old.byTopic)+len(b.dirtySubs))
	for topic, led := range old.byTopic {
		if _, dirty := b.dirtySubs[topic]; !dirty {
			byTopic[topic] = led
		}
	}
	for topic := range b.dirtySubs {
		if led := b.buildLedgerLocked(topic); led != nil {
			byTopic[topic] = led
		}
		delete(b.dirtySubs, topic)
	}
	b.subsSnap.Store(&subsSnapshot{byTopic: byTopic})
	return true
}

// buildLedgerLocked materializes one topic's immutable delivery ledger, or
// nil when the topic has no subscribers. Caller holds b.mu.
func (b *Broker) buildLedgerLocked(topic int32) *topicLedger {
	ts := b.topics[topic]
	if !ts.occupied() {
		return nil
	}
	led := &topicLedger{}
	if n := len(ts.legacy); n > 0 {
		led.legacy = make([]*clientConn, 0, n)
		for c := range ts.legacy {
			led.legacy = append(led.legacy, c)
		}
		led.subs += n
	}
	if n := len(ts.sessions); n > 0 {
		led.sessions = make([]sessionDelivery, 0, n)
		for c, st := range ts.sessions {
			ids := st.bits.appendIDs(make([]uint32, 0, st.count))
			led.sessions = append(led.sessions, sessionDelivery{c: c, subIDs: ids})
			led.subs += len(ids)
		}
	}
	return led
}

// kickSubsFlusher nudges the coalescing flusher (never blocks).
func (b *Broker) kickSubsFlusher() {
	select {
	case b.subsKick <- struct{}{}:
	default:
	}
}

// subsFlusher is the session-churn coalescer: each kick waits one
// subsFlushInterval (letting a subscription burst accumulate), then
// publishes the snapshot and re-runs Algorithm 1 once for the whole batch.
func (b *Broker) subsFlusher() {
	for {
		select {
		case <-b.done:
			return
		case <-b.subsKick:
		}
		if !sleepUnlessDone(b.done, subsFlushInterval) {
			return
		}
		b.mu.Lock()
		changed := b.flushSubsLocked()
		b.mu.Unlock()
		if changed {
			b.recomputeAndAdvertise(false)
		}
	}
}

// sessionHello upgrades a client connection to a multiplexed session.
func (b *Broker) sessionHello(c *clientConn, m *wire.SessionHello) {
	b.mu.Lock()
	promoted := !c.mux
	c.mux = true
	b.mu.Unlock()
	if promoted {
		b.sessionsGauge.Add(1)
		b.logf("client %q opened a mux session (%d subscribers expected)", c.name, m.Subscribers)
	}
}

// sessionSub registers one session-local logical subscriber on a topic.
// The snapshot publish is deferred to the coalescing flusher.
func (b *Broker) sessionSub(c *clientConn, m *wire.SessionSub) {
	if m.SubID >= maxSessionSubID {
		b.logf("client %q: subscriber ID %d exceeds cap %d, ignoring", c.name, m.SubID, maxSessionSubID)
		return
	}
	deadline := m.Deadline
	if deadline <= 0 {
		deadline = b.cfg.DefaultDeadline
	}
	b.mu.Lock()
	if !c.mux {
		// A SessionSub on a connection that never sent SessionHello still
		// promotes it: the frame itself is an unambiguous opt-in.
		c.mux = true
		b.sessionsGauge.Add(1)
	}
	ts := b.topics[m.Topic]
	if ts == nil {
		ts = &topicSubs{}
		b.topics[m.Topic] = ts
	}
	if ts.sessions == nil {
		ts.sessions = make(map[*clientConn]*sessionTopicSubs)
	}
	st := ts.sessions[c]
	if st == nil {
		st = &sessionTopicSubs{}
		ts.sessions[c] = st
	}
	if st.bits.set(m.SubID) {
		st.count++
		b.subscriptionsGauge.Add(1)
	}
	if deadline > st.deadline {
		st.deadline = deadline
	}
	b.markSubsDirtyLocked(m.Topic)
	b.mu.Unlock()
	b.kickSubsFlusher()
}

// sessionUnsub removes one logical subscriber from a topic.
func (b *Broker) sessionUnsub(c *clientConn, m *wire.SessionUnsub) {
	if m.SubID >= maxSessionSubID {
		return
	}
	b.mu.Lock()
	ts := b.topics[m.Topic]
	var st *sessionTopicSubs
	if ts != nil {
		st = ts.sessions[c]
	}
	if st != nil && st.bits.clear(m.SubID) {
		st.count--
		b.subscriptionsGauge.Add(-1)
		if st.count == 0 {
			delete(ts.sessions, c)
		}
		if !ts.occupied() {
			delete(b.topics, m.Topic)
		}
		b.markSubsDirtyLocked(m.Topic)
	}
	b.mu.Unlock()
	b.kickSubsFlusher()
}

// dropClientSubsLocked removes every subscription a departing connection
// holds — legacy and session alike — marking the affected topics dirty and
// maintaining the edge gauges. Caller holds b.mu and flushes afterwards.
func (b *Broker) dropClientSubsLocked(c *clientConn) {
	for topic, ts := range b.topics {
		if _, ok := ts.legacy[c]; ok {
			delete(ts.legacy, c)
			b.subscriptionsGauge.Add(-1)
			b.markSubsDirtyLocked(topic)
		}
		if st, ok := ts.sessions[c]; ok {
			delete(ts.sessions, c)
			b.subscriptionsGauge.Add(-int64(st.count))
			b.markSubsDirtyLocked(topic)
		}
		if !ts.occupied() {
			delete(b.topics, topic)
		}
	}
	if c.mux {
		c.mux = false
		b.sessionsGauge.Add(-1)
	}
}

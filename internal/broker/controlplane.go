package broker

// The live Algorithm-1 control plane: the second shell over the
// transport-agnostic engine in internal/algo1 (the DES router in
// internal/core is the first).
//
// Every broker measures its own links from real traffic — alpha from ping
// and ACK round trips, gamma from hop-by-hop ACK outcomes, with a low-rate
// PROBE exchange covering links no data currently crosses — and floods the
// measured record set to its neighbors as a wire.LinkState frame whenever
// an estimate moves. Floods carry an origin-local, strictly increasing
// epoch; receivers drop stale replays, re-flood newer records to their
// other capable neighbors, and fold the records into a link-state database
// (linkStateDB) that implements algo1.Deps. Applying a flood diffs it
// against the origin's previous record set, so the deltas handed to the
// incremental rebuild driver are 1:1 with what the gossip actually
// changed: a quiet control epoch is a pointer-identity no-op, and a link
// death re-sorts the affected Theorem-1 sending lists within about one
// LinkStateInterval of the flood arriving.
//
// The resulting sending lists are published copy-on-write (ctrlSnapshot)
// and consulted by the data plane ahead of the advert-plane lists
// (shardShell.SendingList); destination membership (which brokers
// subscribe to a topic) stays advert-driven, so a mixed overlay where some
// brokers never advertise wire.CapLinkState keeps routing exactly as
// before on the legacy links.

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo1"
	"repro/internal/topology"
	"repro/internal/wire"
)

const (
	// ctrlMaxNodeID bounds broker IDs accepted from gossip. The frame-ID
	// encoding already caps overlay IDs at 16 bits; enforcing the same
	// bound here keeps a hostile flood from inflating the overlay graph.
	ctrlMaxNodeID = 1 << 16
	// ctrlChangeLogMax bounds the database's per-version changed-link log;
	// a driver further behind than the log is handed every known link
	// instead (a sound over-approximation).
	ctrlChangeLogMax = 4096
	// ctrlAlphaTolerance / ctrlGammaTolerance are how far a local estimate
	// must move before the broker re-floods it (mirrors advertTolerance).
	ctrlAlphaTolerance = time.Millisecond
	ctrlGammaTolerance = 0.01
	// ctrlRefreshEvery re-floods unchanged local estimates every N control
	// intervals anyway, repairing floods lost to link churn.
	ctrlRefreshEvery = 10
	// maxDataSamples bounds the per-link map of outbound frame send times
	// kept for ACK-derived alpha sampling.
	maxDataSamples = 32
)

// ctrlLink is one directed link estimate as gossip reported it.
type ctrlLink struct {
	alpha time.Duration
	gamma float64
}

// ctrlOrigin is one broker's latest flooded record set.
type ctrlOrigin struct {
	epoch uint64
	links map[int32]ctrlLink
}

// linkStateDB is the gossip-fed monitoring substrate: each origin's latest
// record set under its flood epoch, plus a bounded changed-link log keyed
// by an estimate version that advances only when an applied flood actually
// moved an estimate. It implements algo1.Deps for the rebuild driver.
//
// A crashed broker's own records linger (nobody floods on its behalf), but
// they are harmless: reaching it requires a live inbound link, and its
// neighbors withdraw those from their own record sets as soon as the TCP
// connection drops.
type linkStateDB struct {
	mu      sync.Mutex
	origins map[int32]*ctrlOrigin
	version uint64
	// topoVer advances when the link or node SET changes (not mere
	// estimate drift) — the driver's graph must be rebuilt then.
	topoVer uint64
	// changes[k] holds the links whose estimates changed moving the
	// version from logBase+k to logBase+k+1.
	changes [][][2]int
	logBase uint64
}

func newLinkStateDB() *linkStateDB {
	return &linkStateDB{origins: make(map[int32]*ctrlOrigin)}
}

// apply folds one flood into the database. newer reports whether the epoch
// advanced (the flood should be re-flooded); changed whether any estimate
// actually moved (the driver has table work).
func (db *linkStateDB) apply(origin int32, epoch uint64, recs []wire.LinkRecord) (newer, changed bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	os := db.origins[origin]
	if os != nil && epoch <= os.epoch {
		return false, false
	}
	if os == nil {
		os = &ctrlOrigin{links: make(map[int32]ctrlLink)}
		db.origins[origin] = os
	}
	os.epoch = epoch
	next := make(map[int32]ctrlLink, len(recs))
	for _, r := range recs {
		if r.Gamma <= 0 {
			continue // an explicit withdrawal: simply absent from the new set
		}
		next[r.To] = ctrlLink{alpha: r.Alpha, gamma: r.Gamma}
	}
	var delta [][2]int
	topo := false
	for to, nl := range next {
		ol, had := os.links[to]
		if !had {
			topo = true
		}
		if !had || ol != nl {
			delta = append(delta, [2]int{int(origin), int(to)})
		}
	}
	for to := range os.links {
		if _, still := next[to]; !still {
			delta = append(delta, [2]int{int(origin), int(to)})
			topo = true
		}
	}
	os.links = next
	if topo {
		db.topoVer++
	}
	if len(delta) == 0 {
		return true, false
	}
	db.changes = append(db.changes, delta)
	db.version++
	if len(db.changes) > ctrlChangeLogMax {
		drop := len(db.changes) - ctrlChangeLogMax
		db.changes = append(db.changes[:0], db.changes[drop:]...)
		db.logBase += uint64(drop)
	}
	return true, true
}

// topoVersion returns the current topology-change counter.
func (db *linkStateDB) topoVersion() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.topoVer
}

// buildGraph materializes the overlay graph the database currently
// describes: one node per broker ID up to the highest seen, one undirected
// edge per link either endpoint reports. Edge delays are cosmetic (the
// rebuild snapshot reads estimates through LinkEstimate).
func (db *linkStateDB) buildGraph() *topology.Graph {
	db.mu.Lock()
	defer db.mu.Unlock()
	maxID := -1
	for o, os := range db.origins {
		for to := range os.links {
			if int(o) > maxID {
				maxID = int(o)
			}
			if int(to) > maxID {
				maxID = int(to)
			}
		}
	}
	g := topology.NewGraph(maxID + 1)
	for o, os := range db.origins {
		for to, l := range os.links {
			if o == to || g.HasLink(int(o), int(to)) {
				continue
			}
			_ = g.AddLink(int(o), int(to), l.alpha)
		}
	}
	return g
}

// EstimateVersion implements algo1.Deps.
func (db *linkStateDB) EstimateVersion() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// AppendChangedLinks implements algo1.Deps: the logged deltas for versions
// (from, to], or every known link when the log no longer reaches back far
// enough.
func (db *linkStateDB) AppendChangedLinks(from, to uint64, dst [][2]int) [][2]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if from < db.logBase {
		for o, os := range db.origins {
			for t := range os.links {
				dst = append(dst, [2]int{int(o), int(t)})
			}
		}
		return dst
	}
	for v := from; v < to && v-db.logBase < uint64(len(db.changes)); v++ {
		dst = append(dst, db.changes[v-db.logBase]...)
	}
	return dst
}

// LinkEstimate implements algo1.Deps: the directed estimate the link's
// origin last flooded.
func (db *linkStateDB) LinkEstimate(u, v int) (time.Duration, float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	os := db.origins[int32(u)]
	if os == nil {
		return 0, 0, false
	}
	l, ok := os.links[int32(v)]
	if !ok {
		return 0, 0, false
	}
	return l.alpha, l.gamma, true
}

// linkStats snapshots the database for monitoring, sorted by (from, to).
func (db *linkStateDB) linkStats() []wire.LinkStat {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []wire.LinkStat
	for o, os := range db.origins {
		for to, l := range os.links {
			out = append(out, wire.LinkStat{
				From: o, To: to, Alpha: l.alpha, Gamma: l.gamma, Epoch: os.epoch,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// snapshotFloods renders every origin's current record set as LinkState
// frames — the full-database sync sent to a capable neighbor on attach so
// a restarted broker converges without waiting out every origin's next
// refresh.
func (db *linkStateDB) snapshotFloods() []*wire.LinkState {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*wire.LinkState, 0, len(db.origins))
	for o, os := range db.origins {
		ls := &wire.LinkState{Origin: o, Epoch: os.epoch, Links: make([]wire.LinkRecord, 0, len(os.links))}
		for to, l := range os.links {
			ls.Links = append(ls.Links, wire.LinkRecord{To: to, Alpha: l.alpha, Gamma: l.gamma})
		}
		slices.SortFunc(ls.Links, func(a, b wire.LinkRecord) int { return int(a.To) - int(b.To) })
		out = append(out, ls)
	}
	return out
}

// ctrlSnapshot is the data plane's copy-on-write view of the control
// plane's Theorem-1 sending lists; the contained slices are table-owned
// and never mutated after publication.
type ctrlSnapshot struct {
	lists map[routeKey][]int
}

// ctrlPlane owns the broker's gossip-fed control state: the link-state
// database, the incremental rebuild driver and the flood/probe schedule.
// All mutable non-atomic state is confined to the control goroutine
// (loop); other goroutines interact through the database's own lock, the
// kick channel and the atomic counters.
type ctrlPlane struct {
	b    *Broker
	db   *linkStateDB
	drv  *algo1.Driver
	kick chan struct{}

	// epoch is this broker's own flood epoch: wall-clock seeded so a
	// restarted broker's floods always outrank its previous incarnation's,
	// then incremented per flood.
	epoch      uint64
	lastFlood  []wire.LinkRecord
	sinceFlood int
	topoVer    uint64 // db.topoVer the driver's graph currently reflects
	probeTok   uint64 // probe token allocator (control goroutine only)
	budgets    map[time.Duration][]time.Duration

	// Counters mirrored for Stats/statsReply (read from any goroutine).
	sent, recv, stale          atomic.Uint64
	probes, probeReplies       atomic.Uint64
	epochA, versionA           atomic.Uint64
	rebuildsA, noopsA, tablesA atomic.Uint64
}

func newCtrlPlane(b *Broker) *ctrlPlane {
	db := newLinkStateDB()
	return &ctrlPlane{
		b:       b,
		db:      db,
		drv:     algo1.NewDriver(topology.NewGraph(0), db, algo1.DriverOptions{Build: algo1.BuildOptions{M: b.cfg.M}}),
		kick:    make(chan struct{}, 1),
		epoch:   uint64(time.Now().UnixNano()),
		budgets: make(map[time.Duration][]time.Duration),
	}
}

// kickCtrl nudges the control loop to run a step ahead of its ticker —
// after gossip changed an estimate, a capable peer attached, or a link
// dropped. Best-effort: a pending kick already guarantees a prompt step.
func (c *ctrlPlane) kickCtrl() {
	if c == nil {
		return
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// loop is the control goroutine: one step per LinkStateInterval, sooner
// when kicked.
func (c *ctrlPlane) loop() {
	ticker := time.NewTicker(c.b.cfg.LinkStateInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.b.done:
			return
		case <-ticker.C:
		case <-c.kick:
		}
		c.step()
	}
}

// step runs one control epoch: re-measure and maybe flood the local
// links, probe idle ones, sync the pair set from the advert plane, rebuild
// incrementally and publish the new sending lists.
func (c *ctrlPlane) step() {
	now := time.Now()
	c.floodLocal(now)
	c.probeIdle(now)
	c.syncPairs()
	if c.drv.Rebuild() {
		c.publish()
	}
	st := c.drv.Stats()
	c.versionA.Store(st.EstimateVersion)
	c.rebuildsA.Store(st.Epochs - st.Noops)
	c.noopsA.Store(st.Noops)
	c.tablesA.Store(st.TablesBuilt)
}

// localRecords measures this broker's connected links, sorted by neighbor.
func (c *ctrlPlane) localRecords() []wire.LinkRecord {
	b := c.b
	ids := make([]int, 0, len(b.neighbors))
	for id := range b.neighbors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	recs := make([]wire.LinkRecord, 0, len(ids))
	for _, id := range ids {
		nc := b.neighbors[id]
		if !nc.connected() {
			continue
		}
		alpha, gamma := nc.estimate()
		recs = append(recs, wire.LinkRecord{To: int32(id), Alpha: alpha, Gamma: gamma})
	}
	return recs
}

// recordsClose reports whether two record sets agree within the re-flood
// tolerances (same links, estimates barely moved).
func recordsClose(a, b []wire.LinkRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].To != b[i].To {
			return false
		}
		da := a[i].Alpha - b[i].Alpha
		if da < 0 {
			da = -da
		}
		dg := a[i].Gamma - b[i].Gamma
		if dg < 0 {
			dg = -dg
		}
		if da > ctrlAlphaTolerance || dg > ctrlGammaTolerance {
			return false
		}
	}
	return true
}

// floodLocal refreshes this broker's own record set: when an estimate
// moved past tolerance (or the periodic repair is due), the set is applied
// to the local database under a fresh epoch and flooded to every capable
// neighbor. Applying the flooded values — not the raw estimates — keeps
// every database in the overlay converging on identical content, so every
// broker computes identical tables.
func (c *ctrlPlane) floodLocal(now time.Time) {
	recs := c.localRecords()
	c.sinceFlood++
	if recordsClose(recs, c.lastFlood) && c.sinceFlood < ctrlRefreshEvery {
		return
	}
	c.sinceFlood = 0
	c.lastFlood = recs
	c.epoch++
	c.epochA.Store(c.epoch)
	self := int32(c.b.cfg.ID)
	c.db.apply(self, c.epoch, recs)
	c.flood(&wire.LinkState{Origin: self, Epoch: c.epoch, Links: recs}, -1)
}

// flood sends one LinkState to every connected capable neighbor except
// `except` (the peer it arrived from) and the origin itself. The message
// is shared read-only across writer pipelines, like the legacy Deliver.
func (c *ctrlPlane) flood(ls *wire.LinkState, except int) {
	for id, nc := range c.b.neighbors {
		if id == except || id == int(ls.Origin) || !nc.linkStateTo(c.b) {
			continue
		}
		if nc.send(ls) == nil {
			c.sent.Add(1)
		}
	}
}

// syncTo pushes the full database to one freshly attached capable
// neighbor, then schedules a step so local estimates re-flood promptly.
func (c *ctrlPlane) syncTo(nc *neighborConn) {
	if c == nil {
		return
	}
	for _, ls := range c.db.snapshotFloods() {
		if nc.send(ls) == nil {
			c.sent.Add(1)
		}
	}
	c.kickCtrl()
}

// handleLinkState folds one received flood into the database, re-floods
// newer records onward and wakes the control loop when an estimate moved.
// m is recycled by the caller's Reader after return, so records are copied
// before they are retained or re-flooded.
func (b *Broker) handleLinkState(nc *neighborConn, m *wire.LinkState) {
	c := b.ctrl
	if c == nil {
		return // link-state disabled: we never advertised the capability
	}
	c.recv.Add(1)
	if m.Origin < 0 || m.Origin >= ctrlMaxNodeID || m.Origin == int32(b.cfg.ID) {
		return // invalid origin, or our own flood reflected back
	}
	for _, r := range m.Links {
		if r.To < 0 || r.To >= ctrlMaxNodeID {
			b.logf("neighbor %d: link-state origin %d names node %d, dropping flood", nc.id, m.Origin, r.To)
			return
		}
	}
	recs := slices.Clone(m.Links)
	newer, changed := c.db.apply(m.Origin, m.Epoch, recs)
	if !newer {
		c.stale.Add(1)
		return
	}
	c.flood(&wire.LinkState{Origin: m.Origin, Epoch: m.Epoch, Links: recs}, nc.id)
	if changed {
		c.kickCtrl()
	}
}

// probeIdle keeps gamma live on links no data currently crosses: one
// outstanding PROBE per capable neighbor whose delivery estimate has had
// no signal for a ping interval. An unanswered probe decays gamma exactly
// like a missed ACK; the echo feeds alpha (RTT/2) and nudges gamma up.
func (c *ctrlPlane) probeIdle(now time.Time) {
	b := c.b
	for _, nc := range b.neighbors {
		if !nc.linkStateTo(b) || !nc.connected() {
			continue
		}
		if tok, at := nc.probeState(); tok != 0 {
			alpha, _ := nc.estimate()
			if now.Sub(at) <= 2*alpha+b.cfg.AckGuard {
				continue // still within its ACK-equivalent timeout
			}
			if nc.probeExpire(tok) {
				nc.ackTimedOut()
			}
		}
		if now.Sub(nc.gammaSignalAt()) < b.cfg.PingInterval {
			continue
		}
		c.probeTok++
		tok := c.probeTok
		nc.probeStart(tok, now)
		if nc.send(&wire.Probe{Token: tok}) == nil {
			c.probes.Add(1)
		} else {
			nc.probeExpire(tok)
		}
	}
}

// handleProbe answers a neighbor's probe or folds its echo into the link
// estimate.
func (b *Broker) handleProbe(nc *neighborConn, m *wire.Probe) {
	if !m.Reply {
		_ = nc.send(&wire.Probe{Token: m.Token, Reply: true})
		return
	}
	if c := b.ctrl; c != nil && nc.probeReply(m.Token, time.Now()) {
		c.probeReplies.Add(1)
	}
}

// syncPairs mirrors the advert plane's (topic, subscriber) set into the
// driver. Budgets are uniform deadline vectors — every node's residual
// D_XS is the subscription deadline — reproducing the live admission rule
// (publishers are decoupled, so per-publisher residuals are unknowable;
// see the package comment in broker.go). Identical re-registration is a
// driver no-op, so the full sync per epoch costs nothing at steady state.
func (c *ctrlPlane) syncPairs() {
	b := c.b
	type pairSpec struct {
		key      routeKey
		deadline time.Duration
	}
	b.mu.Lock()
	specs := make([]pairSpec, 0, len(b.routes))
	for key, rs := range b.routes {
		dl := rs.deadline
		if dl <= 0 {
			dl = b.cfg.DefaultDeadline
		}
		specs = append(specs, pairSpec{key, dl})
	}
	b.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].key.topic != specs[j].key.topic {
			return specs[i].key.topic < specs[j].key.topic
		}
		return specs[i].key.sub < specs[j].key.sub
	})

	if tv := c.db.topoVersion(); tv != c.topoVer {
		c.drv.SetGraph(c.db.buildGraph())
		c.topoVer = tv
		clear(c.budgets)
	}
	n := c.drv.Graph().N()
	current := make(map[algo1.PairKey]bool, len(specs))
	for _, sp := range specs {
		if int(sp.key.sub) >= n || sp.key.sub < 0 {
			continue // subscriber not in the gossiped topology yet
		}
		budget := c.budgets[sp.deadline]
		if len(budget) != n {
			budget = make([]time.Duration, n)
			for i := range budget {
				budget[i] = sp.deadline
			}
			c.budgets[sp.deadline] = budget
		}
		key := algo1.PairKey{Topic: sp.key.topic, Sub: sp.key.sub}
		c.drv.SetPair(key, int(sp.key.sub), budget)
		current[key] = true
	}
	var gone []algo1.PairKey
	c.drv.Pairs(func(key algo1.PairKey, _ *algo1.Table) {
		if !current[key] {
			gone = append(gone, key)
		}
	})
	for _, key := range gone {
		c.drv.RemovePair(key)
	}
}

// publish swaps in a fresh copy-on-write snapshot of this broker's own
// sending lists (Lists[self] of each pair's table).
func (c *ctrlPlane) publish() {
	self := c.b.cfg.ID
	snap := &ctrlSnapshot{lists: make(map[routeKey][]int)}
	c.drv.Pairs(func(key algo1.PairKey, t *algo1.Table) {
		if t == nil || self >= len(t.Lists) {
			return
		}
		if l := t.Lists[self]; len(l) > 0 {
			snap.lists[routeKey{topic: key.Topic, sub: key.Sub}] = l
		}
	})
	c.b.ctrlSnap.Store(snap)
}

// ctrlStats snapshots the control plane for Stats and wire.StatsReply.
func (b *Broker) ctrlStats() (wire.CtrlStat, []wire.LinkStat) {
	c := b.ctrl
	if c == nil {
		return wire.CtrlStat{}, nil
	}
	return wire.CtrlStat{
		Enabled:        true,
		Epoch:          c.epochA.Load(),
		Version:        c.versionA.Load(),
		Rebuilds:       c.rebuildsA.Load(),
		Noops:          c.noopsA.Load(),
		TablesBuilt:    c.tablesA.Load(),
		LinkStatesSent: c.sent.Load(),
		LinkStatesRecv: c.recv.Load(),
		StaleDrops:     c.stale.Load(),
		ProbesSent:     c.probes.Load(),
		ProbeReplies:   c.probeReplies.Load(),
	}, c.db.linkStats()
}

// linkStateTo reports whether control-plane frames may be sent to this
// neighbor: link state enabled locally and the current peer advertised the
// capability.
func (nc *neighborConn) linkStateTo(b *Broker) bool {
	return nc != nil && !b.cfg.DisableLinkState && nc.peerLinkState.Load()
}

package broker

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// Durable-custody integration tests (DESIGN.md §16): the ACK-after-durable
// invariant, exactly-once across an abrupt crash, and replay resuming
// outstanding flights. The WAL's own mechanics (torn tails, CRC, recovery
// compaction) are covered in internal/wal; these tests pin the broker glue.

// durableDirs assigns each broker in an overlay its own DataDir under root.
func durableDirs(root string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("%s/broker-%d", root, i)
	}
	return dirs
}

// restartBroker rebinds broker id's address and replaces it in the overlay
// (mirroring chaosOverlay.restart); mutate tweaks the replacement's config
// the same way the overlay's original hook did.
func restartBroker(t *testing.T, o *overlay, links [][2]int, id int, mutate func(*Config)) *Broker {
	t.Helper()
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", o.addrs[id])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", o.addrs[id], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	neighbors := make(map[int]string)
	for _, l := range links {
		if l[0] == id {
			neighbors[l[1]] = o.addrs[l[1]]
		}
		if l[1] == id {
			neighbors[l[0]] = o.addrs[l[0]]
		}
	}
	cfg := Config{
		ID:              id,
		Listen:          o.addrs[id],
		Neighbors:       neighbors,
		PingInterval:    20 * time.Millisecond,
		AdvertInterval:  30 * time.Millisecond,
		DialRetry:       20 * time.Millisecond,
		AckGuard:        30 * time.Millisecond,
		DefaultDeadline: 2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	o.brokers[id] = b // the overlay cleanup now closes the replacement
	return b
}

// gatedFlush returns a WAL BeforeFlush hook blocked until release is called
// (idempotent). While blocked, appends accumulate but nothing becomes
// durable — so no custody ACK may leave the broker.
func gatedFlush() (hook func(), release func()) {
	gate := make(chan struct{})
	var once sync.Once
	return func() { <-gate }, func() { once.Do(func() { close(gate) }) }
}

// TestDurableAckWithheldUntilFsync pins the invariant the whole design
// hangs on: a durable broker does not ACK a received DATA frame before the
// custody record is fsynced. The downstream's WAL flush is gated, so the
// upstream's in-flight group must stay unresolved — the huge AckGuard rules
// out every other way it could resolve — until the gate opens.
func TestDurableAckWithheldUntilFsync(t *testing.T) {
	hook, release := gatedFlush()
	dir := t.TempDir()
	o := newOverlayConfig(t, 2, [][2]int{{0, 1}}, func(cfg *Config) {
		cfg.AckGuard = 10 * time.Second // no timeout/failover noise in-window
		cfg.Persistent = true
		if cfg.ID == 1 {
			cfg.DataDir = dir
			cfg.walBeforeFlush = hook
		}
	})
	t.Cleanup(release) // runs before the overlay cleanup: Close needs the committer free

	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(soakTopic, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "route 0→1", routesReady(o.brokers[0], 1))

	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	const n = 3
	for i := 0; i < n; i++ {
		if err := pub.Publish(soakTopic, 5*time.Second, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Custody is appended (and even delivered — delivery is not gated)...
	waitFor(t, 5*time.Second, "custody appended on broker 1", func() bool {
		return o.brokers[1].Stats().Wal.Appends >= n
	})
	for i := 0; i < n; i++ {
		receiveOne(t, sub, 5*time.Second)
	}
	// ...but never durable, so the upstream must still hold every flight.
	for i := 0; i < 10; i++ {
		if _, flights, _ := o.brokers[0].PoolsLive(); flights < n {
			t.Fatalf("upstream flights resolved to %d with WAL flush gated: an ACK crossed before durability", flights)
		}
		time.Sleep(20 * time.Millisecond)
	}

	release()
	waitFor(t, 5*time.Second, "withheld ACKs released after fsync", func() bool {
		_, flights, _ := o.brokers[0].PoolsLive()
		return flights == 0
	})
	if st := o.brokers[1].Stats().Wal; !st.Enabled || st.Fsyncs == 0 {
		t.Errorf("durable broker stats implausible after release: %+v", st)
	}
}

// TestDurableCrashBeforeAckRedelivers is the kill-between-append-and-ACK
// test: broker 1 (a pure relay) journals custody but crashes before any of
// it is fsynced — so before any ACK went upstream. The un-fsynced log is
// discarded (Crash == power loss), the upstream still holds every packet
// and retransmits to the restarted incarnation, and the subscriber behind
// the relay sees every packet exactly once.
func TestDurableCrashBeforeAckRedelivers(t *testing.T) {
	links := [][2]int{{0, 1}, {1, 2}}
	hook, release := gatedFlush()
	dir := t.TempDir()
	durable := func(cfg *Config) {
		cfg.Persistent = true
		cfg.RetryInterval = 30 * time.Millisecond
		cfg.MaxLifetime = 60 * time.Second
		if cfg.ID == 1 {
			cfg.DataDir = dir
		}
	}
	o := newOverlayConfig(t, 3, links, func(cfg *Config) {
		durable(cfg)
		if cfg.ID == 1 {
			cfg.walBeforeFlush = hook
		}
	})
	t.Cleanup(release)

	sub, err := Dial(o.addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(soakTopic, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	col := newCollector(sub)
	waitFor(t, 5*time.Second, "route 0→2", routesReady(o.brokers[0], 2))

	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishRange(t, pub, 0, 5)

	// The relay took (non-durable) custody and forwarded — the subscriber
	// already has everything once...
	waitFor(t, 10*time.Second, "custody appended on the gated relay", func() bool {
		return o.brokers[1].Stats().Wal.Appends >= 5
	})
	waitFor(t, 10*time.Second, "first delivery of every packet", func() bool { return col.have(5) })
	// ...and the publisher's broker must still own every packet: nothing
	// was fsynced, so nothing may have been ACKed.
	if works, flights, _ := o.brokers[0].PoolsLive(); works+flights == 0 {
		t.Fatal("origin fully resolved while the relay's WAL was gated: an ACK crossed before durability")
	}

	// Power-loss the relay: the appended-but-unsynced records evaporate.
	if err := o.brokers[1].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if g := o.brokers[1].Goroutines(); g != 0 {
		t.Errorf("%d goroutines survived the crash teardown", g)
	}
	release()

	b1 := restartBroker(t, o, links, 1, durable)
	// Nothing was durable, so nothing replays — the upstream's retry is the
	// only copy, which is exactly Theorem 2's invariant.
	if got := b1.Stats().Wal.ReplayedFlights; got != 0 {
		t.Errorf("replayed %d flights from a log that was never fsynced", got)
	}
	waitFor(t, 30*time.Second, "origin resolving via retransmission", func() bool {
		works, flights, _ := o.brokers[0].PoolsLive()
		return works+flights == 0
	})
	// The subscriber's broker dedups the re-forwarded copies by packet ID.
	time.Sleep(300 * time.Millisecond)
	if d := col.duplicates(); len(d) != 0 {
		t.Errorf("subscriber saw duplicate sequences %v", d)
	}
	if !col.have(5) {
		t.Error("redelivery incomplete")
	}
}

// TestDurableReplayResumesFlights crashes a broker holding fsynced custody
// it could not yet hand off (its only downstream was dead) and asserts the
// restart replays exactly those flights and drives them to delivery — the
// §III persistency hold now survives node loss.
func TestDurableReplayResumesFlights(t *testing.T) {
	links := [][2]int{{0, 1}}
	dir := t.TempDir()
	durable := func(cfg *Config) {
		cfg.Persistent = true
		cfg.RetryInterval = 30 * time.Millisecond
		cfg.MaxLifetime = 60 * time.Second
		if cfg.ID == 0 {
			cfg.DataDir = dir
		}
	}
	o := newOverlayConfig(t, 2, links, durable)

	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(soakTopic, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "route 0→1", routesReady(o.brokers[0], 1))
	_ = sub.Close()

	// Kill the subscriber's broker, then publish into the hole: the origin
	// journals custody for dests it cannot reach and holds (§III).
	assertBrokerClean(t, o.brokers[1])
	waitFor(t, 5*time.Second, "origin noticing the dead neighbor", func() bool {
		return !o.brokers[0].neighbor(1).connected()
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := pub.Publish(soakTopic, 30*time.Second, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "origin custody journaled", func() bool {
		return o.brokers[0].Stats().Wal.Appends >= n
	})
	_ = pub.Close()

	// Graceful stop: custody stays in the log — that is the point.
	assertBrokerClean(t, o.brokers[0])

	// Restart both ends. The origin must replay all n held flights...
	restartBroker(t, o, links, 1, durable)
	b0 := restartBroker(t, o, links, 0, durable)
	if got := b0.Stats().Wal.ReplayedFlights; got != n {
		t.Errorf("replayed %d flights, want %d", got, n)
	}

	// ...and deliver them to the resubscribed subscriber exactly once.
	sub2, err := Dial(o.addrs[1], "sub2")
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if err := sub2.Subscribe(soakTopic, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	got := make(map[byte]int)
	deadline := time.After(20 * time.Second)
	for len(got) < n {
		select {
		case d, ok := <-sub2.Receive():
			if !ok {
				t.Fatalf("subscriber died: %v", sub2.Err())
			}
			if len(d.Payload) == 1 {
				got[d.Payload[0]]++
			}
		case <-deadline:
			t.Fatalf("replayed flights never delivered; got %v", got)
		}
	}
	time.Sleep(300 * time.Millisecond)
	for seq, c := range got {
		if c != 1 {
			t.Errorf("sequence %d delivered %d times", seq, c)
		}
	}
	// The monitoring plane reports the journal end to end.
	mon, err := Dial(o.addrs[0], "mon")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	reply, err := mon.Stats(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Wal.Enabled || reply.Wal.ReplayedFlights != n || reply.Wal.Appends == 0 {
		t.Errorf("wire-level WAL stats implausible: %+v", reply.Wal)
	}

	// Once everything settled, the cleared flights must be durable too: a
	// cold recovery of the directory finds no outstanding custody.
	waitFor(t, 30*time.Second, "origin pools draining", func() bool {
		works, flights, _ := b0.PoolsLive()
		return works+flights == 0
	})
	assertBrokerClean(t, b0)
	l, rec, err := wal.Open(wal.Config{Dir: dir, NodeID: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(rec.Flights) != 0 {
		t.Errorf("cold recovery found %d outstanding flights after full delivery", len(rec.Flights))
	}
}

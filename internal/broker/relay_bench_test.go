package broker

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// newRelayChain builds a line overlay 0 — 1 — … — n-1 on localhost, with an
// optional per-broker config tweak (the relay benchmarks flip
// DisableRelayBatch through it).
func newRelayChain(tb testing.TB, n int, tweak func(id int, cfg *Config)) []*Broker {
	tb.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	brokers := make([]*Broker, 0, n)
	for i := 0; i < n; i++ {
		neighbors := make(map[int]string)
		if i > 0 {
			neighbors[i-1] = addrs[i-1]
		}
		if i < n-1 {
			neighbors[i+1] = addrs[i+1]
		}
		cfg := Config{
			ID:              i,
			Listen:          addrs[i],
			Neighbors:       neighbors,
			PingInterval:    50 * time.Millisecond,
			AdvertInterval:  50 * time.Millisecond,
			DialRetry:       20 * time.Millisecond,
			AckGuard:        40 * time.Millisecond,
			DefaultDeadline: 5 * time.Second,
			Shards:          4,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		b, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		if err := b.StartListener(listeners[i]); err != nil {
			tb.Fatal(err)
		}
		brokers = append(brokers, b)
	}
	tb.Cleanup(func() {
		for _, b := range brokers {
			_ = b.Close()
		}
	})
	return brokers
}

// waitForRoute blocks until broker b has a sending list toward subscriber
// broker sub for topic.
func waitForRoute(tb testing.TB, b *Broker, topic int32, sub int32) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		ok := len(b.sendingListLocked(topic, sub)) > 0
		b.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatalf("no route to (%d, %d)", topic, sub)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkRelayChain measures what relay-plane link aggregation exists to
// optimize: the per-packet wire cost of pushing a published stream across a
// 3-broker chain 0 → 1 → 2 to a subscriber on the far end.
//
//   - legacy: DisableRelayBatch on every broker — each relay hop costs one
//     DATA frame plus one returning ACK frame per packet (the pre-batching
//     protocol, also what any legacy peer negotiates).
//   - batch: default config — consecutive DATA frames per neighbor coalesce
//     into delta-compressed DATA_BATCH frames and hop-by-hop ACKs return as
//     coalesced ACK_BATCH frames.
//
// frames/packet and bytes/packet are writer-path egress summed across all
// three brokers (the subscriber-facing Deliver frames included, identical
// in both modes); batch mode must cut frames/packet by >= 2x
// (BENCH_baseline.json records the gap).
func BenchmarkRelayChain(b *testing.B) {
	for _, mode := range []string{"legacy", "batch"} {
		b.Run(mode, func(b *testing.B) {
			benchRelayChain(b, mode)
		})
	}
}

func benchRelayChain(b *testing.B, mode string) {
	const topic = int32(3)
	brokers := newRelayChain(b, 3, func(id int, cfg *Config) {
		if mode == "legacy" {
			cfg.DisableRelayBatch = true
		}
	})
	last := brokers[len(brokers)-1]

	// Legacy subscriber on the far end, counting deliveries straight off the
	// socket so the benchmark can wait for exact totals.
	var got atomic.Uint64
	conn, err := net.DialTimeout("tcp", last.cfg.Listen, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{BrokerID: -1, Name: "chain-sub"}); err != nil {
		b.Fatal(err)
	}
	if err := wire.Write(conn, &wire.Subscribe{Topic: topic, Deadline: 5 * time.Second}); err != nil {
		b.Fatal(err)
	}
	go func() {
		rd := wire.NewReader(bufio.NewReaderSize(conn, readBufSize))
		for {
			msg, err := rd.Next()
			if err != nil {
				return
			}
			if _, ok := msg.(*wire.Deliver); ok {
				got.Add(1)
			}
		}
	}()
	waitForRoute(b, brokers[0], topic, int32(last.cfg.ID))

	pub, err := Dial(brokers[0].cfg.Listen, "chain-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()

	payload := make([]byte, 64)
	// Keep enough packets in flight that writer wakeups see several queued
	// DATA frames (that concurrency is what batching coalesces), but well
	// under the per-connection send queues so nothing is dropped and the
	// exact delivery accounting below holds.
	const maxInflight = 256
	b.ReportAllocs()
	b.ResetTimer()
	var frames0, bytes0 uint64
	for _, bk := range brokers {
		frames0 += bk.wireFrames.Load()
		bytes0 += bk.wireBytes.Load()
	}
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(topic, 5*time.Second, payload); err != nil {
			b.Fatal(err)
		}
		for uint64(i+1)-got.Load() > maxInflight {
			time.Sleep(50 * time.Microsecond)
		}
	}
	want := uint64(b.N)
	doneBy := time.Now().Add(30 * time.Second)
	for got.Load() < want {
		if time.Now().After(doneBy) {
			b.Fatalf("received %d/%d deliveries", got.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	var frames, bytes uint64
	for _, bk := range brokers {
		frames += bk.wireFrames.Load()
		bytes += bk.wireBytes.Load()
	}
	frames -= frames0
	bytes -= bytes0
	b.ReportMetric(float64(bytes)/float64(want), "bytes/packet")
	b.ReportMetric(float64(frames)/float64(want), "frames/packet")
	b.ReportMetric(float64(want)/elapsed.Seconds(), "packets/sec")
}

// TestRelayChainBatchGain pins the tentpole acceptance numbers outside the
// benchmark harness: across a 3-broker relay chain, negotiated link
// aggregation must put at least 2x fewer frames per delivered packet on the
// wire than the legacy framing, and measurably fewer encoded bytes.
func TestRelayChainBatchGain(t *testing.T) {
	measure := func(mode string) (bytesPer, framesPer float64) {
		res := testing.Benchmark(func(b *testing.B) { benchRelayChain(b, mode) })
		return res.Extra["bytes/packet"], res.Extra["frames/packet"]
	}
	legacyBytes, legacyFrames := measure("legacy")
	batchBytes, batchFrames := measure("batch")
	t.Logf("legacy: %.1f bytes/packet, %.2f frames/packet", legacyBytes, legacyFrames)
	t.Logf("batch:  %.1f bytes/packet, %.2f frames/packet", batchBytes, batchFrames)
	if batchBytes <= 0 || batchFrames <= 0 {
		t.Fatalf("batch mode reported no wire traffic")
	}
	if gain := legacyFrames / batchFrames; gain < 2 {
		t.Errorf("frames/packet gain = %.2fx, want >= 2x", gain)
	}
	if gain := legacyBytes / batchBytes; gain < 1.1 {
		t.Errorf("bytes/packet gain = %.2fx, want >= 1.1x", gain)
	}
}

// TestRelayLegacyInterop runs a mixed overlay: broker 2 never advertises
// the relay-batch capability (DisableRelayBatch models a legacy build), so
// link 0—1 negotiates aggregation while link 1—2 must stay on the legacy
// one-frame-per-packet protocol in both directions. Every packet still
// arrives exactly once, with no stalls.
func TestRelayLegacyInterop(t *testing.T) {
	const topic, total = int32(6), uint32(60)
	brokers := newRelayChain(t, 3, func(id int, cfg *Config) {
		if id == 2 {
			cfg.DisableRelayBatch = true
		}
	})

	sub, err := Dial(brokers[2].cfg.Listen, "legacy-sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(topic, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[uint32]int)
	go func() {
		for d := range sub.Receive() {
			if len(d.Payload) != 4 {
				continue
			}
			mu.Lock()
			seen[binary.BigEndian.Uint32(d.Payload)]++
			mu.Unlock()
		}
	}()
	waitForRoute(t, brokers[0], topic, 2)

	pub, err := Dial(brokers[0].cfg.Listen, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for s := uint32(0); s < total; s++ {
		var payload [4]byte
		binary.BigEndian.PutUint32(payload[:], s)
		if err := pub.Publish(topic, 5*time.Second, payload[:]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "all packets across the mixed chain", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for s := uint32(0); s < total; s++ {
			if seen[s] == 0 {
				return false
			}
		}
		return true
	})
	mu.Lock()
	for s, n := range seen {
		if n > 1 {
			t.Errorf("sequence %d delivered %d times", s, n)
		}
	}
	mu.Unlock()

	// The capable link actually aggregated and the legacy link actually did
	// not: broker 1 coalesced its ACKs back to broker 0, broker 0 saved
	// bytes batching DATA toward 1, and broker 2 (legacy) emitted neither.
	waitFor(t, 5*time.Second, "relay counters settling", func() bool {
		return brokers[1].Stats().AckBatches > 0
	})
	if st := brokers[0].Stats(); st.RelayBytesSaved == 0 {
		t.Error("broker 0 recorded no relay bytes saved over the batch-capable link")
	}
	if st := brokers[2].Stats(); st.AckBatches != 0 || st.AckFramesCoalesced != 0 || st.RelayBytesSaved != 0 {
		t.Errorf("legacy broker 2 used batch framing: %+v", st)
	}
}

// TestMuxDeliverPooledDeliveryAllocs pins the deliver() satellite: pushing
// one packet to a multiplexed session allocates nothing in steady state —
// the MuxDeliver comes from the writer-path pool and goes back after the
// writer (drained by hand here, no goroutine) encodes it.
func TestMuxDeliverPooledDeliveryAllocs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bk, err := New(Config{ID: 1, Listen: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()
	if err := bk.StartListener(ln); err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	c := &clientConn{name: "sess", conn: server, w: newConnWriter(server, 8, nil)}
	led := &topicLedger{sessions: []sessionDelivery{{c: c, subIDs: []uint32{1, 2, 3}}}}
	msg := &wire.Deliver{
		Topic: 1, PacketID: 42, Source: 1,
		PublishedAt: time.Unix(0, 123456789),
		Payload:     []byte("pooled payload"),
	}
	deliverOnce := func() {
		bk.deliver(led, msg)
		releaseMsg(<-c.w.queue)
	}
	deliverOnce() // warm the pool
	if allocs := testing.AllocsPerRun(200, deliverOnce); allocs != 0 {
		t.Errorf("session delivery allocates %.1f objects/packet in steady state, want 0", allocs)
	}
}

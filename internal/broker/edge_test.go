package broker

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// Edge-tier tests: multiplexed sessions, per-topic delivery aggregation and
// the copy-on-write ledger snapshot under churn.

// startEdgeBroker spins up a loopback broker for edge tests.
func startEdgeBroker(t *testing.T, shards int) (*Broker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{ID: 1, Listen: ln.Addr().String(), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	if err := b.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	return b, ln.Addr().String()
}

// muxRecorder collects aggregated deliveries, copying out of the pooled
// message before it is recycled.
type muxRecorder struct {
	mu   sync.Mutex
	got  []muxEvent
	seen map[muxKey]int // (subID, packetID) -> deliveries
}

type muxEvent struct {
	topic   int32
	pktID   uint64
	subIDs  []uint32
	payload string
}

type muxKey struct {
	subID uint32
	pktID uint64
}

func newMuxRecorder() *muxRecorder {
	return &muxRecorder{seen: make(map[muxKey]int)}
}

func (r *muxRecorder) handle(m *wire.MuxDeliver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, muxEvent{
		topic:   m.Topic,
		pktID:   m.PacketID,
		subIDs:  append([]uint32(nil), m.SubIDs...),
		payload: string(m.Payload),
	})
	for _, id := range m.SubIDs {
		r.seen[muxKey{id, m.PacketID}]++
	}
}

func (r *muxRecorder) events() []muxEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]muxEvent(nil), r.got...)
}

// counts snapshots the per-(subID, packet) delivery counts.
func (r *muxRecorder) counts() map[muxKey]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[muxKey]int, len(r.seen))
	for k, v := range r.seen {
		out[k] = v
	}
	return out
}

// TestSessionAggregatedDelivery pins the tentpole behavior: one session
// with several logical subscribers on a topic receives ONE MuxDeliver per
// packet, carrying the full sorted subscriber-ID list and the payload once,
// while a legacy subscriber on the same topic still gets its per-subscriber
// Deliver. The edge gauges must track both kinds.
func TestSessionAggregatedDelivery(t *testing.T) {
	b, addr := startEdgeBroker(t, 2)

	rec := newMuxRecorder()
	s, err := DialSession(addr, "mux", 3, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []uint32{9, 0, 5} {
		if err := s.Subscribe(id, 3, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	legacy, err := Dial(addr, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := legacy.Subscribe(3, time.Second); err != nil {
		t.Fatal(err)
	}

	// Session registration flushes asynchronously (coalescing window).
	waitFor(t, 5*time.Second, "ledger to cover 4 subscribers", func() bool {
		return b.localLedger(3).subscribers() == 4
	})
	st := b.Stats()
	if st.Sessions != 1 || st.Subscriptions != 4 {
		t.Fatalf("gauges = %d sessions / %d subscriptions, want 1/4", st.Sessions, st.Subscriptions)
	}

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(3, time.Second, []byte("edge payload")); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "aggregated delivery", func() bool {
		return len(rec.events()) >= 1
	})
	evs := rec.events()
	if len(evs) != 1 {
		t.Fatalf("session received %d MuxDeliver frames, want exactly 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.topic != 3 || ev.payload != "edge payload" {
		t.Errorf("delivery = topic %d payload %q, want 3/%q", ev.topic, ev.payload, "edge payload")
	}
	if want := []uint32{0, 5, 9}; !sort.SliceIsSorted(ev.subIDs, func(i, j int) bool { return ev.subIDs[i] < ev.subIDs[j] }) ||
		len(ev.subIDs) != 3 || ev.subIDs[0] != want[0] || ev.subIDs[1] != want[1] || ev.subIDs[2] != want[2] {
		t.Errorf("subIDs = %v, want %v (sorted ascending)", ev.subIDs, want)
	}

	d := <-legacy.Receive()
	if d.Topic != 3 || string(d.Payload) != "edge payload" {
		t.Errorf("legacy delivery = topic %d payload %q", d.Topic, d.Payload)
	}
}

// TestSessionUnsubNarrowsDelivery checks that SessionUnsub removes exactly
// one logical subscriber from the aggregated list (and the gauges), and
// that the last unsubscribe drops the session from the ledger entirely.
func TestSessionUnsubNarrowsDelivery(t *testing.T) {
	b, addr := startEdgeBroker(t, 1)

	rec := newMuxRecorder()
	s, err := DialSession(addr, "mux", 2, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []uint32{1, 2} {
		if err := s.Subscribe(id, 7, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "both subscribers registered", func() bool {
		return b.localLedger(7).subscribers() == 2
	})

	if err := s.Unsubscribe(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "unsubscribe to flush", func() bool {
		return b.localLedger(7).subscribers() == 1
	})
	if st := b.Stats(); st.Subscriptions != 1 {
		t.Fatalf("subscriptions gauge = %d, want 1", st.Subscriptions)
	}

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(7, time.Second, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "narrowed delivery", func() bool {
		return len(rec.events()) >= 1
	})
	if evs := rec.events(); len(evs[0].subIDs) != 1 || evs[0].subIDs[0] != 2 {
		t.Errorf("subIDs after unsub = %v, want [2]", evs[0].subIDs)
	}

	if err := s.Unsubscribe(2, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "empty ledger", func() bool {
		return b.localLedger(7).subscribers() == 0
	})
}

// TestLegacySubscribeCompat speaks the pre-session protocol over a raw TCP
// connection — Hello, Subscribe, then plain reads — and requires the broker
// to answer with per-subscriber Deliver frames, never MuxDeliver. Old
// clients must keep working against an edge-tier broker unchanged.
func TestLegacySubscribeCompat(t *testing.T) {
	b, addr := startEdgeBroker(t, 2)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{BrokerID: -1, Name: "old-client"}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, &wire.Subscribe{Topic: 2, Deadline: time.Second}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "legacy subscription", func() bool {
		return b.localLedger(2).subscribers() == 1
	})

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(2, time.Second, []byte("compat")); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := msg.(*wire.Deliver)
	if !ok {
		t.Fatalf("legacy subscriber received %v, want DELIVER", msg.Type())
	}
	if d.Topic != 2 || string(d.Payload) != "compat" {
		t.Errorf("delivery = topic %d payload %q", d.Topic, d.Payload)
	}
}

// TestSessionChurnExactlyOnce is the snapshot-swap race test: while one
// publisher streams packets, churner subscribers flip on and off the topic
// (session and legacy alike, forcing continuous copy-on-write ledger
// rebuilds) — and a set of stable logical subscribers must still see every
// packet exactly once: no drop and no duplicate across snapshot swaps.
// Run under -race this also exercises the flusher/data-plane handoff.
func TestSessionChurnExactlyOnce(t *testing.T) {
	const (
		topic      = int32(4)
		stableSubs = 8
		packets    = 120
		churners   = 3
	)
	b, addr := startEdgeBroker(t, 4)

	rec := newMuxRecorder()
	stable, err := DialSession(addr, "stable", stableSubs, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	for i := uint32(0); i < stableSubs; i++ {
		if err := stable.Subscribe(i, topic, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := stable.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stable subscribers registered", func() bool {
		return b.localLedger(topic).subscribers() == stableSubs
	})

	stop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnErr := make(chan error, 2*churners)
	for c := 0; c < churners; c++ {
		c := c
		// Session churner: one extra subscriber ID flipping on and off.
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			s, err := DialSession(addr, fmt.Sprintf("churn-mux-%d", c), 1, nil)
			if err != nil {
				churnErr <- err
				return
			}
			defer s.Close()
			id := uint32(1000 + c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Subscribe(id, topic, time.Second); err != nil {
					churnErr <- err
					return
				}
				if err := s.Unsubscribe(id, topic); err != nil {
					churnErr <- err
					return
				}
				if err := s.Flush(); err != nil {
					churnErr <- err
					return
				}
			}
		}()
		// Legacy churner: synchronous snapshot flush on every flip.
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			cl, err := Dial(addr, fmt.Sprintf("churn-legacy-%d", c))
			if err != nil {
				churnErr <- err
				return
			}
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Subscribe(topic, time.Second); err != nil {
					churnErr <- err
					return
				}
				if err := cl.Unsubscribe(topic); err != nil {
					churnErr <- err
					return
				}
			}
		}()
	}

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < packets; i++ {
		if err := pub.Publish(topic, time.Second, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Every stable logical subscriber must converge on exactly-once for
	// every packet: first wait until all (subID, packet) pairs arrived...
	waitFor(t, 10*time.Second, "all stable deliveries", func() bool {
		counts := rec.counts()
		n := 0
		for k := range counts {
			if k.subID < stableSubs {
				n++
			}
		}
		return n >= stableSubs*packets
	})
	close(stop)
	churnWg.Wait()
	close(churnErr)
	for err := range churnErr {
		t.Fatal(err)
	}
	// ...then require no duplicates ever showed up.
	for k, n := range rec.counts() {
		if k.subID < stableSubs && n != 1 {
			t.Errorf("stable subscriber %d saw packet %d %d times", k.subID, k.pktID, n)
		}
	}
}

// Package broker implements a live DCRD messaging broker over real TCP
// connections — the "candidate messaging middleware" integration the paper
// lists as parallel work (§V). Each broker:
//
//   - maintains persistent connections to its configured overlay neighbors,
//   - measures per-link alpha by pinging and tracks a gamma estimate from
//     hop-by-hop ACK outcomes,
//   - runs Algorithm 1 as a real distributed protocol: <d, r> parameter
//     advertisements flow between neighbors whenever estimates change, and
//     every broker keeps a Theorem-1-ordered sending list per
//     (topic, subscriber-broker) pair,
//   - forwards published messages with Algorithm 2: hop-by-hop ACKs,
//     m transmissions per neighbor, failover to the next sending-list entry
//     and rerouting to the upstream broker recorded in the packet's path,
//   - serves clients (publishers and subscribers) on the same listener.
//
// Differences from the simulation model are deliberate and documented in
// DESIGN.md: the live admission filter compares a neighbor's expected delay
// against the subscription deadline directly (publishers are decoupled, so
// the per-publisher residual budget D_XS of the simulation is unknowable),
// and gamma is estimated adaptively from ACK outcomes instead of being
// derived from known loss parameters.
package broker

import (
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo1"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config describes one broker of a live overlay.
type Config struct {
	// ID is this broker's overlay-unique identifier (>= 0).
	ID int
	// Listen is the TCP address brokers and clients connect to.
	Listen string
	// Neighbors maps neighbor broker IDs to their listen addresses.
	Neighbors map[int]string
	// M is the number of transmissions per neighbor before failover.
	M int
	// AckGuard pads the ACK timeout beyond the measured round trip.
	AckGuard time.Duration
	// PingInterval is how often links are probed for alpha.
	PingInterval time.Duration
	// AdvertInterval is how often parameters are re-advertised even
	// without changes (repairs lost adverts).
	AdvertInterval time.Duration
	// DialRetry is the base back-off between reconnect attempts to a
	// neighbor; consecutive failures back off exponentially (with jitter)
	// from this base up to DialRetryMax, resetting on a successful attach.
	DialRetry time.Duration
	// DialRetryMax caps the exponential redial back-off (default 4s, and
	// never below DialRetry).
	DialRetryMax time.Duration
	// WriteTimeout bounds each coalesced flush to a peer; a flush that
	// cannot complete in time drops the connection (and the dial loop
	// re-establishes it) instead of wedging the writer goroutine behind a
	// stalled peer forever.
	WriteTimeout time.Duration
	// MaxLifetime bounds how long one packet may be retried.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: a publish whose
	// origin exhausts every neighbor is held and retried every RetryInterval
	// (instead of dropped) until MaxLifetime, riding out transient
	// partitions that outlast the sending list.
	Persistent bool
	// RetryInterval paces persistency retries (default 100ms).
	RetryInterval time.Duration
	// SendQueue is the per-connection outbound queue length (messages)
	// feeding each writer pipeline; a full queue drops messages after a
	// brief backpressure wait instead of blocking the sender.
	SendQueue int
	// DisableRelayBatch turns off relay-plane link aggregation: the broker
	// neither advertises wire.CapRelayBatch in its Hello nor emits
	// AckBatch/DataBatch frames, and every received DATA is answered with an
	// immediate legacy Ack. Aggregation is on by default and negotiated per
	// link, so mixed overlays with legacy brokers need no configuration.
	DisableRelayBatch bool
	// AckBatchSize flushes a neighbor's coalesced hop-by-hop ACKs once this
	// many are pending, even if the flush timer has not fired (default 64).
	AckBatchSize int
	// AckFlushInterval bounds how long a coalesced ACK may wait before its
	// batch is flushed (default 1ms). It must stay well inside the sender's
	// ACK timeout (2*alpha + AckGuard), or delayed ACKs would read as link
	// loss; the default sits 20x under the default AckGuard alone.
	AckFlushInterval time.Duration
	// DisableLinkState turns off the gossiped link-state control plane: the
	// broker neither advertises wire.CapLinkState in its Hello nor emits
	// LinkState/Probe frames, and routing falls back to the advert-only
	// <d, r> plane. Like relay batching it is on by default and negotiated
	// per link, so mixed overlays with legacy brokers need no configuration.
	DisableLinkState bool
	// LinkStateInterval paces the control loop: local estimates are
	// re-flooded, idle links probed and route tables incrementally rebuilt
	// at this cadence (default 100ms). This is the live monitoring window —
	// a link death re-sorts sending lists within roughly one interval.
	LinkStateInterval time.Duration
	// DefaultDeadline applies to publishes that do not carry a deadline.
	DefaultDeadline time.Duration
	// Shards is the number of single-threaded engine shards the data plane
	// is partitioned into; packets are assigned by packet-ID hash, and each
	// shard owns its own pools, ACK timers, dedup state and delivery flush
	// queue (see shard.go). Defaults to runtime.GOMAXPROCS(0), capped at 64
	// (the frame-ID encoding carries the shard index in 6 bits).
	Shards int
	// DataDir, when non-empty, enables crash-durable custody: every custody
	// transfer is journaled to a write-ahead log in this directory BEFORE
	// the hop-by-hop ACK releases the upstream copy, and a restarted broker
	// replays undelivered flights from the log (durable.go, DESIGN.md §16).
	// Empty (the default) keeps custody in memory only — the pre-durability
	// behavior, byte-identical on the wire.
	DataDir string
	// walBeforeFlush is a test hook threaded to wal.Config.BeforeFlush:
	// blocking it withholds WAL durability — and therefore upstream ACKs —
	// while appends keep accumulating.
	walBeforeFlush func()
	// Logger receives diagnostics; nil discards them.
	Logger *log.Logger
	// Tracer, when non-nil, receives the engine's per-packet routing
	// timeline (sends, ACK handoffs, timeouts, failovers, reroutes). With
	// Shards > 1 events are recorded concurrently from multiple shard
	// goroutines, so the recorder must be safe for concurrent use; it must
	// not re-enter the broker.
	Tracer trace.Recorder
}

// withDefaults fills unset tunables.
func (c Config) withDefaults() Config {
	if c.M < 1 {
		c.M = 1
	}
	if c.AckGuard <= 0 {
		c.AckGuard = 20 * time.Millisecond
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 500 * time.Millisecond
	}
	if c.AdvertInterval <= 0 {
		c.AdvertInterval = time.Second
	}
	if c.DialRetry <= 0 {
		c.DialRetry = 250 * time.Millisecond
	}
	if c.DialRetryMax <= 0 {
		c.DialRetryMax = 4 * time.Second
	}
	if c.DialRetryMax < c.DialRetry {
		c.DialRetryMax = c.DialRetry
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.MaxLifetime <= 0 {
		c.MaxLifetime = 30 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 100 * time.Millisecond
	}
	if c.SendQueue < 1 {
		c.SendQueue = defaultSendQueue
	}
	if c.AckBatchSize < 1 {
		c.AckBatchSize = 64
	}
	if c.AckFlushInterval <= 0 {
		c.AckFlushInterval = time.Millisecond
	}
	if c.LinkStateInterval <= 0 {
		c.LinkStateInterval = 100 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = time.Second
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	return c
}

// Broker is a live DCRD overlay node. Construct with New, start with Start,
// stop with Close.
type Broker struct {
	cfg Config
	ln  net.Listener

	// neighbors is built complete from Config.Neighbors in New and never
	// mutated afterwards; hot-path lookups read it without locking (each
	// neighborConn carries its own mutex for attach/estimate state).
	neighbors map[int]*neighborConn

	// shards is the partitioned data plane: one single-threaded engine per
	// shard, fed by a bounded mailbox (see shard.go). Immutable after New.
	shards []*shard
	// wal is the crash-durable custody journal (nil unless Config.DataDir
	// is set); walReplayed counts the flights its recovery re-injected.
	wal         *wal.Log
	walReplayed atomic.Uint64
	// epoch anchors the engine clock: engine time is time.Since(epoch).
	epoch time.Time
	// nextPacketID allocates overlay-unique packet IDs across all publisher
	// connections (the broker ID occupies the bits above the counter).
	nextPacketID atomic.Uint64

	// routesSnap/subsSnap are the copy-on-write control-plane snapshots the
	// data plane reads lock-free: rebuilt under b.mu whenever routes or
	// local subscriptions change, swapped in atomically.
	routesSnap atomic.Pointer[routeSnapshot]
	subsSnap   atomic.Pointer[subsSnapshot]

	// ctrl is the gossiped link-state control plane (controlplane.go); nil
	// with Config.DisableLinkState. ctrlSnap is its copy-on-write sending
	// lists, consulted by the data plane before the advert-plane snapshot.
	ctrl     *ctrlPlane
	ctrlSnap atomic.Pointer[ctrlSnapshot]

	// mu guards the cold-path control state below: client registry,
	// subscription and routing tables (the data plane reads them only
	// through the snapshots above).
	mu      sync.Mutex
	clients map[*clientConn]struct{}
	// topics is the per-topic subscription ledger: legacy per-connection
	// subscribers plus per-session subscriber-ID bitsets (edge.go).
	topics map[int32]*topicSubs
	// dirtySubs queues topics whose immutable ledger must be rebuilt into
	// the next subsSnapshot (see flushSubsLocked).
	dirtySubs map[int32]struct{}
	// routes[(topic, subscriberBroker)] = distributed routing state
	routes map[routeKey]*routeState
	closed bool

	// subsKick nudges the session-churn snapshot flusher (buffered 1).
	subsKick chan struct{}

	done chan struct{}
	wg   sync.WaitGroup
	// shardWg tracks the shard goroutines specifically: Close waits for
	// them (mailboxes drained, engines shut down, pools final) before it
	// starts tearing down writer pipelines and read loops.
	shardWg sync.WaitGroup
	// goCount tracks live goTracked goroutines; Close must return it to
	// zero, and the chaos soak asserts that it does.
	goCount atomic.Int64

	// stats — all atomic, so Stats never contends with the data path.
	published  atomic.Uint64
	delivered  atomic.Uint64
	forwarded  atomic.Uint64
	dropped    atomic.Uint64
	queueDrops atomic.Uint64 // messages dropped on a full send queue
	redials    atomic.Uint64 // failed neighbor dial attempts
	reconnects atomic.Uint64 // neighbor re-attaches after the first

	// Edge-tier gauges: live mux sessions and logical subscriptions
	// (legacy + session) — exported through Stats and wire.StatsReply.
	sessionsGauge      atomic.Int64
	subscriptionsGauge atomic.Int64

	// Wire-egress telemetry, incremented on the writer-goroutine encode
	// path: frames and encoded bytes actually put on connections. The edge
	// fan-out benchmark reads these to measure aggregation gains.
	wireFrames atomic.Uint64
	wireBytes  atomic.Uint64

	// Relay-aggregation telemetry: AckBatch frames emitted, legacy Ack
	// frames they replaced, and encoded bytes saved versus the legacy
	// framing (ACK and DATA batching combined).
	ackBatches         atomic.Uint64
	ackFramesCoalesced atomic.Uint64
	relayBytesSaved    atomic.Uint64
}

// routeSnapshot is the data plane's immutable view of the Algorithm-1
// routing state: Theorem-1 sending lists per (topic, subscriber broker) and
// the sorted destination set per topic for publishes. Rebuilt by
// recomputeAndAdvertise; the contained slices are never mutated after the
// snapshot is published.
type routeSnapshot struct {
	lists        map[routeKey][]int
	destsByTopic map[int32][]int
}

// subsSnapshot is the data plane's immutable view of the local
// subscriptions: one materialized delivery ledger per topic (edge.go).
type subsSnapshot struct {
	byTopic map[int32]*topicLedger
}

type routeKey struct {
	topic int32
	sub   int32
}

// routeState is the per-(topic, subscriber broker) routing state of
// Algorithm 1: the latest neighbor parameters, this broker's own <d, r>,
// and the Theorem-1 sending list.
type routeState struct {
	deadline time.Duration
	// params[neighborID] is the neighbor's advertised <d, r>.
	params map[int]algo1.DR
	own    algo1.DR
	list   []int
	// advertised is the last value shared with neighbors.
	advertised algo1.DR
	haveAdv    bool
}

// New validates the configuration and prepares a broker (not yet listening).
func New(cfg Config) (*Broker, error) {
	cfg = cfg.withDefaults()
	if cfg.ID < 0 {
		return nil, fmt.Errorf("broker: negative ID %d", cfg.ID)
	}
	if cfg.Listen == "" {
		return nil, errors.New("broker: empty listen address")
	}
	for id := range cfg.Neighbors {
		if id == cfg.ID {
			return nil, fmt.Errorf("broker %d: self-neighbor", cfg.ID)
		}
		if id < 0 {
			return nil, fmt.Errorf("broker %d: negative neighbor ID %d", cfg.ID, id)
		}
	}
	b := &Broker{
		cfg:       cfg,
		neighbors: make(map[int]*neighborConn, len(cfg.Neighbors)),
		clients:   make(map[*clientConn]struct{}),
		topics:    make(map[int32]*topicSubs),
		dirtySubs: make(map[int32]struct{}),
		routes:    make(map[routeKey]*routeState),
		epoch:     time.Now(),
		done:      make(chan struct{}),
		subsKick:  make(chan struct{}, 1),
	}
	// The neighbor set is fixed by configuration, so the map can be built
	// complete here and read lock-free everywhere after.
	for id := range cfg.Neighbors {
		b.neighbors[id] = newNeighborConn(id)
	}
	b.routesSnap.Store(&routeSnapshot{})
	b.subsSnap.Store(&subsSnapshot{})
	// A restarted broker must not reuse frame or packet IDs its previous
	// incarnation put on the wire recently: peers retain both in dedup
	// state for up to 2×MaxLifetime, and a collision would silently swallow
	// fresh traffic. In memory-custody mode the counters are seeded from
	// the wall clock (masked to each counter's space) — monotonic across
	// restarts because nanoseconds advance far faster than frames are sent.
	// In durable mode the WAL's persisted incarnation number replaces the
	// clock (see seedsFromIncarnation): replay re-injects old frame IDs, so
	// fresh IDs must be partitioned from every previous incarnation's, not
	// merely probably past them.
	var recovered *wal.Recovered
	pktSeed := uint64(time.Now().UnixNano()) & (1<<48 - 1)
	frameSeed := pktSeed
	if cfg.DataDir != "" {
		rec, err := b.openWal()
		if err != nil {
			return nil, fmt.Errorf("broker %d: wal: %w", cfg.ID, err)
		}
		recovered = rec
		pktSeed, frameSeed = seedsFromIncarnation(rec.Incarnation)
	}
	b.nextPacketID.Store(pktSeed)
	b.shards = make([]*shard, cfg.Shards)
	for i := range b.shards {
		b.shards[i] = newShard(b, i, frameSeed)
	}
	// Shard goroutines start with the broker itself (not StartListener):
	// tests and tools may attach pipe connections and pump frames before a
	// listener exists, and those frames need running shards.
	for _, s := range b.shards {
		s := s
		b.shardWg.Add(1)
		b.goTracked(func() {
			defer b.shardWg.Done()
			s.run()
		})
	}
	// The session-churn snapshot flusher likewise starts with the broker:
	// SessionSub frames may arrive over pipe connections before a listener
	// exists, and their deferred snapshot publishes need a running flusher.
	b.goTracked(func() { b.subsFlusher() })
	if !cfg.DisableLinkState {
		b.ctrl = newCtrlPlane(b)
		// The control loop starts with the broker for the same reason the
		// shards do: pipe-attached tests gossip before a listener exists.
		b.goTracked(func() { b.ctrl.loop() })
	}
	// Replay goes last: the recovered flights are ordinary mailbox work and
	// need running shards. Links are still down at this point, so replayed
	// sends fail over (and, in Persistent mode, hold) until neighbors attach.
	if recovered != nil {
		b.replayRecovered(recovered)
	}
	return b, nil
}

// barrier broadcasts fn to every shard and waits until each has run it on
// its own goroutine — the cold-path rendezvous for control operations that
// need a coherent per-shard view. It reports false when the broker is
// shutting down (fn may then have run on only some shards). Must not be
// called from a shard goroutine.
func (b *Broker) barrier(fn func(*shard)) bool {
	acks := make(chan struct{}, len(b.shards))
	for _, s := range b.shards {
		it := getItem()
		it.kind = itemBarrier
		it.bfn = fn
		it.acks = acks
		// A failed enqueue (shutdown) still acks via discard, so the count
		// below is exact either way.
		s.enqueue(it)
	}
	for range b.shards {
		select {
		case <-acks:
		case <-b.done:
			return false
		}
	}
	return true
}

// dedup is a bounded recently-seen set of uint64 keys: once full, the
// oldest entries are evicted FIFO. Long-lived brokers would otherwise grow
// their frame/packet dedup state without bound.
type dedup struct {
	set   map[uint64]struct{}
	order []uint64
	head  int
	max   int
}

func newDedup(max int) *dedup {
	if max < 1 {
		max = 1
	}
	return &dedup{set: make(map[uint64]struct{}, max), max: max}
}

// Seen reports whether k was already present, inserting it if not.
func (d *dedup) Seen(k uint64) bool {
	if _, ok := d.set[k]; ok {
		return true
	}
	if len(d.order) < d.max {
		d.order = append(d.order, k)
	} else {
		oldest := d.order[d.head]
		delete(d.set, oldest)
		d.order[d.head] = k
		d.head = (d.head + 1) % d.max
	}
	d.set[k] = struct{}{}
	return false
}

// ID returns the broker's overlay identifier.
func (b *Broker) ID() int { return b.cfg.ID }

// Addr returns the bound listen address (valid after Start), handy when
// Config.Listen used port 0.
func (b *Broker) Addr() string {
	if b.ln == nil {
		return b.cfg.Listen
	}
	return b.ln.Addr().String()
}

// Start binds the listener, launches the accept loop and begins dialing
// neighbors and probing links.
func (b *Broker) Start() error {
	ln, err := net.Listen("tcp", b.cfg.Listen)
	if err != nil {
		return fmt.Errorf("broker %d: listen: %w", b.cfg.ID, err)
	}
	return b.StartListener(ln)
}

// StartListener is Start with a caller-provided listener — useful when
// addresses must be known (port 0) before the full overlay's neighbor
// configuration can be assembled.
func (b *Broker) StartListener(ln net.Listener) error {
	b.ln = ln
	b.goTracked(func() { b.acceptLoop() })
	for id, addr := range b.cfg.Neighbors {
		// The lower ID owns the connection; the higher ID waits for it.
		if b.cfg.ID < id {
			id, addr := id, addr
			b.goTracked(func() { b.dialLoop(id, addr) })
		}
	}
	b.goTracked(func() { b.pingLoop() })
	b.goTracked(func() { b.advertLoop() })
	return nil
}

// Close shuts the broker down and waits for its goroutines. Ordering
// matters: the shard goroutines are waited for FIRST — each drains its
// mailbox (discarding queued work) and shuts its engine down, releasing all
// pooled state — and only then are writer pipelines and read loops torn
// down. That order guarantees no in-flight shard work can allocate from (or
// return to) a pool after a post-Close Pools.Live() read observed it empty.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.done)
	clients := make([]*clientConn, 0, len(b.clients))
	for c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()

	// Shards observe b.done, drain their mailboxes and run Engine.Shutdown
	// (cancelling every in-flight ACK timer) on their own goroutines.
	b.shardWg.Wait()

	if b.ln != nil {
		_ = b.ln.Close()
	}
	for _, nc := range b.neighbors {
		nc.close()
	}
	for _, c := range clients {
		_ = c.conn.Close()
	}
	b.wg.Wait()
	// The WAL closes dead last: shard drains may journal clears right up to
	// shardWg.Wait, and its final flush makes everything appended durable.
	// Custody still outstanding at close stays in the log — that is the
	// point — and the next incarnation replays it.
	if b.wal != nil {
		return b.wal.Close()
	}
	return nil
}

// Stats is a snapshot of the broker's activity counters.
type Stats struct {
	Published uint64 // packets accepted from local publishers
	Delivered uint64 // deliveries to local subscribers
	Forwarded uint64 // data frames sent to neighbors
	Dropped   uint64 // destinations given up on
	// Degradation counters: silent in a healthy overlay, moving whenever
	// the broker sheds load or links flap.
	QueueDrops uint64 // messages dropped on a full per-connection queue
	Redials    uint64 // failed neighbor dial attempts
	Reconnects uint64 // neighbor links re-attached after their first attach
	// Edge-tier gauges (not counters): current level, not cumulative.
	Sessions      uint64 // live multiplexed client sessions
	Subscriptions uint64 // live logical subscriptions (legacy + session)
	// Relay-aggregation counters: zero on legacy-only links or with
	// Config.DisableRelayBatch set.
	AckBatches         uint64 // AckBatch frames sent to neighbors
	AckFramesCoalesced uint64 // legacy Ack frames those batches replaced
	RelayBytesSaved    uint64 // encoded bytes saved vs legacy relay framing
	// Ctrl reports the gossiped link-state control plane (zeros with
	// Config.DisableLinkState); Links is its database's current per-link
	// EWMA estimates with each origin's last gossip epoch.
	Ctrl  wire.CtrlStat
	Links []wire.LinkStat
	// Wal reports the crash-durable custody journal (Enabled false and
	// zeros unless Config.DataDir is set).
	Wal wire.WalStat
}

// Stats returns the current counters. All counters are atomic, so this
// never contends with the data path.
func (b *Broker) Stats() Stats {
	ctrl, links := b.ctrlStats()
	return Stats{
		Ctrl:  ctrl,
		Links: links,
		Wal:   b.walStat(),

		Published:  b.published.Load(),
		Delivered:  b.delivered.Load(),
		Forwarded:  b.forwarded.Load(),
		Dropped:    b.dropped.Load(),
		QueueDrops: b.queueDrops.Load(),
		Redials:    b.redials.Load(),
		Reconnects: b.reconnects.Load(),

		Sessions:      uint64(b.sessionsGauge.Load()),
		Subscriptions: uint64(b.subscriptionsGauge.Load()),

		AckBatches:         b.ackBatches.Load(),
		AckFramesCoalesced: b.ackFramesCoalesced.Load(),
		RelayBytesSaved:    b.relayBytesSaved.Load(),
	}
}

// Goroutines reports the broker's live tracked goroutines. After Close it
// must be zero — the chaos soak and shutdown tests assert this.
func (b *Broker) Goroutines() int { return int(b.goCount.Load()) }

// PoolsLive reports the outstanding pooled engine objects (works, flights,
// frames) summed across all shards. Once every packet resolves — and always
// after Close — all three must be zero, or an engine leaked. The per-shard
// counters are atomic, so no lock is needed.
func (b *Broker) PoolsLive() (works, flights, frames int) {
	for _, s := range b.shards {
		w, f, fr := s.pools.Live()
		works += w
		flights += f
		frames += fr
	}
	return works, flights, frames
}

// statsReply snapshots the broker's operational state for a monitoring
// client (cmd/dcrd-mon).
func (b *Broker) statsReply(token uint64) *wire.StatsReply {
	reply := &wire.StatsReply{
		Token:      token,
		BrokerID:   int32(b.cfg.ID),
		Published:  b.published.Load(),
		Delivered:  b.delivered.Load(),
		Forwarded:  b.forwarded.Load(),
		Dropped:    b.dropped.Load(),
		QueueDrops: b.queueDrops.Load(),
		Redials:    b.redials.Load(),
		Reconnects: b.reconnects.Load(),

		Sessions:      uint64(b.sessionsGauge.Load()),
		Subscriptions: uint64(b.subscriptionsGauge.Load()),

		AckBatches:         b.ackBatches.Load(),
		AckFramesCoalesced: b.ackFramesCoalesced.Load(),
		RelayBytesSaved:    b.relayBytesSaved.Load(),
	}
	reply.Ctrl, reply.Links = b.ctrlStats()
	reply.Wal = b.walStat()

	// Per-shard stats: a barrier run gives an on-shard view (mailbox depth
	// plus the engine's in-flight group count); if the broker is shutting
	// down mid-barrier, fall back to the lock-free external view.
	shardStats := make([]wire.ShardStat, len(b.shards))
	var smu sync.Mutex
	ok := b.barrier(func(s *shard) {
		st := s.stats(true)
		smu.Lock()
		shardStats[s.idx] = st
		smu.Unlock()
	})
	if !ok {
		for i, s := range b.shards {
			shardStats[i] = s.stats(false)
		}
	}
	reply.Shards = shardStats

	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]int, 0, len(b.neighbors))
	for id := range b.neighbors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		nc := b.neighbors[id]
		alpha, gamma := nc.estimate()
		reply.Neighbors = append(reply.Neighbors, wire.NeighborStat{
			ID:        int32(id),
			Connected: nc.connected(),
			Alpha:     alpha,
			Gamma:     gamma,
		})
	}
	keys := make([]routeKey, 0, len(b.routes))
	for key := range b.routes {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].topic != keys[j].topic {
			return keys[i].topic < keys[j].topic
		}
		return keys[i].sub < keys[j].sub
	})
	for _, key := range keys {
		rs := b.routes[key]
		reply.Routes = append(reply.Routes, wire.RouteStat{
			Topic:   key.topic,
			Sub:     key.sub,
			D:       rs.own.D,
			R:       rs.own.R,
			ListLen: int32(len(rs.list)),
		})
	}
	return reply
}

// goTracked runs fn on a goroutine registered with the broker's WaitGroup
// and counted in goCount (Goroutines reports the live count; leak tests
// assert it returns to zero after Close).
func (b *Broker) goTracked(fn func()) {
	b.wg.Add(1)
	b.goCount.Add(1)
	go func() {
		defer b.wg.Done()
		defer b.goCount.Add(-1)
		fn()
	}()
}

// logf writes a diagnostic when a logger is configured.
func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logger != nil {
		b.cfg.Logger.Printf("broker %d: "+format, append([]any{b.cfg.ID}, args...)...)
	}
}

// stopping reports whether Close has begun.
func (b *Broker) stopping() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

package broker

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkEdgeFanout measures what the edge tier exists to optimize: the
// wire cost of fanning one published packet out to many local subscribers.
//
//   - persub: 100 legacy subscriber connections — the broker encodes one
//     Deliver frame (payload included) per subscriber per packet.
//   - mux: the same 100 logical subscribers over 4 multiplexed sessions —
//     one MuxDeliver per (topic, session) carrying the payload once plus
//     the subscriber-ID varint list.
//
// bytes/delivery and frames/delivery come from the broker's writer-path
// egress counters; the aggregated mode must cut both by >= 5x at this
// fan-out (BENCH_baseline.json records the gap).
func BenchmarkEdgeFanout(b *testing.B) {
	for _, mode := range []string{"persub", "mux"} {
		b.Run(mode, func(b *testing.B) {
			benchEdgeFanout(b, mode)
		})
	}
}

func benchEdgeFanout(b *testing.B, mode string) {
	const (
		subscribers = 100
		sessions    = 4
		topic       = int32(2)
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bk, err := New(Config{ID: 1, Listen: ln.Addr().String(), Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	if err := bk.StartListener(ln); err != nil {
		b.Fatal(err)
	}

	// got counts logical deliveries observed by the subscribers; both modes
	// count without any lossy buffering so the benchmark can wait for
	// exactly b.N * subscribers.
	var got atomic.Uint64
	switch mode {
	case "persub":
		// Raw legacy connections read with a pooled Reader directly off the
		// socket — no inbox to overflow.
		for i := 0; i < subscribers; i++ {
			conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			if err := wire.Write(conn, &wire.Hello{BrokerID: -1, Name: fmt.Sprintf("sub-%d", i)}); err != nil {
				b.Fatal(err)
			}
			if err := wire.Write(conn, &wire.Subscribe{Topic: topic, Deadline: time.Second}); err != nil {
				b.Fatal(err)
			}
			go func() {
				rd := wire.NewReader(bufio.NewReaderSize(conn, readBufSize))
				for {
					msg, err := rd.Next()
					if err != nil {
						return
					}
					if _, ok := msg.(*wire.Deliver); ok {
						got.Add(1)
					}
				}
			}()
		}
	case "mux":
		perSession := subscribers / sessions
		for s := 0; s < sessions; s++ {
			sess, err := DialSession(ln.Addr().String(), fmt.Sprintf("mux-%d", s), uint32(perSession),
				func(m *wire.MuxDeliver) { got.Add(uint64(len(m.SubIDs))) })
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			for j := 0; j < perSession; j++ {
				if err := sess.Subscribe(uint32(j), topic, time.Second); err != nil {
					b.Fatal(err)
				}
			}
			if err := sess.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	waitDeadline := time.Now().Add(10 * time.Second)
	for bk.localLedger(topic).subscribers() != subscribers {
		if time.Now().After(waitDeadline) {
			b.Fatalf("only %d/%d subscribers registered", bk.localLedger(topic).subscribers(), subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	pub, err := Dial(ln.Addr().String(), "bench-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()

	payload := make([]byte, 256)
	// Cap in-flight packets well under the per-connection send queue
	// (default 1024): an unpaced publisher overruns the bounded writer
	// queues and the broker — correctly, it's a QoS system — drops the
	// excess, which would make the exact delivery accounting below fail.
	const maxInflight = 256
	b.ReportAllocs()
	b.ResetTimer()
	frames0, bytes0 := bk.wireFrames.Load(), bk.wireBytes.Load()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(topic, time.Second, payload); err != nil {
			b.Fatal(err)
		}
		for uint64(i+1)*subscribers-got.Load() > maxInflight*subscribers {
			time.Sleep(50 * time.Microsecond)
		}
	}
	want := uint64(b.N) * subscribers
	doneBy := time.Now().Add(30 * time.Second)
	for got.Load() < want {
		if time.Now().After(doneBy) {
			b.Fatalf("received %d/%d deliveries", got.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	frames := bk.wireFrames.Load() - frames0
	bytes := bk.wireBytes.Load() - bytes0
	b.ReportMetric(float64(bytes)/float64(want), "bytes/delivery")
	b.ReportMetric(float64(frames)/float64(want), "frames/delivery")
	b.ReportMetric(float64(want)/elapsed.Seconds(), "deliveries/sec")
}

// TestEdgeFanoutAggregationGain pins the tentpole acceptance number outside
// the benchmark harness: at 100 subscribers per topic, the multiplexed
// delivery path must put at least 5x fewer frames AND 5x fewer encoded
// bytes on the wire per delivered message than the per-subscriber path.
func TestEdgeFanoutAggregationGain(t *testing.T) {
	measure := func(mode string) (bytesPer, framesPer float64) {
		res := testing.Benchmark(func(b *testing.B) { benchEdgeFanout(b, mode) })
		return res.Extra["bytes/delivery"], res.Extra["frames/delivery"]
	}
	perBytes, perFrames := measure("persub")
	muxBytes, muxFrames := measure("mux")
	t.Logf("persub: %.1f bytes/delivery, %.3f frames/delivery", perBytes, perFrames)
	t.Logf("mux:    %.1f bytes/delivery, %.3f frames/delivery", muxBytes, muxFrames)
	if muxBytes <= 0 || muxFrames <= 0 {
		t.Fatalf("mux mode reported no wire traffic")
	}
	if gain := perBytes / muxBytes; gain < 5 {
		t.Errorf("bytes/delivery gain = %.1fx, want >= 5x", gain)
	}
	if gain := perFrames / muxFrames; gain < 5 {
		t.Errorf("frames/delivery gain = %.1fx, want >= 5x", gain)
	}
}

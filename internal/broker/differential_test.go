package broker

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Differential fidelity harness: the same topology and the same scripted
// loss schedule are driven through the DES shell (internal/core over
// netsim) and through a live net.Pipe broker overlay, and the per-packet
// forwarding decisions — transmission order per node, retransmit counts,
// failovers, upstream reroutes, deliveries and drops — must be identical,
// because both shells run the one shared engine (internal/algo2).
//
// Topology (all links equal delay):
//
//	0 —— 1 —— 3        publisher at 0, subscriber broker 3
//	|         |        primary route  0→1→3   (2 hops)
//	2 —————— 4         backup  route  0→2→4→3 (3 hops)
//
// Decisions are compared per node (cross-node interleaving is timing-
// dependent live, but each node's own decision sequence is causal).

// diffDropRule scripts one loss: frames of kind ("data" or "ack") from→to
// are dropped — all of them when nth is nil, else only the listed
// occurrence numbers (1-based, counted per (from, to, kind)).
type diffDropRule struct {
	from, to int
	kind     string
	nth      map[int]bool
}

// diffSchedule applies drop rules with per-(link, kind) occurrence
// counting; one schedule instance serves exactly one scenario run.
type diffSchedule struct {
	mu    sync.Mutex
	rules []diffDropRule
	count map[[2]int]map[string]int
}

func newDiffSchedule(rules []diffDropRule) *diffSchedule {
	return &diffSchedule{rules: rules, count: make(map[[2]int]map[string]int)}
}

func (s *diffSchedule) drop(from, to int, kind string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	link := [2]int{from, to}
	byKind := s.count[link]
	if byKind == nil {
		byKind = make(map[string]int)
		s.count[link] = byKind
	}
	byKind[kind]++
	n := byKind[kind]
	for _, r := range s.rules {
		if r.from != from || r.to != to || r.kind != kind {
			continue
		}
		if r.nth == nil || r.nth[n] {
			return true
		}
	}
	return false
}

// decision is one normalized forwarding decision: everything the engine
// chose, minus the things the two shells legitimately disagree on
// (timestamps, packet-ID encodings).
type decision struct {
	kind  trace.Kind
	peer  int
	dests string
	note  string
}

func (d decision) String() string {
	return fmt.Sprintf("%s peer=%d dests=%s note=%q", d.kind, d.peer, d.dests, d.note)
}

// normalize splits a trace into per-node decision sequences.
func normalize(events []trace.Event) map[int][]decision {
	out := make(map[int][]decision)
	for _, e := range events {
		out[e.Node] = append(out[e.Node], decision{
			kind:  e.Kind,
			peer:  e.Peer,
			dests: fmt.Sprint(e.Dests),
			note:  e.Note,
		})
	}
	return out
}

// diffLinks is the scenario topology's undirected edge list.
var diffLinks = [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 4}, {4, 3}}

const (
	diffNodes    = 5
	diffSub      = 3
	diffDeadline = 10 * time.Second
)

// runSimScenario pushes one packet through the DES shell under the
// schedule and returns the per-node decisions plus the delivered count.
func runSimScenario(t *testing.T, rules []diffDropRule) (map[int][]decision, int) {
	t.Helper()
	g := topology.NewGraph(diffNodes)
	for _, l := range diffLinks {
		if err := g.AddLink(l[0], l[1], 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	sim := des.New(1)
	net, err := netsim.New(sim, g, netsim.Config{
		FailureEpoch:    time.Second,
		MonitorInterval: 5 * time.Minute,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pubsub.NewStatic(g, pubsub.DefaultConfig(), []pubsub.Topic{
		{Publisher: 0, Subscribers: []pubsub.Subscription{{Node: diffSub, Deadline: diffDeadline}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	buf := &trace.Buffer{}
	r, err := core.NewRouter(net, w, col, core.RouterOptions{M: 2, Tracer: buf})
	if err != nil {
		t.Fatal(err)
	}
	sched := newDiffSchedule(rules)
	net.SetDropFilter(func(f netsim.Frame) bool {
		kind := "data"
		if f.Kind == netsim.Control {
			kind = "ack"
		}
		return sched.drop(f.From, f.To, kind)
	})
	pkt := pubsub.Packet{ID: 1, Topic: 0, Source: 0, PublishedAt: 0}
	col.Publish(&pkt, w.Topic(0).Subscribers)
	r.Publish(pkt)
	sim.Run()

	delivered := 0
	for _, e := range buf.Events() {
		if e.Kind == trace.Deliver {
			delivered++
		}
	}
	return normalize(buf.Events()), delivered
}

// lockedTrace is a concurrency-safe trace.Recorder: live engine events are
// recorded under each broker's own mutex, but the test reads snapshots
// concurrently.
type lockedTrace struct {
	mu     sync.Mutex
	events []trace.Event
}

func (l *lockedTrace) Record(e trace.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(e.Dests) > 0 {
		e.Dests = append([]int(nil), e.Dests...)
	}
	l.events = append(l.events, e)
}

func (l *lockedTrace) snapshot() []trace.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]trace.Event(nil), l.events...)
}

// proxyPump forwards one direction of a proxied overlay link, dropping
// Data/Ack frames per the schedule. Control-plane traffic (hello, pings,
// adverts) always passes.
func proxyPump(src, dst net.Conn, from, to int, sched *diffSchedule) {
	rd := bufio.NewReader(src)
	for {
		msg, err := wire.Read(rd)
		if err != nil {
			return
		}
		drop := false
		switch msg.(type) {
		case *wire.Data:
			drop = sched.drop(from, to, "data")
		case *wire.Ack:
			drop = sched.drop(from, to, "ack")
		}
		if drop {
			continue
		}
		if err := wire.Write(dst, msg); err != nil {
			return
		}
	}
}

// expectList polls until every broker's sending list for (topic, sub)
// matches the structurally expected Theorem-1 order, so the live overlay
// starts each scenario from the same routing state the simulator computes.
func waitListsConverge(t *testing.T, brokers []*Broker, topic int32, want map[int][]int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		allOK := true
		for id, exp := range want {
			bk := brokers[id]
			bk.mu.Lock()
			got := append([]int(nil), bk.sendingListLocked(topic, diffSub)...)
			bk.mu.Unlock()
			if len(got) != len(exp) {
				allOK = false
				break
			}
			for i := range exp {
				if got[i] != exp[i] {
					allOK = false
					break
				}
			}
			if !allOK {
				break
			}
		}
		if allOK {
			return
		}
		if time.Now().After(deadline) {
			for id := range want {
				bk := brokers[id]
				bk.mu.Lock()
				t.Logf("broker %d list: %v (want %v)", id, bk.sendingListLocked(topic, diffSub), want[id])
				bk.mu.Unlock()
			}
			t.Fatal("live routing never converged to the expected sending lists")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// runLiveScenario pushes one packet through a proxied net.Pipe overlay
// under the same schedule and returns per-node decisions plus the
// subscriber's delivered count. shards picks each broker's engine-shard
// count — the decision sequences must not depend on it.
func runLiveScenario(t *testing.T, rules []diffDropRule, wantDelivered bool, minEvents map[int][]decision, shards int) (map[int][]decision, int) {
	t.Helper()
	sched := newDiffSchedule(rules)

	listeners := make([]net.Listener, diffNodes)
	addrs := make([]string, diffNodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	neighbors := make([]map[int]string, diffNodes)
	for i := range neighbors {
		neighbors[i] = make(map[int]string)
	}
	for _, l := range diffLinks {
		neighbors[l[0]][l[1]] = addrs[l[1]]
		neighbors[l[1]][l[0]] = addrs[l[0]]
	}
	tracers := make([]*lockedTrace, diffNodes)
	brokers := make([]*Broker, diffNodes)
	for i := 0; i < diffNodes; i++ {
		tracers[i] = &lockedTrace{}
		bk, err := New(Config{
			ID:        i,
			Listen:    addrs[i],
			Neighbors: neighbors[i],
			M:         2,
			AckGuard:  25 * time.Millisecond,
			// Fast pings converge alpha quickly; the huge advert repair
			// interval freezes routes once event-driven adverts settle.
			PingInterval:    50 * time.Millisecond,
			AdvertInterval:  10 * time.Minute,
			DialRetry:       50 * time.Millisecond,
			DefaultDeadline: diffDeadline,
			Shards:          shards,
			Tracer:          tracers[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		brokers[i] = bk
	}
	// Every overlay link runs through a wire-parsing proxy: broker u and
	// broker v each hold one end of their own pipe, and two pump
	// goroutines forward frames between the proxy ends, consulting the
	// drop schedule. Attach before StartListener so the dial loops see the
	// links already up and never touch TCP.
	var proxyConns []net.Conn
	for _, l := range diffLinks {
		u, v := l[0], l[1]
		endU, proxyU := net.Pipe()
		endV, proxyV := net.Pipe()
		proxyConns = append(proxyConns, proxyU, proxyV)
		ncU := brokers[u].neighbor(v)
		ncU.attach(brokers[u], endU)
		ncV := brokers[v].neighbor(u)
		ncV.attach(brokers[v], endV)
		u0, v0 := u, v
		brokers[u].goTracked(func() { brokers[u0].readNeighbor(ncU, endU) })
		brokers[v].goTracked(func() { brokers[v0].readNeighbor(ncV, endV) })
		go proxyPump(proxyU, proxyV, u0, v0, sched)
		go proxyPump(proxyV, proxyU, v0, u0, sched)
	}
	for i, bk := range brokers {
		if err := bk.StartListener(listeners[i]); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, bk := range brokers {
			_ = bk.Close()
		}
		for _, c := range proxyConns {
			_ = c.Close()
		}
	})

	sub, err := Dial(addrs[diffSub], "diff-sub")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	if err := sub.Subscribe(1, diffDeadline); err != nil {
		t.Fatal(err)
	}
	// The same structural sending lists the simulator's Algorithm 1
	// produces for this topology (uniform link delays): primary route
	// first, backup second, path-blocked entries filtered at use time.
	waitListsConverge(t, brokers, 1, map[int][]int{
		0: {1, 2},
		1: {3, 0},
		2: {4, 0},
		4: {3, 2},
	})

	pub, err := Dial(addrs[0], "diff-pub")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	if err := pub.Publish(1, diffDeadline, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// Wait until every node has produced at least as many decisions as the
	// simulator did, then let things settle and take the final snapshot
	// (any extra events become a comparison failure).
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for node, want := range minEvents {
			got := normalize(tracers[node].snapshot())
			if len(got[node]) < len(want) {
				done = false
				break
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	delivered := 0
	if wantDelivered {
		select {
		case <-sub.Receive():
			delivered = 1
		case <-time.After(10 * time.Second):
		}
	}

	merged := make(map[int][]decision)
	for node, tr := range tracers {
		for n, ds := range normalize(tr.snapshot()) {
			if n != node {
				t.Errorf("broker %d recorded an event for node %d", node, n)
			}
			merged[n] = append(merged[n], ds...)
		}
	}
	return merged, delivered
}

// diffScenarios is the shared scenario matrix: the clean path,
// m-retransmission failover at the origin, list exhaustion with upstream
// reroute, total origin exhaustion (drop), and a lost ACK (retransmission
// absorbed by frame dedup). TestDifferentialSimVsLive runs it against a
// 1-shard broker, TestShardedDifferential (sharded_test.go) against 4
// shards.
var diffScenarios = []struct {
	name      string
	rules     []diffDropRule
	delivered bool
}{
	{
		name:      "clean_path",
		rules:     nil,
		delivered: true,
	},
	{
		name:      "origin_failover",
		rules:     []diffDropRule{{from: 0, to: 1, kind: "data"}},
		delivered: true,
	},
	{
		name:      "exhaustion_upstream_reroute",
		rules:     []diffDropRule{{from: 1, to: 3, kind: "data"}},
		delivered: true,
	},
	{
		name: "origin_exhausted_drop",
		rules: []diffDropRule{
			{from: 0, to: 1, kind: "data"},
			{from: 0, to: 2, kind: "data"},
		},
		delivered: false,
	},
	{
		name:      "lost_ack_retransmit_dedup",
		rules:     []diffDropRule{{from: 1, to: 0, kind: "ack", nth: map[int]bool{1: true}}},
		delivered: true,
	},
}

// TestDifferentialSimVsLive is the tentpole's fidelity harness: identical
// scripted loss through both shells must yield identical per-node decision
// sequences and identical delivery outcomes. Scenarios cover the clean
// path, m-retransmission failover at the origin, list exhaustion with
// upstream reroute, total origin exhaustion (drop), and a lost ACK
// (retransmission absorbed by frame dedup).
func TestDifferentialSimVsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live overlay convergence is wall-clock bound")
	}
	for _, sc := range diffScenarios {
		t.Run(sc.name, func(t *testing.T) {
			simDecisions, simDelivered := runSimScenario(t, sc.rules)
			if (simDelivered > 0) != sc.delivered {
				t.Fatalf("sim delivered %d, scenario expects delivered=%v", simDelivered, sc.delivered)
			}
			liveDecisions, liveDelivered := runLiveScenario(t, sc.rules, sc.delivered, simDecisions, 1)
			if (liveDelivered > 0) != (simDelivered > 0) {
				t.Errorf("delivery sets differ: sim=%d live=%d", simDelivered, liveDelivered)
			}
			for node := 0; node < diffNodes; node++ {
				simSeq, liveSeq := simDecisions[node], liveDecisions[node]
				if len(simSeq) != len(liveSeq) {
					t.Errorf("node %d: %d decisions in sim, %d live\nsim:  %v\nlive: %v",
						node, len(simSeq), len(liveSeq), simSeq, liveSeq)
					continue
				}
				for i := range simSeq {
					if simSeq[i] != liveSeq[i] {
						t.Errorf("node %d decision %d differs:\nsim:  %v\nlive: %v",
							node, i, simSeq[i], liveSeq[i])
					}
				}
			}
		})
	}
}

package broker

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/algo1"
	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestLinkStateDBStaleEpochReplay pins the database's replay defense:
// per-origin epochs are strictly increasing, so replayed or reordered
// floods are dropped without touching estimates or the change log.
func TestLinkStateDBStaleEpochReplay(t *testing.T) {
	db := newLinkStateDB()
	recs := []wire.LinkRecord{{To: 1, Alpha: 10 * time.Millisecond, Gamma: 0.9}}
	if newer, changed := db.apply(0, 5, recs); !newer || !changed {
		t.Fatalf("first flood: newer=%v changed=%v, want true/true", newer, changed)
	}
	// Same epoch replayed, then an older one: both stale.
	for _, epoch := range []uint64{5, 4} {
		if newer, _ := db.apply(0, epoch, []wire.LinkRecord{{To: 1, Alpha: time.Hour, Gamma: 0.1}}); newer {
			t.Fatalf("epoch %d accepted after epoch 5", epoch)
		}
	}
	if a, g, ok := db.LinkEstimate(0, 1); !ok || a != 10*time.Millisecond || g != 0.9 {
		t.Fatalf("estimate = (%v, %v, %v), stale flood leaked through", a, g, ok)
	}
	// A newer epoch with identical records advances the epoch but is not a
	// change — the driver must see a quiet version.
	ver := db.EstimateVersion()
	if newer, changed := db.apply(0, 6, recs); !newer || changed {
		t.Fatalf("identical re-flood: newer=%v changed=%v, want true/false", newer, changed)
	}
	if db.EstimateVersion() != ver {
		t.Fatal("identical re-flood bumped the estimate version")
	}
}

// TestLinkStateDBChangeLog pins the delta bookkeeping: the changed-link
// sets handed to the driver are exactly the links each applied flood
// moved, and a driver that fell behind the bounded log gets every known
// link instead (sound over-approximation, never a silent miss).
func TestLinkStateDBChangeLog(t *testing.T) {
	db := newLinkStateDB()
	db.apply(0, 1, []wire.LinkRecord{
		{To: 1, Alpha: 10 * time.Millisecond, Gamma: 0.9},
		{To: 2, Alpha: 20 * time.Millisecond, Gamma: 0.8},
	})
	v1 := db.EstimateVersion()
	// Second flood moves only link 0->2 and withdraws nothing.
	db.apply(0, 2, []wire.LinkRecord{
		{To: 1, Alpha: 10 * time.Millisecond, Gamma: 0.9},
		{To: 2, Alpha: 25 * time.Millisecond, Gamma: 0.8},
	})
	got := db.AppendChangedLinks(v1, db.EstimateVersion(), nil)
	if len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Fatalf("delta = %v, want exactly [[0 2]]", got)
	}
	// A withdrawal (gamma 0) is a change too.
	db.apply(0, 3, []wire.LinkRecord{{To: 1, Alpha: 10 * time.Millisecond, Gamma: 0.9}})
	got = db.AppendChangedLinks(v1, db.EstimateVersion(), nil)
	if len(got) != 2 {
		t.Fatalf("delta after withdrawal = %v, want two links", got)
	}
	// Falling behind the log base returns every known link.
	db.logBase = db.EstimateVersion()
	db.changes = nil
	got = db.AppendChangedLinks(0, db.EstimateVersion(), nil)
	if len(got) != 1 { // only 0->1 survives the withdrawal
		t.Fatalf("overflow fallback = %v, want all known links", got)
	}
}

// simDeps adapts a netsim.Network's monitoring windows to algo1.Deps — the
// same substrate the DES router shell builds tables from.
type simDeps struct {
	net *netsim.Network
	now time.Duration
}

func (s *simDeps) EstimateVersion() uint64 { return s.net.EstimateVersion(s.now) }
func (s *simDeps) AppendChangedLinks(from, to uint64, dst [][2]int) [][2]int {
	return s.net.AppendChangedEstimates(from, to, dst)
}
func (s *simDeps) LinkEstimate(u, v int) (time.Duration, float64, bool) {
	est, ok := s.net.EstimateAt(u, v, s.now)
	if !ok {
		return 0, 0, false
	}
	return est.Alpha, est.Gamma, true
}

// TestControlPlaneDifferential is the sim-vs-live fidelity pin for the
// control plane: the same monitoring estimates, delivered once directly
// (the DES shell's substrate) and once through LinkState gossip into a
// linkStateDB (the live shell's substrate), must drive the shared
// incremental engine to bitwise-identical route tables at every
// monitoring window. The gossip payloads are built exactly as a live
// broker builds them — per-origin record sets under increasing epochs.
func TestControlPlaneDifferential(t *testing.T) {
	for scenario := uint64(0); scenario < 4; scenario++ {
		rng := rand.New(rand.NewPCG(0xC7A1, scenario))
		g, err := topology.RandomRegular(10, 4, topology.DefaultDelayRange(), rng)
		if err != nil {
			t.Fatal(err)
		}
		sim := des.New(1)
		net, err := netsim.New(sim, g, netsim.Config{
			LossRate:        0.05,
			FailureEpoch:    time.Second,
			MonitorInterval: 100 * time.Millisecond,
			MonitorSamples:  40,
		}, 0xD1F+scenario)
		if err != nil {
			t.Fatal(err)
		}

		deps := &simDeps{net: net}
		simDrv := algo1.NewDriver(g, deps, algo1.DriverOptions{Build: algo1.BuildOptions{M: 2}})
		db := newLinkStateDB()
		liveDrv := algo1.NewDriver(g, db, algo1.DriverOptions{Build: algo1.BuildOptions{M: 2}})
		budget := make([]time.Duration, g.N())
		for i := range budget {
			budget[i] = 400 * time.Millisecond
		}
		for p := 0; p < 3; p++ {
			sub := (int(scenario)*3 + p*2) % g.N()
			key := algo1.PairKey{Topic: int32(p), Sub: int32(sub)}
			simDrv.SetPair(key, sub, budget)
			liveDrv.SetPair(key, sub, budget)
		}

		for window := 0; window < 6; window++ {
			deps.now = time.Duration(window) * 100 * time.Millisecond
			// Gossip: every node floods its measured record set for this
			// window, exactly as ctrlPlane.floodLocal renders it.
			for u := 0; u < g.N(); u++ {
				var recs []wire.LinkRecord
				for _, e := range g.Neighbors(u) {
					est, ok := net.EstimateAt(u, e.To, deps.now)
					if !ok {
						continue
					}
					recs = append(recs, wire.LinkRecord{To: int32(e.To), Alpha: est.Alpha, Gamma: est.Gamma})
				}
				db.apply(int32(u), uint64(window)+1, recs)
			}
			simDrv.Rebuild()
			liveDrv.Rebuild()
			simDrv.Pairs(func(key algo1.PairKey, want *algo1.Table) {
				if want == nil {
					t.Fatalf("scenario %d window %d pair %+v: sim driver built no table", scenario, window, key)
				}
				if got := liveDrv.Table(key); !got.Equal(want) {
					t.Fatalf("scenario %d window %d pair %+v: gossip-fed table diverged from sim table",
						scenario, window, key)
				}
			})
		}
	}
}

// ctrlList reads broker b's current control-plane sending list for
// (topic, sub), nil when none has been published.
func ctrlList(b *Broker, topic, sub int32) []int {
	cs := b.ctrlSnap.Load()
	if cs == nil {
		return nil
	}
	return cs.lists[routeKey{topic: topic, sub: sub}]
}

// TestControlPlaneConvergence is the tentpole's live pin: on a diamond
// overlay (0-1, 0-2, 1-3, 2-3) with a subscriber behind broker 3, broker
// 0's gossip-fed sending list for the pair must converge to both
// disjoint routes {1, 2}; killing broker 1 mid-traffic must re-sort it to
// {2} within roughly one monitoring window (the detach kick makes the
// withdrawal flood immediately).
func TestControlPlaneConvergence(t *testing.T) {
	o := newOverlay(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	sub, err := Dial(o.addrs[3], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(7, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "control plane to admit both routes", func() bool {
		l := ctrlList(o.brokers[0], 7, 3)
		return len(l) == 2
	})
	l := ctrlList(o.brokers[0], 7, 3)
	if !((l[0] == 1 && l[1] == 2) || (l[0] == 2 && l[1] == 1)) {
		t.Fatalf("sending list = %v, want {1, 2}", l)
	}
	st := o.brokers[0].Stats()
	if !st.Ctrl.Enabled || st.Ctrl.LinkStatesRecv == 0 || len(st.Links) == 0 {
		t.Fatalf("control plane idle: %+v", st.Ctrl)
	}

	// Kill broker 1 mid-traffic: its neighbors withdraw their links to it,
	// the floods propagate, and 0's list drops the dead route.
	_ = o.brokers[1].Close()
	waitFor(t, 5*time.Second, "sending list to re-sort around dead broker", func() bool {
		l := ctrlList(o.brokers[0], 7, 3)
		return len(l) == 1 && l[0] == 2
	})

	// The re-sorted route still delivers: publish through broker 0.
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(7, time.Second, []byte("via the survivor")); err != nil {
		t.Fatal(err)
	}
	if d := receiveOne(t, sub, 3*time.Second); string(d.Payload) != "via the survivor" {
		t.Fatalf("delivery = %+v", d)
	}
}

// TestControlPlaneLegacyInterop pins mixed-topology safety: on a chain
// 0 - 1 - 2 where the middle broker runs with DisableLinkState, zero
// LINK_STATE frames cross either link, the legacy broker's routing is
// byte-for-byte the advert plane's, and delivery still works end to end.
func TestControlPlaneLegacyInterop(t *testing.T) {
	o := newOverlayConfig(t, 3, [][2]int{{0, 1}, {1, 2}}, func(cfg *Config) {
		if cfg.ID == 1 {
			cfg.DisableLinkState = true
		}
	})
	sub, err := Dial(o.addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(9, time.Second); err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	waitFor(t, 5*time.Second, "advert route 0->2", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(9, 2)) > 0
	})
	if err := pub.Publish(9, time.Second, []byte("across the legacy hop")); err != nil {
		t.Fatal(err)
	}
	if d := receiveOne(t, sub, 3*time.Second); string(d.Payload) != "across the legacy hop" {
		t.Fatalf("delivery = %+v", d)
	}

	// Give the control loops a few intervals to have done whatever they
	// would wrongly do, then assert total silence on the legacy links.
	time.Sleep(5 * o.brokers[0].cfg.LinkStateInterval)
	for _, id := range []int{0, 2} {
		st := o.brokers[id].Stats()
		if st.Ctrl.LinkStatesSent != 0 || st.Ctrl.ProbesSent != 0 {
			t.Errorf("broker %d sent %d LINK_STATE / %d PROBE frames to a legacy peer",
				id, st.Ctrl.LinkStatesSent, st.Ctrl.ProbesSent)
		}
		if st.Ctrl.LinkStatesRecv != 0 {
			t.Errorf("broker %d received %d LINK_STATE frames from a legacy peer", id, st.Ctrl.LinkStatesRecv)
		}
	}
	st := o.brokers[1].Stats()
	if st.Ctrl.Enabled {
		t.Error("DisableLinkState broker reports an enabled control plane")
	}
	if ctrlList(o.brokers[1], 9, 2) != nil {
		t.Error("legacy broker published a control-plane sending list")
	}
}

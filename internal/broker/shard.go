package broker

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo2"
	"repro/internal/wire"
)

// The broker's data plane is partitioned into Config.Shards single-threaded
// engine shards. Every packet is assigned to exactly one shard by a hash of
// its packet ID, so all state for one packet — frame dedup, in-flight
// retransmission groups, delivery dedup — lives in exactly one engine and
// never needs cross-shard coordination: retransmissions carry the same
// frame ID and packet ID, failover copies carry the same packet ID, and
// hop-by-hop ACKs are routed back by the shard bits their frame ID carries.
//
// Producers (connection read loops, client publishes, firing ACK timers)
// never touch engine state directly: they enqueue items into the owning
// shard's bounded mailbox and the shard goroutine applies them in arrival
// order. A full mailbox blocks the producer — the same backpressure the old
// single broker mutex applied, minus the cross-shard convoying. Cold-path
// control operations that need a coherent per-shard view (stats snapshots)
// rendezvous with every shard through Broker.barrier.

const (
	// shardMailboxLen bounds each shard's work queue. Producers block when
	// it fills (backpressure onto the connection read loop), so the bound
	// caps per-shard memory without dropping custody of ACKed frames.
	shardMailboxLen = 4096
	// maxShards caps Config.Shards: frame IDs carry the owning shard in 6
	// bits (see shardShell.NextFrameID).
	maxShards = 64
)

// shardItem kinds.
const (
	itemPublish = iota
	itemData
	itemAck
	itemTimer
	itemBarrier
	// itemSeedDelivered preloads the shard's delivery-dedup set with a
	// packet ID the WAL recorded as already delivered locally, so durable
	// replay cannot deliver it twice (durable.go).
	itemSeedDelivered
)

// shardItem is one unit of mailbox work. Items are pooled; producers fill
// only the fields their kind uses, and the shard goroutine recycles the
// item after applying it. The dests/path slices are item-owned scratch
// (producers copy into them, the engine copies out of them); payload is a
// stable per-message allocation that outlives the item.
type shardItem struct {
	kind     int
	from     int
	frameID  uint64
	pktID    uint64
	topic    int32
	source   int32
	pubAt    time.Time
	deadline time.Duration
	payload  []byte
	dests    []int
	path     []int
	timer    *ackTimer
	bfn      func(*shard)
	acks     chan struct{}
}

var shardItemPool = sync.Pool{New: func() any { return new(shardItem) }}

func getItem() *shardItem { return shardItemPool.Get().(*shardItem) }

func putItem(it *shardItem) {
	it.payload = nil
	it.timer = nil
	it.bfn = nil
	it.acks = nil
	it.dests = it.dests[:0]
	it.path = it.path[:0]
	shardItemPool.Put(it)
}

// shard is one single-threaded slice of the broker's data plane: its own
// Algorithm-2 engine, object pools, delivery dedup and flush queue, fed by
// one bounded mailbox and drained by one goroutine. Fields below the
// mailbox are owned by that goroutine exclusively.
type shard struct {
	b   *Broker
	idx int
	mb  chan *shardItem

	eng   *algo2.Engine[*ackTimer]
	pools *algo2.Pools[*ackTimer]

	// Shard-goroutine-only state.
	deliveredSeen  *dedup
	pendingDeliver []queuedDeliver
	nextFrameID    uint64

	// Mailbox telemetry, surfaced through wire.StatsReply.
	enqueued  atomic.Uint64
	processed atomic.Uint64
}

// newShard builds one shard. frameSeed seeds the frame counter so a
// restarted broker cannot reuse frame IDs its previous incarnation put on
// the wire within the peers' dedup horizon: in memory mode it is the wall
// clock (nanoseconds advance far faster than frames are sent, and the
// 42-bit counter space spans ~73 minutes of wall clock — orders of
// magnitude past the 2×MaxLifetime horizon), in durable mode the WAL's
// persisted incarnation shifted above the per-restart counter range
// (seedsFromIncarnation).
func newShard(b *Broker, idx int, frameSeed uint64) *shard {
	nodesHint := b.cfg.ID + len(b.cfg.Neighbors) + 1
	s := &shard{
		b:   b,
		idx: idx,
		mb:  make(chan *shardItem, shardMailboxLen),
		// The delivery-dedup budget is split across shards (packet affinity
		// means each packet consults exactly one shard's set), floored so
		// tiny deployments with many shards keep a useful horizon.
		deliveredSeen: newDedup(max(1<<16/b.cfg.Shards, 1<<12)),
		nextFrameID:   frameSeed & (1<<42 - 1),
	}
	s.pools = algo2.NewPools[*ackTimer](nodesHint)
	s.eng = algo2.NewEngine[*ackTimer](algo2.Config{
		NodeID:      b.cfg.ID,
		M:           b.cfg.M,
		AckGuard:    b.cfg.AckGuard,
		MaxLifetime: b.cfg.MaxLifetime,
		Persistent:  b.cfg.Persistent,
		Tracer:      b.cfg.Tracer,
	}, shardShell{s: s}, s.pools)
	return s
}

// enqueue hands an item to the shard goroutine, blocking while the mailbox
// is full. During shutdown the item is discarded instead (barrier
// handshakes still complete); it reports whether the item was accepted.
func (s *shard) enqueue(it *shardItem) bool {
	select {
	case s.mb <- it:
		s.enqueued.Add(1)
		return true
	case <-s.b.done:
		s.discard(it)
		return false
	}
}

// run is the shard goroutine: apply mailbox items in order until Close,
// then drain. The done check is prioritized so a busy mailbox cannot
// starve shutdown.
func (s *shard) run() {
	for {
		select {
		case <-s.b.done:
			s.drain()
			return
		default:
		}
		select {
		case it := <-s.mb:
			s.handle(it)
		case <-s.b.done:
			s.drain()
			return
		}
	}
}

// drain empties whatever is left of the mailbox without doing protocol work
// — matching the pre-shard behavior of entry points bailing once b.closed —
// while still completing barrier handshakes so no control caller hangs.
// It then shuts the engine down, returning every pooled object, so
// PoolsLive is final before Close proceeds to writer-pipeline teardown.
func (s *shard) drain() {
	for {
		select {
		case it := <-s.mb:
			s.discard(it)
		default:
			s.eng.Shutdown()
			return
		}
	}
}

// discard recycles an item without applying it, completing any barrier
// handshake it carries.
func (s *shard) discard(it *shardItem) {
	if it.kind == itemBarrier {
		it.acks <- struct{}{} // buffered to shard count; never blocks
	}
	putItem(it)
}

// handle applies one mailbox item to the shard's engine, then flushes the
// local deliveries the engine queued.
func (s *shard) handle(it *shardItem) {
	s.processed.Add(1)
	b := s.b
	switch it.kind {
	case itemPublish:
		s.eng.Publish(algo2.Packet{
			ID:          it.pktID,
			Topic:       it.topic,
			Source:      it.source,
			PublishedAt: it.pubAt.Sub(b.epoch),
			Deadline:    it.deadline,
			Payload:     it.payload,
		}, it.dests)
	case itemData:
		s.eng.HandleData(algo2.Inbound{
			FrameID: it.frameID,
			From:    it.from,
			Pkt: algo2.Packet{
				ID:          it.pktID,
				Topic:       it.topic,
				Source:      it.source,
				PublishedAt: it.pubAt.Sub(b.epoch),
				Deadline:    it.deadline,
				Payload:     it.payload,
			},
			Dests: it.dests,
			Path:  it.path,
		})
	case itemAck:
		if b.wal != nil {
			// Journal the custody hand-off before HandleAck releases the
			// flight (InflightDests aliases engine memory valid only until
			// then): the neighbor now holds these dests, so a crash after
			// this record must not replay them from here.
			if pid, dests, ok := s.eng.InflightDests(it.frameID); ok {
				b.walClear(pid, dests)
			}
		}
		if to, ok := s.eng.HandleAck(it.frameID); ok {
			if nc := b.neighbors[to]; nc != nil {
				nc.ackSucceeded()
			}
		}
	case itemTimer:
		if at := it.timer; !at.stopped {
			at.fn(at.arg)
		}
	case itemBarrier:
		if it.bfn != nil {
			it.bfn(s)
		}
		it.acks <- struct{}{}
	case itemSeedDelivered:
		s.deliveredSeen.Seen(it.pktID)
	}
	putItem(it)
	s.flushPending()
}

// flushPending sends the deliveries the engine queued during the last item
// to their subscriber clients. Client sends are bounded enqueues into the
// per-connection writer pipelines, so flushing on the shard goroutine
// cannot wedge it behind a stalled subscriber.
func (s *shard) flushPending() {
	if len(s.pendingDeliver) == 0 {
		return
	}
	q := s.pendingDeliver
	s.pendingDeliver = s.pendingDeliver[:0]
	for i := range q {
		s.b.deliver(q[i].led, q[i].msg)
		q[i] = queuedDeliver{}
	}
}

// stats snapshots the shard's mailbox telemetry. Depth and inflight are
// coherent when called on the shard goroutine (via Broker.barrier); the
// shutdown fallback reads the atomics directly and reports inflight as 0.
func (s *shard) stats(onShard bool) wire.ShardStat {
	st := wire.ShardStat{
		Depth:     int32(len(s.mb)),
		Enqueued:  s.enqueued.Load(),
		Processed: s.processed.Load(),
	}
	if onShard {
		st.Inflight = int32(s.eng.InflightCount())
	}
	return st
}

// ackTimer is the live timer handle behind the engine's Deps.AfterFunc. A
// firing wall-clock timer only enqueues a mailbox item; the callback runs
// on the shard goroutine, which is also the only place stopped is read or
// written. CancelTimer (an engine call, hence shard goroutine) therefore
// needs no lock, and cancellation is reliable by construction: a cancelled
// timer's item is recycled unexecuted, so the callback can never observe a
// recycled pooled argument.
type ackTimer struct {
	s       *shard
	t       *time.Timer
	stopped bool
	fn      func(any)
	arg     any
}

// fire runs on the wall-clock timer goroutine: hand the timer to its shard
// and get off the hot path. During shutdown the item is discarded; the
// engine's Shutdown releases the state the timer would have resolved.
func (at *ackTimer) fire() {
	it := getItem()
	it.kind = itemTimer
	it.timer = at
	at.s.enqueue(it)
}

// shardShell implements algo2.Deps for one shard. Every method is invoked
// by the engine on the shard goroutine; everything it reads from the broker
// is either immutable after New (cfg, epoch, neighbors), a copy-on-write
// snapshot (routes, local subscribers) or atomic (counters) — no locks on
// the data path.
type shardShell struct{ s *shard }

var _ algo2.Deps[*ackTimer] = shardShell{}

// Now is the engine clock: time since the broker's construction epoch.
func (sh shardShell) Now() time.Duration { return time.Since(sh.s.b.epoch) }

// AfterFunc arms a wall-clock timer whose callback re-enters the engine
// through the shard mailbox.
func (sh shardShell) AfterFunc(d time.Duration, fn func(any), arg any) *ackTimer {
	at := &ackTimer{s: sh.s, fn: fn, arg: arg}
	at.t = time.AfterFunc(d, at.fire)
	return at
}

// CancelTimer reliably cancels: stopped is only touched on the shard
// goroutine, and a fired-but-not-yet-applied timer item re-checks it there.
func (sh shardShell) CancelTimer(t *ackTimer) {
	t.stopped = true
	t.t.Stop()
}

// NextFrameID allocates an overlay-unique frame identifier. Receivers
// de-duplicate retransmissions by frame ID and senders route the returning
// hop-by-hop ACK by it, so the layout carries both origins: 16 bits of
// broker ID, 6 bits of shard index, 42 bits of per-shard counter.
func (sh shardShell) NextFrameID() uint64 {
	s := sh.s
	s.nextFrameID++
	return uint64(s.b.cfg.ID)<<48 | uint64(s.idx)<<42 | (s.nextFrameID & (1<<42 - 1))
}

// AckWait scales the ACK timeout to the link's measured round trip
// (2*alpha; the engine adds Config.AckGuard on top). Unknown neighbors get
// a bare-guard timeout and fail over via the normal timer path.
func (sh shardShell) AckWait(k int) (time.Duration, bool) {
	if nc := sh.s.b.neighbors[k]; nc != nil {
		alpha, _ := nc.estimate()
		return 2 * alpha, true
	}
	return 0, true
}

// Send encodes one engine frame as a wire.Data and hands it to the
// neighbor's writer pipeline (already safe for concurrent senders). The
// engine frame is only valid until return while the pipeline retains its
// message, so the wire message is built fresh per attempt — from the pool,
// recycled by the writer after encoding; the payload []byte is stable
// (copied once on receipt) and shared.
func (sh shardShell) Send(f *algo2.Frame) {
	b := sh.s.b
	nc := b.neighbors[f.To]
	if nc == nil {
		return // no such neighbor; the ACK timer will fail the copy over
	}
	b.forwarded.Add(1)
	msg := getDataFrame()
	msg.FrameID = f.ID
	msg.PacketID = f.Pkt.ID
	msg.Topic = f.Pkt.Topic
	msg.Source = f.Pkt.Source
	msg.PublishedAt = b.epoch.Add(f.Pkt.PublishedAt)
	msg.Deadline = f.Pkt.Deadline
	msg.Payload = f.Pkt.Payload.([]byte)
	for _, d := range f.Dests {
		msg.Dests = append(msg.Dests, int32(d))
	}
	for _, p := range f.Path {
		msg.Path = append(msg.Path, int32(p))
	}
	if err := nc.send(msg); err != nil {
		releaseMsg(msg)
		b.logf("send frame %d to %d: %v", f.ID, f.To, err)
		return
	}
	if b.ctrl != nil {
		// Sample the send time so the returning hop-by-hop ACK measures
		// alpha from real traffic (bounded; see noteDataSend).
		nc.noteDataSend(f.ID, time.Now())
	}
}

// SendingList exposes the distributed Algorithm-1 state: the link-state
// control plane's table (controlplane.go) when it has converged a list for
// the pair, else the advert-plane list (rebuilt copy-on-write by
// recomputeAndAdvertise). The fallback covers the gossip warm-up window
// and overlays where link state is disabled or peers are legacy.
func (sh shardShell) SendingList(topic int32, dest int) []int {
	key := routeKey{topic: topic, sub: int32(dest)}
	if cs := sh.s.b.ctrlSnap.Load(); cs != nil {
		if l := cs.lists[key]; len(l) > 0 {
			return l
		}
	}
	return sh.s.b.routesSnap.Load().lists[key]
}

// LinkUp skips neighbors without a live connection.
func (sh shardShell) LinkUp(k int) bool {
	nc := sh.s.b.neighbors[k]
	return nc != nil && nc.connected()
}

// Deliver queues a local delivery, flushed by the shard goroutine after the
// engine call returns. Packet-level dedup lives here, per shard — packet
// affinity guarantees every copy of one packet consults the same set.
func (sh shardShell) Deliver(pkt *algo2.Packet, _ int) {
	s := sh.s
	if s.deliveredSeen.Seen(pkt.ID) {
		return
	}
	if s.b.wal != nil {
		// Journaled at the same point the dedup set marks the packet — a
		// topic with no local ledger still counts as delivered, exactly as
		// it does in memory. Durability is group-committed, not awaited
		// (see wal.AppendDeliver for the redelivery window this accepts).
		s.b.wal.AppendDeliver(pkt.ID)
	}
	led := s.b.localLedger(pkt.Topic)
	if led == nil {
		return
	}
	s.pendingDeliver = append(s.pendingDeliver, queuedDeliver{
		led: led,
		msg: &wire.Deliver{
			Topic:       pkt.Topic,
			PacketID:    pkt.ID,
			Source:      pkt.Source,
			PublishedAt: s.b.epoch.Add(pkt.PublishedAt),
			Payload:     pkt.Payload.([]byte),
		},
	})
}

// Drop counts abandoned destinations — and, in durable mode, settles them
// in the WAL so an abandoned packet is not resurrected at the next restart.
func (sh shardShell) Drop(pkt *algo2.Packet, dests []int, reason algo2.DropReason) {
	b := sh.s.b
	b.walClear(pkt.ID, dests)
	b.dropped.Add(uint64(len(dests)))
	for _, dest := range dests {
		if reason == algo2.DropExhausted {
			b.logf("packet %d: no route to dest %d, dropping at origin", pkt.ID, dest)
		} else {
			b.logf("packet %d: lifetime exceeded for dest %d", pkt.ID, dest)
		}
	}
}

// AckTimedOut decays the neighbor's adaptive gamma.
func (sh shardShell) AckTimedOut(k int) {
	if nc := sh.s.b.neighbors[k]; nc != nil {
		nc.ackTimedOut()
	}
}

// NextRetryAt paces §III persistency retries: a packet whose sending list
// is unreachable is re-processed every RetryInterval until a route appears
// or its lifetime expires.
func (sh shardShell) NextRetryAt(now time.Duration) time.Duration {
	return now + sh.s.b.cfg.RetryInterval
}

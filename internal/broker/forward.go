package broker

import (
	"sort"
	"time"

	"repro/internal/wire"
)

// packetCopy is Algorithm 2's per-copy state at this broker: the
// destinations still unresolved here, the neighbors that timed out for this
// copy, and the routing path the copy arrived with.
type packetCopy struct {
	packetID    uint64
	topic       int32
	source      int32
	publishedAt time.Time
	deadline    time.Duration
	payload     []byte

	path     []int32
	pathSet  map[int32]bool
	upstream int // -1 at the origin
	pending  map[int32]bool
	failed   map[int]bool
}

// flight is one sent group awaiting its hop-by-hop ACK.
type flight struct {
	frameID    uint64
	to         int
	dests      []int32
	attempts   int
	toUpstream bool
	msg        *wire.Data
	copyState  *packetCopy
	timer      *time.Timer
}

// publishLocal accepts a publish from a connected client: deliver to local
// subscribers immediately, then route one copy toward every known
// subscriber broker with Algorithm 2.
func (b *Broker) publishLocal(m *wire.Publish) {
	deadline := m.Deadline
	if deadline <= 0 {
		deadline = b.cfg.DefaultDeadline
	}
	// m belongs to the read loop's pooled Reader and is recycled on the next
	// frame, while the routed copy and the queued deliveries outlive this
	// call: take one stable copy of the payload.
	payload := append([]byte(nil), m.Payload...)
	now := time.Now()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.published++
	b.nextPacketID++
	// Packet IDs must be overlay-unique (delivery dedup keys on them), so
	// the broker ID occupies the high bits.
	pid := uint64(b.cfg.ID)<<48 | (b.nextPacketID & (1<<48 - 1))
	pc := &packetCopy{
		packetID:    pid,
		topic:       m.Topic,
		source:      int32(b.cfg.ID),
		publishedAt: now,
		deadline:    deadline,
		payload:     payload,
		pathSet:     map[int32]bool{int32(b.cfg.ID): true},
		upstream:    -1,
		pending:     make(map[int32]bool),
		failed:      make(map[int]bool),
	}
	for key, rs := range b.routes {
		if key.topic != m.Topic || key.sub == int32(b.cfg.ID) {
			continue
		}
		if rs.own.Reachable() || len(rs.params) > 0 {
			pc.pending[key.sub] = true
		}
	}
	deliverTo := b.localDeliveriesLocked(m.Topic)
	b.processLocked(pc)
	b.mu.Unlock()

	b.deliver(deliverTo, &wire.Deliver{
		Topic:       pc.topic,
		PacketID:    pc.packetID,
		Source:      pc.source,
		PublishedAt: now,
		Payload:     payload,
	})
}

// handleData processes a data frame from a neighbor (Algorithm 2, receive
// side). The ACK was already sent by the caller.
func (b *Broker) handleData(from int, m *wire.Data) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if b.seen.Seen(m.FrameID) {
		b.mu.Unlock()
		return
	}

	// m is recycled by the read loop's pooled Reader after return; the
	// packet copy (held across ACK timers) and any queued deliveries need a
	// stable payload, so copy it once here.
	payload := append([]byte(nil), m.Payload...)
	pc := &packetCopy{
		packetID:    m.PacketID,
		topic:       m.Topic,
		source:      m.Source,
		publishedAt: m.PublishedAt,
		deadline:    m.Deadline,
		payload:     payload,
		path:        append([]int32(nil), m.Path...),
		pathSet:     make(map[int32]bool, len(m.Path)+1),
		upstream:    upstreamOf(int32(b.cfg.ID), m.Path),
		pending:     make(map[int32]bool),
		failed:      make(map[int]bool),
	}
	for _, hop := range m.Path {
		pc.pathSet[hop] = true
	}
	pc.pathSet[int32(b.cfg.ID)] = true

	var deliverTo []*clientConn
	var deliverMsg *wire.Deliver
	for _, dest := range m.Dests {
		if dest == int32(b.cfg.ID) {
			if b.deliveredSeen.Seen(m.PacketID) {
				continue // duplicate copy from a failover race
			}
			deliverTo = b.localDeliveriesLocked(m.Topic)
			deliverMsg = &wire.Deliver{
				Topic:       m.Topic,
				PacketID:    m.PacketID,
				Source:      m.Source,
				PublishedAt: m.PublishedAt,
				Payload:     payload,
			}
			continue
		}
		pc.pending[dest] = true
	}
	b.processLocked(pc)
	b.mu.Unlock()

	if deliverMsg != nil {
		b.deliver(deliverTo, deliverMsg)
	}
}

// localDeliveriesLocked snapshots the local subscriber connections for a
// topic.
func (b *Broker) localDeliveriesLocked(topic int32) []*clientConn {
	subs := b.localSubs[topic]
	if len(subs) == 0 {
		return nil
	}
	out := make([]*clientConn, 0, len(subs))
	for c := range subs {
		out = append(out, c)
	}
	return out
}

// deliver pushes a message to local subscriber clients (outside b.mu).
func (b *Broker) deliver(clients []*clientConn, msg *wire.Deliver) {
	for _, c := range clients {
		if err := c.send(msg); err != nil {
			b.logf("deliver to %q: %v", c.name, err)
			continue
		}
		b.mu.Lock()
		b.delivered++
		b.mu.Unlock()
	}
}

// processLocked is Algorithm 2's dispatch loop: assign every pending
// destination to the first eligible sending-list neighbor, group shared
// next hops into one frame, reroute exhausted destinations upstream, and
// drop at the origin.
func (b *Broker) processLocked(pc *packetCopy) {
	if time.Since(pc.publishedAt) > b.cfg.MaxLifetime {
		for dest := range pc.pending {
			delete(pc.pending, dest)
			b.dropped++
			b.logf("packet %d: lifetime exceeded for dest %d", pc.packetID, dest)
		}
		return
	}
	groups := make(map[int][]int32)
	var exhausted []int32
	dests := make([]int32, 0, len(pc.pending))
	for d := range pc.pending {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, dest := range dests {
		nh := b.nextHopLocked(pc, dest)
		if nh < 0 {
			exhausted = append(exhausted, dest)
			continue
		}
		groups[nh] = append(groups[nh], dest)
	}
	hops := make([]int, 0, len(groups))
	for nh := range groups {
		hops = append(hops, nh)
	}
	sort.Ints(hops)
	for _, nh := range hops {
		b.sendGroupLocked(pc, nh, groups[nh], false)
	}
	if len(exhausted) == 0 {
		return
	}
	if pc.upstream < 0 {
		for _, dest := range exhausted {
			delete(pc.pending, dest)
			b.dropped++
			b.logf("packet %d: no route to dest %d, dropping at origin", pc.packetID, dest)
		}
		return
	}
	b.sendGroupLocked(pc, pc.upstream, exhausted, true)
}

// nextHopLocked picks the first sending-list neighbor not on the routing
// path, not failed for this copy, and currently connected.
func (b *Broker) nextHopLocked(pc *packetCopy, dest int32) int {
	for _, nid := range b.sendingListLocked(pc.topic, dest) {
		if pc.pathSet[int32(nid)] || pc.failed[nid] {
			continue
		}
		nc, ok := b.neighbors[nid]
		if !ok || !nc.connected() {
			continue
		}
		return nid
	}
	return -1
}

// sendGroupLocked transmits one group to neighbor nh and arms the ACK timer
// (Algorithm 2 lines 13–22).
func (b *Broker) sendGroupLocked(pc *packetCopy, nh int, dests []int32, toUpstream bool) {
	for _, dest := range dests {
		delete(pc.pending, dest)
	}
	pc.path = append(pc.path, int32(b.cfg.ID))
	b.nextFrameID++
	// Frame IDs must be unique across the whole overlay — receivers
	// de-duplicate retransmissions by frame ID — so the broker ID is
	// embedded in the high bits above a per-broker counter.
	frameID := uint64(b.cfg.ID)<<48 | (b.nextFrameID & (1<<48 - 1))
	msg := &wire.Data{
		FrameID:     frameID,
		PacketID:    pc.packetID,
		Topic:       pc.topic,
		Source:      pc.source,
		PublishedAt: pc.publishedAt,
		Deadline:    pc.deadline,
		Dests:       append([]int32(nil), dests...),
		Path:        append([]int32(nil), pc.path...),
		Payload:     pc.payload,
	}
	fl := &flight{
		frameID:    msg.FrameID,
		to:         nh,
		dests:      msg.Dests,
		toUpstream: toUpstream,
		msg:        msg,
		copyState:  pc,
	}
	b.inflight[fl.frameID] = fl
	b.transmitLocked(fl)
}

// transmitLocked performs one transmission attempt and arms the ACK timer
// scaled to the link's measured round trip.
func (b *Broker) transmitLocked(fl *flight) {
	fl.attempts++
	nc, ok := b.neighbors[fl.to]
	var timeout time.Duration
	if ok {
		alpha, _ := nc.estimate()
		timeout = 2*alpha + b.cfg.AckGuard
		b.forwarded++
		if err := nc.send(fl.msg); err != nil {
			b.logf("send frame %d to %d: %v", fl.frameID, fl.to, err)
		}
	} else {
		timeout = b.cfg.AckGuard
	}
	fl.timer = time.AfterFunc(timeout, func() { b.ackTimeout(fl.frameID) })
}

// handleAck resolves an in-flight group: the neighbor took responsibility,
// so this broker forgets the copy (aggressive deletion, §III).
func (b *Broker) handleAck(frameID uint64) {
	b.mu.Lock()
	fl, ok := b.inflight[frameID]
	if !ok {
		b.mu.Unlock()
		return
	}
	fl.timer.Stop()
	delete(b.inflight, frameID)
	nc := b.neighbors[fl.to]
	b.mu.Unlock()
	if nc != nil {
		nc.ackSucceeded()
	}
}

// ackTimeout fires when a group's ACK never arrived: retransmit within the
// m budget (or indefinitely toward the upstream), otherwise mark the
// neighbor failed for this copy and re-process its destinations.
func (b *Broker) ackTimeout(frameID uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	fl, ok := b.inflight[frameID]
	if !ok {
		return
	}
	if nc := b.neighbors[fl.to]; nc != nil {
		nc.ackTimedOut()
	}
	expired := time.Since(fl.copyState.publishedAt) > b.cfg.MaxLifetime
	if !expired && (fl.toUpstream || fl.attempts < b.cfg.M) {
		b.transmitLocked(fl)
		return
	}
	delete(b.inflight, frameID)
	if expired {
		b.dropped += uint64(len(fl.dests))
		return
	}
	fl.copyState.failed[fl.to] = true
	for _, dest := range fl.dests {
		fl.copyState.pending[dest] = true
	}
	b.processLocked(fl.copyState)
}

// upstreamOf finds the upstream broker in a routing path: the entry before
// node's first appearance, the last sender for fresh arrivals, or -1 at the
// origin.
func upstreamOf(node int32, path []int32) int {
	for i, hop := range path {
		if hop == node {
			if i == 0 {
				return -1
			}
			return int(path[i-1])
		}
	}
	if len(path) == 0 {
		return -1
	}
	return int(path[len(path)-1])
}

package broker

import (
	"time"

	"repro/internal/wire"
)

// The live broker is a sharded shell over the shared Algorithm-2 engine
// (internal/algo2): every hot entry point below routes its input to the
// owning shard's mailbox by packet-ID hash (shard.go), and the per-shard
// goroutine applies it to that shard's single-threaded engine. No entry
// point here takes b.mu — the data plane reads only immutable broker state,
// copy-on-write snapshots and atomics.

// queuedDeliver is one local delivery the engine produced during a shard's
// engine call; it is sent to the ledger's subscribers when the shard
// flushes, after the engine returns. led is an immutable snapshot ledger.
type queuedDeliver struct {
	led *topicLedger
	msg *wire.Deliver
}

// publishLocal accepts a publish from a connected client: deliver to local
// subscribers immediately, then hand one copy per known subscriber broker
// to the owning shard's engine.
func (b *Broker) publishLocal(m *wire.Publish) {
	if b.stopping() {
		return
	}
	deadline := m.Deadline
	if deadline <= 0 {
		deadline = b.cfg.DefaultDeadline
	}
	// m belongs to the read loop's pooled Reader and is recycled on the next
	// frame, while the routed copy and the queued deliveries outlive this
	// call: take one stable copy of the payload.
	payload := append([]byte(nil), m.Payload...)
	now := time.Now()
	b.published.Add(1)
	// Packet IDs must be overlay-unique (delivery dedup keys on them), so
	// the broker ID occupies the high bits.
	pid := uint64(b.cfg.ID)<<48 | (b.nextPacketID.Add(1) & (1<<48 - 1))
	deliverTo := b.localLedger(m.Topic)

	it := getItem()
	it.kind = itemPublish
	it.pktID = pid
	it.topic = m.Topic
	it.source = int32(b.cfg.ID)
	it.pubAt = now
	it.deadline = deadline
	it.payload = payload
	// The snapshot's destination set is immutable but the item's slices are
	// recycled scratch, so copy rather than alias it.
	it.dests = append(it.dests[:0], b.routesSnap.Load().destsByTopic[m.Topic]...)
	if b.wal != nil && len(it.dests) > 0 {
		// Origin custody: journal before the packet reaches the engine, so a
		// crash replays it as a publish of the still-outstanding dests.
		// Frame ID 0 marks an origin record — real frame IDs never collide
		// with it (the counter seeds above zero and the broker/shard bits
		// sit higher still). Forwarding need not wait for durability: there
		// is no upstream copy to release, and a pre-fsync crash only loses
		// what a memory-custody broker would have lost anyway.
		d := wire.Data{
			PacketID:    pid,
			Topic:       m.Topic,
			Source:      int32(b.cfg.ID),
			PublishedAt: now,
			Deadline:    deadline,
			Payload:     payload,
		}
		for _, dest := range it.dests {
			d.Dests = append(d.Dests, int32(dest))
		}
		b.wal.AppendCustody(&d, -1)
	}
	b.shardOf(pid).enqueue(it)

	b.deliver(deliverTo, &wire.Deliver{
		Topic:       m.Topic,
		PacketID:    pid,
		Source:      int32(b.cfg.ID),
		PublishedAt: now,
		Payload:     payload,
	})
}

// handleData routes a data frame from a neighbor (Algorithm 2, receive
// side) to the packet's shard. The hop-by-hop ACK was already sent by the
// caller — for every received frame, duplicates included.
func (b *Broker) handleData(from int, m *wire.Data) {
	if b.stopping() {
		return
	}
	// m is recycled by the read loop's pooled Reader after return; the
	// engine's copy (held across ACK timers) and any queued deliveries need
	// a stable payload, so copy it once here. Dests/Path are copied into the
	// pooled item's own scratch slices — the engine copies both again before
	// its HandleData returns, so the item can be recycled immediately after.
	it := getItem()
	it.kind = itemData
	it.from = from
	it.frameID = m.FrameID
	it.pktID = m.PacketID
	it.topic = m.Topic
	it.source = m.Source
	it.pubAt = m.PublishedAt
	it.deadline = m.Deadline
	it.payload = append([]byte(nil), m.Payload...)
	for _, d := range m.Dests {
		it.dests = append(it.dests, int(d))
	}
	for _, p := range m.Path {
		it.path = append(it.path, int(p))
	}
	b.shardOf(m.PacketID).enqueue(it)
}

// handleAck routes an in-flight group's resolution to the shard that sent
// the frame: the neighbor took responsibility, so that shard forgets the
// copy (aggressive deletion, §III) and credits the neighbor's gamma.
func (b *Broker) handleAck(frameID uint64) {
	it := getItem()
	it.kind = itemAck
	it.frameID = frameID
	b.ackShard(frameID).enqueue(it)
}

// shardOf maps a packet ID to its owning shard. All state for one packet —
// frame dedup, in-flight groups, delivery dedup — must live in exactly one
// shard, and every retransmission or failover copy of a packet carries the
// same packet ID, so hashing it gives stable affinity.
func (b *Broker) shardOf(pid uint64) *shard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	// Fibonacci multiplicative hash: packet IDs are counter-in-low-bits, so
	// mix before reducing or adjacent packets would all land in order.
	h := pid * 0x9e3779b97f4a7c15
	return b.shards[(h>>33)%uint64(len(b.shards))]
}

// ackShard routes a returning hop-by-hop ACK by the shard index the frame
// ID carries (bits 42–47, written by shardShell.NextFrameID). ACKs only
// ever return for frames this broker sent, so the bits are always ours; the
// modulo guards against a corrupted or foreign frame ID.
func (b *Broker) ackShard(frameID uint64) *shard {
	return b.shards[int(frameID>>42&(maxShards-1))%len(b.shards)]
}

// deliver pushes a message to a topic ledger's local subscribers. Sends are
// bounded enqueues into per-connection writer pipelines, safe from any
// goroutine. Legacy subscribers each get their own Deliver frame; every
// multiplexed session gets ONE MuxDeliver frame carrying its subscriber-ID
// list — the payload []byte and the ledger's ID slices are shared with the
// queued messages (both immutable, see edge.go), so the aggregation costs
// one small message header per session, not one payload copy per
// subscriber. The delivered counter counts logical deliveries either way.
func (b *Broker) deliver(led *topicLedger, msg *wire.Deliver) {
	if led == nil {
		return
	}
	for _, c := range led.legacy {
		if err := c.send(msg); err != nil {
			b.logf("deliver to %q: %v", c.name, err)
			continue
		}
		b.delivered.Add(1)
	}
	for i := range led.sessions {
		sd := &led.sessions[i]
		// Each MuxDeliver has exactly one owner (one session writer), so the
		// struct comes from a pool: the writer recycles it after encoding
		// (releaseMsg), and a failed send recycles it here.
		mux := getMuxDeliver()
		mux.Topic = msg.Topic
		mux.PacketID = msg.PacketID
		mux.Source = msg.Source
		mux.PublishedAt = msg.PublishedAt
		mux.SubIDs = sd.subIDs
		mux.Payload = msg.Payload
		if err := sd.c.send(mux); err != nil {
			releaseMsg(mux)
			b.logf("mux deliver to %q: %v", sd.c.name, err)
			continue
		}
		b.delivered.Add(uint64(len(sd.subIDs)))
	}
}

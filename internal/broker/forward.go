package broker

import (
	"sort"
	"time"

	"repro/internal/algo2"
	"repro/internal/wire"
)

// The live broker is a thin shell over the shared Algorithm-2 engine
// (internal/algo2): liveShell adapts the engine's Deps onto wall-clock
// timers, the per-connection writer pipelines, and the distributed
// Algorithm-1 route state, while the engine owns all per-copy routing state
// (pending destinations, path bitsets, failed-neighbor sets, in-flight
// retransmission groups, frame dedup) in pooled, allocation-free form. All
// engine entry points run under b.mu — the broker's mutex is the engine's
// required external serialization.

// ackTimer is the live timer handle behind the engine's Deps.AfterFunc.
// Engine flights are pooled, so cancellation must be reliable:
// time.Timer.Stop alone can lose the race against a callback already
// started, so fire re-checks the stopped flag under b.mu, which CancelTimer
// sets under the same lock (engine calls always hold b.mu).
type ackTimer struct {
	b       *Broker
	t       *time.Timer
	stopped bool
	fn      func(any)
	arg     any
}

// fire enters the engine under b.mu unless the timer was cancelled or the
// broker closed, then flushes any deliveries the engine queued.
func (at *ackTimer) fire() {
	b := at.b
	b.mu.Lock()
	if b.closed || at.stopped {
		b.mu.Unlock()
		return
	}
	at.fn(at.arg)
	flush := b.takePendingLocked()
	b.mu.Unlock()
	b.flushDeliveries(flush)
}

// queuedDeliver is one local delivery the engine produced while b.mu was
// held; it is sent to the clients after the lock is released.
type queuedDeliver struct {
	clients []*clientConn
	msg     *wire.Deliver
}

// liveShell implements algo2.Deps over the broker. Every method is invoked
// by the engine with b.mu held.
type liveShell struct{ b *Broker }

var _ algo2.Deps[*ackTimer] = liveShell{}

// Now is the engine clock: time since the broker's construction epoch.
// Durations relative to the epoch subtract back to plain wall-clock
// differences, so cross-broker lifetime checks behave exactly like the
// previous time.Since-based code.
func (s liveShell) Now() time.Duration { return time.Since(s.b.epoch) }

// AfterFunc arms a wall-clock timer whose callback re-enters the engine
// under b.mu.
func (s liveShell) AfterFunc(d time.Duration, fn func(any), arg any) *ackTimer {
	at := &ackTimer{b: s.b, fn: fn, arg: arg}
	at.t = time.AfterFunc(d, at.fire)
	return at
}

// CancelTimer reliably cancels: stopped is written under b.mu, and fire
// checks it under b.mu before touching the (pooled) argument.
func (s liveShell) CancelTimer(t *ackTimer) {
	t.stopped = true
	t.t.Stop()
}

// NextFrameID allocates an overlay-unique frame identifier — receivers
// de-duplicate retransmissions by frame ID, so the broker ID occupies the
// high bits above a per-broker counter.
func (s liveShell) NextFrameID() uint64 {
	b := s.b
	b.nextFrameID++
	return uint64(b.cfg.ID)<<48 | (b.nextFrameID & (1<<48 - 1))
}

// AckWait scales the ACK timeout to the link's measured round trip
// (2*alpha; the engine adds Config.AckGuard on top). Unknown neighbors get
// a bare-guard timeout and fail over via the normal timer path.
func (s liveShell) AckWait(k int) (time.Duration, bool) {
	if nc, ok := s.b.neighbors[k]; ok {
		alpha, _ := nc.estimate()
		return 2 * alpha, true
	}
	return 0, true
}

// Send encodes one engine frame as a wire.Data and hands it to the
// neighbor's writer pipeline. The pooled frame is only valid until return
// while the pipeline retains its message, so the wire message is built
// fresh per attempt; the payload []byte is stable (copied once on receipt)
// and shared.
func (s liveShell) Send(f *algo2.Frame) {
	b := s.b
	nc, ok := b.neighbors[f.To]
	if !ok {
		return // no such neighbor; the ACK timer will fail the copy over
	}
	b.forwarded++
	msg := &wire.Data{
		FrameID:     f.ID,
		PacketID:    f.Pkt.ID,
		Topic:       f.Pkt.Topic,
		Source:      f.Pkt.Source,
		PublishedAt: b.epoch.Add(f.Pkt.PublishedAt),
		Deadline:    f.Pkt.Deadline,
		Dests:       make([]int32, len(f.Dests)),
		Path:        make([]int32, len(f.Path)),
		Payload:     f.Pkt.Payload.([]byte),
	}
	for i, d := range f.Dests {
		msg.Dests[i] = int32(d)
	}
	for i, p := range f.Path {
		msg.Path[i] = int32(p)
	}
	if err := nc.send(msg); err != nil {
		b.logf("send frame %d to %d: %v", f.ID, f.To, err)
	}
}

// SendingList exposes the distributed Algorithm-1 state.
func (s liveShell) SendingList(topic int32, dest int) []int {
	return s.b.sendingListLocked(topic, int32(dest))
}

// LinkUp skips neighbors without a live connection.
func (s liveShell) LinkUp(k int) bool {
	nc, ok := s.b.neighbors[k]
	return ok && nc.connected()
}

// Deliver queues a local delivery (sent after b.mu is released — client
// sends must not run under the broker lock). Packet-level dedup lives
// here: failover can legitimately produce duplicate copies of a packet on
// distinct frames.
func (s liveShell) Deliver(pkt *algo2.Packet, _ int) {
	b := s.b
	if b.deliveredSeen.Seen(pkt.ID) {
		return
	}
	b.pendingDeliver = append(b.pendingDeliver, queuedDeliver{
		clients: b.localDeliveriesLocked(pkt.Topic),
		msg: &wire.Deliver{
			Topic:       pkt.Topic,
			PacketID:    pkt.ID,
			Source:      pkt.Source,
			PublishedAt: b.epoch.Add(pkt.PublishedAt),
			Payload:     pkt.Payload.([]byte),
		},
	})
}

// Drop counts abandoned destinations.
func (s liveShell) Drop(pkt *algo2.Packet, dests []int, reason algo2.DropReason) {
	b := s.b
	b.dropped += uint64(len(dests))
	for _, dest := range dests {
		if reason == algo2.DropExhausted {
			b.logf("packet %d: no route to dest %d, dropping at origin", pkt.ID, dest)
		} else {
			b.logf("packet %d: lifetime exceeded for dest %d", pkt.ID, dest)
		}
	}
}

// AckTimedOut decays the neighbor's adaptive gamma.
func (s liveShell) AckTimedOut(k int) {
	if nc := s.b.neighbors[k]; nc != nil {
		nc.ackTimedOut()
	}
}

// NextRetryAt paces §III persistency retries: a packet whose sending list
// is unreachable is re-processed every RetryInterval until a route appears
// or its lifetime expires.
func (s liveShell) NextRetryAt(now time.Duration) time.Duration {
	return now + s.b.cfg.RetryInterval
}

// publishLocal accepts a publish from a connected client: deliver to local
// subscribers immediately, then hand one copy per known subscriber broker
// to the engine.
func (b *Broker) publishLocal(m *wire.Publish) {
	deadline := m.Deadline
	if deadline <= 0 {
		deadline = b.cfg.DefaultDeadline
	}
	// m belongs to the read loop's pooled Reader and is recycled on the next
	// frame, while the routed copy and the queued deliveries outlive this
	// call: take one stable copy of the payload.
	payload := append([]byte(nil), m.Payload...)
	now := time.Now()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.published++
	b.nextPacketID++
	// Packet IDs must be overlay-unique (delivery dedup keys on them), so
	// the broker ID occupies the high bits.
	pid := uint64(b.cfg.ID)<<48 | (b.nextPacketID & (1<<48 - 1))
	dests := b.destsBuf[:0]
	for key, rs := range b.routes {
		if key.topic != m.Topic || key.sub == int32(b.cfg.ID) {
			continue
		}
		if rs.own.Reachable() || len(rs.params) > 0 {
			dests = append(dests, int(key.sub))
		}
	}
	// Map iteration order is random; sort so traces (and the differential
	// harness) see deterministic destination sets.
	sort.Ints(dests)
	b.destsBuf = dests
	deliverTo := b.localDeliveriesLocked(m.Topic)
	b.eng.Publish(algo2.Packet{
		ID:          pid,
		Topic:       m.Topic,
		Source:      int32(b.cfg.ID),
		PublishedAt: now.Sub(b.epoch),
		Deadline:    deadline,
		Payload:     payload,
	}, dests)
	flush := b.takePendingLocked()
	b.mu.Unlock()

	b.deliver(deliverTo, &wire.Deliver{
		Topic:       m.Topic,
		PacketID:    pid,
		Source:      int32(b.cfg.ID),
		PublishedAt: now,
		Payload:     payload,
	})
	b.flushDeliveries(flush)
}

// handleData processes a data frame from a neighbor (Algorithm 2, receive
// side). The hop-by-hop ACK was already sent by the caller — for every
// received frame, duplicates included.
func (b *Broker) handleData(from int, m *wire.Data) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if b.eng.SeenFrame(m.FrameID) {
		b.mu.Unlock()
		return // retransmission; skip the payload copy entirely
	}
	// m is recycled by the read loop's pooled Reader after return; the
	// engine's copy (held across ACK timers) and any queued deliveries need
	// a stable payload, so copy it once here. Dests/Path go through per-
	// broker scratch buffers — the engine copies both before returning.
	payload := append([]byte(nil), m.Payload...)
	dests := b.destsBuf[:0]
	for _, d := range m.Dests {
		dests = append(dests, int(d))
	}
	b.destsBuf = dests
	path := b.pathBuf[:0]
	for _, p := range m.Path {
		path = append(path, int(p))
	}
	b.pathBuf = path
	b.eng.HandleData(algo2.Inbound{
		FrameID: m.FrameID,
		From:    from,
		Pkt: algo2.Packet{
			ID:          m.PacketID,
			Topic:       m.Topic,
			Source:      m.Source,
			PublishedAt: m.PublishedAt.Sub(b.epoch),
			Deadline:    m.Deadline,
			Payload:     payload,
		},
		Dests: dests,
		Path:  path,
	})
	flush := b.takePendingLocked()
	b.mu.Unlock()
	b.flushDeliveries(flush)
}

// handleAck resolves an in-flight group: the neighbor took responsibility,
// so this broker forgets the copy (aggressive deletion, §III) and credits
// the neighbor's gamma.
func (b *Broker) handleAck(frameID uint64) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	to, ok := b.eng.HandleAck(frameID)
	var nc *neighborConn
	if ok {
		nc = b.neighbors[to]
	}
	b.mu.Unlock()
	if nc != nil {
		nc.ackSucceeded()
	}
}

// takePendingLocked detaches the engine-queued deliveries for flushing
// outside b.mu.
func (b *Broker) takePendingLocked() []queuedDeliver {
	if len(b.pendingDeliver) == 0 {
		return nil
	}
	q := b.pendingDeliver
	b.pendingDeliver = nil
	return q
}

// flushDeliveries sends detached deliveries to their clients.
func (b *Broker) flushDeliveries(q []queuedDeliver) {
	for _, d := range q {
		b.deliver(d.clients, d.msg)
	}
}

// localDeliveriesLocked snapshots the local subscriber connections for a
// topic.
func (b *Broker) localDeliveriesLocked(topic int32) []*clientConn {
	subs := b.localSubs[topic]
	if len(subs) == 0 {
		return nil
	}
	out := make([]*clientConn, 0, len(subs))
	for c := range subs {
		out = append(out, c)
	}
	return out
}

// deliver pushes a message to local subscriber clients (outside b.mu).
func (b *Broker) deliver(clients []*clientConn, msg *wire.Deliver) {
	for _, c := range clients {
		if err := c.send(msg); err != nil {
			b.logf("deliver to %q: %v", c.name, err)
			continue
		}
		b.mu.Lock()
		b.delivered++
		b.mu.Unlock()
	}
}

package broker

import (
	"testing"
	"time"
)

func TestDedupBasics(t *testing.T) {
	d := newDedup(4)
	for i := uint64(0); i < 4; i++ {
		if d.Seen(i) {
			t.Fatalf("fresh key %d reported seen", i)
		}
		if !d.Seen(i) {
			t.Fatalf("repeated key %d reported fresh", i)
		}
	}
}

func TestDedupEvictsOldestFIFO(t *testing.T) {
	d := newDedup(3)
	for i := uint64(1); i <= 3; i++ {
		d.Seen(i)
	}
	d.Seen(4) // evicts 1
	if d.Seen(1) {
		t.Error("evicted key 1 still reported seen")
	}
	// Re-adding 1 evicted 2 (oldest remaining).
	if d.Seen(2) {
		t.Error("key 2 should have been evicted")
	}
	// 3 and 4 were pushed out by the re-adds of 1 and 2? Order now: after
	// inserts 1..3 -> [1 2 3]; Seen(4) evicts 1 -> [4 2 3]; Seen(1) evicts
	// 2 -> [4 1 3]; Seen(2) evicts 3 -> [4 1 2]. So 4 must still be seen.
	if !d.Seen(4) {
		t.Error("key 4 should still be present")
	}
}

func TestDedupMinimumCapacity(t *testing.T) {
	d := newDedup(0) // clamps to 1
	if d.Seen(1) {
		t.Error("fresh key seen")
	}
	if d.Seen(2) {
		t.Error("fresh key seen")
	}
	if d.Seen(1) {
		t.Error("key 1 should have been evicted by key 2")
	}
}

func TestGammaAdaptation(t *testing.T) {
	nc := newNeighborConn(1)
	_, g0 := nc.estimate()
	if g0 != initialGamma {
		t.Fatalf("initial gamma = %v", g0)
	}
	nc.ackTimedOut()
	_, g1 := nc.estimate()
	if g1 >= g0 {
		t.Errorf("gamma did not decay on timeout: %v -> %v", g0, g1)
	}
	for i := 0; i < 200; i++ {
		nc.ackTimedOut()
	}
	_, gFloor := nc.estimate()
	if gFloor < gammaFloor {
		t.Errorf("gamma fell through floor: %v", gFloor)
	}
	for i := 0; i < 500; i++ {
		nc.ackSucceeded()
	}
	_, gUp := nc.estimate()
	if gUp <= gFloor || gUp > 1 {
		t.Errorf("gamma did not recover: %v", gUp)
	}
}

func TestAlphaFromPong(t *testing.T) {
	nc := newNeighborConn(1)
	base := time.Now()
	nc.recordPing(7, base)
	if nc.recordPong(99, base.Add(time.Millisecond)) {
		t.Error("unknown pong token accepted")
	}
	if !nc.recordPong(7, base.Add(40*time.Millisecond)) {
		t.Error("known pong token rejected")
	}
	alpha, _ := nc.estimate()
	// EWMA of initial 20ms toward sample 20ms (RTT/2 = 20ms): stays 20ms.
	if alpha < 15*time.Millisecond || alpha > 25*time.Millisecond {
		t.Errorf("alpha = %v after 40ms RTT sample", alpha)
	}
}

func TestPingMapBounded(t *testing.T) {
	nc := newNeighborConn(1)
	now := time.Now()
	for i := uint64(0); i < 1000; i++ {
		nc.recordPing(i, now)
	}
	nc.mu.Lock()
	n := len(nc.lastPing)
	nc.mu.Unlock()
	if n > 65 {
		t.Errorf("ping token map grew to %d entries", n)
	}
}

func TestUnsubscribeWithdrawsRoute(t *testing.T) {
	o := newOverlay(t, 2, [][2]int{{0, 1}})
	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(4, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route to appear", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(4, 1)) > 0
	})
	if err := sub.Unsubscribe(4); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route to be withdrawn", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		rs := b.routes[routeKey{topic: 4, sub: 1}]
		return rs == nil || !rs.own.Reachable()
	})
}

func TestClientDisconnectWithdrawsRoute(t *testing.T) {
	o := newOverlay(t, 2, [][2]int{{0, 1}})
	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(6, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route to appear", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(6, 1)) > 0
	})
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route to be withdrawn after disconnect", func() bool {
		return o.brokers[1].localLedger(6).subscribers() == 0
	})
}

package broker

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo1"
	"repro/internal/wire"
)

// Writer-pipeline tuning. Every connection (neighbor link or client) owns a
// dedicated writer goroutine fed by a bounded queue: send is an enqueue that
// never blocks on a syscall, and the writer drains whatever is queued into
// one coalesced conn.Write per wakeup.
const (
	// defaultSendQueue is the per-connection outbound queue length when
	// Config.SendQueue is unset.
	defaultSendQueue = 1024
	// enqueueWait bounds how long send blocks for space on a full queue
	// before reporting the message dropped (backpressure, not disconnect).
	enqueueWait = 5 * time.Millisecond
	// maxFlushBytes caps how many encoded bytes one wakeup coalesces into a
	// single conn.Write, bounding both latency and the scratch buffer.
	maxFlushBytes = 256 << 10
	// writerBufCap is the writer's initial scratch-buffer capacity.
	writerBufCap = 32 << 10
	// readBufSize is the buffered-reader size in front of each connection's
	// frame decoder.
	readBufSize = 64 << 10
	// handshakeTimeout bounds how long an inbound connection may sit
	// without sending its Hello before the broker gives up on it — a
	// half-open peer must not pin an accept goroutine forever.
	handshakeTimeout = 10 * time.Second
)

var (
	errNotConnected  = errors.New("broker: not connected")
	errSendQueueFull = errors.New("broker: send queue full")
)

// connWriter is the outbound half of one connection: a bounded message
// queue drained by a dedicated goroutine (Broker.runWriter). Messages must
// not be mutated after a successful send — encoding happens later, on the
// writer goroutine.
type connWriter struct {
	conn  net.Conn
	queue chan wire.Message
	stop  chan struct{}
	once  sync.Once
	// drops counts queue-full message drops into the broker's shared
	// QueueDrops counter (nil discards).
	drops *atomic.Uint64
}

func newConnWriter(conn net.Conn, queueLen int, drops *atomic.Uint64) *connWriter {
	if queueLen < 1 {
		queueLen = defaultSendQueue
	}
	return &connWriter{
		conn:  conn,
		queue: make(chan wire.Message, queueLen),
		stop:  make(chan struct{}),
		drops: drops,
	}
}

// shutdown stops the writer goroutine; it is idempotent and safe to call
// from any goroutine.
func (w *connWriter) shutdown() { w.once.Do(func() { close(w.stop) }) }

// kick wakes the writer goroutine without enqueueing a message (a nil queue
// entry is a pure wakeup). Used by the ACK coalescer: the writer drains the
// pending coalesced ACKs on every wakeup. Best-effort — if the queue is
// full the writer is awake anyway.
func (w *connWriter) kick() {
	select {
	case w.queue <- nil:
	default:
	}
}

// send enqueues one message for the writer. A full queue is given a brief
// grace period (backpressure) and then the message is dropped with
// errSendQueueFull; the connection itself stays up — Algorithm 2's
// retransmit machinery covers dropped data frames, and pings/adverts are
// periodic anyway.
func (w *connWriter) send(msg wire.Message) error {
	select {
	case <-w.stop:
		return errNotConnected
	default:
	}
	select {
	case w.queue <- msg:
		return nil
	default:
	}
	t := time.NewTimer(enqueueWait)
	defer t.Stop()
	select {
	case w.queue <- msg:
		return nil
	case <-w.stop:
		return errNotConnected
	case <-t.C:
		if w.drops != nil {
			w.drops.Add(1)
		}
		return errSendQueueFull
	}
}

// runWriter drains a connection's outbound queue: each wakeup encodes every
// queued message (up to maxFlushBytes) into one reused buffer and issues a
// single conn.Write. A write error ends the writer and runs onExit, which
// drops the connection so the dial loop can re-establish it.
//
// For neighbor links (nc != nil) the writer is also the relay-aggregation
// point: when the link negotiated wire.CapRelayBatch, consecutive queued
// Data messages are packed into DataBatch frames, and every flush drains
// the neighbor's coalesced-ACK set into one AckBatch frame. Pooled
// messages (wire.Data, wire.MuxDeliver) are recycled after encoding.
func (b *Broker) runWriter(w *connWriter, label string, nc *neighborConn, onExit func()) {
	defer onExit()
	buf := make([]byte, 0, writerBufCap)
	var (
		batch       wire.DataBatch // consecutive Data frames for a batch peer
		batchLegacy int            // their legacy encoded size (telemetry)
		release     []wire.Message // pooled messages to recycle after encode
		ackIDs      []uint64       // coalesced-ACK drain scratch
	)
	flushBatch := func() {
		if len(batch.Frames) == 0 {
			return
		}
		base := len(buf)
		buf = b.appendFrameChecked(buf, label, &batch)
		if sz := len(buf) - base; sz > 0 && batchLegacy > sz {
			b.relayBytesSaved.Add(uint64(batchLegacy - sz))
		}
		// The entries alias slices owned by pooled messages in release;
		// drop the references so the scratch batch cannot pin them.
		for i := range batch.Frames {
			batch.Frames[i] = wire.Data{}
		}
		batch.Frames = batch.Frames[:0]
		batchLegacy = 0
	}
	appendMsg := func(msg wire.Message) {
		if msg == nil { // kick(): pure wakeup for the ACK coalescer
			return
		}
		if d, ok := msg.(*wire.Data); ok && nc.batchTo(b) {
			batch.Frames = append(batch.Frames, *d)
			batchLegacy += legacyDataBytes(d)
			release = append(release, msg)
			if len(batch.Frames) >= dataBatchMaxFrames {
				flushBatch()
			}
			return
		}
		flushBatch() // keep wire order: earlier Data goes first
		buf = b.appendFrameChecked(buf, label, msg)
		release = append(release, msg)
	}
	for {
		var msg wire.Message
		select {
		case <-w.stop:
			return
		case msg = <-w.queue:
		}
		buf = buf[:0]
		appendMsg(msg)
	fill:
		for len(buf)+batchLegacy < maxFlushBytes {
			select {
			case m := <-w.queue:
				appendMsg(m)
			default:
				break fill
			}
		}
		flushBatch()
		if nc != nil {
			if ackIDs = nc.takeAcks(ackIDs); len(ackIDs) > 0 {
				buf = b.appendAckBatch(buf, label, ackIDs)
			}
		}
		// Every batched entry is encoded (or dropped) by now; recycle the
		// pooled messages.
		for i, m := range release {
			releaseMsg(m)
			release[i] = nil
		}
		release = release[:0]
		if len(buf) == 0 {
			continue
		}
		// Bound the flush: a peer that stops reading (stalled TCP window)
		// must surface as a write error so the connection is dropped and
		// redialed, not wedge this writer forever.
		_ = w.conn.SetWriteDeadline(time.Now().Add(b.cfg.WriteTimeout))
		if _, err := w.conn.Write(buf); err != nil {
			if !b.stopping() {
				b.logf("%s write: %v", label, err)
			}
			return
		}
		// An oversized frame can balloon the scratch buffer past the flush
		// cap; don't let one giant payload pin that memory forever.
		if cap(buf) > 2*maxFlushBytes {
			buf = make([]byte, 0, writerBufCap)
		}
	}
}

// appendFrameChecked encodes msg onto buf, dropping (and logging) frames
// that exceed the wire size limit instead of poisoning the stream. It also
// feeds the broker's wire-egress telemetry (frames and encoded bytes) —
// the edge fan-out benchmark measures aggregation gains through it.
func (b *Broker) appendFrameChecked(buf []byte, label string, msg wire.Message) []byte {
	base := len(buf)
	buf = wire.AppendFrame(buf, msg)
	if !wire.FrameFits(buf, base) {
		b.logf("%s: dropping oversized %v frame", label, msg.Type())
		return buf[:base]
	}
	b.wireFrames.Add(1)
	b.wireBytes.Add(uint64(len(buf) - base))
	return buf
}

// neighborConn is the broker's view of one overlay link: the TCP connection
// (owned by the lower-ID side) with its writer pipeline, the measured alpha
// (EWMA of RTT/2) and the adaptive gamma estimate driven by ACK outcomes.
type neighborConn struct {
	id int

	mu       sync.Mutex
	conn     net.Conn
	w        *connWriter
	attaches int
	alpha    time.Duration
	gamma    float64
	lastPing map[uint64]time.Time

	// Relay-plane aggregation state (see relay.go). peerBatch records
	// whether the currently attached peer advertised wire.CapRelayBatch in
	// its Hello; pendingAcks is the coalesced hop-by-hop ACK set drained by
	// the writer, with ackFlushTimer bounding how long an ACK may sit
	// (always far inside the sender's retransmit timeout).
	peerBatch     atomic.Bool
	ackMu         sync.Mutex
	pendingAcks   []uint64
	ackFlushTimer *time.Timer

	// Control-plane state (see controlplane.go). peerLinkState mirrors
	// peerBatch for wire.CapLinkState. The fields below are guarded by mu:
	// probeTok/probeAt track the single outstanding PROBE on this link,
	// gammaAt is the last time any delivery signal (ACK outcome or probe
	// echo) updated gamma, and dataSend maps sampled outbound frame IDs to
	// send times for ACK-derived alpha samples.
	peerLinkState atomic.Bool
	probeTok      uint64
	probeAt       time.Time
	gammaAt       time.Time
	dataSend      map[uint64]time.Time
}

// Link-estimate tuning.
const (
	// initialAlpha is assumed until the first pong arrives.
	initialAlpha = 20 * time.Millisecond
	// initialGamma is the optimistic starting delivery-ratio estimate.
	initialGamma = 0.99
	// gammaFloor keeps a dead link's estimate from reaching exactly zero so
	// the route can recover once ACKs flow again.
	gammaFloor = 0.05
	// ewma weights for alpha and gamma updates.
	alphaWeight = 0.3
	gammaUp     = 0.05 // gain per successful ACK
	gammaDown   = 0.5  // multiplicative decay per timeout

	// maxPingTokens bounds lastPing against lost pongs; on overflow the
	// oldest half is evicted.
	maxPingTokens = 64
)

func newNeighborConn(id int) *neighborConn {
	return &neighborConn{
		id:       id,
		alpha:    initialAlpha,
		gamma:    initialGamma,
		lastPing: make(map[uint64]time.Time),
	}
}

// estimate returns the current <alpha, gamma> for the link.
func (nc *neighborConn) estimate() (time.Duration, float64) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.alpha, nc.gamma
}

// connected reports whether a live TCP connection is attached.
func (nc *neighborConn) connected() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.conn != nil
}

// attach installs a TCP connection, replacing any previous one, and starts
// its writer pipeline.
func (nc *neighborConn) attach(b *Broker, conn net.Conn) {
	nc.resetRelay()
	w := newConnWriter(conn, b.cfg.SendQueue, &b.queueDrops)
	nc.mu.Lock()
	old, oldW := nc.conn, nc.w
	nc.conn, nc.w = conn, w
	nc.attaches++
	reattach := nc.attaches > 1
	nc.mu.Unlock()
	if reattach {
		b.reconnects.Add(1)
	}
	if oldW != nil {
		oldW.shutdown()
	}
	if old != nil {
		_ = old.Close()
	}
	b.goTracked(func() {
		b.runWriter(w, fmt.Sprintf("neighbor %d", nc.id), nc, func() {
			nc.detach(conn)
			// A dropped link must leave the flooded record set within one
			// control step, not wait out the ticker.
			b.ctrl.kickCtrl()
		})
	})
	b.ctrl.kickCtrl()
	// A dial or inbound handshake that completes while Close is tearing
	// links down can install this connection after Close's pass over
	// b.neighbors — nothing would ever close it and Close would wait on its
	// read loop forever. The done channel is closed before that pass, so
	// checking after installing covers the race.
	if b.stopping() {
		nc.detach(conn)
	}
}

// detach drops the connection (and stops its writer) if it is still the
// given one.
func (nc *neighborConn) detach(conn net.Conn) {
	nc.mu.Lock()
	var w *connWriter
	if nc.conn == conn {
		nc.conn = nil
		w, nc.w = nc.w, nil
	}
	nc.mu.Unlock()
	if w != nil {
		w.shutdown()
	}
	_ = conn.Close()
}

// close tears the link down.
func (nc *neighborConn) close() {
	nc.resetRelay()
	nc.mu.Lock()
	conn, w := nc.conn, nc.w
	nc.conn, nc.w = nil, nil
	nc.mu.Unlock()
	if w != nil {
		w.shutdown()
	}
	if conn != nil {
		_ = conn.Close()
	}
}

// send enqueues one message for the neighbor's writer pipeline. The message
// must not be mutated afterwards. Write errors are handled by the writer
// (connection dropped, dial loop re-establishes); a full queue only drops
// this message.
func (nc *neighborConn) send(msg wire.Message) error {
	nc.mu.Lock()
	w := nc.w
	nc.mu.Unlock()
	if w == nil {
		return errNotConnected
	}
	return w.send(msg)
}

// recordPing remembers an outgoing ping token.
func (nc *neighborConn) recordPing(token uint64, at time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.lastPing[token] = at
	// Bound the token map against lost pongs, evicting oldest-first so the
	// most recent in-flight pings (whose pongs are still expected) survive.
	if len(nc.lastPing) > maxPingTokens {
		for len(nc.lastPing) > maxPingTokens/2 {
			var oldestTok uint64
			var oldestAt time.Time
			first := true
			for t, sent := range nc.lastPing {
				if first || sent.Before(oldestAt) {
					oldestTok, oldestAt, first = t, sent, false
				}
			}
			delete(nc.lastPing, oldestTok)
		}
	}
}

// recordPong folds an RTT sample into alpha. It reports whether the token
// was known.
func (nc *neighborConn) recordPong(token uint64, now time.Time) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	sent, ok := nc.lastPing[token]
	if !ok {
		return false
	}
	delete(nc.lastPing, token)
	sample := now.Sub(sent) / 2
	if sample <= 0 {
		sample = time.Millisecond / 2
	}
	nc.alpha = time.Duration((1-alphaWeight)*float64(nc.alpha) + alphaWeight*float64(sample))
	return true
}

// ackSucceeded nudges gamma up after a timely ACK.
func (nc *neighborConn) ackSucceeded() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.gamma += gammaUp * (1 - nc.gamma)
	if nc.gamma > 1 {
		nc.gamma = 1
	}
	nc.gammaAt = time.Now()
}

// ackTimedOut decays gamma after a missed ACK.
func (nc *neighborConn) ackTimedOut() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.gamma *= gammaDown
	if nc.gamma < gammaFloor || math.IsNaN(nc.gamma) {
		nc.gamma = gammaFloor
	}
	nc.gammaAt = time.Now()
}

// gammaSignalAt is the last time any delivery signal updated gamma.
func (nc *neighborConn) gammaSignalAt() time.Time {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.gammaAt
}

// probeState returns the outstanding probe token (0 = none) and its send
// time.
func (nc *neighborConn) probeState() (uint64, time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.probeTok, nc.probeAt
}

// probeStart records one outgoing probe; at most one is ever outstanding.
func (nc *neighborConn) probeStart(token uint64, at time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.probeTok, nc.probeAt = token, at
}

// probeExpire clears the outstanding probe if it is still the given one,
// reporting whether the caller should decay gamma for it.
func (nc *neighborConn) probeExpire(token uint64) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.probeTok != token {
		return false
	}
	nc.probeTok = 0
	return true
}

// probeReply folds a probe echo into the link estimate: alpha from RTT/2,
// gamma nudged up like a successful ACK. It reports whether the token
// matched the outstanding probe.
func (nc *neighborConn) probeReply(token uint64, now time.Time) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if token == 0 || nc.probeTok != token {
		return false
	}
	nc.probeTok = 0
	sample := now.Sub(nc.probeAt) / 2
	if sample <= 0 {
		sample = time.Millisecond / 2
	}
	nc.alpha = time.Duration((1-alphaWeight)*float64(nc.alpha) + alphaWeight*float64(sample))
	nc.gamma += gammaUp * (1 - nc.gamma)
	if nc.gamma > 1 {
		nc.gamma = 1
	}
	nc.gammaAt = now
	return true
}

// noteDataSend samples one outbound data frame's send time so its
// hop-by-hop ACK can feed alpha — real traffic measures the link, probes
// and pings only fill the gaps. Sampling is bounded: at most
// maxDataSamples frames are tracked, with entries older than a second
// (ACKs lost) evicted to keep sampling alive on lossy links.
func (nc *neighborConn) noteDataSend(frameID uint64, now time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.dataSend == nil {
		nc.dataSend = make(map[uint64]time.Time, maxDataSamples)
	}
	if len(nc.dataSend) >= maxDataSamples {
		for id, at := range nc.dataSend {
			if now.Sub(at) > time.Second {
				delete(nc.dataSend, id)
			}
		}
		if len(nc.dataSend) >= maxDataSamples {
			return
		}
	}
	nc.dataSend[frameID] = now
}

// noteDataAck folds a returning ACK's round trip into alpha when the frame
// was sampled. The sample includes the peer's ACK-coalescing delay, which
// sits far inside the measurement tolerance (AckFlushInterval defaults to
// 1ms against a 20ms-scale alpha).
func (nc *neighborConn) noteDataAck(frameID uint64, now time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	sent, ok := nc.dataSend[frameID]
	if !ok {
		return
	}
	delete(nc.dataSend, frameID)
	sample := now.Sub(sent) / 2
	if sample <= 0 {
		sample = time.Millisecond / 2
	}
	nc.alpha = time.Duration((1-alphaWeight)*float64(nc.alpha) + alphaWeight*float64(sample))
}

// clientConn is one connected publisher/subscriber with its writer pipeline.
type clientConn struct {
	name string
	conn net.Conn
	w    *connWriter
	// mux marks a connection that opted into the multiplexed session
	// protocol (SessionHello or a first SessionSub). Guarded by b.mu.
	mux bool
}

// send enqueues one message for the client's writer pipeline. The message
// must not be mutated afterwards.
func (c *clientConn) send(msg wire.Message) error {
	return c.w.send(msg)
}

// acceptLoop handles inbound connections: the first frame must be a Hello
// identifying a neighbor broker (BrokerID >= 0) or a client (-1).
func (b *Broker) acceptLoop() {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			if b.stopping() {
				return
			}
			b.logf("accept: %v", err)
			return
		}
		b.goTracked(func() { b.handleInbound(conn) })
	}
}

// handleInbound performs the Hello handshake and dispatches to the broker
// or client read loop.
func (b *Broker) handleInbound(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	msg, err := wire.Read(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	hello, ok := msg.(*wire.Hello)
	if !ok {
		b.logf("inbound %s: first frame %v, want HELLO", conn.RemoteAddr(), msg.Type())
		_ = conn.Close()
		return
	}
	if hello.BrokerID >= 0 {
		b.handleNeighborConn(int(hello.BrokerID), hello.Name, conn)
		return
	}
	b.handleClientConn(hello.Name, conn)
}

// handleNeighborConn registers an inbound broker link and pumps its frames.
// The dialer's Hello Name carries its capability tokens; the acceptor
// records them and replies with its own Hello so the dialer learns this
// side's capabilities too (legacy dialers log the unexpected HELLO and
// carry on with the legacy framing).
func (b *Broker) handleNeighborConn(id int, name string, conn net.Conn) {
	if _, known := b.cfg.Neighbors[id]; !known {
		b.logf("rejecting unknown neighbor %d", id)
		_ = conn.Close()
		return
	}
	nc := b.neighbor(id)
	nc.attach(b, conn)
	nc.peerBatch.Store(wire.HasCap(name, wire.CapRelayBatch))
	nc.peerLinkState.Store(wire.HasCap(name, wire.CapLinkState))
	_ = nc.send(&wire.Hello{BrokerID: int32(b.cfg.ID), Name: b.helloName()})
	if nc.linkStateTo(b) {
		b.ctrl.syncTo(nc)
	}
	b.logf("neighbor %d connected (inbound)", id)
	b.readNeighbor(nc, conn)
}

// neighbor returns the state for a configured neighbor id. The map is built
// complete in New and immutable afterwards, so the lookup is lock-free; all
// callers pass ids validated against Config.Neighbors.
func (b *Broker) neighbor(id int) *neighborConn {
	return b.neighbors[id]
}

// dialLoop owns the outbound connection to a higher-ID neighbor. Failed
// attempts back off exponentially (DialRetry base, DialRetryMax cap) with
// ±25% jitter so a rebooted peer is not hammered in lockstep by every
// neighbor at once; a successful attach resets the backoff.
func (b *Broker) dialLoop(id int, addr string) {
	nc := b.neighbor(id)
	backoff := b.cfg.DialRetry
	fail := func() bool { // sleep one jittered backoff step, then widen it
		b.redials.Add(1)
		d := backoff
		if d > 4*time.Microsecond {
			d = d - d/4 + time.Duration(rand.Int63n(int64(d/2)))
		}
		if !sleepUnlessDone(b.done, d) {
			return false
		}
		if backoff *= 2; backoff > b.cfg.DialRetryMax {
			backoff = b.cfg.DialRetryMax
		}
		return true
	}
	for !b.stopping() {
		if nc.connected() {
			if !sleepUnlessDone(b.done, b.cfg.DialRetry) {
				return
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			if !fail() {
				return
			}
			continue
		}
		if err := wire.Write(conn, &wire.Hello{BrokerID: int32(b.cfg.ID), Name: b.helloName()}); err != nil {
			_ = conn.Close()
			if !fail() {
				return
			}
			continue
		}
		backoff = b.cfg.DialRetry
		nc.attach(b, conn)
		b.logf("neighbor %d connected (outbound)", id)
		b.readNeighbor(nc, conn)
	}
}

// readNeighbor pumps frames from one broker link until it fails. Decoding
// goes through a pooled wire.Reader over a buffered reader: messages handed
// to handleNeighborMsg are recycled on the next frame, so handlers must not
// retain them (or their slices) past return.
func (b *Broker) readNeighbor(nc *neighborConn, conn net.Conn) {
	defer b.ctrl.kickCtrl()
	defer nc.detach(conn)
	rd := wire.NewReader(bufio.NewReaderSize(conn, readBufSize))
	for {
		msg, err := rd.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !b.stopping() {
				b.logf("neighbor %d read: %v", nc.id, err)
			}
			return
		}
		b.handleNeighborMsg(nc, msg)
	}
}

// handleNeighborMsg dispatches one frame from a neighbor broker. msg is
// owned by the caller's Reader and recycled after return.
func (b *Broker) handleNeighborMsg(nc *neighborConn, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Ping:
		_ = nc.send(&wire.Pong{Token: m.Token})
	case *wire.Pong:
		nc.recordPong(m.Token, time.Now())
	case *wire.Advert:
		b.handleAdvert(nc.id, m)
	case *wire.Ack:
		if b.ctrl != nil {
			nc.noteDataAck(m.FrameID, time.Now())
		}
		b.handleAck(m.FrameID)
	case *wire.AckBatch:
		if b.ctrl != nil {
			now := time.Now()
			for _, id := range m.FrameIDs {
				nc.noteDataAck(id, now)
			}
		}
		for _, id := range m.FrameIDs {
			b.handleAck(id)
		}
	case *wire.Data:
		b.custodyAck(nc, m)
		b.handleData(nc.id, m)
	case *wire.DataBatch:
		for i := range m.Frames {
			d := &m.Frames[i]
			b.custodyAck(nc, d)
			b.handleData(nc.id, d)
		}
	case *wire.LinkState:
		b.handleLinkState(nc, m)
	case *wire.Probe:
		b.handleProbe(nc, m)
	case *wire.Hello:
		// The acceptor's Hello reply: learn the peer's capabilities (the
		// dialer's own capability tokens went out with dialLoop's Hello).
		nc.peerBatch.Store(wire.HasCap(m.Name, wire.CapRelayBatch))
		nc.peerLinkState.Store(wire.HasCap(m.Name, wire.CapLinkState))
		if nc.linkStateTo(b) {
			b.ctrl.syncTo(nc)
		}
	default:
		b.logf("neighbor %d sent unexpected %v", nc.id, msg.Type())
	}
}

// handleClientConn registers a client, starts its writer pipeline and pumps
// its requests through a pooled Reader (messages recycled per frame, same
// ownership rule as readNeighbor).
func (b *Broker) handleClientConn(name string, conn net.Conn) {
	c := &clientConn{name: name, conn: conn, w: newConnWriter(conn, b.cfg.SendQueue, &b.queueDrops)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return
	}
	b.clients[c] = struct{}{}
	b.mu.Unlock()
	b.goTracked(func() {
		b.runWriter(c.w, "client "+name, nil, func() { _ = conn.Close() })
	})
	defer func() {
		b.mu.Lock()
		delete(b.clients, c)
		b.dropClientSubsLocked(c)
		// Disconnects flush synchronously: a departed connection must not
		// linger in the delivery snapshot for a coalescing window.
		b.flushSubsLocked()
		b.mu.Unlock()
		b.recomputeLocalRoutes()
		c.w.shutdown()
		_ = conn.Close()
	}()
	rd := wire.NewReader(bufio.NewReaderSize(conn, readBufSize))
	for {
		msg, err := rd.Next()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.Subscribe:
			b.subscribeLocal(c, m)
		case *wire.Unsubscribe:
			b.unsubscribeLocal(c, m)
		case *wire.SessionHello:
			b.sessionHello(c, m)
		case *wire.SessionSub:
			b.sessionSub(c, m)
		case *wire.SessionUnsub:
			b.sessionUnsub(c, m)
		case *wire.Publish:
			b.publishLocal(m)
		case *wire.Ping:
			_ = c.send(&wire.Pong{Token: m.Token})
		case *wire.StatsRequest:
			_ = c.send(b.statsReply(m.Token))
		default:
			b.logf("client %q sent unexpected %v", name, msg.Type())
		}
	}
}

// pingLoop probes all connected neighbors for alpha.
func (b *Broker) pingLoop() {
	ticker := time.NewTicker(b.cfg.PingInterval)
	defer ticker.Stop()
	var token uint64
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
		}
		for _, nc := range b.neighbors {
			token++
			nc.recordPing(token, time.Now())
			_ = nc.send(&wire.Ping{Token: token})
		}
	}
}

// advertLoop periodically re-advertises all parameters (repairing lost
// adverts and propagating alpha/gamma drift) and re-runs Algorithm 1.
func (b *Broker) advertLoop() {
	ticker := time.NewTicker(b.cfg.AdvertInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
		}
		b.recomputeAndAdvertise(true)
	}
}

// sleepUnlessDone waits d or until done closes; it reports false on done.
func sleepUnlessDone(done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// linkStats adapts neighbor estimates for algo1.BuildTable-style math.
func (b *Broker) linkStats(id int) algo1.DR {
	nc, ok := b.neighbors[id]
	if !ok || !nc.connected() {
		return algo1.Unreachable()
	}
	alpha, gamma := nc.estimate()
	return algo1.LinkStats(alpha, gamma, b.cfg.M)
}

package broker

import (
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// neighborConn is the broker's view of one overlay link: the TCP connection
// (owned by the lower-ID side), the measured alpha (EWMA of RTT/2) and the
// adaptive gamma estimate driven by ACK outcomes.
type neighborConn struct {
	id int

	mu       sync.Mutex
	conn     net.Conn
	alpha    time.Duration
	gamma    float64
	lastPing map[uint64]time.Time
}

// Link-estimate tuning.
const (
	// initialAlpha is assumed until the first pong arrives.
	initialAlpha = 20 * time.Millisecond
	// initialGamma is the optimistic starting delivery-ratio estimate.
	initialGamma = 0.99
	// gammaFloor keeps a dead link's estimate from reaching exactly zero so
	// the route can recover once ACKs flow again.
	gammaFloor = 0.05
	// ewma weights for alpha and gamma updates.
	alphaWeight = 0.3
	gammaUp     = 0.05 // gain per successful ACK
	gammaDown   = 0.5  // multiplicative decay per timeout
)

func newNeighborConn(id int) *neighborConn {
	return &neighborConn{
		id:       id,
		alpha:    initialAlpha,
		gamma:    initialGamma,
		lastPing: make(map[uint64]time.Time),
	}
}

// estimate returns the current <alpha, gamma> for the link.
func (nc *neighborConn) estimate() (time.Duration, float64) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.alpha, nc.gamma
}

// connected reports whether a live TCP connection is attached.
func (nc *neighborConn) connected() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.conn != nil
}

// attach installs a TCP connection, replacing any previous one.
func (nc *neighborConn) attach(conn net.Conn) {
	nc.mu.Lock()
	old := nc.conn
	nc.conn = conn
	nc.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// detach drops the connection if it is still the given one.
func (nc *neighborConn) detach(conn net.Conn) {
	nc.mu.Lock()
	if nc.conn == conn {
		nc.conn = nil
	}
	nc.mu.Unlock()
	_ = conn.Close()
}

// close tears the link down.
func (nc *neighborConn) close() {
	nc.mu.Lock()
	conn := nc.conn
	nc.conn = nil
	nc.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// send writes one message to the neighbor. Write errors drop the
// connection; the dial loop will re-establish it.
func (nc *neighborConn) send(msg wire.Message) error {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.conn == nil {
		return errors.New("broker: neighbor not connected")
	}
	if err := wire.Write(nc.conn, msg); err != nil {
		_ = nc.conn.Close()
		nc.conn = nil
		return err
	}
	return nil
}

// recordPing remembers an outgoing ping token.
func (nc *neighborConn) recordPing(token uint64, at time.Time) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.lastPing[token] = at
	// Bound the token map against lost pongs.
	if len(nc.lastPing) > 64 {
		for t := range nc.lastPing {
			if len(nc.lastPing) <= 32 {
				break
			}
			delete(nc.lastPing, t)
		}
	}
}

// recordPong folds an RTT sample into alpha. It reports whether the token
// was known.
func (nc *neighborConn) recordPong(token uint64, now time.Time) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	sent, ok := nc.lastPing[token]
	if !ok {
		return false
	}
	delete(nc.lastPing, token)
	sample := now.Sub(sent) / 2
	if sample <= 0 {
		sample = time.Millisecond / 2
	}
	nc.alpha = time.Duration((1-alphaWeight)*float64(nc.alpha) + alphaWeight*float64(sample))
	return true
}

// ackSucceeded nudges gamma up after a timely ACK.
func (nc *neighborConn) ackSucceeded() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.gamma += gammaUp * (1 - nc.gamma)
	if nc.gamma > 1 {
		nc.gamma = 1
	}
}

// ackTimedOut decays gamma after a missed ACK.
func (nc *neighborConn) ackTimedOut() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.gamma *= gammaDown
	if nc.gamma < gammaFloor || math.IsNaN(nc.gamma) {
		nc.gamma = gammaFloor
	}
}

// clientConn is one connected publisher/subscriber.
type clientConn struct {
	name string
	mu   sync.Mutex
	conn net.Conn
}

func (c *clientConn) send(msg wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wire.Write(c.conn, msg)
}

// acceptLoop handles inbound connections: the first frame must be a Hello
// identifying a neighbor broker (BrokerID >= 0) or a client (-1).
func (b *Broker) acceptLoop() {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			if b.stopping() {
				return
			}
			b.logf("accept: %v", err)
			return
		}
		b.goTracked(func() { b.handleInbound(conn) })
	}
}

// handleInbound performs the Hello handshake and dispatches to the broker
// or client read loop.
func (b *Broker) handleInbound(conn net.Conn) {
	msg, err := wire.Read(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		b.logf("inbound %s: first frame %v, want HELLO", conn.RemoteAddr(), msg.Type())
		_ = conn.Close()
		return
	}
	if hello.BrokerID >= 0 {
		b.handleNeighborConn(int(hello.BrokerID), conn)
		return
	}
	b.handleClientConn(hello.Name, conn)
}

// handleNeighborConn registers an inbound broker link and pumps its frames.
func (b *Broker) handleNeighborConn(id int, conn net.Conn) {
	if _, known := b.cfg.Neighbors[id]; !known {
		b.logf("rejecting unknown neighbor %d", id)
		_ = conn.Close()
		return
	}
	nc := b.neighbor(id)
	nc.attach(conn)
	b.logf("neighbor %d connected (inbound)", id)
	b.readNeighbor(nc, conn)
}

// neighbor returns (creating if needed) the state for neighbor id.
func (b *Broker) neighbor(id int) *neighborConn {
	b.mu.Lock()
	defer b.mu.Unlock()
	nc, ok := b.neighbors[id]
	if !ok {
		nc = newNeighborConn(id)
		b.neighbors[id] = nc
	}
	return nc
}

// dialLoop owns the outbound connection to a higher-ID neighbor, redialing
// with back-off whenever it drops.
func (b *Broker) dialLoop(id int, addr string) {
	nc := b.neighbor(id)
	for !b.stopping() {
		if nc.connected() {
			if !sleepUnlessDone(b.done, b.cfg.DialRetry) {
				return
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			if !sleepUnlessDone(b.done, b.cfg.DialRetry) {
				return
			}
			continue
		}
		if err := wire.Write(conn, &wire.Hello{BrokerID: int32(b.cfg.ID), Name: "broker"}); err != nil {
			_ = conn.Close()
			continue
		}
		nc.attach(conn)
		b.logf("neighbor %d connected (outbound)", id)
		b.readNeighbor(nc, conn)
	}
}

// readNeighbor pumps frames from one broker link until it fails.
func (b *Broker) readNeighbor(nc *neighborConn, conn net.Conn) {
	defer nc.detach(conn)
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !b.stopping() {
				b.logf("neighbor %d read: %v", nc.id, err)
			}
			return
		}
		b.handleNeighborMsg(nc, msg)
	}
}

// handleNeighborMsg dispatches one frame from a neighbor broker.
func (b *Broker) handleNeighborMsg(nc *neighborConn, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Ping:
		_ = nc.send(&wire.Pong{Token: m.Token})
	case *wire.Pong:
		nc.recordPong(m.Token, time.Now())
	case *wire.Advert:
		b.handleAdvert(nc.id, m)
	case *wire.Ack:
		b.handleAck(m.FrameID)
	case *wire.Data:
		_ = nc.send(&wire.Ack{FrameID: m.FrameID})
		b.handleData(nc.id, m)
	default:
		b.logf("neighbor %d sent unexpected %v", nc.id, msg.Type())
	}
}

// handleClientConn registers a client and pumps its requests.
func (b *Broker) handleClientConn(name string, conn net.Conn) {
	c := &clientConn{name: name, conn: conn}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return
	}
	b.clients[c] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.clients, c)
		for topic, subs := range b.localSubs {
			if _, ok := subs[c]; ok {
				delete(subs, c)
				if len(subs) == 0 {
					delete(b.localSubs, topic)
				}
			}
		}
		b.mu.Unlock()
		b.recomputeLocalRoutes()
		_ = conn.Close()
	}()
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.Subscribe:
			b.subscribeLocal(c, m)
		case *wire.Unsubscribe:
			b.unsubscribeLocal(c, m)
		case *wire.Publish:
			b.publishLocal(m)
		case *wire.Ping:
			_ = c.send(&wire.Pong{Token: m.Token})
		case *wire.StatsRequest:
			_ = c.send(b.statsReply(m.Token))
		default:
			b.logf("client %q sent unexpected %v", name, msg.Type())
		}
	}
}

// pingLoop probes all connected neighbors for alpha.
func (b *Broker) pingLoop() {
	ticker := time.NewTicker(b.cfg.PingInterval)
	defer ticker.Stop()
	var token uint64
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
		}
		b.mu.Lock()
		conns := make([]*neighborConn, 0, len(b.neighbors))
		for _, nc := range b.neighbors {
			conns = append(conns, nc)
		}
		b.mu.Unlock()
		for _, nc := range conns {
			token++
			nc.recordPing(token, time.Now())
			_ = nc.send(&wire.Ping{Token: token})
		}
	}
}

// advertLoop periodically re-advertises all parameters (repairing lost
// adverts and propagating alpha/gamma drift) and re-runs Algorithm 1.
func (b *Broker) advertLoop() {
	ticker := time.NewTicker(b.cfg.AdvertInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
		}
		b.recomputeAndAdvertise(true)
	}
}

// sleepUnlessDone waits d or until done closes; it reports false on done.
func sleepUnlessDone(done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// linkStats adapts neighbor estimates for core.BuildTable-style math.
func (b *Broker) linkStats(id int) core.DR {
	b.mu.Lock()
	nc, ok := b.neighbors[id]
	b.mu.Unlock()
	if !ok || !nc.connected() {
		return core.Unreachable()
	}
	alpha, gamma := nc.estimate()
	return core.LinkStats(alpha, gamma, b.cfg.M)
}

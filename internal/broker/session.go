package broker

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Session is a multiplexed subscriber endpoint: many logical subscribers
// share one TCP connection, and the broker aggregates deliveries — one
// MuxDeliver frame per (topic, session) carrying the payload once plus the
// subscriber-ID list — instead of sending one frame per subscriber.
//
// Deliveries are dispatched to the handler on the session's read goroutine
// through a pooled wire.Reader: the *wire.MuxDeliver and every slice it
// references (SubIDs, Payload) are recycled on the next frame, so the
// handler must copy whatever it retains and must not block for long (it
// backpressures the TCP connection, which is usually the right thing).
//
// Subscribe and Unsubscribe are buffered (bufio) so a registration burst of
// 100k subscribers coalesces into large writes; call Flush after the last
// one to put the tail on the wire.
type Session struct {
	name    string
	conn    net.Conn
	handler func(*wire.MuxDeliver)

	writeMu sync.Mutex
	bw      *bufio.Writer
	scratch []byte

	mu       sync.Mutex
	closed   bool
	readErr  error
	readDone chan struct{}
}

// DialSession connects a named multiplexed session to a broker. expect is
// an advisory count of logical subscribers the session will register (the
// broker only logs it today); handler receives every aggregated delivery
// (see the Session ownership rules). A nil handler discards deliveries.
func DialSession(addr, name string, expect uint32, handler func(*wire.MuxDeliver)) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("broker session: dial %s: %w", addr, err)
	}
	s := &Session{
		name:     name,
		conn:     conn,
		handler:  handler,
		bw:       bufio.NewWriterSize(conn, writerBufCap),
		readDone: make(chan struct{}),
	}
	if err := s.write(&wire.Hello{BrokerID: -1, Name: name}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("broker session: handshake: %w", err)
	}
	if err := s.write(&wire.SessionHello{Subscribers: expect}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("broker session: handshake: %w", err)
	}
	if err := s.Flush(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go s.readLoop()
	return s, nil
}

// readLoop pumps aggregated deliveries into the handler until the
// connection drops. Messages are pooled-Reader-owned: valid only until the
// next frame.
func (s *Session) readLoop() {
	defer close(s.readDone)
	rd := wire.NewReader(bufio.NewReaderSize(s.conn, readBufSize))
	for {
		msg, err := rd.Next()
		if err != nil {
			s.mu.Lock()
			if !s.closed {
				s.readErr = err
			}
			s.mu.Unlock()
			return
		}
		if m, ok := msg.(*wire.MuxDeliver); ok && s.handler != nil {
			s.handler(m)
		}
	}
}

// Subscribe registers one session-local logical subscriber (identified by
// subID, unique within this session) on a topic with a QoS delay
// requirement (0 uses the broker's default). Buffered; see Flush.
func (s *Session) Subscribe(subID uint32, topic int32, deadline time.Duration) error {
	return s.write(&wire.SessionSub{SubID: subID, Topic: topic, Deadline: deadline})
}

// Unsubscribe removes one logical subscriber from a topic. Buffered; see
// Flush.
func (s *Session) Unsubscribe(subID uint32, topic int32) error {
	return s.write(&wire.SessionUnsub{SubID: subID, Topic: topic})
}

// Flush puts any buffered Subscribe/Unsubscribe frames on the wire.
func (s *Session) Flush() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("broker session %q: %w", s.name, err)
	}
	return nil
}

// Err reports the read-loop error after the session ends (nil on clean
// Close).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// Done is closed when the read loop ends (connection closed or failed).
func (s *Session) Done() <-chan struct{} { return s.readDone }

// Close disconnects the session; the broker drops all of its logical
// subscribers.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	<-s.readDone
	return err
}

// write encodes one frame into the buffered writer (bufio flushes full
// buffers itself; Flush pushes the tail).
func (s *Session) write(msg wire.Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.scratch = wire.AppendFrame(s.scratch[:0], msg)
	if !wire.FrameFits(s.scratch, 0) {
		return fmt.Errorf("broker session %q: oversized %v frame", s.name, msg.Type())
	}
	if _, err := s.bw.Write(s.scratch); err != nil {
		return fmt.Errorf("broker session %q: %w", s.name, err)
	}
	return nil
}

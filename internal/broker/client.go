package broker

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Client is a publisher/subscriber endpoint connected to one live broker.
// It is safe for concurrent use.
type Client struct {
	name string
	conn net.Conn

	writeMu sync.Mutex

	mu        sync.Mutex
	closed    bool
	inbox     chan Delivery
	readErr   error
	readDone  chan struct{}
	nextToken uint64
	statsWait map[uint64]chan *wire.StatsReply
}

// Delivery is one message received on a subscribed topic.
type Delivery struct {
	Topic       int32
	PacketID    uint64
	Source      int32
	PublishedAt time.Time
	Latency     time.Duration // receive time minus publish time
	Payload     []byte
}

// Dial connects a named client to a broker.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("broker client: dial %s: %w", addr, err)
	}
	if err := wire.Write(conn, &wire.Hello{BrokerID: -1, Name: name}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("broker client: handshake: %w", err)
	}
	c := &Client{
		name:      name,
		conn:      conn,
		inbox:     make(chan Delivery, 1024),
		readDone:  make(chan struct{}),
		statsWait: make(map[uint64]chan *wire.StatsReply),
	}
	go c.readLoop()
	return c, nil
}

// readLoop pumps deliveries into the inbox until the connection drops.
func (c *Client) readLoop() {
	defer close(c.readDone)
	defer close(c.inbox)
	for {
		msg, err := wire.Read(c.conn)
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				c.readErr = err
			}
			c.mu.Unlock()
			return
		}
		switch m := msg.(type) {
		case *wire.Deliver:
			d := Delivery{
				Topic:       m.Topic,
				PacketID:    m.PacketID,
				Source:      m.Source,
				PublishedAt: m.PublishedAt,
				Latency:     time.Since(m.PublishedAt),
				Payload:     m.Payload,
			}
			select {
			case c.inbox <- d:
			default: // slow consumer: drop rather than block the link
			}
		case *wire.StatsReply:
			c.mu.Lock()
			ch := c.statsWait[m.Token]
			delete(c.statsWait, m.Token)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case *wire.Pong:
			// ignore
		default:
			// ignore unexpected frames
		}
	}
}

// Stats asks the broker for its operational state, waiting up to timeout.
func (c *Client) Stats(timeout time.Duration) (*wire.StatsReply, error) {
	c.mu.Lock()
	c.nextToken++
	token := c.nextToken
	ch := make(chan *wire.StatsReply, 1)
	c.statsWait[token] = ch
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.statsWait, token)
		c.mu.Unlock()
	}
	if err := c.write(&wire.StatsRequest{Token: token}); err != nil {
		cleanup()
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-c.readDone:
		cleanup()
		return nil, fmt.Errorf("broker client %q: connection closed awaiting stats", c.name)
	case <-t.C:
		cleanup()
		return nil, fmt.Errorf("broker client %q: stats timeout after %v", c.name, timeout)
	}
}

// Subscribe registers this client for a topic with a QoS delay requirement
// (0 uses the broker's default).
func (c *Client) Subscribe(topic int32, deadline time.Duration) error {
	return c.write(&wire.Subscribe{Topic: topic, Deadline: deadline})
}

// Unsubscribe removes this client's subscription to a topic.
func (c *Client) Unsubscribe(topic int32) error {
	return c.write(&wire.Unsubscribe{Topic: topic})
}

// Publish submits a message on a topic with a QoS delay requirement
// (0 uses the broker's default).
func (c *Client) Publish(topic int32, deadline time.Duration, payload []byte) error {
	return c.write(&wire.Publish{Topic: topic, Deadline: deadline, Payload: payload})
}

// Receive returns the channel of deliveries; it closes when the connection
// ends.
func (c *Client) Receive() <-chan Delivery { return c.inbox }

// Err reports the read-loop error after Receive closes (nil on clean Close).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close disconnects the client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	return err
}

func (c *Client) write(msg wire.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := wire.Write(c.conn, msg); err != nil {
		return fmt.Errorf("broker client %q: %w", c.name, err)
	}
	return nil
}

package broker

import (
	"repro/internal/wal"
	"repro/internal/wire"
)

// Crash-durable custody (DESIGN.md §16). With Config.DataDir set, the broker
// journals every custody transfer to a write-ahead log and withholds the
// hop-by-hop ACK until the record is on disk. The ACK is Algorithm 2's
// custody hand-off — the upstream deletes its copy the moment it arrives
// (aggressive deletion, §III) — so "ACK only after durable" is exactly the
// invariant that extends Theorem 2's exactly-once guarantee from link
// failures to node loss: at every instant, each undelivered packet copy is
// either still held (and retried) by the upstream, or durable here.
//
// The glue in this file is everything the broker adds on top of
// internal/wal: opening/recovery in New, the withheld-ACK path, the clear/
// deliver records fed from the shard engines, and replay of recovered
// flights back into those engines.

// seedsFromIncarnation derives the packet- and frame-counter seeds for a
// durable broker from the WAL's persisted restart counter. The low 10 bits
// of the incarnation are placed above each counter's active range — 38 bits
// of packets, 32 bits of frames per shard per incarnation — so IDs from
// distinct incarnations cannot collide within the peers' dedup horizon
// (wrap-around after 1024 restarts is far past 2×MaxLifetime).
func seedsFromIncarnation(inc uint64) (pktSeed, frameSeed uint64) {
	return (inc & (1<<10 - 1)) << 38, (inc & (1<<10 - 1)) << 32
}

// openWal opens (recovering if needed) the custody journal under
// Config.DataDir. Called by New before the shards are built: the persisted
// incarnation seeds the ID counters, and the recovered flights are replayed
// once the shard goroutines run.
func (b *Broker) openWal() (*wal.Recovered, error) {
	w, rec, err := wal.Open(wal.Config{
		Dir:         b.cfg.DataDir,
		NodeID:      b.cfg.ID,
		OnDurable:   b.onWalDurable,
		BeforeFlush: b.cfg.walBeforeFlush,
		Logf:        b.logf,
	})
	if err != nil {
		return nil, err
	}
	b.wal = w
	return rec, nil
}

// custodyAck emits the hop-by-hop ACK for one received DATA frame. In
// memory-custody mode it goes out immediately — the engine state reached
// via handleData IS the custody. In durable mode the ACK is a durability
// promise, so it is withheld until the WAL record is on disk: AppendCustody
// journals the frame and the committer releases the ACK from onWalDurable
// after the batch's fsync. Duplicate frames are not re-journaled but still
// get a callback — the previous ACK may have been the thing that was lost.
func (b *Broker) custodyAck(nc *neighborConn, m *wire.Data) {
	if b.wal == nil {
		b.ackData(nc, m.FrameID)
		return
	}
	b.wal.AppendCustody(m, nc.id)
}

// onWalDurable runs on the WAL committer goroutine after the fsync that
// made a custody record durable: release the withheld ACK. During shutdown
// the ACK is skipped — the upstream retransmits to the restarted
// incarnation, whose recovered WAL entry answers with a fresh ACK. The send
// is a bounded enqueue into the neighbor's writer pipeline (or a coalesced
// ACK-set insert), so the committer is never wedged behind a peer.
func (b *Broker) onWalDurable(frameID uint64, from int) {
	if b.stopping() {
		return
	}
	if nc := b.neighbors[from]; nc != nil {
		b.ackData(nc, frameID)
	}
}

// replayRecovered re-injects the crash-surviving custody state into the
// shard engines as ordinary mailbox work. Delivered packet IDs are seeded
// first, so a replayed flight that still lists this broker among its dests
// cannot deliver locally a second time; then each outstanding flight
// resumes retransmission where the previous incarnation held custody:
//
//   - relayed flights (frame ID != 0) re-enter as inbound DATA carrying the
//     original frame ID, remaining dests and path — an upstream that never
//     got our ACK retransmits the same frame ID and dedups against it, and
//     downstream packet-level dedup absorbs any copy the previous
//     incarnation had already pushed further;
//   - origin flights (frame ID 0, journaled by publishLocal) re-enter as
//     publishes of their remaining destination set.
//
// Local re-delivery on replay is deliberately NOT attempted: subscriber
// registrations are not durable, and a topic with no ledger counts as
// delivered (the same rule the live Deliver path applies).
func (b *Broker) replayRecovered(rec *wal.Recovered) {
	for _, pid := range rec.Delivered {
		it := getItem()
		it.kind = itemSeedDelivered
		it.pktID = pid
		b.shardOf(pid).enqueue(it)
	}
	for i := range rec.Flights {
		d := &rec.Flights[i].Rec
		it := getItem()
		it.pktID = d.PacketID
		it.topic = d.Topic
		it.source = d.Source
		it.pubAt = d.PublishedAt
		it.deadline = d.Deadline
		it.payload = d.Payload
		for _, dd := range d.Dests {
			it.dests = append(it.dests, int(dd))
		}
		if d.FrameID != 0 {
			it.kind = itemData
			it.frameID = d.FrameID
			it.from = -1 // no live upstream to attribute; ACK was ours to send, not receive
			for _, p := range d.Path {
				it.path = append(it.path, int(p))
			}
		} else {
			it.kind = itemPublish
		}
		if b.shardOf(d.PacketID).enqueue(it) {
			b.walReplayed.Add(1)
		}
	}
	if n := b.walReplayed.Load(); n > 0 || len(rec.Delivered) > 0 {
		b.logf("wal: incarnation %d replayed %d flights, preloaded %d delivered packets",
			rec.Incarnation, n, len(rec.Delivered))
	}
}

// Crash tears the broker down as abrupt node loss rather than a graceful
// stop: the WAL discards everything not yet fsynced — the page cache of a
// power-failed machine — and no withheld ACK ever fires. Exactly-once must
// survive this by construction: un-fsynced custody was never ACKed, so the
// upstream still holds (and will retransmit) it, while fsynced custody is
// replayed by the next incarnation from the same DataDir. Durability tests
// and cmd/dcrd-chaos crash brokers through here; a memory-custody broker
// just closes.
func (b *Broker) Crash() error {
	if b.wal != nil {
		b.wal.CloseDiscard()
	}
	return b.Close()
}

// walClear journals that dests of pkt have settled (ACK moved custody
// downstream, or the destination was abandoned). No-op in memory mode.
func (b *Broker) walClear(pid uint64, dests []int) {
	if b.wal != nil {
		b.wal.AppendClear(pid, dests)
	}
}

// walStat snapshots the journal's counters for Stats and wire.StatsReply.
func (b *Broker) walStat() wire.WalStat {
	if b.wal == nil {
		return wire.WalStat{}
	}
	st := b.wal.Stats()
	return wire.WalStat{
		Enabled:         true,
		Appends:         st.Appends,
		Fsyncs:          st.Fsyncs,
		Bytes:           st.Bytes,
		ReplayedFlights: b.walReplayed.Load(),
		Checkpoints:     st.Checkpoints,
	}
}

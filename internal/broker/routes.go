package broker

import (
	"sort"
	"time"

	"repro/internal/algo1"
	"repro/internal/wire"
)

// advertTolerance is how much a <d, r> estimate must move before the broker
// bothers re-advertising it.
const advertTolerance = time.Millisecond

// subscribeLocal registers a client subscription and makes this broker a
// destination for the topic: its own parameters for (topic, self) become
// the pinned <0, 1> of Algorithm 1, which then ripple outward via adverts.
func (b *Broker) subscribeLocal(c *clientConn, m *wire.Subscribe) {
	deadline := m.Deadline
	if deadline <= 0 {
		deadline = b.cfg.DefaultDeadline
	}
	b.mu.Lock()
	ts := b.topics[m.Topic]
	if ts == nil {
		ts = &topicSubs{}
		b.topics[m.Topic] = ts
	}
	if ts.legacy == nil {
		ts.legacy = make(map[*clientConn]time.Duration)
	}
	if _, ok := ts.legacy[c]; !ok {
		b.subscriptionsGauge.Add(1)
	}
	ts.legacy[c] = deadline
	b.markSubsDirtyLocked(m.Topic)
	// Legacy subscribes flush synchronously: the historical contract is
	// that the subscription is delivery-visible when Subscribe returns.
	b.flushSubsLocked()
	b.mu.Unlock()
	b.logf("client %q subscribed to topic %d (deadline %v)", c.name, m.Topic, deadline)
	b.recomputeAndAdvertise(false)
}

// unsubscribeLocal removes one client's subscription; when it was the last
// local subscriber the self-route is withdrawn (Gone adverts follow from
// the recomputation).
func (b *Broker) unsubscribeLocal(c *clientConn, m *wire.Unsubscribe) {
	b.mu.Lock()
	if ts := b.topics[m.Topic]; ts != nil {
		if _, ok := ts.legacy[c]; ok {
			delete(ts.legacy, c)
			b.subscriptionsGauge.Add(-1)
			if !ts.occupied() {
				delete(b.topics, m.Topic)
			}
			b.markSubsDirtyLocked(m.Topic)
		}
	}
	b.flushSubsLocked()
	b.mu.Unlock()
	b.logf("client %q unsubscribed from topic %d", c.name, m.Topic)
	b.recomputeAndAdvertise(true)
}

// recomputeLocalRoutes refreshes routes after client churn.
func (b *Broker) recomputeLocalRoutes() {
	b.recomputeAndAdvertise(false)
}

// handleAdvert folds a neighbor's <d, r> for (topic, sub) into the local
// route state (Algorithm 1, receive side) and recomputes.
func (b *Broker) handleAdvert(from int, m *wire.Advert) {
	key := routeKey{topic: m.Topic, sub: m.Sub}
	b.mu.Lock()
	rs := b.routes[key]
	if rs == nil {
		rs = &routeState{params: make(map[int]algo1.DR), own: algo1.Unreachable()}
		b.routes[key] = rs
	}
	if m.Gone {
		delete(rs.params, from)
	} else {
		rs.params[from] = algo1.DR{D: m.D, R: m.R}
		if m.Deadline > 0 {
			rs.deadline = m.Deadline
		}
	}
	b.mu.Unlock()
	b.recomputeAndAdvertise(false)
}

// pendingAdvert pairs a recipient-independent advert with the route it
// describes.
type pendingAdvert struct {
	adv wire.Advert
}

// recomputeAndAdvertise re-runs Algorithm 1 over every known
// (topic, subscriber) pair: refresh the pinned local-destination routes,
// admit eligible neighbors, order them by Theorem 1, recompute <d, r> via
// Eq. (3) and advertise values that moved (or everything, when force is
// set, to repair lost adverts and spread alpha/gamma drift).
func (b *Broker) recomputeAndAdvertise(force bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.refreshLocalDestinationsLocked()

	var adverts []pendingAdvert
	keys := make([]routeKey, 0, len(b.routes))
	for key := range b.routes {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].topic != keys[j].topic {
			return keys[i].topic < keys[j].topic
		}
		return keys[i].sub < keys[j].sub
	})
	for _, key := range keys {
		rs := b.routes[key]
		b.recomputeRouteLocked(key, rs)
		if force || advertNeeded(rs) {
			rs.advertised = rs.own
			rs.haveAdv = true
			adverts = append(adverts, pendingAdvert{adv: wire.Advert{
				Topic:    key.topic,
				Sub:      key.sub,
				D:        rs.own.D,
				R:        rs.own.R,
				Deadline: rs.deadline,
				Gone:     !rs.own.Reachable(),
			}})
		}
	}
	b.publishRouteSnapshotLocked()
	b.mu.Unlock()

	for _, pa := range adverts {
		for _, nc := range b.neighbors {
			adv := pa.adv
			_ = nc.send(&adv)
		}
	}
}

// publishRouteSnapshotLocked rebuilds the data plane's copy-on-write view of
// the routing state and swaps it in atomically. recomputeRouteLocked
// allocates a fresh list slice on every recompute, so the slices referenced
// by a published snapshot are never mutated afterwards. Caller holds b.mu.
func (b *Broker) publishRouteSnapshotLocked() {
	snap := &routeSnapshot{
		lists:        make(map[routeKey][]int, len(b.routes)),
		destsByTopic: make(map[int32][]int),
	}
	self := int32(b.cfg.ID)
	for key, rs := range b.routes {
		if len(rs.list) > 0 {
			snap.lists[key] = rs.list
		}
		// A topic's destination set for publishes: every subscriber broker
		// other than ourselves that is reachable or still has neighbor
		// parameters on file (matching the pre-shard publishLocal logic).
		if key.sub != self && (rs.own.Reachable() || len(rs.params) > 0) {
			snap.destsByTopic[key.topic] = append(snap.destsByTopic[key.topic], int(key.sub))
		}
	}
	for _, dests := range snap.destsByTopic {
		sort.Ints(dests)
	}
	b.routesSnap.Store(snap)
}

// refreshLocalDestinationsLocked pins <0, 1> for every topic with local
// subscribers and withdraws routes whose local subscribers left.
func (b *Broker) refreshLocalDestinationsLocked() {
	self := int32(b.cfg.ID)
	for topic, ts := range b.topics {
		if !ts.occupied() {
			continue
		}
		key := routeKey{topic: topic, sub: self}
		rs := b.routes[key]
		if rs == nil {
			rs = &routeState{params: make(map[int]algo1.DR)}
			b.routes[key] = rs
		}
		rs.deadline = ts.maxDeadline()
	}
	// Withdraw the self-route when the last local subscriber is gone.
	for key, rs := range b.routes {
		if key.sub != self {
			continue
		}
		if !b.topics[key.topic].occupied() {
			rs.own = algo1.Unreachable()
		}
	}
}

// recomputeRouteLocked runs the per-node step of Algorithm 1 for one
// (topic, subscriber) pair.
func (b *Broker) recomputeRouteLocked(key routeKey, rs *routeState) {
	if key.sub == int32(b.cfg.ID) && b.topics[key.topic].occupied() {
		// This broker is the destination: parameters are pinned.
		rs.own = algo1.DR{D: 0, R: 1}
		rs.list = nil
		return
	}
	budget := rs.deadline
	if budget <= 0 {
		budget = b.cfg.DefaultDeadline
	}
	ids := make([]int, 0, len(rs.params))
	via := make([]algo1.DR, 0, len(rs.params))
	for nid, p := range rs.params {
		if !p.Reachable() || p.D >= budget {
			continue
		}
		nc, ok := b.neighbors[nid]
		if !ok || !nc.connected() {
			continue
		}
		alpha, gamma := nc.estimate()
		link := algo1.LinkStats(alpha, gamma, b.cfg.M)
		v := algo1.Via(link, p)
		if !v.Reachable() {
			continue
		}
		ids = append(ids, nid)
		via = append(via, v)
	}
	algo1.SortByRatio(via, ids)
	rs.own = algo1.Combine(via)
	rs.list = ids
}

// advertNeeded reports whether a route's value moved enough to re-share.
func advertNeeded(rs *routeState) bool {
	if !rs.haveAdv {
		return rs.own.Reachable() // first advert only once we have a route
	}
	if rs.own.Reachable() != rs.advertised.Reachable() {
		return true
	}
	if !rs.own.Reachable() {
		return false
	}
	dd := rs.own.D - rs.advertised.D
	if dd < 0 {
		dd = -dd
	}
	dr := rs.own.R - rs.advertised.R
	if dr < 0 {
		dr = -dr
	}
	return dd > advertTolerance || dr > 0.01
}

// sendingListLocked returns the current Theorem-1 list for a route.
func (b *Broker) sendingListLocked(topic, sub int32) []int {
	rs := b.routes[routeKey{topic: topic, sub: sub}]
	if rs == nil {
		return nil
	}
	return rs.list
}

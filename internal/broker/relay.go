package broker

import (
	"slices"
	"sync"
	"time"

	"repro/internal/wire"
)

// Relay-plane link aggregation: the engine's decisions are untouched, but
// the wire between batch-capable brokers gets cheaper in both directions.
//
//   - Outbound DATA: the writer pipeline packs consecutive wire.Data
//     messages bound for one neighbor into a single wire.DataBatch frame
//     with delta-compressed headers (see runWriter).
//   - Hop-by-hop ACKs: instead of answering every received DATA with its
//     own Ack frame, the receiver coalesces pending frame IDs per neighbor
//     and flushes them as one AckBatch — when Config.AckBatchSize are
//     pending, when Config.AckFlushInterval expires, or piggybacked on any
//     writer flush that is happening anyway.
//
// Both directions are negotiated per link through wire.CapRelayBatch in the
// Hello exchange: a peer that never advertised the capability keeps the
// legacy one-frame-per-packet, one-ack-per-frame protocol, bit for bit.
// Coalescing is safe because custody is frame-level: the flush interval
// sits far inside the sender's ACK timeout (2*alpha + AckGuard), and a
// retransmission triggered by an unlucky flush is absorbed by the
// receiver's frame dedup — delayed ACKs cost at most gamma estimate noise,
// never correctness.

const (
	// dataBatchMaxFrames caps how many Data frames one DataBatch carries;
	// a writer flush emits several batches when more are queued.
	dataBatchMaxFrames = 64
	// legacyAckFrameBytes is the encoded size of a legacy Ack frame
	// (4-byte length + type + 8-byte frame ID) — the RelayBytesSaved
	// reference cost per coalesced ACK.
	legacyAckFrameBytes = 13
)

// legacyDataBytes is the encoded size of d as a standalone legacy Data
// frame: 4-byte length + type byte, 40 bytes of fixed header fields, two
// 2-byte node counts plus 4 bytes per node, 4-byte payload length plus the
// payload — the RelayBytesSaved reference cost per batched DATA.
func legacyDataBytes(d *wire.Data) int {
	return 53 + 4*(len(d.Dests)+len(d.Path)) + len(d.Payload)
}

// helloName is the Name field of this broker's Hello to a neighbor: a
// label plus the capability tokens this configuration supports.
func (b *Broker) helloName() string {
	name := "broker"
	if !b.cfg.DisableRelayBatch {
		name = wire.AddCap(name, wire.CapRelayBatch)
	}
	if !b.cfg.DisableLinkState {
		name = wire.AddCap(name, wire.CapLinkState)
	}
	return name
}

// batchTo reports whether relay frames to this neighbor may use the batch
// framing: aggregation enabled locally and the current peer advertised the
// capability. Nil-safe so client writer pipelines can ask too.
func (nc *neighborConn) batchTo(b *Broker) bool {
	return nc != nil && !b.cfg.DisableRelayBatch && nc.peerBatch.Load()
}

// ackData acknowledges one received DATA frame hop-by-hop: immediately
// with a legacy Ack frame, or — when the link negotiated relay batching —
// through the neighbor's ACK coalescer.
func (b *Broker) ackData(nc *neighborConn, frameID uint64) {
	if !nc.batchTo(b) {
		_ = nc.send(&wire.Ack{FrameID: frameID})
		return
	}
	nc.queueAck(b, frameID)
}

// queueAck adds one frame ID to the neighbor's pending coalesced ACKs. The
// first pending ACK arms the flush timer; reaching AckBatchSize kicks the
// writer immediately. Either way the writer drains the set on its next
// flush, so ACKs also piggyback on outbound traffic for free.
func (nc *neighborConn) queueAck(b *Broker, frameID uint64) {
	nc.ackMu.Lock()
	nc.pendingAcks = append(nc.pendingAcks, frameID)
	n := len(nc.pendingAcks)
	if n == 1 {
		if nc.ackFlushTimer == nil {
			nc.ackFlushTimer = time.AfterFunc(b.cfg.AckFlushInterval, nc.kickWriter)
		} else {
			nc.ackFlushTimer.Reset(b.cfg.AckFlushInterval)
		}
	}
	nc.ackMu.Unlock()
	if n >= b.cfg.AckBatchSize {
		nc.kickWriter()
	}
}

// takeAcks moves the pending coalesced ACKs into dst (reused storage) and
// clears the set. Called by the writer goroutine on every flush.
func (nc *neighborConn) takeAcks(dst []uint64) []uint64 {
	nc.ackMu.Lock()
	dst = append(dst[:0], nc.pendingAcks...)
	nc.pendingAcks = nc.pendingAcks[:0]
	nc.ackMu.Unlock()
	return dst
}

// kickWriter wakes the neighbor's writer pipeline so it drains the pending
// coalesced ACKs even when no other traffic is queued.
func (nc *neighborConn) kickWriter() {
	nc.mu.Lock()
	w := nc.w
	nc.mu.Unlock()
	if w != nil {
		w.kick()
	}
}

// resetRelay clears the per-link aggregation state when a connection is
// replaced or closed: the next peer may be legacy, so pending coalesced
// ACKs must not leak onto its stream (the peer retransmits unACKed frames
// and the receiver's frame dedup absorbs the duplicates) and the
// capability is re-learned from its Hello.
func (nc *neighborConn) resetRelay() {
	nc.peerBatch.Store(false)
	nc.ackMu.Lock()
	nc.pendingAcks = nc.pendingAcks[:0]
	if nc.ackFlushTimer != nil {
		nc.ackFlushTimer.Stop()
	}
	nc.ackMu.Unlock()
	// Control-plane per-connection state resets with the link too: the next
	// peer re-negotiates wire.CapLinkState, and probe/ACK samples from the
	// old connection must not leak into the new one's estimates.
	nc.peerLinkState.Store(false)
	nc.mu.Lock()
	nc.probeTok = 0
	clear(nc.dataSend)
	nc.mu.Unlock()
}

// appendAckBatch encodes the coalesced ACK set as one AckBatch frame onto
// the writer buffer. IDs are sorted ascending first: the encoding is
// consecutive deltas, and in-order frame IDs from one shard differ by one.
func (b *Broker) appendAckBatch(buf []byte, label string, ids []uint64) []byte {
	slices.Sort(ids)
	ab := wire.AckBatch{FrameIDs: ids}
	base := len(buf)
	buf = b.appendFrameChecked(buf, label, &ab)
	b.ackBatches.Add(1)
	b.ackFramesCoalesced.Add(uint64(len(ids)))
	if sz := len(buf) - base; sz > 0 && len(ids)*legacyAckFrameBytes > sz {
		b.relayBytesSaved.Add(uint64(len(ids)*legacyAckFrameBytes - sz))
	}
	return buf
}

// Writer-path message pools. The broker's two per-packet hot-path message
// allocations — the wire.Data built per relay send and the wire.MuxDeliver
// built per (topic, session) delivery — are recycled through the writer
// pipelines: the producer takes a struct from the pool, the writer returns
// it after encoding (releaseMsg), and a failed send returns it on the spot.
// Each pooled message has exactly one owner at all times; messages shared
// across writers (the per-topic legacy *wire.Deliver) are never pooled.
var (
	muxDeliverPool = sync.Pool{New: func() any { return new(wire.MuxDeliver) }}
	dataFramePool  = sync.Pool{New: func() any { return new(wire.Data) }}
)

func getMuxDeliver() *wire.MuxDeliver { return muxDeliverPool.Get().(*wire.MuxDeliver) }

func getDataFrame() *wire.Data { return dataFramePool.Get().(*wire.Data) }

// releaseMsg recycles a pooled writer-path message after its last use.
// Slice fields that alias longer-lived state (payloads, snapshot ID lists)
// are dropped so the pool cannot pin them; the Data node lists are
// producer-filled scratch and keep their capacity.
func releaseMsg(m wire.Message) {
	switch t := m.(type) {
	case *wire.MuxDeliver:
		t.SubIDs, t.Payload = nil, nil
		muxDeliverPool.Put(t)
	case *wire.Data:
		t.Payload = nil
		t.Dests = t.Dests[:0]
		t.Path = t.Path[:0]
		dataFramePool.Put(t)
	}
}

package broker

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// OverlayConfig describes a whole broker overlay in one file, so every
// broker of a deployment can be started from the same JSON document:
//
//	{
//	  "brokers": [
//	    {"id": 0, "addr": "host-a:7000"},
//	    {"id": 1, "addr": "host-b:7000"},
//	    {"id": 2, "addr": "host-c:7000"}
//	  ],
//	  "links": [[0,1],[1,2]],
//	  "m": 1,
//	  "default_deadline_ms": 1000
//	}
type OverlayConfig struct {
	Brokers []OverlayBroker `json:"brokers"`
	// Links lists undirected overlay links as broker-ID pairs.
	Links [][2]int `json:"links"`
	// M is the per-neighbor transmission budget (default 1).
	M int `json:"m,omitempty"`
	// DefaultDeadlineMS applies when clients do not specify a deadline.
	DefaultDeadlineMS int `json:"default_deadline_ms,omitempty"`
}

// OverlayBroker is one broker of an overlay file.
type OverlayBroker struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
}

// LoadOverlay reads and validates an overlay file.
func LoadOverlay(path string) (*OverlayConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("broker: read overlay: %w", err)
	}
	return ParseOverlay(data)
}

// ParseOverlay validates an overlay document.
func ParseOverlay(data []byte) (*OverlayConfig, error) {
	var oc OverlayConfig
	if err := json.Unmarshal(data, &oc); err != nil {
		return nil, fmt.Errorf("broker: parse overlay: %w", err)
	}
	if len(oc.Brokers) == 0 {
		return nil, fmt.Errorf("broker: overlay has no brokers")
	}
	seen := make(map[int]bool, len(oc.Brokers))
	for _, b := range oc.Brokers {
		if b.ID < 0 {
			return nil, fmt.Errorf("broker: overlay broker ID %d negative", b.ID)
		}
		if b.Addr == "" {
			return nil, fmt.Errorf("broker: overlay broker %d has no address", b.ID)
		}
		if seen[b.ID] {
			return nil, fmt.Errorf("broker: duplicate overlay broker ID %d", b.ID)
		}
		seen[b.ID] = true
	}
	for _, l := range oc.Links {
		if l[0] == l[1] {
			return nil, fmt.Errorf("broker: overlay self-link at %d", l[0])
		}
		if !seen[l[0]] || !seen[l[1]] {
			return nil, fmt.Errorf("broker: overlay link (%d,%d) references unknown broker", l[0], l[1])
		}
	}
	if oc.M < 0 || oc.DefaultDeadlineMS < 0 {
		return nil, fmt.Errorf("broker: overlay m/deadline must be non-negative")
	}
	return &oc, nil
}

// Addr returns the configured address of broker id.
func (oc *OverlayConfig) Addr(id int) (string, bool) {
	for _, b := range oc.Brokers {
		if b.ID == id {
			return b.Addr, true
		}
	}
	return "", false
}

// BrokerConfig derives the Config for one broker of the overlay.
func (oc *OverlayConfig) BrokerConfig(id int) (Config, error) {
	addr, ok := oc.Addr(id)
	if !ok {
		return Config{}, fmt.Errorf("broker: overlay has no broker %d", id)
	}
	cfg := Config{
		ID:        id,
		Listen:    addr,
		Neighbors: make(map[int]string),
		M:         oc.M,
	}
	if oc.DefaultDeadlineMS > 0 {
		cfg.DefaultDeadline = time.Duration(oc.DefaultDeadlineMS) * time.Millisecond
	}
	for _, l := range oc.Links {
		var peer int
		switch id {
		case l[0]:
			peer = l[1]
		case l[1]:
			peer = l[0]
		default:
			continue
		}
		peerAddr, ok := oc.Addr(peer)
		if !ok {
			return Config{}, fmt.Errorf("broker: overlay link references unknown broker %d", peer)
		}
		cfg.Neighbors[peer] = peerAddr
	}
	return cfg, nil
}

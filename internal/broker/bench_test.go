package broker

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Benchmark shape: each iteration pushes a batch of messages through a live
// broker overlay on localhost and waits for every delivery, so ns/op is the
// cost of one sustained batch and the msgs/sec metric is end-to-end
// throughput (publisher client -> broker 0 -> broker 1 -> subscriber client
// for the forwarding benchmarks, one broker fanning out to K subscriber
// clients for the fan-out benchmark).
const (
	// forwardBatch is the number of messages per benchmark iteration.
	forwardBatch = 1000
	// forwardWindow bounds publisher-side outstanding messages, keeping the
	// subscriber inbox (cap 1024) from overflowing and dropping deliveries.
	forwardWindow = 512
	// fanoutBatch is messages per iteration for the fan-out benchmark; each
	// is delivered to every subscriber (fanoutBatch <= client inbox cap).
	fanoutBatch = 500
	// benchPayload is the payload size of every benchmark message.
	benchPayload = 256
)

// benchConfig is the broker tuning used by every live-broker benchmark:
// generous ACK guard and deadlines so the numbers measure the data plane,
// not retransmission noise.
func benchConfig(id int, addr string, neighbors map[int]string) Config {
	return Config{
		ID:              id,
		Listen:          addr,
		Neighbors:       neighbors,
		M:               2,
		AckGuard:        500 * time.Millisecond,
		PingInterval:    100 * time.Millisecond,
		AdvertInterval:  200 * time.Millisecond,
		DialRetry:       50 * time.Millisecond,
		DefaultDeadline: 10 * time.Second,
	}
}

// benchOverlay boots n brokers with the given undirected adjacency over
// localhost TCP, mirroring newOverlay but with benchmark tuning.
func benchOverlay(b *testing.B, n int, links [][2]int) *overlay {
	b.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	neighbors := make([]map[int]string, n)
	for i := range neighbors {
		neighbors[i] = make(map[int]string)
	}
	for _, l := range links {
		neighbors[l[0]][l[1]] = addrs[l[1]]
		neighbors[l[1]][l[0]] = addrs[l[0]]
	}
	o := &overlay{addrs: addrs}
	for i := 0; i < n; i++ {
		bk, err := New(benchConfig(i, addrs[i], neighbors[i]))
		if err != nil {
			b.Fatal(err)
		}
		if err := bk.StartListener(listeners[i]); err != nil {
			b.Fatal(err)
		}
		o.brokers = append(o.brokers, bk)
	}
	b.Cleanup(func() {
		for _, bk := range o.brokers {
			_ = bk.Close()
		}
	})
	return o
}

// benchPipeOverlay boots two brokers whose overlay link is a synchronous
// in-memory net.Pipe instead of TCP, isolating the data-plane software cost
// (codec, queues, dispatch) from kernel socket buffering. Clients still
// connect over localhost TCP.
func benchPipeOverlay(b *testing.B) *overlay {
	b.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	b0, err := New(benchConfig(0, addrs[0], map[int]string{1: addrs[1]}))
	if err != nil {
		b.Fatal(err)
	}
	b1, err := New(benchConfig(1, addrs[1], map[int]string{0: addrs[0]}))
	if err != nil {
		b.Fatal(err)
	}
	// Attach the pipe ends before starting, so broker 0's dial loop sees the
	// link already connected and never dials the TCP address.
	p0, p1 := net.Pipe()
	nc0 := b0.neighbor(1)
	nc0.attach(b0, p0)
	nc1 := b1.neighbor(0)
	nc1.attach(b1, p1)
	b0.goTracked(func() { b0.readNeighbor(nc0, p0) })
	b1.goTracked(func() { b1.readNeighbor(nc1, p1) })
	if err := b0.StartListener(listeners[0]); err != nil {
		b.Fatal(err)
	}
	if err := b1.StartListener(listeners[1]); err != nil {
		b.Fatal(err)
	}
	o := &overlay{brokers: []*Broker{b0, b1}, addrs: addrs}
	b.Cleanup(func() {
		_ = b0.Close()
		_ = b1.Close()
	})
	return o
}

// benchWaitRoute blocks until broker has a sending list for (topic, sub).
func benchWaitRoute(b *testing.B, bk *Broker, topic, sub int32) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		bk.mu.Lock()
		ok := len(bk.sendingListLocked(topic, sub)) > 0
		bk.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.Fatalf("timed out waiting for route (%d, %d)", topic, sub)
}

// runForward drives the broker-to-broker forwarding benchmark over an
// already-built 0—1 overlay: windowed pipelined publishes on broker 0, and
// every delivery awaited on broker 1's subscriber.
func runForward(b *testing.B, o *overlay) {
	b.Helper()
	sub, err := Dial(o.addrs[1], "bench-sub")
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(1, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	benchWaitRoute(b, o.brokers[0], 1, 1)
	pub, err := Dial(o.addrs[0], "bench-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	payload := make([]byte, benchPayload)

	// One warm-up message end to end before the clock starts.
	if err := pub.Publish(1, 10*time.Second, payload); err != nil {
		b.Fatal(err)
	}
	select {
	case <-sub.Receive():
	case <-time.After(10 * time.Second):
		b.Fatal("warm-up delivery never arrived")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, received := 0, 0
		stall := time.NewTimer(30 * time.Second)
		for received < forwardBatch {
			for sent-received < forwardWindow && sent < forwardBatch {
				if err := pub.Publish(1, 10*time.Second, payload); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			select {
			case _, ok := <-sub.Receive():
				if !ok {
					b.Fatalf("subscriber closed: %v", sub.Err())
				}
				received++
			case <-stall.C:
				b.Fatalf("stalled at %d/%d deliveries", received, forwardBatch)
			}
		}
		stall.Stop()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*forwardBatch/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkBrokerForwardTCP measures sustained broker-to-broker forwarding
// throughput over TCP loopback: the headline data-plane number.
func BenchmarkBrokerForwardTCP(b *testing.B) {
	runForward(b, benchOverlay(b, 2, [][2]int{{0, 1}}))
}

// BenchmarkBrokerForwardPipe is BenchmarkBrokerForwardTCP with the overlay
// link replaced by a synchronous in-memory pipe: no kernel socket buffers,
// so codec and queueing costs dominate.
func BenchmarkBrokerForwardPipe(b *testing.B) {
	runForward(b, benchPipeOverlay(b))
}

// BenchmarkBrokerForwardDurable is BenchmarkBrokerForwardTCP with the
// crash-durable custody WAL enabled on both brokers: every relayed frame is
// group-committed to disk before its hop-by-hop ACK, so the delta against
// BenchmarkBrokerForwardTCP is the price of the ACK-after-durable invariant
// (DESIGN.md §16).
func BenchmarkBrokerForwardDurable(b *testing.B) {
	root := b.TempDir()
	o := benchDurableOverlay(b, root, 2, [][2]int{{0, 1}})
	runForward(b, o)
}

// benchDurableOverlay is benchOverlay with a per-broker WAL data directory
// under root, enabling persistency on every node.
func benchDurableOverlay(b *testing.B, root string, n int, links [][2]int) *overlay {
	b.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	neighbors := make([]map[int]string, n)
	for i := range neighbors {
		neighbors[i] = make(map[int]string)
	}
	for _, l := range links {
		neighbors[l[0]][l[1]] = addrs[l[1]]
		neighbors[l[1]][l[0]] = addrs[l[0]]
	}
	dirs := durableDirs(root, n)
	o := &overlay{addrs: addrs}
	for i := 0; i < n; i++ {
		cfg := benchConfig(i, addrs[i], neighbors[i])
		cfg.DataDir = dirs[i]
		bk, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := bk.StartListener(listeners[i]); err != nil {
			b.Fatal(err)
		}
		o.brokers = append(o.brokers, bk)
	}
	b.Cleanup(func() {
		for _, bk := range o.brokers {
			_ = bk.Close()
		}
	})
	return o
}

// BenchmarkBrokerFanout measures one broker delivering every published
// message to K local subscriber clients.
func BenchmarkBrokerFanout(b *testing.B) {
	for _, k := range []int{8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			o := benchOverlay(b, 1, nil)
			bk := o.brokers[0]
			subs := make([]*Client, k)
			for i := range subs {
				c, err := Dial(o.addrs[0], fmt.Sprintf("bench-sub-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.Subscribe(2, 10*time.Second); err != nil {
					b.Fatal(err)
				}
				subs[i] = c
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				n := bk.localLedger(2).subscribers()
				if n == k {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("only %d/%d subscriptions registered", n, k)
				}
				time.Sleep(10 * time.Millisecond)
			}
			pub, err := Dial(o.addrs[0], "bench-pub")
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			payload := make([]byte, benchPayload)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for m := 0; m < fanoutBatch; m++ {
					if err := pub.Publish(2, 10*time.Second, payload); err != nil {
						b.Fatal(err)
					}
				}
				stall := time.NewTimer(30 * time.Second)
				for _, c := range subs {
					for got := 0; got < fanoutBatch; {
						select {
						case _, ok := <-c.Receive():
							if !ok {
								b.Fatalf("subscriber closed: %v", c.Err())
							}
							got++
						case <-stall.C:
							b.Fatalf("stalled at %d/%d deliveries", got, fanoutBatch)
						}
					}
				}
				stall.Stop()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*fanoutBatch*float64(k)/b.Elapsed().Seconds(), "deliveries/sec")
		})
	}
}

// BenchmarkBrokerSharded is the scaling curve for the sharded data plane:
// one broker with n engine shards fanning out to 8 subscriber clients while
// 4 publisher clients publish concurrently. The cpus=n sub-runs set
// GOMAXPROCS themselves (instead of -cpu) so the result names are stable
// for benchjson baselining — go's -cpu suffix would be stripped when
// merging runs.
func BenchmarkBrokerSharded(b *testing.B) {
	const (
		k          = 8
		publishers = 4
		perPub     = fanoutBatch / publishers
	)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cpus=%d", n), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(n)
			defer runtime.GOMAXPROCS(prev)

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig(0, ln.Addr().String(), nil)
			cfg.Shards = n
			bk, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := bk.StartListener(ln); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = bk.Close() })

			subs := make([]*Client, k)
			for i := range subs {
				c, err := Dial(ln.Addr().String(), fmt.Sprintf("bench-sub-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.Subscribe(2, 10*time.Second); err != nil {
					b.Fatal(err)
				}
				subs[i] = c
			}
			deadline := time.Now().Add(10 * time.Second)
			for bk.localLedger(2).subscribers() != k {
				if time.Now().After(deadline) {
					b.Fatalf("only %d/%d subscriptions registered", bk.localLedger(2).subscribers(), k)
				}
				time.Sleep(10 * time.Millisecond)
			}
			pubs := make([]*Client, publishers)
			for i := range pubs {
				c, err := Dial(ln.Addr().String(), fmt.Sprintf("bench-pub-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				pubs[i] = c
			}
			payload := make([]byte, benchPayload)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errs := make(chan error, publishers)
				var wg sync.WaitGroup
				for _, c := range pubs {
					c := c
					wg.Add(1)
					go func() {
						defer wg.Done()
						for m := 0; m < perPub; m++ {
							if err := c.Publish(2, 10*time.Second, payload); err != nil {
								errs <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				stall := time.NewTimer(30 * time.Second)
				for _, c := range subs {
					for got := 0; got < publishers*perPub; {
						select {
						case _, ok := <-c.Receive():
							if !ok {
								b.Fatalf("subscriber closed: %v", c.Err())
							}
							got++
						case <-stall.C:
							b.Fatalf("stalled at %d/%d deliveries", got, publishers*perPub)
						}
					}
				}
				stall.Stop()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*publishers*perPub*k/b.Elapsed().Seconds(), "deliveries/sec")
		})
	}
}

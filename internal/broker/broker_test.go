package broker

import (
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// overlay spins up a live broker overlay on localhost from an adjacency
// list, handling the port-0 two-phase setup.
type overlay struct {
	brokers []*Broker
	addrs   []string
}

// newOverlay builds n brokers with the given undirected adjacency.
func newOverlay(t *testing.T, n int, links [][2]int) *overlay {
	t.Helper()
	return newOverlayConfig(t, n, links, nil)
}

// newOverlayConfig is newOverlay with a per-broker Config hook, applied
// after the base test config (ID included) is assembled.
func newOverlayConfig(t *testing.T, n int, links [][2]int, mutate func(*Config)) *overlay {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	neighbors := make([]map[int]string, n)
	for i := range neighbors {
		neighbors[i] = make(map[int]string)
	}
	for _, l := range links {
		neighbors[l[0]][l[1]] = addrs[l[1]]
		neighbors[l[1]][l[0]] = addrs[l[0]]
	}
	o := &overlay{addrs: addrs}
	for i := 0; i < n; i++ {
		cfg := Config{
			ID:              i,
			Listen:          addrs[i],
			Neighbors:       neighbors[i],
			PingInterval:    20 * time.Millisecond,
			AdvertInterval:  30 * time.Millisecond,
			DialRetry:       20 * time.Millisecond,
			AckGuard:        30 * time.Millisecond,
			DefaultDeadline: 2 * time.Second,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.StartListener(listeners[i]); err != nil {
			t.Fatal(err)
		}
		o.brokers = append(o.brokers, b)
	}
	t.Cleanup(func() {
		for _, b := range o.brokers {
			_ = b.Close()
		}
	})
	return o
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// receiveOne waits for a single delivery on the client.
func receiveOne(t *testing.T, c *Client, timeout time.Duration) Delivery {
	t.Helper()
	select {
	case d, ok := <-c.Receive():
		if !ok {
			t.Fatalf("client %q connection closed: %v", c.name, c.Err())
		}
		return d
	case <-time.After(timeout):
		t.Fatalf("client %q: no delivery within %v", c.name, timeout)
	}
	panic("unreachable")
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ID: -1, Listen: "x"}); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := New(Config{ID: 0, Listen: ""}); err == nil {
		t.Error("empty listen address accepted")
	}
	if _, err := New(Config{ID: 0, Listen: "x", Neighbors: map[int]string{0: "y"}}); err == nil {
		t.Error("self-neighbor accepted")
	}
	if _, err := New(Config{ID: 0, Listen: "x", Neighbors: map[int]string{-2: "y"}}); err == nil {
		t.Error("negative neighbor accepted")
	}
}

func TestLocalPubSub(t *testing.T) {
	// Publisher and subscriber on the same broker: no overlay hops at all.
	o := newOverlay(t, 1, nil)
	sub, err := Dial(o.addrs[0], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(1, time.Second); err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond) // let the subscription register
	if err := pub.Publish(1, time.Second, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	d := receiveOne(t, sub, 2*time.Second)
	if string(d.Payload) != "hello" || d.Topic != 1 {
		t.Errorf("delivery = %+v", d)
	}
}

func TestTwoBrokerDelivery(t *testing.T) {
	o := newOverlay(t, 2, [][2]int{{0, 1}})
	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(7, time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait for broker 0 to learn a route to (7, broker 1).
	waitFor(t, 3*time.Second, "route propagation", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(7, 1)) > 0
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(7, time.Second, []byte("cross-broker")); err != nil {
		t.Fatal(err)
	}
	d := receiveOne(t, sub, 2*time.Second)
	if string(d.Payload) != "cross-broker" {
		t.Errorf("payload = %q", d.Payload)
	}
	if d.Source != 0 {
		t.Errorf("source = %d, want 0", d.Source)
	}
}

func TestLineDeliveryAcrossRelay(t *testing.T) {
	// 0 - 1 - 2: broker 1 must relay using its sending list.
	o := newOverlay(t, 3, [][2]int{{0, 1}, {1, 2}})
	sub, err := Dial(o.addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route at broker 0", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(3, 2)) > 0
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 5; i++ {
		if err := pub.Publish(3, 2*time.Second, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[byte]bool)
	for i := 0; i < 5; i++ {
		d := receiveOne(t, sub, 2*time.Second)
		seen[d.Payload[0]] = true
	}
	if len(seen) != 5 {
		t.Errorf("received %d distinct messages, want 5", len(seen))
	}
	st := o.brokers[1].Stats()
	if st.Forwarded == 0 {
		t.Error("relay broker forwarded nothing")
	}
}

func TestFanoutToMultipleSubscriberBrokers(t *testing.T) {
	// Star around broker 0: subscribers at 1, 2, 3.
	o := newOverlay(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	var subs []*Client
	for i := 1; i <= 3; i++ {
		c, err := Dial(o.addrs[i], "sub")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Subscribe(9, time.Second); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, c)
	}
	waitFor(t, 3*time.Second, "all routes at broker 0", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		for i := int32(1); i <= 3; i++ {
			if len(b.sendingListLocked(9, i)) == 0 {
				return false
			}
		}
		return true
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(9, time.Second, []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	for _, c := range subs {
		d := receiveOne(t, c, 2*time.Second)
		if string(d.Payload) != "fanout" {
			t.Errorf("payload = %q", d.Payload)
		}
	}
}

func TestFailoverAroundDeadBroker(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3. Kill broker 1; publishes must keep
	// arriving via 2.
	o := newOverlay(t, 4, [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	sub, err := Dial(o.addrs[3], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(5, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "both routes at broker 0", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(5, 3)) >= 2
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := pub.Publish(5, 2*time.Second, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if d := receiveOne(t, sub, 2*time.Second); string(d.Payload) != "before" {
		t.Fatalf("first delivery = %q", d.Payload)
	}

	if err := o.brokers[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Give broker 0 a moment to notice the dropped connection.
	waitFor(t, 3*time.Second, "broker 0 sees neighbor 1 down", func() bool {
		nc := o.brokers[0].neighbor(1)
		return !nc.connected()
	})

	if err := pub.Publish(5, 2*time.Second, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if d := receiveOne(t, sub, 5*time.Second); string(d.Payload) != "after" {
		t.Fatalf("post-failure delivery = %q", d.Payload)
	}
}

func TestUnknownNeighborRejected(t *testing.T) {
	o := newOverlay(t, 1, nil)
	conn, err := net.Dial("tcp", o.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim to be broker 42, which is not in the config.
	if err := writeHello(conn, 42); err != nil {
		t.Fatal(err)
	}
	// The broker should close the connection promptly.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection from unknown neighbor stayed open")
	}
}

func TestBrokerCloseIdempotent(t *testing.T) {
	o := newOverlay(t, 1, nil)
	if err := o.brokers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.brokers[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	o := newOverlay(t, 2, [][2]int{{0, 1}})
	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(1, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(1, 1)) > 0
	})
	pub, err := Dial(o.addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(1, time.Second, []byte("x")); err != nil {
		t.Fatal(err)
	}
	receiveOne(t, sub, 2*time.Second)
	waitFor(t, time.Second, "stats to settle", func() bool {
		return o.brokers[0].Stats().Published == 1 &&
			o.brokers[0].Stats().Forwarded >= 1 &&
			o.brokers[1].Stats().Delivered == 1
	})
}

// writeHello sends a raw broker hello for the unknown-neighbor test.
func writeHello(conn net.Conn, id int32) error {
	return wire.Write(conn, &wire.Hello{BrokerID: id, Name: "impostor"})
}

func TestStatsRequestReply(t *testing.T) {
	o := newOverlay(t, 2, [][2]int{{0, 1}})
	sub, err := Dial(o.addrs[1], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(3, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route", func() bool {
		b := o.brokers[0]
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.sendingListLocked(3, 1)) > 0
	})
	mon, err := Dial(o.addrs[0], "mon")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	reply, err := mon.Stats(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.BrokerID != 0 {
		t.Errorf("broker ID = %d", reply.BrokerID)
	}
	if len(reply.Neighbors) != 1 || reply.Neighbors[0].ID != 1 || !reply.Neighbors[0].Connected {
		t.Errorf("neighbors = %+v", reply.Neighbors)
	}
	found := false
	for _, rt := range reply.Routes {
		if rt.Topic == 3 && rt.Sub == 1 && rt.R > 0 && rt.ListLen == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("route (3,1) missing from %+v", reply.Routes)
	}
	// A second request works too (token correlation).
	if _, err := mon.Stats(3 * time.Second); err != nil {
		t.Fatal(err)
	}
}

package broker

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// netListen binds an ephemeral localhost listener for overlay tests.
func netListen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

const sampleOverlay = `{
  "brokers": [
    {"id": 0, "addr": "a:7000"},
    {"id": 1, "addr": "b:7000"},
    {"id": 2, "addr": "c:7000"}
  ],
  "links": [[0,1],[1,2]],
  "m": 2,
  "default_deadline_ms": 500
}`

func TestParseOverlay(t *testing.T) {
	oc, err := ParseOverlay([]byte(sampleOverlay))
	if err != nil {
		t.Fatal(err)
	}
	if len(oc.Brokers) != 3 || len(oc.Links) != 2 {
		t.Fatalf("overlay = %+v", oc)
	}
	cfg, err := oc.BrokerConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "b:7000" || cfg.M != 2 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.DefaultDeadline != 500*time.Millisecond {
		t.Errorf("deadline = %v", cfg.DefaultDeadline)
	}
	if len(cfg.Neighbors) != 2 || cfg.Neighbors[0] != "a:7000" || cfg.Neighbors[2] != "c:7000" {
		t.Errorf("neighbors = %v", cfg.Neighbors)
	}
	// Edge brokers get one neighbor.
	cfg0, err := oc.BrokerConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg0.Neighbors) != 1 || cfg0.Neighbors[1] != "b:7000" {
		t.Errorf("broker 0 neighbors = %v", cfg0.Neighbors)
	}
}

func TestParseOverlayErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"no brokers":     `{"brokers": [], "links": []}`,
		"negative id":    `{"brokers": [{"id": -1, "addr": "x"}]}`,
		"missing addr":   `{"brokers": [{"id": 0}]}`,
		"duplicate id":   `{"brokers": [{"id": 0, "addr": "x"}, {"id": 0, "addr": "y"}]}`,
		"self link":      `{"brokers": [{"id": 0, "addr": "x"}], "links": [[0,0]]}`,
		"dangling link":  `{"brokers": [{"id": 0, "addr": "x"}], "links": [[0,9]]}`,
		"negative m":     `{"brokers": [{"id": 0, "addr": "x"}], "m": -1}`,
		"negative delay": `{"brokers": [{"id": 0, "addr": "x"}], "default_deadline_ms": -5}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseOverlay([]byte(doc)); err == nil {
				t.Errorf("overlay %q accepted", doc)
			}
		})
	}
}

func TestBrokerConfigUnknownID(t *testing.T) {
	oc, err := ParseOverlay([]byte(sampleOverlay))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.BrokerConfig(42); err == nil {
		t.Error("unknown broker ID accepted")
	}
	if _, ok := oc.Addr(42); ok {
		t.Error("Addr(42) reported ok")
	}
}

func TestLoadOverlayFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overlay.json")
	if err := os.WriteFile(path, []byte(sampleOverlay), 0o644); err != nil {
		t.Fatal(err)
	}
	oc, err := LoadOverlay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(oc.Brokers) != 3 {
		t.Errorf("brokers = %d", len(oc.Brokers))
	}
	if _, err := LoadOverlay(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOverlayEndToEnd(t *testing.T) {
	// Boot a real 2-broker overlay from a config document (with port-0
	// addresses resolved first).
	lnA, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	doc := `{
	  "brokers": [
	    {"id": 0, "addr": "` + lnA.Addr().String() + `"},
	    {"id": 1, "addr": "` + lnB.Addr().String() + `"}
	  ],
	  "links": [[0,1]]
	}`
	oc, err := ParseOverlay([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg0, err := oc.BrokerConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg0.PingInterval = 20 * time.Millisecond
	cfg0.AdvertInterval = 30 * time.Millisecond
	cfg0.DialRetry = 20 * time.Millisecond
	b0, err := New(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b0.StartListener(lnA); err != nil {
		t.Fatal(err)
	}
	defer b0.Close()

	cfg1, err := oc.BrokerConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg1.PingInterval = 20 * time.Millisecond
	cfg1.AdvertInterval = 30 * time.Millisecond
	cfg1.DialRetry = 20 * time.Millisecond
	b1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.StartListener(lnB); err != nil {
		t.Fatal(err)
	}
	defer b1.Close()

	sub, err := Dial(lnB.Addr().String(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(1, time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "route", func() bool {
		b0.mu.Lock()
		defer b0.mu.Unlock()
		return len(b0.sendingListLocked(1, 1)) > 0
	})
	pub, err := Dial(lnA.Addr().String(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(1, time.Second, []byte("via config")); err != nil {
		t.Fatal(err)
	}
	if d := receiveOne(t, sub, 2*time.Second); string(d.Payload) != "via config" {
		t.Errorf("payload = %q", d.Payload)
	}
}

package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/trace"
)

// RouterOptions tunes the Algorithm-2 forwarding scheme.
type RouterOptions struct {
	// M is the number of transmissions per neighbor before switching to the
	// next sending-list entry (the paper's m; default 1).
	M int
	// AckGuard is added on top of the network's ACK wait (alpha under the
	// paper's instant-control model, 2*alpha otherwise) when arming the
	// ACK timer. Default 1 ms.
	AckGuard time.Duration
	// MaxLifetime bounds how long a packet may stay in flight before the
	// router gives up (covers persistent partitions, which the paper
	// delegates to its out-of-scope persistency mode). Default 30 s.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: when the
	// origin exhausts every neighbor, the packet is held and resent from
	// scratch at the next failure-epoch boundary (when link states can
	// change) instead of being dropped, until MaxLifetime. This provides
	// the delivery guarantee even across windows where no live path
	// exists, at the cost of buffering and late deliveries.
	Persistent bool
	// RebuildWorkers bounds the worker pool Rebuild fans independent
	// (publisher, subscriber) pair builds out over. Values <= 1 build
	// serially — the default, so routers nested under an already-parallel
	// harness (experiment.Run's cell pool) do not oversubscribe the CPUs.
	// Output is deterministic either way: pair builds are pure and results
	// are installed in index order.
	RebuildWorkers int
	// Build tunes the Algorithm-1 table fixpoint.
	Build BuildOptions
	// Tracer, when non-nil, receives a per-packet routing timeline
	// (sends, ACK handoffs, timeouts, failovers, reroutes, deliveries).
	Tracer trace.Recorder
}

// withDefaults fills unset options.
func (o RouterOptions) withDefaults() RouterOptions {
	if o.M < 1 {
		o.M = 1
	}
	if o.AckGuard <= 0 {
		o.AckGuard = time.Millisecond
	}
	if o.MaxLifetime <= 0 {
		o.MaxLifetime = 30 * time.Second
	}
	if o.Build.M == 0 {
		o.Build.M = o.M
	}
	return o
}

// Router implements DCRD's dynamic routing (Algorithm 2) over a simulated
// network: hop-by-hop ACKs, m transmissions per neighbor, switching to the
// next Theorem-1-ordered neighbor on failure, and rerouting to the upstream
// node when a broker exhausts its sending list. One Router instance drives
// every broker node of the overlay.
//
// The forwarding hot path is allocation-free in steady state: work, flight
// and dataPayload objects are pooled on the Router (one simulation is
// single-threaded, so the pools need no locking), per-packet sets are
// bitsets or small sorted slices with reusable backing arrays, and all
// timers go through the simulator's closure-free AfterFunc.
type Router struct {
	net  *netsim.Network
	work *pubsub.Workload
	col  *metrics.Collector
	opts RouterOptions
	// tables[topic][subscriberNode] is the Algorithm-1 route table for that
	// (publisher, subscriber) pair.
	tables []map[int]*Table
	nodes  []*nodeState
	// Incremental-rebuild state: estVer is the monitoring-estimate version
	// the current tables were built from, built marks that a first build
	// happened, and changedBuf is the reusable changed-link scratch.
	estVer     uint64
	built      bool
	changedBuf [][2]int
	// setWords is the pathSet bitset length, (N+63)/64.
	setWords int
	// Object pools. Backing slices inside recycled objects are kept, so
	// steady state reuses their capacity.
	freeWork    []*work
	freeFlight  []*flight
	freePayload []*dataPayload
}

// dataPayload is the body of a DCRD data frame: the packet plus the
// destinations this copy is responsible for and the recorded routing path
// (the broker IDs that have sent this copy, in order, with duplicates when
// a broker sent it more than once — exactly the paper's packet format).
//
// Payloads are pooled: the owning flight recycles its payload when the
// hop-by-hop ACK resolves it. A receiver may therefore read the payload's
// contents only during the frame's own delivery event and only for frames
// that pass deduplication — both hold by construction: the first delivery
// happens strictly before the ACK that releases the payload, and duplicate
// deliveries land within one ACK round trip, far inside the dedup horizon.
type dataPayload struct {
	Pkt   pubsub.Packet
	Dests []int
	Path  []int
}

// NewRouter builds route tables for every (publisher, subscriber) pair and
// installs frame handlers on every node of the network.
func NewRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	g := net.Graph()
	r := &Router{
		net:      net,
		work:     w,
		col:      col,
		opts:     opts,
		tables:   make([]map[int]*Table, len(w.Topics())),
		nodes:    make([]*nodeState, g.N()),
		setWords: (g.N() + 63) / 64,
	}
	r.Rebuild()
	for id := 0; id < g.N(); id++ {
		ns := &nodeState{
			r:        r,
			id:       id,
			seen:     make(map[uint64]struct{}),
			inflight: make(map[uint64]*flight),
		}
		r.nodes[id] = ns
		r.net.SetHandler(id, ns.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *Router) Name() string { return "DCRD" }

// Rebuild refreshes the Algorithm-1 route tables from the monitoring
// estimates current at the simulator's clock. Call it at every monitoring
// epoch when the network models measurement-based estimates
// (netsim.Config.MonitorSamples > 0); with exact estimates the fixpoint is
// time-invariant and one build at construction suffices.
//
// The refresh is incremental: when the estimate version is unchanged the
// call is a no-op reusing every prior table; otherwise one shared link-stats
// Snapshot is built for the epoch, pairs untouched by any changed link keep
// their tables, and dirty pairs are warm-started from their previous
// fixpoint. The resulting tables are exactly the tables a from-scratch
// build would produce (see RebuildCold, which tests cross-check against).
func (r *Router) Rebuild() {
	now := r.net.Sim().Now()
	ver := r.net.EstimateVersion(now)
	var changed [][2]int
	if r.built {
		if ver == r.estVer {
			return // same estimates, same tables
		}
		r.changedBuf = r.net.AppendChangedEstimates(r.estVer, ver, r.changedBuf[:0])
		r.estVer = ver
		if len(r.changedBuf) == 0 {
			return // new window, identical estimates
		}
		changed = r.changedBuf
	} else {
		r.estVer = ver
	}
	r.rebuild(changed)
	r.built = true
}

// rebuildJob is one dirty (topic, subscriber) pair queued for (re)building.
type rebuildJob struct {
	topic  int
	sub    int
	budget []time.Duration
	prev   *Table
}

// rebuild (re)builds route tables against one shared snapshot of the
// current estimates. A nil changed set means everything is dirty (the
// initial build); otherwise only pairs the changed links can influence are
// rebuilt, warm-started from their previous tables.
func (r *Router) rebuild(changed [][2]int) {
	g := r.net.Graph()
	now := r.net.Sim().Now()
	stats := func(u, v int) (time.Duration, float64, bool) {
		est, ok := r.net.EstimateAt(u, v, now)
		return est.Alpha, est.Gamma, ok
	}
	snap := NewSnapshot(g, stats, r.opts.Build.M)

	var jobs []rebuildJob
	for _, t := range r.work.Topics() {
		if r.tables[t.ID] == nil {
			r.tables[t.ID] = make(map[int]*Table, len(t.Subscribers))
		}
		for _, s := range t.Subscribers {
			prev := r.tables[t.ID][s.Node]
			var budget []time.Duration
			if prev != nil {
				// Budgets depend only on the deadline and the (static)
				// shortest-path tree, so the previous table's copy is
				// authoritative across epochs.
				budget = prev.Budget
				if changed != nil && !pairAffected(budget, s.Node, changed) {
					continue
				}
			} else {
				budget = BudgetsFromTree(r.work.PublisherTree(t.ID), s.Deadline)
			}
			jobs = append(jobs, rebuildJob{topic: t.ID, sub: s.Node, budget: budget, prev: prev})
		}
	}

	results := make([]*Table, len(jobs))
	if r.opts.RebuildWorkers > 1 && len(jobs) > 1 {
		workers := r.opts.RebuildWorkers
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					j := jobs[i]
					results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, r.opts.Build)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, j := range jobs {
			results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, r.opts.Build)
		}
	}
	for i, j := range jobs {
		r.tables[j.topic][j.sub] = results[i]
	}
}

// pairAffected reports whether any changed link can influence the pair's
// Algorithm-1 fixpoint. A changed link (u, v) is relevant in direction
// u→v only when u could ever send (positive residual budget) and v could
// ever be admitted (it is the subscriber, whose parameters are pinned, or
// it has a positive budget — a node with budget <= 0 admits nobody and so
// stays Unreachable regardless of link statistics). This test is sound —
// it never skips a pair whose table could differ — while budgets are
// static per pair, so it costs O(changed links) per pair and no rebuild.
func pairAffected(budget []time.Duration, sub int, changed [][2]int) bool {
	for _, l := range changed {
		u, v := l[0], l[1]
		if budget[u] > 0 && (v == sub || budget[v] > 0) {
			return true
		}
		if budget[v] > 0 && (u == sub || budget[u] > 0) {
			return true
		}
	}
	return false
}

// RebuildCold re-runs Algorithm 1 from scratch for every (publisher,
// subscriber) pair — the pre-incremental reference implementation, kept as
// the correctness oracle: tests and benchmarks cross-check Rebuild's
// incremental tables (and measure its speedup) against this path. Each
// pair pays for its own link-stats snapshot and a cold Jacobi start.
func (r *Router) RebuildCold() {
	g := r.net.Graph()
	now := r.net.Sim().Now()
	stats := func(u, v int) (time.Duration, float64, bool) {
		est, ok := r.net.EstimateAt(u, v, now)
		return est.Alpha, est.Gamma, ok
	}
	for _, t := range r.work.Topics() {
		r.tables[t.ID] = make(map[int]*Table, len(t.Subscribers))
		tree := r.work.PublisherTree(t.ID)
		for _, s := range t.Subscribers {
			budgets := BudgetsFromTree(tree, s.Deadline)
			r.tables[t.ID][s.Node] = BuildTable(g, stats, s.Node, budgets, r.opts.Build)
		}
	}
	r.estVer = r.net.EstimateVersion(now)
	r.built = true
}

// Table exposes the route table for a (topic, subscriber) pair, mainly for
// tests and diagnostics.
func (r *Router) Table(topic, sub int) *Table { return r.tables[topic][sub] }

// record emits a trace event when tracing is enabled. dests is copied so
// recorded events stay valid after pooled buffers are reused.
func (r *Router) record(kind trace.Kind, pkt uint64, node, peer int, dests []int, note string) {
	if r.opts.Tracer == nil {
		return
	}
	if dests != nil {
		dests = append([]int(nil), dests...)
	}
	r.opts.Tracer.Record(trace.Event{
		At:     r.net.Sim().Now(),
		Kind:   kind,
		Packet: pkt,
		Node:   node,
		Peer:   peer,
		Dests:  dests,
		Note:   note,
	})
}

// allocWork takes a work object from the pool with one reference held by
// the caller.
func (r *Router) allocWork(ns *nodeState) *work {
	var w *work
	if l := len(r.freeWork); l > 0 {
		w = r.freeWork[l-1]
		r.freeWork[l-1] = nil
		r.freeWork = r.freeWork[:l-1]
	} else {
		w = &work{pathSet: make([]uint64, r.setWords)}
	}
	w.ns = ns
	w.path = w.path[:0]
	w.pending = w.pending[:0]
	w.failed = w.failed[:0]
	clear(w.pathSet)
	w.refs = 1
	return w
}

// retainWork adds a reference (a flight or a scheduled re-process event).
func (r *Router) retainWork(w *work) { w.refs++ }

// releaseWork drops one reference and recycles the work when none remain.
func (r *Router) releaseWork(w *work) {
	w.refs--
	if w.refs == 0 {
		w.ns = nil
		w.pkt = pubsub.Packet{}
		r.freeWork = append(r.freeWork, w)
	}
}

// allocPayload takes a payload from the pool, keeping recycled capacity.
func (r *Router) allocPayload() *dataPayload {
	if l := len(r.freePayload); l > 0 {
		p := r.freePayload[l-1]
		r.freePayload[l-1] = nil
		r.freePayload = r.freePayload[:l-1]
		p.Dests = p.Dests[:0]
		p.Path = p.Path[:0]
		return p
	}
	return &dataPayload{}
}

// releasePayload returns a payload to the pool once its flight resolves.
func (r *Router) releasePayload(p *dataPayload) {
	p.Pkt = pubsub.Packet{}
	r.freePayload = append(r.freePayload, p)
}

// allocFlight takes a flight from the pool.
func (r *Router) allocFlight() *flight {
	if l := len(r.freeFlight); l > 0 {
		fl := r.freeFlight[l-1]
		r.freeFlight[l-1] = nil
		r.freeFlight = r.freeFlight[:l-1]
		return fl
	}
	return &flight{}
}

// releaseFlight recycles the flight struct only; payload and work are
// released separately by the caller (their lifetimes differ across the
// resolve paths).
func (r *Router) releaseFlight(fl *flight) {
	*fl = flight{}
	r.freeFlight = append(r.freeFlight, fl)
}

// Publish injects a freshly published packet at its source broker, which
// becomes responsible for all subscriber destinations of the topic.
func (r *Router) Publish(pkt pubsub.Packet) {
	r.record(trace.Publish, pkt.ID, pkt.Source, -1, r.work.Destinations(pkt.Topic), "")
	ns := r.nodes[pkt.Source]
	w := r.allocWork(ns)
	w.pkt = pkt
	w.upstream = -1
	w.addToPathSet(pkt.Source)
	for _, dest := range r.work.Destinations(pkt.Topic) {
		if dest == pkt.Source {
			r.col.Deliver(pkt.ID, dest, r.net.Sim().Now())
			continue
		}
		w.pending = append(w.pending, dest)
	}
	ns.process(w)
	r.releaseWork(w)
}

// dedupHorizonFactor scales MaxLifetime into the dedup retention horizon.
// Two lifetimes comfortably cover the last possible duplicate delivery
// (transmissions stop at publish+MaxLifetime; one link delay plus one ACK
// timeout later nothing new can arrive), so expiring seen entries beyond it
// can never resurrect a packet.
const dedupHorizonFactor = 2

// nodeState is one broker's Algorithm-2 state: deduplication of received
// frames and the set of sent-but-unacknowledged groups. Per the paper, no
// per-packet routing state survives once the downstream ACK arrives.
//
// The scratch slices are reused by process on every call; process never
// runs re-entrantly (all continuations go through the event loop), so one
// set per node suffices.
type nodeState struct {
	r        *Router
	id       int
	seen     map[uint64]struct{}
	seenQ    []seenRec
	seenHead int
	inflight map[uint64]*flight
	// process scratch
	dests      []int
	exhausted  []int
	groupHops  []int
	groupDests [][]int
}

// seenRec is one dedup entry in FIFO insertion order, used to expire the
// seen set past the dedup horizon.
type seenRec struct {
	id uint64
	at time.Duration
}

// noteSeen inserts a frame into the dedup set and expires entries older
// than dedupHorizonFactor×MaxLifetime, keeping long runs flat in memory.
func (ns *nodeState) noteSeen(id uint64, now time.Duration) {
	horizon := dedupHorizonFactor * ns.r.opts.MaxLifetime
	for ns.seenHead < len(ns.seenQ) && now-ns.seenQ[ns.seenHead].at > horizon {
		delete(ns.seen, ns.seenQ[ns.seenHead].id)
		ns.seenQ[ns.seenHead] = seenRec{}
		ns.seenHead++
	}
	if ns.seenHead > 64 && ns.seenHead*2 >= len(ns.seenQ) {
		n := copy(ns.seenQ, ns.seenQ[ns.seenHead:])
		for i := n; i < len(ns.seenQ); i++ {
			ns.seenQ[i] = seenRec{}
		}
		ns.seenQ = ns.seenQ[:n]
		ns.seenHead = 0
	}
	ns.seen[id] = struct{}{}
	ns.seenQ = append(ns.seenQ, seenRec{id: id, at: now})
}

// work tracks one received copy of a packet at one broker: the destinations
// still unresolved here, the neighbors that already timed out for this copy,
// and the routing path the copy arrived with. Works are pooled and
// reference-counted: every flight and every scheduled re-process event
// holds one reference.
type work struct {
	ns       *nodeState
	pkt      pubsub.Packet
	path     []int    // routing path as received (before appending self)
	pathSet  []uint64 // bitset over broker IDs on path (plus self)
	upstream int      // -1 when this broker is the origin
	pending  []int    // unresolved destinations, sorted at process entry
	failed   []int    // neighbors that timed out for this copy
	refs     int
}

// addToPathSet marks broker b as on this copy's routing path.
func (w *work) addToPathSet(b int) { w.pathSet[b>>6] |= 1 << (uint(b) & 63) }

// onPath reports whether broker b is on this copy's routing path.
func (w *work) onPath(b int) bool { return w.pathSet[b>>6]&(1<<(uint(b)&63)) != 0 }

// hasFailed reports whether neighbor k already timed out for this copy.
func (w *work) hasFailed(k int) bool {
	for _, f := range w.failed {
		if f == k {
			return true
		}
	}
	return false
}

// removePending deletes one destination from the pending slice.
func (w *work) removePending(dest int) {
	for i, d := range w.pending {
		if d == dest {
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			return
		}
	}
}

// flight is one sent group awaiting its hop-by-hop ACK.
type flight struct {
	ns         *nodeState
	frameID    uint64
	to         int
	w          *work
	attempts   int
	timer      des.EventID
	toUpstream bool
	payload    *dataPayload
	timeout    time.Duration
}

// handleFrame dispatches network frames to the ACK or data paths.
func (ns *nodeState) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control && f.Ack != 0 {
		ns.handleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case *dataPayload:
		ns.handleData(f, p)
	default:
		panic(fmt.Sprintf("core: node %d received unknown payload %T", ns.id, f.Payload))
	}
}

// handleAck resolves the in-flight group: the downstream neighbor took
// responsibility for the group's destinations, so this broker aggressively
// forgets them (§III: "each node aggressively deletes a copy of packet once
// it receives an ACK from its downstream neighbor").
func (ns *nodeState) handleAck(frameID uint64) {
	fl, ok := ns.inflight[frameID]
	if !ok {
		return // duplicate or stale ACK
	}
	fl.timer.Cancel()
	delete(ns.inflight, frameID)
	ns.r.record(trace.Handoff, fl.w.pkt.ID, ns.id, fl.to, fl.payload.Dests, "")
	w := fl.w
	ns.r.releasePayload(fl.payload)
	ns.r.releaseFlight(fl)
	ns.r.releaseWork(w)
}

// handleData implements Algorithm 2 lines 1–6: ACK the sender immediately,
// deliver to local subscribers, then start processing the remaining
// destinations.
func (ns *nodeState) handleData(f netsim.Frame, p *dataPayload) {
	// Line 2: send ACK to the sender (hop-by-hop, lossy like any frame).
	_ = ns.r.net.Send(netsim.Frame{
		ID:   ns.r.net.NextFrameID(),
		From: ns.id,
		To:   f.From,
		Kind: netsim.Control,
		Ack:  f.ID,
	})
	if _, dup := ns.seen[f.ID]; dup {
		return // retransmission of an already-processed frame
	}
	now := ns.r.net.Sim().Now()
	ns.noteSeen(f.ID, now)

	w := ns.r.allocWork(ns)
	w.pkt = p.Pkt
	w.path = append(w.path, p.Path...)
	w.upstream = upstreamOf(ns.id, p.Path)
	for _, b := range p.Path {
		w.addToPathSet(b)
	}
	w.addToPathSet(ns.id)
	for _, dest := range p.Dests {
		if dest == ns.id {
			ns.r.col.Deliver(p.Pkt.ID, dest, now)
			ns.r.record(trace.Deliver, p.Pkt.ID, ns.id, f.From, nil, "")
			continue
		}
		w.pending = append(w.pending, dest)
	}
	ns.process(w)
	ns.r.releaseWork(w)
}

// upstreamOf finds the upstream broker of node in a routing path: the entry
// immediately before node's first appearance, or — when node never appears
// (a fresh arrival) — the last sender on the path. Returns -1 when no
// upstream exists (node is the origin).
func upstreamOf(node int, path []int) int {
	for i, b := range path {
		if b == node {
			if i == 0 {
				return -1
			}
			return path[i-1]
		}
	}
	if len(path) == 0 {
		return -1
	}
	return path[len(path)-1]
}

// reprocessWork is the pooled callback for deferred process calls (retry
// after a missing link or a persistency hold): the scheduled event holds
// one work reference, released after processing.
func reprocessWork(a any) {
	w := a.(*work)
	ns := w.ns
	ns.process(w)
	ns.r.releaseWork(w)
}

// process implements Algorithm 2 lines 7–29 event-dependently: every pending
// destination is assigned to the first eligible sending-list neighbor,
// destinations sharing a next hop are grouped into one frame, and
// destinations whose list is exhausted are rerouted to the upstream broker
// (or dropped at the origin).
func (ns *nodeState) process(w *work) {
	now := ns.r.net.Sim().Now()
	slices.Sort(w.pending)
	if now-w.pkt.PublishedAt > ns.r.opts.MaxLifetime {
		for _, dest := range w.pending {
			ns.r.col.Drop(w.pkt.ID, dest)
		}
		ns.r.record(trace.Drop, w.pkt.ID, ns.id, -1, w.pending, "lifetime exceeded")
		w.pending = w.pending[:0]
		return
	}
	// Assign every pending destination to its first eligible neighbor,
	// grouping by next hop; scratch buffers keep this allocation-free.
	dests := append(ns.dests[:0], w.pending...)
	ns.dests = dests
	hops := ns.groupHops[:0]
	exhausted := ns.exhausted[:0]
	for _, dest := range dests {
		k := ns.nextHop(w, dest)
		if k < 0 {
			exhausted = append(exhausted, dest)
			continue
		}
		gi := -1
		for j, h := range hops {
			if h == k {
				gi = j
				break
			}
		}
		if gi < 0 {
			hops = append(hops, k)
			gi = len(hops) - 1
			if len(ns.groupDests) <= gi {
				ns.groupDests = append(ns.groupDests, nil)
			}
			ns.groupDests[gi] = ns.groupDests[gi][:0]
		}
		ns.groupDests[gi] = append(ns.groupDests[gi], dest)
	}
	// Groups fire in ascending next-hop order (the deterministic event
	// ordering contract); insertion sort over the handful of hops.
	for i := 1; i < len(hops); i++ {
		for j := i; j > 0 && hops[j] < hops[j-1]; j-- {
			hops[j], hops[j-1] = hops[j-1], hops[j]
			ns.groupDests[j], ns.groupDests[j-1] = ns.groupDests[j-1], ns.groupDests[j]
		}
	}
	ns.groupHops = hops
	ns.exhausted = exhausted
	for gi := range hops {
		ns.sendGroup(w, hops[gi], ns.groupDests[gi], false)
	}
	if len(exhausted) == 0 {
		return
	}
	if w.upstream < 0 {
		if ns.r.opts.Persistent {
			ns.r.record(trace.Hold, w.pkt.ID, ns.id, -1, exhausted, "persistency: retry next epoch")
			// Persistency mode (§III): hold the packet at the origin and
			// resend once network conditions can have changed, with a
			// clean slate (fresh path and failed set).
			retry := ns.r.allocWork(ns)
			retry.pkt = w.pkt
			retry.upstream = -1
			retry.addToPathSet(ns.id)
			for _, dest := range exhausted {
				w.removePending(dest)
				retry.pending = append(retry.pending, dest)
			}
			wait := ns.r.net.NextEpochBoundary(now) - now
			ns.r.net.Sim().AfterFunc(wait, reprocessWork, retry)
			return
		}
		// The origin exhausted every neighbor: no usable path now.
		for _, dest := range exhausted {
			w.removePending(dest)
			ns.r.col.Drop(w.pkt.ID, dest)
		}
		ns.r.record(trace.Drop, w.pkt.ID, ns.id, -1, exhausted, "origin exhausted sending list")
		return
	}
	ns.r.record(trace.Reroute, w.pkt.ID, ns.id, w.upstream, exhausted, "sending list exhausted")
	ns.sendGroup(w, w.upstream, exhausted, true)
}

// nextHop returns the first sending-list neighbor for dest that is neither
// on the routing path nor already timed out for this copy, or -1.
func (ns *nodeState) nextHop(w *work, dest int) int {
	table, ok := ns.r.tables[w.pkt.Topic][dest]
	if !ok {
		return -1
	}
	for _, k := range table.List(ns.id) {
		if w.onPath(k) || w.hasFailed(k) {
			continue
		}
		return k
	}
	return -1
}

// sendGroup transmits one group to neighbor k (Algorithm 2 lines 13–22):
// the broker appends itself to the routing path, sends a single frame
// covering all destinations whose next hop is k, caches the packet and arms
// an ACK timer scaled to the link's round trip.
func (ns *nodeState) sendGroup(w *work, k int, dests []int, toUpstream bool) {
	for _, dest := range dests {
		w.removePending(dest)
	}
	w.path = append(w.path, ns.id) // line 20: add X to the routing path
	wait, ok := ns.r.net.AckWait(ns.id, k)
	if !ok {
		// The table or path information referenced a non-link; mark the
		// neighbor failed and retry via the event loop rather than crash.
		w.failed = append(w.failed, k)
		w.pending = append(w.pending, dests...)
		ns.r.retainWork(w)
		ns.r.net.Sim().AfterFunc(0, reprocessWork, w)
		return
	}
	payload := ns.r.allocPayload()
	payload.Pkt = w.pkt
	payload.Dests = append(payload.Dests, dests...)
	payload.Path = append(payload.Path, w.path...)
	fl := ns.r.allocFlight()
	fl.ns = ns
	fl.frameID = ns.r.net.NextFrameID()
	fl.to = k
	fl.w = w
	fl.attempts = 0
	fl.toUpstream = toUpstream
	fl.payload = payload
	fl.timeout = wait + ns.r.opts.AckGuard
	ns.inflight[fl.frameID] = fl
	ns.r.retainWork(w)
	ns.transmit(fl)
}

// ackTimeoutFired is the pooled ACK-timer callback.
func ackTimeoutFired(a any) {
	fl := a.(*flight)
	fl.ns.ackTimeout(fl)
}

// transmit performs one transmission attempt and arms the ACK timer.
func (ns *nodeState) transmit(fl *flight) {
	fl.attempts++
	if ns.r.opts.Tracer != nil {
		note := fmt.Sprintf("attempt %d", fl.attempts)
		if fl.toUpstream {
			note += " (upstream)"
		}
		ns.r.record(trace.Send, fl.w.pkt.ID, ns.id, fl.to, fl.payload.Dests, note)
	}
	_ = ns.r.net.Send(netsim.Frame{
		ID:      fl.frameID,
		From:    ns.id,
		To:      fl.to,
		Kind:    netsim.Data,
		Payload: fl.payload,
	})
	fl.timer = ns.r.net.Sim().AfterFunc(fl.timeout, ackTimeoutFired, fl)
}

// ackTimeout fires when no ACK arrived in time: retransmit while attempts
// remain (m per neighbor; unbounded toward the upstream, since the upstream
// is the only remaining route), otherwise declare the neighbor failed for
// this copy and re-process the group's destinations.
func (ns *nodeState) ackTimeout(fl *flight) {
	if _, live := ns.inflight[fl.frameID]; !live {
		return // resolved concurrently
	}
	now := ns.r.net.Sim().Now()
	ns.r.record(trace.Timeout, fl.w.pkt.ID, ns.id, fl.to, fl.payload.Dests, "")
	expired := now-fl.w.pkt.PublishedAt > ns.r.opts.MaxLifetime
	if !expired && (fl.toUpstream || fl.attempts < ns.r.opts.M) {
		ns.transmit(fl)
		return
	}
	delete(ns.inflight, fl.frameID)
	w := fl.w
	if expired {
		for _, dest := range fl.payload.Dests {
			ns.r.col.Drop(w.pkt.ID, dest)
		}
		ns.r.record(trace.Drop, w.pkt.ID, ns.id, fl.to, fl.payload.Dests, "lifetime exceeded")
		ns.r.releasePayload(fl.payload)
		ns.r.releaseFlight(fl)
		ns.r.releaseWork(w)
		return
	}
	if ns.r.opts.Tracer != nil {
		ns.r.record(trace.Failover, w.pkt.ID, ns.id, fl.to, fl.payload.Dests,
			fmt.Sprintf("no ACK after %d transmission(s)", fl.attempts))
	}
	w.failed = append(w.failed, fl.to)
	w.pending = append(w.pending, fl.payload.Dests...)
	ns.r.releasePayload(fl.payload)
	ns.r.releaseFlight(fl)
	ns.process(w)
	ns.r.releaseWork(w)
}

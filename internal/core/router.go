package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo2"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/trace"
)

// RouterOptions tunes the Algorithm-2 forwarding scheme.
type RouterOptions struct {
	// M is the number of transmissions per neighbor before switching to the
	// next sending-list entry (the paper's m; default 1).
	M int
	// AckGuard is added on top of the network's ACK wait (alpha under the
	// paper's instant-control model, 2*alpha otherwise) when arming the
	// ACK timer. Default 1 ms.
	AckGuard time.Duration
	// MaxLifetime bounds how long a packet may stay in flight before the
	// router gives up (covers persistent partitions, which the paper
	// delegates to its out-of-scope persistency mode). Default 30 s.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: when the
	// origin exhausts every neighbor, the packet is held and resent from
	// scratch at the next failure-epoch boundary (when link states can
	// change) instead of being dropped, until MaxLifetime. This provides
	// the delivery guarantee even across windows where no live path
	// exists, at the cost of buffering and late deliveries.
	Persistent bool
	// RebuildWorkers bounds the worker pool Rebuild fans independent
	// (publisher, subscriber) pair builds out over. Values <= 1 build
	// serially — the default, so routers nested under an already-parallel
	// harness (experiment.Run's cell pool) do not oversubscribe the CPUs.
	// Output is deterministic either way: pair builds are pure and results
	// are installed in index order.
	RebuildWorkers int
	// Build tunes the Algorithm-1 table fixpoint.
	Build BuildOptions
	// Tracer, when non-nil, receives a per-packet routing timeline
	// (sends, ACK handoffs, timeouts, failovers, reroutes, deliveries).
	Tracer trace.Recorder
}

// withDefaults fills unset options.
func (o RouterOptions) withDefaults() RouterOptions {
	if o.M < 1 {
		o.M = 1
	}
	if o.AckGuard <= 0 {
		o.AckGuard = time.Millisecond
	}
	if o.MaxLifetime <= 0 {
		o.MaxLifetime = 30 * time.Second
	}
	if o.Build.M == 0 {
		o.Build.M = o.M
	}
	return o
}

// Router drives DCRD's dynamic routing (Algorithm 2) over a simulated
// network. It is the discrete-event shell around the shared forwarding
// engine (internal/algo2): the Algorithm-1 route tables live here, while
// every node's forwarding decisions — hop-by-hop ACKs, m transmissions per
// neighbor, sending-list failover, upstream rerouting — are made by one
// algo2.Engine per node, adapted onto the simulator clock and the netsim
// transport by nodeShell. One Router instance drives every broker node of
// the overlay.
//
// The forwarding hot path stays allocation-free in steady state: the
// engines share one algo2.Pools (a simulation is single-threaded, so the
// pool needs no locking), and all timers go through the simulator's
// closure-free AfterFunc with des.EventID as the engine's timer-handle
// type (no interface boxing).
type Router struct {
	net  *netsim.Network
	work *pubsub.Workload
	col  *metrics.Collector
	opts RouterOptions
	// tables[topic][subscriberNode] is the Algorithm-1 route table for that
	// (publisher, subscriber) pair.
	tables []map[int]*Table
	shells []*nodeShell
	pools  *algo2.Pools[des.EventID]
	// Incremental-rebuild state: estVer is the monitoring-estimate version
	// the current tables were built from, built marks that a first build
	// happened, and changedBuf is the reusable changed-link scratch.
	estVer     uint64
	built      bool
	changedBuf [][2]int
}

// NewRouter builds route tables for every (publisher, subscriber) pair and
// installs frame handlers on every node of the network.
func NewRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	g := net.Graph()
	r := &Router{
		net:    net,
		work:   w,
		col:    col,
		opts:   opts,
		tables: make([]map[int]*Table, len(w.Topics())),
		shells: make([]*nodeShell, g.N()),
		pools:  algo2.NewPools[des.EventID](g.N()),
	}
	r.Rebuild()
	for id := 0; id < g.N(); id++ {
		sh := &nodeShell{r: r, id: id}
		sh.eng = algo2.NewEngine[des.EventID](algo2.Config{
			NodeID:      id,
			M:           opts.M,
			AckGuard:    opts.AckGuard,
			MaxLifetime: opts.MaxLifetime,
			Persistent:  opts.Persistent,
			Tracer:      opts.Tracer,
		}, sh, r.pools)
		r.shells[id] = sh
		r.net.SetHandler(id, sh.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *Router) Name() string { return "DCRD" }

// Rebuild refreshes the Algorithm-1 route tables from the monitoring
// estimates current at the simulator's clock. Call it at every monitoring
// epoch when the network models measurement-based estimates
// (netsim.Config.MonitorSamples > 0); with exact estimates the fixpoint is
// time-invariant and one build at construction suffices.
//
// The refresh is incremental: when the estimate version is unchanged the
// call is a no-op reusing every prior table; otherwise one shared link-stats
// Snapshot is built for the epoch, pairs untouched by any changed link keep
// their tables, and dirty pairs are warm-started from their previous
// fixpoint. The resulting tables are exactly the tables a from-scratch
// build would produce (see RebuildCold, which tests cross-check against).
func (r *Router) Rebuild() {
	now := r.net.Sim().Now()
	ver := r.net.EstimateVersion(now)
	var changed [][2]int
	if r.built {
		if ver == r.estVer {
			return // same estimates, same tables
		}
		r.changedBuf = r.net.AppendChangedEstimates(r.estVer, ver, r.changedBuf[:0])
		r.estVer = ver
		if len(r.changedBuf) == 0 {
			return // new window, identical estimates
		}
		changed = r.changedBuf
	} else {
		r.estVer = ver
	}
	r.rebuild(changed)
	r.built = true
}

// rebuildJob is one dirty (topic, subscriber) pair queued for (re)building.
type rebuildJob struct {
	topic  int
	sub    int
	budget []time.Duration
	prev   *Table
}

// rebuild (re)builds route tables against one shared snapshot of the
// current estimates. A nil changed set means everything is dirty (the
// initial build); otherwise only pairs the changed links can influence are
// rebuilt, warm-started from their previous tables.
func (r *Router) rebuild(changed [][2]int) {
	g := r.net.Graph()
	now := r.net.Sim().Now()
	stats := func(u, v int) (time.Duration, float64, bool) {
		est, ok := r.net.EstimateAt(u, v, now)
		return est.Alpha, est.Gamma, ok
	}
	snap := NewSnapshot(g, stats, r.opts.Build.M)

	var jobs []rebuildJob
	for _, t := range r.work.Topics() {
		if r.tables[t.ID] == nil {
			r.tables[t.ID] = make(map[int]*Table, len(t.Subscribers))
		}
		for _, s := range t.Subscribers {
			prev := r.tables[t.ID][s.Node]
			var budget []time.Duration
			if prev != nil {
				// Budgets depend only on the deadline and the (static)
				// shortest-path tree, so the previous table's copy is
				// authoritative across epochs.
				budget = prev.Budget
				if changed != nil && !pairAffected(budget, s.Node, changed) {
					continue
				}
			} else {
				budget = BudgetsFromTree(r.work.PublisherTree(t.ID), s.Deadline)
			}
			jobs = append(jobs, rebuildJob{topic: t.ID, sub: s.Node, budget: budget, prev: prev})
		}
	}

	results := make([]*Table, len(jobs))
	if r.opts.RebuildWorkers > 1 && len(jobs) > 1 {
		workers := r.opts.RebuildWorkers
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					j := jobs[i]
					results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, r.opts.Build)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, j := range jobs {
			results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, r.opts.Build)
		}
	}
	for i, j := range jobs {
		r.tables[j.topic][j.sub] = results[i]
	}
}

// pairAffected reports whether any changed link can influence the pair's
// Algorithm-1 fixpoint. A changed link (u, v) is relevant in direction
// u→v only when u could ever send (positive residual budget) and v could
// ever be admitted (it is the subscriber, whose parameters are pinned, or
// it has a positive budget — a node with budget <= 0 admits nobody and so
// stays Unreachable regardless of link statistics). This test is sound —
// it never skips a pair whose table could differ — while budgets are
// static per pair, so it costs O(changed links) per pair and no rebuild.
func pairAffected(budget []time.Duration, sub int, changed [][2]int) bool {
	for _, l := range changed {
		u, v := l[0], l[1]
		if budget[u] > 0 && (v == sub || budget[v] > 0) {
			return true
		}
		if budget[v] > 0 && (u == sub || budget[u] > 0) {
			return true
		}
	}
	return false
}

// RebuildCold re-runs Algorithm 1 from scratch for every (publisher,
// subscriber) pair — the pre-incremental reference implementation, kept as
// the correctness oracle: tests and benchmarks cross-check Rebuild's
// incremental tables (and measure its speedup) against this path. Each
// pair pays for its own link-stats snapshot and a cold Jacobi start.
func (r *Router) RebuildCold() {
	g := r.net.Graph()
	now := r.net.Sim().Now()
	stats := func(u, v int) (time.Duration, float64, bool) {
		est, ok := r.net.EstimateAt(u, v, now)
		return est.Alpha, est.Gamma, ok
	}
	for _, t := range r.work.Topics() {
		r.tables[t.ID] = make(map[int]*Table, len(t.Subscribers))
		tree := r.work.PublisherTree(t.ID)
		for _, s := range t.Subscribers {
			budgets := BudgetsFromTree(tree, s.Deadline)
			r.tables[t.ID][s.Node] = BuildTable(g, stats, s.Node, budgets, r.opts.Build)
		}
	}
	r.estVer = r.net.EstimateVersion(now)
	r.built = true
}

// Table exposes the route table for a (topic, subscriber) pair, mainly for
// tests and diagnostics.
func (r *Router) Table(topic, sub int) *Table { return r.tables[topic][sub] }

// Publish injects a freshly published packet at its source broker, which
// becomes responsible for all subscriber destinations of the topic.
func (r *Router) Publish(pkt pubsub.Packet) {
	r.shells[pkt.Source].eng.Publish(algo2.Packet{
		ID:          pkt.ID,
		Topic:       int32(pkt.Topic),
		Source:      int32(pkt.Source),
		PublishedAt: pkt.PublishedAt,
	}, r.work.Destinations(pkt.Topic))
}

// nodeShell adapts one node's forwarding engine onto the simulation: the
// simulator is the engine clock and timer wheel (des.EventID is the timer
// handle — Cancel is synchronous and reliable), netsim is the transport
// (outbound algo2.Frames ride netsim data frames as payloads; hop-by-hop
// ACKs are netsim control frames), the Router's Algorithm-1 tables are the
// sending-list provider, and the metrics collector receives deliveries and
// drops.
type nodeShell struct {
	r   *Router
	id  int
	eng *algo2.Engine[des.EventID]
}

var _ algo2.Deps[des.EventID] = (*nodeShell)(nil)

// handleFrame dispatches network frames to the ACK or data paths. For data
// frames the hop-by-hop ACK (Algorithm 2 line 2) is sent before the engine
// runs — for every received frame, duplicates included, lossy like any
// frame.
func (sh *nodeShell) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control && f.Ack != 0 {
		sh.eng.HandleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case *algo2.Frame:
		_ = sh.r.net.Send(netsim.Frame{
			ID:   sh.r.net.NextFrameID(),
			From: sh.id,
			To:   f.From,
			Kind: netsim.Control,
			Ack:  f.ID,
		})
		sh.eng.HandleData(algo2.Inbound{
			FrameID: f.ID,
			From:    f.From,
			Pkt:     p.Pkt,
			Dests:   p.Dests,
			Path:    p.Path,
		})
	default:
		panic(fmt.Sprintf("core: node %d received unknown payload %T", sh.id, f.Payload))
	}
}

// Now is the simulator clock.
func (sh *nodeShell) Now() time.Duration { return sh.r.net.Sim().Now() }

// AfterFunc schedules on the simulator (closure-free, pooled events).
func (sh *nodeShell) AfterFunc(d time.Duration, fn func(any), arg any) des.EventID {
	return sh.r.net.Sim().AfterFunc(d, fn, arg)
}

// CancelTimer cancels a scheduled event; des guarantees a cancelled event
// never fires (generation-checked handles), satisfying the Deps contract.
func (sh *nodeShell) CancelTimer(t des.EventID) { t.Cancel() }

// NextFrameID allocates a run-unique frame identifier.
func (sh *nodeShell) NextFrameID() uint64 { return sh.r.net.NextFrameID() }

// AckWait asks the network for the link's ACK round trip.
func (sh *nodeShell) AckWait(k int) (time.Duration, bool) {
	return sh.r.net.AckWait(sh.id, k)
}

// Send transmits one data frame; the pooled algo2.Frame itself is the
// netsim payload. The receiver may read it only during its own delivery
// event and only for frames that pass deduplication — both hold by
// construction: the first delivery happens strictly before the ACK that
// releases the frame, and duplicate deliveries land within one ACK round
// trip, far inside the dedup horizon.
func (sh *nodeShell) Send(f *algo2.Frame) {
	_ = sh.r.net.Send(netsim.Frame{
		ID:      f.ID,
		From:    sh.id,
		To:      f.To,
		Kind:    netsim.Data,
		Payload: f,
	})
}

// SendingList looks the Theorem-1 list up in the Algorithm-1 tables.
func (sh *nodeShell) SendingList(topic int32, dest int) []int {
	table, ok := sh.r.tables[topic][dest]
	if !ok {
		return nil
	}
	return table.List(sh.id)
}

// LinkUp always holds in the simulation: dead links surface as ACK
// timeouts, exactly the paper's model.
func (sh *nodeShell) LinkUp(int) bool { return true }

// Deliver hands a local delivery to the collector.
func (sh *nodeShell) Deliver(pkt *algo2.Packet, _ int) {
	sh.r.col.Deliver(pkt.ID, sh.id, sh.r.net.Sim().Now())
}

// Drop records every abandoned destination with the collector.
func (sh *nodeShell) Drop(pkt *algo2.Packet, dests []int, _ algo2.DropReason) {
	for _, dest := range dests {
		sh.r.col.Drop(pkt.ID, dest)
	}
}

// AckTimedOut is a no-op: the simulator's gamma comes from the monitoring
// model, not from ACK outcomes.
func (sh *nodeShell) AckTimedOut(int) {}

// NextRetryAt is the next failure-epoch boundary — the earliest instant
// link states can change (persistency mode).
func (sh *nodeShell) NextRetryAt(now time.Duration) time.Duration {
	return sh.r.net.NextEpochBoundary(now)
}

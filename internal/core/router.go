package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/trace"
)

// RouterOptions tunes the Algorithm-2 forwarding scheme.
type RouterOptions struct {
	// M is the number of transmissions per neighbor before switching to the
	// next sending-list entry (the paper's m; default 1).
	M int
	// AckGuard is added on top of the network's ACK wait (alpha under the
	// paper's instant-control model, 2*alpha otherwise) when arming the
	// ACK timer. Default 1 ms.
	AckGuard time.Duration
	// MaxLifetime bounds how long a packet may stay in flight before the
	// router gives up (covers persistent partitions, which the paper
	// delegates to its out-of-scope persistency mode). Default 30 s.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: when the
	// origin exhausts every neighbor, the packet is held and resent from
	// scratch at the next failure-epoch boundary (when link states can
	// change) instead of being dropped, until MaxLifetime. This provides
	// the delivery guarantee even across windows where no live path
	// exists, at the cost of buffering and late deliveries.
	Persistent bool
	// Build tunes the Algorithm-1 table fixpoint.
	Build BuildOptions
	// Tracer, when non-nil, receives a per-packet routing timeline
	// (sends, ACK handoffs, timeouts, failovers, reroutes, deliveries).
	Tracer trace.Recorder
}

// withDefaults fills unset options.
func (o RouterOptions) withDefaults() RouterOptions {
	if o.M < 1 {
		o.M = 1
	}
	if o.AckGuard <= 0 {
		o.AckGuard = time.Millisecond
	}
	if o.MaxLifetime <= 0 {
		o.MaxLifetime = 30 * time.Second
	}
	if o.Build.M == 0 {
		o.Build.M = o.M
	}
	return o
}

// Router implements DCRD's dynamic routing (Algorithm 2) over a simulated
// network: hop-by-hop ACKs, m transmissions per neighbor, switching to the
// next Theorem-1-ordered neighbor on failure, and rerouting to the upstream
// node when a broker exhausts its sending list. One Router instance drives
// every broker node of the overlay.
type Router struct {
	net  *netsim.Network
	work *pubsub.Workload
	col  *metrics.Collector
	opts RouterOptions
	// tables[topic][subscriberNode] is the Algorithm-1 route table for that
	// (publisher, subscriber) pair.
	tables []map[int]*Table
	nodes  []*nodeState
}

// dataPayload is the body of a DCRD data frame: the packet plus the
// destinations this copy is responsible for and the recorded routing path
// (the broker IDs that have sent this copy, in order, with duplicates when
// a broker sent it more than once — exactly the paper's packet format).
type dataPayload struct {
	Pkt   pubsub.Packet
	Dests []int
	Path  []int
}

// ackPayload acknowledges receipt of one data frame hop-by-hop.
type ackPayload struct {
	FrameID uint64
}

// NewRouter builds route tables for every (publisher, subscriber) pair and
// installs frame handlers on every node of the network.
func NewRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	g := net.Graph()
	r := &Router{
		net:    net,
		work:   w,
		col:    col,
		opts:   opts,
		tables: make([]map[int]*Table, len(w.Topics())),
		nodes:  make([]*nodeState, g.N()),
	}
	r.Rebuild()
	for id := 0; id < g.N(); id++ {
		ns := &nodeState{
			r:        r,
			id:       id,
			seen:     make(map[uint64]bool),
			inflight: make(map[uint64]*flight),
		}
		r.nodes[id] = ns
		r.net.SetHandler(id, ns.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *Router) Name() string { return "DCRD" }

// Rebuild re-runs Algorithm 1 for every (publisher, subscriber) pair from
// the monitoring estimates current at the simulator's clock. Call it at
// every monitoring epoch when the network models measurement-based
// estimates (netsim.Config.MonitorSamples > 0); with exact estimates the
// fixpoint is time-invariant and one build at construction suffices.
func (r *Router) Rebuild() {
	g := r.net.Graph()
	now := r.net.Sim().Now()
	stats := func(u, v int) (time.Duration, float64, bool) {
		est, ok := r.net.EstimateAt(u, v, now)
		return est.Alpha, est.Gamma, ok
	}
	for _, t := range r.work.Topics() {
		r.tables[t.ID] = make(map[int]*Table, len(t.Subscribers))
		tree := r.work.PublisherTree(t.ID)
		for _, s := range t.Subscribers {
			budgets := BudgetsFromTree(tree, s.Deadline)
			r.tables[t.ID][s.Node] = BuildTable(g, stats, s.Node, budgets, r.opts.Build)
		}
	}
}

// Table exposes the route table for a (topic, subscriber) pair, mainly for
// tests and diagnostics.
func (r *Router) Table(topic, sub int) *Table { return r.tables[topic][sub] }

// record emits a trace event when tracing is enabled.
func (r *Router) record(kind trace.Kind, pkt uint64, node, peer int, dests []int, note string) {
	if r.opts.Tracer == nil {
		return
	}
	r.opts.Tracer.Record(trace.Event{
		At:     r.net.Sim().Now(),
		Kind:   kind,
		Packet: pkt,
		Node:   node,
		Peer:   peer,
		Dests:  dests,
		Note:   note,
	})
}

// Publish injects a freshly published packet at its source broker, which
// becomes responsible for all subscriber destinations of the topic.
func (r *Router) Publish(pkt pubsub.Packet) {
	r.record(trace.Publish, pkt.ID, pkt.Source, -1, r.work.Destinations(pkt.Topic), "")
	ns := r.nodes[pkt.Source]
	w := &work{
		pkt:      pkt,
		upstream: -1,
		pending:  make(map[int]bool),
		failed:   make(map[int]bool),
		pathSet:  map[int]bool{pkt.Source: true},
	}
	for _, dest := range r.work.Destinations(pkt.Topic) {
		if dest == pkt.Source {
			r.col.Deliver(pkt.ID, dest, r.net.Sim().Now())
			continue
		}
		w.pending[dest] = true
	}
	ns.process(w)
}

// nodeState is one broker's Algorithm-2 state: deduplication of received
// frames and the set of sent-but-unacknowledged groups. Per the paper, no
// per-packet routing state survives once the downstream ACK arrives.
type nodeState struct {
	r        *Router
	id       int
	seen     map[uint64]bool
	inflight map[uint64]*flight
}

// work tracks one received copy of a packet at one broker: the destinations
// still unresolved here, the neighbors that already timed out for this copy,
// and the routing path the copy arrived with.
type work struct {
	pkt      pubsub.Packet
	path     []int // routing path as received (before appending self)
	pathSet  map[int]bool
	upstream int // -1 when this broker is the origin
	pending  map[int]bool
	failed   map[int]bool
}

// flight is one sent group awaiting its hop-by-hop ACK.
type flight struct {
	frameID    uint64
	to         int
	dests      []int
	w          *work
	attempts   int
	timer      *des.Event
	toUpstream bool
	payload    dataPayload
	timeout    time.Duration
}

// handleFrame dispatches network frames to the ACK or data paths.
func (ns *nodeState) handleFrame(f netsim.Frame) {
	switch p := f.Payload.(type) {
	case ackPayload:
		ns.handleAck(p)
	case dataPayload:
		ns.handleData(f, p)
	default:
		panic(fmt.Sprintf("core: node %d received unknown payload %T", ns.id, f.Payload))
	}
}

// handleAck resolves the in-flight group: the downstream neighbor took
// responsibility for the group's destinations, so this broker aggressively
// forgets them (§III: "each node aggressively deletes a copy of packet once
// it receives an ACK from its downstream neighbor").
func (ns *nodeState) handleAck(p ackPayload) {
	fl, ok := ns.inflight[p.FrameID]
	if !ok {
		return // duplicate or stale ACK
	}
	fl.timer.Cancel()
	delete(ns.inflight, p.FrameID)
	ns.r.record(trace.Handoff, fl.w.pkt.ID, ns.id, fl.to, fl.dests, "")
}

// handleData implements Algorithm 2 lines 1–6: ACK the sender immediately,
// deliver to local subscribers, then start processing the remaining
// destinations.
func (ns *nodeState) handleData(f netsim.Frame, p dataPayload) {
	// Line 2: send ACK to the sender (hop-by-hop, lossy like any frame).
	_ = ns.r.net.Send(netsim.Frame{
		ID:      ns.r.net.NextFrameID(),
		From:    ns.id,
		To:      f.From,
		Kind:    netsim.Control,
		Payload: ackPayload{FrameID: f.ID},
	})
	if ns.seen[f.ID] {
		return // retransmission of an already-processed frame
	}
	ns.seen[f.ID] = true

	w := &work{
		pkt:      p.Pkt,
		path:     append([]int(nil), p.Path...),
		upstream: upstreamOf(ns.id, p.Path),
		pending:  make(map[int]bool),
		failed:   make(map[int]bool),
		pathSet:  make(map[int]bool, len(p.Path)+1),
	}
	for _, b := range p.Path {
		w.pathSet[b] = true
	}
	w.pathSet[ns.id] = true
	now := ns.r.net.Sim().Now()
	for _, dest := range p.Dests {
		if dest == ns.id {
			ns.r.col.Deliver(p.Pkt.ID, dest, now)
			ns.r.record(trace.Deliver, p.Pkt.ID, ns.id, f.From, nil, "")
			continue
		}
		w.pending[dest] = true
	}
	ns.process(w)
}

// upstreamOf finds the upstream broker of node in a routing path: the entry
// immediately before node's first appearance, or — when node never appears
// (a fresh arrival) — the last sender on the path. Returns -1 when no
// upstream exists (node is the origin).
func upstreamOf(node int, path []int) int {
	for i, b := range path {
		if b == node {
			if i == 0 {
				return -1
			}
			return path[i-1]
		}
	}
	if len(path) == 0 {
		return -1
	}
	return path[len(path)-1]
}

// process implements Algorithm 2 lines 7–29 event-dependently: every pending
// destination is assigned to the first eligible sending-list neighbor,
// destinations sharing a next hop are grouped into one frame, and
// destinations whose list is exhausted are rerouted to the upstream broker
// (or dropped at the origin).
func (ns *nodeState) process(w *work) {
	now := ns.r.net.Sim().Now()
	if now-w.pkt.PublishedAt > ns.r.opts.MaxLifetime {
		expired := sortedKeys(w.pending)
		for _, dest := range expired {
			ns.r.col.Drop(w.pkt.ID, dest)
			delete(w.pending, dest)
		}
		ns.r.record(trace.Drop, w.pkt.ID, ns.id, -1, expired, "lifetime exceeded")
		return
	}
	groups := make(map[int][]int)
	var exhausted []int
	for _, dest := range sortedKeys(w.pending) {
		k := ns.nextHop(w, dest)
		if k < 0 {
			exhausted = append(exhausted, dest)
		} else {
			groups[k] = append(groups[k], dest)
		}
	}
	for _, k := range sortedGroupKeys(groups) {
		ns.sendGroup(w, k, groups[k], false)
	}
	if len(exhausted) == 0 {
		return
	}
	if w.upstream < 0 {
		if ns.r.opts.Persistent {
			ns.r.record(trace.Hold, w.pkt.ID, ns.id, -1, exhausted, "persistency: retry next epoch")
			// Persistency mode (§III): hold the packet at the origin and
			// resend once network conditions can have changed, with a
			// clean slate (fresh path and failed set).
			retry := &work{
				pkt:      w.pkt,
				upstream: -1,
				pending:  make(map[int]bool, len(exhausted)),
				failed:   make(map[int]bool),
				pathSet:  map[int]bool{ns.id: true},
			}
			for _, dest := range exhausted {
				delete(w.pending, dest)
				retry.pending[dest] = true
			}
			wait := ns.r.net.NextEpochBoundary(now) - now
			ns.r.net.Sim().After(wait, func() { ns.process(retry) })
			return
		}
		// The origin exhausted every neighbor: no usable path now.
		for _, dest := range exhausted {
			delete(w.pending, dest)
			ns.r.col.Drop(w.pkt.ID, dest)
		}
		ns.r.record(trace.Drop, w.pkt.ID, ns.id, -1, exhausted, "origin exhausted sending list")
		return
	}
	ns.r.record(trace.Reroute, w.pkt.ID, ns.id, w.upstream, exhausted, "sending list exhausted")
	ns.sendGroup(w, w.upstream, exhausted, true)
}

// nextHop returns the first sending-list neighbor for dest that is neither
// on the routing path nor already timed out for this copy, or -1.
func (ns *nodeState) nextHop(w *work, dest int) int {
	table, ok := ns.r.tables[w.pkt.Topic][dest]
	if !ok {
		return -1
	}
	for _, k := range table.List(ns.id) {
		if w.pathSet[k] || w.failed[k] {
			continue
		}
		return k
	}
	return -1
}

// sendGroup transmits one group to neighbor k (Algorithm 2 lines 13–22):
// the broker appends itself to the routing path, sends a single frame
// covering all destinations whose next hop is k, caches the packet and arms
// an ACK timer scaled to the link's round trip.
func (ns *nodeState) sendGroup(w *work, k int, dests []int, toUpstream bool) {
	for _, dest := range dests {
		delete(w.pending, dest)
	}
	w.path = append(w.path, ns.id) // line 20: add X to the routing path
	payload := dataPayload{
		Pkt:   w.pkt,
		Dests: append([]int(nil), dests...),
		Path:  append([]int(nil), w.path...),
	}
	wait, ok := ns.r.net.AckWait(ns.id, k)
	if !ok {
		// The table or path information referenced a non-link; mark the
		// neighbor failed and retry via the event loop rather than crash.
		w.failed[k] = true
		for _, dest := range dests {
			w.pending[dest] = true
		}
		ns.r.net.Sim().After(0, func() { ns.process(w) })
		return
	}
	fl := &flight{
		frameID:    ns.r.net.NextFrameID(),
		to:         k,
		dests:      payload.Dests,
		w:          w,
		toUpstream: toUpstream,
		payload:    payload,
		timeout:    wait + ns.r.opts.AckGuard,
	}
	ns.inflight[fl.frameID] = fl
	ns.transmit(fl)
}

// transmit performs one transmission attempt and arms the ACK timer.
func (ns *nodeState) transmit(fl *flight) {
	fl.attempts++
	note := fmt.Sprintf("attempt %d", fl.attempts)
	if fl.toUpstream {
		note += " (upstream)"
	}
	ns.r.record(trace.Send, fl.w.pkt.ID, ns.id, fl.to, fl.dests, note)
	_ = ns.r.net.Send(netsim.Frame{
		ID:      fl.frameID,
		From:    ns.id,
		To:      fl.to,
		Kind:    netsim.Data,
		Payload: fl.payload,
	})
	fl.timer = ns.r.net.Sim().After(fl.timeout, func() { ns.ackTimeout(fl) })
}

// ackTimeout fires when no ACK arrived in time: retransmit while attempts
// remain (m per neighbor; unbounded toward the upstream, since the upstream
// is the only remaining route), otherwise declare the neighbor failed for
// this copy and re-process the group's destinations.
func (ns *nodeState) ackTimeout(fl *flight) {
	if _, live := ns.inflight[fl.frameID]; !live {
		return // resolved concurrently
	}
	now := ns.r.net.Sim().Now()
	ns.r.record(trace.Timeout, fl.w.pkt.ID, ns.id, fl.to, fl.dests, "")
	expired := now-fl.w.pkt.PublishedAt > ns.r.opts.MaxLifetime
	if !expired && (fl.toUpstream || fl.attempts < ns.r.opts.M) {
		ns.transmit(fl)
		return
	}
	delete(ns.inflight, fl.frameID)
	if expired {
		for _, dest := range fl.dests {
			ns.r.col.Drop(fl.w.pkt.ID, dest)
		}
		ns.r.record(trace.Drop, fl.w.pkt.ID, ns.id, fl.to, fl.dests, "lifetime exceeded")
		return
	}
	ns.r.record(trace.Failover, fl.w.pkt.ID, ns.id, fl.to, fl.dests,
		fmt.Sprintf("no ACK after %d transmission(s)", fl.attempts))
	fl.w.failed[fl.to] = true
	for _, dest := range fl.dests {
		fl.w.pending[dest] = true
	}
	ns.process(fl.w)
}

// sortedKeys returns map keys in ascending order for deterministic
// event scheduling.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortedGroupKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Package core implements DCRD (Delay-Cognizant Reliable Delivery) over
// the discrete-event simulator: it is the simulation shell around the two
// shared, transport-agnostic engines. Algorithm 1 — the recursive <d, r>
// parameters (Eq. 1–3), the Theorem-1 sending-list ordering and the
// incremental route-table rebuild driver — lives in internal/algo1;
// Algorithm 2 — dynamic forwarding with hop-by-hop ACKs, per-neighbor
// failover and upstream rerouting — lives in internal/algo2. Router
// adapts both onto netsim's links, monitoring windows and simulated clock.
package core

import (
	"fmt"
	"time"

	"repro/internal/algo1"
	"repro/internal/algo2"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/trace"
)

// RouterOptions tunes the Algorithm-2 forwarding scheme.
type RouterOptions struct {
	// M is the number of transmissions per neighbor before switching to the
	// next sending-list entry (the paper's m; default 1).
	M int
	// AckGuard is added on top of the network's ACK wait (alpha under the
	// paper's instant-control model, 2*alpha otherwise) when arming the
	// ACK timer. Default 1 ms.
	AckGuard time.Duration
	// MaxLifetime bounds how long a packet may stay in flight before the
	// router gives up (covers persistent partitions, which the paper
	// delegates to its out-of-scope persistency mode). Default 30 s.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: when the
	// origin exhausts every neighbor, the packet is held and resent from
	// scratch at the next failure-epoch boundary (when link states can
	// change) instead of being dropped, until MaxLifetime. This provides
	// the delivery guarantee even across windows where no live path
	// exists, at the cost of buffering and late deliveries.
	Persistent bool
	// RebuildWorkers bounds the worker pool Rebuild fans independent
	// (publisher, subscriber) pair builds out over. Values <= 1 build
	// serially — the default, so routers nested under an already-parallel
	// harness (experiment.Run's cell pool) do not oversubscribe the CPUs.
	// Output is deterministic either way: pair builds are pure and results
	// are installed in index order.
	RebuildWorkers int
	// Build tunes the Algorithm-1 table fixpoint.
	Build algo1.BuildOptions
	// Tracer, when non-nil, receives a per-packet routing timeline
	// (sends, ACK handoffs, timeouts, failovers, reroutes, deliveries).
	Tracer trace.Recorder
}

// withDefaults fills unset options.
func (o RouterOptions) withDefaults() RouterOptions {
	if o.M < 1 {
		o.M = 1
	}
	if o.AckGuard <= 0 {
		o.AckGuard = time.Millisecond
	}
	if o.MaxLifetime <= 0 {
		o.MaxLifetime = 30 * time.Second
	}
	if o.Build.M == 0 {
		o.Build.M = o.M
	}
	return o
}

// Router drives DCRD's dynamic routing (Algorithm 2) over a simulated
// network. It is the discrete-event shell around the shared forwarding
// engine (internal/algo2): the Algorithm-1 route tables live here, while
// every node's forwarding decisions — hop-by-hop ACKs, m transmissions per
// neighbor, sending-list failover, upstream rerouting — are made by one
// algo2.Engine per node, adapted onto the simulator clock and the netsim
// transport by nodeShell. One Router instance drives every broker node of
// the overlay.
//
// The forwarding hot path stays allocation-free in steady state: the
// engines share one algo2.Pools (a simulation is single-threaded, so the
// pool needs no locking), and all timers go through the simulator's
// closure-free AfterFunc with des.EventID as the engine's timer-handle
// type (no interface boxing).
type Router struct {
	net  *netsim.Network
	work *pubsub.Workload
	col  *metrics.Collector
	opts RouterOptions
	// drv owns the Algorithm-1 route tables for every (publisher,
	// subscriber) pair and the incremental-rebuild state; simMonitor feeds
	// it netsim's deterministic monitoring estimates.
	drv    *algo1.Driver
	shells []*nodeShell
	pools  *algo2.Pools[des.EventID]
}

// simMonitor adapts netsim's monitoring model onto algo1.Deps: the
// estimate version and per-window link estimates are read at the
// simulator's current clock (a rebuild runs within one simulator event, so
// the clock — and with it every estimate — is frozen for its duration).
type simMonitor struct {
	net *netsim.Network
}

func (m simMonitor) EstimateVersion() uint64 {
	return m.net.EstimateVersion(m.net.Sim().Now())
}

func (m simMonitor) AppendChangedLinks(from, to uint64, dst [][2]int) [][2]int {
	return m.net.AppendChangedEstimates(from, to, dst)
}

func (m simMonitor) LinkEstimate(u, v int) (time.Duration, float64, bool) {
	est, ok := m.net.EstimateAt(u, v, m.net.Sim().Now())
	return est.Alpha, est.Gamma, ok
}

// NewRouter builds route tables for every (publisher, subscriber) pair and
// installs frame handlers on every node of the network.
func NewRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	g := net.Graph()
	r := &Router{
		net:    net,
		work:   w,
		col:    col,
		opts:   opts,
		drv: algo1.NewDriver(g, simMonitor{net: net}, algo1.DriverOptions{
			Build:   opts.Build,
			Workers: opts.RebuildWorkers,
		}),
		shells: make([]*nodeShell, g.N()),
		pools:  algo2.NewPools[des.EventID](g.N()),
	}
	// Register every (topic, subscriber) pair up front, in workload order.
	// Budgets depend only on the deadline and the (static) shortest-path
	// tree, so one registration is authoritative across epochs.
	for _, t := range w.Topics() {
		tree := w.PublisherTree(t.ID)
		for _, s := range t.Subscribers {
			r.drv.SetPair(algo1.PairKey{Topic: int32(t.ID), Sub: int32(s.Node)},
				s.Node, algo1.BudgetsFromTree(tree, s.Deadline))
		}
	}
	r.Rebuild()
	for id := 0; id < g.N(); id++ {
		sh := &nodeShell{r: r, id: id}
		sh.eng = algo2.NewEngine[des.EventID](algo2.Config{
			NodeID:      id,
			M:           opts.M,
			AckGuard:    opts.AckGuard,
			MaxLifetime: opts.MaxLifetime,
			Persistent:  opts.Persistent,
			Tracer:      opts.Tracer,
		}, sh, r.pools)
		r.shells[id] = sh
		r.net.SetHandler(id, sh.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *Router) Name() string { return "DCRD" }

// Rebuild refreshes the Algorithm-1 route tables from the monitoring
// estimates current at the simulator's clock. Call it at every monitoring
// epoch when the network models measurement-based estimates
// (netsim.Config.MonitorSamples > 0); with exact estimates the fixpoint is
// time-invariant and one build at construction suffices.
//
// The refresh is incremental: when the estimate version is unchanged the
// call is a no-op reusing every prior table; otherwise one shared link-stats
// Snapshot is built for the epoch, pairs untouched by any changed link keep
// their tables, and dirty pairs are warm-started from their previous
// fixpoint. The resulting tables are exactly the tables a from-scratch
// build would produce (see RebuildCold, which tests cross-check against).
func (r *Router) Rebuild() { r.drv.Rebuild() }

// RebuildCold re-runs Algorithm 1 from scratch for every (publisher,
// subscriber) pair — the pre-incremental reference implementation, kept as
// the correctness oracle: tests and benchmarks cross-check Rebuild's
// incremental tables (and measure its speedup) against this path.
func (r *Router) RebuildCold() { r.drv.RebuildCold() }

// Table exposes the route table for a (topic, subscriber) pair, mainly for
// tests and diagnostics.
func (r *Router) Table(topic, sub int) *algo1.Table {
	return r.drv.Table(algo1.PairKey{Topic: int32(topic), Sub: int32(sub)})
}

// Publish injects a freshly published packet at its source broker, which
// becomes responsible for all subscriber destinations of the topic.
func (r *Router) Publish(pkt pubsub.Packet) {
	r.shells[pkt.Source].eng.Publish(algo2.Packet{
		ID:          pkt.ID,
		Topic:       int32(pkt.Topic),
		Source:      int32(pkt.Source),
		PublishedAt: pkt.PublishedAt,
	}, r.work.Destinations(pkt.Topic))
}

// nodeShell adapts one node's forwarding engine onto the simulation: the
// simulator is the engine clock and timer wheel (des.EventID is the timer
// handle — Cancel is synchronous and reliable), netsim is the transport
// (outbound algo2.Frames ride netsim data frames as payloads; hop-by-hop
// ACKs are netsim control frames), the Router's Algorithm-1 tables are the
// sending-list provider, and the metrics collector receives deliveries and
// drops.
type nodeShell struct {
	r   *Router
	id  int
	eng *algo2.Engine[des.EventID]
}

var _ algo2.Deps[des.EventID] = (*nodeShell)(nil)

// handleFrame dispatches network frames to the ACK or data paths. For data
// frames the hop-by-hop ACK (Algorithm 2 line 2) is sent before the engine
// runs — for every received frame, duplicates included, lossy like any
// frame.
func (sh *nodeShell) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control && f.Ack != 0 {
		sh.eng.HandleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case *algo2.Frame:
		_ = sh.r.net.Send(netsim.Frame{
			ID:   sh.r.net.NextFrameID(),
			From: sh.id,
			To:   f.From,
			Kind: netsim.Control,
			Ack:  f.ID,
		})
		sh.eng.HandleData(algo2.Inbound{
			FrameID: f.ID,
			From:    f.From,
			Pkt:     p.Pkt,
			Dests:   p.Dests,
			Path:    p.Path,
		})
	default:
		panic(fmt.Sprintf("core: node %d received unknown payload %T", sh.id, f.Payload))
	}
}

// Now is the simulator clock.
func (sh *nodeShell) Now() time.Duration { return sh.r.net.Sim().Now() }

// AfterFunc schedules on the simulator (closure-free, pooled events).
func (sh *nodeShell) AfterFunc(d time.Duration, fn func(any), arg any) des.EventID {
	return sh.r.net.Sim().AfterFunc(d, fn, arg)
}

// CancelTimer cancels a scheduled event; des guarantees a cancelled event
// never fires (generation-checked handles), satisfying the Deps contract.
func (sh *nodeShell) CancelTimer(t des.EventID) { t.Cancel() }

// NextFrameID allocates a run-unique frame identifier.
func (sh *nodeShell) NextFrameID() uint64 { return sh.r.net.NextFrameID() }

// AckWait asks the network for the link's ACK round trip.
func (sh *nodeShell) AckWait(k int) (time.Duration, bool) {
	return sh.r.net.AckWait(sh.id, k)
}

// Send transmits one data frame; the pooled algo2.Frame itself is the
// netsim payload. The receiver may read it only during its own delivery
// event and only for frames that pass deduplication — both hold by
// construction: the first delivery happens strictly before the ACK that
// releases the frame, and duplicate deliveries land within one ACK round
// trip, far inside the dedup horizon.
func (sh *nodeShell) Send(f *algo2.Frame) {
	_ = sh.r.net.Send(netsim.Frame{
		ID:      f.ID,
		From:    sh.id,
		To:      f.To,
		Kind:    netsim.Data,
		Payload: f,
	})
}

// SendingList looks the Theorem-1 list up in the Algorithm-1 tables.
func (sh *nodeShell) SendingList(topic int32, dest int) []int {
	table := sh.r.drv.Table(algo1.PairKey{Topic: topic, Sub: int32(dest)})
	if table == nil {
		return nil
	}
	return table.List(sh.id)
}

// LinkUp always holds in the simulation: dead links surface as ACK
// timeouts, exactly the paper's model.
func (sh *nodeShell) LinkUp(int) bool { return true }

// Deliver hands a local delivery to the collector.
func (sh *nodeShell) Deliver(pkt *algo2.Packet, _ int) {
	sh.r.col.Deliver(pkt.ID, sh.id, sh.r.net.Sim().Now())
}

// Drop records every abandoned destination with the collector.
func (sh *nodeShell) Drop(pkt *algo2.Packet, dests []int, _ algo2.DropReason) {
	for _, dest := range dests {
		sh.r.col.Drop(pkt.ID, dest)
	}
}

// AckTimedOut is a no-op: the simulator's gamma comes from the monitoring
// model, not from ACK outcomes.
func (sh *nodeShell) AckTimedOut(int) {}

// NextRetryAt is the next failure-epoch boundary — the earliest instant
// link states can change (persistency mode).
func (sh *nodeShell) NextRetryAt(now time.Duration) time.Duration {
	return sh.r.net.NextEpochBoundary(now)
}

package core

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// testEnv bundles one simulated DCRD deployment.
type testEnv struct {
	sim *des.Simulator
	net *netsim.Network
	w   *pubsub.Workload
	col *metrics.Collector
	r   *Router
}

// newEnv wires a Router over g with one topic (publisher pub, subscribers
// subs) and the given network conditions.
func newEnv(t *testing.T, g *topology.Graph, cfg netsim.Config, pub int, subs []int, opts RouterOptions) *testEnv {
	t.Helper()
	sim := des.New(1)
	net, err := netsim.New(sim, g, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	var subscriptions []pubsub.Subscription
	for _, s := range subs {
		subscriptions = append(subscriptions, pubsub.Subscription{Node: s})
	}
	w, err := pubsub.NewStatic(g, pubsub.DefaultConfig(), []pubsub.Topic{
		{Publisher: pub, Subscribers: subscriptions},
	})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	r, err := NewRouter(net, w, col, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{sim: sim, net: net, w: w, col: col, r: r}
}

// publish publishes one packet on topic 0 and registers it with the collector.
func (e *testEnv) publish(id uint64) pubsub.Packet {
	pkt := pubsub.Packet{
		ID:          id,
		Topic:       0,
		Source:      e.w.Topic(0).Publisher,
		PublishedAt: e.sim.Now(),
	}
	e.col.Publish(&pkt, e.w.Topic(0).Subscribers)
	e.r.Publish(pkt)
	return pkt
}

func (e *testEnv) result() metrics.Result {
	return e.col.Result(e.net.Stats().DataTransmissions)
}

func cleanConfig() netsim.Config {
	return netsim.Config{FailureEpoch: time.Second, MonitorInterval: 5 * time.Minute}
}

func TestRouterDeliversOnLine(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond, 20*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{2}, RouterOptions{})
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 || res.OnTime != 1 {
		t.Fatalf("result = %+v, want 1 delivered on time", res)
	}
	if len(res.Latencies) != 1 || res.Latencies[0] != 30*time.Millisecond {
		t.Errorf("latency = %v, want 30ms (pure propagation)", res.Latencies)
	}
	// Two data hops (0->1, 1->2) and two ACKs.
	st := env.net.Stats()
	if st.DataTransmissions != 2 {
		t.Errorf("data transmissions = %d, want 2", st.DataTransmissions)
	}
	if st.ControlTransmissions != 2 {
		t.Errorf("control transmissions = %d, want 2", st.ControlTransmissions)
	}
}

func TestRouterGroupsSharedNextHop(t *testing.T) {
	// Star: 0-1, 1-2, 1-3. One packet to subscribers {2,3} must cross 0->1
	// once, then fan out: 3 data frames total, not 4.
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{{0, 1, 10 * time.Millisecond}, {1, 2, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond}} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	env := newEnv(t, g, cleanConfig(), 0, []int{2, 3}, RouterOptions{})
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 2 || res.OnTime != 2 {
		t.Fatalf("result = %+v, want both delivered on time", res)
	}
	if st := env.net.Stats(); st.DataTransmissions != 3 {
		t.Errorf("data transmissions = %d, want 3 (grouped first hop)", st.DataTransmissions)
	}
}

func TestRouterFailsOverToSecondNeighbor(t *testing.T) {
	// Diamond: 0-1-3 is fastest, 0-2-3 is backup. Kill link 0-1; DCRD must
	// time out once on neighbor 1 and deliver via 2.
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	env := newEnv(t, g, cleanConfig(), 0, []int{3}, RouterOptions{})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("packet not delivered around the failed link: %+v", res)
	}
	// Latency = ACK timeout on 0->1 (2*10ms + guard) + 40ms detour.
	wantMin := 40 * time.Millisecond
	if res.Latencies[0] <= wantMin {
		t.Errorf("latency %v too small to have included a failover", res.Latencies[0])
	}
}

func TestRouterRetransmitsWithinM(t *testing.T) {
	// m=2: the first transmission is lost (forced-down link restored right
	// after), the retransmission succeeds on the same neighbor.
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{M: 2})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	// Restore after the first transmission left (at t=0) but before the
	// retransmission (at ~21ms).
	env.sim.At(5*time.Millisecond, func() {
		if err := env.net.Restore(0, 1); err != nil {
			t.Fatal(err)
		}
	})
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("retransmission did not deliver: %+v", res)
	}
	if st := env.net.Stats(); st.DataTransmissions != 2 {
		t.Errorf("data transmissions = %d, want 2 (original + retransmit)", st.DataTransmissions)
	}
}

func TestRouterReroutesViaUpstream(t *testing.T) {
	// 0-1-2 is the cheap route; 0-4-2 the expensive one. Kill 1-2: node 1
	// exhausts its list (only 0 and 2 are neighbors; 0 is on the path) and
	// must bounce the packet back to 0, which delivers via 4.
	g := topology.NewGraph(5)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 2, 10 * time.Millisecond},
		{0, 4, 30 * time.Millisecond}, {4, 2, 30 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	env := newEnv(t, g, cleanConfig(), 0, []int{2}, RouterOptions{})
	if err := env.net.ForceDown(1, 2); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("upstream reroute failed to deliver: %+v", res)
	}
	// The packet must have visited node 1 and come back: more than the
	// 4 data transmissions of the direct detour.
	if st := env.net.Stats(); st.DataTransmissions < 4 {
		t.Errorf("data transmissions = %d, expected at least 4 (0->1, 1->?, 1->0, 0->4, 4->2)",
			st.DataTransmissions)
	}
}

func TestRouterDropsWhenPartitioned(t *testing.T) {
	// Single link to the subscriber, permanently down: the publisher
	// exhausts its list and gives up; the run must terminate.
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{M: 2, MaxLifetime: 2 * time.Second})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 0 {
		t.Fatalf("delivered across a dead link: %+v", res)
	}
	if res.Drops == 0 {
		t.Error("expected an explicit drop record")
	}
}

func TestRouterDuplicateFrameIgnored(t *testing.T) {
	// Lost ACKs cause retransmissions of already-received frames; the
	// receiver must re-ACK but not re-forward. Simulate by publishing the
	// same frame path: set loss to 100% for control frames is not possible
	// directly, so approximate by checking the seen-set behavior through a
	// clean double publish of distinct packets instead, then assert dedup
	// on the collector side via identical IDs.
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{})
	pkt := env.publish(7)
	env.sim.Run()
	// Re-inject the very same packet (same ID): collector must not double
	// count, and the run must stay finite.
	env.r.Publish(pkt)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("duplicate packet inflated deliveries: %+v", res)
	}
}

func TestRouterMeshDeliversEverythingUnderFailures(t *testing.T) {
	rng := des.New(3).Rand()
	g, err := topology.FullMesh(10, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Config{
		LossRate:        1e-4,
		FailureProb:     0.1,
		FailureEpoch:    time.Second,
		MonitorInterval: 5 * time.Minute,
	}
	env := newEnv(t, g, cfg, 0, []int{3, 5, 7, 9}, RouterOptions{})
	const packets = 200
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		id := uint64(i + 1)
		env.sim.At(at, func() { env.publish(id) })
	}
	env.sim.Run()
	res := env.result()
	if ratio := res.DeliveryRatio(); ratio < 0.99 {
		t.Errorf("delivery ratio %v under Pf=0.1 on a mesh, want >= 0.99", ratio)
	}
	// The paper reports ~96.7% QoS delivery on a mesh at Pf=0.1 (Fig. 2b).
	if qos := res.QoSDeliveryRatio(); qos < 0.9 {
		t.Errorf("QoS ratio %v, want >= 0.9", qos)
	}
}

func TestRouterDeterministicAcrossRuns(t *testing.T) {
	run := func() metrics.Result {
		rng := des.New(11).Rand()
		g, err := topology.FullMesh(8, topology.DefaultDelayRange(), rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := netsim.Config{
			LossRate:        0.01,
			FailureProb:     0.1,
			FailureEpoch:    time.Second,
			MonitorInterval: 5 * time.Minute,
		}
		env := newEnv(t, g, cfg, 0, []int{2, 4, 6}, RouterOptions{})
		for i := 0; i < 50; i++ {
			at := time.Duration(i) * 50 * time.Millisecond
			id := uint64(i + 1)
			env.sim.At(at, func() { env.publish(id) })
		}
		env.sim.Run()
		return env.result()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.OnTime != b.OnTime ||
		a.DataTransmissions != b.DataTransmissions {
		t.Errorf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestRouterOptionsDefaults(t *testing.T) {
	o := RouterOptions{}.withDefaults()
	if o.M != 1 || o.AckGuard != time.Millisecond || o.MaxLifetime != 30*time.Second {
		t.Errorf("defaults = %+v", o)
	}
	o = RouterOptions{M: 3}.withDefaults()
	if o.Build.M != 3 {
		t.Errorf("Build.M should inherit M, got %d", o.Build.M)
	}
}

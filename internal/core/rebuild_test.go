package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// tablesEqual compares everything a table exposes to forwarding: the
// <d, r> parameters, the ordered sending lists and the budgets. Rounds is
// diagnostics (warm starts converge faster by design) and is excluded.
func tablesEqual(a, b *Table) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Subscriber != b.Subscriber || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] || a.Budget[i] != b.Budget[i] {
			return false
		}
		if len(a.Lists[i]) != len(b.Lists[i]) {
			return false
		}
		for j := range a.Lists[i] {
			if a.Lists[i][j] != b.Lists[i][j] {
				return false
			}
		}
	}
	return true
}

// TestWarmStartEqualsColdBuildProperty is the tentpole's correctness pin:
// for random topologies, random link statistics and random per-epoch
// perturbations (links degrading, recovering, dying and resurrecting), a
// warm-started BuildTableIncremental must produce exactly the table a cold
// build produces — params, lists and budgets bit-for-bit.
func TestWarmStartEqualsColdBuildProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x7eb))
		n := 10 + int(seed%8) // 10..17 nodes
		degree := 3 + int(seed%3)
		if n*degree%2 != 0 {
			degree--
		}
		g, err := topology.RandomRegular(n, degree, topology.DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		// Per-directed-link gamma, evolved across epochs; alpha stays the
		// propagation delay (monitoring measures it exactly).
		gamma := make([]float64, n*n)
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				gamma[u*n+e.To] = 0.5 + rng.Float64()*0.5
			}
		}
		stats := func(u, v int) (time.Duration, float64, bool) {
			d, ok := g.LinkDelay(u, v)
			if !ok {
				return 0, 0, false
			}
			return d, gamma[u*n+v], true
		}
		sub := int(seed>>8) % n
		tree := topology.Dijkstra(g, 0, nil)
		budget := BudgetsFromTree(tree, 3*tree.Dist[sub]+10*time.Millisecond)
		opts := BuildOptions{M: 1 + int(seed>>16)%2}

		prev := BuildTable(g, stats, sub, budget, opts)
		for epoch := 0; epoch < 6; epoch++ {
			// Perturb ~30% of links; occasionally kill or resurrect one —
			// the hard case for incremental rebuilds, because a dead link
			// coming back can newly enter sending lists it never appeared in.
			for u := 0; u < n; u++ {
				for _, e := range g.Neighbors(u) {
					switch {
					case rng.Float64() < 0.05:
						gamma[u*n+e.To] = 0
					case rng.Float64() < 0.30:
						gamma[u*n+e.To] = 0.4 + rng.Float64()*0.6
					}
				}
			}
			cold := BuildTable(g, stats, sub, budget, opts)
			warm := BuildTableIncremental(g, NewSnapshot(g, stats, opts.M), sub, budget, prev, opts)
			if !tablesEqual(cold, warm) {
				t.Logf("seed %d epoch %d: warm table diverged from cold", seed, epoch)
				return false
			}
			prev = warm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// newRebuildEnv wires a full multi-topic DCRD deployment over a random
// 16-node overlay with measurement-based monitoring. Construction is a pure
// function of the seed, so two calls with equal seeds yield identical
// networks, workloads and routers — the basis for the incremental-vs-cold
// cross-checks below.
func newRebuildEnv(t *testing.T, seed uint64, samples int, opts RouterOptions) (*des.Simulator, *netsim.Network, *Router) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	g, err := topology.RandomRegular(16, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pubsub.Generate(g, pubsub.Config{
		Topics:          5,
		PublishInterval: time.Second,
		SubProbMin:      0.2,
		SubProbMax:      0.5,
		DeadlineFactor:  3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New(seed)
	net, err := netsim.New(sim, g, netsim.Config{
		LossRate:        0.01,
		FailureProb:     0.1,
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		MonitorSamples:  samples,
	}, seed^0xfa17)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(net, w, metrics.NewCollector(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, r
}

// snapshotTables records the router's current table pointers.
func snapshotTables(r *Router) []map[int]*Table {
	out := make([]map[int]*Table, len(r.tables))
	for i, m := range r.tables {
		cp := make(map[int]*Table, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[i] = cp
	}
	return out
}

// TestRebuildUnchangedEstimatesIsNoOp pins the fast path: while the
// monitoring estimates have not changed, Rebuild must reuse every prior
// table object (pointer identity, not just equal contents).
func TestRebuildUnchangedEstimatesIsNoOp(t *testing.T) {
	sim, _, r := newRebuildEnv(t, 7, 20, RouterOptions{})
	before := snapshotTables(r)

	// Same monitoring window: the estimate version is unchanged.
	sim.RunUntil(30 * time.Second)
	r.Rebuild()
	after := snapshotTables(r)
	for topic := range before {
		for sub, tab := range before[topic] {
			if after[topic][sub] != tab {
				t.Fatalf("topic %d sub %d: table replaced within one monitoring window", topic, sub)
			}
		}
	}
}

// TestRebuildExactEstimatesIsNoOp covers the MonitorSamples = 0 regime:
// estimates are exact and time-invariant, so every post-construction
// Rebuild — at any simulated time — must be a no-op.
func TestRebuildExactEstimatesIsNoOp(t *testing.T) {
	sim, _, r := newRebuildEnv(t, 11, 0, RouterOptions{})
	before := snapshotTables(r)
	for _, at := range []time.Duration{time.Minute, time.Hour} {
		sim.RunUntil(at)
		r.Rebuild()
		after := snapshotTables(r)
		for topic := range before {
			for sub, tab := range before[topic] {
				if after[topic][sub] != tab {
					t.Fatalf("topic %d sub %d: table replaced under exact estimates", topic, sub)
				}
			}
		}
	}
}

// TestRebuildMatchesColdAcrossWindows is the end-to-end cross-check: an
// incremental router (snapshot sharing + dirty-pair filter + warm starts)
// stepped through many monitoring windows must hold exactly the tables a
// from-scratch rebuild produces at every window.
func TestRebuildMatchesColdAcrossWindows(t *testing.T) {
	const seed, samples = 3, 10 // few samples => noisy, frequently-changing estimates
	simInc, _, inc := newRebuildEnv(t, seed, samples, RouterOptions{})
	simCold, _, cold := newRebuildEnv(t, seed, samples, RouterOptions{})

	for w := 1; w <= 12; w++ {
		at := time.Duration(w) * time.Minute
		simInc.RunUntil(at)
		simCold.RunUntil(at)
		inc.Rebuild()
		cold.RebuildCold()
		for topic := range cold.tables {
			for sub, want := range cold.tables[topic] {
				if got := inc.tables[topic][sub]; !tablesEqual(got, want) {
					t.Fatalf("window %d topic %d sub %d: incremental table diverged from cold rebuild", w, topic, sub)
				}
			}
		}
	}
}

// TestRebuildParallelMatchesSerial pins determinism of the worker-pool
// path: RebuildWorkers > 1 must produce exactly the serial tables.
func TestRebuildParallelMatchesSerial(t *testing.T) {
	const seed, samples = 5, 10
	simSer, _, serial := newRebuildEnv(t, seed, samples, RouterOptions{})
	simPar, _, par := newRebuildEnv(t, seed, samples, RouterOptions{RebuildWorkers: 4})

	for w := 1; w <= 8; w++ {
		at := time.Duration(w) * time.Minute
		simSer.RunUntil(at)
		simPar.RunUntil(at)
		serial.Rebuild()
		par.Rebuild()
		for topic := range serial.tables {
			for sub, want := range serial.tables[topic] {
				if got := par.tables[topic][sub]; !tablesEqual(got, want) {
					t.Fatalf("window %d topic %d sub %d: parallel table diverged from serial", w, topic, sub)
				}
			}
		}
	}
}

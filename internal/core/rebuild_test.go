package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/algo1"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// newRebuildEnv wires a full multi-topic DCRD deployment over a random
// 16-node overlay with measurement-based monitoring. Construction is a pure
// function of the seed, so two calls with equal seeds yield identical
// networks, workloads and routers — the basis for the incremental-vs-cold
// cross-checks below.
func newRebuildEnv(t *testing.T, seed uint64, samples int, opts RouterOptions) (*des.Simulator, *netsim.Network, *Router) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	g, err := topology.RandomRegular(16, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pubsub.Generate(g, pubsub.Config{
		Topics:          5,
		PublishInterval: time.Second,
		SubProbMin:      0.2,
		SubProbMax:      0.5,
		DeadlineFactor:  3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New(seed)
	net, err := netsim.New(sim, g, netsim.Config{
		LossRate:        0.01,
		FailureProb:     0.1,
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		MonitorSamples:  samples,
	}, seed^0xfa17)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(net, w, metrics.NewCollector(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, r
}

// snapshotTables records the router's current table pointers.
func snapshotTables(r *Router) map[algo1.PairKey]*algo1.Table {
	out := make(map[algo1.PairKey]*algo1.Table)
	r.drv.Pairs(func(key algo1.PairKey, t *algo1.Table) { out[key] = t })
	return out
}

// TestRebuildUnchangedEstimatesIsNoOp pins the fast path: while the
// monitoring estimates have not changed, Rebuild must reuse every prior
// table object (pointer identity, not just equal contents).
func TestRebuildUnchangedEstimatesIsNoOp(t *testing.T) {
	sim, _, r := newRebuildEnv(t, 7, 20, RouterOptions{})
	before := snapshotTables(r)

	// Same monitoring window: the estimate version is unchanged.
	sim.RunUntil(30 * time.Second)
	r.Rebuild()
	after := snapshotTables(r)
	for key, tab := range before {
		if after[key] != tab {
			t.Fatalf("pair %+v: table replaced within one monitoring window", key)
		}
	}
}

// TestRebuildExactEstimatesIsNoOp covers the MonitorSamples = 0 regime:
// estimates are exact and time-invariant, so every post-construction
// Rebuild — at any simulated time — must be a no-op.
func TestRebuildExactEstimatesIsNoOp(t *testing.T) {
	sim, _, r := newRebuildEnv(t, 11, 0, RouterOptions{})
	before := snapshotTables(r)
	for _, at := range []time.Duration{time.Minute, time.Hour} {
		sim.RunUntil(at)
		r.Rebuild()
		after := snapshotTables(r)
		for key, tab := range before {
			if after[key] != tab {
				t.Fatalf("pair %+v: table replaced under exact estimates", key)
			}
		}
	}
}

// TestRebuildMatchesColdAcrossWindows is the end-to-end cross-check: an
// incremental router (snapshot sharing + dirty-pair filter + warm starts)
// stepped through many monitoring windows must hold exactly the tables a
// from-scratch rebuild produces at every window.
func TestRebuildMatchesColdAcrossWindows(t *testing.T) {
	const seed, samples = 3, 10 // few samples => noisy, frequently-changing estimates
	simInc, _, inc := newRebuildEnv(t, seed, samples, RouterOptions{})
	simCold, _, cold := newRebuildEnv(t, seed, samples, RouterOptions{})

	for w := 1; w <= 12; w++ {
		at := time.Duration(w) * time.Minute
		simInc.RunUntil(at)
		simCold.RunUntil(at)
		inc.Rebuild()
		cold.RebuildCold()
		cold.drv.Pairs(func(key algo1.PairKey, want *algo1.Table) {
			if got := inc.drv.Table(key); !got.Equal(want) {
				t.Fatalf("window %d pair %+v: incremental table diverged from cold rebuild", w, key)
			}
		})
	}
}

// TestRebuildParallelMatchesSerial pins determinism of the worker-pool
// path: RebuildWorkers > 1 must produce exactly the serial tables.
func TestRebuildParallelMatchesSerial(t *testing.T) {
	const seed, samples = 5, 10
	simSer, _, serial := newRebuildEnv(t, seed, samples, RouterOptions{})
	simPar, _, par := newRebuildEnv(t, seed, samples, RouterOptions{RebuildWorkers: 4})

	for w := 1; w <= 8; w++ {
		at := time.Duration(w) * time.Minute
		simSer.RunUntil(at)
		simPar.RunUntil(at)
		serial.Rebuild()
		par.Rebuild()
		serial.drv.Pairs(func(key algo1.PairKey, want *algo1.Table) {
			if got := par.drv.Table(key); !got.Equal(want) {
				t.Fatalf("window %d pair %+v: parallel table diverged from serial", w, key)
			}
		})
	}
}

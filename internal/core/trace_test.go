package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/trace"
)

func TestRouterEmitsTrace(t *testing.T) {
	// Diamond with the fast link down: the trace must show the publish,
	// the failed send, the timeout+failover, the detour and the delivery.
	g2 := diamond(t)
	buf := &trace.Buffer{}
	env := newEnv(t, g2, cleanConfig(), 0, []int{3}, RouterOptions{Tracer: buf})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.publish(9)
	env.sim.Run()

	events := buf.ForPacket(9)
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := make(map[trace.Kind]int)
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, want := range []trace.Kind{
		trace.Publish, trace.Send, trace.Timeout, trace.Failover, trace.Handoff, trace.Deliver,
	} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %v events (have %v)", want, kinds)
		}
	}
	// The timeline must render without error and mention the failover.
	var sb strings.Builder
	if err := buf.WriteTimeline(&sb, 9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAILOVER") {
		t.Errorf("timeline missing FAILOVER:\n%s", sb.String())
	}
	sum := buf.Summarize()
	if sum.Packets != 1 || sum.Failovers == 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestRouterTracerNilIsSilent(t *testing.T) {
	// Tracing off: nothing records, nothing panics.
	g := diamond(t)
	env := newEnv(t, g, cleanConfig(), 0, []int{3}, RouterOptions{})
	env.publish(1)
	env.sim.Run()
	if res := env.result(); res.Delivered != 1 {
		t.Fatalf("delivery failed: %+v", res)
	}
}

// diamond builds the standard 4-node test overlay: 0-1-3 fast, 0-2-3 slow.
func diamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

package core

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// lineGraph builds a path graph 0-1-...-k with the given per-hop delays.
func lineGraph(t *testing.T, delays ...time.Duration) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(len(delays) + 1)
	for i, d := range delays {
		if err := g.AddLink(i, i+1, d); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPersistentModeRecoversFromTotalOutage(t *testing.T) {
	// Single link 0-1 forced down for 3 s, then restored. Without
	// persistency the origin drops; with it, the packet is held and
	// resent at an epoch boundary after the heal.
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{
		Persistent:  true,
		MaxLifetime: 20 * time.Second,
	})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.sim.At(3*time.Second, func() {
		if err := env.net.Restore(0, 1); err != nil {
			t.Fatal(err)
		}
	})
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("persistent mode did not deliver after heal: %+v", res)
	}
	if res.OnTime != 0 {
		t.Error("a 3s-delayed packet cannot be on time")
	}
	if res.Latencies[0] < 3*time.Second {
		t.Errorf("latency %v < outage duration", res.Latencies[0])
	}
}

func TestPersistentModeStillBoundedByLifetime(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{
		Persistent:  true,
		MaxLifetime: 2 * time.Second,
	})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run() // must terminate despite the permanent outage
	res := env.result()
	if res.Delivered != 0 {
		t.Fatalf("delivered across a permanently dead link: %+v", res)
	}
	if env.sim.Now() > time.Minute {
		t.Errorf("simulation ran to %v; lifetime bound not applied", env.sim.Now())
	}
}

func TestInstantAckShortensFailover(t *testing.T) {
	// Same diamond as TestRouterFailsOverToSecondNeighbor, but with the
	// paper's instant-ACK model: the failover costs only alpha + guard.
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	run := func(instant bool) time.Duration {
		cfg := cleanConfig()
		cfg.InstantControl = instant
		env := newEnv(t, g, cfg, 0, []int{3}, RouterOptions{})
		if err := env.net.ForceDown(0, 1); err != nil {
			t.Fatal(err)
		}
		env.publish(1)
		env.sim.Run()
		res := env.result()
		if res.Delivered != 1 {
			t.Fatalf("instant=%v: not delivered: %+v", instant, res)
		}
		return res.Latencies[0]
	}
	instant := run(true)
	physical := run(false)
	if instant >= physical {
		t.Errorf("instant-ACK failover (%v) not faster than physical (%v)", instant, physical)
	}
	// Instant: 10ms timeout + 1ms guard + 40ms detour = ~51ms.
	want := 51 * time.Millisecond
	if instant != want {
		t.Errorf("instant-ACK latency = %v, want %v", instant, want)
	}
}

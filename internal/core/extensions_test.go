package core

import (
	"testing"
	"time"

	"repro/internal/topology"
)

func TestOrderingPoliciesProduceExpectedLists(t *testing.T) {
	// Node 0 has three routes to subscriber 3 with different (d, r)
	// trade-offs; each ordering policy should rank them differently.
	g := topology.NewGraph(4)
	mustLink := func(u, v int, d time.Duration) {
		t.Helper()
		if err := g.AddLink(u, v, d); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 3, 50*time.Millisecond)
	mustLink(0, 1, 10*time.Millisecond)
	mustLink(1, 3, 10*time.Millisecond)
	mustLink(0, 2, 40*time.Millisecond)
	mustLink(2, 3, 40*time.Millisecond)

	// Per-link gammas: the direct link is very reliable, the cheap two-hop
	// route is flaky, the expensive two-hop route is mid.
	gamma := map[[2]int]float64{
		{0, 3}: 0.999,
		{0, 1}: 0.6, {1, 3}: 0.6,
		{0, 2}: 0.9, {2, 3}: 0.9,
	}
	stats := func(u, v int) (time.Duration, float64, bool) {
		d, ok := g.LinkDelay(u, v)
		if !ok {
			return 0, 0, false
		}
		a, b := topology.Canonical(u, v)
		return d, gamma[[2]int{a, b}], true
	}

	listFor := func(ord Ordering) []int {
		tab := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: ord})
		return tab.Lists[0]
	}

	// Reliability-only: most reliable via first = direct (r ~.999).
	rel := listFor(ReliabilityOrder)
	if len(rel) != 3 || rel[0] != 3 {
		t.Errorf("reliability order = %v, want direct link (3) first", rel)
	}
	// Delay-only: cheapest via d first = via 1 (~20ms+).
	del := listFor(DelayOrder)
	if len(del) != 3 || del[0] != 1 {
		t.Errorf("delay order = %v, want flaky cheap route (1) first", del)
	}
	// Arbitrary: neighbor-ID order.
	arb := listFor(ArbitraryOrder)
	want := []int{1, 2, 3}
	for i := range want {
		if arb[i] != want[i] {
			t.Fatalf("arbitrary order = %v, want %v", arb, want)
		}
	}
	// Ratio order must yield the minimal expected delay of all policies.
	best := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: RatioOrder}).Params[0].D
	for _, ord := range []Ordering{DelayOrder, ReliabilityOrder, ArbitraryOrder} {
		d := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: ord}).Params[0].D
		if d < best {
			t.Errorf("%v expected delay %v beats Theorem-1 %v", ord, d, best)
		}
	}
}

func TestOrderingUnknownString(t *testing.T) {
	if Ordering(42).String() != "Ordering(42)" {
		t.Errorf("got %q", Ordering(42).String())
	}
}

func TestPersistentModeRecoversFromTotalOutage(t *testing.T) {
	// Single link 0-1 forced down for 3 s, then restored. Without
	// persistency the origin drops; with it, the packet is held and
	// resent at an epoch boundary after the heal.
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{
		Persistent:  true,
		MaxLifetime: 20 * time.Second,
	})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.sim.At(3*time.Second, func() {
		if err := env.net.Restore(0, 1); err != nil {
			t.Fatal(err)
		}
	})
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 1 {
		t.Fatalf("persistent mode did not deliver after heal: %+v", res)
	}
	if res.OnTime != 0 {
		t.Error("a 3s-delayed packet cannot be on time")
	}
	if res.Latencies[0] < 3*time.Second {
		t.Errorf("latency %v < outage duration", res.Latencies[0])
	}
}

func TestPersistentModeStillBoundedByLifetime(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond)
	env := newEnv(t, g, cleanConfig(), 0, []int{1}, RouterOptions{
		Persistent:  true,
		MaxLifetime: 2 * time.Second,
	})
	if err := env.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run() // must terminate despite the permanent outage
	res := env.result()
	if res.Delivered != 0 {
		t.Fatalf("delivered across a permanently dead link: %+v", res)
	}
	if env.sim.Now() > time.Minute {
		t.Errorf("simulation ran to %v; lifetime bound not applied", env.sim.Now())
	}
}

func TestInstantAckShortensFailover(t *testing.T) {
	// Same diamond as TestRouterFailsOverToSecondNeighbor, but with the
	// paper's instant-ACK model: the failover costs only alpha + guard.
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	run := func(instant bool) time.Duration {
		cfg := cleanConfig()
		cfg.InstantControl = instant
		env := newEnv(t, g, cfg, 0, []int{3}, RouterOptions{})
		if err := env.net.ForceDown(0, 1); err != nil {
			t.Fatal(err)
		}
		env.publish(1)
		env.sim.Run()
		res := env.result()
		if res.Delivered != 1 {
			t.Fatalf("instant=%v: not delivered: %+v", instant, res)
		}
		return res.Latencies[0]
	}
	instant := run(true)
	physical := run(false)
	if instant >= physical {
		t.Errorf("instant-ACK failover (%v) not faster than physical (%v)", instant, physical)
	}
	// Instant: 10ms timeout + 1ms guard + 40ms detour = ~51ms.
	want := 51 * time.Millisecond
	if instant != want {
		t.Errorf("instant-ACK latency = %v, want %v", instant, want)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/topology"
)

// LinkStatsFunc reports the monitored single-transmission <alpha, gamma>
// estimate for overlay link (u,v). ok is false when no such link exists.
type LinkStatsFunc func(u, v int) (alpha time.Duration, gamma float64, ok bool)

// Table holds, for one (publisher, subscriber) pair, every node's sending
// list (Theorem-1 ordered eligible neighbors) and its <d, r> parameters.
//
// Sending lists are per pair rather than per subscriber because Algorithm 1
// admits a neighbor only when its expected delay fits the node's residual
// delay budget D_XS = D_PS − SP(P, X), which depends on the publisher.
type Table struct {
	Subscriber int
	// Params[x] is node x's <d_x, r_x> from Eq. (3).
	Params []DR
	// Lists[x] is node x's ordered sending list toward the subscriber.
	Lists [][]int
	// Budget[x] is D_XS, the residual delay requirement at node x.
	// Negative budgets mean the node cannot possibly meet the deadline.
	Budget []time.Duration
	// Rounds is how many synchronous recomputation rounds the distributed
	// fixpoint took to stabilize.
	Rounds int
}

// Ordering selects how a node sorts its sending list. RatioOrder is the
// paper's Theorem-1 policy; the others exist for ablation: they answer
// "how much does the proven ordering actually buy?"
type Ordering int

// Sending-list orderings.
const (
	// RatioOrder sorts by d/r ascending — Theorem 1, provably minimizing
	// the expected delay. The default.
	RatioOrder Ordering = iota
	// DelayOrder sorts by the via-delay d ascending, ignoring reliability.
	DelayOrder
	// ReliabilityOrder sorts by the via-delivery-ratio r descending,
	// ignoring delay.
	ReliabilityOrder
	// ArbitraryOrder keeps neighbor-ID order — no intelligence at all.
	ArbitraryOrder
)

// String names the ordering for experiment output.
func (o Ordering) String() string {
	switch o {
	case RatioOrder:
		return "d/r (Theorem 1)"
	case DelayOrder:
		return "delay-only"
	case ReliabilityOrder:
		return "reliability-only"
	case ArbitraryOrder:
		return "arbitrary"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// sortList orders the parallel (via, ids) slices under the policy.
func (o Ordering) sortList(via []DR, ids []int) {
	switch o {
	case DelayOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(p DR) float64 {
			if !p.Reachable() {
				return math.Inf(1)
			}
			return float64(p.D)
		}})
	case ReliabilityOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(p DR) float64 { return -p.R }})
	case ArbitraryOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(DR) float64 { return 0 }})
	default:
		SortByRatio(via, ids)
	}
}

// byKey sorts parallel slices by a scalar key with ID tie-break.
type byKey struct {
	entries []DR
	ids     []int
	key     func(DR) float64
}

func (s byKey) Len() int { return len(s.entries) }

func (s byKey) Less(i, j int) bool {
	ki, kj := s.key(s.entries[i]), s.key(s.entries[j])
	if ki != kj {
		return ki < kj
	}
	return s.ids[i] < s.ids[j]
}

func (s byKey) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// BuildOptions tunes table construction.
type BuildOptions struct {
	// M is the number of transmissions tried per neighbor before declaring
	// failure (the paper's m; default 1).
	M int
	// MaxRounds caps the synchronous fixpoint. Zero means 2*N+10.
	MaxRounds int
	// Tolerance is the convergence threshold on d changes. Zero means 1 µs.
	Tolerance time.Duration
	// Ordering is the sending-list policy (RatioOrder unless overridden
	// for ablation).
	Ordering Ordering
}

// BuildTable runs Algorithm 1 to a fixpoint for one (publisher, subscriber)
// pair: every node receives its neighbors' <d, r> parameters, admits the
// neighbors whose expected delay fits within the node's residual budget,
// orders them by the Theorem-1 d/r ratio, and recomputes its own <d, r> via
// Eq. (3). The paper runs this as an asynchronous distributed protocol; a
// synchronous Jacobi iteration reaches the same fixpoint deterministically.
//
// budget[x] must hold D_XS = D_PS − SP(P, x) (see Workload.PublisherTree);
// the subscriber's own parameters are pinned at <0, 1>.
func BuildTable(g *topology.Graph, stats LinkStatsFunc, sub int, budget []time.Duration, opts BuildOptions) *Table {
	n := g.N()
	if opts.M < 1 {
		opts.M = 1
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 2*n + 10
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = time.Microsecond
	}

	// Precompute per-link m-transmission statistics once, in a dense
	// (from, to) table; missing links stay Unreachable, which the
	// admission filter skips anyway.
	linkDR := make([]DR, n*n)
	for i := range linkDR {
		linkDR[i] = Unreachable()
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			alpha, gamma, ok := stats(u, e.To)
			if !ok {
				continue
			}
			linkDR[u*n+e.To] = LinkStats(alpha, gamma, opts.M)
		}
	}

	t := &Table{
		Subscriber: sub,
		Lists:      make([][]int, n),
		Budget:     append([]time.Duration(nil), budget...),
	}
	// Double-buffered Jacobi iteration: cur holds the previous round's
	// parameters, next receives this round's. Per-node list buffers are
	// sized to the degree once and rewritten in place each round; the
	// final round's contents become the table's sending lists.
	cur := make([]DR, n)
	next := make([]DR, n)
	for x := range cur {
		cur[x] = Unreachable()
	}
	cur[sub] = DR{D: 0, R: 1}
	idsBuf := make([][]int, n)
	viaBuf := make([][]DR, n)
	for x := 0; x < n; x++ {
		if x == sub {
			continue
		}
		idsBuf[x] = make([]int, 0, g.Degree(x))
		viaBuf[x] = make([]DR, 0, g.Degree(x))
	}

	for round := 0; round < opts.MaxRounds; round++ {
		changed := false
		for x := 0; x < n; x++ {
			if x == sub {
				next[x] = DR{D: 0, R: 1}
				continue
			}
			ids, via := admit(g, x, cur, linkDR, n, t.Budget[x], idsBuf[x][:0], viaBuf[x][:0])
			idsBuf[x], viaBuf[x] = ids, via
			opts.Ordering.sortList(via, ids)
			next[x] = Combine(via)
			if diverged(cur[x], next[x], opts.Tolerance) {
				changed = true
			}
		}
		cur, next = next, cur
		t.Rounds = round + 1
		if !changed {
			break
		}
	}
	t.Params = cur
	for x := 0; x < n; x++ {
		if x != sub {
			t.Lists[x] = idsBuf[x]
		}
	}
	return t
}

// admit applies the Algorithm-1 admission filter at node x: a neighbor i
// joins the sending list only if its own expected delay d_i is strictly
// within x's residual budget D_XS and both the link and the neighbor are
// reachable. It appends the admitted neighbor IDs and their Eq.-2 Via
// parameters (unsorted) to the supplied buffers.
func admit(g *topology.Graph, x int, params []DR, linkDR []DR, n int, budget time.Duration, ids []int, via []DR) ([]int, []DR) {
	for _, e := range g.Neighbors(x) {
		p := params[e.To]
		if !p.Reachable() || p.D >= budget {
			continue
		}
		link := linkDR[x*n+e.To]
		if !link.Reachable() {
			continue
		}
		v := Via(link, p)
		if !v.Reachable() {
			continue
		}
		ids = append(ids, e.To)
		via = append(via, v)
	}
	return ids, via
}

// diverged reports whether two parameter estimates differ beyond tolerance.
func diverged(a, b DR, tol time.Duration) bool {
	if a.Reachable() != b.Reachable() {
		return true
	}
	if !a.Reachable() {
		return false
	}
	dd := a.D - b.D
	if dd < 0 {
		dd = -dd
	}
	dr := a.R - b.R
	if dr < 0 {
		dr = -dr
	}
	return dd > tol || dr > 1e-9
}

// List returns node x's sending list. The slice is owned by the table.
func (t *Table) List(x int) []int { return t.Lists[x] }

// BudgetsFromTree derives per-node residual delay budgets
// D_XS = D_PS − SP(P, x) from a shortest-delay tree rooted at the
// publisher. Unreachable nodes get a negative budget (never admitted).
func BudgetsFromTree(tree *topology.ShortestPathTree, deadline time.Duration) []time.Duration {
	budgets := make([]time.Duration, len(tree.Dist))
	for x, d := range tree.Dist {
		if d == topology.Infinite {
			budgets[x] = -1
			continue
		}
		budgets[x] = deadline - d
	}
	return budgets
}

package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// TestRouterTerminationProperty drives the full Algorithm-2 machinery over
// random topologies, random subscriber sets and random failure rates and
// asserts the structural invariants that must hold on every run:
//
//  1. the event loop terminates (loop freedom: the routing-path check plus
//     the lifetime bound leave no livelocks),
//  2. total data transmissions stay within a generous per-packet budget,
//  3. the collector never records more deliveries than expectations, and
//  4. with Pf = 0 and Pl = 0 everything is delivered.
func TestRouterTerminationProperty(t *testing.T) {
	f := func(seed uint64, pfRaw, subsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 8 + int(seed%5) // 8..12 nodes
		degree := 3 + int(seed%3)
		if degree >= n {
			degree = n - 1
		}
		if n*degree%2 != 0 {
			degree--
		}
		g, err := topology.RandomRegular(n, degree, topology.DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		pf := float64(pfRaw%40) / 100 // 0 .. 0.39
		clean := pfRaw%5 == 0
		if clean {
			pf = 0
		}

		sim := des.New(seed)
		cfg := netsim.Config{
			LossRate:        0,
			FailureProb:     pf,
			FailureEpoch:    time.Second,
			MonitorInterval: 5 * time.Minute,
			InstantControl:  true,
		}
		if !clean {
			cfg.LossRate = 0.001
		}
		net, err := netsim.New(sim, g, cfg, seed^0xabc)
		if err != nil {
			return false
		}
		pub := int(seed % uint64(n))
		nsubs := 1 + int(subsRaw)%3
		var subs []pubsub.Subscription
		for s := 0; len(subs) < nsubs && s < n; s++ {
			node := (pub + 1 + s*2) % n
			if node == pub {
				continue
			}
			subs = append(subs, pubsub.Subscription{Node: node})
		}
		w, err := pubsub.NewStatic(g, pubsub.DefaultConfig(), []pubsub.Topic{
			{Publisher: pub, Subscribers: subs},
		})
		if err != nil {
			return false
		}
		col := metrics.NewCollector()
		r, err := NewRouter(net, w, col, RouterOptions{MaxLifetime: 5 * time.Second})
		if err != nil {
			return false
		}

		const packets = 20
		for i := 0; i < packets; i++ {
			at := time.Duration(i) * 100 * time.Millisecond
			id := uint64(i + 1)
			sim.At(at, func() {
				pkt := pubsub.Packet{ID: id, Topic: 0, Source: pub, PublishedAt: sim.Now()}
				col.Publish(&pkt, w.Topic(0).Subscribers)
				r.Publish(pkt)
			})
		}
		sim.RunUntil(time.Minute) // generous; must drain far earlier
		if sim.Pending() != 0 {
			sim.Run() // anything left must still terminate
		}

		res := col.Result(net.Stats().DataTransmissions)
		if res.Delivered > res.Expected {
			return false
		}
		// Budget: each of the packets*nsubs pair-deliveries may touch every
		// node a bounded number of times; 200 transmissions per pair is
		// far beyond anything a correct run produces.
		budget := uint64(packets * nsubs * 200)
		if res.DataTransmissions > budget {
			return false
		}
		if clean && res.DeliveryRatio() != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRouterNoForwardingToPathMembers asserts the loop-avoidance rule
// directly: on a triangle where the only progress requires revisiting a
// path member, the packet must be dropped rather than looped.
func TestRouterNoForwardingToPathMembers(t *testing.T) {
	// Triangle 0-1-2 with subscriber 2; links 1-2 and 0-2 forced down.
	// 0 tries 1; 1 can only reach 2 via 0 (on path) or 2 (down), so it
	// reroutes upstream to 0; 0 has no one left and drops. The run must
	// terminate with zero deliveries and no event-loop explosion.
	g := topology.NewGraph(3)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(l[0], l[1], 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	env := newEnv(t, g, cleanConfig(), 0, []int{2}, RouterOptions{MaxLifetime: 3 * time.Second})
	if err := env.net.ForceDown(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := env.net.ForceDown(0, 2); err != nil {
		t.Fatal(err)
	}
	env.publish(1)
	env.sim.Run()
	res := env.result()
	if res.Delivered != 0 {
		t.Fatalf("delivered across two dead links: %+v", res)
	}
	if res.DataTransmissions > 50 {
		t.Errorf("suspiciously many transmissions (%d) for a dead-end packet", res.DataTransmissions)
	}
}

package baseline

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// oracleData is a data frame of the oracle protocol: packet plus the
// destinations this copy serves.
type oracleData struct {
	Pkt   pubsub.Packet
	Dests []int
}

// OracleRouter is the paper's performance upper bound (§IV-B.3): a routing
// scheme that always uses the shortest-delay path avoiding any failure,
// "since the condition of the entire network is known". It recomputes the
// next hop at every broker from the instantaneous link state (netsim.Alive),
// so the only delay penalties it pays are detour lengths and the rare wait
// when a broker is temporarily cut off; packet losses (Pl) are recovered by
// recomputation after an ACK timeout.
type OracleRouter struct {
	net      *netsim.Network
	w        *pubsub.Workload
	col      *metrics.Collector
	lifetime time.Duration
	nodes    []*oracleNode
}

type oracleNode struct {
	r      *OracleRouter
	id     int
	sender *hopSender
	seen   map[uint64]bool
	gp     grouper
}

// defaultOracleLifetime bounds retries for packets caught in long outages.
const defaultOracleLifetime = 30 * time.Second

// NewOracleRouter installs the oracle protocol on every node. lifetime
// bounds per-packet retrying; 0 means the 30 s default.
func NewOracleRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, lifetime time.Duration) (*OracleRouter, error) {
	if lifetime <= 0 {
		lifetime = defaultOracleLifetime
	}
	g := net.Graph()
	r := &OracleRouter{
		net:      net,
		w:        w,
		col:      col,
		lifetime: lifetime,
		nodes:    make([]*oracleNode, g.N()),
	}
	for id := 0; id < g.N(); id++ {
		on := &oracleNode{
			r:      r,
			id:     id,
			sender: newHopSender(net, id),
			seen:   make(map[uint64]bool),
		}
		r.nodes[id] = on
		net.SetHandler(id, on.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *OracleRouter) Name() string { return "ORACLE" }

// Publish injects a packet at its source broker.
func (r *OracleRouter) Publish(pkt pubsub.Packet) {
	node := r.nodes[pkt.Source]
	local, remote := splitLocal(pkt.Source, r.w.Destinations(pkt.Topic))
	now := r.net.Sim().Now()
	for _, d := range local {
		r.col.Deliver(pkt.ID, d, now)
	}
	node.process(pkt, remote)
}

func (on *oracleNode) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control {
		on.sender.handleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case oracleData:
		sendAck(on.r.net, on.id, f)
		if on.seen[f.ID] {
			return
		}
		on.seen[f.ID] = true
		now := on.r.net.Sim().Now()
		local, remote := splitLocal(on.id, p.Dests)
		for _, d := range local {
			on.r.col.Deliver(p.Pkt.ID, d, now)
		}
		on.process(p.Pkt, remote)
	}
}

// process routes the destinations using a shortest-delay tree over links
// alive right now. Destinations with no alive path wait until the next
// failure-epoch boundary, when conditions change; ACK timeouts (packet loss
// or a failure landing mid-round-trip) re-enter process for a fresh route.
func (on *oracleNode) process(pkt pubsub.Packet, dests []int) {
	if len(dests) == 0 {
		return
	}
	now := on.r.net.Sim().Now()
	if now-pkt.PublishedAt > on.r.lifetime {
		for _, dest := range dests {
			on.r.col.Drop(pkt.ID, dest)
		}
		return
	}
	g := on.r.net.Graph()
	alive := topology.Dijkstra(g, on.id, func(u, v int) bool {
		return on.r.net.Alive(u, v, now)
	})
	on.gp.group(dests, alive.NextHop)
	if len(on.gp.unroutable) > 0 {
		// Temporarily cut off: retry when the failure process redraws.
		wait := on.r.net.NextEpochBoundary(now) - now
		pendingRetry := append([]int(nil), on.gp.unroutable...)
		on.r.net.Sim().After(wait, func() { on.process(pkt, pendingRetry) })
	}
	for gi, nh := range on.gp.hops {
		group := append([]int(nil), on.gp.dests[gi]...)
		payload := oracleData{Pkt: pkt, Dests: group}
		// Budget 1: an ACK timeout means loss or a mid-flight failure; the
		// oracle recomputes the route instead of blindly retransmitting.
		on.sender.send(nh, payload, 1, func() {
			on.process(pkt, group)
		})
	}
}

package baseline

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// env bundles one simulated deployment for a baseline protocol.
type env struct {
	sim *des.Simulator
	net *netsim.Network
	w   *pubsub.Workload
	col *metrics.Collector
}

type protocol interface {
	Name() string
	Publish(pkt pubsub.Packet)
}

func newEnv(t *testing.T, g *topology.Graph, cfg netsim.Config, pub int, subs []int) *env {
	t.Helper()
	sim := des.New(1)
	net, err := netsim.New(sim, g, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	var subscriptions []pubsub.Subscription
	for _, s := range subs {
		subscriptions = append(subscriptions, pubsub.Subscription{Node: s})
	}
	w, err := pubsub.NewStatic(g, pubsub.DefaultConfig(), []pubsub.Topic{
		{Publisher: pub, Subscribers: subscriptions},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{sim: sim, net: net, w: w, col: metrics.NewCollector()}
}

func (e *env) publish(t *testing.T, p protocol, id uint64) {
	t.Helper()
	pkt := pubsub.Packet{ID: id, Topic: 0, Source: e.w.Topic(0).Publisher, PublishedAt: e.sim.Now()}
	e.col.Publish(&pkt, e.w.Topic(0).Subscribers)
	p.Publish(pkt)
}

func (e *env) result() metrics.Result {
	return e.col.Result(e.net.Stats().DataTransmissions)
}

func cleanConfig() netsim.Config {
	return netsim.Config{FailureEpoch: time.Second, MonitorInterval: 5 * time.Minute}
}

// hopDiamond: 0-3 direct (90ms, 1 hop) vs 0-1-2-3 (3 hops, 30ms total).
func hopDiamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 3, 90 * time.Millisecond},
		{0, 1, 10 * time.Millisecond},
		{1, 2, 10 * time.Millisecond},
		{2, 3, 10 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestTreeKindString(t *testing.T) {
	if ReliableTree.String() != "R-Tree" || DelayTree.String() != "D-Tree" {
		t.Error("tree kind names wrong")
	}
}

func TestRTreeUsesFewestHops(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewTreeRouter(e.net, e.w, e.col, ReliableTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("not delivered: %+v", res)
	}
	if res.Latencies[0] != 90*time.Millisecond {
		t.Errorf("latency = %v, want 90ms (direct one-hop link)", res.Latencies[0])
	}
	if st := e.net.Stats(); st.DataTransmissions != 1 {
		t.Errorf("transmissions = %d, want 1", st.DataTransmissions)
	}
}

func TestDTreeUsesShortestDelay(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewTreeRouter(e.net, e.w, e.col, DelayTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("not delivered: %+v", res)
	}
	if res.Latencies[0] != 30*time.Millisecond {
		t.Errorf("latency = %v, want 30ms (3-hop cheap path)", res.Latencies[0])
	}
	if st := e.net.Stats(); st.DataTransmissions != 3 {
		t.Errorf("transmissions = %d, want 3", st.DataTransmissions)
	}
}

func TestTreeDoesNotRerouteOnFailure(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewTreeRouter(e.net, e.w, e.col, DelayTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(1, 2); err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 0 {
		t.Fatalf("D-Tree rerouted around a failure: %+v", res)
	}
	if res.Drops == 0 {
		t.Error("expected a drop record")
	}
}

func TestTreeRetransmitsWithM2(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewTreeRouter(e.net, e.w, e.col, DelayTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(1, 2); err != nil {
		t.Fatal(err)
	}
	// Restore before the retransmission fires.
	e.sim.At(25*time.Millisecond, func() {
		if err := e.net.Restore(1, 2); err != nil {
			t.Fatal(err)
		}
	})
	e.publish(t, r, 1)
	e.sim.Run()
	if res := e.result(); res.Delivered != 1 {
		t.Fatalf("m=2 retransmission did not recover: %+v", res)
	}
}

func TestTreeMulticastsOncePerLink(t *testing.T) {
	// Star: 0-1, then 1-2 and 1-3. Both subscribers share the 0->1 edge.
	g := topology.NewGraph(4)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {1, 3}} {
		if err := g.AddLink(l[0], l[1], 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	e := newEnv(t, g, cleanConfig(), 0, []int{2, 3})
	r, err := NewTreeRouter(e.net, e.w, e.col, DelayTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 2 {
		t.Fatalf("not all delivered: %+v", res)
	}
	if st := e.net.Stats(); st.DataTransmissions != 3 {
		t.Errorf("transmissions = %d, want 3 (shared first hop)", st.DataTransmissions)
	}
}

func TestNewTreeRouterRejectsBadKind(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	if _, err := NewTreeRouter(e.net, e.w, e.col, TreeKind(99), 1); err == nil {
		t.Error("bad tree kind accepted")
	}
}

func TestOracleAvoidsFailedLink(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewOracleRouter(e.net, e.w, e.col, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(1, 2); err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("oracle failed to deliver: %+v", res)
	}
	// It must have taken the direct 90ms link immediately — no timeout.
	if res.Latencies[0] != 90*time.Millisecond {
		t.Errorf("latency = %v, want 90ms (instant detour)", res.Latencies[0])
	}
}

func TestOracleWaitsOutTotalCutoff(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewOracleRouter(e.net, e.w, e.col, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cut node 0 off entirely, restore at 1.5s (mid-epoch); the oracle
	// retries at epoch boundaries, so it delivers after the 2s boundary.
	if err := e.net.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(0, 3); err != nil {
		t.Fatal(err)
	}
	e.sim.At(1500*time.Millisecond, func() {
		if err := e.net.Restore(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.net.Restore(0, 3); err != nil {
			t.Fatal(err)
		}
	})
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("oracle never recovered: %+v", res)
	}
	if res.Latencies[0] < 2*time.Second {
		t.Errorf("latency = %v, expected to wait for the 2s epoch boundary", res.Latencies[0])
	}
}

func TestMultipathSendsTwoCopies(t *testing.T) {
	// Diamond with two fully disjoint routes.
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewMultipathRouter(e.net, e.w, e.col, 1)
	if err != nil {
		t.Fatal(err)
	}
	routes := r.Routes(0, 3)
	if len(routes) != 2 {
		t.Fatalf("routes = %v, want 2", routes)
	}
	if routes[0].SharedLinks(routes[1]) != 0 {
		t.Errorf("second path shares links with the first: %v", routes)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("not delivered: %+v", res)
	}
	// Fast path delivers first: 20ms end to end.
	if res.Latencies[0] != 20*time.Millisecond {
		t.Errorf("latency = %v, want 20ms", res.Latencies[0])
	}
	// Both copies traverse 2 hops each.
	if st := e.net.Stats(); st.DataTransmissions != 4 {
		t.Errorf("transmissions = %d, want 4", st.DataTransmissions)
	}
}

func TestMultipathSurvivesPrimaryPathFailure(t *testing.T) {
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewMultipathRouter(e.net, e.w, e.col, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(1, 3); err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 1 {
		t.Fatalf("backup path did not deliver: %+v", res)
	}
	if res.Latencies[0] != 40*time.Millisecond {
		t.Errorf("latency = %v, want 40ms (backup path)", res.Latencies[0])
	}
}

func TestMultipathBothPathsDownDrops(t *testing.T) {
	g := topology.NewGraph(4)
	for _, l := range []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond}, {1, 3, 10 * time.Millisecond},
		{0, 2, 20 * time.Millisecond}, {2, 3, 20 * time.Millisecond},
	} {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			t.Fatal(err)
		}
	}
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	r, err := NewMultipathRouter(e.net, e.w, e.col, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.net.ForceDown(0, 2); err != nil {
		t.Fatal(err)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	res := e.result()
	if res.Delivered != 0 {
		t.Fatalf("delivered with both paths down: %+v", res)
	}
	if res.Drops == 0 {
		t.Error("expected drop records")
	}
}

func TestMultipathSingleRouteWhenNoAlternative(t *testing.T) {
	// A line has exactly one loopless path.
	g := topology.NewGraph(3)
	for _, l := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.AddLink(l[0], l[1], 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	e := newEnv(t, g, cleanConfig(), 0, []int{2})
	r, err := NewMultipathRouter(e.net, e.w, e.col, 1)
	if err != nil {
		t.Fatal(err)
	}
	if routes := r.Routes(0, 2); len(routes) != 1 {
		t.Errorf("routes = %v, want a single route", routes)
	}
	e.publish(t, r, 1)
	e.sim.Run()
	if res := e.result(); res.Delivered != 1 {
		t.Fatalf("single-route delivery failed: %+v", res)
	}
}

func TestProtocolNames(t *testing.T) {
	g := hopDiamond(t)
	e := newEnv(t, g, cleanConfig(), 0, []int{3})
	rt, err := NewTreeRouter(e.net, e.w, e.col, ReliableTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "R-Tree" {
		t.Errorf("name = %q", rt.Name())
	}
	or, err := NewOracleRouter(e.net, e.w, e.col, 0)
	if err != nil {
		t.Fatal(err)
	}
	if or.Name() != "ORACLE" {
		t.Errorf("name = %q", or.Name())
	}
	mp, err := NewMultipathRouter(e.net, e.w, e.col, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Name() != "Multipath" {
		t.Errorf("name = %q", mp.Name())
	}
}

func TestLeastOverlapping(t *testing.T) {
	p0 := topology.Path{0, 1, 2}
	p1 := topology.Path{0, 1, 3, 2} // shares link 0-1
	p2 := topology.Path{0, 4, 2}    // disjoint
	if got := leastOverlapping([]topology.Path{p0, p1, p2}); !got.Equal(p2) {
		t.Errorf("leastOverlapping picked %v, want %v", got, p2)
	}
	if got := leastOverlapping([]topology.Path{p0}); got != nil {
		t.Errorf("single candidate should yield nil, got %v", got)
	}
	// Tie: earlier (shorter-delay) candidate wins.
	if got := leastOverlapping([]topology.Path{p0, p2, topology.Path{0, 5, 2}}); !got.Equal(p2) {
		t.Errorf("tie-break picked %v, want %v", got, p2)
	}
}

package baseline

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// TreeKind selects which fixed routing tree a TreeRouter uses.
type TreeKind int

// Tree kinds per the paper's §IV-B.
const (
	// ReliableTree (R-Tree) routes over the shortest-hop-count path between
	// each publisher and subscriber, maximizing robustness to per-link
	// failures by minimizing the number of links traversed.
	ReliableTree TreeKind = iota + 1
	// DelayTree (D-Tree) routes over the shortest-delay path.
	DelayTree
)

// String returns the paper's name for the tree kind.
func (k TreeKind) String() string {
	switch k {
	case ReliableTree:
		return "R-Tree"
	case DelayTree:
		return "D-Tree"
	default:
		return fmt.Sprintf("TreeKind(%d)", int(k))
	}
}

// treeData is a tree-routed data frame: the packet plus the destinations
// this copy still serves.
type treeData struct {
	Pkt   pubsub.Packet
	Dests []int
}

// TreeRouter forwards packets along a fixed per-publisher routing tree with
// hop-by-hop ACKs and m transmissions per link. It never reroutes: when a
// link stays failed through all m attempts, the affected subtree's
// destinations are dropped — exactly the weakness the paper attributes to
// tree-based approaches.
type TreeRouter struct {
	net  *netsim.Network
	w    *pubsub.Workload
	col  *metrics.Collector
	kind TreeKind
	m    int
	// next[topic][dest][node] is the successor toward dest (absent = none).
	next  []map[int]map[int]int
	nodes []*treeNode
}

type treeNode struct {
	r      *TreeRouter
	id     int
	sender *hopSender
	seen   map[uint64]bool
	gp     grouper
}

// NewTreeRouter builds the per-topic routing trees and installs handlers on
// every node. m is the per-link transmission budget (>=1).
func NewTreeRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, kind TreeKind, m int) (*TreeRouter, error) {
	if kind != ReliableTree && kind != DelayTree {
		return nil, fmt.Errorf("baseline: unknown tree kind %d", int(kind))
	}
	if m < 1 {
		m = 1
	}
	g := net.Graph()
	r := &TreeRouter{
		net:   net,
		w:     w,
		col:   col,
		kind:  kind,
		m:     m,
		next:  make([]map[int]map[int]int, len(w.Topics())),
		nodes: make([]*treeNode, g.N()),
	}
	for _, t := range w.Topics() {
		var tree *topology.ShortestPathTree
		switch kind {
		case ReliableTree:
			tree = topology.BFS(g, t.Publisher)
		case DelayTree:
			tree = topology.Dijkstra(g, t.Publisher, nil)
		}
		r.next[t.ID] = make(map[int]map[int]int, len(t.Subscribers))
		for _, s := range t.Subscribers {
			path, err := tree.PathTo(s.Node)
			if err != nil {
				return nil, fmt.Errorf("baseline: %v tree for topic %d cannot reach %d: %w",
					kind, t.ID, s.Node, err)
			}
			succ := make(map[int]int, len(path)-1)
			for i := 0; i+1 < len(path); i++ {
				succ[path[i]] = path[i+1]
			}
			r.next[t.ID][s.Node] = succ
		}
	}
	for id := 0; id < g.N(); id++ {
		tn := &treeNode{
			r:      r,
			id:     id,
			sender: newHopSender(net, id),
			seen:   make(map[uint64]bool),
		}
		r.nodes[id] = tn
		net.SetHandler(id, tn.handleFrame)
	}
	return r, nil
}

// Name identifies the approach in experiment output.
func (r *TreeRouter) Name() string { return r.kind.String() }

// Publish injects a packet at its source broker.
func (r *TreeRouter) Publish(pkt pubsub.Packet) {
	node := r.nodes[pkt.Source]
	local, remote := splitLocal(pkt.Source, r.w.Destinations(pkt.Topic))
	now := r.net.Sim().Now()
	for _, d := range local {
		r.col.Deliver(pkt.ID, d, now)
	}
	node.forward(pkt, remote)
}

func (tn *treeNode) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control {
		tn.sender.handleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case treeData:
		sendAck(tn.r.net, tn.id, f)
		if tn.seen[f.ID] {
			return
		}
		tn.seen[f.ID] = true
		now := tn.r.net.Sim().Now()
		local, remote := splitLocal(tn.id, p.Dests)
		for _, d := range local {
			tn.r.col.Deliver(p.Pkt.ID, d, now)
		}
		tn.forward(p.Pkt, remote)
	}
}

// forward groups destinations by tree successor and sends one frame per
// group with the m-transmission budget; exhausted budgets drop the group.
func (tn *treeNode) forward(pkt pubsub.Packet, dests []int) {
	if len(dests) == 0 {
		return
	}
	tn.gp.group(dests, func(dest int) int {
		succ, ok := tn.r.next[pkt.Topic][dest]
		if !ok {
			return -1
		}
		nh, ok := succ[tn.id]
		if !ok {
			return -1
		}
		return nh
	})
	for _, dest := range tn.gp.unroutable {
		tn.r.col.Drop(pkt.ID, dest)
	}
	for gi, nh := range tn.gp.hops {
		payload := treeData{Pkt: pkt, Dests: append([]int(nil), tn.gp.dests[gi]...)}
		tn.sender.send(nh, payload, tn.r.m, func() {
			for _, dest := range payload.Dests {
				tn.r.col.Drop(pkt.ID, dest)
			}
		})
	}
}

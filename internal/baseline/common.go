// Package baseline implements the four comparison approaches of the paper's
// evaluation (§IV-B):
//
//   - R-Tree: a routing tree using the shortest-hop-count path between each
//     publisher and subscriber (most reliable tree).
//   - D-Tree: a routing tree using the shortest-delay path.
//   - ORACLE: the performance upper bound — shortest-delay routing that
//     avoids any link failed at transmission time, since the oracle knows
//     the whole network's instantaneous condition.
//   - Multipath: duplicate copies per subscriber over the shortest-delay
//     path and the least-overlapping of the top-5 shortest-delay paths.
//
// All approaches use hop-by-hop ACKs with m transmissions per link (Fig. 8
// varies m), but none of them — except ORACLE's per-hop recomputation —
// reroutes around failures; that is precisely the gap DCRD fills.
package baseline

import (
	"time"

	"repro/internal/des"
	"repro/internal/netsim"
)

// defaultAckGuard pads the round-trip ACK timeout, mirroring the DCRD
// router's guard.
const defaultAckGuard = time.Millisecond

// hopSender manages one node's unacknowledged transmissions: it sends a
// frame, arms an ACK timer at the link round trip, retransmits up to the
// attempt budget and invokes the failure callback when the budget is spent.
// Flight structs are pooled (one simulation is single-threaded) and timers
// use the simulator's closure-free AfterFunc, mirroring the DCRD router's
// allocation discipline.
type hopSender struct {
	net      *netsim.Network
	node     int
	guard    time.Duration
	inflight map[uint64]*hopFlight
	free     []*hopFlight
}

type hopFlight struct {
	h        *hopSender
	frameID  uint64
	to       int
	payload  any
	attempts int
	budget   int // 0 means unlimited
	timeout  time.Duration
	timer    des.EventID
	onFail   func()
}

func newHopSender(net *netsim.Network, node int) *hopSender {
	return &hopSender{
		net:      net,
		node:     node,
		guard:    defaultAckGuard,
		inflight: make(map[uint64]*hopFlight),
	}
}

// alloc takes a flight from the pool.
func (h *hopSender) alloc() *hopFlight {
	if l := len(h.free); l > 0 {
		fl := h.free[l-1]
		h.free[l-1] = nil
		h.free = h.free[:l-1]
		return fl
	}
	return &hopFlight{}
}

// release recycles a resolved flight.
func (h *hopSender) release(fl *hopFlight) {
	*fl = hopFlight{}
	h.free = append(h.free, fl)
}

// send transmits payload to neighbor to with the given attempt budget
// (0 = retry until cancelled). onFail runs after the last attempt times out.
func (h *hopSender) send(to int, payload any, budget int, onFail func()) {
	wait, ok := h.net.AckWait(h.node, to)
	if !ok {
		if onFail != nil {
			h.net.Sim().After(0, onFail)
		}
		return
	}
	fl := h.alloc()
	fl.h = h
	fl.frameID = h.net.NextFrameID()
	fl.to = to
	fl.payload = payload
	fl.budget = budget
	fl.timeout = wait + h.guard
	fl.onFail = onFail
	h.inflight[fl.frameID] = fl
	h.transmit(fl)
}

// hopTimeoutFired is the pooled ACK-timer callback.
func hopTimeoutFired(a any) {
	fl := a.(*hopFlight)
	fl.h.timeoutFired(fl)
}

func (h *hopSender) transmit(fl *hopFlight) {
	fl.attempts++
	_ = h.net.Send(netsim.Frame{
		ID:      fl.frameID,
		From:    h.node,
		To:      fl.to,
		Kind:    netsim.Data,
		Payload: fl.payload,
	})
	fl.timer = h.net.Sim().AfterFunc(fl.timeout, hopTimeoutFired, fl)
}

func (h *hopSender) timeoutFired(fl *hopFlight) {
	if _, live := h.inflight[fl.frameID]; !live {
		return
	}
	if fl.budget == 0 || fl.attempts < fl.budget {
		h.transmit(fl)
		return
	}
	delete(h.inflight, fl.frameID)
	onFail := fl.onFail
	h.release(fl)
	if onFail != nil {
		onFail()
	}
}

// handleAck resolves a pending flight; duplicate or stale ACKs are ignored.
func (h *hopSender) handleAck(frameID uint64) {
	fl, ok := h.inflight[frameID]
	if !ok {
		return
	}
	fl.timer.Cancel()
	delete(h.inflight, frameID)
	h.release(fl)
}

// sendAck acknowledges receipt of data frame f back to its sender via the
// frame's inline Ack field (no boxed payload).
func sendAck(net *netsim.Network, node int, f netsim.Frame) {
	_ = net.Send(netsim.Frame{
		ID:   net.NextFrameID(),
		From: node,
		To:   f.From,
		Kind: netsim.Control,
		Ack:  f.ID,
	})
}

// grouper buckets destinations by next hop into reusable scratch buffers,
// separating those with no route. Groups come out in ascending next-hop
// order. The buffers are valid until the next call; callers that retain a
// group (e.g. in a frame payload) must copy it.
type grouper struct {
	hops       []int
	dests      [][]int
	unroutable []int
}

func (gp *grouper) group(dests []int, next func(dest int) int) {
	gp.hops = gp.hops[:0]
	gp.unroutable = gp.unroutable[:0]
	for _, dest := range dests {
		nh := next(dest)
		if nh < 0 {
			gp.unroutable = append(gp.unroutable, dest)
			continue
		}
		gi := -1
		for j, h := range gp.hops {
			if h == nh {
				gi = j
				break
			}
		}
		if gi < 0 {
			gp.hops = append(gp.hops, nh)
			gi = len(gp.hops) - 1
			if len(gp.dests) <= gi {
				gp.dests = append(gp.dests, nil)
			}
			gp.dests[gi] = gp.dests[gi][:0]
		}
		gp.dests[gi] = append(gp.dests[gi], dest)
	}
	for i := 1; i < len(gp.hops); i++ {
		for j := i; j > 0 && gp.hops[j] < gp.hops[j-1]; j-- {
			gp.hops[j], gp.hops[j-1] = gp.hops[j-1], gp.hops[j]
			gp.dests[j], gp.dests[j-1] = gp.dests[j-1], gp.dests[j]
		}
	}
}

// localDeliveries splits dests into those hosted at node (delivered
// immediately) and the rest.
func splitLocal(node int, dests []int) (local, remote []int) {
	for _, d := range dests {
		if d == node {
			local = append(local, d)
		} else {
			remote = append(remote, d)
		}
	}
	return local, remote
}

// Package baseline implements the four comparison approaches of the paper's
// evaluation (§IV-B):
//
//   - R-Tree: a routing tree using the shortest-hop-count path between each
//     publisher and subscriber (most reliable tree).
//   - D-Tree: a routing tree using the shortest-delay path.
//   - ORACLE: the performance upper bound — shortest-delay routing that
//     avoids any link failed at transmission time, since the oracle knows
//     the whole network's instantaneous condition.
//   - Multipath: duplicate copies per subscriber over the shortest-delay
//     path and the least-overlapping of the top-5 shortest-delay paths.
//
// All approaches use hop-by-hop ACKs with m transmissions per link (Fig. 8
// varies m), but none of them — except ORACLE's per-hop recomputation —
// reroutes around failures; that is precisely the gap DCRD fills.
package baseline

import (
	"time"

	"repro/internal/des"
	"repro/internal/netsim"
)

// ack acknowledges one data frame hop-by-hop.
type ack struct {
	FrameID uint64
}

// defaultAckGuard pads the round-trip ACK timeout, mirroring the DCRD
// router's guard.
const defaultAckGuard = time.Millisecond

// hopSender manages one node's unacknowledged transmissions: it sends a
// frame, arms an ACK timer at the link round trip, retransmits up to the
// attempt budget and invokes the failure callback when the budget is spent.
type hopSender struct {
	net      *netsim.Network
	node     int
	guard    time.Duration
	inflight map[uint64]*hopFlight
}

type hopFlight struct {
	frameID  uint64
	to       int
	payload  any
	attempts int
	budget   int // 0 means unlimited
	timeout  time.Duration
	timer    *des.Event
	onFail   func()
}

func newHopSender(net *netsim.Network, node int) *hopSender {
	return &hopSender{
		net:      net,
		node:     node,
		guard:    defaultAckGuard,
		inflight: make(map[uint64]*hopFlight),
	}
}

// send transmits payload to neighbor to with the given attempt budget
// (0 = retry until cancelled). onFail runs after the last attempt times out.
func (h *hopSender) send(to int, payload any, budget int, onFail func()) {
	wait, ok := h.net.AckWait(h.node, to)
	if !ok {
		if onFail != nil {
			h.net.Sim().After(0, onFail)
		}
		return
	}
	fl := &hopFlight{
		frameID: h.net.NextFrameID(),
		to:      to,
		payload: payload,
		budget:  budget,
		timeout: wait + h.guard,
		onFail:  onFail,
	}
	h.inflight[fl.frameID] = fl
	h.transmit(fl)
}

func (h *hopSender) transmit(fl *hopFlight) {
	fl.attempts++
	_ = h.net.Send(netsim.Frame{
		ID:      fl.frameID,
		From:    h.node,
		To:      fl.to,
		Kind:    netsim.Data,
		Payload: fl.payload,
	})
	fl.timer = h.net.Sim().After(fl.timeout, func() { h.timeoutFired(fl) })
}

func (h *hopSender) timeoutFired(fl *hopFlight) {
	if _, live := h.inflight[fl.frameID]; !live {
		return
	}
	if fl.budget == 0 || fl.attempts < fl.budget {
		h.transmit(fl)
		return
	}
	delete(h.inflight, fl.frameID)
	if fl.onFail != nil {
		fl.onFail()
	}
}

// handleAck resolves a pending flight; duplicate or stale ACKs are ignored.
func (h *hopSender) handleAck(frameID uint64) {
	fl, ok := h.inflight[frameID]
	if !ok {
		return
	}
	fl.timer.Cancel()
	delete(h.inflight, frameID)
}

// sendAck acknowledges receipt of data frame f back to its sender.
func sendAck(net *netsim.Network, node int, f netsim.Frame) {
	_ = net.Send(netsim.Frame{
		ID:      net.NextFrameID(),
		From:    node,
		To:      f.From,
		Kind:    netsim.Control,
		Payload: ack{FrameID: f.ID},
	})
}

// groupByNextHop buckets destinations by their next hop, separating those
// with no route.
func groupByNextHop(dests []int, next func(dest int) int) (groups map[int][]int, unroutable []int) {
	groups = make(map[int][]int)
	for _, dest := range dests {
		nh := next(dest)
		if nh < 0 {
			unroutable = append(unroutable, dest)
			continue
		}
		groups[nh] = append(groups[nh], dest)
	}
	return groups, unroutable
}

// localDeliveries splits dests into those hosted at node (delivered
// immediately) and the rest.
func splitLocal(node int, dests []int) (local, remote []int) {
	for _, d := range dests {
		if d == node {
			local = append(local, d)
		} else {
			remote = append(remote, d)
		}
	}
	return local, remote
}

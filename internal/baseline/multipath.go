package baseline

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// mpData is a source-routed multipath frame: one copy of the packet headed
// to a single subscriber along an explicit route. Idx is the receiving
// node's position in Route.
type mpData struct {
	Pkt   pubsub.Packet
	Dest  int
	Route topology.Path
	Idx   int
}

// MultipathRouter implements the paper's multipath baseline (§IV-B.4):
// "publishers send duplicate packets for every subscriber to increase the
// chance of successful delivery ... through two paths: one shortest delay
// path and another path selected from the top 5 shortest delay paths that
// has the fewest overlapping links with the shortest delay path."
//
// Routes are fixed at setup; forwarding uses hop-by-hop ACKs with m
// transmissions per link and drops the copy when a link stays failed.
type MultipathRouter struct {
	net *netsim.Network
	w   *pubsub.Workload
	col *metrics.Collector
	m   int
	// routes[topic][dest] holds one or two node paths from the publisher.
	routes []map[int][]topology.Path
	nodes  []*mpNode
}

type mpNode struct {
	r      *MultipathRouter
	id     int
	sender *hopSender
	seen   map[uint64]bool
}

// MultipathFanout is how many candidate shortest paths the second route is
// chosen from (the paper's "top 5").
const MultipathFanout = 5

// NewMultipathRouter precomputes the two routes per (publisher, subscriber)
// pair via Yen's k-shortest-paths and installs handlers on every node.
func NewMultipathRouter(net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, m int) (*MultipathRouter, error) {
	if m < 1 {
		m = 1
	}
	g := net.Graph()
	r := &MultipathRouter{
		net:    net,
		w:      w,
		col:    col,
		m:      m,
		routes: make([]map[int][]topology.Path, len(w.Topics())),
		nodes:  make([]*mpNode, g.N()),
	}
	for _, t := range w.Topics() {
		r.routes[t.ID] = make(map[int][]topology.Path, len(t.Subscribers))
		for _, s := range t.Subscribers {
			candidates, err := topology.KShortestPaths(g, t.Publisher, s.Node, MultipathFanout)
			if err != nil {
				return nil, fmt.Errorf("baseline: multipath routes for topic %d dest %d: %w",
					t.ID, s.Node, err)
			}
			routes := []topology.Path{candidates[0]}
			if second := leastOverlapping(candidates); second != nil {
				routes = append(routes, second)
			}
			r.routes[t.ID][s.Node] = routes
		}
	}
	for id := 0; id < g.N(); id++ {
		mn := &mpNode{
			r:      r,
			id:     id,
			sender: newHopSender(net, id),
			seen:   make(map[uint64]bool),
		}
		r.nodes[id] = mn
		net.SetHandler(id, mn.handleFrame)
	}
	return r, nil
}

// leastOverlapping picks, among candidates[1:], the path sharing the fewest
// links with candidates[0]; ties go to the shorter-delay (earlier) path.
// It returns nil when only one candidate exists.
func leastOverlapping(candidates []topology.Path) topology.Path {
	if len(candidates) < 2 {
		return nil
	}
	best := candidates[1]
	bestShared := candidates[0].SharedLinks(candidates[1])
	for _, c := range candidates[2:] {
		if shared := candidates[0].SharedLinks(c); shared < bestShared {
			best, bestShared = c, shared
		}
	}
	return best
}

// Name identifies the approach in experiment output.
func (r *MultipathRouter) Name() string { return "Multipath" }

// Routes exposes the selected paths for a (topic, dest) pair, for tests.
func (r *MultipathRouter) Routes(topic, dest int) []topology.Path {
	return r.routes[topic][dest]
}

// Publish sends one copy of the packet per (subscriber, route).
func (r *MultipathRouter) Publish(pkt pubsub.Packet) {
	node := r.nodes[pkt.Source]
	now := r.net.Sim().Now()
	for _, dest := range r.w.Destinations(pkt.Topic) {
		if dest == pkt.Source {
			r.col.Deliver(pkt.ID, dest, now)
			continue
		}
		for _, route := range r.routes[pkt.Topic][dest] {
			node.forwardAlong(pkt, dest, route, 0)
		}
	}
}

func (mn *mpNode) handleFrame(f netsim.Frame) {
	if f.Kind == netsim.Control {
		mn.sender.handleAck(f.Ack)
		return
	}
	switch p := f.Payload.(type) {
	case mpData:
		sendAck(mn.r.net, mn.id, f)
		if mn.seen[f.ID] {
			return
		}
		mn.seen[f.ID] = true
		if mn.id == p.Dest {
			mn.r.col.Deliver(p.Pkt.ID, p.Dest, mn.r.net.Sim().Now())
			return
		}
		mn.forwardAlong(p.Pkt, p.Dest, p.Route, p.Idx)
	}
}

// forwardAlong sends the copy to the next node of its source route with the
// m-transmission budget; a spent budget drops the copy (the other route's
// copy may still succeed).
func (mn *mpNode) forwardAlong(pkt pubsub.Packet, dest int, route topology.Path, idx int) {
	if idx+1 >= len(route) {
		mn.r.col.Drop(pkt.ID, dest)
		return
	}
	next := route[idx+1]
	payload := mpData{Pkt: pkt, Dest: dest, Route: route, Idx: idx + 1}
	mn.sender.send(next, payload, mn.r.m, func() {
		mn.r.col.Drop(pkt.ID, dest)
	})
}

package experiment

import (
	"strings"
	"testing"
	"time"
)

// quickScenario is small enough for unit tests but large enough to show the
// paper's qualitative ordering.
func quickScenario() Scenario {
	s := DefaultScenario()
	s.Duration = 20 * time.Second
	s.Drain = 5 * time.Second
	s.Topologies = 1
	return s
}

func TestApproachStrings(t *testing.T) {
	want := map[Approach]string{
		DCRD: "DCRD", RTree: "R-Tree", DTree: "D-Tree",
		Oracle: "ORACLE", Multipath: "Multipath",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), name)
		}
	}
	if len(AllApproaches()) != 5 {
		t.Errorf("AllApproaches = %v", AllApproaches())
	}
}

func TestScenarioValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "too few nodes", mutate: func(s *Scenario) { s.Nodes = 1 }},
		{name: "degree >= nodes", mutate: func(s *Scenario) { s.Degree = 20 }},
		{name: "negative degree", mutate: func(s *Scenario) { s.Degree = -1 }},
		{name: "Pf > 1", mutate: func(s *Scenario) { s.Pf = 1.5 }},
		{name: "Pl < 0", mutate: func(s *Scenario) { s.Pl = -0.1 }},
		{name: "M < 1", mutate: func(s *Scenario) { s.M = 0 }},
		{name: "bad factor", mutate: func(s *Scenario) { s.DeadlineFactor = 0 }},
		{name: "no topics", mutate: func(s *Scenario) { s.Topics = 0 }},
		{name: "zero interval", mutate: func(s *Scenario) { s.PublishInterval = 0 }},
		{name: "zero duration", mutate: func(s *Scenario) { s.Duration = 0 }},
		{name: "no topologies", mutate: func(s *Scenario) { s.Topologies = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := DefaultScenario()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid scenario accepted")
			}
		})
	}
	if err := DefaultScenario().Validate(); err != nil {
		t.Errorf("default scenario rejected: %v", err)
	}
}

func TestRunOneCleanNetworkDeliversEverything(t *testing.T) {
	s := quickScenario()
	s.Pf = 0
	s.Pl = 0
	for _, a := range AllApproaches() {
		res, err := RunOne(s, a, 0)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Expected == 0 {
			t.Fatalf("%v: no expectations registered", a)
		}
		if got := res.DeliveryRatio(); got != 1 {
			t.Errorf("%v: delivery ratio = %v on a clean network, want 1", a, got)
		}
		if got := res.QoSDeliveryRatio(); got != 1 {
			t.Errorf("%v: QoS ratio = %v on a clean network, want 1", a, got)
		}
	}
}

func TestRunPairsApproachesOnSameConditions(t *testing.T) {
	// The same (seed, topology) cell must register identical expectations
	// for every approach — same workload, same subscriber sets.
	s := quickScenario()
	s.Pf = 0.04
	var expected []int
	for _, a := range AllApproaches() {
		res, err := RunOne(s, a, 0)
		if err != nil {
			t.Fatal(err)
		}
		expected = append(expected, res.Expected)
	}
	for i := 1; i < len(expected); i++ {
		if expected[i] != expected[0] {
			t.Errorf("expectation counts differ across approaches: %v", expected)
		}
	}
}

// TestPaperQualitativeOrdering asserts the paper's headline claims on a
// small but failure-heavy run: DCRD and ORACLE deliver (essentially)
// everything; the fixed trees lose packets; DCRD's QoS ratio beats both
// trees; ORACLE bounds everyone; R-Tree sends the least traffic and
// Multipath the most.
func TestPaperQualitativeOrdering(t *testing.T) {
	s := quickScenario()
	s.Duration = 40 * time.Second
	s.Pf = 0.06
	s.Degree = 5
	aggs, err := Run(s, AllApproaches())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[Approach]Aggregate, len(aggs))
	for _, a := range aggs {
		byName[a.Approach] = a
	}

	if d := byName[DCRD].MeanDeliveryRatio(); d < 0.98 {
		t.Errorf("DCRD delivery ratio = %v, want >= 0.98", d)
	}
	if d := byName[Oracle].MeanDeliveryRatio(); d < 0.999 {
		t.Errorf("ORACLE delivery ratio = %v, want ~1", d)
	}
	for _, tree := range []Approach{RTree, DTree} {
		if d := byName[tree].MeanDeliveryRatio(); d >= byName[DCRD].MeanDeliveryRatio() {
			t.Errorf("%v delivery ratio %v should trail DCRD %v", tree, d, byName[DCRD].MeanDeliveryRatio())
		}
		if q := byName[tree].MeanQoSRatio(); q >= byName[DCRD].MeanQoSRatio() {
			t.Errorf("%v QoS ratio %v should trail DCRD %v", tree, q, byName[DCRD].MeanQoSRatio())
		}
	}
	if byName[Oracle].MeanQoSRatio() < byName[DCRD].MeanQoSRatio() {
		t.Errorf("ORACLE QoS %v below DCRD %v", byName[Oracle].MeanQoSRatio(), byName[DCRD].MeanQoSRatio())
	}
	// Traffic ordering: R-Tree <= D-Tree-ish < Multipath; DCRD < Multipath.
	if byName[RTree].MeanPacketsPerSubscriber() > byName[Multipath].MeanPacketsPerSubscriber() {
		t.Error("R-Tree sent more traffic than Multipath")
	}
	if byName[DCRD].MeanPacketsPerSubscriber() >= byName[Multipath].MeanPacketsPerSubscriber() {
		t.Errorf("DCRD traffic %v should stay below Multipath %v",
			byName[DCRD].MeanPacketsPerSubscriber(), byName[Multipath].MeanPacketsPerSubscriber())
	}
}

func TestFigureTableFormat(t *testing.T) {
	tab := FigureTable{
		Title:  "Figure X",
		XLabel: "Pf",
		Xs:     []float64{0, 0.1},
		Series: []Series{
			{Label: "DCRD", Values: []float64{1, 0.97}},
			{Label: "R-Tree", Values: []float64{1}},
		},
	}
	var sb strings.Builder
	if err := tab.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure X", "DCRD", "R-Tree", "0.9700", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFigureOptionsApply(t *testing.T) {
	s := DefaultScenario()
	got, err := FigureOptions{Duration: "90s", Topologies: 3, Seed: 7}.apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 90*time.Second || got.Topologies != 3 || got.Seed != 7 {
		t.Errorf("apply result = %+v", got)
	}
	if _, err := (FigureOptions{Duration: "bogus"}).apply(s); err == nil {
		t.Error("bogus duration accepted")
	}
	if _, err := (FigureOptions{Duration: "-5s"}).apply(s); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestFiguresRegistryComplete(t *testing.T) {
	figs := Figures()
	for n := 2; n <= 8; n++ {
		if figs[n] == nil {
			t.Errorf("figure %d missing from registry", n)
		}
	}
}

// TestFigure6ShapeTinyRun checks the Fig. 6 mechanism on a tiny run: DCRD's
// QoS ratio must not decrease as the deadline loosens.
func TestFigure6ShapeTinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	base := quickScenario()
	base.Pf = 0.06
	base.Degree = 8
	prev := -1.0
	for _, factor := range []float64{1.5, 3, 6} {
		s := base
		s.DeadlineFactor = factor
		res, err := RunOne(s, DCRD, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := res.QoSDeliveryRatio()
		if q+0.03 < prev { // small tolerance for stochastic jitter
			t.Errorf("QoS ratio decreased as deadline loosened: factor %v -> %v (prev %v)", factor, q, prev)
		}
		prev = q
	}
}

package experiment

import (
	"strings"
	"testing"
)

// tinyOptions keeps figure smoke tests fast: structure and sanity, not
// statistics.
func tinyOptions() FigureOptions {
	return FigureOptions{Duration: "5s", Topologies: 1, Seed: 3}
}

// checkTables asserts structural invariants every generated panel must
// satisfy: non-empty series of equal length, ratio values within [0, 1]
// for ratio panels, and a formattable layout.
func checkTables(t *testing.T, tables []FigureTable, wantPanels int) {
	t.Helper()
	if len(tables) != wantPanels {
		t.Fatalf("got %d panels, want %d", len(tables), wantPanels)
	}
	for _, tab := range tables {
		if len(tab.Series) == 0 {
			t.Fatalf("%s: no series", tab.Title)
		}
		if len(tab.Xs) == 0 {
			t.Fatalf("%s: no x values", tab.Title)
		}
		for _, s := range tab.Series {
			if len(s.Values) != len(tab.Xs) {
				t.Errorf("%s / %s: %d values for %d xs", tab.Title, s.Label, len(s.Values), len(tab.Xs))
			}
			isRatio := strings.Contains(tab.Title, "Ratio") || strings.Contains(tab.Title, "CDF")
			for i, v := range s.Values {
				if isRatio && (v < 0 || v > 1) {
					t.Errorf("%s / %s[%d] = %v outside [0,1]", tab.Title, s.Label, i, v)
				}
				if !isRatio && v < 0 {
					t.Errorf("%s / %s[%d] = %v negative", tab.Title, s.Label, i, v)
				}
			}
		}
		var sb strings.Builder
		if err := tab.Format(&sb); err != nil {
			t.Errorf("%s: Format: %v", tab.Title, err)
		}
		if !strings.Contains(sb.String(), tab.XLabel) {
			t.Errorf("%s: formatted output missing x label", tab.Title)
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
	// Panel (a) at Pf=0 must be ~1 for every approach.
	for _, s := range tables[0].Series {
		if s.Values[0] < 0.99 {
			t.Errorf("%s delivery at Pf=0 is %v", s.Label, s.Values[0])
		}
	}
}

func TestFigure3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
}

func TestFigure4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
	if len(tables[0].Xs) != 8 {
		t.Errorf("degree sweep has %d points, want 8", len(tables[0].Xs))
	}
}

func TestFigure6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 1)
	// DCRD's series should be non-decreasing-ish with looser deadlines;
	// allow small noise at tiny scale.
	for _, s := range tables[0].Series {
		if s.Label != DCRD.String() {
			continue
		}
		if s.Values[len(s.Values)-1]+0.05 < s.Values[0] {
			t.Errorf("DCRD QoS decreased with looser deadline: %v", s.Values)
		}
	}
}

func TestFigure7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 1)
	// CDFs are monotone in x.
	for _, s := range tables[0].Series {
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1] {
				t.Errorf("%s CDF not monotone: %v", s.Label, s.Values)
			}
		}
	}
}

func TestFigure8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := Figure8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 1)
	if len(tables[0].Series) != 8 {
		t.Errorf("Fig 8 has %d series, want 8 (4 approaches x m=1,2)", len(tables[0].Series))
	}
}

func TestAblationOrderingStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := AblationOrdering(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d panels, want 2", len(tables))
	}
	checkTables(t, tables[:1], 1)
}

func TestExtensionPersistencyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	tables, err := ExtensionPersistency(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 2)
}

func TestQuickAndFullOptions(t *testing.T) {
	q, f := QuickOptions(), FullOptions()
	if q.Duration == "" || f.Duration != "2h" || f.Topologies != 10 {
		t.Errorf("options: quick %+v full %+v", q, f)
	}
}

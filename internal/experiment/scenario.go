// Package experiment wires the substrates together into the paper's
// evaluation (§IV): scenario configuration, a deterministic multi-topology
// runner, and one sweep function per figure (Fig. 2–8) that regenerates the
// paper's series.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/algo1"
	"repro/internal/trace"
)

// Approach enumerates the five routing schemes under comparison.
type Approach int

// The compared approaches (§IV-B).
const (
	DCRD Approach = iota + 1
	RTree
	DTree
	Oracle
	Multipath
)

// AllApproaches lists every approach in the paper's legend order.
func AllApproaches() []Approach {
	return []Approach{DCRD, RTree, DTree, Oracle, Multipath}
}

// String returns the paper's name for the approach.
func (a Approach) String() string {
	switch a {
	case DCRD:
		return "DCRD"
	case RTree:
		return "R-Tree"
	case DTree:
		return "D-Tree"
	case Oracle:
		return "ORACLE"
	case Multipath:
		return "Multipath"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Scenario fully describes one experimental condition. The zero value is
// not runnable; start from DefaultScenario.
type Scenario struct {
	// Nodes is the overlay size (20 in most figures).
	Nodes int
	// Degree is the per-node link degree; 0 means full mesh.
	Degree int
	// Pf is the per-epoch link failure probability.
	Pf float64
	// Pl is the per-transmission packet loss rate.
	Pl float64
	// M is the number of transmissions per link/neighbor before a sender
	// declares failure.
	M int
	// DeadlineFactor multiplies the shortest-path delay to set D_PS.
	DeadlineFactor float64
	// Topics is the number of topics (= publishers).
	Topics int
	// PublishInterval is the per-publisher packet interval.
	PublishInterval time.Duration
	// SubProbMin/SubProbMax bound the per-topic subscription probability.
	SubProbMin, SubProbMax float64
	// Duration is the simulated time during which publishers emit.
	Duration time.Duration
	// Drain is extra simulated time after the last publish so in-flight
	// packets can finish.
	Drain time.Duration
	// Topologies is how many random topologies to average over.
	Topologies int
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// RoundTripAcks switches from the paper's instant-ACK timing model
	// (Algorithm 2 waits only alpha_Xk, so its simulator must return ACKs
	// instantaneously) to physical ACK propagation with a 2*alpha wait.
	// The default (false) reproduces the paper.
	RoundTripAcks bool

	// --- extensions beyond the paper's evaluation ---

	// NodeFailureProb is Pn for the node-failure extension (paper §V
	// future work): each epoch, every broker fails for that epoch w.p. Pn.
	NodeFailureProb float64
	// Ordering overrides DCRD's sending-list policy for ablation
	// (default: the Theorem-1 d/r order).
	Ordering algo1.Ordering
	// Persistent enables DCRD's §III persistency mode.
	Persistent bool
	// LinkBandwidth caps each link direction at this many frames/s
	// (0 = infinite; congestion extension).
	LinkBandwidth float64
	// QueueCapacity bounds the per-direction transmit queue when
	// LinkBandwidth is set (0 = unbounded).
	QueueCapacity int
	// MaxLifetime bounds how long DCRD and ORACLE keep retrying one
	// packet (0 = their 30 s default). Congested scenarios use a tight
	// bound: timeout-driven duplication otherwise snowballs.
	MaxLifetime time.Duration
	// Tracer, when non-nil, receives DCRD's per-packet routing timeline
	// (only meaningful for single-topology DCRD runs).
	Tracer trace.Recorder
	// MonitorSamples switches link monitoring from exact estimates to the
	// success fraction of this many probes per monitoring window
	// (0 = exact). DCRD rebuilds its tables at every window.
	MonitorSamples int
	// MonitorInterval overrides how often monitoring refreshes
	// (0 = the paper's 5 minutes).
	MonitorInterval time.Duration
	// MeanFailureBurst is the mean link outage length in epochs
	// (<= 1 keeps the paper's memoryless failures).
	MeanFailureBurst float64
}

// DefaultScenario returns the paper's baseline setting: 20 nodes, full
// mesh, Pl = 1e-4, m = 1, deadline 3x shortest-path delay, 10 topics at
// 1 packet/s, 2 h of simulated time over 10 topologies.
func DefaultScenario() Scenario {
	return Scenario{
		Nodes:           20,
		Degree:          0,
		Pf:              0,
		Pl:              1e-4,
		M:               1,
		DeadlineFactor:  3,
		Topics:          10,
		PublishInterval: time.Second,
		SubProbMin:      0.2,
		SubProbMax:      0.6,
		Duration:        2 * time.Hour,
		Drain:           30 * time.Second,
		Topologies:      10,
		Seed:            1,
	}
}

// Validate reports scenario configuration errors.
func (s Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("experiment: Nodes = %d, need >= 2", s.Nodes)
	}
	if s.Degree < 0 || s.Degree >= s.Nodes {
		return fmt.Errorf("experiment: Degree = %d invalid for %d nodes", s.Degree, s.Nodes)
	}
	if s.Pf < 0 || s.Pf > 1 {
		return fmt.Errorf("experiment: Pf = %v outside [0,1]", s.Pf)
	}
	if s.Pl < 0 || s.Pl > 1 {
		return fmt.Errorf("experiment: Pl = %v outside [0,1]", s.Pl)
	}
	if s.M < 1 {
		return fmt.Errorf("experiment: M = %d, need >= 1", s.M)
	}
	if s.DeadlineFactor <= 0 {
		return fmt.Errorf("experiment: DeadlineFactor = %v, need > 0", s.DeadlineFactor)
	}
	if s.Topics < 1 {
		return fmt.Errorf("experiment: Topics = %d, need >= 1", s.Topics)
	}
	if s.PublishInterval <= 0 {
		return fmt.Errorf("experiment: PublishInterval = %v, need > 0", s.PublishInterval)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("experiment: Duration = %v, need > 0", s.Duration)
	}
	if s.Topologies < 1 {
		return fmt.Errorf("experiment: Topologies = %d, need >= 1", s.Topologies)
	}
	if s.NodeFailureProb < 0 || s.NodeFailureProb > 1 {
		return fmt.Errorf("experiment: NodeFailureProb = %v outside [0,1]", s.NodeFailureProb)
	}
	if s.LinkBandwidth < 0 {
		return fmt.Errorf("experiment: negative LinkBandwidth %v", s.LinkBandwidth)
	}
	if s.QueueCapacity < 0 {
		return fmt.Errorf("experiment: negative QueueCapacity %d", s.QueueCapacity)
	}
	return nil
}

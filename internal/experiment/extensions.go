package experiment

import (
	"time"

	"repro/internal/algo1"
)

// This file implements experiments beyond the paper's published evaluation:
// the sending-list ordering ablation (quantifying what Theorem 1 buys over
// naive orderings), the node-failure extension the paper lists as future
// work (§V), and the persistency-mode ablation sketched in §III.

// AblationOrdering compares DCRD's QoS delivery ratio under the four
// sending-list orderings across the Fig. 2/3-style failure sweep on a
// degree-5 overlay. The Theorem-1 d/r order should dominate, with
// delay-only close behind at low Pf and reliability-only overly
// conservative.
func AblationOrdering(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 5
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	orderings := []algo1.Ordering{
		algo1.RatioOrder, algo1.DelayOrder, algo1.ReliabilityOrder, algo1.ArbitraryOrder,
	}
	xs := failureProbabilities()
	qos := FigureTable{
		Title:  "Ablation: DCRD QoS Delivery Ratio by sending-list ordering (degree 5)",
		XLabel: "Failure Prob",
		Xs:     xs,
	}
	delay := FigureTable{
		Title:  "Ablation: DCRD mean delivery latency by sending-list ordering (degree 5, ms)",
		XLabel: "Failure Prob",
		Xs:     xs,
	}
	for _, ord := range orderings {
		qs := Series{Label: ord.String()}
		ds := Series{Label: ord.String()}
		for _, pf := range xs {
			s := base
			s.Pf = pf
			s.Ordering = ord
			aggs, err := Run(s, []Approach{DCRD})
			if err != nil {
				return nil, err
			}
			qs.Values = append(qs.Values, aggs[0].MeanQoSRatio())
			ds.Values = append(ds.Values, meanLatencyMillis(aggs[0]))
		}
		qos.Series = append(qos.Series, qs)
		delay.Series = append(delay.Series, ds)
	}
	return []FigureTable{qos, delay}, nil
}

// meanLatencyMillis averages delivered-packet latency across runs, in ms.
func meanLatencyMillis(a Aggregate) float64 {
	var sum float64
	var n int
	for _, r := range a.Runs {
		for _, l := range r.Latencies {
			sum += float64(l) / 1e6
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ExtensionNodeFailures evaluates all five approaches under the
// node-failure process the paper defers to future work: each epoch every
// broker fails for that epoch w.p. Pn, taking all its links down at once
// (correlated link failures and temporarily unreachable destinations).
func ExtensionNodeFailures(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 8
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	pns := []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
	byX := make([][]Aggregate, 0, len(pns))
	for _, pn := range pns {
		s := base
		s.NodeFailureProb = pn
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables("X1", "Node Failures (degree 8, future-work extension)",
		"Node Fail Prob", pns, byX), nil
}

// ExtensionPersistency compares DCRD with and without the §III persistency
// mode on a sparse (degree-3) overlay under heavy link failures — the
// regime where whole neighborhoods go dark and the non-persistent router
// must drop at the origin.
func ExtensionPersistency(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 3
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	xs := []float64{0.05, 0.1, 0.15, 0.2}
	deliv := FigureTable{
		Title:  "Extension: DCRD Delivery Ratio with and without persistency mode (degree 3)",
		XLabel: "Failure Prob",
		Xs:     xs,
	}
	qos := FigureTable{
		Title:  "Extension: DCRD QoS Delivery Ratio with and without persistency mode (degree 3)",
		XLabel: "Failure Prob",
		Xs:     xs,
	}
	for _, persistent := range []bool{false, true} {
		label := "drop at origin"
		if persistent {
			label = "persistency mode"
		}
		dsSeries := Series{Label: label}
		qsSeries := Series{Label: label}
		for _, pf := range xs {
			s := base
			s.Pf = pf
			s.Persistent = persistent
			aggs, err := Run(s, []Approach{DCRD})
			if err != nil {
				return nil, err
			}
			dsSeries.Values = append(dsSeries.Values, aggs[0].MeanDeliveryRatio())
			qsSeries.Values = append(qsSeries.Values, aggs[0].MeanQoSRatio())
		}
		deliv.Series = append(deliv.Series, dsSeries)
		qos.Series = append(qos.Series, qsSeries)
	}
	return []FigureTable{deliv, qos}, nil
}

// ExtensionCongestion evaluates the "highly congested link" scenario the
// paper's introduction motivates DCRD with but never evaluates: no link
// failures at all, a 20x publish rate, and per-link bandwidth swept from
// ample to scarce with a short transmit queue. Congested links delay (or
// tail-drop) frames; DCRD's ACK timeouts read that as failure and route
// around hot links, while the trees keep feeding them.
func ExtensionCongestion(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 5
	base.Pf = 0
	base.PublishInterval = 100 * time.Millisecond // 10 pkt/s per topic
	base.QueueCapacity = 32
	// A tight retry bound: under saturation, timeout-driven duplication
	// otherwise snowballs (congestion collapse — see EXPERIMENTS.md).
	base.MaxLifetime = 2 * time.Second
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	bandwidths := []float64{200, 100, 50, 25}
	byX := make([][]Aggregate, 0, len(bandwidths))
	for _, bw := range bandwidths {
		s := base
		s.LinkBandwidth = bw
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables("X2", "Congestion (degree 5, 10 pkt/s per topic, queue 32, Pf = 0)",
		"Link BW (fps)", bandwidths, byX), nil
}

// ExtensionMonitoring measures DCRD's sensitivity to monitoring quality:
// link delivery-ratio estimates become the success fraction of N probes per
// 1-minute monitoring window (fewer probes = noisier sending-list
// ordering), with route tables rebuilt each window. The paper assumes
// monitoring exists but never quantifies how good it must be.
func ExtensionMonitoring(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 8
	base.Pf = 0.06
	base.MonitorInterval = time.Minute
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	samples := []int{0, 200, 50, 10, 3}
	qos := FigureTable{
		Title:  "Extension: DCRD QoS Delivery Ratio vs monitoring quality (degree 8, Pf = 0.06, 1 min windows)",
		XLabel: "Probes/window",
		Series: []Series{{Label: "DCRD"}},
	}
	traffic := FigureTable{
		Title:  "Extension: DCRD Packets/Subscriber vs monitoring quality",
		XLabel: "Probes/window",
		Series: []Series{{Label: "DCRD"}},
	}
	for _, n := range samples {
		x := float64(n)
		if n == 0 {
			x = 1e6 // exact estimates plotted as "infinite probes"
		}
		qos.Xs = append(qos.Xs, x)
		traffic.Xs = append(traffic.Xs, x)
		s := base
		s.MonitorSamples = n
		aggs, err := Run(s, []Approach{DCRD})
		if err != nil {
			return nil, err
		}
		qos.Series[0].Values = append(qos.Series[0].Values, aggs[0].MeanQoSRatio())
		traffic.Series[0].Values = append(traffic.Series[0].Values, aggs[0].MeanPacketsPerSubscriber())
	}
	return []FigureTable{qos, traffic}, nil
}

// ExtensionBursts evaluates correlated link outages: the stationary failure
// probability stays at Pf = 0.06, but outages last a mean of L consecutive
// epochs (Gilbert–Elliott) instead of exactly one. The paper's §III calls
// multi-epoch outages "persistent failures"; this measures how much outage
// correlation actually hurts each approach.
func ExtensionBursts(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = 8
	base.Pf = 0.06
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	bursts := []float64{1, 2, 5, 10}
	byX := make([][]Aggregate, 0, len(bursts))
	for _, l := range bursts {
		s := base
		s.MeanFailureBurst = l
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables("X3", "Failure Bursts (degree 8, Pf = 0.06, mean outage L epochs)",
		"Mean Burst L", bursts, byX), nil
}

// Extensions maps extension/ablation names to their generators, mirroring
// Figures for cmd/dcrdsim -extension.
func Extensions() map[string]func(FigureOptions) ([]FigureTable, error) {
	return map[string]func(FigureOptions) ([]FigureTable, error){
		"ordering":    AblationOrdering,
		"nodefail":    ExtensionNodeFailures,
		"persistency": ExtensionPersistency,
		"congestion":  ExtensionCongestion,
		"monitoring":  ExtensionMonitoring,
		"bursts":      ExtensionBursts,
	}
}

// ExtensionNames lists the registered extension experiments.
func ExtensionNames() []string {
	return []string{"ordering", "nodefail", "persistency", "congestion", "monitoring", "bursts"}
}

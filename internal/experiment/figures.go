package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/plot"
	"repro/internal/stats"
)

// parseDuration parses a Go duration string for FigureOptions.
func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("experiment: bad duration %q: %w", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("experiment: duration %q must be positive", s)
	}
	return d, nil
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Values []float64
}

// FigureTable is one panel of a paper figure rendered as numeric series
// over a swept x-axis.
type FigureTable struct {
	Title  string
	XLabel string
	Xs     []float64
	Series []Series
}

// Format writes the table in an aligned, paper-style text layout. Column
// widths adapt to the longest series label.
func (t *FigureTable) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	width := 14
	for _, s := range t.Series {
		if len(s.Label)+2 > width {
			width = len(s.Label) + 2
		}
	}
	header := fmt.Sprintf("%-14s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf("%*s", width, s.Label)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for i, x := range t.Xs {
		row := fmt.Sprintf("%-14.4g", x)
		for _, s := range t.Series {
			if i < len(s.Values) {
				row += fmt.Sprintf("%*.4f", width, s.Values[i])
			} else {
				row += fmt.Sprintf("%*s", width, "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV: a header row of x-label plus series
// labels, then one row per x value.
func (t *FigureTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, make([]string, 0, len(t.Series))...)
	for _, s := range t.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range t.Xs {
		row := make([]string, 0, len(t.Series)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range t.Series {
			if i < len(s.Values) {
				row = append(row, strconv.FormatFloat(s.Values[i], 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Charts renders the table as an ASCII chart via internal/plot. Ratio
// panels are pinned to [0, 1].
func (t *FigureTable) Chart() (string, error) {
	series := make([]plot.Series, 0, len(t.Series))
	for _, s := range t.Series {
		series = append(series, plot.Series{Label: s.Label, Xs: t.Xs, Ys: s.Values})
	}
	// Auto-range the y axis: paper ratio curves live in a narrow band
	// (e.g. 0.85–1.0) and pinning to [0,1] would flatten them.
	opts := plot.Options{Title: t.Title, XLabel: t.XLabel, Width: 64, Height: 16}
	return plot.Chart(series, opts)
}

// FigureOptions scales figure regeneration. The paper's full setting
// (2 h x 10 topologies) takes a while; Quick trims it to something a
// laptop regenerates in minutes while preserving every qualitative shape.
type FigureOptions struct {
	Duration   string // Go duration string, e.g. "2h" or "90s"
	Topologies int
	Seed       uint64
}

// QuickOptions returns laptop-scale settings.
func QuickOptions() FigureOptions {
	return FigureOptions{Duration: "60s", Topologies: 2, Seed: 1}
}

// FullOptions returns the paper's settings.
func FullOptions() FigureOptions {
	return FigureOptions{Duration: "2h", Topologies: 10, Seed: 1}
}

// apply overlays the options onto a scenario.
func (o FigureOptions) apply(s Scenario) (Scenario, error) {
	if o.Duration != "" {
		d, err := parseDuration(o.Duration)
		if err != nil {
			return s, err
		}
		s.Duration = d
	}
	if o.Topologies > 0 {
		s.Topologies = o.Topologies
	}
	if o.Seed != 0 {
		s.Seed = o.Seed
	}
	return s, nil
}

// failureProbabilities is the Pf sweep of Figs. 2 and 3.
func failureProbabilities() []float64 {
	return []float64{0, 0.02, 0.04, 0.06, 0.08, 0.1}
}

// threeMetricTables renders the (delivery ratio, QoS ratio,
// packets/subscriber) triple the multi-panel figures share.
func threeMetricTables(figure, condition, xLabel string, xs []float64, byX [][]Aggregate) []FigureTable {
	metricsDef := []struct {
		panel string
		name  string
		get   func(Aggregate) float64
	}{
		{"a", "Delivery Ratio", Aggregate.MeanDeliveryRatio},
		{"b", "QoS Delivery Ratio", Aggregate.MeanQoSRatio},
		{"c", "Packets Sent / Subscriber", Aggregate.MeanPacketsPerSubscriber},
	}
	tables := make([]FigureTable, 0, len(metricsDef))
	for _, m := range metricsDef {
		t := FigureTable{
			Title:  fmt.Sprintf("Figure %s(%s): %s — %s", figure, m.panel, m.name, condition),
			XLabel: xLabel,
			Xs:     xs,
		}
		if len(byX) > 0 {
			for ai := range byX[0] {
				s := Series{Label: byX[0][ai].Approach.String()}
				for xi := range xs {
					s.Values = append(s.Values, m.get(byX[xi][ai]))
				}
				t.Series = append(t.Series, s)
			}
		}
		tables = append(tables, t)
	}
	return tables
}

// Figure2 reproduces the full-mesh failure-probability sweep (Fig. 2):
// delivery ratio, QoS delivery ratio and packets/subscriber vs Pf for all
// five approaches on a 20-node full mesh.
func Figure2(opts FigureOptions) ([]FigureTable, error) {
	return failureSweep("2", "Fully-Meshed Networks", 0, opts)
}

// Figure3 reproduces the degree-5 failure-probability sweep (Fig. 3).
func Figure3(opts FigureOptions) ([]FigureTable, error) {
	return failureSweep("3", "Overlay Networks with Degree 5", 5, opts)
}

func failureSweep(figure, condition string, degree int, opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Degree = degree
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	xs := failureProbabilities()
	byX := make([][]Aggregate, 0, len(xs))
	for _, pf := range xs {
		s := base
		s.Pf = pf
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables(figure, condition, "Failure Prob", xs, byX), nil
}

// Figure4 reproduces the connectivity sweep (Fig. 4): the three metrics vs
// node degree 3–10 at Pf = 0.06.
func Figure4(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Pf = 0.06
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	degrees := []int{3, 4, 5, 6, 7, 8, 9, 10}
	xs := make([]float64, len(degrees))
	byX := make([][]Aggregate, 0, len(degrees))
	for i, deg := range degrees {
		xs[i] = float64(deg)
		s := base
		s.Degree = deg
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables("4", "Different Connectivities (Pf = 0.06)", "Node Degree", xs, byX), nil
}

// Figure5 reproduces the scalability sweep (Fig. 5): the three metrics vs
// network size {10,20,40,80,120,160} at degree 8 and Pf = 0.06.
func Figure5(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Pf = 0.06
	base.Degree = 8
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	sizes := []int{10, 20, 40, 80, 120, 160}
	xs := make([]float64, len(sizes))
	byX := make([][]Aggregate, 0, len(sizes))
	for i, n := range sizes {
		xs[i] = float64(n)
		s := base
		s.Nodes = n
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	return threeMetricTables("5", "Different Network Sizes (degree 8, Pf = 0.06)", "Network Size", xs, byX), nil
}

// Figure6 reproduces the QoS-requirement sweep (Fig. 6): QoS delivery ratio
// vs the deadline multiplication factor {1.5,2,3,4,5,6} at degree 8 and
// Pf = 0.06.
func Figure6(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Pf = 0.06
	base.Degree = 8
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	factors := []float64{1.5, 2, 3, 4, 5, 6}
	t := FigureTable{
		Title:  "Figure 6: QoS Delivery Ratio vs QoS Requirement (degree 8, Pf = 0.06)",
		XLabel: "QoS Req",
		Xs:     factors,
	}
	var byX [][]Aggregate
	for _, f := range factors {
		s := base
		s.DeadlineFactor = f
		aggs, err := Run(s, AllApproaches())
		if err != nil {
			return nil, err
		}
		byX = append(byX, aggs)
	}
	for ai := range byX[0] {
		s := Series{Label: byX[0][ai].Approach.String()}
		for xi := range factors {
			s.Values = append(s.Values, byX[xi][ai].MeanQoSRatio())
		}
		t.Series = append(t.Series, s)
	}
	return []FigureTable{t}, nil
}

// Figure7 reproduces the deadline-miss delay CDF (Fig. 7): among DCRD
// packets that missed their deadline, the cumulative distribution of
// (actual delay / deadline) for the full-mesh and degree-8 topologies at
// Pf = 0.06.
func Figure7(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Pf = 0.06
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		label  string
		degree int
	}{
		{"Full Mesh", 0},
		{"Degree 8", 8},
	}
	xs := []float64{1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}
	t := FigureTable{
		Title:  "Figure 7: CDF of (delay / deadline) for DCRD packets that missed the deadline (Pf = 0.06)",
		XLabel: "Delay/Deadline",
		Xs:     xs,
	}
	for _, c := range cases {
		s := base
		s.Degree = c.degree
		aggs, err := Run(s, []Approach{DCRD})
		if err != nil {
			return nil, err
		}
		cdf := stats.NewCDF(aggs[0].LateFactors())
		series := Series{Label: c.label}
		for _, x := range xs {
			series.Values = append(series.Values, cdf.At(x))
		}
		t.Series = append(t.Series, series)
	}
	return []FigureTable{t}, nil
}

// Figure8 reproduces the loss-rate/m sweep (Fig. 8): QoS delivery ratio vs
// Pl in {1e-4..1e-1} for m = 1 and m = 2, degree 8. The figure caption
// fixes Pf = 0.01 (the body text says 0.1; we follow the caption — the
// crossover shape is the finding either way).
func Figure8(opts FigureOptions) ([]FigureTable, error) {
	base := DefaultScenario()
	base.Pf = 0.01
	base.Degree = 8
	base, err := opts.apply(base)
	if err != nil {
		return nil, err
	}
	losses := []float64{1e-4, 1e-3, 1e-2, 1e-1}
	approaches := []Approach{DCRD, RTree, DTree, Multipath}
	t := FigureTable{
		Title:  "Figure 8: QoS Delivery Ratio vs Packet Loss Rate Pl for m=1,2 (degree 8, Pf = 0.01)",
		XLabel: "Loss Rate",
		Xs:     losses,
	}
	for _, a := range approaches {
		for _, m := range []int{1, 2} {
			series := Series{Label: fmt.Sprintf("%s m=%d", a, m)}
			for _, pl := range losses {
				s := base
				s.Pl = pl
				s.M = m
				aggs, err := Run(s, []Approach{a})
				if err != nil {
					return nil, err
				}
				series.Values = append(series.Values, aggs[0].MeanQoSRatio())
			}
			t.Series = append(t.Series, series)
		}
	}
	return []FigureTable{t}, nil
}

// Figures maps figure numbers to their regeneration functions.
func Figures() map[int]func(FigureOptions) ([]FigureTable, error) {
	return map[int]func(FigureOptions) ([]FigureTable, error){
		2: Figure2,
		3: Figure3,
		4: Figure4,
		5: Figure5,
		6: Figure6,
		7: Figure7,
		8: Figure8,
	}
}

package experiment

import (
	"reflect"
	"testing"
	"time"
)

// goldenScenario is one fixed configuration of the golden/determinism suite.
type goldenScenario struct {
	name string
	s    Scenario
}

// goldenScenarios covers the simulator's behavioral surface with small runs:
// the default mesh, a denser mesh, persistency mode under heavy failures,
// bursty (Gilbert–Elliott) failures, and round-trip ACK timing.
func goldenScenarios() []goldenScenario {
	base := DefaultScenario()
	base.Duration = 5 * time.Second
	base.Drain = 3 * time.Second
	base.Topologies = 1
	base.Pf = 0.06

	mesh := base

	deg5 := base
	deg5.Degree = 5

	persistent := base
	persistent.Degree = 3
	persistent.Pf = 0.2
	persistent.Persistent = true

	burst := base
	burst.Degree = 5
	burst.MeanFailureBurst = 4

	rtt := base
	rtt.RoundTripAcks = true

	return []goldenScenario{
		{"mesh", mesh},
		{"deg5", deg5},
		{"persistent", persistent},
		{"burst", burst},
		{"rtt", rtt},
	}
}

// goldenScalars is the scalar fingerprint of one run:
// expected, delivered, on-time, data transmissions, drops, published.
type goldenScalars struct {
	Expected          int
	Delivered         int
	OnTime            int
	DataTransmissions uint64
	Drops             uint64
	Published         uint64
}

// goldenWant holds the seed-for-seed expected results, captured from the
// pre-optimization simulator. The allocation-free refactor (pooled DES
// events, dense link tables, pooled forwarding state) must reproduce every
// value bit-for-bit: any drift means the refactor changed event ordering,
// RNG draw order, or protocol behavior rather than just performance.
var goldenWant = map[string]map[string]goldenScalars{
	"mesh": {
		"DCRD":      {310, 310, 306, 439, 0, 50},
		"R-Tree":    {310, 284, 284, 310, 26, 50},
		"D-Tree":    {310, 273, 273, 371, 37, 50},
		"ORACLE":    {310, 310, 310, 388, 0, 50},
		"Multipath": {310, 306, 306, 989, 81, 50},
	},
	"deg5": {
		"DCRD":      {460, 459, 448, 720, 1, 50},
		"R-Tree":    {460, 421, 421, 579, 39, 50},
		"D-Tree":    {460, 420, 420, 570, 40, 50},
		"ORACLE":    {460, 460, 459, 598, 0, 50},
		"Multipath": {460, 456, 456, 2190, 91, 50},
	},
	"persistent": {
		"DCRD":      {340, 340, 263, 1723, 0, 50},
		"R-Tree":    {340, 193, 193, 422, 147, 50},
		"D-Tree":    {340, 192, 192, 440, 148, 50},
		"ORACLE":    {340, 340, 319, 627, 0, 50},
		"Multipath": {340, 262, 259, 1717, 350, 50},
	},
	"burst": {
		"DCRD":      {460, 460, 454, 745, 0, 50},
		"R-Tree":    {460, 409, 409, 580, 51, 50},
		"D-Tree":    {460, 418, 418, 580, 42, 50},
		"ORACLE":    {460, 460, 460, 602, 0, 50},
		"Multipath": {460, 460, 460, 2217, 106, 50},
	},
	"rtt": {
		"DCRD":      {310, 310, 295, 439, 0, 50},
		"R-Tree":    {310, 284, 284, 310, 26, 50},
		"D-Tree":    {310, 273, 273, 371, 37, 50},
		"ORACLE":    {310, 310, 310, 388, 0, 50},
		"Multipath": {310, 306, 306, 989, 81, 50},
	},
}

// TestGoldenResults locks every approach's scalar results to the values the
// simulator produced before the allocation-free hot-path refactor, proving
// the optimization is behavior-preserving seed for seed.
func TestGoldenResults(t *testing.T) {
	for _, sc := range goldenScenarios() {
		for _, a := range AllApproaches() {
			res, err := RunOne(sc.s, a, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.name, a, err)
			}
			got := goldenScalars{
				Expected:          res.Expected,
				Delivered:         res.Delivered,
				OnTime:            res.OnTime,
				DataTransmissions: res.DataTransmissions,
				Drops:             res.Drops,
				Published:         res.Published,
			}
			want := goldenWant[sc.name][a.String()]
			if got != want {
				t.Errorf("%s/%s: result drifted from golden values:\n got %+v\nwant %+v",
					sc.name, a, got, want)
			}
		}
	}
}

// TestRunOneDeterministic runs every approach twice with the same seed and
// requires byte-identical Results — including the Latencies and LateFactors
// slices, which Collector.Result emits in (packet, node) order precisely so
// this comparison is meaningful.
func TestRunOneDeterministic(t *testing.T) {
	for _, sc := range goldenScenarios() {
		for _, a := range AllApproaches() {
			first, err := RunOne(sc.s, a, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.name, a, err)
			}
			second, err := RunOne(sc.s, a, 0)
			if err != nil {
				t.Fatalf("%s/%s (rerun): %v", sc.name, a, err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("%s/%s: same seed produced different results:\n first %+v\nsecond %+v",
					sc.name, a, first, second)
			}
		}
	}
}

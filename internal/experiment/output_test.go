package experiment

import (
	"strings"
	"testing"
)

func sampleTable() FigureTable {
	return FigureTable{
		Title:  "Sample Ratio Panel",
		XLabel: "Pf",
		Xs:     []float64{0, 0.05, 0.1},
		Series: []Series{
			{Label: "DCRD", Values: []float64{1, 0.99, 0.97}},
			{Label: "D-Tree", Values: []float64{1, 0.9, 0.85}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	tab := sampleTable()
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "Pf,DCRD,D-Tree" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "0.1,0.970000,0.850000") {
		t.Errorf("last row = %q", lines[3])
	}
}

func TestWriteCSVRaggedSeries(t *testing.T) {
	tab := sampleTable()
	tab.Series[1].Values = tab.Series[1].Values[:1]
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.05,0.990000,\n") {
		t.Errorf("missing empty cell for ragged series:\n%s", sb.String())
	}
}

func TestChartRendering(t *testing.T) {
	tab := sampleTable()
	out, err := tab.Chart()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sample Ratio Panel", "(Pf)", "DCRD", "D-Tree"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestChartEmptyTableFails(t *testing.T) {
	tab := FigureTable{Title: "empty"}
	if _, err := tab.Chart(); err == nil {
		t.Error("empty table chart should fail")
	}
}

package experiment

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/algo1"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topology"
)

// Protocol is the behavior every routing approach exposes to the runner:
// handlers are installed on the network at construction; Publish injects a
// packet at its source broker.
type Protocol interface {
	Name() string
	Publish(pkt pubsub.Packet)
}

// Aggregate collects one approach's results across topologies.
type Aggregate struct {
	Approach Approach
	Runs     []metrics.Result
}

// MeanDeliveryRatio averages the delivery ratio across topologies.
func (a Aggregate) MeanDeliveryRatio() float64 {
	return a.mean(func(r metrics.Result) float64 { return r.DeliveryRatio() })
}

// MeanQoSRatio averages the QoS delivery ratio across topologies.
func (a Aggregate) MeanQoSRatio() float64 {
	return a.mean(func(r metrics.Result) float64 { return r.QoSDeliveryRatio() })
}

// MeanPacketsPerSubscriber averages the traffic metric across topologies.
func (a Aggregate) MeanPacketsPerSubscriber() float64 {
	return a.mean(func(r metrics.Result) float64 { return r.PacketsPerSubscriber() })
}

// LateFactors concatenates the deadline-miss factors of all runs (Fig. 7).
func (a Aggregate) LateFactors() []float64 {
	var all []float64
	for _, r := range a.Runs {
		all = append(all, r.LateFactors...)
	}
	return all
}

func (a Aggregate) mean(f func(metrics.Result) float64) float64 {
	if len(a.Runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range a.Runs {
		sum += f(r)
	}
	return sum / float64(len(a.Runs))
}

// Run executes the scenario for every requested approach over
// Scenario.Topologies random topologies. Every approach sees the same
// topologies, workloads and failure patterns, making the comparison
// paired (as in the paper). Cells run in parallel across CPUs; each cell
// is its own deterministic simulation, so results are independent of the
// execution order.
func Run(s Scenario, approaches []Approach) ([]Aggregate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		approach int
		topo     int
	}
	cells := make([]cell, 0, len(approaches)*s.Topologies)
	for topo := 0; topo < s.Topologies; topo++ {
		for i := range approaches {
			cells = append(cells, cell{approach: i, topo: topo})
		}
	}
	results := make([]metrics.Result, len(cells))
	errs := make([]error, len(cells))

	workers := runtime.GOMAXPROCS(0)
	if s.Tracer != nil || workers > len(cells) {
		// A shared tracer is not safe for concurrent use; and never spawn
		// more workers than cells.
		if s.Tracer != nil {
			workers = 1
		} else {
			workers = len(cells)
		}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				c := cells[idx]
				results[idx], errs[idx] = RunOne(s, approaches[c.approach], c.topo)
			}
		}()
	}
	// Dispatch longest-job-first: a DCRD cell costs ~6x a tree cell (see
	// BENCH_baseline.json), so feeding expensive cells to the pool first
	// cuts tail latency — otherwise a slow cell picked up last idles every
	// other worker while it finishes. Results are index-addressed, so the
	// dispatch order never changes the output.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return approachCost(approaches[cells[b].approach]) - approachCost(approaches[cells[a].approach])
	})
	for _, idx := range order {
		next <- idx
	}
	close(next)
	wg.Wait()

	aggs := make([]Aggregate, len(approaches))
	for i, a := range approaches {
		aggs[i].Approach = a
	}
	for idx, c := range cells {
		if errs[idx] != nil {
			return nil, fmt.Errorf("experiment: %v on topology %d: %w",
				approaches[cells[idx].approach], cells[idx].topo, errs[idx])
		}
		aggs[c.approach].Runs = append(aggs[c.approach].Runs, results[idx])
	}
	return aggs, nil
}

// approachCost ranks approaches by measured per-cell simulation cost
// (BENCH_baseline.json ns/op: Multipath > DCRD > Oracle >> D-Tree > R-Tree).
// Only the relative order matters — it drives longest-job-first dispatch.
func approachCost(a Approach) int {
	switch a {
	case Multipath:
		return 5
	case DCRD:
		return 4
	case Oracle:
		return 3
	case DTree:
		return 2
	case RTree:
		return 1
	default:
		return 0
	}
}

// RunOne executes one (scenario, approach, topology index) cell and returns
// its metrics. The topology, workload, publish schedule and failure pattern
// are functions of (Scenario.Seed, topo) only, so every approach is
// evaluated under identical conditions.
func RunOne(s Scenario, a Approach, topo int) (metrics.Result, error) {
	if err := s.Validate(); err != nil {
		return metrics.Result{}, err
	}
	envSeed := deriveSeed(s.Seed, uint64(topo), 0x0e9f)
	envRng := rand.New(rand.NewPCG(envSeed, envSeed^0xda3e39cb94b95bdb))

	g, err := buildGraph(s, envRng)
	if err != nil {
		return metrics.Result{}, err
	}
	w, err := pubsub.Generate(g, pubsub.Config{
		Topics:          s.Topics,
		PublishInterval: s.PublishInterval,
		SubProbMin:      s.SubProbMin,
		SubProbMax:      s.SubProbMax,
		DeadlineFactor:  s.DeadlineFactor,
	}, envRng)
	if err != nil {
		return metrics.Result{}, err
	}

	simSeed := deriveSeed(s.Seed, uint64(topo), 0x51f1)
	sim := des.New(simSeed)
	monitorInterval := s.MonitorInterval
	if monitorInterval <= 0 {
		monitorInterval = 5 * time.Minute
	}
	net, err := netsim.New(sim, g, netsim.Config{
		LossRate:         s.Pl,
		FailureProb:      s.Pf,
		NodeFailureProb:  s.NodeFailureProb,
		FailureEpoch:     time.Second,
		MonitorInterval:  monitorInterval,
		InstantControl:   !s.RoundTripAcks,
		LinkBandwidth:    s.LinkBandwidth,
		QueueCapacity:    s.QueueCapacity,
		MonitorSamples:   s.MonitorSamples,
		MeanFailureBurst: s.MeanFailureBurst,
	}, deriveSeed(s.Seed, uint64(topo), 0xfa17))
	if err != nil {
		return metrics.Result{}, err
	}

	col := metrics.NewCollector()
	proto, err := newProtocol(a, net, w, col, s)
	if err != nil {
		return metrics.Result{}, err
	}

	// With measurement-based monitoring, DCRD refreshes its route tables
	// at every monitoring window (Algorithm 1 re-run on new estimates).
	if s.MonitorSamples > 0 {
		if rebuilder, ok := proto.(interface{ Rebuild() }); ok {
			for at := monitorInterval; at < s.Duration+s.Drain; at += monitorInterval {
				sim.At(at, rebuilder.Rebuild)
			}
		}
	}

	schedulePublishes(sim, w, col, proto, s, envRng)
	sim.RunUntil(s.Duration + s.Drain)
	return col.Result(net.Stats().DataTransmissions), nil
}

// newProtocol constructs the requested approach over the run's network.
func newProtocol(a Approach, net *netsim.Network, w *pubsub.Workload, col *metrics.Collector, s Scenario) (Protocol, error) {
	switch a {
	case DCRD:
		return core.NewRouter(net, w, col, core.RouterOptions{
			M:           s.M,
			Persistent:  s.Persistent,
			MaxLifetime: s.MaxLifetime,
			Build:       algo1.BuildOptions{Ordering: s.Ordering},
			Tracer:      s.Tracer,
		})
	case RTree:
		return baseline.NewTreeRouter(net, w, col, baseline.ReliableTree, s.M)
	case DTree:
		return baseline.NewTreeRouter(net, w, col, baseline.DelayTree, s.M)
	case Oracle:
		return baseline.NewOracleRouter(net, w, col, s.MaxLifetime)
	case Multipath:
		return baseline.NewMultipathRouter(net, w, col, s.M)
	default:
		return nil, fmt.Errorf("experiment: unknown approach %d", int(a))
	}
}

// buildGraph draws the scenario's topology.
func buildGraph(s Scenario, rng *rand.Rand) (*topology.Graph, error) {
	delays := topology.DefaultDelayRange()
	if s.Degree == 0 || s.Degree == s.Nodes-1 {
		return topology.FullMesh(s.Nodes, delays, rng)
	}
	return topology.RandomRegular(s.Nodes, s.Degree, delays, rng)
}

// topicSchedule carries one topic's publish timer: each topic's publisher
// emits one packet per interval, phase-shifted by a random offset so
// publishers do not fire in lockstep. Instead of enqueuing every publish
// event up front (one heap-allocated closure per publish — ~72k for a
// full-scale 2 h run), each topic re-arms a single self-rescheduling timer
// through the simulator's closure-free AtFunc.
type topicSchedule struct {
	sim      *des.Simulator
	col      *metrics.Collector
	proto    Protocol
	topic    pubsub.Topic
	interval time.Duration
	// horizon bounds the schedule: publishes happen strictly before it.
	horizon time.Duration
	// at is this timer's current fire time; nextID the packet ID it will
	// assign. IDs stay contiguous per topic in topic order — exactly the
	// numbering the old eager loop produced.
	at     time.Duration
	nextID uint64
}

// publishTick emits one packet for the schedule passed as arg and re-arms
// the timer for the next interval while it stays inside the horizon.
func publishTick(arg any) {
	ts := arg.(*topicSchedule)
	pkt := pubsub.Packet{
		ID:          ts.nextID,
		Topic:       ts.topic.ID,
		Source:      ts.topic.Publisher,
		PublishedAt: ts.sim.Now(),
	}
	ts.col.Publish(&pkt, ts.topic.Subscribers)
	ts.proto.Publish(pkt)
	ts.nextID++
	ts.at += ts.interval
	if ts.at < ts.horizon {
		ts.sim.AtFunc(ts.at, publishTick, ts)
	}
}

// schedulePublishes arms one self-rescheduling publish timer per topic.
func schedulePublishes(sim *des.Simulator, w *pubsub.Workload, col *metrics.Collector, proto Protocol, s Scenario, rng *rand.Rand) {
	var nextID uint64
	for _, t := range w.Topics() {
		offset := time.Duration(rng.Int64N(int64(s.PublishInterval)))
		if offset >= s.Duration {
			continue
		}
		ts := &topicSchedule{
			sim:      sim,
			col:      col,
			proto:    proto,
			topic:    t,
			interval: s.PublishInterval,
			horizon:  s.Duration,
			at:       offset,
			nextID:   nextID + 1,
		}
		// Reserve this topic's contiguous ID block before moving on.
		nextID += uint64((s.Duration-offset-1)/s.PublishInterval) + 1
		sim.AtFunc(offset, publishTick, ts)
	}
}

// deriveSeed mixes the experiment seed with a topology index and a salt so
// independent random streams never collide.
func deriveSeed(seed, topo, salt uint64) uint64 {
	x := seed ^ (topo+1)*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x
}

package experiment

import (
	"testing"
	"time"

	"repro/internal/algo1"
)

func TestOrderingAblationRatioWins(t *testing.T) {
	// On a failure-heavy sparse overlay, the Theorem-1 d/r order must not
	// lose (beyond noise) to the arbitrary order on QoS delivery ratio.
	s := quickScenario()
	s.Duration = 40 * time.Second
	s.Degree = 5
	s.Pf = 0.08
	run := func(ord algo1.Ordering) float64 {
		s := s
		s.Ordering = ord
		res, err := RunOne(s, DCRD, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.QoSDeliveryRatio()
	}
	ratio := run(algo1.RatioOrder)
	arbitrary := run(algo1.ArbitraryOrder)
	if ratio+0.02 < arbitrary {
		t.Errorf("Theorem-1 order (%.4f) lost to arbitrary order (%.4f)", ratio, arbitrary)
	}
	// Every ordering still delivers (ordering never affects r, only d).
	for _, ord := range []algo1.Ordering{algo1.DelayOrder, algo1.ReliabilityOrder} {
		if q := run(ord); q <= 0.5 {
			t.Errorf("ordering %v collapsed to QoS ratio %v", ord, q)
		}
	}
}

func TestOrderingStrings(t *testing.T) {
	for ord, want := range map[algo1.Ordering]string{
		algo1.RatioOrder:       "d/r (Theorem 1)",
		algo1.DelayOrder:       "delay-only",
		algo1.ReliabilityOrder: "reliability-only",
		algo1.ArbitraryOrder:   "arbitrary",
	} {
		if ord.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ord), ord.String(), want)
		}
	}
}

func TestNodeFailureExtensionDegradesTrees(t *testing.T) {
	s := quickScenario()
	s.Duration = 40 * time.Second
	s.Degree = 8
	s.NodeFailureProb = 0.05
	dcrd, err := RunOne(s, DCRD, 0)
	if err != nil {
		t.Fatal(err)
	}
	dtree, err := RunOne(s, DTree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dcrd.DeliveryRatio() <= dtree.DeliveryRatio() {
		t.Errorf("DCRD (%v) should beat D-Tree (%v) under node failures",
			dcrd.DeliveryRatio(), dtree.DeliveryRatio())
	}
	// Destinations themselves fail ~5% of epochs, so even DCRD cannot be
	// perfect — but it should stay high.
	if dcrd.DeliveryRatio() < 0.85 {
		t.Errorf("DCRD delivery ratio %v suspiciously low under Pn=0.05", dcrd.DeliveryRatio())
	}
}

func TestPersistencyImprovesDeliveryOnSparseGraph(t *testing.T) {
	s := quickScenario()
	s.Duration = 60 * time.Second
	s.Degree = 3
	s.Pf = 0.15
	base, err := RunOne(s, DCRD, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Persistent = true
	persist, err := RunOne(s, DCRD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if persist.DeliveryRatio() < base.DeliveryRatio() {
		t.Errorf("persistency lowered delivery ratio: %v -> %v",
			base.DeliveryRatio(), persist.DeliveryRatio())
	}
	if persist.Drops > base.Drops {
		t.Errorf("persistency increased drops: %d -> %d", base.Drops, persist.Drops)
	}
}

func TestExtensionsRegistry(t *testing.T) {
	ext := Extensions()
	for _, name := range ExtensionNames() {
		if ext[name] == nil {
			t.Errorf("extension %q missing", name)
		}
	}
	if len(ext) != len(ExtensionNames()) {
		t.Errorf("registry (%d) and names (%d) out of sync", len(ext), len(ExtensionNames()))
	}
}

func TestScenarioNodeFailureValidation(t *testing.T) {
	s := DefaultScenario()
	s.NodeFailureProb = 1.5
	if err := s.Validate(); err == nil {
		t.Error("NodeFailureProb > 1 accepted")
	}
}

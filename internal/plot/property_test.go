package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Chart never panics and always renders a bounded canvas for any
// finite input series.
func TestChartRobustnessProperty(t *testing.T) {
	f := func(ysRaw []float64, w, h uint8) bool {
		ys := make([]float64, 0, len(ysRaw))
		for _, y := range ysRaw {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			ys = append(ys, y)
		}
		if len(ys) == 0 {
			return true
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		out, err := Chart([]Series{{Label: "s", Xs: xs, Ys: ys}}, Options{
			Width:  8 + int(w)%80,
			Height: 4 + int(h)%30,
		})
		if err != nil {
			return false
		}
		// The marker appears and no line exceeds the canvas width plus
		// gutter by an order of magnitude.
		if !strings.Contains(out, "*") {
			return false
		}
		for _, line := range strings.Split(out, "\n") {
			if len(line) > 300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package plot

import (
	"strings"
	"testing"
)

func line(label string, ys ...float64) Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return Series{Label: label, Xs: xs, Ys: ys}
}

func TestChartBasics(t *testing.T) {
	out, err := Chart([]Series{line("up", 0, 1, 2, 3)}, Options{
		Title:  "rising",
		XLabel: "step",
		Width:  20,
		Height: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rising", "(step)", "* up", "|", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + x labels + legend.
	if len(lines) < 6+3 {
		t.Errorf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestChartMarkerPositions(t *testing.T) {
	// A flat series at the max should put markers on the top row; at the
	// min on the bottom row.
	out, err := Chart([]Series{
		line("hi", 1, 1, 1),
		line("lo", 0, 0, 0),
	}, Options{Width: 12, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(out, "\n")
	if !strings.Contains(rows[0], "*") {
		t.Errorf("top row missing 'hi' markers:\n%s", out)
	}
	if !strings.Contains(rows[4], "o") {
		t.Errorf("bottom row missing 'lo' markers:\n%s", out)
	}
}

func TestChartFixedYRange(t *testing.T) {
	out, err := Chart([]Series{line("s", 0.5, 0.6)}, Options{
		Width: 12, Height: 5, YMin: 0, YMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 |") || !strings.Contains(out, "0 |") {
		t.Errorf("fixed range labels missing:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart(nil, Options{}); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Chart([]Series{{Label: "bad", Xs: []float64{1}, Ys: nil}}, Options{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Chart([]Series{line("s", 1)}, Options{Width: 2, Height: 2}); err == nil {
		t.Error("tiny canvas accepted")
	}
	if _, err := Chart([]Series{{Label: "empty"}}, Options{}); err == nil {
		t.Error("pointless series accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Chart([]Series{line("c", 5, 5, 5)}, Options{Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out, err := Chart([]Series{{Label: "pt", Xs: []float64{2}, Ys: []float64{3}}}, Options{Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestChartManySeriesLegend(t *testing.T) {
	series := make([]Series, 6)
	for i := range series {
		series[i] = line(strings.Repeat("s", i+1), float64(i), float64(i+1))
	}
	out, err := Chart(series, Options{Width: 30, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if !strings.Contains(out, series[i].Label) {
			t.Errorf("legend missing %q", series[i].Label)
		}
	}
}

// Package plot renders simple ASCII line charts for the experiment
// harness: each figure's series plotted on a character canvas with axes,
// per-series markers and a legend — enough to eyeball the paper's curve
// shapes straight from a terminal.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	Xs    []float64
	Ys    []float64
}

// Options controls the canvas.
type Options struct {
	// Width and Height are the plot-area size in characters
	// (defaults 60x16).
	Width, Height int
	// YMin/YMax fix the y range; with YMin == YMax the range is derived
	// from the data with a small margin.
	YMin, YMax float64
	// Title is printed above the chart.
	Title string
	// XLabel captions the x axis.
	XLabel string
}

// markers cycles through per-series point glyphs.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Chart renders the series onto one ASCII canvas.
func Chart(series []Series, opts Options) (string, error) {
	if len(series) == 0 {
		return "", errors.New("plot: no series")
	}
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	height := opts.Height
	if height <= 0 {
		height = 16
	}
	if width < 8 || height < 4 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Xs) != len(s.Ys) {
			return "", fmt.Errorf("plot: series %q has %d xs but %d ys", s.Label, len(s.Xs), len(s.Ys))
		}
		for i := range s.Xs {
			xmin = math.Min(xmin, s.Xs[i])
			xmax = math.Max(xmax, s.Xs[i])
			ymin = math.Min(ymin, s.Ys[i])
			ymax = math.Max(ymax, s.Ys[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return "", errors.New("plot: series contain no points")
	}
	if opts.YMin != opts.YMax {
		ymin, ymax = opts.YMin, opts.YMax
	} else if ymin == ymax {
		ymin -= 0.5
		ymax += 0.5
	} else {
		margin := (ymax - ymin) * 0.05
		ymin -= margin
		ymax += margin
	}
	if xmin == xmax {
		xmin -= 0.5
		xmax += 0.5
	}

	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", width))
	}
	plotX := func(x float64) int {
		return int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
	}
	plotY := func(y float64) int {
		// Row 0 is the top.
		return height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with interpolated steps, then stamp
		// the data points with the series marker.
		for i := 0; i+1 < len(s.Xs); i++ {
			x0, y0 := plotX(s.Xs[i]), plotY(s.Ys[i])
			x1, y1 := plotX(s.Xs[i+1]), plotY(s.Ys[i+1])
			steps := max(abs(x1-x0), abs(y1-y0))
			for t := 0; t <= steps; t++ {
				var cx, cy int
				if steps == 0 {
					cx, cy = x0, y0
				} else {
					cx = x0 + (x1-x0)*t/steps
					cy = y0 + (y1-y0)*t/steps
				}
				cx = clamp(cx, 0, width-1)
				cy = clamp(cy, 0, height-1)
				if canvas[cy][cx] == ' ' {
					canvas[cy][cx] = '.'
				}
			}
		}
		for i := range s.Xs {
			cx := clamp(plotX(s.Xs[i]), 0, width-1)
			cy := clamp(plotY(s.Ys[i]), 0, height-1)
			canvas[cy][cx] = mark
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		sb.WriteString(opts.Title)
		sb.WriteByte('\n')
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	gutter := max(len(yTop), len(yBot))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", gutter)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", gutter, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", gutter, yBot)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.WriteString(string(canvas[r]))
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", gutter))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	xAxis := fmt.Sprintf("%-*s%.4g%s%.4g", gutter+2, "", xmin,
		strings.Repeat(" ", max(1, width-len(fmt.Sprintf("%.4g", xmin))-len(fmt.Sprintf("%.4g", xmax)))),
		xmax)
	sb.WriteString(xAxis)
	if opts.XLabel != "" {
		sb.WriteString("  (")
		sb.WriteString(opts.XLabel)
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s", markers[si%len(markers)], s.Label)
		if (si+1)%4 == 0 || si == len(series)-1 {
			sb.WriteByte('\n')
		} else {
			sb.WriteString("   ")
		}
	}
	return sb.String(), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

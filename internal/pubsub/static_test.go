package pubsub

import (
	"testing"
	"time"

	"repro/internal/topology"
)

func staticGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddLink(l[0], l[1], 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewStaticBasic(t *testing.T) {
	g := staticGraph(t)
	w, err := NewStatic(g, DefaultConfig(), []Topic{
		{Publisher: 0, Subscribers: []Subscription{{Node: 2}, {Node: 3}}},
		{Publisher: 3, Subscribers: []Subscription{{Node: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Topics()) != 2 {
		t.Fatalf("topics = %d", len(w.Topics()))
	}
	// Topic IDs rewritten to indices.
	if w.Topic(0).ID != 0 || w.Topic(1).ID != 1 {
		t.Error("topic IDs not rewritten")
	}
	// Zero deadlines filled as factor x shortest path: node 2 is 20ms from
	// publisher 0, factor 3 -> 60ms.
	d, ok := w.Deadline(0, 2)
	if !ok || d != 60*time.Millisecond {
		t.Errorf("deadline(0,2) = %v, %v; want 60ms", d, ok)
	}
}

func TestNewStaticKeepsExplicitDeadline(t *testing.T) {
	g := staticGraph(t)
	w, err := NewStatic(g, DefaultConfig(), []Topic{
		{Publisher: 0, Subscribers: []Subscription{{Node: 1, Deadline: 123 * time.Millisecond}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := w.Deadline(0, 1); d != 123*time.Millisecond {
		t.Errorf("deadline = %v, want 123ms", d)
	}
}

func TestNewStaticValidation(t *testing.T) {
	g := staticGraph(t)
	tests := []struct {
		name   string
		topics []Topic
	}{
		{name: "publisher out of range", topics: []Topic{{Publisher: 9, Subscribers: []Subscription{{Node: 1}}}}},
		{name: "negative publisher", topics: []Topic{{Publisher: -1, Subscribers: []Subscription{{Node: 1}}}}},
		{name: "no subscribers", topics: []Topic{{Publisher: 0}}},
		{name: "subscriber out of range", topics: []Topic{{Publisher: 0, Subscribers: []Subscription{{Node: 7}}}}},
		{name: "duplicate subscriber", topics: []Topic{{Publisher: 0, Subscribers: []Subscription{{Node: 1}, {Node: 1}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewStatic(g, DefaultConfig(), tt.topics); err == nil {
				t.Error("invalid static workload accepted")
			}
		})
	}
	// Bad config also rejected.
	cfg := DefaultConfig()
	cfg.Topics = 0
	if _, err := NewStatic(g, cfg, []Topic{{Publisher: 0, Subscribers: []Subscription{{Node: 1}}}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNewStaticUnreachableSubscriber(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Node 2 is disconnected; a zero deadline cannot be derived.
	if _, err := NewStatic(g, DefaultConfig(), []Topic{
		{Publisher: 0, Subscribers: []Subscription{{Node: 2}}},
	}); err == nil {
		t.Error("unreachable subscriber with derived deadline accepted")
	}
	// With an explicit deadline it is allowed (the route may appear later
	// in live deployments).
	if _, err := NewStatic(g, DefaultConfig(), []Topic{
		{Publisher: 0, Subscribers: []Subscription{{Node: 2, Deadline: time.Second}}},
	}); err != nil {
		t.Errorf("explicit deadline for unreachable subscriber rejected: %v", err)
	}
}

func TestNewStaticPublisherTreeAndDestinations(t *testing.T) {
	g := staticGraph(t)
	w, err := NewStatic(g, DefaultConfig(), []Topic{
		{Publisher: 1, Subscribers: []Subscription{{Node: 3}, {Node: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree := w.PublisherTree(0); tree.Source != 1 {
		t.Errorf("tree source = %d, want 1", tree.Source)
	}
	dests := w.Destinations(0)
	if len(dests) != 2 || dests[0] != 3 || dests[1] != 0 {
		t.Errorf("destinations = %v", dests)
	}
	if w.TotalSubscriptions() != 2 {
		t.Errorf("total subscriptions = %d", w.TotalSubscriptions())
	}
}

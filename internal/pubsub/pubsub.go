// Package pubsub models the publish/subscribe workload layer of the paper's
// evaluation: topics, publisher placement, probabilistic subscriber
// placement, per-pair QoS delay requirements and the published-packet model.
//
// The paper's setup (§IV-A): 10 topics with one publisher each on randomly
// chosen broker nodes, each publishing 1 packet/s (an ADS-B-like rate); for
// every topic a subscription probability Ps is drawn uniformly from
// [0.2, 0.6] and each broker node subscribes with probability Ps; the delay
// requirement for a (publisher, subscriber) pair is a multiple (3x by
// default, swept in Fig. 6) of the shortest-path delay between them.
package pubsub

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/topology"
)

// Packet is one published message. Destinations and deadlines are carried by
// the Workload (they are properties of the subscription set, not the
// packet), so routing layers attach their own per-copy state.
type Packet struct {
	// ID is unique across the run.
	ID uint64
	// Topic identifies the subscription set the packet fans out to.
	Topic int
	// Source is the broker node hosting the publisher.
	Source int
	// PublishedAt is the virtual publish time.
	PublishedAt time.Duration
}

// Subscription is one (topic, broker node) subscriber with its QoS delay
// requirement D_PS relative to the topic's publisher.
type Subscription struct {
	Topic    int
	Node     int
	Deadline time.Duration
}

// Topic groups a publisher with its subscribers.
type Topic struct {
	ID          int
	Publisher   int
	Subscribers []Subscription
}

// Config parameterizes workload generation.
type Config struct {
	// Topics is the number of topics; each gets exactly one publisher
	// (10 in the paper).
	Topics int
	// PublishInterval is the time between packets of one publisher
	// (1 s in the paper).
	PublishInterval time.Duration
	// SubProbMin/SubProbMax bound the per-topic subscription probability
	// Ps ~ U[SubProbMin, SubProbMax] ([0.2, 0.6] in the paper).
	SubProbMin, SubProbMax float64
	// DeadlineFactor multiplies the shortest-path delay to form the QoS
	// requirement (3 in the paper; swept in Fig. 6).
	DeadlineFactor float64
}

// DefaultConfig returns the paper's workload parameters.
func DefaultConfig() Config {
	return Config{
		Topics:          10,
		PublishInterval: time.Second,
		SubProbMin:      0.2,
		SubProbMax:      0.6,
		DeadlineFactor:  3,
	}
}

func (c Config) validate() error {
	if c.Topics <= 0 {
		return errors.New("pubsub: Topics must be positive")
	}
	if c.PublishInterval <= 0 {
		return errors.New("pubsub: PublishInterval must be positive")
	}
	if c.SubProbMin < 0 || c.SubProbMax > 1 || c.SubProbMin > c.SubProbMax {
		return fmt.Errorf("pubsub: invalid subscription probability range [%v,%v]",
			c.SubProbMin, c.SubProbMax)
	}
	if c.DeadlineFactor <= 0 {
		return errors.New("pubsub: DeadlineFactor must be positive")
	}
	return nil
}

// Workload is a concrete draw of publishers, subscribers and deadlines over
// a given overlay topology.
type Workload struct {
	cfg    Config
	topics []Topic
	// deadline[topic][node] = D_PS for the topic's publisher P and
	// subscriber node.
	deadline []map[int]time.Duration
	// spDelay[topic] is the shortest-path delay tree rooted at the topic's
	// publisher, used for D_XS computation by DCRD and for deadline setup.
	spDelay []*topology.ShortestPathTree
}

// Generate draws a workload over g. Every topic's publisher is placed
// uniformly at random; subscribers are placed per the paper's Ps process;
// topics with no subscriber (or whose only subscribers sit on the publisher
// itself, which would make the delay requirement degenerate) are redrawn.
func Generate(g *topology.Graph, cfg Config, rng *rand.Rand) (*Workload, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, errors.New("pubsub: need at least 2 broker nodes")
	}
	w := &Workload{
		cfg:      cfg,
		topics:   make([]Topic, 0, cfg.Topics),
		deadline: make([]map[int]time.Duration, cfg.Topics),
		spDelay:  make([]*topology.ShortestPathTree, cfg.Topics),
	}
	for t := 0; t < cfg.Topics; t++ {
		topic, tree, deadlines, err := drawTopic(g, t, cfg, rng)
		if err != nil {
			return nil, err
		}
		w.topics = append(w.topics, topic)
		w.spDelay[t] = tree
		w.deadline[t] = deadlines
	}
	return w, nil
}

// drawTopic retries subscriber placement until the topic has at least one
// subscriber on a node other than its publisher.
func drawTopic(g *topology.Graph, id int, cfg Config, rng *rand.Rand) (Topic, *topology.ShortestPathTree, map[int]time.Duration, error) {
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pub := rng.IntN(g.N())
		ps := cfg.SubProbMin + rng.Float64()*(cfg.SubProbMax-cfg.SubProbMin)
		var subNodes []int
		for node := 0; node < g.N(); node++ {
			if node == pub {
				continue
			}
			if rng.Float64() < ps {
				subNodes = append(subNodes, node)
			}
		}
		if len(subNodes) == 0 {
			continue
		}
		tree := topology.Dijkstra(g, pub, nil)
		topic := Topic{ID: id, Publisher: pub}
		deadlines := make(map[int]time.Duration, len(subNodes))
		ok := true
		for _, node := range subNodes {
			if tree.Dist[node] == topology.Infinite {
				ok = false // disconnected draw; topology generators prevent this
				break
			}
			d := time.Duration(cfg.DeadlineFactor * float64(tree.Dist[node]))
			topic.Subscribers = append(topic.Subscribers, Subscription{
				Topic:    id,
				Node:     node,
				Deadline: d,
			})
			deadlines[node] = d
		}
		if !ok {
			continue
		}
		return topic, tree, deadlines, nil
	}
	return Topic{}, nil, nil, fmt.Errorf("pubsub: could not place subscribers for topic %d", id)
}

// NewStatic builds a workload from explicit topics instead of random
// placement — used by tests, examples and the live middleware. Subscriptions
// with a zero Deadline get cfg.DeadlineFactor × shortest-path delay; an
// explicit Deadline is kept as-is. Topic IDs are rewritten to slice indices.
func NewStatic(g *topology.Graph, cfg Config, topics []Topic) (*Workload, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &Workload{
		cfg:      cfg,
		topics:   make([]Topic, 0, len(topics)),
		deadline: make([]map[int]time.Duration, len(topics)),
		spDelay:  make([]*topology.ShortestPathTree, len(topics)),
	}
	for id, in := range topics {
		if in.Publisher < 0 || in.Publisher >= g.N() {
			return nil, fmt.Errorf("pubsub: topic %d publisher %d out of range", id, in.Publisher)
		}
		if len(in.Subscribers) == 0 {
			return nil, fmt.Errorf("pubsub: topic %d has no subscribers", id)
		}
		tree := topology.Dijkstra(g, in.Publisher, nil)
		topic := Topic{ID: id, Publisher: in.Publisher}
		deadlines := make(map[int]time.Duration, len(in.Subscribers))
		for _, s := range in.Subscribers {
			if s.Node < 0 || s.Node >= g.N() {
				return nil, fmt.Errorf("pubsub: topic %d subscriber %d out of range", id, s.Node)
			}
			if _, dup := deadlines[s.Node]; dup {
				return nil, fmt.Errorf("pubsub: topic %d duplicate subscriber %d", id, s.Node)
			}
			d := s.Deadline
			if d == 0 {
				if tree.Dist[s.Node] == topology.Infinite {
					return nil, fmt.Errorf("pubsub: topic %d subscriber %d unreachable", id, s.Node)
				}
				d = time.Duration(cfg.DeadlineFactor * float64(tree.Dist[s.Node]))
			}
			topic.Subscribers = append(topic.Subscribers, Subscription{
				Topic:    id,
				Node:     s.Node,
				Deadline: d,
			})
			deadlines[s.Node] = d
		}
		w.topics = append(w.topics, topic)
		w.spDelay[id] = tree
		w.deadline[id] = deadlines
	}
	return w, nil
}

// Config returns the generation parameters.
func (w *Workload) Config() Config { return w.cfg }

// Topics returns all topics. The slice is owned by the workload.
func (w *Workload) Topics() []Topic { return w.topics }

// Topic returns topic t.
func (w *Workload) Topic(t int) Topic { return w.topics[t] }

// Destinations returns the subscriber broker nodes of topic t.
func (w *Workload) Destinations(t int) []int {
	subs := w.topics[t].Subscribers
	dests := make([]int, len(subs))
	for i, s := range subs {
		dests[i] = s.Node
	}
	return dests
}

// Deadline returns the QoS delay requirement D_PS for topic t's publisher
// and subscriber node, and whether that node subscribes to t.
func (w *Workload) Deadline(t, node int) (time.Duration, bool) {
	d, ok := w.deadline[t][node]
	return d, ok
}

// PublisherTree returns the shortest-delay tree rooted at topic t's
// publisher. DCRD uses it to derive per-node delay budgets
// D_XS = D_PS - SP(P, X).
func (w *Workload) PublisherTree(t int) *topology.ShortestPathTree {
	return w.spDelay[t]
}

// TotalSubscriptions counts (topic, subscriber) pairs across all topics.
func (w *Workload) TotalSubscriptions() int {
	total := 0
	for _, t := range w.topics {
		total += len(t.Subscribers)
	}
	return total
}

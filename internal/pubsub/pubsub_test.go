package pubsub

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"
)

func testRng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x5555))
}

func testGraph(t *testing.T, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.FullMesh(20, topology.DefaultDelayRange(), testRng(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateBasics(t *testing.T) {
	g := testGraph(t, 1)
	w, err := Generate(g, DefaultConfig(), testRng(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Topics()) != 10 {
		t.Fatalf("topics = %d, want 10", len(w.Topics()))
	}
	for _, topic := range w.Topics() {
		if topic.Publisher < 0 || topic.Publisher >= g.N() {
			t.Errorf("topic %d publisher %d out of range", topic.ID, topic.Publisher)
		}
		if len(topic.Subscribers) == 0 {
			t.Errorf("topic %d has no subscribers", topic.ID)
		}
		for _, s := range topic.Subscribers {
			if s.Node == topic.Publisher {
				t.Errorf("topic %d subscriber on publisher node", topic.ID)
			}
			if s.Topic != topic.ID {
				t.Errorf("subscription topic mismatch: %d vs %d", s.Topic, topic.ID)
			}
			if s.Deadline <= 0 {
				t.Errorf("topic %d deadline %v not positive", topic.ID, s.Deadline)
			}
		}
	}
}

func TestDeadlineIsFactorTimesShortestPath(t *testing.T) {
	g := testGraph(t, 3)
	cfg := DefaultConfig()
	cfg.DeadlineFactor = 3
	w, err := Generate(g, cfg, testRng(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range w.Topics() {
		tree := topology.Dijkstra(g, topic.Publisher, nil)
		for _, s := range topic.Subscribers {
			want := 3 * tree.Dist[s.Node]
			if s.Deadline != want {
				t.Errorf("topic %d sub %d deadline = %v, want %v", topic.ID, s.Node, s.Deadline, want)
			}
			got, ok := w.Deadline(topic.ID, s.Node)
			if !ok || got != want {
				t.Errorf("Deadline lookup (%v, %v) mismatch for topic %d sub %d", got, ok, topic.ID, s.Node)
			}
		}
	}
}

func TestDeadlineLookupMissing(t *testing.T) {
	g := testGraph(t, 5)
	w, err := Generate(g, DefaultConfig(), testRng(6))
	if err != nil {
		t.Fatal(err)
	}
	topic := w.Topic(0)
	if _, ok := w.Deadline(0, topic.Publisher); ok {
		t.Error("publisher node should not be a subscriber")
	}
}

func TestDestinationsMatchSubscribers(t *testing.T) {
	g := testGraph(t, 7)
	w, err := Generate(g, DefaultConfig(), testRng(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range w.Topics() {
		dests := w.Destinations(topic.ID)
		if len(dests) != len(topic.Subscribers) {
			t.Fatalf("topic %d destinations %d != subscribers %d", topic.ID, len(dests), len(topic.Subscribers))
		}
		for i, s := range topic.Subscribers {
			if dests[i] != s.Node {
				t.Errorf("topic %d dest[%d] = %d, want %d", topic.ID, i, dests[i], s.Node)
			}
		}
	}
}

func TestPublisherTree(t *testing.T) {
	g := testGraph(t, 9)
	w, err := Generate(g, DefaultConfig(), testRng(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range w.Topics() {
		tree := w.PublisherTree(topic.ID)
		if tree.Source != topic.Publisher {
			t.Errorf("topic %d tree rooted at %d, want %d", topic.ID, tree.Source, topic.Publisher)
		}
	}
}

func TestTotalSubscriptions(t *testing.T) {
	g := testGraph(t, 11)
	w, err := Generate(g, DefaultConfig(), testRng(12))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, topic := range w.Topics() {
		sum += len(topic.Subscribers)
	}
	if got := w.TotalSubscriptions(); got != sum {
		t.Errorf("TotalSubscriptions = %d, want %d", got, sum)
	}
	if sum == 0 {
		t.Error("workload has zero subscriptions")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGraph(t, 13)
	w1, err := Generate(g, DefaultConfig(), testRng(14))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(g, DefaultConfig(), testRng(14))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Topics() {
		a, b := w1.Topic(i), w2.Topic(i)
		if a.Publisher != b.Publisher || len(a.Subscribers) != len(b.Subscribers) {
			t.Fatalf("topic %d differs across identical seeds", i)
		}
		for j := range a.Subscribers {
			if a.Subscribers[j] != b.Subscribers[j] {
				t.Fatalf("topic %d subscriber %d differs", i, j)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t, 15)
	rng := testRng(16)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero topics", mutate: func(c *Config) { c.Topics = 0 }},
		{name: "zero interval", mutate: func(c *Config) { c.PublishInterval = 0 }},
		{name: "bad prob range", mutate: func(c *Config) { c.SubProbMin = 0.7; c.SubProbMax = 0.3 }},
		{name: "prob > 1", mutate: func(c *Config) { c.SubProbMax = 1.5 }},
		{name: "negative prob", mutate: func(c *Config) { c.SubProbMin = -0.1 }},
		{name: "zero factor", mutate: func(c *Config) { c.DeadlineFactor = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Generate(g, cfg, rng); err == nil {
				t.Errorf("config %+v should be rejected", cfg)
			}
		})
	}
	if _, err := Generate(topology.NewGraph(1), DefaultConfig(), rng); err == nil {
		t.Error("1-node graph should be rejected")
	}
}

// Property: for any valid seed, every topic has >= 1 subscriber, none on the
// publisher, and deadlines scale linearly with the factor.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed uint64, factorRaw uint8) bool {
		factor := 1.5 + float64(factorRaw%10)*0.5
		g, err := topology.FullMesh(12, topology.DefaultDelayRange(), testRng(seed))
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.Topics = 4
		cfg.DeadlineFactor = factor
		w, err := Generate(g, cfg, testRng(seed+1))
		if err != nil {
			return false
		}
		for _, topic := range w.Topics() {
			if len(topic.Subscribers) == 0 {
				return false
			}
			tree := topology.Dijkstra(g, topic.Publisher, nil)
			for _, s := range topic.Subscribers {
				if s.Node == topic.Publisher {
					return false
				}
				want := time.Duration(factor * float64(tree.Dist[s.Node]))
				if s.Deadline != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

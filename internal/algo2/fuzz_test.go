package algo2

import (
	"testing"
	"time"
)

// fuzzTimer is one armed engine timer in the fuzz harness. Matching the
// shell contract, a timer fires at most once and never after CancelTimer.
type fuzzTimer struct {
	fn      func(any)
	arg     any
	stopped bool
	fired   bool
}

// fuzzDeps emulates an arbitrary environment around one engine at node 1
// of a 6-node overlay: timers fire under fuzzer control and in any order,
// links flap, and neighbor 5 is a table entry with no link at all
// (AckWait !ok), covering the deferred-reprocess path.
type fuzzDeps struct {
	now      time.Duration
	frameSeq uint64
	timers   []*fuzzTimer
	sent     []uint64 // frame IDs observed in Send, acked or not
	down     [6]bool

	sends    int
	delivers int
	drops    int
}

func (d *fuzzDeps) Now() time.Duration { return d.now }

func (d *fuzzDeps) AfterFunc(_ time.Duration, fn func(any), arg any) *fuzzTimer {
	tm := &fuzzTimer{fn: fn, arg: arg}
	d.timers = append(d.timers, tm)
	return tm
}

func (d *fuzzDeps) CancelTimer(tm *fuzzTimer) { tm.stopped = true }

func (d *fuzzDeps) NextFrameID() uint64 {
	d.frameSeq++
	return d.frameSeq
}

func (d *fuzzDeps) AckWait(k int) (time.Duration, bool) {
	if k == 5 {
		return 0, false // in the tables, but no such link
	}
	return time.Millisecond, true
}

func (d *fuzzDeps) Send(f *Frame) {
	d.sends++
	d.sent = append(d.sent, f.ID)
}

var fuzzLists = map[int][]int{
	0: {2, 0, 5},
	2: {2, 3, 5},
	3: {3, 2, 4},
	4: {4, 3, 5},
	5: {5, 2},
}

func (d *fuzzDeps) SendingList(_ int32, dest int) []int { return fuzzLists[dest] }

func (d *fuzzDeps) LinkUp(k int) bool { return k >= 0 && k < 6 && !d.down[k] }

func (d *fuzzDeps) Deliver(*Packet, int) { d.delivers++ }

func (d *fuzzDeps) Drop(_ *Packet, dests []int, _ DropReason) { d.drops += len(dests) }

func (d *fuzzDeps) AckTimedOut(int) {}

func (d *fuzzDeps) NextRetryAt(now time.Duration) time.Duration {
	return now + 5*time.Millisecond
}

// fireTimer fires armed timer i if it is still eligible.
func (d *fuzzDeps) fireTimer(i int) {
	tm := d.timers[i]
	if tm.stopped || tm.fired {
		return
	}
	tm.fired = true
	tm.fn(tm.arg)
}

// FuzzEngine feeds the engine's state machine arbitrary interleavings of
// publishes, received frames, duplicate frames, (stale) ACKs, timer firings
// and clock jumps, then drains every copy and checks that nothing panicked,
// no frame was processed twice, and all pooled state came back (pool
// round-trip counts return to zero, no flights leak).
func FuzzEngine(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x21, 0x30, 0x40})
	f.Add([]byte{0x13, 0x13, 0x50, 0x51, 0x52, 0x31})
	f.Add([]byte{0x8f, 0x0f, 0x60, 0x50, 0x20, 0x50, 0x42, 0x75, 0x50})
	f.Add([]byte{0xff, 0x1f, 0x2f, 0x3f, 0x4f, 0x5f, 0x6f, 0x7f})
	// Cross-shard packet-ID collisions: distinct frames whose packet IDs
	// share low counter bits but differ in the high origin bits (the shape
	// the sharded broker's brokerID<<48 layout produces), interleaved with
	// replays, ACKs and timers.
	f.Add([]byte{0x02, 0x10, 0x14, 0x18, 0x1c, 0x20, 0x30, 0x50})
	f.Add([]byte{0x07, 0x10, 0x10, 0x14, 0x20, 0x1c, 0x18, 0x31, 0x52, 0x65, 0x50})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		deps := &fuzzDeps{}
		pools := NewPools[*fuzzTimer](6)
		cfg := Config{
			NodeID:      1,
			M:           1 + int(data[0]&3),
			AckGuard:    time.Millisecond,
			MaxLifetime: 50 * time.Millisecond,
			Persistent:  data[0]&4 != 0,
		}
		eng := NewEngine[*fuzzTimer](cfg, deps, pools)

		var pktSeq, inSeq uint64
		var lastIn Inbound
		haveIn := false
		destPool := [][]int{{3}, {2, 3}, {0, 3, 4}, {1}, {1, 4}, {3, 5}}
		pathPool := [][]int{{0}, {0, 2}, {0, 1, 2}, {2, 0}, {0, 2, 3}}

		for i := 1; i < len(data); i++ {
			b := data[i]
			op, arg := b>>4, int(b&0x0f)
			switch op % 8 {
			case 0: // publish at the origin
				pktSeq++
				eng.Publish(Packet{
					ID:          pktSeq,
					Topic:       7,
					Source:      1,
					PublishedAt: deps.now,
				}, destPool[arg%len(destPool)])
			case 1: // receive a fresh frame
				inSeq++
				lastIn = Inbound{
					FrameID: 1<<40 | inSeq, // disjoint from NextFrameID space
					From:    0,
					Pkt: Packet{
						// High bits vary by arg while the low counter bits
						// collide (inSeq&3): distinct frames can carry the
						// same packet ID, and different-origin packet IDs
						// collide in their low bits — the cross-shard
						// collision shapes the sharded broker's
						// brokerID<<48|counter layout produces.
						ID:          uint64(arg>>2)<<48 | 1<<32 | (inSeq & 3),
						Topic:       7,
						Source:      0,
						PublishedAt: deps.now,
					},
					Dests: destPool[arg%len(destPool)],
					Path:  pathPool[arg%len(pathPool)],
				}
				haveIn = true
				eng.HandleData(lastIn)
			case 2: // replay the previous frame: must be inert
				if !haveIn {
					continue
				}
				sends, delivers := deps.sends, deps.delivers
				if !eng.SeenFrame(lastIn.FrameID) {
					t.Fatalf("frame %d processed but not marked seen", lastIn.FrameID)
				}
				eng.HandleData(lastIn)
				if deps.sends != sends || deps.delivers != delivers {
					t.Fatalf("duplicate frame %d re-processed: sends %d→%d delivers %d→%d",
						lastIn.FrameID, sends, deps.sends, delivers, deps.delivers)
				}
			case 3: // ACK an observed frame (possibly already resolved)
				if len(deps.sent) == 0 {
					continue
				}
				eng.HandleAck(deps.sent[arg%len(deps.sent)])
			case 4: // stale / never-sent ACK
				if to, ok := eng.HandleAck(uint64(arg) | 1<<50); ok {
					t.Fatalf("bogus ACK resolved to neighbor %d", to)
				}
			case 5: // fire an armed timer
				if len(deps.timers) == 0 {
					continue
				}
				deps.fireTimer(arg % len(deps.timers))
			case 6: // advance the clock
				deps.now += time.Duration(arg+1) * 3 * time.Millisecond
			case 7: // flap a link
				deps.down[arg%6] = !deps.down[arg%6]
			}
		}

		// Drain: push every copy past its lifetime and fire all timers
		// (firing spawns retransmit/reprocess timers, so loop) until the
		// engine has no in-flight state left.
		deps.now += 2 * cfg.MaxLifetime
		for range [10000]struct{}{} {
			idle := true
			for i := 0; i < len(deps.timers); i++ {
				tm := deps.timers[i]
				if !tm.stopped && !tm.fired {
					idle = false
					deps.fireTimer(i)
				}
			}
			if idle {
				break
			}
		}
		for _, tm := range deps.timers {
			if !tm.stopped && !tm.fired {
				t.Fatal("timers still armed after drain cap — livelock or leak")
			}
		}
		if n := eng.InflightCount(); n != 0 {
			t.Fatalf("inflight leak after drain: %d groups", n)
		}
		if w, fl, fr := pools.Live(); w != 0 || fl != 0 || fr != 0 {
			t.Fatalf("pool leak after drain: works=%d flights=%d frames=%d", w, fl, fr)
		}
	})
}

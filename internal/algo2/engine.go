// Package algo2 is the transport- and clock-agnostic implementation of
// DCRD's Algorithm 2 — the single forwarding engine shared by the
// discrete-event simulator (internal/core) and the live broker
// (internal/broker). One Engine instance is one overlay node's forwarding
// state machine: sorted sending lists, hop-by-hop ACKs, m transmissions per
// neighbor, path-recording loop avoidance, rerouting to the upstream node
// when a sending list is exhausted, and the §III persistency mode.
//
// The engine owns all per-copy routing state (pending destinations, path
// bitsets, failed-neighbor sets, in-flight retransmission groups, the
// frame-level dedup horizon) and performs no I/O and reads no clock itself:
// everything environmental goes through the Deps interface — virtual or
// wall-clock time, timers, frame transmission, sending-list lookup,
// delivery and drop sinks. The shells stay thin: internal/core adapts Deps
// to des.Simulator + netsim.Network, internal/broker to wall-clock timers +
// per-connection writer pipelines, and a differential test drives both
// shells with one scripted loss schedule to prove they decide identically.
//
// The hot path is allocation-free in steady state: work, flight and Frame
// objects are pooled (Pools is shared by all engines of one single-threaded
// or single-lock deployment), per-copy path sets are bitsets with reusable
// backing arrays, and all timer callbacks are pre-instantiated functions
// with pooled arguments. Engines are not safe for concurrent use; callers
// serialize externally (the simulator's event loop, the broker's mutex).
package algo2

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Packet is the engine's view of one published packet. Times are durations
// on the deployment's engine clock (Deps.Now): virtual time in the
// simulator, time-since-broker-epoch live. Payload is opaque to the engine
// and travels untouched from Publish/Inbound to outbound Frames.
type Packet struct {
	ID          uint64
	Topic       int32
	Source      int32
	PublishedAt time.Duration
	Deadline    time.Duration
	Payload     any
}

// Frame is one outbound data-frame body: the packet plus the destinations
// this copy is responsible for and the recorded routing path (the node IDs
// that have sent this copy, in order, with duplicates when a node sent it
// more than once — exactly the paper's packet format).
//
// Frames are pooled: the engine recycles a frame when the hop-by-hop ACK
// resolves its flight (or the flight expires). Deps.Send implementations
// and receivers may therefore read the frame's contents only until they
// return — retaining it requires a copy. Retransmissions reuse the same
// Frame (and frame ID) for every attempt.
type Frame struct {
	ID    uint64
	To    int
	Pkt   Packet
	Dests []int
	Path  []int
}

// Inbound is one received data frame handed to HandleData. The engine
// copies Dests and Path before returning, so callers may reuse the backing
// slices (e.g. decode scratch buffers) immediately after the call.
type Inbound struct {
	FrameID uint64
	From    int
	Pkt     Packet
	Dests   []int
	Path    []int
}

// DropReason classifies Deps.Drop calls.
type DropReason int

const (
	// DropLifetime: the packet exceeded MaxLifetime (at dispatch or when an
	// in-flight group's ACK timer fired past the horizon).
	DropLifetime DropReason = iota + 1
	// DropExhausted: the origin exhausted its sending list with no upstream
	// to bounce to and persistency is off.
	DropExhausted
)

// Deps is everything Algorithm 2 needs from its environment. T is the
// timer-handle type (des.EventID in the simulator, a wall-clock timer
// wrapper live) — a type parameter so storing handles in pooled flights
// never boxes.
//
// All methods are invoked synchronously from engine calls; implementations
// must not re-enter the engine. Timer callbacks scheduled via AfterFunc
// must run under the same external serialization as every other engine
// entry point.
type Deps[T any] interface {
	// Now is the current engine-clock time.
	Now() time.Duration
	// AfterFunc schedules fn(arg) after d and returns a cancelable handle.
	AfterFunc(d time.Duration, fn func(any), arg any) T
	// CancelTimer cancels a pending timer. The cancellation must be
	// reliable: after CancelTimer returns, the callback is guaranteed not
	// to run (flights are pooled, so a stale callback could otherwise
	// observe a recycled struct).
	CancelTimer(t T)
	// NextFrameID allocates a deployment-unique data-frame identifier.
	NextFrameID() uint64
	// AckWait returns how long a sender should wait for neighbor k's
	// hop-by-hop ACK before the AckGuard padding, and whether the link
	// exists at all. A false return marks k failed for the copy and
	// re-processes via the event loop rather than crashing.
	AckWait(k int) (time.Duration, bool)
	// Send transmits one data frame to f.To. The frame is only valid until
	// Send returns; retaining it requires a copy.
	Send(f *Frame)
	// SendingList returns the Theorem-1-ordered neighbor list for reaching
	// dest on topic, or nil when no route is known.
	SendingList(topic int32, dest int) []int
	// LinkUp reports whether neighbor k is currently usable as a next hop.
	// The simulator always says true (dead links surface as ACK timeouts);
	// the live broker skips disconnected neighbors.
	LinkUp(k int) bool
	// Deliver hands a packet destined for this node to local subscribers.
	// from is the sending neighbor, or -1 when the node is the origin.
	// The shell owns packet-level delivery dedup (failover can produce
	// duplicate copies on distinct frames).
	Deliver(pkt *Packet, from int)
	// Drop records giving up on dests for this packet.
	Drop(pkt *Packet, dests []int, reason DropReason)
	// AckTimedOut observes neighbor k missing an ACK deadline (the live
	// broker decays its adaptive gamma here; the simulator ignores it).
	AckTimedOut(k int)
	// NextRetryAt returns when a persistency-held packet should be retried
	// (the next instant network conditions can have changed). Only called
	// with Config.Persistent set.
	NextRetryAt(now time.Duration) time.Duration
}

// Config tunes one engine.
type Config struct {
	// NodeID is this node's overlay identifier.
	NodeID int
	// M is the number of transmissions per neighbor before failover
	// (default 1).
	M int
	// AckGuard is added on top of Deps.AckWait when arming ACK timers.
	AckGuard time.Duration
	// MaxLifetime bounds how long a packet may stay in flight before the
	// engine gives up; it also scales the frame-dedup retention horizon.
	MaxLifetime time.Duration
	// Persistent enables the paper's §III persistency mode: an origin that
	// exhausts every neighbor holds the packet and retries from scratch at
	// Deps.NextRetryAt instead of dropping, until MaxLifetime.
	Persistent bool
	// Tracer, when non-nil, receives the per-packet routing timeline.
	Tracer trace.Recorder
}

// withDefaults fills unset options.
func (c Config) withDefaults() Config {
	if c.M < 1 {
		c.M = 1
	}
	if c.AckGuard <= 0 {
		c.AckGuard = time.Millisecond
	}
	if c.MaxLifetime <= 0 {
		c.MaxLifetime = 30 * time.Second
	}
	return c
}

// Pools is the shared object pool for the engines of one deployment.
// Sharing one Pools across all of a simulation's per-node engines (or
// handing each of the live broker's shards its own) keeps steady state
// allocation-free; the free lists are serialized by the same discipline as
// the engines themselves, but the live counters are atomic so an observer
// (Broker.PoolsLive aggregating across shards) can read them without
// entering any engine's serialization domain. Backing slices inside
// recycled objects are kept, so steady state reuses their capacity.
type Pools[T any] struct {
	// words is the initial pathSet bitset length, (nodesHint+63)/64;
	// bitsets grow on demand when IDs exceed the hint.
	words      int
	freeWork   []*work[T]
	freeFlight []*flight[T]
	freeFrame  []*Frame

	liveWork   atomic.Int64
	liveFlight atomic.Int64
	liveFrame  atomic.Int64
}

// NewPools sizes a pool for a deployment of about nodesHint nodes (path
// bitsets are pre-sized to cover IDs below the hint; larger IDs grow them).
func NewPools[T any](nodesHint int) *Pools[T] {
	words := (nodesHint + 63) / 64
	if words < 1 {
		words = 1
	}
	return &Pools[T]{words: words}
}

// Live returns the outstanding (not yet recycled) object counts — the
// fuzz harness checks these return to zero once every packet resolves. It
// is safe to call from outside the pool's serialization domain.
func (p *Pools[T]) Live() (works, flights, frames int) {
	return int(p.liveWork.Load()), int(p.liveFlight.Load()), int(p.liveFrame.Load())
}

// allocWork takes a work object from the pool with one reference held by
// the caller.
func (p *Pools[T]) allocWork(e *Engine[T]) *work[T] {
	var w *work[T]
	if l := len(p.freeWork); l > 0 {
		w = p.freeWork[l-1]
		p.freeWork[l-1] = nil
		p.freeWork = p.freeWork[:l-1]
	} else {
		w = &work[T]{pathSet: make([]uint64, p.words)}
	}
	p.liveWork.Add(1)
	w.eng = e
	w.path = w.path[:0]
	w.pending = w.pending[:0]
	w.failed = w.failed[:0]
	clear(w.pathSet)
	w.refs = 1
	return w
}

// releaseWork drops one reference and recycles the work when none remain.
func (p *Pools[T]) releaseWork(w *work[T]) {
	w.refs--
	if w.refs == 0 {
		p.liveWork.Add(-1)
		w.eng = nil
		w.pkt = Packet{}
		p.freeWork = append(p.freeWork, w)
	}
}

// allocFrame takes a frame from the pool, keeping recycled capacity.
func (p *Pools[T]) allocFrame() *Frame {
	p.liveFrame.Add(1)
	if l := len(p.freeFrame); l > 0 {
		f := p.freeFrame[l-1]
		p.freeFrame[l-1] = nil
		p.freeFrame = p.freeFrame[:l-1]
		f.Dests = f.Dests[:0]
		f.Path = f.Path[:0]
		return f
	}
	return &Frame{}
}

// releaseFrame returns a frame to the pool once its flight resolves.
func (p *Pools[T]) releaseFrame(f *Frame) {
	p.liveFrame.Add(-1)
	f.Pkt = Packet{}
	p.freeFrame = append(p.freeFrame, f)
}

// allocFlight takes a flight from the pool.
func (p *Pools[T]) allocFlight() *flight[T] {
	p.liveFlight.Add(1)
	if l := len(p.freeFlight); l > 0 {
		fl := p.freeFlight[l-1]
		p.freeFlight[l-1] = nil
		p.freeFlight = p.freeFlight[:l-1]
		return fl
	}
	return &flight[T]{}
}

// releaseFlight recycles the flight struct only; frame and work are
// released separately by the caller (their lifetimes differ across the
// resolve paths).
func (p *Pools[T]) releaseFlight(fl *flight[T]) {
	p.liveFlight.Add(-1)
	*fl = flight[T]{}
	p.freeFlight = append(p.freeFlight, fl)
}

// dedupHorizonFactor scales MaxLifetime into the dedup retention horizon.
// Two lifetimes comfortably cover the last possible duplicate delivery
// (transmissions stop at publish+MaxLifetime; one link delay plus one ACK
// timeout later nothing new can arrive), so expiring seen entries beyond it
// can never resurrect a packet.
const dedupHorizonFactor = 2

// seenRec is one dedup entry in FIFO insertion order, used to expire the
// seen set past the dedup horizon.
type seenRec struct {
	id uint64
	at time.Duration
}

// Engine is one node's Algorithm-2 state: deduplication of received frames
// and the set of sent-but-unacknowledged groups. Per the paper, no
// per-packet routing state survives once the downstream ACK arrives.
//
// The scratch slices are reused by process on every call; process never
// runs re-entrantly (all continuations go through Deps.AfterFunc), so one
// set per engine suffices.
type Engine[T any] struct {
	deps  Deps[T]
	pools *Pools[T]
	cfg   Config
	id    int

	seen     map[uint64]struct{}
	seenQ    []seenRec
	seenHead int
	inflight map[uint64]*flight[T]
	// pendingRetries tracks scheduled re-process events (deferred retries
	// after a missing link, persistency holds) so Shutdown can cancel them
	// and release their work references; freeRetries recycles the wrappers.
	pendingRetries []*retryRef[T]
	freeRetries    []*retryRef[T]
	// Timer callbacks, instantiated once: evaluating a generic function as
	// a func value allocates its dictionary closure, so the hot path must
	// not do it per call.
	ackTimeoutFn func(any)
	reprocessFn  func(any)
	// process scratch
	dests      []int
	exhausted  []int
	groupHops  []int
	groupDests [][]int
}

// NewEngine builds the forwarding engine for one node. pools may be shared
// with other engines under the same serialization domain.
func NewEngine[T any](cfg Config, deps Deps[T], pools *Pools[T]) *Engine[T] {
	cfg = cfg.withDefaults()
	return &Engine[T]{
		deps:         deps,
		pools:        pools,
		cfg:          cfg,
		id:           cfg.NodeID,
		seen:         make(map[uint64]struct{}),
		inflight:     make(map[uint64]*flight[T]),
		ackTimeoutFn: ackTimeoutFired[T],
		reprocessFn:  reprocessWork[T],
	}
}

// InflightCount reports how many sent groups await their hop-by-hop ACK.
func (e *Engine[T]) InflightCount() int { return len(e.inflight) }

// Shutdown cancels every pending timer — in-flight ACK timers and
// scheduled re-process/persistency retries — and releases all pooled state
// they held, so Pools.Live returns to zero no matter how much traffic was
// in flight. The engine must not be used afterwards.
func (e *Engine[T]) Shutdown() {
	for id, fl := range e.inflight {
		e.deps.CancelTimer(fl.timer)
		delete(e.inflight, id)
		w := fl.w
		e.pools.releaseFrame(fl.frame)
		e.pools.releaseFlight(fl)
		e.pools.releaseWork(w)
	}
	for _, ref := range e.pendingRetries {
		e.deps.CancelTimer(ref.timer)
		e.pools.releaseWork(ref.w)
		ref.w = nil
	}
	e.pendingRetries = e.pendingRetries[:0]
}

// retryRef is the argument of a scheduled re-process event: it keeps the
// event cancelable (and its work reference releasable) at Shutdown.
type retryRef[T any] struct {
	eng   *Engine[T]
	w     *work[T]
	timer T
}

// scheduleReprocess arms a deferred process(w) after d. The caller has
// already accounted w's reference for the event.
func (e *Engine[T]) scheduleReprocess(w *work[T], d time.Duration) {
	var ref *retryRef[T]
	if l := len(e.freeRetries); l > 0 {
		ref = e.freeRetries[l-1]
		e.freeRetries[l-1] = nil
		e.freeRetries = e.freeRetries[:l-1]
	} else {
		ref = &retryRef[T]{}
	}
	ref.eng = e
	ref.w = w
	e.pendingRetries = append(e.pendingRetries, ref)
	ref.timer = e.deps.AfterFunc(d, e.reprocessFn, ref)
}

// unregisterRetry removes one fired retry from the pending list.
func (e *Engine[T]) unregisterRetry(ref *retryRef[T]) {
	for i, r := range e.pendingRetries {
		if r == ref {
			last := len(e.pendingRetries) - 1
			e.pendingRetries[i] = e.pendingRetries[last]
			e.pendingRetries[last] = nil
			e.pendingRetries = e.pendingRetries[:last]
			break
		}
	}
	ref.w = nil
	var zero T
	ref.timer = zero
	e.freeRetries = append(e.freeRetries, ref)
}

// record emits a trace event when tracing is enabled. dests is copied so
// recorded events stay valid after pooled buffers are reused.
func (e *Engine[T]) record(kind trace.Kind, pkt uint64, node, peer int, dests []int, note string) {
	if e.cfg.Tracer == nil {
		return
	}
	if dests != nil {
		dests = append([]int(nil), dests...)
	}
	e.cfg.Tracer.Record(trace.Event{
		At:     e.deps.Now(),
		Kind:   kind,
		Packet: pkt,
		Node:   node,
		Peer:   peer,
		Dests:  dests,
		Note:   note,
	})
}

// work tracks one received copy of a packet at this node: the destinations
// still unresolved here, the neighbors that already timed out for this
// copy, and the routing path the copy arrived with. Works are pooled and
// reference-counted: every flight and every scheduled re-process event
// holds one reference.
type work[T any] struct {
	eng      *Engine[T]
	pkt      Packet
	path     []int    // routing path as received (before appending self)
	pathSet  []uint64 // bitset over node IDs on path (plus self)
	upstream int      // -1 when this node is the origin
	pending  []int    // unresolved destinations, sorted at process entry
	failed   []int    // neighbors that timed out for this copy
	refs     int
}

// addToPathSet marks node b as on this copy's routing path, growing the
// bitset when b exceeds the pool's node hint.
func (w *work[T]) addToPathSet(b int) {
	for len(w.pathSet) <= b>>6 {
		w.pathSet = append(w.pathSet, 0)
	}
	w.pathSet[b>>6] |= 1 << (uint(b) & 63)
}

// onPath reports whether node b is on this copy's routing path.
func (w *work[T]) onPath(b int) bool {
	i := b >> 6
	return i < len(w.pathSet) && w.pathSet[i]&(1<<(uint(b)&63)) != 0
}

// hasFailed reports whether neighbor k already timed out for this copy.
func (w *work[T]) hasFailed(k int) bool {
	for _, f := range w.failed {
		if f == k {
			return true
		}
	}
	return false
}

// removePending deletes one destination from the pending slice.
func (w *work[T]) removePending(dest int) {
	for i, d := range w.pending {
		if d == dest {
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			return
		}
	}
}

// flight is one sent group awaiting its hop-by-hop ACK.
type flight[T any] struct {
	eng        *Engine[T]
	frameID    uint64
	to         int
	w          *work[T]
	attempts   int
	timer      T
	toUpstream bool
	frame      *Frame
	timeout    time.Duration
}

// Publish injects a freshly published packet at this node (which must be
// the packet's source), making it responsible for dests. Destinations
// equal to this node are delivered locally without touching the network.
func (e *Engine[T]) Publish(pkt Packet, dests []int) {
	e.record(trace.Publish, pkt.ID, e.id, -1, dests, "")
	w := e.pools.allocWork(e)
	w.pkt = pkt
	w.upstream = -1
	w.addToPathSet(e.id)
	for _, dest := range dests {
		if dest == e.id {
			e.deps.Deliver(&w.pkt, -1)
			continue
		}
		w.pending = append(w.pending, dest)
	}
	e.process(w)
	e.pools.releaseWork(w)
}

// SeenFrame reports whether a frame ID was already processed, without
// inserting it. Shells use this to skip per-frame setup (payload copies)
// for retransmissions before calling HandleData.
func (e *Engine[T]) SeenFrame(id uint64) bool {
	_, dup := e.seen[id]
	return dup
}

// HandleData implements Algorithm 2 lines 1–6 for one received data frame:
// deduplicate, deliver to local subscribers, then start processing the
// remaining destinations. The hop-by-hop ACK (line 2) is the shell's job —
// it is sent for every received frame, duplicates included, before calling
// HandleData.
func (e *Engine[T]) HandleData(in Inbound) {
	if _, dup := e.seen[in.FrameID]; dup {
		return // retransmission of an already-processed frame
	}
	now := e.deps.Now()
	e.noteSeen(in.FrameID, now)

	w := e.pools.allocWork(e)
	w.pkt = in.Pkt
	w.path = append(w.path, in.Path...)
	w.upstream = UpstreamOf(e.id, in.Path)
	for _, b := range in.Path {
		w.addToPathSet(b)
	}
	w.addToPathSet(e.id)
	for _, dest := range in.Dests {
		if dest == e.id {
			e.deps.Deliver(&w.pkt, in.From)
			e.record(trace.Deliver, in.Pkt.ID, e.id, in.From, nil, "")
			continue
		}
		w.pending = append(w.pending, dest)
	}
	e.process(w)
	e.pools.releaseWork(w)
}

// InflightDests looks up a pending sent group by frame ID, returning the
// packet it carries and the destinations its ACK would hand off. The
// returned slice aliases engine-owned memory and is only valid until the
// next engine call — callers that retain it must copy. The broker's durable
// shell reads it just before HandleAck (which releases the flight) to
// journal a custody-clear record.
func (e *Engine[T]) InflightDests(frameID uint64) (pktID uint64, dests []int, ok bool) {
	fl, live := e.inflight[frameID]
	if !live {
		return 0, nil, false
	}
	return fl.w.pkt.ID, fl.frame.Dests, true
}

// HandleAck resolves the in-flight group: the downstream neighbor took
// responsibility for the group's destinations, so this node aggressively
// forgets them (§III: "each node aggressively deletes a copy of packet once
// it receives an ACK from its downstream neighbor"). It returns the
// neighbor the group was sent to, or ok=false for duplicate/stale ACKs —
// the live shell feeds the outcome into its adaptive gamma.
func (e *Engine[T]) HandleAck(frameID uint64) (to int, ok bool) {
	fl, live := e.inflight[frameID]
	if !live {
		return 0, false // duplicate or stale ACK
	}
	e.deps.CancelTimer(fl.timer)
	delete(e.inflight, frameID)
	e.record(trace.Handoff, fl.w.pkt.ID, e.id, fl.to, fl.frame.Dests, "")
	to = fl.to
	w := fl.w
	e.pools.releaseFrame(fl.frame)
	e.pools.releaseFlight(fl)
	e.pools.releaseWork(w)
	return to, true
}

// noteSeen inserts a frame into the dedup set and expires entries older
// than dedupHorizonFactor×MaxLifetime, keeping long runs flat in memory.
func (e *Engine[T]) noteSeen(id uint64, now time.Duration) {
	horizon := dedupHorizonFactor * e.cfg.MaxLifetime
	for e.seenHead < len(e.seenQ) && now-e.seenQ[e.seenHead].at > horizon {
		delete(e.seen, e.seenQ[e.seenHead].id)
		e.seenQ[e.seenHead] = seenRec{}
		e.seenHead++
	}
	if e.seenHead > 64 && e.seenHead*2 >= len(e.seenQ) {
		n := copy(e.seenQ, e.seenQ[e.seenHead:])
		for i := n; i < len(e.seenQ); i++ {
			e.seenQ[i] = seenRec{}
		}
		e.seenQ = e.seenQ[:n]
		e.seenHead = 0
	}
	e.seen[id] = struct{}{}
	e.seenQ = append(e.seenQ, seenRec{id: id, at: now})
}

// UpstreamOf finds the upstream node of node in a routing path: the entry
// immediately before node's first appearance, or — when node never appears
// (a fresh arrival) — the last sender on the path. Returns -1 when no
// upstream exists (node is the origin).
func UpstreamOf(node int, path []int) int {
	for i, b := range path {
		if b == node {
			if i == 0 {
				return -1
			}
			return path[i-1]
		}
	}
	if len(path) == 0 {
		return -1
	}
	return path[len(path)-1]
}

// reprocessWork is the pooled callback for deferred process calls (retry
// after a missing link or a persistency hold): the scheduled event holds
// one work reference, released after processing.
func reprocessWork[T any](a any) {
	ref := a.(*retryRef[T])
	e := ref.eng
	w := ref.w
	e.unregisterRetry(ref)
	e.process(w)
	e.pools.releaseWork(w)
}

// process implements Algorithm 2 lines 7–29 event-dependently: every pending
// destination is assigned to the first eligible sending-list neighbor,
// destinations sharing a next hop are grouped into one frame, and
// destinations whose list is exhausted are rerouted to the upstream node
// (or dropped at the origin).
func (e *Engine[T]) process(w *work[T]) {
	now := e.deps.Now()
	slices.Sort(w.pending)
	if now-w.pkt.PublishedAt > e.cfg.MaxLifetime {
		e.deps.Drop(&w.pkt, w.pending, DropLifetime)
		e.record(trace.Drop, w.pkt.ID, e.id, -1, w.pending, "lifetime exceeded")
		w.pending = w.pending[:0]
		return
	}
	// Assign every pending destination to its first eligible neighbor,
	// grouping by next hop; scratch buffers keep this allocation-free.
	dests := append(e.dests[:0], w.pending...)
	e.dests = dests
	hops := e.groupHops[:0]
	exhausted := e.exhausted[:0]
	for _, dest := range dests {
		k := e.nextHop(w, dest)
		if k < 0 {
			exhausted = append(exhausted, dest)
			continue
		}
		gi := -1
		for j, h := range hops {
			if h == k {
				gi = j
				break
			}
		}
		if gi < 0 {
			hops = append(hops, k)
			gi = len(hops) - 1
			if len(e.groupDests) <= gi {
				e.groupDests = append(e.groupDests, nil)
			}
			e.groupDests[gi] = e.groupDests[gi][:0]
		}
		e.groupDests[gi] = append(e.groupDests[gi], dest)
	}
	// Groups fire in ascending next-hop order (the deterministic event
	// ordering contract); insertion sort over the handful of hops.
	for i := 1; i < len(hops); i++ {
		for j := i; j > 0 && hops[j] < hops[j-1]; j-- {
			hops[j], hops[j-1] = hops[j-1], hops[j]
			e.groupDests[j], e.groupDests[j-1] = e.groupDests[j-1], e.groupDests[j]
		}
	}
	e.groupHops = hops
	e.exhausted = exhausted
	for gi := range hops {
		e.sendGroup(w, hops[gi], e.groupDests[gi], false)
	}
	if len(exhausted) == 0 {
		return
	}
	if w.upstream < 0 {
		if e.cfg.Persistent {
			e.record(trace.Hold, w.pkt.ID, e.id, -1, exhausted, "persistency: retry next epoch")
			// Persistency mode (§III): hold the packet at the origin and
			// resend once network conditions can have changed, with a
			// clean slate (fresh path and failed set).
			retry := e.pools.allocWork(e)
			retry.pkt = w.pkt
			retry.upstream = -1
			retry.addToPathSet(e.id)
			for _, dest := range exhausted {
				w.removePending(dest)
				retry.pending = append(retry.pending, dest)
			}
			wait := e.deps.NextRetryAt(now) - now
			e.scheduleReprocess(retry, wait)
			return
		}
		// The origin exhausted every neighbor: no usable path now.
		for _, dest := range exhausted {
			w.removePending(dest)
		}
		e.deps.Drop(&w.pkt, exhausted, DropExhausted)
		e.record(trace.Drop, w.pkt.ID, e.id, -1, exhausted, "origin exhausted sending list")
		return
	}
	e.record(trace.Reroute, w.pkt.ID, e.id, w.upstream, exhausted, "sending list exhausted")
	e.sendGroup(w, w.upstream, exhausted, true)
}

// nextHop returns the first sending-list neighbor for dest that is neither
// on the routing path, already timed out for this copy, nor reported down
// by the shell, or -1.
func (e *Engine[T]) nextHop(w *work[T], dest int) int {
	for _, k := range e.deps.SendingList(w.pkt.Topic, dest) {
		if w.onPath(k) || w.hasFailed(k) {
			continue
		}
		if !e.deps.LinkUp(k) {
			continue
		}
		return k
	}
	return -1
}

// sendGroup transmits one group to neighbor k (Algorithm 2 lines 13–22):
// the node appends itself to the routing path, sends a single frame
// covering all destinations whose next hop is k, caches the packet and arms
// an ACK timer scaled to the link's round trip.
func (e *Engine[T]) sendGroup(w *work[T], k int, dests []int, toUpstream bool) {
	for _, dest := range dests {
		w.removePending(dest)
	}
	w.path = append(w.path, e.id) // line 20: add X to the routing path
	wait, ok := e.deps.AckWait(k)
	if !ok {
		// The table or path information referenced a non-link; mark the
		// neighbor failed and retry via the event loop rather than crash.
		w.failed = append(w.failed, k)
		w.pending = append(w.pending, dests...)
		w.refs++
		e.scheduleReprocess(w, 0)
		return
	}
	f := e.pools.allocFrame()
	f.Pkt = w.pkt
	f.Dests = append(f.Dests, dests...)
	f.Path = append(f.Path, w.path...)
	fl := e.pools.allocFlight()
	fl.eng = e
	fl.frameID = e.deps.NextFrameID()
	fl.to = k
	fl.w = w
	fl.attempts = 0
	fl.toUpstream = toUpstream
	fl.frame = f
	fl.timeout = wait + e.cfg.AckGuard
	f.ID = fl.frameID
	f.To = k
	e.inflight[fl.frameID] = fl
	w.refs++
	e.transmit(fl)
}

// ackTimeoutFired is the pooled ACK-timer callback.
func ackTimeoutFired[T any](a any) {
	fl := a.(*flight[T])
	fl.eng.ackTimeout(fl)
}

// transmit performs one transmission attempt and arms the ACK timer.
func (e *Engine[T]) transmit(fl *flight[T]) {
	fl.attempts++
	if e.cfg.Tracer != nil {
		note := fmt.Sprintf("attempt %d", fl.attempts)
		if fl.toUpstream {
			note += " (upstream)"
		}
		e.record(trace.Send, fl.w.pkt.ID, e.id, fl.to, fl.frame.Dests, note)
	}
	e.deps.Send(fl.frame)
	fl.timer = e.deps.AfterFunc(fl.timeout, e.ackTimeoutFn, fl)
}

// ackTimeout fires when no ACK arrived in time: retransmit while attempts
// remain (m per neighbor; unbounded toward the upstream, since the upstream
// is the only remaining route), otherwise declare the neighbor failed for
// this copy and re-process the group's destinations.
func (e *Engine[T]) ackTimeout(fl *flight[T]) {
	if cur, live := e.inflight[fl.frameID]; !live || cur != fl {
		return // resolved concurrently
	}
	e.deps.AckTimedOut(fl.to)
	now := e.deps.Now()
	e.record(trace.Timeout, fl.w.pkt.ID, e.id, fl.to, fl.frame.Dests, "")
	expired := now-fl.w.pkt.PublishedAt > e.cfg.MaxLifetime
	if !expired && (fl.toUpstream || fl.attempts < e.cfg.M) {
		e.transmit(fl)
		return
	}
	delete(e.inflight, fl.frameID)
	w := fl.w
	if expired {
		e.deps.Drop(&w.pkt, fl.frame.Dests, DropLifetime)
		e.record(trace.Drop, w.pkt.ID, e.id, fl.to, fl.frame.Dests, "lifetime exceeded")
		e.pools.releaseFrame(fl.frame)
		e.pools.releaseFlight(fl)
		e.pools.releaseWork(w)
		return
	}
	if e.cfg.Tracer != nil {
		e.record(trace.Failover, w.pkt.ID, e.id, fl.to, fl.frame.Dests,
			fmt.Sprintf("no ACK after %d transmission(s)", fl.attempts))
	}
	w.failed = append(w.failed, fl.to)
	w.pending = append(w.pending, fl.frame.Dests...)
	e.pools.releaseFrame(fl.frame)
	e.pools.releaseFlight(fl)
	e.process(w)
	e.pools.releaseWork(w)
}

package algo2

import (
	"testing"
	"time"
)

func TestUpstreamOf(t *testing.T) {
	tests := []struct {
		name string
		node int
		path []int
		want int
	}{
		{name: "empty path", node: 5, path: nil, want: -1},
		{name: "fresh arrival", node: 5, path: []int{0, 1}, want: 1},
		{name: "returned copy", node: 1, path: []int{0, 1, 2}, want: 0},
		{name: "origin", node: 0, path: []int{0, 1, 2}, want: -1},
		{name: "duplicate self entries", node: 1, path: []int{0, 1, 2, 1, 3}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UpstreamOf(tt.node, tt.path); got != tt.want {
				t.Errorf("UpstreamOf(%d, %v) = %d, want %d", tt.node, tt.path, got, tt.want)
			}
		})
	}
}

// testTimer is the allocation-free fake timer handle: testDeps recycles
// cancelled handles through a free list, so steady state needs no new ones.
type testTimer struct {
	when    time.Duration
	fn      func(any)
	arg     any
	stopped bool
}

// testDeps is a minimal, allocation-free Deps implementation: fixed sending
// lists, recycled timer handles, counters instead of recorded events.
type testDeps struct {
	now       time.Duration
	frameSeq  uint64
	lastFrame uint64
	lastTo    int
	list      []int
	free      []*testTimer

	sends    int
	delivers int
	drops    int
}

func (d *testDeps) Now() time.Duration { return d.now }

func (d *testDeps) AfterFunc(dur time.Duration, fn func(any), arg any) *testTimer {
	var tm *testTimer
	if n := len(d.free); n > 0 {
		tm = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
	} else {
		tm = &testTimer{}
	}
	tm.when = d.now + dur
	tm.fn = fn
	tm.arg = arg
	tm.stopped = false
	return tm
}

func (d *testDeps) CancelTimer(tm *testTimer) {
	tm.stopped = true
	tm.fn = nil
	tm.arg = nil
	d.free = append(d.free, tm)
}

func (d *testDeps) NextFrameID() uint64 {
	d.frameSeq++
	return d.frameSeq
}

func (d *testDeps) AckWait(int) (time.Duration, bool) { return time.Millisecond, true }

func (d *testDeps) Send(f *Frame) {
	d.sends++
	d.lastFrame = f.ID
	d.lastTo = f.To
}

func (d *testDeps) SendingList(int32, int) []int { return d.list }

func (d *testDeps) LinkUp(int) bool { return true }

func (d *testDeps) Deliver(*Packet, int) { d.delivers++ }

func (d *testDeps) Drop(_ *Packet, dests []int, _ DropReason) { d.drops += len(dests) }

func (d *testDeps) AckTimedOut(int) {}

func (d *testDeps) NextRetryAt(now time.Duration) time.Duration { return now + time.Millisecond }

// TestEngineZeroAllocSteadyState locks in the tentpole's allocation
// guarantee (mirroring wire's TestReaderZeroAllocSteadyState): once pools
// are warm, a full per-copy routing cycle — publish (or receive) → group →
// transmit → ACK resolve — touches no allocator. This is the property that
// lets the live broker shed its per-packet map allocations.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	deps := &testDeps{list: []int{2, 3}}
	pools := NewPools[*testTimer](8)
	eng := NewEngine[*testTimer](Config{
		NodeID:      1,
		M:           2,
		AckGuard:    time.Millisecond,
		MaxLifetime: time.Millisecond,
	}, deps, pools)

	var pktSeq, frameSeq uint64
	pubDests := []int{2, 3}
	publishCycle := func() {
		deps.now += 3 * time.Millisecond // past the dedup horizon: seen stays tiny
		pktSeq++
		eng.Publish(Packet{ID: pktSeq, Topic: 7, Source: 1, PublishedAt: deps.now}, pubDests)
		if _, ok := eng.HandleAck(deps.lastFrame); !ok {
			t.Fatal("ACK did not resolve the published group")
		}
	}
	dests := []int{3}
	path := []int{0}
	receiveCycle := func() {
		deps.now += 3 * time.Millisecond
		pktSeq++
		frameSeq++
		eng.HandleData(Inbound{
			FrameID: 1<<40 | frameSeq, // distinct from outbound IDs
			From:    0,
			Pkt:     Packet{ID: pktSeq, Topic: 7, Source: 0, PublishedAt: deps.now},
			Dests:   dests,
			Path:    path,
		})
		if _, ok := eng.HandleAck(deps.lastFrame); !ok {
			t.Fatal("ACK did not resolve the forwarded group")
		}
	}

	// Warm the pools, the engine scratch and the dedup ring.
	for i := 0; i < 200; i++ {
		publishCycle()
		receiveCycle()
	}
	if w, f, fr := pools.Live(); w != 0 || f != 0 || fr != 0 {
		t.Fatalf("pool leak after warmup: works=%d flights=%d frames=%d", w, f, fr)
	}

	if allocs := testing.AllocsPerRun(100, publishCycle); allocs != 0 {
		t.Errorf("publish→ACK cycle allocates %.1f times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, receiveCycle); allocs != 0 {
		t.Errorf("receive→forward→ACK cycle allocates %.1f times per op, want 0", allocs)
	}
	if deps.sends == 0 || deps.drops != 0 {
		t.Fatalf("unexpected op mix: sends=%d drops=%d", deps.sends, deps.drops)
	}
}

// TestEngineFailover drives the m-transmissions-then-failover path and the
// upstream reroute directly against fake deps: neighbor 2 never ACKs, so
// after M attempts the copy fails over to neighbor 3; when 3 also dies the
// non-origin copy bounces to its upstream.
func TestEngineFailover(t *testing.T) {
	deps := &testDeps{list: []int{2, 3}}
	pools := NewPools[*testTimer](8)
	eng := NewEngine[*testTimer](Config{NodeID: 1, M: 2, MaxLifetime: time.Hour}, deps, pools)

	var timers []*testTimer
	fire := func() {
		if len(timers) == 0 {
			t.Fatal("no armed timer")
		}
		tm := timers[len(timers)-1]
		timers = timers[:len(timers)-1]
		if !tm.stopped {
			tm.fn(tm.arg)
		}
	}
	// Wrap AfterFunc results by re-reading deps state: testDeps does not
	// retain armed timers, so intercept via a thin shim.
	shim := &armingDeps{testDeps: deps, armed: &timers}
	eng = NewEngine[*testTimer](Config{NodeID: 1, M: 2, MaxLifetime: time.Hour}, shim, pools)

	eng.HandleData(Inbound{
		FrameID: 99,
		From:    0,
		Pkt:     Packet{ID: 1, Topic: 7, Source: 0},
		Dests:   []int{4},
		Path:    []int{0},
	})
	if deps.sends != 1 || deps.lastTo != 2 {
		t.Fatalf("first transmission: sends=%d to=%d, want 1 to 2", deps.sends, deps.lastTo)
	}
	fire() // attempt 2 to neighbor 2 (m=2)
	if deps.sends != 2 || deps.lastTo != 2 {
		t.Fatalf("retransmission: sends=%d to=%d, want 2 to 2", deps.sends, deps.lastTo)
	}
	fire() // neighbor 2 exhausted → failover to 3
	if deps.sends != 3 || deps.lastTo != 3 {
		t.Fatalf("failover: sends=%d to=%d, want 3 to 3", deps.sends, deps.lastTo)
	}
	fire()
	fire() // neighbor 3 exhausted → list exhausted → reroute upstream (0)
	if deps.sends != 5 || deps.lastTo != 0 {
		t.Fatalf("upstream reroute: sends=%d to=%d, want 5 to 0", deps.sends, deps.lastTo)
	}
	// The upstream copy retries without an m bound; resolve it with an ACK.
	if to, ok := eng.HandleAck(deps.lastFrame); !ok || to != 0 {
		t.Fatalf("upstream ACK: to=%d ok=%v", to, ok)
	}
	if w, f, fr := pools.Live(); w != 0 || f != 0 || fr != 0 {
		t.Fatalf("pool leak: works=%d flights=%d frames=%d", w, f, fr)
	}
	if eng.InflightCount() != 0 {
		t.Fatalf("inflight leak: %d", eng.InflightCount())
	}
}

// armingDeps records armed timers so tests can fire them by hand.
type armingDeps struct {
	*testDeps
	armed *[]*testTimer
}

func (d *armingDeps) AfterFunc(dur time.Duration, fn func(any), arg any) *testTimer {
	tm := d.testDeps.AfterFunc(dur, fn, arg)
	*d.armed = append(*d.armed, tm)
	return tm
}

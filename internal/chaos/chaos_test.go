package chaos

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// collectVerdicts pulls n per-frame decisions from one direction of a link.
func collectVerdicts(net_ *Network, a, b, n int) []verdict {
	dir := net_.link(a, b).dir(a, b)
	out := make([]verdict, n)
	now := time.Now()
	for i := range out {
		out[i] = dir.decide(now)
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	f := Faults{DropProb: 0.3, DupProb: 0.1, CorruptProb: 0.05, ResetProb: 0.02,
		StallProb: 0.01, Delay: time.Millisecond, DelayJitter: 5 * time.Millisecond}
	n1 := NewNetwork(Config{Seed: 42, Default: f})
	n2 := NewNetwork(Config{Seed: 42, Default: f})
	v1 := collectVerdicts(n1, 3, 7, 500)
	v2 := collectVerdicts(n2, 3, 7, 500)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, v1[i], v2[i])
		}
	}
	// A different seed must produce a different schedule.
	n3 := NewNetwork(Config{Seed: 43, Default: f})
	v3 := collectVerdicts(n3, 3, 7, 500)
	same := 0
	for i := range v1 {
		if v1[i] == v3[i] {
			same++
		}
	}
	if same == len(v1) {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestDirectionsIndependent(t *testing.T) {
	f := Faults{DropProb: 0.5}
	n := NewNetwork(Config{Seed: 7, Default: f})
	fwd := collectVerdicts(n, 1, 2, 200)
	ls := n.link(1, 2)
	rev := make([]verdict, 200)
	now := time.Now()
	for i := range rev {
		rev[i] = ls.dir(2, 1).decide(now)
	}
	same := 0
	for i := range fwd {
		if fwd[i] == rev[i] {
			same++
		}
	}
	if same == len(fwd) {
		t.Fatal("forward and reverse decision streams are identical")
	}
}

func TestPartitionScheduleDeterministic(t *testing.T) {
	mk := func(seed uint64) []bool {
		n := NewNetwork(Config{Seed: seed, Epoch: time.Millisecond,
			Default: Faults{PartitionProb: 0.2}})
		ls := n.link(0, 1)
		// Force the schedule out 100 epochs.
		ls.partitioned(n.start.Add(100 * time.Millisecond))
		ls.mu.Lock()
		defer ls.mu.Unlock()
		return append([]bool(nil), ls.schedule...)
	}
	s1, s2 := mk(99), mk(99)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("schedule lengths: %d vs %d", len(s1), len(s2))
	}
	downs := 0
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("epoch %d differs between identically seeded runs", i)
		}
		if s1[i] {
			downs++
		}
	}
	// Pf=0.2 over ~100 epochs: expect some downs, but not all.
	if downs == 0 || downs == len(s1) {
		t.Errorf("implausible partition schedule: %d/%d epochs down", downs, len(s1))
	}
}

// pipeHarness wires a raw TCP client through a chaos listener (owner broker
// 0) to an accept-side sink, sending Hello{BrokerID: peer} first so the
// connection classifies as a broker link.
type pipeHarness struct {
	t      *testing.T
	n      *Network
	client net.Conn // test writes frames here (plays the remote broker)
	server net.Conn // wrapped conn the "owner broker" would read
}

func newPipeHarness(t *testing.T, n *Network, peerID int32) *pipeHarness {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	cl := n.Listener(ln, 0)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := cl.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	if err := wire.Write(client, &wire.Hello{BrokerID: peerID, Name: "test"}); err != nil {
		t.Fatal(err)
	}
	var server net.Conn
	select {
	case server = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { _ = server.Close() })
	h := &pipeHarness{t: t, n: n, client: client, server: server}
	// Consume the Hello on the server side so subsequent reads see data.
	if _, err := wire.Read(server); err != nil {
		t.Fatalf("reading handshake: %v", err)
	}
	return h
}

// sendPings writes n ping frames from the client side.
func (h *pipeHarness) sendPings(n int) {
	for i := 0; i < n; i++ {
		if err := wire.Write(h.client, &wire.Ping{Token: uint64(i + 1)}); err != nil {
			h.t.Fatalf("ping %d: %v", i, err)
		}
	}
}

// readPings reads frames until timeout, returning received ping tokens.
func (h *pipeHarness) readPings(timeout time.Duration) []uint64 {
	_ = h.server.SetReadDeadline(time.Now().Add(timeout))
	var got []uint64
	for {
		msg, err := wire.Read(h.server)
		if err != nil {
			return got
		}
		if p, ok := msg.(*wire.Ping); ok {
			got = append(got, p.Token)
		}
	}
}

func TestPassthroughClean(t *testing.T) {
	n := NewNetwork(Config{Seed: 1})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(10)
	got := h.readPings(500 * time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("clean link delivered %d/10 frames", len(got))
	}
}

func TestClientConnectionsExemptFromFaults(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{DropProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, -1) // Hello with BrokerID -1 ⇒ client
	h.sendPings(10)
	got := h.readPings(500 * time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("client link delivered %d/10 frames despite DropProb=1 default", len(got))
	}
}

func TestDropEverything(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{DropProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(10)
	if got := h.readPings(300 * time.Millisecond); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered %d frames", len(got))
	}
	if s := n.Stats(); s.FramesDropped == 0 {
		t.Error("drop counter did not advance")
	}
}

func TestDuplicateEverything(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{DupProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(5)
	got := h.readPings(500 * time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("DupProb=1 delivered %d frames, want 10", len(got))
	}
}

func TestPartitionDropsFrames(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Epoch: time.Hour,
		Default: Faults{PartitionProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(10)
	if got := h.readPings(300 * time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned link delivered %d frames", len(got))
	}
}

func TestCorruptionPoisonsStream(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{CorruptProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(1)
	_ = h.server.SetReadDeadline(time.Now().Add(time.Second))
	_, err := wire.Read(h.server)
	if err == nil {
		t.Fatal("corrupted frame decoded cleanly")
	}
	if !errors.Is(err, wire.ErrUnknownType) && !errors.Is(err, io.EOF) {
		// Either the poisoned tag is seen directly or the teardown closed
		// the stream first; both count as detected corruption.
		t.Logf("corruption surfaced as: %v", err)
	}
}

func TestResetClosesConnection(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{ResetProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(1)
	_ = h.server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.Read(h.server); err == nil {
		t.Fatal("reset link stayed readable")
	}
	if s := n.Stats(); s.Resets == 0 {
		t.Error("reset counter did not advance")
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	n := NewNetwork(Config{Seed: 1,
		Default: Faults{StallProb: 1, StallFor: 300 * time.Millisecond}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	start := time.Now()
	h.sendPings(1)
	got := h.readPings(2 * time.Second)
	if len(got) != 1 {
		t.Fatalf("stalled link delivered %d frames, want 1", len(got))
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= ~300ms stall", elapsed)
	}
}

func TestSetLinkOverridesDefault(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{DropProb: 1}})
	defer n.Close()
	n.SetLink(0, 5, Faults{}) // this link is clean despite the default
	h := newPipeHarness(t, n, 5)
	h.sendPings(5)
	if got := h.readPings(500 * time.Millisecond); len(got) != 5 {
		t.Fatalf("overridden link delivered %d/5 frames", len(got))
	}
}

func TestSetActiveHeals(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{DropProb: 1}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	h.sendPings(3)
	if got := h.readPings(200 * time.Millisecond); len(got) != 0 {
		t.Fatalf("active chaos delivered %d frames", len(got))
	}
	n.SetActive(false)
	h.sendPings(3)
	if got := h.readPings(500 * time.Millisecond); len(got) != 3 {
		t.Fatalf("healed link delivered %d/3 frames", len(got))
	}
}

func TestNetworkCloseTerminatesPumps(t *testing.T) {
	n := NewNetwork(Config{Seed: 1,
		Default: Faults{StallProb: 1, StallFor: time.Hour}})
	h := newPipeHarness(t, n, 5)
	h.sendPings(1) // pump is now stalled for an hour
	doneCh := make(chan struct{})
	go func() { n.Close(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(3 * time.Second):
		t.Fatal("Network.Close hung on a stalled pump")
	}
}

func TestDelayAddsLatency(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Default: Faults{Delay: 150 * time.Millisecond}})
	defer n.Close()
	h := newPipeHarness(t, n, 5)
	start := time.Now()
	h.sendPings(1)
	got := h.readPings(2 * time.Second)
	if len(got) != 1 {
		t.Fatalf("delayed link delivered %d frames", len(got))
	}
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= ~150ms", elapsed)
	}
}

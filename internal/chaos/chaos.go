// Package chaos is a deterministic fault-injection layer for the live DCRD
// broker: a net.Listener/net.Conn wrapper that subjects broker-broker links
// to the paper's dynamic failure process — per-epoch link failure
// (Theorem 2's Pf, ported to wall-clock epochs), per-transmission loss (Pl)
// — plus the failure modes real deployments add on top: added delay,
// frame duplication, detected corruption, connection resets and write-side
// stalls.
//
// # Topology of interception
//
// Every broker-broker TCP connection is accepted by exactly one endpoint,
// so wrapping every broker's listener (Network.Listener) covers every
// overlay link exactly once, in both directions: the accepted connection's
// read path carries peer→owner frames and its write path owner→peer frames.
// The wrapper is frame-aware — it understands the wire protocol's
// "uint32 length + body" framing — so faults operate on whole frames, never
// tearing the byte stream mid-frame (except deliberately, via corruption).
// Connections are classified by their first inbound frame: a Hello with
// BrokerID >= 0 binds the connection to the overlay link {owner, peer} and
// its fault plan; client connections (BrokerID < 0) pass through clean.
//
// # Determinism
//
// All per-frame fault decisions come from a splitmix64 stream seeded by
// (Network seed, link endpoints, direction), consuming a fixed number of
// draws per frame regardless of outcomes: for one seed, the k-th frame sent
// on a given link direction always suffers the same fate, across runs and
// across reconnects of the underlying TCP connection (the decision stream
// belongs to the link, not the connection). The epoch partition process is
// indexed by wall-clock epoch number from its own per-link stream, so the
// partition schedule for a seed is a fixed bit string over epochs. Faults
// can also be scripted per link (SetLink) — e.g. a permanent write stall on
// one link, probability-1 loss on another — on top of or instead of the
// seeded process.
//
// # Fault channels
//
//   - Partition (Pf): each epoch, each link independently fails with
//     probability Pf; a failed link silently drops every frame in both
//     directions for the epoch — exactly the paper's failure process, where
//     a failed link looks like 100% loss, not a TCP error.
//   - Loss (Pl): each frame is independently dropped.
//   - Delay: each frame waits Delay plus a seeded jitter before forwarding
//     (head-of-line: later frames queue behind it, like a serial link).
//   - Duplication: a frame is forwarded twice back-to-back (the receiver
//     must dedup by frame ID).
//   - Corruption: the frame's type byte is poisoned (bit 7 set), which the
//     peer's decoder rejects, killing the TCP session — this models
//     *detected* corruption; silent payload corruption is out of scope for
//     a protocol without checksums, as it is for the paper.
//   - Reset: the underlying TCP connection is closed abruptly mid-stream.
//   - Stall: the pump stops moving bytes for StallFor; the backpressure
//     propagates to the sender's conn.Write, which is exactly what a
//     wedged peer looks like (and what write deadlines must recover from).
package chaos

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Faults configures one link's fault channels. Probabilities are per frame
// except PartitionProb, which is per epoch (the paper's Pf). The zero value
// injects nothing.
type Faults struct {
	// PartitionProb is the per-epoch probability the link fails for that
	// whole epoch (silent 100% loss, both directions).
	PartitionProb float64
	// DropProb drops individual frames (per-transmission loss Pl).
	DropProb float64
	// DupProb forwards a frame twice.
	DupProb float64
	// CorruptProb poisons a frame's type byte so the receiver's decoder
	// rejects the stream (detected corruption ⇒ connection teardown).
	CorruptProb float64
	// ResetProb closes the underlying TCP connection abruptly.
	ResetProb float64
	// StallProb freezes the direction's pump for StallFor, wedging the
	// sender's writes behind it.
	StallProb float64
	// StallFor is how long a stall lasts (default 2s).
	StallFor time.Duration
	// Delay is added to every frame's forwarding, plus a seeded jitter
	// uniform in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
}

// Config describes a chaos network.
type Config struct {
	// Seed drives every fault decision stream; same seed, same schedule.
	Seed uint64
	// Epoch is the wall-clock length of one partition epoch (default 200ms
	// — a compressed version of the paper's 1 s epochs).
	Epoch time.Duration
	// Default is the fault plan applied to every broker-broker link without
	// a SetLink override.
	Default Faults
}

// Network coordinates fault injection for one overlay: all listeners
// wrapped by one Network share its seed, epoch clock and per-link state.
type Network struct {
	cfg   Config
	start time.Time

	// active gates all fault injection; 0 means pass everything clean
	// (used to heal the overlay at the end of a soak).
	active atomic.Int32

	mu        sync.Mutex
	links     map[linkKey]*linkState
	overrides map[linkKey]Faults
	conns     map[*chaosConn]struct{}
	closing   bool // set by Close; refuses new wrapConn pumps

	wg sync.WaitGroup

	// Counters are cumulative across the network (atomic).
	framesSeen    atomic.Uint64
	framesDropped atomic.Uint64
	framesDuped   atomic.Uint64
	framesCorrupt atomic.Uint64
	resets        atomic.Uint64
	stalls        atomic.Uint64
}

// Stats is a snapshot of the network's cumulative fault counters.
type Stats struct {
	FramesSeen    uint64
	FramesDropped uint64
	FramesDuped   uint64
	FramesCorrupt uint64
	Resets        uint64
	Stalls        uint64
}

// linkKey identifies one undirected overlay link.
type linkKey struct{ lo, hi int }

func keyOf(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{lo: a, hi: b}
}

// NewNetwork builds a chaos network with injection active.
func NewNetwork(cfg Config) *Network {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 200 * time.Millisecond
	}
	n := &Network{
		cfg:       cfg,
		start:     time.Now(),
		links:     make(map[linkKey]*linkState),
		overrides: make(map[linkKey]Faults),
		conns:     make(map[*chaosConn]struct{}),
	}
	n.active.Store(1)
	return n
}

// SetLink overrides the fault plan for one undirected link, replacing the
// network default. It applies to frames processed after the call.
func (n *Network) SetLink(a, b int, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overrides[keyOf(a, b)] = f
	if ls, ok := n.links[keyOf(a, b)]; ok {
		ls.mu.Lock()
		ls.faults = withStallDefault(f)
		ls.mu.Unlock()
	}
}

// SetActive enables or disables all fault injection. Disabling heals the
// overlay: every frame passes clean, partitions lift immediately.
func (n *Network) SetActive(on bool) {
	if on {
		n.active.Store(1)
	} else {
		n.active.Store(0)
	}
}

// Stats snapshots the cumulative fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		FramesSeen:    n.framesSeen.Load(),
		FramesDropped: n.framesDropped.Load(),
		FramesDuped:   n.framesDuped.Load(),
		FramesCorrupt: n.framesCorrupt.Load(),
		Resets:        n.resets.Load(),
		Stalls:        n.stalls.Load(),
	}
}

// Close tears down every live wrapped connection and waits for the pump
// goroutines. Listeners themselves are the caller's to close.
func (n *Network) Close() {
	n.mu.Lock()
	n.closing = true
	conns := make([]*chaosConn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.teardown()
	}
	n.wg.Wait()
}

// withStallDefault fills the stall duration default.
func withStallDefault(f Faults) Faults {
	if f.StallFor <= 0 {
		f.StallFor = 2 * time.Second
	}
	return f
}

// link returns (creating if needed) the shared state for one undirected
// link. Decision streams live here, so they persist across reconnects.
func (n *Network) link(a, b int) *linkState {
	key := keyOf(a, b)
	n.mu.Lock()
	defer n.mu.Unlock()
	ls, ok := n.links[key]
	if !ok {
		f, overridden := n.overrides[key]
		if !overridden {
			f = n.cfg.Default
		}
		ls = &linkState{
			net:    n,
			key:    key,
			faults: withStallDefault(f),
			part:   rng{s: mix(n.cfg.Seed, uint64(key.lo)<<32|uint64(key.hi), 0x9a73)},
		}
		ls.dirs[0] = &direction{link: ls, rnd: rng{s: mix(n.cfg.Seed, uint64(key.lo)<<32|uint64(key.hi), 1)}}
		ls.dirs[1] = &direction{link: ls, rnd: rng{s: mix(n.cfg.Seed, uint64(key.lo)<<32|uint64(key.hi), 2)}}
		n.links[key] = ls
	}
	return ls
}

// linkState is the persistent chaos state of one undirected link: its fault
// plan, the two per-direction decision streams, and the lazily extended
// epoch partition schedule.
type linkState struct {
	net *Network
	key linkKey

	mu       sync.Mutex
	faults   Faults
	part     rng    // partition schedule stream
	schedule []bool // schedule[i]: is epoch i partitioned?
	// dirs[0] serves lo→hi frames, dirs[1] hi→lo.
	dirs [2]*direction
}

// dir returns the decision stream for frames flowing from → to.
func (ls *linkState) dir(from, to int) *direction {
	if from < to {
		return ls.dirs[0]
	}
	return ls.dirs[1]
}

// partitioned reports whether the link is failed in the current epoch,
// extending the precomputed schedule as the clock reaches new epochs.
func (ls *linkState) partitioned(now time.Time) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.faults.PartitionProb <= 0 {
		return false
	}
	epoch := int(now.Sub(ls.net.start) / ls.net.cfg.Epoch)
	for len(ls.schedule) <= epoch {
		ls.schedule = append(ls.schedule, ls.part.float() < ls.faults.PartitionProb)
	}
	return ls.schedule[epoch]
}

// direction is one flow direction's decision stream.
type direction struct {
	link *linkState
	mu   sync.Mutex
	rnd  rng
}

// verdict is the full set of fault decisions for one frame. The draws are
// always consumed in the same fixed order so the decision stream stays
// aligned across runs regardless of what earlier frames suffered.
type verdict struct {
	drop    bool
	dup     bool
	corrupt bool
	reset   bool
	stall   bool
	delay   time.Duration
}

// decide consumes one frame's worth of draws and folds in the epoch
// partition state.
func (d *direction) decide(now time.Time) verdict {
	d.link.mu.Lock()
	f := d.link.faults
	d.link.mu.Unlock()
	d.mu.Lock()
	v := verdict{
		drop:    d.rnd.float() < f.DropProb,
		dup:     d.rnd.float() < f.DupProb,
		corrupt: d.rnd.float() < f.CorruptProb,
		reset:   d.rnd.float() < f.ResetProb,
		stall:   d.rnd.float() < f.StallProb,
	}
	jitter := d.rnd.float() // always drawn, even when unused
	d.mu.Unlock()
	if f.Delay > 0 || f.DelayJitter > 0 {
		v.delay = f.Delay + time.Duration(jitter*float64(f.DelayJitter))
	}
	if d.link.partitioned(now) {
		v.drop = true
	}
	return v
}

// Listener wraps a broker's listener so every accepted connection flows
// through the chaos network. ownerID is the broker the listener belongs to.
type Listener struct {
	net.Listener
	network *Network
	owner   int
}

// Listener wraps ln for the given owning broker.
func (n *Network) Listener(ln net.Listener, ownerID int) *Listener {
	return &Listener{Listener: ln, network: n, owner: ownerID}
}

// Accept wraps the next inbound connection in the chaos pumps.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.network.wrapConn(c, l.owner), nil
}

// chaosConn is the pump pair bridging one real connection and the pipe end
// handed to the broker.
type chaosConn struct {
	network *Network
	owner   int
	real    net.Conn
	pipe    net.Conn // chaos side of the pipe; the broker holds the other end

	closeOnce sync.Once
	done      chan struct{} // closed by teardown; aborts in-flight sleeps

	// classification: set once the first inbound frame (Hello) is parsed.
	classified chan struct{}
	peer       int // broker ID, or -1 for clients (no faults)
}

// wrapConn starts the pumps for one accepted connection and returns the end
// the broker reads/writes.
func (n *Network) wrapConn(real net.Conn, owner int) net.Conn {
	brokerEnd, chaosEnd := net.Pipe()
	c := &chaosConn{
		network:    n,
		owner:      owner,
		real:       real,
		pipe:       chaosEnd,
		classified: make(chan struct{}),
		done:       make(chan struct{}),
		peer:       -1,
	}
	n.mu.Lock()
	// An accept can race Close (a broker's accept loop outlives the chaos
	// network in failure teardowns). Registering and wg.Add under the same
	// lock that Close uses to set closing means every started pump pair is
	// either seen by Close's teardown snapshot or never started at all —
	// wg.Add can't race wg.Wait.
	if n.closing {
		n.mu.Unlock()
		_ = real.Close()
		_ = chaosEnd.Close()
		_ = brokerEnd.Close()
		return brokerEnd
	}
	n.conns[c] = struct{}{}
	n.wg.Add(2)
	n.mu.Unlock()
	go c.pumpIn()
	go c.pumpOut()
	return brokerEnd
}

// teardown closes both halves; pumps exit on the resulting errors.
func (c *chaosConn) teardown() {
	c.closeOnce.Do(func() {
		close(c.done)
		_ = c.real.Close()
		_ = c.pipe.Close()
	})
	c.network.mu.Lock()
	delete(c.network.conns, c)
	c.network.mu.Unlock()
}

// pumpIn moves peer→owner frames. The first frame classifies the
// connection (Hello.BrokerID) and always passes clean; afterwards, frames
// on broker links run the gauntlet.
func (c *chaosConn) pumpIn() {
	defer c.network.wg.Done()
	defer c.teardown()
	first := true
	c.pump(c.real, c.pipe, func(frame []byte) *direction {
		if first {
			first = false
			c.classify(frame)
			return nil // handshake frame passes clean
		}
		if c.peer < 0 {
			return nil // client connection: no faults
		}
		return c.network.link(c.owner, c.peer).dir(c.peer, c.owner)
	})
}

// pumpOut moves owner→peer frames, waiting for classification so the fault
// plan is known (brokers never send before receiving the peer's Hello, so
// this wait resolves immediately in practice).
func (c *chaosConn) pumpOut() {
	defer c.network.wg.Done()
	defer c.teardown()
	c.pump(c.pipe, c.real, func(frame []byte) *direction {
		select {
		case <-c.classified:
		case <-c.done: // peer never sent its Hello; pass through and let
			return nil // the closed conns error the pump out
		}
		if c.peer < 0 {
			return nil
		}
		return c.network.link(c.owner, c.peer).dir(c.owner, c.peer)
	})
}

// classify parses the first inbound frame as a Hello and records the peer.
// Anything unexpected is treated as a client (clean passthrough).
func (c *chaosConn) classify(frame []byte) {
	// frame = type byte + body; Hello body starts with BrokerID int32.
	if len(frame) >= 5 && wire.Type(frame[0]) == wire.TypeHello {
		if id := int32(binary.BigEndian.Uint32(frame[1:5])); id >= 0 {
			c.peer = int(id)
		}
	}
	close(c.classified)
}

// pump is the shared frame loop: read one frame from src, ask pick for the
// decision stream (nil = forward clean), apply the verdict, write to dst.
func (c *chaosConn) pump(src io.Reader, dst io.Writer, pick func(frame []byte) *direction) {
	var head [4]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(src, head[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(head[:])
		if size == 0 || size > wire.MaxFrameSize {
			return // stream is already broken; tear it down
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		frame := buf[:size]
		if _, err := io.ReadFull(src, frame); err != nil {
			return
		}
		dir := pick(frame)
		if dir == nil || c.network.active.Load() == 0 {
			if !writeFrame(dst, head, frame) {
				return
			}
			continue
		}
		c.network.framesSeen.Add(1)
		v := dir.decide(time.Now())
		if v.stall {
			c.network.stalls.Add(1)
			sleepCtx(c, dir.stallFor())
		}
		if v.delay > 0 {
			sleepCtx(c, v.delay)
		}
		if v.reset {
			c.network.resets.Add(1)
			c.teardown()
			return
		}
		if v.drop {
			c.network.framesDropped.Add(1)
			continue
		}
		if v.corrupt {
			c.network.framesCorrupt.Add(1)
			frame[0] |= 0x80 // unknown type ⇒ peer rejects the stream
			writeFrame(dst, head, frame)
			// The stream is now poisoned from the peer's point of view;
			// finish the job so both sides converge on reconnect.
			c.teardown()
			return
		}
		if !writeFrame(dst, head, frame) {
			return
		}
		if v.dup {
			c.network.framesDuped.Add(1)
			if !writeFrame(dst, head, frame) {
				return
			}
		}
	}
}

// stallFor reads the link's current stall duration.
func (d *direction) stallFor() time.Duration {
	d.link.mu.Lock()
	defer d.link.mu.Unlock()
	return d.link.faults.StallFor
}

// sleepCtx sleeps d, aborting early when the connection tears down so a
// long stall cannot outlive Network.Close.
func sleepCtx(c *chaosConn, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.done:
	}
}

// writeFrame writes header+frame as one frame; false means the stream died.
func writeFrame(dst io.Writer, head [4]byte, frame []byte) bool {
	if _, err := dst.Write(head[:]); err != nil {
		return false
	}
	_, err := dst.Write(frame)
	return err == nil
}

// rng is a splitmix64 stream — tiny, seedable, stable across Go versions.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// mix folds link identity and a stream tag into the seed.
func mix(seed, link, tag uint64) uint64 {
	x := rng{s: seed ^ link*0x9e3779b97f4a7c15 ^ tag<<17}
	return x.next()
}

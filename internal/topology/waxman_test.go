package topology

import (
	"testing"
	"testing/quick"
)

func TestWaxmanBasics(t *testing.T) {
	rng := testRng(61)
	g, err := Waxman(30, 0.9, 0.5, DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 {
		t.Errorf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("Waxman graph not connected")
	}
	if g.NumEdges() == 0 || g.NumEdges() == 30*29/2 {
		t.Errorf("edges = %d, expected a sparse but non-empty graph", g.NumEdges())
	}
	r := DefaultDelayRange()
	for _, l := range g.Links() {
		if l.Delay < r.Min || l.Delay > r.Max {
			t.Errorf("link delay %v outside [%v,%v]", l.Delay, r.Min, r.Max)
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	rng := testRng(62)
	cases := []struct {
		n           int
		alpha, beta float64
	}{
		{1, 0.5, 0.5},
		{10, 0, 0.5},
		{10, 1.5, 0.5},
		{10, 0.5, 0},
		{10, 0.5, 2},
	}
	for _, c := range cases {
		if _, err := Waxman(c.n, c.alpha, c.beta, DefaultDelayRange(), rng); err == nil {
			t.Errorf("Waxman(%d, %v, %v) accepted", c.n, c.alpha, c.beta)
		}
	}
}

func TestWaxmanSparserWithLowerAlpha(t *testing.T) {
	// Average over draws: alpha scales link probability, so edges should
	// drop markedly from alpha=0.9 to alpha=0.3.
	count := func(alpha float64, seed uint64) int {
		total := 0
		for i := 0; i < 10; i++ {
			g, err := Waxman(25, alpha, 0.6, DefaultDelayRange(), testRng(seed+uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += g.NumEdges()
		}
		return total
	}
	dense := count(0.9, 100)
	sparse := count(0.3, 200)
	if sparse >= dense {
		t.Errorf("alpha=0.3 gave %d edges vs alpha=0.9's %d", sparse, dense)
	}
}

// Property: every successful Waxman draw is simple, connected, and delays
// grow with distance (nearby pairs never get the max delay unless at the
// range edge — checked indirectly via the delay bound).
func TestWaxmanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRng(seed)
		g, err := Waxman(15, 0.8, 0.7, DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		for u := 0; u < g.N(); u++ {
			seen := map[int]bool{u: true}
			for _, e := range g.Neighbors(u) {
				if seen[e.To] {
					return false
				}
				seen[e.To] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package topology

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func testRng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcdef))
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph(3)
	tests := []struct {
		name    string
		u, v    int
		delay   time.Duration
		wantErr bool
	}{
		{name: "ok", u: 0, v: 1, delay: time.Millisecond, wantErr: false},
		{name: "self-loop", u: 1, v: 1, delay: time.Millisecond, wantErr: true},
		{name: "out-of-range", u: 0, v: 3, delay: time.Millisecond, wantErr: true},
		{name: "negative-node", u: -1, v: 2, delay: time.Millisecond, wantErr: true},
		{name: "duplicate", u: 1, v: 0, delay: time.Millisecond, wantErr: true},
		{name: "zero-delay", u: 1, v: 2, delay: 0, wantErr: true},
		{name: "negative-delay", u: 1, v: 2, delay: -time.Second, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddLink(tt.u, tt.v, tt.delay)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddLink(%d,%d,%v) error = %v, wantErr %v", tt.u, tt.v, tt.delay, err, tt.wantErr)
			}
		})
	}
}

func TestLinkSymmetry(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddLink(1, 3, 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d1, ok1 := g.LinkDelay(1, 3)
	d2, ok2 := g.LinkDelay(3, 1)
	if !ok1 || !ok2 || d1 != d2 || d1 != 25*time.Millisecond {
		t.Errorf("asymmetric link: (%v,%v) (%v,%v)", d1, ok1, d2, ok2)
	}
	if !g.HasLink(3, 1) || g.HasLink(0, 2) {
		t.Error("HasLink wrong")
	}
	if g.Degree(1) != 1 || g.Degree(0) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestLinksEnumeration(t *testing.T) {
	g := NewGraph(4)
	mustAdd(t, g, 0, 1, 10*time.Millisecond)
	mustAdd(t, g, 2, 1, 20*time.Millisecond)
	mustAdd(t, g, 3, 0, 30*time.Millisecond)
	links := g.Links()
	if len(links) != 3 {
		t.Fatalf("Links len = %d, want 3", len(links))
	}
	for _, l := range links {
		if l.From >= l.To {
			t.Errorf("link %v not normalized", l)
		}
		d, ok := g.LinkDelay(l.From, l.To)
		if !ok || d != l.Delay {
			t.Errorf("link %v delay mismatch", l)
		}
	}
}

func mustAdd(t *testing.T, g *Graph, u, v int, d time.Duration) {
	t.Helper()
	if err := g.AddLink(u, v, d); err != nil {
		t.Fatal(err)
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	if g.Connected() {
		t.Error("edgeless 4-node graph reported connected")
	}
	mustAdd(t, g, 0, 1, time.Millisecond)
	mustAdd(t, g, 2, 3, time.Millisecond)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	mustAdd(t, g, 1, 2, time.Millisecond)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !NewGraph(1).Connected() || !NewGraph(0).Connected() {
		t.Error("trivial graphs must be connected")
	}
}

func TestClone(t *testing.T) {
	g := NewGraph(3)
	mustAdd(t, g, 0, 1, time.Millisecond)
	c := g.Clone()
	mustAdd(t, c, 1, 2, time.Millisecond)
	if g.HasLink(1, 2) {
		t.Error("mutating clone affected original")
	}
	if !c.HasLink(0, 1) {
		t.Error("clone lost links")
	}
}

func TestCanonical(t *testing.T) {
	if a, b := Canonical(5, 2); a != 2 || b != 5 {
		t.Errorf("Canonical(5,2) = (%d,%d)", a, b)
	}
	if a, b := Canonical(2, 5); a != 2 || b != 5 {
		t.Errorf("Canonical(2,5) = (%d,%d)", a, b)
	}
}

func TestFullMesh(t *testing.T) {
	rng := testRng(1)
	g, err := FullMesh(20, DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 20*19/2 {
		t.Errorf("edges = %d, want %d", g.NumEdges(), 20*19/2)
	}
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 19 {
			t.Errorf("node %d degree = %d, want 19", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Error("mesh not connected")
	}
	if _, err := FullMesh(1, DefaultDelayRange(), rng); err == nil {
		t.Error("FullMesh(1) should fail")
	}
}

func TestDelayRangeDraw(t *testing.T) {
	rng := testRng(2)
	r := DefaultDelayRange()
	for i := 0; i < 1000; i++ {
		d := r.Draw(rng)
		if d < r.Min || d > r.Max {
			t.Fatalf("delay %v outside [%v, %v]", d, r.Min, r.Max)
		}
	}
	deg := DelayRange{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if d := deg.Draw(rng); d != 5*time.Millisecond {
		t.Errorf("degenerate range draw = %v", d)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := testRng(3)
	for _, tt := range []struct{ n, degree int }{
		{20, 3}, {20, 5}, {20, 8}, {10, 4}, {40, 8},
	} {
		g, err := RandomRegular(tt.n, tt.degree, DefaultDelayRange(), rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tt.n, tt.degree, err)
		}
		for u := 0; u < tt.n; u++ {
			if g.Degree(u) != tt.degree {
				t.Errorf("n=%d d=%d: node %d degree = %d", tt.n, tt.degree, u, g.Degree(u))
			}
		}
		if !g.Connected() {
			t.Errorf("n=%d d=%d: not connected", tt.n, tt.degree)
		}
	}
}

func TestRandomRegularRejectsBadArgs(t *testing.T) {
	rng := testRng(4)
	if _, err := RandomRegular(20, 0, DefaultDelayRange(), rng); err == nil {
		t.Error("degree 0 should fail")
	}
	if _, err := RandomRegular(20, 20, DefaultDelayRange(), rng); err == nil {
		t.Error("degree >= n should fail")
	}
	if _, err := RandomRegular(5, 3, DefaultDelayRange(), rng); err == nil {
		t.Error("odd n*degree should fail")
	}
}

// Property: every RandomRegular draw is simple, connected and exactly
// regular for random valid parameters.
func TestRandomRegularProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := 6 + 2*(int(nRaw)%16) // even 6..36
		d := 3 + int(dRaw)%4      // 3..6
		if d >= n {
			return true
		}
		if n*d%2 != 0 {
			d++ // keep n*d even; n even makes any d fine, this is belt and braces
		}
		rng := testRng(seed)
		g, err := RandomRegular(n, d, DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) != d {
				return false
			}
			seen := map[int]bool{u: true}
			for _, e := range g.Neighbors(u) {
				if seen[e.To] {
					return false // self-loop or parallel edge
				}
				seen[e.To] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

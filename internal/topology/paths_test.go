package topology

import (
	"testing"
	"testing/quick"
	"time"
)

// lineGraph builds 0-1-2-...-n-1 with the given per-hop delays.
func lineGraph(t *testing.T, delays ...time.Duration) *Graph {
	t.Helper()
	g := NewGraph(len(delays) + 1)
	for i, d := range delays {
		mustAdd(t, g, i, i+1, d)
	}
	return g
}

// diamondGraph: 0-1 (10ms), 0-2 (40ms), 1-3 (10ms), 2-3 (10ms), 1-2 (5ms).
// Shortest 0->3 by delay: 0-1-3 (20ms); by hops also 2.
func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(4)
	mustAdd(t, g, 0, 1, 10*time.Millisecond)
	mustAdd(t, g, 0, 2, 40*time.Millisecond)
	mustAdd(t, g, 1, 3, 10*time.Millisecond)
	mustAdd(t, g, 2, 3, 10*time.Millisecond)
	mustAdd(t, g, 1, 2, 5*time.Millisecond)
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond)
	tr := Dijkstra(g, 0, nil)
	wantDist := []time.Duration{0, 10 * time.Millisecond, 30 * time.Millisecond, 60 * time.Millisecond}
	for i, want := range wantDist {
		if tr.Dist[i] != want {
			t.Errorf("Dist[%d] = %v, want %v", i, tr.Dist[i], want)
		}
	}
	p, err := tr.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 1, 2, 3}) {
		t.Errorf("path = %v", p)
	}
	if nh := tr.NextHop(3); nh != 1 {
		t.Errorf("NextHop(3) = %d, want 1", nh)
	}
	if nh := tr.NextHop(0); nh != -1 {
		t.Errorf("NextHop(source) = %d, want -1", nh)
	}
}

func TestDijkstraPrefersLowDelayMultiHop(t *testing.T) {
	g := diamondGraph(t)
	tr := Dijkstra(g, 0, nil)
	p, err := tr.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 1, 3}) {
		t.Errorf("path = %v, want 0-1-3", p)
	}
	if tr.Dist[3] != 20*time.Millisecond {
		t.Errorf("Dist[3] = %v, want 20ms", tr.Dist[3])
	}
	// Node 2 is cheaper via 1: 0-1-2 = 15ms < direct 40ms.
	if tr.Dist[2] != 15*time.Millisecond {
		t.Errorf("Dist[2] = %v, want 15ms", tr.Dist[2])
	}
}

func TestDijkstraFilter(t *testing.T) {
	g := diamondGraph(t)
	blocked := func(u, v int) bool {
		a, b := Canonical(u, v)
		return !(a == 0 && b == 1) // remove link 0-1
	}
	tr := Dijkstra(g, 0, blocked)
	p, err := tr.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] == 1 {
		t.Errorf("path %v uses removed link 0-1", p)
	}
	// Best without 0-1: 0-2-3 = 50ms vs 0-2-1-3... 0-2=40, 2-1=5, 1-3=10 -> 55. So 0-2-3.
	if tr.Dist[3] != 50*time.Millisecond {
		t.Errorf("Dist[3] = %v, want 50ms", tr.Dist[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(3)
	mustAdd(t, g, 0, 1, time.Millisecond)
	tr := Dijkstra(g, 0, nil)
	if tr.Dist[2] != Infinite {
		t.Errorf("Dist[2] = %v, want Infinite", tr.Dist[2])
	}
	if _, err := tr.PathTo(2); err != ErrNoPath {
		t.Errorf("PathTo(2) error = %v, want ErrNoPath", err)
	}
	if nh := tr.NextHop(2); nh != -1 {
		t.Errorf("NextHop(unreachable) = %d, want -1", nh)
	}
}

func TestBFSMinimizesHops(t *testing.T) {
	// 0-3 direct (90ms) vs 0-1-2-3 (10+10+10). BFS must pick the 1-hop path
	// even though it is slower; Dijkstra must pick the 3-hop path.
	g := NewGraph(4)
	mustAdd(t, g, 0, 3, 90*time.Millisecond)
	mustAdd(t, g, 0, 1, 10*time.Millisecond)
	mustAdd(t, g, 1, 2, 10*time.Millisecond)
	mustAdd(t, g, 2, 3, 10*time.Millisecond)

	bfs := BFS(g, 0)
	p, err := bfs.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 3}) {
		t.Errorf("BFS path = %v, want direct 0-3", p)
	}

	dj := Dijkstra(g, 0, nil)
	p, err = dj.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 1, 2, 3}) {
		t.Errorf("Dijkstra path = %v, want 0-1-2-3", p)
	}
}

func TestBFSTieBreaksOnDelay(t *testing.T) {
	// Two 2-hop routes 0->3: via 1 (10+10) and via 2 (5+5). Equal hops, BFS
	// should record the lower-delay parent.
	g := NewGraph(4)
	mustAdd(t, g, 0, 1, 10*time.Millisecond)
	mustAdd(t, g, 1, 3, 10*time.Millisecond)
	mustAdd(t, g, 0, 2, 5*time.Millisecond)
	mustAdd(t, g, 2, 3, 5*time.Millisecond)
	tr := BFS(g, 0)
	p, err := tr.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 2, 3}) {
		t.Errorf("BFS tie-break path = %v, want 0-2-3", p)
	}
}

func TestPathHelpers(t *testing.T) {
	g := diamondGraph(t)
	p := Path{0, 1, 3}
	d, err := p.Delay(g)
	if err != nil || d != 20*time.Millisecond {
		t.Errorf("Delay = %v, %v", d, err)
	}
	if p.Hops() != 2 {
		t.Errorf("Hops = %d", p.Hops())
	}
	if (Path{}).Hops() != 0 {
		t.Error("empty path hops != 0")
	}
	if _, err := (Path{0, 3}).Delay(g); err == nil {
		t.Error("Delay over missing link should fail")
	}
	q := Path{0, 2, 3}
	if p.SharedLinks(q) != 0 {
		t.Errorf("SharedLinks = %d, want 0", p.SharedLinks(q))
	}
	if p.SharedLinks(Path{3, 1, 0}) != 2 { // reversed direction still shares links
		t.Errorf("reversed SharedLinks = %d, want 2", p.SharedLinks(Path{3, 1, 0}))
	}
	if !p.Equal(Path{0, 1, 3}) || p.Equal(q) || p.Equal(Path{0, 1}) {
		t.Error("Equal wrong")
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamondGraph(t)
	paths, err := KShortestPaths(g, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	// Enumerate all loopless 0->3 paths and their delays:
	// 0-1-3: 20ms; 0-1-2-3: 25ms; 0-2-3: 50ms; 0-2-1-3: 55ms.
	want := []Path{{0, 1, 3}, {0, 1, 2, 3}, {0, 2, 3}, {0, 2, 1, 3}}
	for i := range want {
		if !paths[i].Equal(want[i]) {
			t.Errorf("paths[%d] = %v, want %v", i, paths[i], want[i])
		}
	}
	var prev time.Duration
	for i, p := range paths {
		d, err := p.Delay(g)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Errorf("paths out of delay order at %d", i)
		}
		prev = d
	}
}

func TestKShortestPathsLooplessAndDistinct(t *testing.T) {
	rng := testRng(5)
	g, err := RandomRegular(12, 4, DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := KShortestPaths(g, 0, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i, p := range paths {
		seen := make(map[int]bool)
		for _, v := range p {
			if seen[v] {
				t.Errorf("path %d has a loop: %v", i, p)
			}
			seen[v] = true
		}
		if p[0] != 0 || p[len(p)-1] != 7 {
			t.Errorf("path %d endpoints wrong: %v", i, p)
		}
		for j := 0; j < i; j++ {
			if p.Equal(paths[j]) {
				t.Errorf("paths %d and %d identical: %v", i, j, p)
			}
		}
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := NewGraph(3)
	mustAdd(t, g, 0, 1, time.Millisecond)
	if _, err := KShortestPaths(g, 0, 2, 3); err != ErrNoPath {
		t.Errorf("error = %v, want ErrNoPath", err)
	}
	paths, err := KShortestPaths(g, 0, 1, 0)
	if err != nil || paths != nil {
		t.Errorf("k=0 should be (nil, nil), got (%v, %v)", paths, err)
	}
}

func TestKShortestFirstMatchesDijkstra(t *testing.T) {
	rng := testRng(6)
	g, err := RandomRegular(16, 5, DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := Dijkstra(g, 2, nil)
	for dst := 0; dst < 16; dst++ {
		if dst == 2 {
			continue
		}
		paths, err := KShortestPaths(g, 2, dst, 1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := paths[0].Delay(g)
		if err != nil {
			t.Fatal(err)
		}
		if d != tr.Dist[dst] {
			t.Errorf("dst %d: Yen first path delay %v != Dijkstra %v", dst, d, tr.Dist[dst])
		}
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over links —
// dist[v] <= dist[u] + delay(u,v) for every link — and every parent pointer
// is tight (dist[v] == dist[parent]+delay).
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRng(seed)
		g, err := RandomRegular(14, 4, DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		tr := Dijkstra(g, int(seed%14), nil)
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				if tr.Dist[u] == Infinite {
					continue
				}
				if tr.Dist[e.To] > tr.Dist[u]+e.Delay {
					return false
				}
			}
			if p := tr.Parent[u]; p != -1 {
				d, ok := g.LinkDelay(p, u)
				if !ok || tr.Dist[u] != tr.Dist[p]+d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

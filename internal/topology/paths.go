package topology

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Infinite is the sentinel distance for unreachable nodes.
const Infinite = time.Duration(math.MaxInt64)

// Path is a node sequence from source to destination (inclusive).
type Path []int

// ErrNoPath is returned when no path exists between the requested endpoints.
var ErrNoPath = errors.New("topology: no path")

// Delay returns the total propagation delay along the path in g. It returns
// an error if a consecutive pair on the path is not a link of g.
func (p Path) Delay(g *Graph) (time.Duration, error) {
	var total time.Duration
	for i := 0; i+1 < len(p); i++ {
		d, ok := g.LinkDelay(p[i], p[i+1])
		if !ok {
			return 0, fmt.Errorf("topology: path uses missing link (%d,%d)", p[i], p[i+1])
		}
		total += d
	}
	return total, nil
}

// Hops returns the number of links on the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Equal reports whether two paths visit the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// SharedLinks counts undirected links present on both paths.
func (p Path) SharedLinks(q Path) int {
	type link struct{ a, b int }
	set := make(map[link]bool, len(p))
	for i := 0; i+1 < len(p); i++ {
		a, b := Canonical(p[i], p[i+1])
		set[link{a, b}] = true
	}
	shared := 0
	for i := 0; i+1 < len(q); i++ {
		a, b := Canonical(q[i], q[i+1])
		if set[link{a, b}] {
			shared++
		}
	}
	return shared
}

// ShortestPathTree holds single-source shortest-path results: per-node
// distance and predecessor. Dist is Infinite (and Parent -1) for
// unreachable nodes; Parent[src] is -1.
type ShortestPathTree struct {
	Source int
	Dist   []time.Duration
	Parent []int
}

// PathTo reconstructs the path from the tree's source to dst.
func (t *ShortestPathTree) PathTo(dst int) (Path, error) {
	if dst < 0 || dst >= len(t.Dist) || t.Dist[dst] == Infinite {
		return nil, ErrNoPath
	}
	var rev []int
	for v := dst; v != -1; v = t.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev[0] != t.Source {
		return nil, ErrNoPath
	}
	return rev, nil
}

// NextHop returns the first hop on the tree path from the source toward dst,
// or -1 if dst is the source or unreachable.
func (t *ShortestPathTree) NextHop(dst int) int {
	if dst == t.Source || dst < 0 || dst >= len(t.Dist) || t.Dist[dst] == Infinite {
		return -1
	}
	v := dst
	for t.Parent[v] != t.Source {
		v = t.Parent[v]
	}
	return v
}

// LinkFilter restricts which links an algorithm may traverse.
// A nil LinkFilter admits every link.
type LinkFilter func(u, v int) bool

// Dijkstra computes shortest-delay paths from src over links admitted by
// filter (nil means all links).
func Dijkstra(g *Graph, src int, filter LinkFilter) *ShortestPathTree {
	n := g.N()
	t := &ShortestPathTree{
		Source: src,
		Dist:   make([]time.Duration, n),
		Parent: make([]int, n),
	}
	for i := range t.Dist {
		t.Dist[i] = Infinite
		t.Parent[i] = -1
	}
	if src < 0 || src >= n {
		return t
	}
	t.Dist[src] = 0
	pq := &distQueue{}
	heap.Push(pq, distItem{node: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > t.Dist[it.node] {
			continue
		}
		for _, e := range g.Neighbors(it.node) {
			if filter != nil && !filter(it.node, e.To) {
				continue
			}
			nd := it.dist + e.Delay
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = it.node
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return t
}

// BFS computes shortest-hop-count paths from src, breaking ties between
// equal-hop predecessors by smaller accumulated delay so the resulting
// "most reliable tree" is deterministic.
func BFS(g *Graph, src int) *ShortestPathTree {
	n := g.N()
	t := &ShortestPathTree{
		Source: src,
		Dist:   make([]time.Duration, n),
		Parent: make([]int, n),
	}
	hops := make([]int, n)
	delay := make([]time.Duration, n)
	for i := range t.Dist {
		t.Dist[i] = Infinite
		t.Parent[i] = -1
		hops[i] = math.MaxInt
		delay[i] = Infinite
	}
	if src < 0 || src >= n {
		return t
	}
	hops[src] = 0
	delay[src] = 0
	t.Dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			nh := hops[u] + 1
			nd := delay[u] + e.Delay
			switch {
			case nh < hops[e.To]:
				hops[e.To] = nh
				delay[e.To] = nd
				t.Parent[e.To] = u
				t.Dist[e.To] = nd
				queue = append(queue, e.To)
			case nh == hops[e.To] && nd < delay[e.To]:
				delay[e.To] = nd
				t.Parent[e.To] = u
				t.Dist[e.To] = nd
			}
		}
	}
	return t
}

// KShortestPaths returns up to k loopless shortest-delay paths from src to
// dst in increasing delay order, using Yen's algorithm. It returns ErrNoPath
// when src cannot reach dst at all.
func KShortestPaths(g *Graph, src, dst, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first := Dijkstra(g, src, nil)
	best, err := first.PathTo(dst)
	if err != nil {
		return nil, ErrNoPath
	}
	paths := []Path{best}
	type candidate struct {
		path  Path
		delay time.Duration
	}
	var candidates []candidate

	haveCandidate := func(p Path) bool {
		for _, c := range candidates {
			if c.path.Equal(p) {
				return true
			}
		}
		return false
	}
	havePath := func(p Path) bool {
		for _, q := range paths {
			if q.Equal(p) {
				return true
			}
		}
		return false
	}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except dst.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			// Links removed: the next link of every accepted path sharing
			// this root prefix.
			type link struct{ a, b int }
			removed := make(map[link]bool)
			for _, p := range paths {
				if len(p) > i && Path(p[:i+1]).Equal(rootPath) && len(p) > i+1 {
					a, b := Canonical(p[i], p[i+1])
					removed[link{a, b}] = true
				}
			}
			// Nodes on the root path (except the spur node) are excluded.
			excluded := make(map[int]bool, i)
			for _, v := range rootPath[:len(rootPath)-1] {
				excluded[v] = true
			}
			filter := func(u, v int) bool {
				if excluded[u] || excluded[v] {
					return false
				}
				a, b := Canonical(u, v)
				return !removed[link{a, b}]
			}
			spurTree := Dijkstra(g, spurNode, filter)
			spurPath, err := spurTree.PathTo(dst)
			if err != nil {
				continue
			}
			total := make(Path, 0, len(rootPath)-1+len(spurPath))
			total = append(total, rootPath[:len(rootPath)-1]...)
			total = append(total, spurPath...)
			if havePath(total) || haveCandidate(total) {
				continue
			}
			d, derr := total.Delay(g)
			if derr != nil {
				continue
			}
			candidates = append(candidates, candidate{path: total, delay: d})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].delay != candidates[b].delay {
				return candidates[a].delay < candidates[b].delay
			}
			return len(candidates[a].path) < len(candidates[b].path)
		})
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths, nil
}

type distItem struct {
	node int
	dist time.Duration
}

type distQueue []distItem

func (q distQueue) Len() int           { return len(q) }
func (q distQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q distQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x any)        { *q = append(*q, x.(distItem)) }
func (q *distQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

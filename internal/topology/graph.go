// Package topology provides the overlay-graph substrate used by the DCRD
// simulator: an undirected weighted graph type, the paper's two topology
// generators (full mesh and random degree-d overlays with link delays drawn
// from U[10 ms, 50 ms]), and the path algorithms every routing approach is
// built on — BFS hop-count trees, Dijkstra delay trees, constrained
// Dijkstra (for the ORACLE baseline) and Yen's k-shortest loopless paths
// (for the Multipath baseline).
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Graph is an undirected overlay graph with per-link propagation delays.
// Nodes are dense integers in [0, N). The zero value is an empty graph;
// construct with NewGraph.
type Graph struct {
	n     int
	adj   [][]Edge
	edges int
}

// Edge is one directed half of an undirected overlay link.
type Edge struct {
	To    int
	Delay time.Duration
}

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int { return g.edges }

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be mutated.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// AddLink adds an undirected link between u and v with the given symmetric
// propagation delay. It returns an error for self-loops, out-of-range nodes,
// duplicate links, or non-positive delays.
func (g *Graph) AddLink(u, v int, delay time.Duration) error {
	if u == v {
		return fmt.Errorf("topology: self-loop at node %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("topology: link (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if delay <= 0 {
		return fmt.Errorf("topology: non-positive delay %v on link (%d,%d)", delay, u, v)
	}
	if g.HasLink(u, v) {
		return fmt.Errorf("topology: duplicate link (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Delay: delay})
	g.adj[v] = append(g.adj[v], Edge{To: u, Delay: delay})
	g.edges++
	return nil
}

// HasLink reports whether an undirected link between u and v exists.
func (g *Graph) HasLink(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// LinkDelay returns the propagation delay of link (u,v).
// The second result reports whether the link exists.
func (g *Graph) LinkDelay(u, v int) (time.Duration, bool) {
	if u < 0 || u >= g.n {
		return 0, false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return e.Delay, true
		}
	}
	return 0, false
}

// Links returns every undirected link exactly once, with From < To.
func (g *Graph) Links() []Link {
	links := make([]Link, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.To {
				links = append(links, Link{From: u, To: e.To, Delay: e.Delay})
			}
		}
	}
	return links
}

// Link is an undirected overlay link with From < To.
type Link struct {
	From, To int
	Delay    time.Duration
}

// Canonical returns the (min, max) normalized endpoints of a node pair,
// useful as a map key for undirected links.
func Canonical(u, v int) (int, int) {
	if u > v {
		return v, u
	}
	return u, v
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	c.edges = g.edges
	for u := range g.adj {
		c.adj[u] = append([]Edge(nil), g.adj[u]...)
	}
	return c
}

// DelayRange is the closed interval link delays are drawn from.
// The paper draws from U[10 ms, 50 ms] based on AT&T backbone measurements.
type DelayRange struct {
	Min, Max time.Duration
}

// DefaultDelayRange is the paper's U[10 ms, 50 ms] link-delay distribution.
func DefaultDelayRange() DelayRange {
	return DelayRange{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond}
}

// Draw samples a delay uniformly from the range.
func (r DelayRange) Draw(rng *rand.Rand) time.Duration {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + time.Duration(rng.Int64N(int64(r.Max-r.Min)+1))
}

// FullMesh builds a complete graph over n nodes with link delays drawn from
// delays using rng.
func FullMesh(n int, delays DelayRange, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, errors.New("topology: full mesh needs at least 2 nodes")
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := g.AddLink(u, v, delays.Draw(rng)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomRegular builds a connected random graph where every node has exactly
// the given degree, matching the paper's "for a given link degree, we
// randomly choose the neighboring nodes". It uses Steger–Wormald pairing —
// repeatedly joining two random nodes with free stubs that are not yet
// adjacent — restarting when the pairing wedges itself or the result is
// disconnected.
//
// n*degree must be even and degree must satisfy 1 <= degree < n.
func RandomRegular(n, degree int, delays DelayRange, rng *rand.Rand) (*Graph, error) {
	if degree < 1 || degree >= n {
		return nil, fmt.Errorf("topology: degree %d invalid for %d nodes", degree, n)
	}
	if n*degree%2 != 0 {
		return nil, fmt.Errorf("topology: n*degree = %d*%d is odd", n, degree)
	}
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryRegular(n, degree, delays, rng)
		if ok && g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build connected %d-regular graph over %d nodes", degree, n)
}

// Waxman builds a connected Waxman random graph: n nodes are placed
// uniformly in the unit square and each pair (u,v) is linked with
// probability alpha*exp(-dist(u,v)/(beta*sqrt(2))). Link delays are the
// Euclidean distance mapped linearly onto the delay range, so nearby nodes
// get fast links — the classic Internet-like topology model, offered as a
// more realistic alternative to the paper's full-mesh/regular overlays.
// Draws are retried until connected.
func Waxman(n int, alpha, beta float64, delays DelayRange, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, errors.New("topology: Waxman needs at least 2 nodes")
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: Waxman parameters alpha=%v beta=%v outside (0,1]", alpha, beta)
	}
	const maxAttempts = 1000
	maxDist := math.Sqrt2
	for attempt := 0; attempt < maxAttempts; attempt++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		g := NewGraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				dist := math.Sqrt(dx*dx + dy*dy)
				if rng.Float64() >= alpha*math.Exp(-dist/(beta*maxDist)) {
					continue
				}
				span := float64(delays.Max - delays.Min)
				delay := delays.Min + time.Duration(dist/maxDist*span)
				if delay <= 0 {
					delay = delays.Min
				}
				if err := g.AddLink(u, v, delay); err != nil {
					return nil, err
				}
			}
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build connected Waxman graph (n=%d, alpha=%v, beta=%v)", n, alpha, beta)
}

// tryRegular attempts one Steger–Wormald pairing. It reports false when the
// pairing gets stuck (the remaining stubs admit no legal link).
func tryRegular(n, degree int, delays DelayRange, rng *rand.Rand) (*Graph, bool) {
	g := NewGraph(n)
	free := make([]int, n) // remaining stubs per node
	open := make([]int, n) // nodes with free stubs
	for u := range free {
		free[u] = degree
		open[u] = u
	}
	remove := func(i int) {
		open[i] = open[len(open)-1]
		open = open[:len(open)-1]
	}
	misses := 0
	maxMisses := 200 * n
	for len(open) > 1 {
		i := rng.IntN(len(open))
		j := rng.IntN(len(open))
		if i == j {
			continue
		}
		u, v := open[i], open[j]
		if g.HasLink(u, v) {
			misses++
			if misses > maxMisses {
				return nil, false
			}
			continue
		}
		if err := g.AddLink(u, v, delays.Draw(rng)); err != nil {
			return nil, false
		}
		free[u]--
		free[v]--
		// Remove the higher index first so the first removal does not move
		// the second entry.
		if i < j {
			i, j = j, i
		}
		if free[open[i]] == 0 {
			remove(i)
		}
		if free[open[j]] == 0 {
			remove(j)
		}
		misses = 0
	}
	if len(open) != 0 {
		return nil, false
	}
	return g, true
}

package topology_test

import (
	"fmt"
	"time"

	"repro/internal/topology"
)

func buildDiamond() *topology.Graph {
	g := topology.NewGraph(4)
	links := []struct {
		u, v int
		d    time.Duration
	}{
		{0, 1, 10 * time.Millisecond},
		{1, 3, 10 * time.Millisecond},
		{0, 2, 25 * time.Millisecond},
		{2, 3, 25 * time.Millisecond},
	}
	for _, l := range links {
		if err := g.AddLink(l.u, l.v, l.d); err != nil {
			panic(err)
		}
	}
	return g
}

// ExampleDijkstra finds the shortest-delay route across a diamond overlay.
func ExampleDijkstra() {
	g := buildDiamond()
	tree := topology.Dijkstra(g, 0, nil)
	path, err := tree.PathTo(3)
	if err != nil {
		panic(err)
	}
	delay, err := path.Delay(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("path %v, delay %v\n", []int(path), delay)
	// Output:
	// path [0 1 3], delay 20ms
}

// ExampleKShortestPaths enumerates alternate routes in delay order —
// the machinery behind the Multipath baseline.
func ExampleKShortestPaths() {
	g := buildDiamond()
	paths, err := topology.KShortestPaths(g, 0, 3, 2)
	if err != nil {
		panic(err)
	}
	for _, p := range paths {
		d, err := p.Delay(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v %v\n", []int(p), d)
	}
	// Output:
	// [0 1 3] 20ms
	// [0 2 3] 50ms
}

package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/wire"
)

// testData builds a custody Data frame.
func testData(frameID, pid uint64, dests ...int32) *wire.Data {
	return &wire.Data{
		FrameID:     frameID,
		PacketID:    pid,
		Topic:       3,
		Source:      1,
		PublishedAt: time.Unix(100, 500).UTC(),
		Deadline:    150 * time.Millisecond,
		Dests:       dests,
		Path:        []int32{1, 2},
		Payload:     []byte("payload"),
	}
}

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, cfg Config) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// flightDests returns the recovered outstanding dests for one packet ID,
// sorted, merged across entries.
func flightDests(rec *Recovered, pid uint64) []int32 {
	var ds []int32
	for _, f := range rec.Flights {
		if f.Rec.PacketID == pid {
			ds = append(ds, f.Rec.Dests...)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

func TestRecoverOutstandingFlights(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, NodeID: 4}

	l, rec := openT(t, cfg)
	if rec.Incarnation != 1 {
		t.Fatalf("fresh dir incarnation = %d, want 1", rec.Incarnation)
	}
	if len(rec.Flights) != 0 || len(rec.Delivered) != 0 {
		t.Fatalf("fresh dir recovered %d flights, %d delivered", len(rec.Flights), len(rec.Delivered))
	}
	l.AppendCustody(testData(10, 100, 2, 5, 4), 1) // relayed, incl. our own dest
	l.AppendCustody(testData(0, 200, 7), -1)       // origin publish
	l.AppendCustody(testData(11, 300, 9), 1)
	l.AppendClear(100, []int{5}) // dest 5 handed off
	l.AppendDeliver(100)         // our own dest delivered
	l.AppendClear(300, nil)      // fully settled
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, cfg)
	defer l2.Close()
	if rec2.Incarnation != 2 {
		t.Errorf("incarnation = %d, want 2", rec2.Incarnation)
	}
	if got := flightDests(rec2, 100); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("packet 100 outstanding = %v, want [2]", got)
	}
	if got := flightDests(rec2, 200); !reflect.DeepEqual(got, []int32{7}) {
		t.Errorf("packet 200 outstanding = %v, want [7]", got)
	}
	if got := flightDests(rec2, 300); got != nil {
		t.Errorf("packet 300 outstanding = %v, want none", got)
	}
	if !reflect.DeepEqual(rec2.Delivered, []uint64{100}) {
		t.Errorf("delivered = %v, want [100]", rec2.Delivered)
	}
	// The full original frame must survive for replay.
	for _, f := range rec2.Flights {
		if f.Rec.PacketID != 100 {
			continue
		}
		if f.Rec.FrameID != 10 || f.Rec.Topic != 3 || string(f.Rec.Payload) != "payload" ||
			!reflect.DeepEqual(f.Rec.Path, []int32{1, 2}) {
			t.Errorf("recovered frame mangled: %+v", f.Rec)
		}
	}
}

func TestIncarnationMonotonic(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, NodeID: 0}
	for want := uint64(1); want <= 4; want++ {
		l, rec := openT(t, cfg)
		if rec.Incarnation != want {
			t.Fatalf("open %d: incarnation %d", want, rec.Incarnation)
		}
		l.Close()
	}
}

func TestDuplicateCustodySuppressed(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, NodeID: 0})
	l.AppendCustody(testData(10, 100, 2), 1)
	l.AppendCustody(testData(10, 100, 2), 1) // upstream retransmission
	l.Close()

	_, rec := openT(t, Config{Dir: dir, NodeID: 0})
	if got := flightDests(rec, 100); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("outstanding = %v, want [2] (one entry)", got)
	}
	if len(rec.Flights) != 1 {
		t.Errorf("recovered %d flights, want 1", len(rec.Flights))
	}
}

// seg returns the single current segment's path and contents.
func seg(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(seqs))
	}
	p := segPath(dir, seqs[len(seqs)-1])
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, data
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, NodeID: 0})
	l.AppendCustody(testData(10, 100, 2), -1)
	l.AppendCustody(testData(11, 200, 3), -1)
	l.Close()

	// Chop the tail mid-record: the last record is lost, the prefix survives.
	p, data := seg(t, dir)
	if err := os.WriteFile(p, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, Config{Dir: dir, NodeID: 0})
	if got := flightDests(rec, 100); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("packet 100 outstanding = %v, want [2]", got)
	}
	if got := flightDests(rec, 200); got != nil {
		t.Errorf("torn packet 200 resurrected: %v", got)
	}
}

func TestCorruptCRCStopsScan(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, NodeID: 0})
	l.AppendCustody(testData(10, 100, 2), -1)
	l.AppendCustody(testData(11, 200, 3), -1)
	l.Close()

	// Flip one payload byte of the LAST record (the meta record leads the
	// segment, then custody 100, then custody 200).
	p, data := seg(t, dir)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, Config{Dir: dir, NodeID: 0})
	if got := flightDests(rec, 100); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("packet 100 outstanding = %v, want [2]", got)
	}
	if got := flightDests(rec, 200); got != nil {
		t.Errorf("corrupt packet 200 survived CRC: %v", got)
	}
}

func TestReplayAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment budget forces rotations mid-stream.
	l, _ := openT(t, Config{Dir: dir, NodeID: 0, SegmentBytes: 2048})
	for pid := uint64(1); pid <= 100; pid++ {
		l.AppendCustody(testData(pid, pid, 2), -1)
		if pid%2 == 0 {
			l.AppendClear(pid, []int{2}) // half settle immediately
		}
	}
	// Wait for the committer to have rotated at least once.
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoint despite tiny segment budget")
	}
	l.Close()

	_, rec := openT(t, Config{Dir: dir, NodeID: 0, SegmentBytes: 2048})
	got := map[uint64]bool{}
	for _, f := range rec.Flights {
		got[f.Rec.PacketID] = true
	}
	for pid := uint64(1); pid <= 100; pid++ {
		want := pid%2 == 1
		if got[pid] != want {
			t.Errorf("packet %d recovered=%v, want %v", pid, got[pid], want)
		}
	}
	// Compaction must leave only the fresh segment plus at most the
	// just-written recovery snapshot's predecessor cleanup.
	seqs, _ := listSegments(dir)
	if len(seqs) != 1 {
		t.Errorf("%d segments after recovery compaction, want 1", len(seqs))
	}
}

func TestDurableCallbackAfterFsync(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	acks := make(chan durableCB, 16)
	l, _ := openT(t, Config{
		Dir:    dir,
		NodeID: 0,
		OnDurable: func(frameID uint64, from int) {
			acks <- durableCB{frameID: frameID, from: from}
		},
		BeforeFlush: func() { <-gate },
	})
	base := l.Stats().Fsyncs // Open's recovery compaction counts one
	l.AppendCustody(testData(10, 100, 2), 7)
	select {
	case cb := <-acks:
		t.Fatalf("callback %+v fired before fsync", cb)
	case <-time.After(50 * time.Millisecond):
	}
	if got := l.Stats().Fsyncs; got != base {
		t.Fatalf("fsync happened while flush gate held (%d -> %d)", base, got)
	}
	close(gate)
	select {
	case cb := <-acks:
		if cb.frameID != 10 || cb.from != 7 {
			t.Fatalf("callback = %+v, want {10 7}", cb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("callback never fired after gate release")
	}
	if l.Stats().Fsyncs == 0 || l.Stats().Appends == 0 || l.Stats().Bytes == 0 {
		t.Errorf("stats not counting: %+v", l.Stats())
	}
	l.Close()
}

func TestDuplicateFrameStillGetsCallback(t *testing.T) {
	dir := t.TempDir()
	acks := make(chan uint64, 16)
	l, _ := openT(t, Config{
		Dir:       dir,
		NodeID:    0,
		OnDurable: func(frameID uint64, _ int) { acks <- frameID },
	})
	defer l.Close()
	l.AppendCustody(testData(10, 100, 2), 1)
	l.AppendCustody(testData(10, 100, 2), 1) // retransmission: not re-journaled, still ACKed
	for i := 0; i < 2; i++ {
		select {
		case id := <-acks:
			if id != 10 {
				t.Fatalf("ack for frame %d, want 10", id)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("ack %d never fired", i+1)
		}
	}
}

func TestCloseDiscardLosesUnflushed(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fired := make(chan struct{}, 16)
	l, _ := openT(t, Config{
		Dir:         dir,
		NodeID:      0,
		OnDurable:   func(uint64, int) { fired <- struct{}{} },
		BeforeFlush: func() { <-gate },
	})
	l.AppendCustody(testData(10, 100, 2), 1)
	l.CloseDiscard()
	close(gate) // release the committer; it must drop the batch

	select {
	case <-fired:
		t.Fatal("durability callback fired for a discarded batch")
	case <-time.After(50 * time.Millisecond):
	}
	<-l.done // committer exited

	_, rec := openT(t, Config{Dir: dir, NodeID: 0})
	if len(rec.Flights) != 0 {
		t.Fatalf("discarded custody resurrected: %d flights", len(rec.Flights))
	}
}

func TestDeliverPreventsLocalReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, NodeID: 4}
	l, _ := openT(t, cfg)
	l.AppendCustody(testData(10, 100, 4), 1) // destined only to us
	l.AppendDeliver(100)
	l.Close()

	_, rec := openT(t, cfg)
	if len(rec.Flights) != 0 {
		t.Fatalf("delivered-only packet came back as %d flights: %+v", len(rec.Flights), rec.Flights)
	}
	if !reflect.DeepEqual(rec.Delivered, []uint64{100}) {
		t.Fatalf("delivered = %v, want [100]", rec.Delivered)
	}
}

func TestRecoveryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, Config{Dir: dir, NodeID: 0})
	defer l.Close()
	if len(rec.Flights) != 0 {
		t.Fatalf("foreign file produced flights")
	}
}

func TestGarbageSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), bytes.Repeat([]byte{0xAB}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, Config{Dir: dir, NodeID: 0})
	defer l.Close()
	if len(rec.Flights) != 0 || len(rec.Delivered) != 0 {
		t.Fatalf("garbage recovered state: %+v", rec)
	}
}

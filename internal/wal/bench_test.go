package wal

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkWalAppend measures the appender-side cost of journaling one
// custody record — the synchronous work added to a connection read loop in
// durable mode. Group commit runs concurrently; ns/op includes its
// backpressure but amortizes the fsyncs across the batch.
func BenchmarkWalAppend(b *testing.B) {
	l, _, err := Open(Config{Dir: b.TempDir(), NodeID: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	d := &wire.Data{
		PacketID:    1,
		Topic:       3,
		Source:      1,
		PublishedAt: time.Unix(100, 0),
		Deadline:    150 * time.Millisecond,
		Dests:       []int32{2, 5},
		Path:        []int32{1},
		Payload:     make([]byte, 256),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FrameID = uint64(i + 1)
		d.PacketID = uint64(i + 1)
		l.AppendCustody(d, 1)
		l.AppendClear(uint64(i+1), []int{2, 5})
	}
	b.StopTimer()
	st := l.Stats()
	b.ReportMetric(float64(st.Appends)/float64(st.Fsyncs+1), "appends/fsync")
}

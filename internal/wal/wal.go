// Package wal is the broker's crash-durable custody journal: an append-only,
// CRC-framed, segmented log of every packet the broker has taken hop-by-hop
// responsibility for (§III persistency extended to node loss — Theorem 2's
// exactly-once surviving a crashed broker, not just a failed link).
//
// On-disk format. A segment is a stream of records; each record is
//
//	uint32  CRC-32C (Castagnoli) over the wire frame that follows
//	...     one wire-codec frame: uint32 length | uint8 type | body
//
// The frame payload reuses the zero-alloc wire codec (internal/wire) as the
// record format, so recovery is the standard frame decoder plus a checksum:
//
//	WAL_CUSTODY  the full Data frame custody was taken for (FrameID 0 for
//	             locally published packets)
//	WAL_CLEAR    destinations settled (downstream ACK or drop); empty list
//	             means all
//	WAL_DELIVER  packet delivered to this broker's local subscribers
//	WAL_META     incarnation number (bumped each Open; seeds ID minting)
//
// Group commit. Appenders encode into an in-memory pending buffer and return
// immediately; a single committer goroutine writes and fsyncs the whole
// buffer at once, then fires the registered durability callbacks (the broker
// sends the upstream hop-by-hop ACK from that callback — the ACK is the
// durability promise). Many custody records therefore share one fdatasync.
//
// Checkpointing. When the live segment exceeds SegmentBytes the committer
// writes a compacted snapshot — meta, every still-outstanding custody record
// and the delivered-packet set — into a fresh segment and deletes the old
// ones. Records whose destinations all settled vanish entirely.
//
// Recovery. Open scans the segments in order, tolerating a torn tail
// (truncated or CRC-corrupt records stop the scan of that segment), rebuilds
// the outstanding-custody state, writes it as a fresh compacted segment
// under a bumped incarnation, and returns the undelivered flights for the
// broker to replay into its shard engines.
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

const (
	// DefaultSegmentBytes is the segment-rotation threshold when
	// Config.SegmentBytes is unset.
	DefaultSegmentBytes = 64 << 20
	// maxPendingBytes bounds the un-flushed group-commit buffer; appenders
	// block (backpressure onto the connection read loops) when it fills.
	maxPendingBytes = 4 << 20
	// frameDedupMax bounds the duplicate-custody suppression set, and
	// deliveredMax the delivered-packet set — both FIFO-evicted, mirroring
	// the broker's in-memory dedup horizons.
	frameDedupMax = 1 << 16
	deliveredMax  = 1 << 16
	// incarnationBits is how many low bits of the incarnation counter the
	// broker folds into the top of its frame/packet minting counters.
	incarnationBits = 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// testDisableSync skips the real fsyncs (counters still advance). Set only
// by tests whose throughput would otherwise be fsync-bound (the recovery
// fuzzer); never set in production code.
var testDisableSync bool

// Config parameterizes Open.
type Config struct {
	// Dir is the per-broker data directory; segments live directly in it.
	Dir string
	// NodeID is the owning broker's overlay ID (delivered packets clear the
	// broker's own entry from a custody record's destination set).
	NodeID int
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes if 0).
	SegmentBytes int64
	// OnDurable, if set, is invoked by the committer after the fsync that
	// made a custody record durable, once per AppendCustody call that
	// supplied from >= 0. The broker sends the upstream hop-by-hop ACK
	// here. Must not block and must not call back into the Log.
	OnDurable func(frameID uint64, from int)
	// BeforeFlush, if set, is invoked by the committer before each write+
	// fsync batch — a test hook: blocking it withholds durability (and so
	// ACKs) while appends keep accumulating.
	BeforeFlush func()
	// Logf, if set, receives diagnostics (recovery truncation, IO errors).
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the log's activity counters.
type Stats struct {
	Appends     uint64 // records appended
	Fsyncs      uint64 // group-commit flushes (many appends per fsync)
	Bytes       uint64 // record bytes written
	Checkpoints uint64 // segment-rotation compactions
}

// Flight is one undelivered custody record recovered from the log. Rec's
// FrameID is the original inbound relay frame (0 for a locally published
// packet) and Rec.Dests holds only the still-outstanding destinations.
type Flight struct {
	Rec wire.Data
}

// Recovered is what Open salvaged from the directory.
type Recovered struct {
	// Incarnation is the bumped restart counter now recorded in the fresh
	// segment; the broker folds it into its frame/packet ID minting so IDs
	// are never reused across restarts.
	Incarnation uint64
	// Flights are the custody records with outstanding destinations, in log
	// order.
	Flights []Flight
	// Delivered are packet IDs already delivered to local subscribers; the
	// broker preloads its delivery dedup so replay cannot deliver twice.
	Delivered []uint64
}

// entry is the live-state view of one custody record.
type entry struct {
	frameID     uint64
	pktID       uint64
	rec         []byte  // encoded record (CRC + frame), rewritten at checkpoint
	outstanding []int32 // dests not yet cleared
	cleared     []int32 // dests cleared (checkpoint emits these as one WAL_CLEAR)
}

// durableCB is one ACK release awaiting the next fsync.
type durableCB struct {
	frameID uint64
	from    int
}

// seenSet is a bounded recently-seen set of uint64 keys with FIFO eviction.
type seenSet struct {
	set   map[uint64]struct{}
	order []uint64
	head  int
	max   int
}

func newSeenSet(max int) *seenSet {
	return &seenSet{set: make(map[uint64]struct{}, max), max: max}
}

// seen reports whether k was already present, inserting it if not.
func (s *seenSet) seen(k uint64) bool {
	if _, ok := s.set[k]; ok {
		return true
	}
	if len(s.order) < s.max {
		s.order = append(s.order, k)
	} else {
		delete(s.set, s.order[s.head])
		s.order[s.head] = k
		s.head = (s.head + 1) % s.max
	}
	s.set[k] = struct{}{}
	return false
}

// Log is an open custody journal. Appends are safe for concurrent use; one
// committer goroutine owns the file.
type Log struct {
	cfg Config

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	bytesW      atomic.Uint64
	checkpoints atomic.Uint64

	mu      sync.Mutex
	space   sync.Cond // appenders waiting for the pending buffer to drain
	pending []byte
	cbs     []durableCB
	closed  bool
	discard bool
	broken  bool // an IO error voided durability; stop accepting work

	// Live custody state, mutated under mu as records are appended.
	live      map[uint64][]*entry // by packet ID
	frames    *seenSet            // custody frame IDs (dup suppression)
	delivered *seenSet            // locally delivered packet IDs

	f           *os.File
	seq         uint64
	segBytes    int64
	incarnation uint64

	// Encode scratch, reused under mu so appends don't allocate messages.
	custodyMsg wire.WalCustody
	clearMsg   wire.WalClear
	deliverMsg wire.WalDeliver

	kick chan struct{}
	done chan struct{}
}

// segPath names segment i in dir.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seq))
}

// Open recovers whatever the directory holds, compacts it into a fresh
// segment under a bumped incarnation, and returns the running log plus the
// recovered state for the broker to replay. The directory is created if
// missing.
func Open(cfg Config) (*Log, *Recovered, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		cfg:       cfg,
		live:      make(map[uint64][]*entry),
		frames:    newSeenSet(frameDedupMax),
		delivered: newSeenSet(deliveredMax),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	l.space.L = &l.mu

	seqs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	maxInc := uint64(0)
	for _, seq := range seqs {
		data, err := os.ReadFile(segPath(cfg.Dir, seq))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		inc := l.applySegment(data)
		if inc > maxInc {
			maxInc = inc
		}
		if seq >= l.seq {
			l.seq = seq
		}
	}
	l.incarnation = maxInc + 1

	rec := &Recovered{Incarnation: l.incarnation}
	for _, pid := range sortedKeys(l.live) {
		for _, e := range l.live[pid] {
			f := Flight{Rec: decodeCustody(e.rec)}
			f.Rec.Dests = append([]int32(nil), e.outstanding...)
			rec.Flights = append(rec.Flights, f)
		}
	}
	for pid := range l.delivered.set {
		rec.Delivered = append(rec.Delivered, pid)
	}
	sort.Slice(rec.Delivered, func(i, j int) bool { return rec.Delivered[i] < rec.Delivered[j] })

	// Write the compacted state as a fresh segment, then drop the old ones:
	// recovery work is never repeated, and the bumped incarnation is durable
	// before any new ID minted from it can reach a peer.
	if err := l.checkpointLocked(seqs); err != nil {
		return nil, nil, err
	}

	go l.committer()
	return l, rec, nil
}

// listSegments returns the segment sequence numbers in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, de := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(de.Name(), "wal-%d.log", &seq); n == 1 {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// sortedKeys returns the live map's packet IDs ascending, so recovery output
// and checkpoints are deterministic.
func sortedKeys(m map[uint64][]*entry) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// decodeCustody decodes a stored custody record (CRC + frame). The record
// was either CRC-verified at recovery or encoded by this process, so decode
// errors are impossible; a zero Data is returned defensively anyway.
func decodeCustody(rec []byte) wire.Data {
	msg, err := wire.Read(bytes.NewReader(rec[4:]))
	if err != nil {
		return wire.Data{}
	}
	wc, ok := msg.(*wire.WalCustody)
	if !ok {
		return wire.Data{}
	}
	return wc.Data
}

// applySegment replays one segment's records into the live state, stopping
// at the first torn or corrupt record (torn-tail tolerance). It returns the
// highest incarnation seen.
func (l *Log) applySegment(data []byte) (maxInc uint64) {
	off := 0
	for {
		rec, n, ok := nextRecord(data[off:])
		if !ok {
			if off != len(data) {
				l.logf("segment scan stopped at offset %d of %d (torn or corrupt tail)", off, len(data))
			}
			return maxInc
		}
		recBytes := data[off : off+n]
		off += n
		switch m := rec.(type) {
		case *wire.WalMeta:
			if m.Incarnation > maxInc {
				maxInc = m.Incarnation
			}
		case *wire.WalCustody:
			l.applyCustody(m, recBytes)
		case *wire.WalClear:
			l.applyClear(m.PacketID, m.Dests)
		case *wire.WalDeliver:
			l.applyDeliver(m.PacketID)
		default:
			// A valid frame of a non-WAL type has no business here; treat it
			// like corruption and stop trusting the rest of the segment.
			l.logf("segment holds unexpected %v record; stopping scan", rec.Type())
			return maxInc
		}
	}
}

// nextRecord parses one record (CRC + frame) from buf, returning the decoded
// message and the record's total length. ok is false for a torn, truncated
// or corrupt record.
func nextRecord(buf []byte) (msg wire.Message, n int, ok bool) {
	if len(buf) < 8 {
		return nil, 0, false
	}
	want := binary.BigEndian.Uint32(buf)
	size := binary.BigEndian.Uint32(buf[4:])
	if size == 0 || size > wire.MaxFrameSize || uint64(len(buf)) < 8+uint64(size) {
		return nil, 0, false
	}
	frame := buf[4 : 8+size]
	if crc32.Checksum(frame, castagnoli) != want {
		return nil, 0, false
	}
	m, err := wire.Read(bytes.NewReader(frame))
	if err != nil {
		return nil, 0, false
	}
	return m, int(8 + size), true
}

// applyCustody inserts one custody record into the live state, suppressing
// duplicates (retransmissions logged twice, or a checkpoint raced by a
// crash leaving both the snapshot and the original segment on disk).
func (l *Log) applyCustody(m *wire.WalCustody, recBytes []byte) {
	if m.FrameID != 0 {
		if l.frames.seen(m.FrameID) {
			return
		}
	} else {
		// Origin custody (no relay frame): at most one record per packet.
		for _, e := range l.live[m.PacketID] {
			if e.frameID == 0 {
				return
			}
		}
	}
	e := &entry{
		frameID:     m.FrameID,
		pktID:       m.PacketID,
		rec:         append([]byte(nil), recBytes...),
		outstanding: append([]int32(nil), m.Dests...),
	}
	if _, del := l.delivered.set[m.PacketID]; del {
		e.clearDest(int32(l.cfg.NodeID))
	}
	if len(e.outstanding) == 0 {
		return // nothing left to replay
	}
	l.live[m.PacketID] = append(l.live[m.PacketID], e)
}

// clearDest moves one destination from outstanding to cleared.
func (e *entry) clearDest(d int32) {
	for i, o := range e.outstanding {
		if o == d {
			e.outstanding[i] = e.outstanding[len(e.outstanding)-1]
			e.outstanding = e.outstanding[:len(e.outstanding)-1]
			e.cleared = append(e.cleared, d)
			return
		}
	}
}

// applyClear settles destinations for a packet's custody entries; an empty
// dests list settles everything.
func (l *Log) applyClear(pid uint64, dests []int32) {
	entries := l.live[pid]
	if entries == nil {
		return
	}
	if len(dests) == 0 {
		delete(l.live, pid)
		return
	}
	for _, d := range dests {
		for _, e := range entries {
			e.clearDest(d)
		}
	}
	kept := entries[:0]
	for _, e := range entries {
		if len(e.outstanding) > 0 {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(l.live, pid)
	} else {
		l.live[pid] = kept
	}
}

// applyDeliver marks a packet locally delivered and settles this broker's
// own destination entry in its custody records.
func (l *Log) applyDeliver(pid uint64) {
	l.delivered.seen(pid)
	l.applyClear(pid, []int32{int32(l.cfg.NodeID)})
}

// AppendCustody journals custody of one inbound Data frame (or a local
// publish when d.FrameID is 0) and, for from >= 0, schedules OnDurable to
// fire once the record has been fsynced — the broker's cue to send the
// upstream ACK. Duplicate frames (upstream retransmissions) are not
// journaled twice but still get their durability callback, since the
// original record is durable by (or with) the next flush. d and its slices
// are copied before return.
func (l *Log) AppendCustody(d *wire.Data, from int) {
	l.mu.Lock()
	if l.unusableLocked() {
		l.mu.Unlock()
		return
	}
	dup := d.FrameID != 0 && l.frames.seen(d.FrameID)
	if !dup {
		base := len(l.pending)
		l.custodyMsg.Data = *d
		l.appendRecordLocked(&l.custodyMsg)
		l.custodyMsg.Data = wire.Data{}
		e := &entry{
			frameID:     d.FrameID,
			pktID:       d.PacketID,
			rec:         append([]byte(nil), l.pending[base:]...),
			outstanding: append([]int32(nil), d.Dests...),
		}
		l.live[d.PacketID] = append(l.live[d.PacketID], e)
	}
	if from >= 0 && l.cfg.OnDurable != nil {
		l.cbs = append(l.cbs, durableCB{frameID: d.FrameID, from: from})
	}
	l.kickLocked()
	l.waitSpaceLocked()
	l.mu.Unlock()
}

// AppendClear journals that dests of a packet have settled (downstream ACK
// transferred custody, or the destination was dropped); nil dests settles
// every destination.
func (l *Log) AppendClear(pid uint64, dests []int) {
	l.mu.Lock()
	if l.unusableLocked() {
		l.mu.Unlock()
		return
	}
	if _, tracked := l.live[pid]; !tracked {
		// Nothing outstanding (entry already settled, or custody predates
		// this incarnation's horizon): the record would be noise.
		l.mu.Unlock()
		return
	}
	l.clearMsg.PacketID = pid
	l.clearMsg.Dests = l.clearMsg.Dests[:0]
	for _, d := range dests {
		l.clearMsg.Dests = append(l.clearMsg.Dests, int32(d))
	}
	l.appendRecordLocked(&l.clearMsg)
	l.applyClear(pid, l.clearMsg.Dests)
	l.kickLocked()
	l.mu.Unlock()
}

// AppendDeliver journals a local subscriber delivery. Durability is
// group-committed, not awaited: a crash inside the flush window may
// re-deliver to a directly attached subscriber on replay (downstream
// brokers are still protected by their packet-level dedup).
func (l *Log) AppendDeliver(pid uint64) {
	l.mu.Lock()
	if l.unusableLocked() {
		l.mu.Unlock()
		return
	}
	l.deliverMsg.PacketID = pid
	l.appendRecordLocked(&l.deliverMsg)
	l.applyDeliver(pid)
	l.kickLocked()
	l.mu.Unlock()
}

// unusableLocked reports whether the log can no longer accept appends.
func (l *Log) unusableLocked() bool { return l.closed || l.broken }

// appendRecordLocked encodes one record (CRC placeholder + wire frame) into
// the pending buffer and counts it.
func (l *Log) appendRecordLocked(msg wire.Message) {
	base := len(l.pending)
	l.pending = append(l.pending, 0, 0, 0, 0)
	l.pending = wire.AppendFrame(l.pending, msg)
	crc := crc32.Checksum(l.pending[base+4:], castagnoli)
	binary.BigEndian.PutUint32(l.pending[base:], crc)
	l.appends.Add(1)
}

// kickLocked nudges the committer (buffered; coalesces).
func (l *Log) kickLocked() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// waitSpaceLocked blocks the appender while the pending buffer is over
// budget — group-commit backpressure onto the producers.
func (l *Log) waitSpaceLocked() {
	for len(l.pending) > maxPendingBytes && !l.closed && !l.broken {
		l.space.Wait()
	}
}

// committer is the group-commit goroutine: one write+fsync per kick batch.
func (l *Log) committer() {
	defer close(l.done)
	for range l.kick {
		l.flushOnce()
	}
}

// flushOnce writes and fsyncs everything pending, fires the durability
// callbacks, and rotates the segment when it is over budget.
func (l *Log) flushOnce() {
	l.mu.Lock()
	work := len(l.pending) > 0 || len(l.cbs) > 0
	l.mu.Unlock()
	if !work {
		return
	}
	if l.cfg.BeforeFlush != nil {
		l.cfg.BeforeFlush()
	}

	l.mu.Lock()
	if l.discard || l.broken {
		// Discard simulates lost page cache (tests): drop the batch and its
		// callbacks — durability was never promised. A broken log likewise
		// must never promise anything again.
		l.pending = l.pending[:0]
		l.cbs = l.cbs[:0]
		l.space.Broadcast()
		l.mu.Unlock()
		return
	}
	var cbs []durableCB
	if len(l.pending) > 0 {
		if err := l.writeBatchLocked(l.pending); err != nil {
			l.failLocked(err)
			l.mu.Unlock()
			return
		}
		l.pending = l.pending[:0]
	}
	cbs, l.cbs = l.cbs, nil
	l.space.Broadcast()
	if l.segBytes >= l.cfg.SegmentBytes {
		if err := l.checkpointLocked(nil); err != nil {
			// The batch itself was fsynced, but a log that cannot rotate is
			// voided — withhold the ACKs rather than promise on a dying disk.
			l.failLocked(err)
			cbs = nil
		} else {
			l.checkpoints.Add(1)
		}
	}
	l.mu.Unlock()

	for _, cb := range cbs {
		l.cfg.OnDurable(cb.frameID, cb.from)
	}
}

// writeBatchLocked appends one batch to the live segment and fsyncs it.
func (l *Log) writeBatchLocked(batch []byte) error {
	if _, err := l.f.Write(batch); err != nil {
		return err
	}
	if err := l.sync(l.f); err != nil {
		return err
	}
	l.segBytes += int64(len(batch))
	l.bytesW.Add(uint64(len(batch)))
	l.fsyncs.Add(1)
	return nil
}

// failLocked voids the log after an IO error: no further appends, no further
// durability promises. Upstream brokers keep retransmitting unACKed frames
// and fail over per Algorithm 2, so custody routes around this node.
func (l *Log) failLocked(err error) {
	l.broken = true
	l.pending = l.pending[:0]
	l.cbs = l.cbs[:0]
	l.space.Broadcast()
	l.logf("disabled after IO error: %v", err)
}

// checkpointLocked writes the compacted live state (meta, outstanding
// custody, delivered set) into a fresh segment, fsyncs it, and deletes the
// superseded segments (oldSeqs at Open; every seq below the new one at
// runtime rotation).
func (l *Log) checkpointLocked(oldSeqs []uint64) error {
	var buf []byte
	meta := wire.WalMeta{Incarnation: l.incarnation}
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = wire.AppendFrame(buf, &meta)
	binary.BigEndian.PutUint32(buf[base:], crc32.Checksum(buf[base+4:], castagnoli))
	for _, pid := range sortedKeys(l.live) {
		for _, e := range l.live[pid] {
			buf = append(buf, e.rec...)
			if len(e.cleared) > 0 {
				cl := wire.WalClear{PacketID: pid, Dests: e.cleared}
				base := len(buf)
				buf = append(buf, 0, 0, 0, 0)
				buf = wire.AppendFrame(buf, &cl)
				binary.BigEndian.PutUint32(buf[base:], crc32.Checksum(buf[base+4:], castagnoli))
			}
		}
	}
	delivered := make([]uint64, 0, len(l.delivered.set))
	for pid := range l.delivered.set {
		delivered = append(delivered, pid)
	}
	sort.Slice(delivered, func(i, j int) bool { return delivered[i] < delivered[j] })
	for _, pid := range delivered {
		dl := wire.WalDeliver{PacketID: pid}
		base := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = wire.AppendFrame(buf, &dl)
		binary.BigEndian.PutUint32(buf[base:], crc32.Checksum(buf[base+4:], castagnoli))
	}

	newSeq := l.seq + 1
	f, err := os.OpenFile(segPath(l.cfg.Dir, newSeq), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := l.sync(f); err != nil {
		f.Close()
		return err
	}
	syncDir(l.cfg.Dir)

	old := l.f
	oldSeq := l.seq
	l.f = f
	l.seq = newSeq
	l.segBytes = int64(len(buf))
	l.bytesW.Add(uint64(len(buf)))
	l.fsyncs.Add(1)
	if old != nil {
		old.Close()
		oldSeqs = append(oldSeqs, oldSeq)
	}
	for _, seq := range oldSeqs {
		if seq != newSeq {
			os.Remove(segPath(l.cfg.Dir, seq))
		}
	}
	syncDir(l.cfg.Dir)
	return nil
}

// sync fsyncs one file unless tests disabled real syncs.
func (l *Log) sync(f *os.File) error {
	if testDisableSync {
		return nil
	}
	return f.Sync()
}

// syncDir fsyncs a directory so segment creation/removal is durable
// (best-effort; not all platforms support it).
func syncDir(dir string) {
	if testDisableSync {
		return
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close flushes whatever is pending, fires the remaining durability
// callbacks and closes the segment. Safe to call once all appenders have
// stopped.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.space.Broadcast()
	l.mu.Unlock()
	close(l.kick)
	<-l.done

	l.mu.Lock()
	var cbs []durableCB
	var err error
	if !l.discard && !l.broken {
		if len(l.pending) > 0 {
			if err = l.writeBatchLocked(l.pending); err == nil {
				l.pending = l.pending[:0]
				cbs, l.cbs = l.cbs, nil
			}
		} else {
			cbs, l.cbs = l.cbs, nil
		}
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.mu.Unlock()
	for _, cb := range cbs {
		l.cfg.OnDurable(cb.frameID, cb.from)
	}
	return err
}

// CloseDiscard closes the log abandoning everything not yet fsynced —
// pending records are dropped and their durability callbacks never fire.
// It simulates the page cache lost to a power failure, so crash tests can
// assert that nothing un-fsynced was ever promised (ACKed). It does not
// wait for the committer: a committer blocked in BeforeFlush will observe
// the discard flag when released and drop its batch.
func (l *Log) CloseDiscard() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.discard = true
	l.closed = true
	l.pending = l.pending[:0]
	l.cbs = l.cbs[:0]
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.space.Broadcast()
	l.mu.Unlock()
	close(l.kick)
}

// Stats snapshots the activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Bytes:       l.bytesW.Load(),
		Checkpoints: l.checkpoints.Load(),
	}
}

// logf writes a diagnostic when a logger is configured.
func (l *Log) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf("wal %s: "+format, append([]any{l.cfg.Dir}, args...)...)
	}
}

package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
	"time"

	"repro/internal/wire"
)

// record encodes one CRC-framed WAL record, as the committer would.
func record(msg wire.Message) []byte {
	buf := []byte{0, 0, 0, 0}
	buf = wire.AppendFrame(buf, msg)
	binary.BigEndian.PutUint32(buf, crc32.Checksum(buf[4:], castagnoli))
	return buf
}

// FuzzWAL feeds arbitrary bytes to recovery as a segment file. Recovery must
// never panic, and — the exactly-once property — must never hand back a
// flight that re-delivers a packet the log says was already delivered
// locally.
func FuzzWAL(f *testing.F) {
	const nodeID = 4
	testDisableSync = true // recovery logic under test, not the disk

	var valid []byte
	valid = append(valid, record(&wire.WalMeta{Incarnation: 3})...)
	valid = append(valid, record(&wire.WalCustody{Data: wire.Data{
		FrameID: 10, PacketID: 100, Topic: 1, Source: 0,
		PublishedAt: time.Unix(50, 0), Deadline: time.Second,
		Dests: []int32{2, nodeID}, Path: []int32{0}, Payload: []byte("p"),
	}})...)
	valid = append(valid, record(&wire.WalClear{PacketID: 100, Dests: []int32{2}})...)
	valid = append(valid, record(&wire.WalDeliver{PacketID: 100})...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // corrupt middle
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(record(&wire.Ack{FrameID: 9})) // valid frame, wrong record type

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(Config{Dir: dir, NodeID: nodeID})
		if err != nil {
			return // IO-level refusal is fine; panics are not
		}
		defer l.Close()
		delivered := make(map[uint64]bool, len(rec.Delivered))
		for _, pid := range rec.Delivered {
			delivered[pid] = true
		}
		for _, fl := range rec.Flights {
			if len(fl.Rec.Dests) == 0 {
				t.Fatalf("flight with no outstanding dests: %+v", fl.Rec)
			}
			if !delivered[fl.Rec.PacketID] {
				continue
			}
			for _, d := range fl.Rec.Dests {
				if d == nodeID {
					t.Fatalf("delivered packet %d resurrected with local dest: %+v",
						fl.Rec.PacketID, fl.Rec)
				}
			}
		}
		// Recovery's compacted rewrite must itself recover to the same state.
		l.Close()
		l2, rec2, err := Open(Config{Dir: dir, NodeID: nodeID})
		if err != nil {
			t.Fatalf("reopen of compacted state failed: %v", err)
		}
		defer l2.Close()
		if len(rec2.Flights) != len(rec.Flights) || len(rec2.Delivered) != len(rec.Delivered) {
			t.Fatalf("compacted state drifted: %d/%d flights, %d/%d delivered",
				len(rec2.Flights), len(rec.Flights), len(rec2.Delivered), len(rec.Delivered))
		}
	})
}

// Package des implements a deterministic single-threaded discrete-event
// simulation engine.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which — together
// with a seeded random source — makes every run fully reproducible.
//
// The engine is deliberately minimal: callbacks are plain closures (or, on
// the allocation-free fast path, a func(any) plus argument via AtFunc and
// AfterFunc), timers can be cancelled, and the caller drives execution with
// Run, RunUntil or Step. It is not safe for concurrent use; the simulated
// systems built on top of it are event-driven state machines, not
// goroutines.
//
// The scheduler is engineered for steady-state zero allocation: the queue
// is an in-package 4-ary min-heap over a flat slice of (time, seq) entries
// — no container/heap, no interface boxing — and fired or cancelled event
// structs are recycled through a free list, so once the heap and free list
// have grown to the simulation's high-water mark, scheduling allocates
// nothing.
package des

import (
	"math/rand/v2"
	"time"
)

// event is a scheduled callback owned by the simulator's free list. At most
// one of fn and fn1 is set. gen distinguishes incarnations of a recycled
// struct so stale EventIDs cannot touch a later event reusing the struct.
type event struct {
	at       time.Duration
	gen      uint32
	canceled bool
	fn       func()
	fn1      func(any)
	arg      any
}

// pending reports whether the event's current incarnation is still scheduled.
func (e *event) pending() bool {
	return !e.canceled && (e.fn != nil || e.fn1 != nil)
}

// EventID is a handle to a scheduled event, returned by At, After, AtFunc
// and AfterFunc so callers can cancel pending events. It is a small value;
// copy it freely. The zero EventID refers to no event: Cancel on it is a
// no-op. A handle becomes stale once its event fires or is cancelled — the
// underlying struct is recycled for later events, and stale handles are
// detected by generation so they can never touch the wrong event.
type EventID struct {
	ev  *event
	gen uint32
}

// Time returns the virtual time at which the event is scheduled, or 0 when
// the handle is stale (the event already fired or was cancelled).
func (id EventID) Time() time.Duration {
	if id.ev == nil || id.ev.gen != id.gen {
		return 0
	}
	return id.ev.at
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op. It reports whether
// the event was still pending.
func (id EventID) Cancel() bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || !ev.pending() {
		return false
	}
	ev.canceled = true
	ev.fn, ev.fn1, ev.arg = nil, nil, nil
	return true
}

// heapEntry is one queue slot. Keeping the (time, seq) ordering key inline
// means sift comparisons never chase the event pointer.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *event
}

// entryLess orders entries by (time, sequence): earlier first, ties broken
// by scheduling order.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventBlockSize is how many event structs are carved from one backing
// allocation when the free list runs dry.
const eventBlockSize = 64

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	heap      []heapEntry
	seq       uint64
	rng       *rand.Rand
	processed uint64
	free      []*event
	block     []event
}

// New returns a Simulator whose random source is seeded with seed.
// The same seed always produces the same event interleaving and random
// draws, which the test suite and the experiment harness rely on.
func New(seed uint64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of events still scheduled (including
// cancelled events not yet drained from the queue).
func (s *Simulator) Pending() int { return len(s.heap) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// alloc takes an event struct from the free list, carving a fresh block
// when the list is empty.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	if len(s.block) == 0 {
		s.block = make([]event, eventBlockSize)
	}
	ev := &s.block[0]
	s.block = s.block[1:]
	return ev
}

// recycle retires an event struct: the generation bump invalidates every
// outstanding EventID for it before it returns to the free list.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.canceled = false
	ev.fn, ev.fn1, ev.arg = nil, nil, nil
	s.free = append(s.free, ev)
}

// schedule enqueues one callback at absolute time t (clamped to now).
func (s *Simulator) schedule(t time.Duration, fn func(), fn1 func(any), arg any) EventID {
	if t < s.now {
		t = s.now
	}
	ev := s.alloc()
	ev.at = t
	ev.fn, ev.fn1, ev.arg = fn, fn1, arg
	s.push(heapEntry{at: t, seq: s.seq, ev: ev})
	s.seq++
	return EventID{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now, so the event runs next. It returns a handle for
// cancellation.
func (s *Simulator) At(t time.Duration, fn func()) EventID {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current virtual time.
// Negative d is treated as zero.
func (s *Simulator) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, nil, nil)
}

// AtFunc schedules fn(arg) at absolute virtual time t. Unlike At, which
// typically costs a closure allocation at the call site, a package-level fn
// plus a pointer-shaped arg allocates nothing — this is the hot-path
// scheduling primitive.
func (s *Simulator) AtFunc(t time.Duration, fn func(any), arg any) EventID {
	return s.schedule(t, nil, fn, arg)
}

// AfterFunc schedules fn(arg) to run d after the current virtual time.
// Negative d is treated as zero. See AtFunc for the allocation contract.
func (s *Simulator) AfterFunc(d time.Duration, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, nil, fn, arg)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue held only cancelled events or was empty).
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := s.popMin()
		ev := e.ev
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		s.now = e.at
		fn, fn1, arg := ev.fn, ev.fn1, ev.arg
		s.recycle(ev)
		s.processed++
		if fn != nil {
			fn()
		} else {
			fn1(arg)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// push inserts an entry, sifting up through the 4-ary heap.
func (s *Simulator) push(e heapEntry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// popMin removes and returns the earliest entry, sifting the displaced last
// entry down through the 4-ary heap.
func (s *Simulator) popMin() heapEntry {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = heapEntry{}
	h = h[:n]
	s.heap = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entryLess(h[j], h[m]) {
					m = j
				}
			}
			if !entryLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// Package des implements a deterministic single-threaded discrete-event
// simulation engine.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which — together
// with a seeded random source — makes every run fully reproducible.
//
// The engine is deliberately minimal: callbacks are plain closures, timers
// can be cancelled, and the caller drives execution with Run, RunUntil or
// Step. It is not safe for concurrent use; the simulated systems built on
// top of it are event-driven state machines, not goroutines.
package des

import (
	"container/heap"
	"math/rand/v2"
	"time"
)

// Event is a scheduled callback. It is returned by At and After so callers
// can cancel pending events.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// Time returns the virtual time at which the event is (or was) scheduled.
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op. It reports whether
// the event was still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.fn == nil {
		return false
	}
	e.canceled = true
	e.fn = nil
	return true
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	processed uint64
}

// New returns a Simulator whose random source is seeded with seed.
// The same seed always produces the same event interleaving and random
// draws, which the test suite and the experiment harness rely on.
func New(seed uint64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of events still scheduled (including
// cancelled events not yet drained from the queue).
func (s *Simulator) Pending() int { return s.queue.Len() }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now, so the event runs next. It returns the event for
// cancellation.
func (s *Simulator) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
// Negative d is treated as zero.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue held only cancelled events or was empty).
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	for {
		ev := s.queue.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	sim := New(1)
	var order []int
	sim.At(30*time.Millisecond, func() { order = append(order, 3) })
	sim.At(10*time.Millisecond, func() { order = append(order, 1) })
	sim.At(20*time.Millisecond, func() { order = append(order, 2) })
	sim.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", sim.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	sim := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(time.Second, func() { order = append(order, i) })
	}
	sim.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterRelativeToNow(t *testing.T) {
	sim := New(1)
	var fired time.Duration
	sim.At(time.Second, func() {
		sim.After(500*time.Millisecond, func() { fired = sim.Now() })
	})
	sim.Run()
	if fired != 1500*time.Millisecond {
		t.Errorf("nested After fired at %v, want 1.5s", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	sim := New(1)
	ran := false
	sim.At(time.Second, func() {
		sim.At(0, func() { ran = true }) // in the past; must still run
	})
	sim.Run()
	if !ran {
		t.Error("event scheduled in the past never ran")
	}
	if sim.Now() != time.Second {
		t.Errorf("clock went backwards: Now = %v", sim.Now())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	sim := New(1)
	ran := false
	sim.After(-time.Second, func() { ran = true })
	sim.Run()
	if !ran {
		t.Error("negative After never ran")
	}
	if sim.Now() != 0 {
		t.Errorf("Now = %v, want 0", sim.Now())
	}
}

func TestCancel(t *testing.T) {
	sim := New(1)
	ran := false
	ev := sim.At(time.Second, func() { ran = true })
	if !ev.Cancel() {
		t.Error("first Cancel should report true")
	}
	if ev.Cancel() {
		t.Error("second Cancel should report false")
	}
	sim.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestCancelAfterFire(t *testing.T) {
	sim := New(1)
	ev := sim.At(0, func() {})
	sim.Run()
	if ev.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	sim := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		sim.At(d, func() { fired = append(fired, d) })
	}
	sim.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if sim.Now() != 2500*time.Millisecond {
		t.Errorf("Now = %v, want 2.5s", sim.Now())
	}
	if sim.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", sim.Pending())
	}
	sim.RunUntil(10 * time.Second)
	if len(fired) != 4 {
		t.Errorf("fired %d events after second RunUntil, want 4", len(fired))
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	sim := New(1)
	ran := false
	sim.At(time.Second, func() { ran = true })
	sim.RunUntil(time.Second)
	if !ran {
		t.Error("event exactly at the boundary must fire")
	}
}

func TestStepReturnsFalseOnEmpty(t *testing.T) {
	sim := New(1)
	if sim.Step() {
		t.Error("Step on empty queue should report false")
	}
	ev := sim.At(time.Second, func() {})
	ev.Cancel()
	if sim.Step() {
		t.Error("Step over only-cancelled events should report false")
	}
}

func TestProcessedCount(t *testing.T) {
	sim := New(1)
	for i := 0; i < 5; i++ {
		sim.At(time.Duration(i)*time.Millisecond, func() {})
	}
	sim.At(time.Second, func() {}).Cancel()
	sim.Run()
	if sim.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", sim.Processed())
	}
}

func TestDeterministicRand(t *testing.T) {
	draw := func() []float64 {
		sim := New(42)
		out := make([]float64, 10)
		for i := range out {
			out[i] = sim.Rand().Float64()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := New(43)
	same := true
	for i := range a {
		if other.Rand().Float64() != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestEventTime(t *testing.T) {
	sim := New(1)
	ev := sim.At(7*time.Second, func() {})
	if ev.Time() != 7*time.Second {
		t.Errorf("Time = %v, want 7s", ev.Time())
	}
}

// Property: for any multiset of schedule times, execution visits them in
// sorted order and the clock never moves backwards.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		sim := New(7)
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			sim.At(d, func() { fired = append(fired, sim.Now()) })
		}
		sim.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroEventIDCancel(t *testing.T) {
	var id EventID
	if id.Cancel() {
		t.Error("zero EventID Cancel should report false")
	}
	if id.Time() != 0 {
		t.Error("zero EventID Time should be 0")
	}
}

func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	sim := New(1)
	stale := sim.At(time.Millisecond, func() {})
	sim.Run()
	// The event struct is now on the free list; the next schedule reuses it.
	ran := false
	fresh := sim.At(time.Second, func() { ran = true })
	if stale.Cancel() {
		t.Error("stale handle cancelled a recycled event")
	}
	sim.Run()
	if !ran {
		t.Error("recycled event did not fire after stale Cancel attempt")
	}
	if fresh.Cancel() {
		t.Error("Cancel after fire should report false on the fresh handle")
	}
}

func TestAtFuncPassesArgument(t *testing.T) {
	sim := New(1)
	type payload struct{ hits int }
	p := &payload{}
	sim.AtFunc(time.Millisecond, func(a any) { a.(*payload).hits++ }, p)
	sim.AfterFunc(time.Millisecond, func(a any) { a.(*payload).hits += 10 }, p)
	sim.Run()
	if p.hits != 11 {
		t.Errorf("hits = %d, want 11", p.hits)
	}
}

func TestCancelAtFunc(t *testing.T) {
	sim := New(1)
	ran := false
	id := sim.AtFunc(time.Second, func(any) { ran = true }, nil)
	if !id.Cancel() {
		t.Error("first Cancel should report true")
	}
	sim.Run()
	if ran {
		t.Error("cancelled AtFunc event ran")
	}
}

// TestSteadyStateZeroAlloc locks in the free-list contract: once the heap
// and pool reach their high-water mark, schedule/fire cycles allocate
// nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	sim := New(1)
	tick := func(any) {}
	// Warm up the pool and heap.
	for i := 0; i < 256; i++ {
		sim.AfterFunc(time.Millisecond, tick, nil)
	}
	sim.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			sim.AfterFunc(time.Duration(i%7)*time.Millisecond, tick, nil)
		}
		sim.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/run allocated %.1f times per cycle, want 0", allocs)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := New(uint64(i))
		for j := 0; j < 1000; j++ {
			sim.At(time.Duration(j%97)*time.Millisecond, func() {})
		}
		sim.Run()
	}
}

// BenchmarkSteadyStateScheduleFire measures the pooled hot path: one
// schedule + fire cycle with a warm free list. Expect 0 allocs/op.
func BenchmarkSteadyStateScheduleFire(b *testing.B) {
	sim := New(1)
	tick := func(any) {}
	for i := 0; i < 1024; i++ {
		sim.AfterFunc(time.Duration(i%13)*time.Millisecond, tick, nil)
	}
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AfterFunc(time.Duration(i%13)*time.Millisecond, tick, nil)
		sim.Step()
	}
}

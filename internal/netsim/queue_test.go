package netsim

import (
	"testing"
	"time"

	"repro/internal/des"
)

func TestBandwidthSerializesFrames(t *testing.T) {
	g := pairGraph(t, 10*time.Millisecond)
	// 10 frames/s => 100ms serialization slot.
	sim, n := newNet(t, g, Config{
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		LinkBandwidth:   10,
	})
	var arrivals []time.Duration
	n.SetHandler(1, func(Frame) { arrivals = append(arrivals, sim.Now()) })
	for i := 0; i < 3; i++ {
		if err := n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	// Frame i departs at (i+1)*100ms and arrives 10ms later.
	want := []time.Duration{110 * time.Millisecond, 210 * time.Millisecond, 310 * time.Millisecond}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival[%d] = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestBandwidthIdleLinkOnlyAddsSlot(t *testing.T) {
	g := pairGraph(t, 10*time.Millisecond)
	sim, n := newNet(t, g, Config{
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		LinkBandwidth:   1000, // 1ms slot
	})
	var at time.Duration = -1
	n.SetHandler(1, func(Frame) { at = sim.Now() })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if at != 11*time.Millisecond {
		t.Errorf("arrival = %v, want 11ms (1ms slot + 10ms propagation)", at)
	}
}

func TestQueueCapacityTailDrop(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		LinkBandwidth:   10, // 100ms slot
		QueueCapacity:   2,
	})
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	// Burst of 5: first occupies the transmitter; at most 2 more may wait.
	for i := 0; i < 5; i++ {
		if err := n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if delivered >= 5 {
		t.Fatalf("no tail drop: delivered %d of 5", delivered)
	}
	st := n.Stats()
	if st.DroppedQueue == 0 {
		t.Error("DroppedQueue not counted")
	}
	if int(st.DroppedQueue)+delivered != 5 {
		t.Errorf("drops (%d) + delivered (%d) != 5", st.DroppedQueue, delivered)
	}
}

func TestDirectionsQueueIndependently(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		LinkBandwidth:   10,
	})
	var fwd, rev time.Duration = -1, -1
	n.SetHandler(1, func(Frame) { fwd = sim.Now() })
	n.SetHandler(0, func(Frame) { rev = sim.Now() })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Frame{ID: 2, From: 1, To: 0, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Both should arrive at slot+propagation = 101ms, not queue behind
	// each other.
	if fwd != rev || fwd != 101*time.Millisecond {
		t.Errorf("fwd = %v, rev = %v, want both 101ms", fwd, rev)
	}
}

func TestZeroBandwidthMeansInfinite(t *testing.T) {
	g := pairGraph(t, 5*time.Millisecond)
	sim, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	var arrivals []time.Duration
	n.SetHandler(1, func(Frame) { arrivals = append(arrivals, sim.Now()) })
	for i := 0; i < 10; i++ {
		if err := n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for _, at := range arrivals {
		if at != 5*time.Millisecond {
			t.Fatalf("arrival at %v; infinite bandwidth should be pure propagation", at)
		}
	}
}

func TestBandwidthConfigValidation(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	for _, cfg := range []Config{
		{LinkBandwidth: -1, FailureEpoch: time.Second, MonitorInterval: time.Minute},
		{QueueCapacity: -1, FailureEpoch: time.Second, MonitorInterval: time.Minute},
	} {
		if _, err := New(des.New(1), g, cfg, 1); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

package netsim

import (
	"math"
	"repro/internal/des"
	"testing"
	"time"
)

func TestEstimateAtExactWhenNoSamples(t *testing.T) {
	g := pairGraph(t, 15*time.Millisecond)
	_, n := newNet(t, g, Config{
		LossRate: 0.01, FailureProb: 0.05,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
	})
	exact, _ := n.Estimate(0, 1)
	at, ok := n.EstimateAt(0, 1, 42*time.Second)
	if !ok || at != exact {
		t.Errorf("EstimateAt = %+v, want exact %+v", at, exact)
	}
}

func TestEstimateAtMissingLink(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if _, ok := n.EstimateAt(0, 5, 0); ok {
		t.Error("estimate for missing link reported ok")
	}
}

func TestEstimateAtSampled(t *testing.T) {
	g := pairGraph(t, 15*time.Millisecond)
	_, n := newNet(t, g, Config{
		LossRate: 0, FailureProb: 0.10,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
		MonitorSamples: 50,
	}, 17)
	est, ok := n.EstimateAt(0, 1, 0)
	if !ok {
		t.Fatal("estimate missing")
	}
	if est.Alpha != 15*time.Millisecond {
		t.Errorf("alpha = %v, want exact 15ms", est.Alpha)
	}
	// Gamma is quantized to multiples of 1/50 and clustered around 0.9.
	if est.Gamma < 0.7 || est.Gamma > 1.0 {
		t.Errorf("gamma = %v, implausible for true 0.9", est.Gamma)
	}
	q := est.Gamma * 50
	if math.Abs(q-math.Round(q)) > 1e-9 {
		t.Errorf("gamma %v not a multiple of 1/50", est.Gamma)
	}
}

func TestEstimateAtStableWithinWindowChangesAcross(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{
		FailureProb:  0.3,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
		MonitorSamples: 10,
	}, 23)
	a, _ := n.EstimateAt(0, 1, 5*time.Second)
	b, _ := n.EstimateAt(0, 1, 59*time.Second)
	if a != b {
		t.Error("estimate changed within one monitoring window")
	}
	changed := false
	for w := 1; w <= 20; w++ {
		c, _ := n.EstimateAt(0, 1, time.Duration(w)*time.Minute+time.Second)
		if c != a {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("estimate never changed across 20 windows at 10 samples")
	}
}

func TestEstimateAtMeanTracksTruth(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{
		LossRate: 0.02, FailureProb: 0.08,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
		MonitorSamples: 25,
	}, 29)
	truth := (1 - 0.02) * (1 - 0.08)
	var sum float64
	const windows = 2000
	for w := 0; w < windows; w++ {
		est, _ := n.EstimateAt(0, 1, time.Duration(w)*time.Minute)
		sum += est.Gamma
	}
	mean := sum / windows
	if math.Abs(mean-truth) > 0.01 {
		t.Errorf("mean sampled gamma %v, want ~%v", mean, truth)
	}
}

func TestNegativeMonitorSamplesRejected(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim := des.New(1)
	if _, err := New(sim, g, Config{
		MonitorSamples: -1, FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 1); err == nil {
		t.Error("negative MonitorSamples accepted")
	}
}

package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/topology"
)

func pairGraph(t *testing.T, delay time.Duration) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(2)
	if err := g.AddLink(0, 1, delay); err != nil {
		t.Fatal(err)
	}
	return g
}

func newNet(t *testing.T, g *topology.Graph, cfg Config, seeds ...uint64) (*des.Simulator, *Network) {
	t.Helper()
	seed := uint64(1)
	if len(seeds) > 0 {
		seed = seeds[0]
	}
	sim := des.New(seed)
	n, err := New(sim, g, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sim, n
}

func TestConfigValidation(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim := des.New(1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative loss", cfg: Config{LossRate: -0.1, FailureEpoch: time.Second, MonitorInterval: time.Minute}},
		{name: "loss > 1", cfg: Config{LossRate: 1.1, FailureEpoch: time.Second, MonitorInterval: time.Minute}},
		{name: "bad failure prob", cfg: Config{FailureProb: 2, FailureEpoch: time.Second, MonitorInterval: time.Minute}},
		{name: "zero epoch", cfg: Config{MonitorInterval: time.Minute}},
		{name: "zero monitor", cfg: Config{FailureEpoch: time.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(sim, g, tt.cfg, 1); err == nil {
				t.Errorf("config %+v should be rejected", tt.cfg)
			}
		})
	}
	if _, err := New(sim, g, DefaultConfig(), 1); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDeliveryAfterPropagationDelay(t *testing.T) {
	g := pairGraph(t, 25*time.Millisecond)
	sim, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	var got []time.Duration
	n.SetHandler(1, func(f Frame) { got = append(got, sim.Now()) })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(got) != 1 || got[0] != 25*time.Millisecond {
		t.Errorf("delivery times = %v, want [25ms]", got)
	}
	st := n.Stats()
	if st.DataTransmissions != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendOverMissingLinkFails(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if err := n.Send(Frame{ID: 1, From: 0, To: 2, Kind: Data}); err == nil {
		t.Error("send over missing link should error")
	}
}

func TestDropFilterScriptedLoss(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	n.SetDropFilter(func(f Frame) bool { return f.Kind == Data })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Frame{ID: 2, From: 0, To: 1, Kind: Control, Ack: 1}); err != nil {
		t.Fatal(err)
	}
	n.SetDropFilter(nil)
	if err := n.Send(Frame{ID: 3, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2 (filtered data frame must vanish)", delivered)
	}
	st := n.Stats()
	if st.DroppedFiltered != 1 {
		t.Errorf("DroppedFiltered = %d, want 1", st.DroppedFiltered)
	}
	if st.DataTransmissions != 2 || st.ControlTransmissions != 1 {
		t.Errorf("transmission counters = %+v (filtered send must still count)", st)
	}
}

func TestUnsetFrameKindRejected(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if err := n.Send(Frame{ID: 1, From: 0, To: 1}); err == nil {
		t.Error("unset frame kind should error")
	}
}

func TestTotalLossDropsEverything(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{LossRate: 1, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	for i := 0; i < 100; i++ {
		if err := n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if delivered != 0 {
		t.Errorf("delivered %d frames under 100%% loss", delivered)
	}
	if n.Stats().DroppedLoss != 100 {
		t.Errorf("DroppedLoss = %d, want 100", n.Stats().DroppedLoss)
	}
}

func TestLossRateStatistical(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{LossRate: 0.2, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	const total = 20000
	for i := 0; i < total; i++ {
		if err := n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	got := float64(delivered) / total
	if math.Abs(got-0.8) > 0.02 {
		t.Errorf("delivery fraction = %v, want ~0.8", got)
	}
}

func TestFailureStateConstantWithinEpoch(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureProb: 0.5, FailureEpoch: time.Second, MonitorInterval: time.Minute}, 7)
	for epoch := 0; epoch < 50; epoch++ {
		base := time.Duration(epoch) * time.Second
		first := n.Alive(0, 1, base)
		for _, off := range []time.Duration{1, 250 * time.Millisecond, 999 * time.Millisecond} {
			if n.Alive(0, 1, base+off) != first {
				t.Fatalf("epoch %d: link state changed mid-epoch", epoch)
			}
		}
	}
}

func TestFailureProbabilityStatistical(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureProb: 0.1, FailureEpoch: time.Second, MonitorInterval: time.Minute}, 99)
	failed := 0
	const epochs = 20000
	for e := 0; e < epochs; e++ {
		if !n.Alive(0, 1, time.Duration(e)*time.Second) {
			failed++
		}
	}
	got := float64(failed) / epochs
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("failure fraction = %v, want ~0.1", got)
	}
}

func TestFailureEdgeCases(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n0 := newNet(t, g, Config{FailureProb: 0, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	_, n1 := newNet(t, g, Config{FailureProb: 1, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	for e := 0; e < 100; e++ {
		at := time.Duration(e) * time.Second
		if !n0.Alive(0, 1, at) {
			t.Fatal("Pf=0 produced a failure")
		}
		if n1.Alive(0, 1, at) {
			t.Fatal("Pf=1 produced a live link")
		}
	}
	if n0.Alive(0, 2, 0) {
		t.Error("missing link reported alive")
	}
}

func TestFailedLinkDropsFrames(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{FailureProb: 1, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	delivered := 0
	n.SetHandler(1, func(Frame) { delivered++ })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if delivered != 0 {
		t.Error("frame crossed a failed link")
	}
	if n.Stats().DroppedFailure != 1 {
		t.Errorf("DroppedFailure = %d, want 1", n.Stats().DroppedFailure)
	}
}

func TestEstimate(t *testing.T) {
	g := pairGraph(t, 30*time.Millisecond)
	_, n := newNet(t, g, Config{LossRate: 0.01, FailureProb: 0.05, FailureEpoch: time.Second, MonitorInterval: time.Minute})
	est, ok := n.Estimate(0, 1)
	if !ok {
		t.Fatal("estimate missing for existing link")
	}
	if est.Alpha != 30*time.Millisecond {
		t.Errorf("Alpha = %v", est.Alpha)
	}
	want := 0.99 * 0.95
	if math.Abs(est.Gamma-want) > 1e-12 {
		t.Errorf("Gamma = %v, want %v", est.Gamma, want)
	}
	if _, ok := n.Estimate(0, 0); ok {
		t.Error("estimate for missing link should be !ok")
	}
}

func TestNextEpochBoundary(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	tests := []struct{ at, want time.Duration }{
		{0, time.Second},
		{999 * time.Millisecond, time.Second},
		{time.Second, 2 * time.Second},
		{2500 * time.Millisecond, 3 * time.Second},
	}
	for _, tt := range tests {
		if got := n.NextEpochBoundary(tt.at); got != tt.want {
			t.Errorf("NextEpochBoundary(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestDeterministicFailurePattern(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	read := func(seed uint64) []bool {
		sim := des.New(1)
		n, err := New(sim, g, Config{FailureProb: 0.3, FailureEpoch: time.Second, MonitorInterval: time.Minute}, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for e := range out {
			out[e] = n.Alive(0, 1, time.Duration(e)*time.Second)
		}
		return out
	}
	a, b := read(5), read(5)
	diffSeed := read(6)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same failSeed produced different failure patterns")
		}
		if a[i] != diffSeed[i] {
			same = false
		}
	}
	if same {
		t.Error("different failSeeds produced identical failure patterns")
	}
}

func TestControlFramesCountedSeparately(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Control}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	st := n.Stats()
	if st.ControlTransmissions != 1 || st.DataTransmissions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIndependentLinkFailures(t *testing.T) {
	// On a triangle with Pf=0.5, the three links' failure indicators over
	// many epochs must not be perfectly correlated.
	g := topology.NewGraph(3)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(l[0], l[1], time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	_, n := newNet(t, g, Config{FailureProb: 0.5, FailureEpoch: time.Second, MonitorInterval: time.Minute}, 11)
	agree01 := 0
	const epochs = 2000
	for e := 0; e < epochs; e++ {
		at := time.Duration(e) * time.Second
		if n.Alive(0, 1, at) == n.Alive(1, 2, at) {
			agree01++
		}
	}
	frac := float64(agree01) / epochs
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("link state agreement fraction = %v, want ~0.5 (independent)", frac)
	}
}

func BenchmarkSend(b *testing.B) {
	g := topology.NewGraph(2)
	if err := g.AddLink(0, 1, time.Millisecond); err != nil {
		b.Fatal(err)
	}
	sim := des.New(1)
	n, err := New(sim, g, Config{LossRate: 1e-4, FailureProb: 0.05, FailureEpoch: time.Second, MonitorInterval: time.Minute}, 1)
	if err != nil {
		b.Fatal(err)
	}
	n.SetHandler(1, func(Frame) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Send(Frame{ID: uint64(i), From: 0, To: 1, Kind: Data})
		if i%1000 == 999 {
			sim.Run()
		}
	}
	sim.Run()
}

package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/topology"
)

func TestInstantControlZeroDelay(t *testing.T) {
	g := pairGraph(t, 30*time.Millisecond)
	sim, n := newNet(t, g, Config{
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		InstantControl:  true,
	})
	var dataAt, ctrlAt time.Duration = -1, -1
	n.SetHandler(1, func(f Frame) {
		switch f.Kind {
		case Data:
			dataAt = sim.Now()
		case Control:
			ctrlAt = sim.Now()
		}
	})
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Data}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Frame{ID: 2, From: 0, To: 1, Kind: Control}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if ctrlAt != 0 {
		t.Errorf("control frame arrived at %v, want 0 (instant)", ctrlAt)
	}
	if dataAt != 30*time.Millisecond {
		t.Errorf("data frame arrived at %v, want 30ms", dataAt)
	}
}

func TestInstantControlStillLossy(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim, n := newNet(t, g, Config{
		LossRate:        1,
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
		InstantControl:  true,
	})
	got := 0
	n.SetHandler(1, func(Frame) { got++ })
	if err := n.Send(Frame{ID: 1, From: 0, To: 1, Kind: Control}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got != 0 {
		t.Error("instant control frame bypassed the loss process")
	}
}

func TestAckWaitModels(t *testing.T) {
	g := pairGraph(t, 25*time.Millisecond)
	_, physical := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if w, ok := physical.AckWait(0, 1); !ok || w != 50*time.Millisecond {
		t.Errorf("physical AckWait = %v, %v; want 50ms", w, ok)
	}
	_, instant := newNet(t, g, Config{
		FailureEpoch: time.Second, MonitorInterval: time.Minute, InstantControl: true,
	})
	if w, ok := instant.AckWait(0, 1); !ok || w != 25*time.Millisecond {
		t.Errorf("instant AckWait = %v, %v; want 25ms", w, ok)
	}
	if _, ok := instant.AckWait(0, 5); ok {
		t.Error("AckWait for a missing link should be !ok")
	}
}

func TestNodeFailureTakesDownIncidentLinks(t *testing.T) {
	g := topology.NewGraph(3)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(l[0], l[1], time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	_, n := newNet(t, g, Config{
		NodeFailureProb: 0.5,
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
	}, 31)
	foundFailure := false
	for e := 0; e < 200; e++ {
		at := time.Duration(e) * time.Second
		for u := 0; u < 3; u++ {
			if n.NodeAlive(u, at) {
				continue
			}
			foundFailure = true
			for _, edge := range g.Neighbors(u) {
				if n.Alive(u, edge.To, at) {
					t.Fatalf("epoch %d: node %d down but link (%d,%d) alive", e, u, u, edge.To)
				}
			}
		}
	}
	if !foundFailure {
		t.Error("no node failures observed at Pn=0.5 over 200 epochs")
	}
}

func TestNodeFailureProbabilityStatistical(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{
		NodeFailureProb: 0.05,
		FailureEpoch:    time.Second,
		MonitorInterval: time.Minute,
	}, 77)
	failed := 0
	const epochs = 20000
	for e := 0; e < epochs; e++ {
		if !n.NodeAlive(0, time.Duration(e)*time.Second) {
			failed++
		}
	}
	got := float64(failed) / epochs
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("node failure fraction = %v, want ~0.05", got)
	}
}

func TestNodeFailureZeroNeverFails(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	for e := 0; e < 100; e++ {
		if !n.NodeAlive(0, time.Duration(e)*time.Second) {
			t.Fatal("node failed with Pn=0")
		}
	}
}

func TestNodeFailureConfigValidation(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	sim := des.New(1)
	if _, err := New(sim, g, Config{
		NodeFailureProb: -0.1, FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 1); err == nil {
		t.Error("negative NodeFailureProb accepted")
	}
}

func TestForceDownAndRestore(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{FailureEpoch: time.Second, MonitorInterval: time.Minute})
	if !n.Alive(0, 1, 0) {
		t.Fatal("link dead before ForceDown")
	}
	if err := n.ForceDown(0, 1); err != nil {
		t.Fatal(err)
	}
	if n.Alive(0, 1, 0) || n.Alive(1, 0, 5*time.Second) {
		t.Error("forced-down link reported alive")
	}
	if err := n.Restore(1, 0); err != nil {
		t.Fatal(err)
	}
	if !n.Alive(0, 1, 0) {
		t.Error("restored link reported dead")
	}
	if err := n.ForceDown(0, 2); err == nil {
		t.Error("ForceDown of missing link accepted")
	}
	if err := n.Restore(0, 2); err == nil {
		t.Error("Restore of missing link accepted")
	}
}

package netsim

import (
	"math"
	"repro/internal/des"
	"testing"
	"time"
)

func TestBurstStationaryProbabilityPreserved(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{
		FailureProb:      0.06,
		MeanFailureBurst: 5,
		FailureEpoch:     time.Second,
		MonitorInterval:  time.Minute,
	}, 41)
	failed := 0
	const epochs = 50000
	for e := 0; e < epochs; e++ {
		if !n.Alive(0, 1, time.Duration(e)*time.Second) {
			failed++
		}
	}
	got := float64(failed) / epochs
	if math.Abs(got-0.06) > 0.01 {
		t.Errorf("stationary failure fraction = %v, want ~0.06", got)
	}
}

func TestBurstMeanOutageLength(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	_, n := newNet(t, g, Config{
		FailureProb:      0.06,
		MeanFailureBurst: 5,
		FailureEpoch:     time.Second,
		MonitorInterval:  time.Minute,
	}, 43)
	const epochs = 100000
	bursts, total := 0, 0
	inBurst := false
	for e := 0; e < epochs; e++ {
		down := !n.Alive(0, 1, time.Duration(e)*time.Second)
		if down {
			total++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if bursts == 0 {
		t.Fatal("no outages observed")
	}
	mean := float64(total) / float64(bursts)
	if math.Abs(mean-5) > 0.8 {
		t.Errorf("mean outage length = %v epochs, want ~5", mean)
	}
}

func TestBurstOneEqualsMemoryless(t *testing.T) {
	// MeanFailureBurst <= 1 must take the memoryless path and match the
	// plain model exactly (same seed, same draws).
	g := pairGraph(t, time.Millisecond)
	_, plain := newNet(t, g, Config{
		FailureProb: 0.1, FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 47)
	_, burst1 := newNet(t, g, Config{
		FailureProb: 0.1, MeanFailureBurst: 1,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 47)
	for e := 0; e < 1000; e++ {
		at := time.Duration(e) * time.Second
		if plain.Alive(0, 1, at) != burst1.Alive(0, 1, at) {
			t.Fatalf("epoch %d: burst=1 diverges from memoryless", e)
		}
	}
}

func TestBurstQueriesOutOfOrder(t *testing.T) {
	// The lazy chain must give consistent answers regardless of query
	// order (late first, then early).
	g := pairGraph(t, time.Millisecond)
	_, a := newNet(t, g, Config{
		FailureProb: 0.2, MeanFailureBurst: 4,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 53)
	_, b := newNet(t, g, Config{
		FailureProb: 0.2, MeanFailureBurst: 4,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 53)
	// a: forward order; b: reverse order.
	fwd := make([]bool, 500)
	for e := 0; e < 500; e++ {
		fwd[e] = a.Alive(0, 1, time.Duration(e)*time.Second)
	}
	for e := 499; e >= 0; e-- {
		if b.Alive(0, 1, time.Duration(e)*time.Second) != fwd[e] {
			t.Fatalf("epoch %d: out-of-order query changed the chain", e)
		}
	}
}

func TestBurstInfeasibleConfigRejected(t *testing.T) {
	g := pairGraph(t, time.Millisecond)
	// Pf=0.9 with burst 2: up->down prob = 0.9/(2*0.1) = 4.5 > 1.
	if _, err := New(des.New(1), g, Config{
		FailureProb: 0.9, MeanFailureBurst: 2,
		FailureEpoch: time.Second, MonitorInterval: time.Minute,
	}, 1); err == nil {
		t.Error("infeasible burst config accepted")
	}
	if _, err := New(des.New(1), g, Config{
		MeanFailureBurst: -1,
		FailureEpoch:     time.Second, MonitorInterval: time.Minute,
	}, 1); err == nil {
		t.Error("negative burst accepted")
	}
}

// Package netsim simulates the overlay network substrate the paper evaluates
// on: links with fixed propagation delays, independent per-transmission
// packet loss (Pl), and a dynamic failure process in which, at every 1 s
// epoch boundary, each link independently fails for that entire epoch with
// probability Pf ("we change the network condition once every second ...
// link failures ... cause one second of packet loss").
//
// Frames sent over a failed link are lost, as are frames that hit the
// per-transmission loss draw; loss applies to data and ACK frames alike.
// Nodes learn about links only through monitoring estimates (per-link
// expected delay and long-run delivery ratio), refreshed every 5 minutes —
// far slower than the failure process, which is exactly the regime DCRD's
// dynamic rerouting targets. Only the ORACLE baseline is allowed to query
// instantaneous link state via Alive.
//
// The transmission path is engineered to be allocation-free in steady
// state: link lookups go through dense per-directed-pair tables built once
// at construction (no map hashing), per-link delay/ACK-wait/estimate values
// are cached, delivery events are pooled and scheduled through the
// simulator's closure-free AfterFunc, and hop-by-hop ACKs ride in the
// Frame.Ack tag instead of boxing a payload.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/topology"
)

// FrameKind distinguishes payload-carrying frames from control frames.
type FrameKind int

// Frame kinds. Data frames are the unit of the paper's "packets sent"
// traffic metric; control frames (ACKs, parameter advertisements) are
// excluded from it but traverse the same lossy links.
const (
	Data FrameKind = iota + 1
	Control
)

// String returns a human-readable frame kind.
func (k FrameKind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Frame is a single transmission over one overlay link.
type Frame struct {
	ID   uint64
	From int
	To   int
	Kind FrameKind
	// Ack carries a hop-by-hop acknowledgment: a Control frame with Ack set
	// acknowledges receipt of the data frame with that ID. Keeping the tag
	// inline (instead of boxing a one-word payload into Payload) makes the
	// ACK path allocation-free.
	Ack     uint64
	Payload any
}

// Handler receives frames that survive the link.
type Handler func(Frame)

// Config holds the network-condition parameters of a simulation run.
type Config struct {
	// LossRate is Pl, the per-transmission loss probability on a healthy
	// link. The paper's default is 1e-4.
	LossRate float64
	// FailureProb is Pf, the probability that a link fails at each failure
	// epoch. The paper sweeps 0..0.1.
	FailureProb float64
	// NodeFailureProb is Pn, the probability that a broker node fails at
	// each failure epoch, taking down every link incident to it for that
	// epoch. The paper defers node failures to future work (§V); this
	// implements that extension so it can be evaluated.
	NodeFailureProb float64
	// MeanFailureBurst is the mean link outage length in epochs. Values
	// <= 1 keep the paper's memoryless per-epoch model; larger values
	// switch to a two-state Gilbert–Elliott chain with the same
	// stationary failure probability Pf but correlated multi-epoch
	// outages — the "persistent failures" the paper's §III persistency
	// mode targets.
	MeanFailureBurst float64
	// FailureEpoch is the duration of one failure period (1 s in the paper).
	FailureEpoch time.Duration
	// MonitorInterval is how often nodes refresh link estimates
	// (5 min in the paper).
	MonitorInterval time.Duration
	// InstantControl makes control frames (ACKs) propagate with zero
	// delay. The paper's Algorithm 2 arms its retransmission timer for
	// only alpha_Xk — one-way data propagation — which is consistent only
	// if its simulator returns ACKs instantaneously; enabling this
	// reproduces that model (and the paper's delay numbers). Disabled,
	// ACKs take the link's propagation delay like any frame and senders
	// must wait a full round trip. Control frames remain subject to link
	// failures and loss either way.
	InstantControl bool
	// LinkBandwidth caps each link direction at this many frames per
	// second; frames queue FIFO behind the transmitter and the queueing
	// delay adds to their latency. Zero means infinite bandwidth (the
	// paper's model). This extension exercises the "highly congested
	// link" scenario the paper's introduction motivates DCRD with.
	LinkBandwidth float64
	// QueueCapacity bounds the per-direction transmit queue when
	// LinkBandwidth is set; a frame arriving to a full queue is dropped
	// (congestion loss). Zero means unbounded.
	QueueCapacity int
	// MonitorSamples models measurement-based monitoring: each monitoring
	// window, a link's delivery-ratio estimate is the success fraction of
	// this many simulated probe transmissions instead of the exact
	// long-run probability. Zero keeps exact estimates (the default
	// idealization). Estimates are deterministic per (link, window).
	MonitorSamples int
}

// DefaultConfig returns the paper's baseline network conditions.
func DefaultConfig() Config {
	return Config{
		LossRate:        1e-4,
		FailureProb:     0,
		FailureEpoch:    time.Second,
		MonitorInterval: 5 * time.Minute,
	}
}

// validate reports configuration errors.
func (c Config) validate() error {
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("netsim: loss rate %v outside [0,1]", c.LossRate)
	}
	if c.FailureProb < 0 || c.FailureProb > 1 {
		return fmt.Errorf("netsim: failure probability %v outside [0,1]", c.FailureProb)
	}
	if c.NodeFailureProb < 0 || c.NodeFailureProb > 1 {
		return fmt.Errorf("netsim: node failure probability %v outside [0,1]", c.NodeFailureProb)
	}
	if c.FailureEpoch <= 0 {
		return fmt.Errorf("netsim: failure epoch %v must be positive", c.FailureEpoch)
	}
	if c.MonitorInterval <= 0 {
		return fmt.Errorf("netsim: monitor interval %v must be positive", c.MonitorInterval)
	}
	if c.LinkBandwidth < 0 {
		return fmt.Errorf("netsim: negative link bandwidth %v", c.LinkBandwidth)
	}
	if c.QueueCapacity < 0 {
		return fmt.Errorf("netsim: negative queue capacity %d", c.QueueCapacity)
	}
	if c.MonitorSamples < 0 {
		return fmt.Errorf("netsim: negative monitor samples %d", c.MonitorSamples)
	}
	if c.MeanFailureBurst < 0 {
		return fmt.Errorf("netsim: negative mean failure burst %v", c.MeanFailureBurst)
	}
	if c.MeanFailureBurst > 1 && c.FailureProb > 0 {
		if up := c.FailureProb / (c.MeanFailureBurst * (1 - c.FailureProb)); up > 1 {
			return fmt.Errorf("netsim: burst %v infeasible for Pf=%v (up->down prob %v > 1)",
				c.MeanFailureBurst, c.FailureProb, up)
		}
	}
	return nil
}

// Stats aggregates traffic counters for one run.
type Stats struct {
	// DataTransmissions counts every data-frame send attempt (including
	// retransmissions and multipath duplicates) — the paper's "total number
	// of packets sent by any node".
	DataTransmissions uint64
	// ControlTransmissions counts ACK/control sends.
	ControlTransmissions uint64
	// DroppedFailure counts frames lost to failed links.
	DroppedFailure uint64
	// DroppedLoss counts frames lost to random per-transmission loss.
	DroppedLoss uint64
	// DroppedQueue counts frames lost to full transmit queues
	// (congestion loss; only with LinkBandwidth and QueueCapacity set).
	DroppedQueue uint64
	// DroppedFiltered counts frames swallowed by a SetDropFilter hook
	// (scripted-loss test harnesses).
	DroppedFiltered uint64
	// Delivered counts frames handed to a receiving node.
	Delivered uint64
}

// LinkEstimate is what monitoring reports to nodes about one link: the
// expected single-transmission delay alpha and the long-run
// single-transmission delivery ratio gamma of the paper's Eq. (1) inputs.
type LinkEstimate struct {
	Alpha time.Duration
	Gamma float64
}

// burstWindow is how many recent epochs of Gilbert–Elliott chain state each
// link retains. The chain is Markov, so extending it only needs the last
// state; older history is kept as a query window for monitors and tests and
// truncated beyond it, keeping long simulations flat in memory. Queries
// before the window replay the chain from epoch zero (cold diagnostic path).
const burstWindow = 512

// burstChain is one link's materialized Gilbert–Elliott states for epochs
// [base, base+len(states)).
type burstChain struct {
	base   uint64
	states []bool
}

// delivery is a pooled in-flight frame: the argument of the scheduled
// delivery event.
type delivery struct {
	n     *Network
	frame Frame
}

// Network binds a topology to a discrete-event simulator and implements
// frame transmission under the configured loss and failure processes.
//
// All per-transmission lookups are O(1) over dense arrays indexed by the
// directed pair from*N+to (about N² words per table — negligible against
// the simulation state for the paper's 20–160-node overlays).
type Network struct {
	sim      *des.Simulator
	g        *topology.Graph
	cfg      Config
	n        int
	handlers []Handler
	// dropFilter, when set, swallows matching frames at send time
	// (scripted loss for differential harnesses); see SetDropFilter.
	dropFilter func(Frame) bool
	// linkOf[from*n+to] is the undirected link index, or -1 when the pair
	// is not linked. delayOf and ackWaitOf cache the per-directed-pair
	// propagation delay and ACK wait (meaningful only where linkOf >= 0).
	linkOf    []int32
	delayOf   []time.Duration
	ackWaitOf []time.Duration
	// estGamma is the configuration-constant long-run per-transmission
	// delivery ratio reported by exact monitoring.
	estGamma float64
	// slot is one serialization slot (only when the bandwidth model is on).
	slot     time.Duration
	forced   []bool // by link index
	failSeed uint64
	nextID   uint64
	stats    Stats
	// txFree[from*n+to] is when each directed transmitter is next idle;
	// allocated only when the bandwidth/queueing model is active.
	txFree []time.Duration
	// burst caches per-link Gilbert–Elliott state chains (lazily grown,
	// windowed) when MeanFailureBurst > 1.
	burst []burstChain
	// free is the delivery-event pool; block bump-allocates new entries.
	free  []*delivery
	block []delivery
}

// New builds a network over g driven by sim. failSeed parameterizes the
// deterministic failure process so distinct runs see distinct failure
// patterns while identical seeds reproduce exactly.
func New(sim *des.Simulator, g *topology.Graph, cfg Config, failSeed uint64) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nn := g.N()
	n := &Network{
		sim:       sim,
		g:         g,
		cfg:       cfg,
		n:         nn,
		handlers:  make([]Handler, nn),
		linkOf:    make([]int32, nn*nn),
		delayOf:   make([]time.Duration, nn*nn),
		ackWaitOf: make([]time.Duration, nn*nn),
		forced:    make([]bool, g.NumEdges()),
		estGamma:  (1 - cfg.LossRate) * (1 - cfg.FailureProb),
		failSeed:  failSeed,
	}
	for i := range n.linkOf {
		n.linkOf[i] = -1
	}
	if cfg.LinkBandwidth > 0 {
		n.slot = time.Duration(float64(time.Second) / cfg.LinkBandwidth)
		n.txFree = make([]time.Duration, nn*nn)
	}
	for i, l := range g.Links() {
		wait := 2 * l.Delay
		if cfg.InstantControl {
			wait = l.Delay
		}
		wait += ackHeadroomSlots * n.slot
		for _, dir := range [2][2]int{{l.From, l.To}, {l.To, l.From}} {
			di := dir[0]*nn + dir[1]
			n.linkOf[di] = int32(i)
			n.delayOf[di] = l.Delay
			n.ackWaitOf[di] = wait
		}
	}
	if cfg.MeanFailureBurst > 1 {
		n.burst = make([]burstChain, g.NumEdges())
	}
	return n, nil
}

// pairIndex returns the dense directed-pair index for (from, to), or -1
// when either endpoint is out of range.
func (n *Network) pairIndex(from, to int) int {
	if from < 0 || from >= n.n || to < 0 || to >= n.n {
		return -1
	}
	return from*n.n + to
}

// Sim returns the driving simulator.
func (n *Network) Sim() *des.Simulator { return n.sim }

// Graph returns the overlay topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Config returns the network conditions.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler installs the frame receiver for a node. Passing nil silently
// discards frames addressed to the node.
func (n *Network) SetHandler(node int, h Handler) {
	n.handlers[node] = h
}

// SetDropFilter installs a scripted-loss hook: every frame for which fn
// returns true is silently dropped at send time (counted as
// Stats.DroppedFiltered), after the transmission counters but before the
// failure and random-loss models — the sender still pays for the attempt,
// exactly like a frame lost on the wire. Differential and fault-injection
// tests use this to impose a deterministic loss schedule; nil removes the
// hook.
func (n *Network) SetDropFilter(fn func(Frame) bool) { n.dropFilter = fn }

// NextFrameID allocates a run-unique frame identifier.
func (n *Network) NextFrameID() uint64 {
	n.nextID++
	return n.nextID
}

// Alive reports whether link (u,v) is up at virtual time t. This is
// instantaneous ground truth: only the ORACLE baseline and test assertions
// may consult it. Routing protocols must use Estimate.
func (n *Network) Alive(u, v int, t time.Duration) bool {
	di := n.pairIndex(u, v)
	if di < 0 {
		return false
	}
	idx := n.linkOf[di]
	if idx < 0 || n.forced[idx] {
		return false
	}
	if n.nodeFailedAt(u, t) || n.nodeFailedAt(v, t) {
		return false
	}
	return !n.failedAt(int(idx), t)
}

// NodeAlive reports whether broker node u is up at virtual time t under the
// node-failure extension (always true when NodeFailureProb is 0).
func (n *Network) NodeAlive(u int, t time.Duration) bool {
	return !n.nodeFailedAt(u, t)
}

// nodeFailedAt is the deterministic per-(node, epoch) Bernoulli(Pn) draw of
// the node-failure process, mirroring failedAt for links.
func (n *Network) nodeFailedAt(u int, t time.Duration) bool {
	if n.cfg.NodeFailureProb <= 0 {
		return false
	}
	if n.cfg.NodeFailureProb >= 1 {
		return true
	}
	epoch := uint64(t / n.cfg.FailureEpoch)
	h := splitmix64(n.failSeed ^ 0xfeed_face_cafe_beef ^ splitmix64(uint64(u)+11) ^ splitmix64(epoch+7))
	uf := float64(h>>11) / float64(1<<53)
	return uf < n.cfg.NodeFailureProb
}

// ForceDown forces link (u,v) down (in both directions) until Restore,
// independent of the random failure process. Used for failure-injection
// tests and demos. It returns an error when the link does not exist.
func (n *Network) ForceDown(u, v int) error {
	di := n.pairIndex(u, v)
	if di < 0 || n.linkOf[di] < 0 {
		return fmt.Errorf("netsim: force-down of missing link (%d,%d)", u, v)
	}
	n.forced[n.linkOf[di]] = true
	return nil
}

// Restore lifts a ForceDown on link (u,v).
func (n *Network) Restore(u, v int) error {
	di := n.pairIndex(u, v)
	if di < 0 || n.linkOf[di] < 0 {
		return fmt.Errorf("netsim: restore of missing link (%d,%d)", u, v)
	}
	n.forced[n.linkOf[di]] = false
	return nil
}

// Estimate returns the monitored <alpha, gamma> estimate for link (u,v):
// the true propagation delay and the long-run per-transmission success
// probability (1-Pl)(1-Pf). The boolean reports whether the link exists.
// With Config.MonitorSamples set, use EstimateAt instead — this method
// keeps returning the exact value.
func (n *Network) Estimate(u, v int) (LinkEstimate, bool) {
	di := n.pairIndex(u, v)
	if di < 0 || n.linkOf[di] < 0 {
		return LinkEstimate{}, false
	}
	return LinkEstimate{Alpha: n.delayOf[di], Gamma: n.estGamma}, true
}

// EstimateAt returns the monitoring estimate current at virtual time t.
// With MonitorSamples == 0 it equals Estimate (exact). Otherwise gamma is
// the success fraction of MonitorSamples simulated probe transmissions
// taken during the monitoring window containing t — a noisy, stale view
// that only refreshes once per MonitorInterval, like the paper's 5-minute
// monitoring. Alpha stays exact (delay is easy to measure).
func (n *Network) EstimateAt(u, v int, t time.Duration) (LinkEstimate, bool) {
	est, ok := n.Estimate(u, v)
	if !ok {
		return LinkEstimate{}, false
	}
	if n.cfg.MonitorSamples == 0 {
		return est, true
	}
	idx := int(n.linkOf[n.pairIndex(u, v)])
	est.Gamma = n.sampledGamma(idx, uint64(t/n.cfg.MonitorInterval))
	return est, true
}

// sampledGamma is the deterministic measurement-based delivery-ratio
// estimate for the idx-th link during one monitoring window: the success
// fraction of MonitorSamples simulated probe transmissions against the true
// long-run ratio. Requires MonitorSamples > 0.
func (n *Network) sampledGamma(idx int, window uint64) float64 {
	successes := 0
	for s := 0; s < n.cfg.MonitorSamples; s++ {
		h := splitmix64(n.failSeed ^ 0x6d6f_6e69_746f_7231 ^
			splitmix64(uint64(idx)+3) ^ splitmix64(window+5) ^ splitmix64(uint64(s)+7))
		draw := float64(h>>11) / float64(1<<53)
		if draw < n.estGamma {
			successes++
		}
	}
	return float64(successes) / float64(n.cfg.MonitorSamples)
}

// EstimateVersion returns the version of the monitoring estimates in force
// at virtual time t: EstimateAt returns identical values for any two times
// with the same version. With exact estimates (MonitorSamples == 0) the
// version is always zero — estimates never change. Route-table rebuild
// engines key their caches on this.
func (n *Network) EstimateVersion(t time.Duration) uint64 {
	if n.cfg.MonitorSamples == 0 {
		return 0
	}
	return uint64(t / n.cfg.MonitorInterval)
}

// AppendChangedEstimates appends to dst the endpoints of every link whose
// monitored estimate differs between estimate versions a and b, and returns
// the extended slice. Equal versions — and exact monitoring, which has a
// single version — yield no changes. The cost is two probe resamples per
// link; callers cache per-epoch results (a route-table rebuild does this
// once per monitoring window, not per pair).
func (n *Network) AppendChangedEstimates(a, b uint64, dst [][2]int) [][2]int {
	if n.cfg.MonitorSamples == 0 || a == b {
		return dst
	}
	for i, l := range n.g.Links() {
		if n.sampledGamma(i, a) != n.sampledGamma(i, b) {
			dst = append(dst, [2]int{l.From, l.To})
		}
	}
	return dst
}

// allocDelivery takes a delivery from the pool.
func (n *Network) allocDelivery() *delivery {
	if l := len(n.free); l > 0 {
		d := n.free[l-1]
		n.free[l-1] = nil
		n.free = n.free[:l-1]
		return d
	}
	if len(n.block) == 0 {
		n.block = make([]delivery, 64)
	}
	d := &n.block[0]
	n.block = n.block[1:]
	d.n = n
	return d
}

// recycleDelivery clears the payload reference and returns d to the pool.
func (n *Network) recycleDelivery(d *delivery) {
	d.frame = Frame{}
	n.free = append(n.free, d)
}

// deliverFrame is the pooled delivery event callback: it hands the frame to
// the receiver's handler. The delivery object is recycled before the
// handler runs so that handlers can transmit re-entrantly.
func deliverFrame(a any) {
	d := a.(*delivery)
	n := d.n
	frame := d.frame
	n.recycleDelivery(d)
	n.stats.Delivered++
	if h := n.handlers[frame.To]; h != nil {
		h(frame)
	}
}

// Send transmits one frame from frame.From to frame.To. The frame is
// delivered to the receiver's handler after the link's propagation delay
// unless the link is failed at send time or the per-transmission loss draw
// hits. It returns an error if the link does not exist.
func (n *Network) Send(frame Frame) error {
	di := n.pairIndex(frame.From, frame.To)
	if di < 0 || n.linkOf[di] < 0 {
		return fmt.Errorf("netsim: send over missing link (%d,%d)", frame.From, frame.To)
	}
	delay := n.delayOf[di]
	switch frame.Kind {
	case Data:
		n.stats.DataTransmissions++
	case Control:
		n.stats.ControlTransmissions++
	default:
		return fmt.Errorf("netsim: frame with unset kind on link (%d,%d)", frame.From, frame.To)
	}
	if n.dropFilter != nil && n.dropFilter(frame) {
		n.stats.DroppedFiltered++
		return nil
	}
	if !n.Alive(frame.From, frame.To, n.sim.Now()) {
		n.stats.DroppedFailure++
		return nil
	}
	if n.cfg.LossRate > 0 && n.sim.Rand().Float64() < n.cfg.LossRate {
		n.stats.DroppedLoss++
		return nil
	}
	if frame.Kind == Control && n.cfg.InstantControl {
		delay = 0
	}
	// Optional bandwidth model: the frame first waits for (and then
	// occupies) the directed transmitter for one serialization slot.
	// Control frames (ACKs, adverts) are tiny and exempt.
	if n.txFree != nil && frame.Kind == Data {
		now := n.sim.Now()
		free := n.txFree[di]
		if free < now {
			free = now
		}
		if n.cfg.QueueCapacity > 0 && free-now >= n.slot*time.Duration(n.cfg.QueueCapacity) {
			n.stats.DroppedQueue++
			return nil
		}
		depart := free + n.slot
		n.txFree[di] = depart
		delay += depart - now
	}
	d := n.allocDelivery()
	d.frame = frame
	n.sim.AfterFunc(delay, deliverFrame, d)
	return nil
}

// ackHeadroomSlots is how many serialization slots of queueing a sender
// tolerates before treating a link as failed when the bandwidth model is
// active. Below this, transient bursts ride out; beyond it, a congested
// link looks like a failed one — the behavior the paper's introduction
// motivates DCRD with.
const ackHeadroomSlots = 4

// AckWait returns how long a sender on link (u,v) should wait for a
// hop-by-hop ACK before acting: one-way alpha under the paper's
// instant-control model, a full round trip otherwise, plus a few
// serialization slots of headroom when the bandwidth model is active.
// The boolean reports whether the link exists.
func (n *Network) AckWait(u, v int) (time.Duration, bool) {
	di := n.pairIndex(u, v)
	if di < 0 || n.linkOf[di] < 0 {
		return 0, false
	}
	return n.ackWaitOf[di], true
}

// NextEpochBoundary returns the first failure-epoch boundary strictly after
// t — the earliest instant at which link states can change.
func (n *Network) NextEpochBoundary(t time.Duration) time.Duration {
	e := t/n.cfg.FailureEpoch + 1
	return e * n.cfg.FailureEpoch
}

// failedAt reports the deterministic failure state of the idx-th link during
// the epoch containing t. In the paper's memoryless model each (link, epoch)
// pair is an independent Bernoulli(Pf) draw derived by hashing, so the
// process needs no scheduled events and is O(1) to query. With
// MeanFailureBurst > 1 the state follows a per-link Gilbert–Elliott chain.
func (n *Network) failedAt(idx int, t time.Duration) bool {
	if n.cfg.FailureProb <= 0 {
		return false
	}
	if n.cfg.FailureProb >= 1 {
		return true
	}
	epoch := uint64(t / n.cfg.FailureEpoch)
	if n.burst != nil {
		return n.burstFailedAt(idx, epoch)
	}
	u := n.epochDraw(idx, epoch)
	return u < n.cfg.FailureProb
}

// epochDraw returns the deterministic uniform draw for (link, epoch).
func (n *Network) epochDraw(idx int, epoch uint64) float64 {
	h := splitmix64(n.failSeed ^ splitmix64(uint64(idx)+1) ^ splitmix64(epoch+0x1234_5678_9abc_def1))
	return float64(h>>11) / float64(1<<53)
}

// burstStep evolves one Gilbert–Elliott step: given the state at epoch-1
// (ignored when epoch is 0), it returns the state at epoch. A failed link
// recovers each epoch w.p. 1/L; a healthy one fails w.p. Pf/(L(1-Pf)), so
// the stationary failure probability stays exactly Pf while the mean outage
// lasts L epochs. States derive from the same deterministic per-epoch draws
// as the memoryless model.
func (n *Network) burstStep(idx int, epoch uint64, prevFailed bool) bool {
	pf := n.cfg.FailureProb
	l := n.cfg.MeanFailureBurst
	u := n.epochDraw(idx, epoch)
	switch {
	case epoch == 0:
		return u < pf // stationary initial state
	case prevFailed:
		return u >= 1/l
	default:
		return u < pf/(l*(1-pf))
	}
}

// burstFailedAt evaluates the windowed Gilbert–Elliott chain. The chain is
// Markov, so it extends from its last materialized state only; history
// older than burstWindow epochs is truncated to keep memory flat, and the
// rare query before the retained window replays the chain from epoch zero.
func (n *Network) burstFailedAt(idx int, epoch uint64) bool {
	c := &n.burst[idx]
	if epoch < c.base {
		// Cold path: a query behind the retained window (tests or stale
		// diagnostics). Replay deterministically without storing.
		failed := false
		for e := uint64(0); e <= epoch; e++ {
			failed = n.burstStep(idx, e, failed)
		}
		return failed
	}
	for c.base+uint64(len(c.states)) <= epoch {
		e := c.base + uint64(len(c.states))
		prev := false
		if len(c.states) > 0 {
			prev = c.states[len(c.states)-1]
		}
		c.states = append(c.states, n.burstStep(idx, e, prev))
	}
	if len(c.states) > 2*burstWindow {
		cut := len(c.states) - burstWindow
		if keep := epoch - c.base; uint64(cut) > keep {
			cut = int(keep)
		}
		c.base += uint64(cut)
		c.states = c.states[:copy(c.states, c.states[cut:])]
	}
	return c.states[epoch-c.base]
}

// splitmix64 is the SplitMix64 mixing function, used to derive independent
// uniform draws for the lazy failure process.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

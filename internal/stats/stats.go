// Package stats provides small statistics helpers used by the simulator's
// metrics and experiment layers: means, variance, quantiles, empirical CDFs
// and normal-approximation confidence intervals.
//
// All functions are pure and operate on float64 slices; callers own the
// slices and may mutate them afterwards (functions copy when they must sort).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a result from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same convention as most
// statistics packages' "type 7" estimator).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CDF is an empirical cumulative distribution function built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len reports the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x) under the empirical distribution.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs spanning the
// sample range, suitable for plotting. It returns nil for an empty CDF.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if n == 1 || lo == hi {
		return []Point{{X: hi, Y: 1}}
	}
	pts := make([]Point, 0, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is a single (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// MeanCI returns the sample mean of xs together with the half-width of a
// normal-approximation confidence interval at the given z value
// (z = 1.96 for ~95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}

package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []float64{42}, want: 42},
		{name: "pair", xs: []float64{1, 3}, want: 2},
		{name: "negative", xs: []float64{-1, 1, -3, 3}, want: 0},
		{name: "fractions", xs: []float64{0.5, 1.5, 2.5}, want: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []float64{5}, want: 0},
		{name: "constant", xs: []float64{2, 2, 2, 2}, want: 0},
		{name: "known", xs: []float64{2, 4, 4, 4, 5, 5, 7, 9}, want: 32.0 / 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.xs, got, tt.want)
			}
			if got := StdDev(tt.xs); !almostEqual(got, math.Sqrt(tt.want), 1e-12) {
				t.Errorf("StdDev(%v) = %v, want %v", tt.xs, got, math.Sqrt(tt.want))
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) error = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 4, 1, 5, -9}
	mn, err := Min(xs)
	if err != nil || mn != -9 {
		t.Errorf("Min = %v, %v; want -9, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v; want 5, nil", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(empty) error = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should fail")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should fail")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Quantile mutated input: %v != %v", xs, orig)
		}
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CDF.At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	empty := NewCDF(nil)
	if got := empty.At(1); got != 0 {
		t.Errorf("empty CDF At = %v, want 0", got)
	}
	if pts := empty.Points(5); pts != nil {
		t.Errorf("empty CDF Points = %v, want nil", pts)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points len = %d, want 5", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 4 {
		t.Errorf("Points range [%v, %v], want [0, 4]", pts[0].X, pts[4].X)
	}
	if pts[4].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[4].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{10, 10, 10}, 1.96)
	if mean != 10 || hw != 0 {
		t.Errorf("MeanCI constant = (%v, %v), want (10, 0)", mean, hw)
	}
	mean, hw = MeanCI([]float64{42}, 1.96)
	if mean != 42 || hw != 0 {
		t.Errorf("MeanCI single = (%v, %v), want (42, 0)", mean, hw)
	}
	_, hw = MeanCI([]float64{1, 2, 3, 4, 5}, 1.96)
	if hw <= 0 {
		t.Errorf("MeanCI half-width = %v, want > 0", hw)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.9, 1.5, 2.5, -5, 100}, 0, 3, 3)
	want := []int{3, 1, 2} // -5 clamps into bin 0, 100 into bin 2
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (bins %v)", i, bins[i], want[i], bins)
		}
	}
	if got := Histogram(nil, 0, 1, 0); got != nil {
		t.Errorf("zero bins should yield nil, got %v", got)
	}
	if got := Histogram(nil, 1, 1, 3); got != nil {
		t.Errorf("empty range should yield nil, got %v", got)
	}
}

// Property: the empirical CDF is monotone non-decreasing and ends at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			y := c.At(x)
			if y < prev {
				return false
			}
			prev = y
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mean lies within [Min, Max] and quantile(0)/(1) hit the extremes.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 17))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		m := Mean(xs)
		if m < mn-1e-9 || m > mx+1e-9 {
			return false
		}
		q0, _ := Quantile(xs, 0)
		q1, _ := Quantile(xs, 1)
		return q0 == mn && q1 == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleCDF builds the empirical distribution behind the paper's Fig. 7:
// how late are the packets that missed their deadline?
func ExampleCDF() {
	lateFactors := []float64{1.1, 1.2, 1.2, 1.4, 1.9}
	cdf := stats.NewCDF(lateFactors)
	fmt.Printf("within 1.25x deadline: %.0f%%\n", 100*cdf.At(1.25))
	fmt.Printf("within 1.50x deadline: %.0f%%\n", 100*cdf.At(1.5))
	// Output:
	// within 1.25x deadline: 60%
	// within 1.50x deadline: 80%
}

// ExampleQuantile computes latency percentiles from a delivery sample.
func ExampleQuantile() {
	latenciesMS := []float64{12, 15, 18, 22, 90}
	p50, _ := stats.Quantile(latenciesMS, 0.5)
	p90, _ := stats.Quantile(latenciesMS, 0.9)
	fmt.Printf("p50=%.0fms p90=%.1fms\n", p50, p90)
	// Output:
	// p50=18ms p90=62.8ms
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: Publish, Packet: 7, Node: 0, Peer: -1, Dests: []int{2, 3}},
		{At: 1 * time.Millisecond, Kind: Send, Packet: 7, Node: 0, Peer: 1, Dests: []int{2, 3}, Note: "attempt 1"},
		{At: 12 * time.Millisecond, Kind: Timeout, Packet: 7, Node: 0, Peer: 1, Dests: []int{2, 3}},
		{At: 12 * time.Millisecond, Kind: Failover, Packet: 7, Node: 0, Peer: 1, Dests: []int{2, 3}},
		{At: 13 * time.Millisecond, Kind: Send, Packet: 7, Node: 0, Peer: 4, Dests: []int{2, 3}},
		{At: 25 * time.Millisecond, Kind: Handoff, Packet: 7, Node: 0, Peer: 4, Dests: []int{2, 3}},
		{At: 40 * time.Millisecond, Kind: Deliver, Packet: 7, Node: 2, Peer: 4},
		{At: 5 * time.Millisecond, Kind: Publish, Packet: 8, Node: 1, Peer: -1},
		{At: 6 * time.Millisecond, Kind: Drop, Packet: 8, Node: 1, Peer: -1, Note: "origin exhausted sending list"},
	}
}

func filledBuffer() *Buffer {
	b := &Buffer{}
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	return b
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Publish: "PUBLISH", Send: "SEND", Handoff: "HANDOFF",
		Timeout: "TIMEOUT", Failover: "FAILOVER", Reroute: "REROUTE",
		Deliver: "DELIVER", Drop: "DROP", Hold: "HOLD",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestPacketsAndForPacket(t *testing.T) {
	b := filledBuffer()
	ids := b.Packets()
	if len(ids) != 2 || ids[0] != 7 || ids[1] != 8 {
		t.Fatalf("Packets = %v", ids)
	}
	events := b.ForPacket(7)
	if len(events) != 7 {
		t.Fatalf("packet 7 has %d events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Error("ForPacket not time ordered")
		}
	}
	if got := b.ForPacket(99); got != nil {
		t.Errorf("unknown packet events = %v", got)
	}
}

func TestRecordCopiesDests(t *testing.T) {
	b := &Buffer{}
	dests := []int{1, 2}
	b.Record(Event{Packet: 1, Dests: dests})
	dests[0] = 99
	if b.Events()[0].Dests[0] != 1 {
		t.Error("Record aliased the caller's dest slice")
	}
}

func TestBufferLimit(t *testing.T) {
	b := &Buffer{Limit: 3}
	for i := 0; i < 10; i++ {
		b.Record(Event{Packet: uint64(i)})
	}
	if len(b.Events()) != 3 {
		t.Errorf("stored %d events, want 3", len(b.Events()))
	}
	if b.Truncated() != 7 {
		t.Errorf("truncated = %d, want 7", b.Truncated())
	}
}

func TestWriteTimeline(t *testing.T) {
	b := filledBuffer()
	var sb strings.Builder
	if err := b.WriteTimeline(&sb, 7); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"packet 7:", "PUBLISH", "SEND", "FAILOVER", "HANDOFF", "DELIVER",
		"(attempt 1)", "-> 1", "dests [2 3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Timestamps are relative to the packet's first event.
	if !strings.Contains(out, "+0s") {
		t.Errorf("timeline missing relative origin:\n%s", out)
	}
}

func TestWriteTimelineUnknownPacket(t *testing.T) {
	b := filledBuffer()
	var sb strings.Builder
	if err := b.WriteTimeline(&sb, 42); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no trace") {
		t.Errorf("unknown packet output = %q", sb.String())
	}
}

func TestSummarize(t *testing.T) {
	b := filledBuffer()
	s := b.Summarize()
	if s.Packets != 2 {
		t.Errorf("Packets = %d", s.Packets)
	}
	if s.Failovers != 1 || s.Reroutes != 0 {
		t.Errorf("Failovers = %d, Reroutes = %d", s.Failovers, s.Reroutes)
	}
	if s.ByKind[Send] != 2 || s.ByKind[Drop] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
}

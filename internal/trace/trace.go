// Package trace records per-packet routing timelines from the DCRD router:
// every send, ACK, timeout, failover, upstream reroute, delivery and drop,
// timestamped in virtual time. A trace answers "what exactly happened to
// packet 17?" — which links it tried, where it bounced, and why it was late
// — straight from a simulation run (`dcrdsim -trace N`).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Kind labels one routing event.
type Kind int

// Routing event kinds.
const (
	// Publish marks the packet entering the overlay at its source broker.
	Publish Kind = iota + 1
	// Send is one transmission attempt of a destination group.
	Send
	// Handoff is a received hop-by-hop ACK: the neighbor took
	// responsibility and the sender forgot the copy.
	Handoff
	// Timeout is an ACK timer expiring.
	Timeout
	// Failover marks a neighbor being abandoned after m transmissions.
	Failover
	// Reroute marks the copy being bounced to the upstream broker.
	Reroute
	// Deliver is a subscriber delivery.
	Deliver
	// Drop is a destination being given up on.
	Drop
	// Hold marks the persistency mode parking the packet at the origin.
	Hold
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Publish:
		return "PUBLISH"
	case Send:
		return "SEND"
	case Handoff:
		return "HANDOFF"
	case Timeout:
		return "TIMEOUT"
	case Failover:
		return "FAILOVER"
	case Reroute:
		return "REROUTE"
	case Deliver:
		return "DELIVER"
	case Drop:
		return "DROP"
	case Hold:
		return "HOLD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timestamped routing event.
type Event struct {
	At     time.Duration
	Kind   Kind
	Packet uint64
	// Node is where the event happened.
	Node int
	// Peer is the other party (next hop, ACK sender, upstream); -1 when
	// not applicable.
	Peer int
	// Dests are the destination broker nodes the event covers.
	Dests []int
	// Note carries free-form detail ("attempt 2/2", "list exhausted").
	Note string
}

// Recorder consumes events. A nil Recorder everywhere means tracing is off.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder. It is not safe for concurrent use; the
// discrete-event simulator is single-threaded.
type Buffer struct {
	events []Event
	// Limit bounds stored events (0 = unbounded); once reached, further
	// events are counted but not stored.
	Limit   int
	dropped int
}

var _ Recorder = (*Buffer)(nil)

// Record stores one event.
func (b *Buffer) Record(e Event) {
	if b.Limit > 0 && len(b.events) >= b.Limit {
		b.dropped++
		return
	}
	// Copy the dest slice: callers reuse their buffers.
	if len(e.Dests) > 0 {
		e.Dests = append([]int(nil), e.Dests...)
	}
	b.events = append(b.events, e)
}

// Events returns all stored events in record order.
func (b *Buffer) Events() []Event { return b.events }

// Truncated reports how many events were discarded due to Limit.
func (b *Buffer) Truncated() int { return b.dropped }

// Packets lists the distinct packet IDs present, ascending.
func (b *Buffer) Packets() []uint64 {
	seen := make(map[uint64]bool)
	var ids []uint64
	for _, e := range b.events {
		if !seen[e.Packet] {
			seen[e.Packet] = true
			ids = append(ids, e.Packet)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ForPacket returns one packet's events in time order.
func (b *Buffer) ForPacket(id uint64) []Event {
	var out []Event
	for _, e := range b.events {
		if e.Packet == id {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// WriteTimeline renders one packet's journey as an indented timeline.
func (b *Buffer) WriteTimeline(w io.Writer, id uint64) error {
	events := b.ForPacket(id)
	if len(events) == 0 {
		_, err := fmt.Fprintf(w, "packet %d: no trace\n", id)
		return err
	}
	start := events[0].At
	if _, err := fmt.Fprintf(w, "packet %d:\n", id); err != nil {
		return err
	}
	for _, e := range events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "  +%-10v %-8s node %-3d", e.At-start, e.Kind, e.Node)
		if e.Peer >= 0 {
			fmt.Fprintf(&sb, " -> %-3d", e.Peer)
		} else {
			sb.WriteString("       ")
		}
		if len(e.Dests) > 0 {
			fmt.Fprintf(&sb, " dests %v", e.Dests)
		}
		if e.Note != "" {
			fmt.Fprintf(&sb, "  (%s)", e.Note)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary tallies event kinds per packet — a quick health report.
type Summary struct {
	Packets   int
	ByKind    map[Kind]int
	Failovers int
	Reroutes  int
}

// Summarize aggregates the buffer.
func (b *Buffer) Summarize() Summary {
	s := Summary{ByKind: make(map[Kind]int)}
	s.Packets = len(b.Packets())
	for _, e := range b.events {
		s.ByKind[e.Kind]++
	}
	s.Failovers = s.ByKind[Failover]
	s.Reroutes = s.ByKind[Reroute]
	return s
}

package algo1

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func approxDur(a, b, eps time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestLinkStatsSingleTransmission(t *testing.T) {
	// m=1: alpha_1 = alpha, gamma_1 = gamma.
	got := LinkStats(20*time.Millisecond, 0.9, 1)
	if got.D != 20*time.Millisecond {
		t.Errorf("D = %v, want 20ms", got.D)
	}
	if math.Abs(got.R-0.9) > 1e-12 {
		t.Errorf("R = %v, want 0.9", got.R)
	}
}

func TestLinkStatsTwoTransmissions(t *testing.T) {
	// Eq. (1) with alpha=10ms, gamma=0.5, m=2:
	// gamma_2 = 1 - 0.25 = 0.75
	// alpha_2 = (1*10*0.5 + 2*10*0.5*0.5) / 0.75 = (5 + 5) / 0.75 = 13.333ms
	got := LinkStats(10*time.Millisecond, 0.5, 2)
	if math.Abs(got.R-0.75) > 1e-12 {
		t.Errorf("R = %v, want 0.75", got.R)
	}
	alpha := 10 * time.Millisecond
	want := time.Duration(float64(alpha) * 10 / 7.5)
	if !approxDur(got.D, want, time.Microsecond) {
		t.Errorf("D = %v, want %v", got.D, want)
	}
}

func TestLinkStatsEdgeCases(t *testing.T) {
	if got := LinkStats(time.Millisecond, 0, 3); got.Reachable() {
		t.Errorf("gamma=0 should be unreachable, got %+v", got)
	}
	// Perfect link: any m gives <alpha, 1>.
	got := LinkStats(time.Millisecond, 1, 5)
	if got.D != time.Millisecond || got.R != 1 {
		t.Errorf("perfect link = %+v", got)
	}
	// m < 1 clamps to 1.
	a := LinkStats(time.Millisecond, 0.7, 0)
	b := LinkStats(time.Millisecond, 0.7, 1)
	if a != b {
		t.Errorf("m=0 (%+v) != m=1 (%+v)", a, b)
	}
	// gamma > 1 clamps.
	c := LinkStats(time.Millisecond, 1.5, 1)
	if c.R != 1 {
		t.Errorf("gamma>1 clamp: %+v", c)
	}
}

func TestLinkStatsMonotoneInM(t *testing.T) {
	// More transmissions: higher delivery ratio, higher conditional delay.
	prev := LinkStats(10*time.Millisecond, 0.6, 1)
	for m := 2; m <= 6; m++ {
		cur := LinkStats(10*time.Millisecond, 0.6, m)
		if cur.R <= prev.R {
			t.Errorf("gamma_m not increasing at m=%d: %v <= %v", m, cur.R, prev.R)
		}
		if cur.D < prev.D {
			t.Errorf("alpha_m decreasing at m=%d: %v < %v", m, cur.D, prev.D)
		}
		prev = cur
	}
}

func TestVia(t *testing.T) {
	link := DR{D: 10 * time.Millisecond, R: 0.9}
	neighbor := DR{D: 30 * time.Millisecond, R: 0.8}
	got := Via(link, neighbor)
	if got.D != 40*time.Millisecond {
		t.Errorf("D = %v, want 40ms", got.D)
	}
	if math.Abs(got.R-0.72) > 1e-12 {
		t.Errorf("R = %v, want 0.72", got.R)
	}
	if Via(Unreachable(), neighbor).Reachable() {
		t.Error("via unreachable link should be unreachable")
	}
	if Via(link, Unreachable()).Reachable() {
		t.Error("via unreachable neighbor should be unreachable")
	}
}

func TestCombineSingleEntry(t *testing.T) {
	e := DR{D: 25 * time.Millisecond, R: 0.6}
	got := Combine([]DR{e})
	// d_X = d1*r1/r1 = d1; r_X = r1.
	if got.D != e.D || math.Abs(got.R-e.R) > 1e-12 {
		t.Errorf("Combine single = %+v, want %+v", got, e)
	}
}

func TestCombineTwoEntriesHandComputed(t *testing.T) {
	// Entries <10ms, 0.5> then <20ms, 0.5>:
	// r_X = 1 - 0.5*0.5 = 0.75
	// num = 10*0.5 + (10+20)*0.5*0.5 = 5 + 7.5 = 12.5 (ms)
	// d_X = 12.5/0.75 = 16.666ms
	got := Combine([]DR{
		{D: 10 * time.Millisecond, R: 0.5},
		{D: 20 * time.Millisecond, R: 0.5},
	})
	if math.Abs(got.R-0.75) > 1e-12 {
		t.Errorf("R = %v, want 0.75", got.R)
	}
	num := 12500 * time.Microsecond
	want := time.Duration(float64(num) / 0.75)
	if !approxDur(got.D, want, time.Microsecond) {
		t.Errorf("D = %v, want %v", got.D, want)
	}
}

func TestCombineEmptyAndUnreachable(t *testing.T) {
	if Combine(nil).Reachable() {
		t.Error("Combine(nil) should be unreachable")
	}
	if Combine([]DR{Unreachable(), Unreachable()}).Reachable() {
		t.Error("Combine(all unreachable) should be unreachable")
	}
	// Unreachable entries are skipped transparently.
	e := DR{D: 5 * time.Millisecond, R: 0.9}
	got := Combine([]DR{Unreachable(), e})
	want := Combine([]DR{e})
	if got != want {
		t.Errorf("unreachable entry not skipped: %+v vs %+v", got, want)
	}
}

func TestCombinePerfectFirstNeighbor(t *testing.T) {
	// r1 = 1 means later entries never matter.
	got := Combine([]DR{
		{D: 10 * time.Millisecond, R: 1},
		{D: 1 * time.Millisecond, R: 0.9},
	})
	if got.D != 10*time.Millisecond || got.R != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestSortByRatio(t *testing.T) {
	entries := []DR{
		{D: 30 * time.Millisecond, R: 0.5}, // ratio 60ms
		{D: 10 * time.Millisecond, R: 0.9}, // ratio 11.1ms
		{D: 20 * time.Millisecond, R: 0.8}, // ratio 25ms
		Unreachable(),                      // +Inf, last
	}
	ids := []int{0, 1, 2, 3}
	SortByRatio(entries, ids)
	wantIDs := []int{1, 2, 0, 3}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] {
			t.Fatalf("ids = %v, want %v", ids, wantIDs)
		}
	}
}

func TestSortByRatioTieBreaksOnID(t *testing.T) {
	entries := []DR{
		{D: 10 * time.Millisecond, R: 0.5},
		{D: 20 * time.Millisecond, R: 1.0}, // same ratio 20ms
	}
	ids := []int{7, 3}
	SortByRatio(entries, ids)
	if ids[0] != 3 || ids[1] != 7 {
		t.Errorf("tie-break ids = %v, want [3 7]", ids)
	}
}

// permutations generates all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, p := range permutations(n - 1) {
		for i := 0; i <= len(p); i++ {
			q := make([]int, 0, n)
			q = append(q, p[:i]...)
			q = append(q, n-1)
			q = append(q, p[i:]...)
			out = append(out, q)
		}
	}
	return out
}

// TestTheorem1OptimalityBruteForce verifies the paper's Theorem 1: the d/r
// ascending order minimizes Combine's expected delay over every permutation,
// for randomized inputs.
func TestTheorem1OptimalityBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.IntN(4) // 2..5 entries
		entries := make([]DR, n)
		for i := range entries {
			entries[i] = DR{
				D: time.Duration(1+rng.IntN(100)) * time.Millisecond,
				R: 0.05 + 0.95*rng.Float64(),
			}
		}
		sorted := append([]DR(nil), entries...)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		SortByRatio(sorted, ids)
		best := Combine(sorted)

		for _, perm := range permutations(n) {
			candidate := make([]DR, n)
			for i, idx := range perm {
				candidate[i] = entries[idx]
			}
			alt := Combine(candidate)
			if alt.D < best.D-time.Nanosecond {
				t.Fatalf("trial %d: permutation %v has d=%v < sorted d=%v (entries %+v)",
					trial, perm, alt.D, best.D, entries)
			}
			// Theorem 1 also implies r is order-independent.
			if math.Abs(alt.R-best.R) > 1e-9 {
				t.Fatalf("trial %d: delivery ratio changed with order: %v vs %v", trial, alt.R, best.R)
			}
		}
	}
}

// Property (Eq. 3 invariants): r_X = 1 - prod(1-r_i), and d_X lies within
// [min d_i, sum d_i].
func TestCombineInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%6
		rng := rand.New(rand.NewPCG(seed, 3))
		entries := make([]DR, n)
		probRem := 1.0
		minD := time.Duration(math.MaxInt64)
		for i := range entries {
			entries[i] = DR{
				D: time.Duration(1+rng.IntN(1000)) * time.Millisecond,
				R: 0.01 + 0.99*rng.Float64(),
			}
			probRem *= 1 - entries[i].R
			if entries[i].D < minD {
				minD = entries[i].D
			}
		}
		// The worst case is delivery via the last neighbor after trying all:
		// prefix sum of all d_i.
		var prefixAll time.Duration
		for _, e := range entries {
			prefixAll += e.D
		}
		got := Combine(entries)
		if math.Abs(got.R-(1-probRem)) > 1e-9 {
			return false
		}
		return got.D >= minD-time.Nanosecond && got.D <= prefixAll+time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LinkStats(alpha, gamma, m) delivery ratio equals 1-(1-gamma)^m
// and conditional delay is within [alpha, m*alpha].
func TestLinkStatsProperty(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := 1 + int(mRaw)%5
		rng := rand.New(rand.NewPCG(seed, 5))
		alpha := time.Duration(1+rng.IntN(50)) * time.Millisecond
		gamma := 0.01 + 0.99*rng.Float64()
		got := LinkStats(alpha, gamma, m)
		wantR := 1 - math.Pow(1-gamma, float64(m))
		if math.Abs(got.R-wantR) > 1e-9 {
			return false
		}
		return got.D >= alpha-time.Nanosecond && got.D <= time.Duration(m)*alpha+time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	p := DR{D: 20 * time.Millisecond, R: 0.5}
	want := float64(20*time.Millisecond) / 0.5
	if p.Ratio() != want {
		t.Errorf("Ratio = %v, want %v", p.Ratio(), want)
	}
	if !math.IsInf(Unreachable().Ratio(), 1) {
		t.Error("unreachable ratio should be +Inf")
	}
}

package algo1

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"
)

// TestWarmStartEqualsColdBuildProperty is the incremental engine's
// correctness pin: for random topologies, random link statistics and
// random per-epoch perturbations (links degrading, recovering, dying and
// resurrecting), a warm-started BuildTableIncremental must produce exactly
// the table a cold build produces — params, lists and budgets bit-for-bit.
func TestWarmStartEqualsColdBuildProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x7eb))
		n := 10 + int(seed%8) // 10..17 nodes
		degree := 3 + int(seed%3)
		if n*degree%2 != 0 {
			degree--
		}
		g, err := topology.RandomRegular(n, degree, topology.DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		// Per-directed-link gamma, evolved across epochs; alpha stays the
		// propagation delay (monitoring measures it exactly).
		gamma := make([]float64, n*n)
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				gamma[u*n+e.To] = 0.5 + rng.Float64()*0.5
			}
		}
		stats := func(u, v int) (time.Duration, float64, bool) {
			d, ok := g.LinkDelay(u, v)
			if !ok {
				return 0, 0, false
			}
			return d, gamma[u*n+v], true
		}
		sub := int(seed>>8) % n
		tree := topology.Dijkstra(g, 0, nil)
		budget := BudgetsFromTree(tree, 3*tree.Dist[sub]+10*time.Millisecond)
		opts := BuildOptions{M: 1 + int(seed>>16)%2}

		prev := BuildTable(g, stats, sub, budget, opts)
		for epoch := 0; epoch < 6; epoch++ {
			// Perturb ~30% of links; occasionally kill or resurrect one —
			// the hard case for incremental rebuilds, because a dead link
			// coming back can newly enter sending lists it never appeared in.
			for u := 0; u < n; u++ {
				for _, e := range g.Neighbors(u) {
					switch {
					case rng.Float64() < 0.05:
						gamma[u*n+e.To] = 0
					case rng.Float64() < 0.30:
						gamma[u*n+e.To] = 0.4 + rng.Float64()*0.6
					}
				}
			}
			cold := BuildTable(g, stats, sub, budget, opts)
			warm := BuildTableIncremental(g, NewSnapshot(g, stats, opts.M), sub, budget, prev, opts)
			if !cold.Equal(warm) {
				t.Logf("seed %d epoch %d: warm table diverged from cold", seed, epoch)
				return false
			}
			prev = warm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// fakeMonitor is a deterministic Deps for driver tests: a versioned table
// of per-directed-link estimates whose mutations are logged as changed-link
// sets, exactly the shape a gossip-fed link-state database presents.
type fakeMonitor struct {
	n       int
	alpha   []time.Duration
	gamma   []float64
	version uint64
	// changes[i] is the set of links that changed when the version moved
	// from i to i+1.
	changes [][][2]int
}

func newFakeMonitor(g *topology.Graph) *fakeMonitor {
	n := g.N()
	m := &fakeMonitor{n: n, alpha: make([]time.Duration, n*n), gamma: make([]float64, n*n), version: 1}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			m.alpha[u*n+e.To] = e.Delay
			m.gamma[u*n+e.To] = 1
		}
	}
	return m
}

// set mutates one directed link's estimate under a fresh version.
func (m *fakeMonitor) set(links [][2]int, mut func(u, v int) (time.Duration, float64)) {
	var delta [][2]int
	for _, l := range links {
		u, v := l[0], l[1]
		a, gm := mut(u, v)
		if m.alpha[u*m.n+v] == a && m.gamma[u*m.n+v] == gm {
			continue
		}
		m.alpha[u*m.n+v], m.gamma[u*m.n+v] = a, gm
		delta = append(delta, l)
	}
	m.changes = append(m.changes, delta)
	m.version++
}

// bumpQuiet advances the version without changing any estimate.
func (m *fakeMonitor) bumpQuiet() {
	m.changes = append(m.changes, nil)
	m.version++
}

func (m *fakeMonitor) EstimateVersion() uint64 { return m.version }

func (m *fakeMonitor) AppendChangedLinks(from, to uint64, dst [][2]int) [][2]int {
	for v := from; v < to; v++ {
		dst = append(dst, m.changes[v-1]...)
	}
	return dst
}

func (m *fakeMonitor) LinkEstimate(u, v int) (time.Duration, float64, bool) {
	gm := m.gamma[u*m.n+v]
	if gm <= 0 {
		return 0, 0, false
	}
	return m.alpha[u*m.n+v], gm, true
}

// TestDriverWarmEqualsColdProperty is the gossip-shaped mirror of the
// warm==cold pin: a Driver stepped through random delta streams (sparse
// per-epoch changed-link sets, quiet version bumps, dead and resurrected
// links — exactly what the live broker's link-state gossip feeds it) must
// hold, at every epoch, tables bitwise identical to a from-scratch
// RebuildCold of the same estimates.
func TestDriverWarmEqualsColdProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x11ec))
		n := 8 + int(seed%9) // 8..16 nodes
		degree := 3 + int(seed%2)
		if n*degree%2 != 0 {
			degree--
		}
		g, err := topology.RandomRegular(n, degree, topology.DefaultDelayRange(), rng)
		if err != nil {
			return false
		}
		mon := newFakeMonitor(g)
		opts := DriverOptions{Build: BuildOptions{M: 1 + int(seed>>4)%2}}
		if seed>>6&1 == 1 {
			opts.Workers = 3
		}
		inc := NewDriver(g, mon, opts)
		cold := NewDriver(g, mon, opts)
		deadline := 400 * time.Millisecond
		budget := make([]time.Duration, n)
		for x := range budget {
			budget[x] = deadline
		}
		for p := 0; p < 3; p++ {
			sub := int(seed>>(8+4*p)) % n
			key := PairKey{Topic: int32(p), Sub: int32(sub)}
			inc.SetPair(key, sub, budget)
			cold.SetPair(key, sub, budget)
		}

		var links [][2]int
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				links = append(links, [2]int{u, e.To})
			}
		}
		for epoch := 0; epoch < 8; epoch++ {
			switch {
			case epoch > 0 && rng.Float64() < 0.25:
				mon.bumpQuiet()
			default:
				// Mutate a sparse random subset — a gossip delta.
				k := 1 + rng.IntN(4)
				var batch [][2]int
				for i := 0; i < k; i++ {
					batch = append(batch, links[rng.IntN(len(links))])
				}
				mon.set(batch, func(u, v int) (time.Duration, float64) {
					if rng.Float64() < 0.1 {
						return 0, 0 // link death
					}
					return time.Duration(1+rng.IntN(30)) * time.Millisecond, 0.4 + rng.Float64()*0.6
				})
			}
			inc.Rebuild()
			cold.RebuildCold()
			ok := true
			inc.Pairs(func(key PairKey, got *Table) {
				if !got.Equal(cold.Table(key)) {
					t.Logf("seed %d epoch %d pair %+v: incremental diverged from cold", seed, epoch, key)
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDriverQuietEpochIsNoOp pins the pointer-identity fast path: a version
// bump that changes no estimate must reuse every prior table object.
func TestDriverQuietEpochIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	g, err := topology.RandomRegular(12, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	mon := newFakeMonitor(g)
	d := NewDriver(g, mon, DriverOptions{})
	budget := make([]time.Duration, g.N())
	for x := range budget {
		budget[x] = 300 * time.Millisecond
	}
	for sub := 0; sub < 4; sub++ {
		d.SetPair(PairKey{Topic: 0, Sub: int32(sub)}, sub, budget)
	}
	if !d.Rebuild() {
		t.Fatal("initial Rebuild reported no work")
	}
	before := make(map[PairKey]*Table)
	d.Pairs(func(key PairKey, tab *Table) { before[key] = tab })

	// Same version, then a quiet bump: both must be no-ops.
	for i := 0; i < 2; i++ {
		if d.Rebuild() {
			t.Fatalf("step %d: Rebuild reported work without estimate changes", i)
		}
		mon.bumpQuiet()
	}
	d.Pairs(func(key PairKey, tab *Table) {
		if before[key] != tab {
			t.Fatalf("pair %+v: table replaced on a quiet epoch", key)
		}
	})
	st := d.Stats()
	if st.Noops != 2 || st.Epochs != 3 {
		t.Fatalf("stats = %+v, want 2 noops of 3 epochs", st)
	}

	// A real delta must rebuild only affected pairs but leave the version
	// consistent.
	mon.set([][2]int{{0, g.Neighbors(0)[0].To}}, func(u, v int) (time.Duration, float64) {
		return 25 * time.Millisecond, 0.5
	})
	if !d.Rebuild() {
		t.Fatal("Rebuild ignored a changed link")
	}
	if got := d.Stats().EstimateVersion; got != mon.version {
		t.Fatalf("driver at version %d, monitor at %d", got, mon.version)
	}
}

// TestDriverSetPairAndRemove pins live registration churn: adding a pair on
// a quiet epoch builds exactly that pair; removing it drops its table.
func TestDriverSetPairAndRemove(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	g, err := topology.RandomRegular(10, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	mon := newFakeMonitor(g)
	d := NewDriver(g, mon, DriverOptions{})
	budget := make([]time.Duration, g.N())
	for x := range budget {
		budget[x] = 200 * time.Millisecond
	}
	a := PairKey{Topic: 1, Sub: 2}
	d.SetPair(a, 2, budget)
	d.Rebuild()
	at := d.Table(a)
	if at == nil {
		t.Fatal("pair a has no table")
	}

	// Re-registering identically is a no-op; the next Rebuild keeps the
	// table object.
	d.SetPair(a, 2, budget)
	if d.Rebuild() {
		t.Fatal("identical re-registration caused a rebuild")
	}

	b := PairKey{Topic: 1, Sub: 5}
	d.SetPair(b, 5, budget)
	if !d.Rebuild() {
		t.Fatal("new pair did not trigger a build")
	}
	if d.Table(a) != at {
		t.Fatal("adding pair b rebuilt pair a on a quiet epoch")
	}
	if d.Table(b) == nil {
		t.Fatal("pair b has no table")
	}
	d.RemovePair(b)
	if d.Table(b) != nil {
		t.Fatal("removed pair still has a table")
	}
}

package algo1

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/topology"
)

// BenchmarkControlPlaneEpoch measures one control-loop epoch through the
// shared incremental engine: a Driver over a gossip-shaped monitor with a
// registered pair set, stepped one estimate version per iteration.
//
//   - quiet: the version advances but no estimate moved — the pointer-identity
//     no-op path every idle LinkStateInterval tick takes.
//   - dirty: a sparse 3-link gossip delta lands each epoch — the warm-start
//     path a live link-quality wobble takes. Only pairs whose tables actually
//     touch a changed link rebuild.
func BenchmarkControlPlaneEpoch(b *testing.B) {
	setup := func(b *testing.B) (*Driver, *fakeMonitor, [][2]int) {
		b.Helper()
		rng := rand.New(rand.NewPCG(0xbe7c, 0))
		g, err := topology.RandomRegular(32, 4, topology.DefaultDelayRange(), rng)
		if err != nil {
			b.Fatal(err)
		}
		mon := newFakeMonitor(g)
		d := NewDriver(g, mon, DriverOptions{Build: BuildOptions{M: 2}})
		budget := make([]time.Duration, g.N())
		for x := range budget {
			budget[x] = 400 * time.Millisecond
		}
		for p := 0; p < 16; p++ {
			d.SetPair(PairKey{Topic: int32(p), Sub: int32(p * 2 % g.N())}, p*2%g.N(), budget)
		}
		if !d.Rebuild() {
			b.Fatal("initial rebuild did no work")
		}
		var links [][2]int
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				links = append(links, [2]int{u, e.To})
			}
		}
		return d, mon, links
	}

	b.Run("quiet", func(b *testing.B) {
		d, mon, _ := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mon.bumpQuiet()
			if d.Rebuild() {
				b.Fatal("quiet epoch rebuilt tables")
			}
		}
	})

	b.Run("dirty", func(b *testing.B) {
		d, mon, links := setup(b)
		rng := rand.New(rand.NewPCG(0xd1e7, 1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := [][2]int{
				links[rng.IntN(len(links))],
				links[rng.IntN(len(links))],
				links[rng.IntN(len(links))],
			}
			mon.set(batch, func(u, v int) (time.Duration, float64) {
				return time.Duration(1+rng.IntN(30)) * time.Millisecond, 0.4 + rng.Float64()*0.6
			})
			d.Rebuild()
		}
	})
}

// Package algo1 is the transport-agnostic DCRD control plane: the paper's
// <d, r> parameter algebra (Eq. 1–3), the Theorem-1 sending-list ordering,
// the per-pair Algorithm-1 fixpoint (BuildTable / BuildTableIncremental
// with warm-started rebuilds) and the epoch-scheduling Driver that turns a
// stream of link-estimate changes into fresh route tables.
//
// Like internal/algo2 for the data plane, this package never touches a
// clock, a socket or a simulator event queue. Everything environmental is
// injected through the small Deps interface: the discrete-event simulator
// (internal/core.Router) feeds it netsim's monitoring windows, and the
// live broker (internal/broker) feeds it gossiped link-state deltas
// measured from real TCP traffic. Both shells run the exact same fixpoint
// code, which is what lets a differential test demand bit-identical tables
// from both.
package algo1

import (
	"math"
	"time"
)

// Infinite marks an unavailable expected delay (packet cannot be delivered).
const Infinite = time.Duration(math.MaxInt64)

// DR is the paper's <d, r> parameter pair for a node (or for reaching the
// subscriber via one particular neighbor): D is the expected delay until the
// packet reaches the subscriber conditioned on eventual delivery, and R is
// the probability of that delivery.
type DR struct {
	D time.Duration
	R float64
}

// Unreachable is the <d, r> value of a node that cannot reach the
// subscriber at all.
func Unreachable() DR { return DR{D: Infinite, R: 0} }

// Reachable reports whether the parameters describe a node with a usable
// route (positive delivery probability and finite expected delay).
func (p DR) Reachable() bool { return p.R > 0 && p.D != Infinite }

// Ratio returns d/r, the Theorem-1 sort key, in nanoseconds. Unreachable
// entries sort last (+Inf).
func (p DR) Ratio() float64 {
	if !p.Reachable() {
		return math.Inf(1)
	}
	return float64(p.D) / p.R
}

// LinkStats lifts single-transmission link statistics <alpha, gamma> to the
// m-transmission statistics of the paper's Eq. (1):
//
//	alpha_m = sum_{k=1..m} k*alpha*gamma*(1-gamma)^(k-1) / (1-(1-gamma)^m)
//	gamma_m = 1 - (1-gamma)^m
//
// alpha_m is conditional on delivery within m transmissions. m < 1 is
// treated as 1. A gamma of 0 yields an unreachable link.
func LinkStats(alpha time.Duration, gamma float64, m int) DR {
	if m < 1 {
		m = 1
	}
	if gamma <= 0 {
		return Unreachable()
	}
	if gamma > 1 {
		gamma = 1
	}
	q := 1 - gamma
	var num float64 // in units of alpha
	qk := 1.0       // (1-gamma)^(k-1)
	for k := 1; k <= m; k++ {
		num += float64(k) * gamma * qk
		qk *= q
	}
	gammaM := 1 - math.Pow(q, float64(m))
	if gammaM <= 0 {
		return Unreachable()
	}
	return DR{
		D: time.Duration(num / gammaM * float64(alpha)),
		R: gammaM,
	}
}

// Via combines a link's m-transmission statistics with the neighbor's own
// <d, r> per Eq. (2): the expected delay to reach the subscriber via that
// neighbor is the link delay plus the neighbor's expected delay, and the
// delivery ratio is the product of the link's and the neighbor's.
func Via(link, neighbor DR) DR {
	if !link.Reachable() || !neighbor.Reachable() {
		return Unreachable()
	}
	return DR{
		D: link.D + neighbor.D,
		R: link.R * neighbor.R,
	}
}

// Combine evaluates Eq. (3) over an ordered sending list whose i-th entry is
// <d_i^X, r_i^X> (the Via result for the i-th neighbor): the node tries
// neighbor 1 first, then 2, and so on, so the expected delay conditioned on
// delivery is
//
//	d_X = sum_i (sum_{j<=i} d_j^X) * (r_i^X * prod_{j<i}(1-r_j^X)) / r_X
//	r_X = 1 - prod_i (1-r_i^X)
//
// Entries that are not Reachable contribute nothing. An empty (or all
// unreachable) list yields Unreachable.
func Combine(ordered []DR) DR {
	var (
		num     float64 // nanoseconds, probability-weighted cumulative delay
		prefix  float64 // sum_{j<=i} d_j^X in nanoseconds
		probRem = 1.0   // prod_{j<i} (1-r_j^X)
	)
	any := false
	for _, e := range ordered {
		if !e.Reachable() {
			continue
		}
		any = true
		prefix += float64(e.D)
		num += prefix * e.R * probRem
		probRem *= 1 - e.R
	}
	if !any {
		return Unreachable()
	}
	rX := 1 - probRem
	if rX <= 0 {
		return Unreachable()
	}
	return DR{
		D: time.Duration(num / rX),
		R: rX,
	}
}

// SortByRatio orders entries by increasing d/r — the Theorem-1 ordering
// proven to minimize the expected delay d_X of Eq. (3). Ties break on the
// associated neighbor IDs for determinism (the (ratio, id) key is a total
// order, so the result is unique). Entries and ids are parallel slices
// sorted in place; sending lists are degree-sized, so an allocation-free
// insertion sort beats boxing into the sort package.
func SortByRatio(entries []DR, ids []int) {
	for i := 1; i < len(entries); i++ {
		e, id := entries[i], ids[i]
		r := e.Ratio()
		j := i
		for j > 0 {
			rj := entries[j-1].Ratio()
			if rj < r || (rj == r && ids[j-1] < id) {
				break
			}
			entries[j], ids[j] = entries[j-1], ids[j-1]
			j--
		}
		entries[j], ids[j] = e, id
	}
}

package algo1

import (
	"testing"
	"time"

	"repro/internal/topology"
)

func TestOrderingPoliciesProduceExpectedLists(t *testing.T) {
	// Node 0 has three routes to subscriber 3 with different (d, r)
	// trade-offs; each ordering policy should rank them differently.
	g := topology.NewGraph(4)
	mustLink := func(u, v int, d time.Duration) {
		t.Helper()
		if err := g.AddLink(u, v, d); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 3, 50*time.Millisecond)
	mustLink(0, 1, 10*time.Millisecond)
	mustLink(1, 3, 10*time.Millisecond)
	mustLink(0, 2, 40*time.Millisecond)
	mustLink(2, 3, 40*time.Millisecond)

	// Per-link gammas: the direct link is very reliable, the cheap two-hop
	// route is flaky, the expensive two-hop route is mid.
	gamma := map[[2]int]float64{
		{0, 3}: 0.999,
		{0, 1}: 0.6, {1, 3}: 0.6,
		{0, 2}: 0.9, {2, 3}: 0.9,
	}
	stats := func(u, v int) (time.Duration, float64, bool) {
		d, ok := g.LinkDelay(u, v)
		if !ok {
			return 0, 0, false
		}
		a, b := topology.Canonical(u, v)
		return d, gamma[[2]int{a, b}], true
	}

	listFor := func(ord Ordering) []int {
		tab := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: ord})
		return tab.Lists[0]
	}

	// Reliability-only: most reliable via first = direct (r ~.999).
	rel := listFor(ReliabilityOrder)
	if len(rel) != 3 || rel[0] != 3 {
		t.Errorf("reliability order = %v, want direct link (3) first", rel)
	}
	// Delay-only: cheapest via d first = via 1 (~20ms+).
	del := listFor(DelayOrder)
	if len(del) != 3 || del[0] != 1 {
		t.Errorf("delay order = %v, want flaky cheap route (1) first", del)
	}
	// Arbitrary: neighbor-ID order.
	arb := listFor(ArbitraryOrder)
	want := []int{1, 2, 3}
	for i := range want {
		if arb[i] != want[i] {
			t.Fatalf("arbitrary order = %v, want %v", arb, want)
		}
	}
	// Ratio order must yield the minimal expected delay of all policies.
	best := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: RatioOrder}).Params[0].D
	for _, ord := range []Ordering{DelayOrder, ReliabilityOrder, ArbitraryOrder} {
		d := BuildTable(g, stats, 3, bigBudgets(4), BuildOptions{Ordering: ord}).Params[0].D
		if d < best {
			t.Errorf("%v expected delay %v beats Theorem-1 %v", ord, d, best)
		}
	}
}

func TestOrderingUnknownString(t *testing.T) {
	if Ordering(42).String() != "Ordering(42)" {
		t.Errorf("got %q", Ordering(42).String())
	}
}

package algo1_test

import (
	"fmt"
	"time"

	"repro/internal/algo1"
)

// ExampleLinkStats lifts a lossy link's single-transmission statistics to
// the paper's Eq. (1) m-transmission form.
func ExampleLinkStats() {
	// A 20 ms link delivering 80% of transmissions, tried up to twice.
	dr := algo1.LinkStats(20*time.Millisecond, 0.8, 2)
	fmt.Printf("expected delay %v, delivery ratio %.2f\n", dr.D, dr.R)
	// Output:
	// expected delay 23.333333ms, delivery ratio 0.96
}

// ExampleCombine evaluates Eq. (3): the expected delay and delivery ratio
// of trying two neighbors in order.
func ExampleCombine() {
	first := algo1.DR{D: 10 * time.Millisecond, R: 0.5}
	second := algo1.DR{D: 20 * time.Millisecond, R: 0.5}
	dr := algo1.Combine([]algo1.DR{first, second})
	fmt.Printf("d=%v r=%.2f\n", dr.D, dr.R)
	// Output:
	// d=16.666666ms r=0.75
}

// ExampleSortByRatio orders a sending list by the Theorem-1 d/r rule.
func ExampleSortByRatio() {
	entries := []algo1.DR{
		{D: 30 * time.Millisecond, R: 0.5}, // neighbor 7: ratio 60ms
		{D: 10 * time.Millisecond, R: 0.9}, // neighbor 2: ratio 11ms
	}
	ids := []int{7, 2}
	algo1.SortByRatio(entries, ids)
	fmt.Println(ids)
	// Output:
	// [2 7]
}

package algo1

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/topology"
)

// LinkStatsFunc reports the monitored single-transmission <alpha, gamma>
// estimate for overlay link (u,v). ok is false when no such link exists.
type LinkStatsFunc func(u, v int) (alpha time.Duration, gamma float64, ok bool)

// Table holds, for one (publisher, subscriber) pair, every node's sending
// list (Theorem-1 ordered eligible neighbors) and its <d, r> parameters.
//
// Sending lists are per pair rather than per subscriber because Algorithm 1
// admits a neighbor only when its expected delay fits the node's residual
// delay budget D_XS = D_PS − SP(P, X), which depends on the publisher.
type Table struct {
	Subscriber int
	// Params[x] is node x's <d_x, r_x> from Eq. (3).
	Params []DR
	// Lists[x] is node x's ordered sending list toward the subscriber.
	Lists [][]int
	// Budget[x] is D_XS, the residual delay requirement at node x.
	// Negative budgets mean the node cannot possibly meet the deadline.
	Budget []time.Duration
	// Rounds is how many synchronous recomputation rounds the distributed
	// fixpoint took to stabilize.
	Rounds int
}

// Ordering selects how a node sorts its sending list. RatioOrder is the
// paper's Theorem-1 policy; the others exist for ablation: they answer
// "how much does the proven ordering actually buy?"
type Ordering int

// Sending-list orderings.
const (
	// RatioOrder sorts by d/r ascending — Theorem 1, provably minimizing
	// the expected delay. The default.
	RatioOrder Ordering = iota
	// DelayOrder sorts by the via-delay d ascending, ignoring reliability.
	DelayOrder
	// ReliabilityOrder sorts by the via-delivery-ratio r descending,
	// ignoring delay.
	ReliabilityOrder
	// ArbitraryOrder keeps neighbor-ID order — no intelligence at all.
	ArbitraryOrder
)

// String names the ordering for experiment output.
func (o Ordering) String() string {
	switch o {
	case RatioOrder:
		return "d/r (Theorem 1)"
	case DelayOrder:
		return "delay-only"
	case ReliabilityOrder:
		return "reliability-only"
	case ArbitraryOrder:
		return "arbitrary"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// sortList orders the parallel (via, ids) slices under the policy.
func (o Ordering) sortList(via []DR, ids []int) {
	switch o {
	case DelayOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(p DR) float64 {
			if !p.Reachable() {
				return math.Inf(1)
			}
			return float64(p.D)
		}})
	case ReliabilityOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(p DR) float64 { return -p.R }})
	case ArbitraryOrder:
		sort.Stable(byKey{entries: via, ids: ids, key: func(DR) float64 { return 0 }})
	default:
		SortByRatio(via, ids)
	}
}

// byKey sorts parallel slices by a scalar key with ID tie-break.
type byKey struct {
	entries []DR
	ids     []int
	key     func(DR) float64
}

func (s byKey) Len() int { return len(s.entries) }

func (s byKey) Less(i, j int) bool {
	ki, kj := s.key(s.entries[i]), s.key(s.entries[j])
	if ki != kj {
		return ki < kj
	}
	return s.ids[i] < s.ids[j]
}

func (s byKey) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// BuildOptions tunes table construction.
type BuildOptions struct {
	// M is the number of transmissions tried per neighbor before declaring
	// failure (the paper's m; default 1).
	M int
	// MaxRounds caps the synchronous fixpoint. Zero means 2*N+10. The
	// iteration normally stops much earlier, at the first round that
	// changes no parameter exactly; near-ties can flicker by one
	// nanosecond forever (the float math under D's integer rounding has
	// limit cycles), so the cap also serves as the deterministic
	// tie-break for inputs that never reach an exact fixpoint.
	MaxRounds int
	// Ordering is the sending-list policy (RatioOrder unless overridden
	// for ablation).
	Ordering Ordering
}

// Snapshot is the dense (from, to) table of per-link m-transmission
// statistics shared by every (publisher, subscriber) pair of one rebuild
// epoch. BuildTable used to materialize this O(n²) table per pair; the
// rebuild engine now builds one Snapshot per epoch and hands it to every
// BuildTableIncremental call, which is the dominant saving of the
// incremental path (the table itself is identical for every pair — link
// statistics do not depend on the subscriber).
type Snapshot struct {
	n int
	m int
	// linkDR[u*n+v] is the m-transmission <d, r> of directed link (u, v);
	// missing links stay Unreachable, which the admission filter skips.
	linkDR []DR
}

// NewSnapshot materializes the m-transmission link statistics of every
// directed link under the supplied monitoring estimates. m < 1 is treated
// as 1 (matching BuildOptions.M).
func NewSnapshot(g *topology.Graph, stats LinkStatsFunc, m int) *Snapshot {
	if m < 1 {
		m = 1
	}
	n := g.N()
	s := &Snapshot{n: n, m: m, linkDR: make([]DR, n*n)}
	for i := range s.linkDR {
		s.linkDR[i] = Unreachable()
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			alpha, gamma, ok := stats(u, e.To)
			if !ok {
				continue
			}
			s.linkDR[u*n+e.To] = LinkStats(alpha, gamma, m)
		}
	}
	return s
}

// M returns the transmissions-per-neighbor count the snapshot was built for.
func (s *Snapshot) M() int { return s.m }

// Link returns the m-transmission statistics of directed link (u, v).
func (s *Snapshot) Link(u, v int) DR { return s.linkDR[u*s.n+v] }

// BuildTable runs Algorithm 1 to a fixpoint for one (publisher, subscriber)
// pair: every node receives its neighbors' <d, r> parameters, admits the
// neighbors whose expected delay fits within the node's residual budget,
// orders them by the Theorem-1 d/r ratio, and recomputes its own <d, r> via
// Eq. (3). The paper runs this as an asynchronous distributed protocol; a
// synchronous Jacobi iteration reaches the same fixpoint deterministically.
//
// budget[x] must hold D_XS = D_PS − SP(P, x) (see Workload.PublisherTree);
// the subscriber's own parameters are pinned at <0, 1>.
func BuildTable(g *topology.Graph, stats LinkStatsFunc, sub int, budget []time.Duration, opts BuildOptions) *Table {
	m := opts.M
	if m < 1 {
		m = 1
	}
	return BuildTableIncremental(g, NewSnapshot(g, stats, m), sub, budget, nil, opts)
}

// BuildTableIncremental is BuildTable against a shared per-epoch Snapshot,
// optionally warm-started from the previous epoch's table for the same
// pair. Warm starting seeds the Jacobi iteration with the previous
// fixpoint: when the estimates feeding this pair did not effectively move,
// the very first round reproduces the seed exactly and the build finishes
// in one round instead of ~network-diameter plus refinement. When the
// first round does change a parameter, the iteration restarts from
// all-Unreachable and replays the cold trajectory instead of continuing
// from the stale seed. The restart is what keeps warm and cold builds
// bitwise identical: the float dynamics are not monotone (near-ties can
// flicker by 1 ns forever and more than one attractor can exist), so a
// trajectory continued from an interior point may settle somewhere a
// from-scratch build never visits. Cold builds are the canonical output —
// a deterministic function of (snapshot, budgets, options) alone — and the
// rebuild property tests cross-check that warm-started tables always
// equal them exactly. Only Rounds (diagnostics) may differ.
//
// The snapshot must have been built with the same M as opts.
func BuildTableIncremental(g *topology.Graph, snap *Snapshot, sub int, budget []time.Duration, prev *Table, opts BuildOptions) *Table {
	n := g.N()
	if opts.M < 1 {
		opts.M = 1
	}
	if snap.m != opts.M || snap.n != n {
		panic(fmt.Sprintf("algo1: snapshot built for (n=%d, m=%d), table wants (n=%d, m=%d)",
			snap.n, snap.m, n, opts.M))
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 2*n + 10
	}

	t := &Table{
		Subscriber: sub,
		Lists:      make([][]int, n),
		Budget:     append([]time.Duration(nil), budget...),
	}
	// Triple-buffered Jacobi iteration: cur holds the previous round's
	// parameters, next receives this round's, prev2 the round before cur
	// (for limit-cycle detection). Per-node list buffers are sized to the
	// degree once and rewritten when a node is recomputed; the last
	// recomputation's contents become the table's sending lists.
	//
	// Two transformations make the iteration cheap without changing one
	// output bit relative to the plain full-sweep loop:
	//
	//  1. Worklist rounds. A node's update is a pure function of its
	//     neighbors' parameters, so a node none of whose neighbors changed
	//     in the previous round provably reproduces its current value and
	//     is skipped. The per-round changed set therefore exactly matches
	//     the full sweep's, round for round.
	//  2. Period-2 cycle detection. Near-ties can flicker forever between
	//     two states one nanosecond apart (float math under D's integer
	//     rounding); a full sweep would burn the whole MaxRounds cap and
	//     emit whichever phase the cap's parity lands on. Once the state
	//     returns to the state two rounds ago, the remaining trajectory is
	//     a proven alternation, so the build stops immediately and keeps
	//     the phase the capped sweep would have kept.
	cur := make([]DR, n)
	next := make([]DR, n)
	prev2 := make([]DR, n)
	// changedPrev/changedNow list the nodes whose parameters changed in
	// the previous/current round; needs[x] is a round-stamped mark that x
	// must be recomputed this round.
	changedPrev := make([]int, 0, n)
	changedNow := make([]int, 0, n)
	needs := make([]int, n)
	roundNo := 0
	idsBuf := make([][]int, n)
	viaBuf := make([][]DR, n)
	for x := 0; x < n; x++ {
		if x == sub {
			continue
		}
		idsBuf[x] = make([]int, 0, g.Degree(x))
		viaBuf[x] = make([]DR, 0, g.Degree(x))
	}
	// round runs one Jacobi round. With all set it recomputes every node
	// (seed rounds, where no previous changed set exists); otherwise only
	// nodes marked in needs. Returns whether any parameter changed and
	// whether the state provably entered a period-2 cycle.
	round := func(all bool) (anyChanged, cycle bool) {
		roundNo++
		t.Rounds++
		copy(next, cur)
		changedNow = changedNow[:0]
		// cycle stays true only while every change this round returns to
		// the value of two rounds ago (prev2 is valid from round 2 on).
		cycle = roundNo >= 2
		for x := 0; x < n; x++ {
			if x == sub || (!all && needs[x] != roundNo) {
				continue
			}
			ids, via := admit(g, x, cur, snap.linkDR, n, t.Budget[x], idsBuf[x][:0], viaBuf[x][:0])
			idsBuf[x], viaBuf[x] = ids, via
			opts.Ordering.sortList(via, ids)
			next[x] = Combine(via)
			if next[x] != cur[x] {
				changedNow = append(changedNow, x)
				if next[x] != prev2[x] {
					cycle = false
				}
			}
		}
		anyChanged = len(changedNow) > 0
		if cycle {
			// The state equals the state two rounds ago only if every node
			// out of this round's changed set also sat still last round.
			for _, x := range changedPrev {
				if next[x] == cur[x] {
					cycle = false
					break
				}
			}
		}
		// Mark next round's work: neighbors of every changed node.
		for _, x := range changedNow {
			for _, e := range g.Neighbors(x) {
				needs[e.To] = roundNo + 1
			}
		}
		prev2, cur, next = cur, next, prev2
		changedPrev, changedNow = changedNow, changedPrev
		return anyChanged, cycle
	}

	warmHit := false
	if prev != nil && len(prev.Params) == n {
		// Warm fast path: one full round from the previous fixpoint. No
		// change means prev is still the exact fixpoint under the new
		// snapshot, and the round's list buffers already hold the lists a
		// cold build would derive from it.
		copy(cur, prev.Params)
		cur[sub] = DR{D: 0, R: 1}
		changed, _ := round(true)
		warmHit = !changed
	}
	if !warmHit {
		for x := range cur {
			cur[x] = Unreachable()
		}
		cur[sub] = DR{D: 0, R: 1}
		roundNo = 0
		changedPrev = changedPrev[:0]
		for x := range needs {
			needs[x] = 0
		}
		for r := 0; r < opts.MaxRounds; r++ {
			changed, cycle := round(r == 0)
			if !changed {
				break
			}
			if cycle {
				// The trajectory now alternates between cur and prev2
				// until the cap; keep the phase the cap would emit. An
				// extra round lands on the other phase when the distance
				// to the cap is odd.
				if (opts.MaxRounds-r-1)%2 == 1 {
					round(false)
				}
				break
			}
		}
	}
	t.Params = cur
	for x := 0; x < n; x++ {
		if x != sub {
			t.Lists[x] = idsBuf[x]
		}
	}
	return t
}

// admit applies the Algorithm-1 admission filter at node x: a neighbor i
// joins the sending list only if its own expected delay d_i is strictly
// within x's residual budget D_XS and both the link and the neighbor are
// reachable. It appends the admitted neighbor IDs and their Eq.-2 Via
// parameters (unsorted) to the supplied buffers.
func admit(g *topology.Graph, x int, params []DR, linkDR []DR, n int, budget time.Duration, ids []int, via []DR) ([]int, []DR) {
	for _, e := range g.Neighbors(x) {
		p := params[e.To]
		if !p.Reachable() || p.D >= budget {
			continue
		}
		link := linkDR[x*n+e.To]
		if !link.Reachable() {
			continue
		}
		v := Via(link, p)
		if !v.Reachable() {
			continue
		}
		ids = append(ids, e.To)
		via = append(via, v)
	}
	return ids, via
}

// List returns node x's sending list. The slice is owned by the table.
func (t *Table) List(x int) []int { return t.Lists[x] }

// Equal compares everything a table exposes to forwarding: the <d, r>
// parameters, the ordered sending lists and the budgets. Rounds is
// diagnostics (warm starts converge faster by design) and is excluded.
// The incremental-rebuild cross-checks (warm vs cold, sim vs live) demand
// this bitwise equality.
func (t *Table) Equal(o *Table) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Subscriber != o.Subscriber || len(t.Params) != len(o.Params) {
		return false
	}
	for i := range t.Params {
		if t.Params[i] != o.Params[i] || t.Budget[i] != o.Budget[i] {
			return false
		}
		if len(t.Lists[i]) != len(o.Lists[i]) {
			return false
		}
		for j := range t.Lists[i] {
			if t.Lists[i][j] != o.Lists[i][j] {
				return false
			}
		}
	}
	return true
}

// BudgetsFromTree derives per-node residual delay budgets
// D_XS = D_PS − SP(P, x) from a shortest-delay tree rooted at the
// publisher. Unreachable nodes get a negative budget (never admitted).
func BudgetsFromTree(tree *topology.ShortestPathTree, deadline time.Duration) []time.Duration {
	budgets := make([]time.Duration, len(tree.Dist))
	for x, d := range tree.Dist {
		if d == topology.Infinite {
			budgets[x] = -1
			continue
		}
		budgets[x] = deadline - d
	}
	return budgets
}

package algo1

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/topology"
)

// Deps is the monitoring substrate a Driver rebuilds route tables from.
// The driver never samples links itself; it asks the environment for a
// version counter, the set of links whose estimates changed between two
// versions, and the current single-transmission <alpha, gamma> estimate of
// a directed link. The simulator backs this with netsim's deterministic
// monitoring windows; the live broker backs it with a gossip-fed link-state
// database measured from real traffic. The changed-link sets are what make
// a quiet epoch a pointer-identity no-op: the version moved but nothing the
// tables depend on did, so every table survives untouched.
type Deps interface {
	// EstimateVersion is a counter that advances whenever any link estimate
	// may have changed. Equal versions guarantee equal estimates.
	EstimateVersion() uint64
	// AppendChangedLinks appends every link whose estimate changed in
	// versions (from, to] to dst and returns it. Over-approximating is
	// sound (extra pairs are rebuilt to identical tables); omitting a
	// genuinely changed link is not.
	AppendChangedLinks(from, to uint64, dst [][2]int) [][2]int
	// LinkEstimate reports the current single-transmission <alpha, gamma>
	// estimate of directed link (u, v). ok is false when the link is
	// unknown or down.
	LinkEstimate(u, v int) (alpha time.Duration, gamma float64, ok bool)
}

// PairKey names one (publisher topic, subscriber node) route-table pair.
type PairKey struct {
	Topic int32
	Sub   int32
}

// DriverOptions tunes a Driver.
type DriverOptions struct {
	// Build tunes the per-pair Algorithm-1 fixpoint.
	Build BuildOptions
	// Workers bounds the worker pool Rebuild fans independent pair builds
	// out over. Values <= 1 build serially. Output is deterministic either
	// way: pair builds are pure and results are installed in index order.
	Workers int
}

// pairState is one registered (topic, subscriber) pair: its authoritative
// budget vector, its current table (nil before the first build) and a dirty
// mark forcing a rebuild regardless of changed links (new registration or a
// changed budget/graph).
type pairState struct {
	sub    int
	budget []time.Duration
	table  *Table
	dirty  bool
}

// Driver schedules incremental Algorithm-1 rebuilds: it owns the route
// tables for a set of registered (topic, subscriber) pairs and refreshes
// them from its Deps on demand. Rebuild is the whole contract — when the
// estimate version is unchanged the call is a no-op reusing every prior
// table; otherwise one shared link-stats Snapshot is built for the epoch,
// pairs untouched by any changed link keep their tables (pointer identity),
// and dirty pairs are warm-started from their previous fixpoint. The
// resulting tables are exactly the tables a from-scratch build would
// produce (RebuildCold, which tests cross-check against).
//
// A Driver is not safe for concurrent use; both shells call it from a
// single goroutine (the simulator's event loop, the broker's control loop).
type Driver struct {
	g    *topology.Graph
	deps Deps
	opts DriverOptions

	pairs map[PairKey]*pairState
	order []PairKey // registration order: deterministic build order

	estVer     uint64
	built      bool
	nDirty     int
	changedBuf [][2]int

	// Rebuild outcome counters (diagnostics, exported via Stats).
	epochs  uint64
	noops   uint64
	rebuilt uint64
}

// NewDriver creates a driver over the supplied overlay graph and
// monitoring substrate, with no pairs registered.
func NewDriver(g *topology.Graph, deps Deps, opts DriverOptions) *Driver {
	if opts.Build.M < 1 {
		opts.Build.M = 1
	}
	return &Driver{g: g, deps: deps, opts: opts, pairs: make(map[PairKey]*pairState)}
}

// Graph returns the overlay graph the driver currently builds against.
func (d *Driver) Graph() *topology.Graph { return d.g }

// SetGraph replaces the overlay graph (live topologies grow and shrink as
// gossip reveals brokers). Every pair is marked dirty: warm starts remain
// valid only when the node count is unchanged, and BuildTableIncremental
// falls back to a cold build otherwise.
func (d *Driver) SetGraph(g *topology.Graph) {
	d.g = g
	for _, key := range d.order {
		p := d.pairs[key]
		if !p.dirty {
			p.dirty = true
			d.nDirty++
		}
	}
}

// SetPair registers (or refreshes) one (topic, subscriber) pair. sub is the
// subscriber's node index in the graph; budget[x] is node x's residual
// delay requirement D_XS (see BudgetsFromTree; a uniform deadline vector
// reproduces the live broker's flat admission rule). Re-registering with an
// identical subscriber and budget is a cheap no-op, so callers may sync
// their full pair set every epoch.
func (d *Driver) SetPair(key PairKey, sub int, budget []time.Duration) {
	if p, ok := d.pairs[key]; ok {
		if p.sub == sub && slices.Equal(p.budget, budget) {
			return
		}
		p.sub = sub
		p.budget = append(p.budget[:0], budget...)
		p.table = nil // budgets changed: the old fixpoint is not a valid warm seed
		if !p.dirty {
			p.dirty = true
			d.nDirty++
		}
		return
	}
	d.pairs[key] = &pairState{sub: sub, budget: append([]time.Duration(nil), budget...), dirty: true}
	d.order = append(d.order, key)
	d.nDirty++
}

// RemovePair drops a pair and its table.
func (d *Driver) RemovePair(key PairKey) {
	p, ok := d.pairs[key]
	if !ok {
		return
	}
	if p.dirty {
		d.nDirty--
	}
	delete(d.pairs, key)
	if i := slices.Index(d.order, key); i >= 0 {
		d.order = slices.Delete(d.order, i, i+1)
	}
}

// Table returns the pair's current route table (nil before the first
// Rebuild or for an unregistered pair).
func (d *Driver) Table(key PairKey) *Table {
	p, ok := d.pairs[key]
	if !ok {
		return nil
	}
	return p.table
}

// Pairs calls fn for every registered pair in registration order with its
// current table (nil before the first build).
func (d *Driver) Pairs(fn func(key PairKey, t *Table)) {
	for _, key := range d.order {
		fn(key, d.pairs[key].table)
	}
}

// DriverStats counts rebuild outcomes.
type DriverStats struct {
	// Epochs is the number of Rebuild calls.
	Epochs uint64
	// Noops is how many of them were pointer-identity no-ops (version
	// unchanged, or a new window with identical estimates).
	Noops uint64
	// TablesBuilt is the total number of per-pair fixpoint builds.
	TablesBuilt uint64
	// EstimateVersion is the version the current tables were built from.
	EstimateVersion uint64
}

// Stats returns rebuild-outcome counters.
func (d *Driver) Stats() DriverStats {
	return DriverStats{Epochs: d.epochs, Noops: d.noops, TablesBuilt: d.rebuilt, EstimateVersion: d.estVer}
}

// Rebuild refreshes the route tables from the monitoring estimates current
// at the Deps and reports whether any table may have changed. The refresh
// is incremental: an unchanged estimate version (and no dirty pairs) is a
// no-op reusing every prior table; otherwise the changed-link set confines
// the work to affected pairs, warm-started from their previous fixpoints.
func (d *Driver) Rebuild() bool {
	d.epochs++
	ver := d.deps.EstimateVersion()
	var changed [][2]int
	full := !d.built
	if d.built {
		if ver == d.estVer && d.nDirty == 0 {
			d.noops++
			return false // same estimates, same tables
		}
		if ver != d.estVer {
			d.changedBuf = d.deps.AppendChangedLinks(d.estVer, ver, d.changedBuf[:0])
			changed = d.changedBuf
		}
		d.estVer = ver
		if len(changed) == 0 && d.nDirty == 0 {
			d.noops++
			return false // new window, identical estimates
		}
	} else {
		d.estVer = ver
	}
	d.rebuild(changed, full)
	d.built = true
	return true
}

// rebuildJob is one dirty (topic, subscriber) pair queued for (re)building.
type rebuildJob struct {
	key    PairKey
	sub    int
	budget []time.Duration
	prev   *Table
}

// rebuild (re)builds route tables against one shared snapshot of the
// current estimates. With full set everything is dirty (the initial build
// or a graph change); otherwise only explicitly dirty pairs and pairs the
// changed links can influence are rebuilt, warm-started from their
// previous tables.
func (d *Driver) rebuild(changed [][2]int, full bool) {
	g := d.g
	n := g.N()
	snap := NewSnapshot(g, d.deps.LinkEstimate, d.opts.Build.M)

	var jobs []rebuildJob
	for _, key := range d.order {
		p := d.pairs[key]
		if len(p.budget) != n || p.sub < 0 || p.sub >= n {
			// The graph moved under the pair and the caller has not refreshed
			// its budgets yet; building would index out of bounds. Skip — the
			// pair stays dirty and builds on the next epoch after a SetPair.
			continue
		}
		if !full && !p.dirty && p.table != nil &&
			(changed == nil || !pairAffected(p.budget, p.sub, changed)) {
			continue
		}
		prev := p.table
		if prev != nil && len(prev.Params) != n {
			prev = nil
		}
		jobs = append(jobs, rebuildJob{key: key, sub: p.sub, budget: p.budget, prev: prev})
	}

	results := make([]*Table, len(jobs))
	if d.opts.Workers > 1 && len(jobs) > 1 {
		workers := d.opts.Workers
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					j := jobs[i]
					results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, d.opts.Build)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, j := range jobs {
			results[i] = BuildTableIncremental(g, snap, j.sub, j.budget, j.prev, d.opts.Build)
		}
	}
	for i, j := range jobs {
		p := d.pairs[j.key]
		p.table = results[i]
		if p.dirty {
			p.dirty = false
			d.nDirty--
		}
	}
	d.rebuilt += uint64(len(jobs))
}

// pairAffected reports whether any changed link can influence the pair's
// Algorithm-1 fixpoint. A changed link (u, v) is relevant in direction
// u→v only when u could ever send (positive residual budget) and v could
// ever be admitted (it is the subscriber, whose parameters are pinned, or
// it has a positive budget — a node with budget <= 0 admits nobody and so
// stays Unreachable regardless of link statistics). This test is sound —
// it never skips a pair whose table could differ — while budgets are
// static per pair, so it costs O(changed links) per pair and no rebuild.
func pairAffected(budget []time.Duration, sub int, changed [][2]int) bool {
	for _, l := range changed {
		u, v := l[0], l[1]
		if u >= len(budget) || v >= len(budget) || u < 0 || v < 0 {
			return true // a link outside the graph the budgets were made for: assume relevant
		}
		if budget[u] > 0 && (v == sub || budget[v] > 0) {
			return true
		}
		if budget[v] > 0 && (u == sub || budget[u] > 0) {
			return true
		}
	}
	return false
}

// RebuildCold re-runs Algorithm 1 from scratch for every registered pair —
// the pre-incremental reference implementation, kept as the correctness
// oracle: tests and benchmarks cross-check Rebuild's incremental tables
// (and measure its speedup) against this path. Each pair pays for its own
// link-stats snapshot and a cold Jacobi start.
func (d *Driver) RebuildCold() {
	n := d.g.N()
	for _, key := range d.order {
		p := d.pairs[key]
		if len(p.budget) != n || p.sub < 0 || p.sub >= n {
			continue
		}
		p.table = BuildTable(d.g, d.deps.LinkEstimate, p.sub, p.budget, d.opts.Build)
		if p.dirty {
			p.dirty = false
			d.nDirty--
		}
	}
	d.estVer = d.deps.EstimateVersion()
	d.built = true
}

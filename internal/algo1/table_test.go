package algo1

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/topology"
)

// perfectStats gives every link gamma=1 so expected delays equal
// shortest-path delays (a sanity anchor for the fixpoint).
func perfectStats(g *topology.Graph) LinkStatsFunc {
	return func(u, v int) (time.Duration, float64, bool) {
		d, ok := g.LinkDelay(u, v)
		return d, 1, ok
	}
}

func uniformStats(g *topology.Graph, gamma float64) LinkStatsFunc {
	return func(u, v int) (time.Duration, float64, bool) {
		d, ok := g.LinkDelay(u, v)
		return d, gamma, ok
	}
}

func bigBudgets(n int) []time.Duration {
	b := make([]time.Duration, n)
	for i := range b {
		b[i] = time.Hour
	}
	return b
}

func lineGraph(t *testing.T, delays ...time.Duration) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(len(delays) + 1)
	for i, d := range delays {
		if err := g.AddLink(i, i+1, d); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestTableLineGraphPerfectLinks(t *testing.T) {
	// 0-1-2-3 with 10/20/30ms; subscriber 3.
	g := lineGraph(t, 10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond)
	tab := BuildTable(g, perfectStats(g), 3, bigBudgets(4), BuildOptions{})
	wantD := []time.Duration{60 * time.Millisecond, 50 * time.Millisecond, 30 * time.Millisecond, 0}
	for x, want := range wantD {
		if tab.Params[x].D != want {
			t.Errorf("d[%d] = %v, want %v", x, tab.Params[x].D, want)
		}
		if math.Abs(tab.Params[x].R-1) > 1e-12 {
			t.Errorf("r[%d] = %v, want 1", x, tab.Params[x].R)
		}
	}
	// Sending lists point toward the subscriber; node 1's list must start
	// with node 2 (node 0 leads away and has larger d).
	if len(tab.Lists[1]) == 0 || tab.Lists[1][0] != 2 {
		t.Errorf("list[1] = %v, want [2 ...]", tab.Lists[1])
	}
	if tab.Lists[3] != nil {
		t.Errorf("subscriber should have no list, got %v", tab.Lists[3])
	}
}

func TestTableSubscriberPinned(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond)
	tab := BuildTable(g, perfectStats(g), 1, bigBudgets(2), BuildOptions{})
	if tab.Params[1].D != 0 || tab.Params[1].R != 1 {
		t.Errorf("subscriber params = %+v, want <0,1>", tab.Params[1])
	}
}

func TestTableBudgetFiltersNeighbors(t *testing.T) {
	// 0-1-2 with 10ms links; subscriber 2. Node 0's only neighbor is 1 with
	// d_1 = 10ms. With budget(0) <= 10ms, node 1 must be rejected.
	g := lineGraph(t, 10*time.Millisecond, 10*time.Millisecond)
	budgets := []time.Duration{10 * time.Millisecond, time.Hour, time.Hour}
	tab := BuildTable(g, perfectStats(g), 2, budgets, BuildOptions{})
	if len(tab.Lists[0]) != 0 {
		t.Errorf("list[0] = %v, want empty (d_1 = budget violates strict <)", tab.Lists[0])
	}
	if tab.Params[0].Reachable() {
		t.Errorf("node 0 should be unreachable under tight budget, got %+v", tab.Params[0])
	}
	// A slightly looser budget admits it.
	budgets[0] = 10*time.Millisecond + 1
	tab = BuildTable(g, perfectStats(g), 2, budgets, BuildOptions{})
	if len(tab.Lists[0]) != 1 || tab.Lists[0][0] != 1 {
		t.Errorf("list[0] = %v, want [1]", tab.Lists[0])
	}
}

func TestTableNegativeBudget(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond)
	budgets := []time.Duration{-1, time.Hour}
	tab := BuildTable(g, perfectStats(g), 1, budgets, BuildOptions{})
	if len(tab.Lists[0]) != 0 || tab.Params[0].Reachable() {
		t.Error("negative budget must yield an empty list")
	}
}

func TestTableListOrderingFollowsTheorem1(t *testing.T) {
	// Star into subscriber 3: node 0 connects to 1, 2, 3 directly; 1, 2
	// connect to 3. Check node 0's list is ordered by d/r of the via values.
	g := topology.NewGraph(4)
	mustLink := func(u, v int, d time.Duration) {
		t.Helper()
		if err := g.AddLink(u, v, d); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 3, 50*time.Millisecond) // direct: via = <50ms, g>
	mustLink(0, 1, 10*time.Millisecond)
	mustLink(1, 3, 10*time.Millisecond) // via 1: cheap two-hop
	mustLink(0, 2, 40*time.Millisecond)
	mustLink(2, 3, 40*time.Millisecond) // via 2: expensive two-hop

	tab := BuildTable(g, uniformStats(g, 0.9), 3, bigBudgets(4), BuildOptions{})
	list := tab.Lists[0]
	if len(list) != 3 {
		t.Fatalf("list[0] = %v, want 3 entries", list)
	}
	// Expected via d (delays): via 1 = 10+d1 where d1 combines {3 direct,
	// maybe 0...}; regardless, the two-hop through 1 (≈20ms base) beats the
	// direct 50ms, which beats the 80ms route through 2.
	if list[0] != 1 {
		t.Errorf("list[0][0] = %d, want 1 (cheapest route)", list[0])
	}
	if list[1] != 3 {
		t.Errorf("list[0][1] = %d, want 3 (direct link)", list[1])
	}
	if list[2] != 2 {
		t.Errorf("list[0][2] = %d, want 2 (most expensive)", list[2])
	}
}

func TestTableConvergesOnMesh(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	g, err := topology.FullMesh(20, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildTable(g, uniformStats(g, 0.94), 0, bigBudgets(20), BuildOptions{})
	if tab.Rounds >= 2*20+10 {
		t.Errorf("fixpoint did not converge before the round cap (rounds=%d)", tab.Rounds)
	}
	for x := 1; x < 20; x++ {
		if !tab.Params[x].Reachable() {
			t.Errorf("node %d unreachable on a mesh", x)
		}
		if tab.Params[x].R < 0.9 {
			t.Errorf("node %d delivery ratio %v suspiciously low", x, tab.Params[x].R)
		}
	}
}

func TestTableExpectedDelayLowerBoundedBySP(t *testing.T) {
	// With gamma < 1, expected delay can exceed but never undercut the
	// shortest-path delay.
	rng := rand.New(rand.NewPCG(9, 9))
	g, err := topology.RandomRegular(16, 5, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sub := 4
	tab := BuildTable(g, uniformStats(g, 0.9), sub, bigBudgets(16), BuildOptions{})
	sp := topology.Dijkstra(g, sub, nil)
	for x := 0; x < 16; x++ {
		if x == sub || !tab.Params[x].Reachable() {
			continue
		}
		if tab.Params[x].D < sp.Dist[x] {
			t.Errorf("node %d expected delay %v < shortest path %v", x, tab.Params[x].D, sp.Dist[x])
		}
	}
}

func TestTablePerfectLinksMatchDijkstra(t *testing.T) {
	// gamma = 1 everywhere: the optimal expected delay equals Dijkstra.
	rng := rand.New(rand.NewPCG(10, 10))
	g, err := topology.RandomRegular(14, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sub := 0
	tab := BuildTable(g, perfectStats(g), sub, bigBudgets(14), BuildOptions{})
	sp := topology.Dijkstra(g, sub, nil)
	for x := 0; x < 14; x++ {
		if tab.Params[x].D != sp.Dist[x] {
			t.Errorf("node %d: d = %v, Dijkstra = %v", x, tab.Params[x].D, sp.Dist[x])
		}
	}
}

func TestBudgetsFromTree(t *testing.T) {
	g := lineGraph(t, 10*time.Millisecond, 20*time.Millisecond)
	tree := topology.Dijkstra(g, 0, nil)
	budgets := BudgetsFromTree(tree, 90*time.Millisecond)
	want := []time.Duration{90 * time.Millisecond, 80 * time.Millisecond, 60 * time.Millisecond}
	for i := range want {
		if budgets[i] != want[i] {
			t.Errorf("budget[%d] = %v, want %v", i, budgets[i], want[i])
		}
	}
}

func TestBudgetsFromTreeUnreachable(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tree := topology.Dijkstra(g, 0, nil)
	budgets := BudgetsFromTree(tree, time.Second)
	if budgets[2] >= 0 {
		t.Errorf("unreachable node budget = %v, want negative", budgets[2])
	}
}

func TestTableDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	g, err := topology.RandomRegular(12, 4, topology.DefaultDelayRange(), rng)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Table {
		return BuildTable(g, uniformStats(g, 0.93), 5, bigBudgets(12), BuildOptions{})
	}
	a, b := build(), build()
	for x := 0; x < 12; x++ {
		if a.Params[x] != b.Params[x] {
			t.Fatalf("params[%d] differ across identical builds", x)
		}
		if len(a.Lists[x]) != len(b.Lists[x]) {
			t.Fatalf("lists[%d] differ across identical builds", x)
		}
		for i := range a.Lists[x] {
			if a.Lists[x][i] != b.Lists[x][i] {
				t.Fatalf("lists[%d][%d] differ", x, i)
			}
		}
	}
}

// Package metrics implements the paper's three performance metrics (§IV-C)
// — delivery ratio, QoS delivery ratio and packets sent per subscriber —
// plus the deadline-miss delay statistics behind Fig. 7.
//
// All ratios are computed over (packet, subscriber) pairs: a packet with k
// subscribers contributes k expectations, so "100% delivery ratio means all
// subscribers received the packet successfully".
package metrics

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/pubsub"
	"repro/internal/stats"
)

// key identifies one (packet, subscriber node) delivery expectation.
type key struct {
	pkt  uint64
	node int
}

// Collector accumulates per-delivery records during one simulation run.
// The zero value is not usable; construct with NewCollector.
type Collector struct {
	expected  map[key]expectation
	delivered map[key]time.Duration // end-to-end latency of first delivery
	drops     uint64                // explicit protocol give-ups
	published uint64                // packets published
}

type expectation struct {
	publishedAt time.Duration
	deadline    time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		expected:  make(map[key]expectation),
		delivered: make(map[key]time.Duration),
	}
}

// Publish registers a published packet and its subscriber set.
func (c *Collector) Publish(pkt *pubsub.Packet, subs []pubsub.Subscription) {
	c.published++
	for _, s := range subs {
		c.expected[key{pkt: pkt.ID, node: s.Node}] = expectation{
			publishedAt: pkt.PublishedAt,
			deadline:    s.Deadline,
		}
	}
}

// Deliver records that pkt reached subscriber node at virtual time now. It
// reports whether this was the first delivery of that pair (duplicates from
// multipath copies or retransmissions are counted once). Deliveries for
// pairs never registered via Publish are ignored.
func (c *Collector) Deliver(pktID uint64, node int, now time.Duration) bool {
	k := key{pkt: pktID, node: node}
	exp, ok := c.expected[k]
	if !ok {
		return false
	}
	if _, dup := c.delivered[k]; dup {
		return false
	}
	c.delivered[k] = now - exp.publishedAt
	return true
}

// Drop records that a protocol gave up on delivering pkt to node (e.g. DCRD
// exhausting the publisher's sending list). Purely diagnostic: undelivered
// pairs already count against the ratios.
func (c *Collector) Drop(pktID uint64, node int) {
	c.drops++
}

// Result summarizes one run.
type Result struct {
	// Expected is the number of (packet, subscriber) pairs published.
	Expected int
	// Delivered is how many pairs received the packet at all.
	Delivered int
	// OnTime is how many pairs received the packet within the deadline.
	OnTime int
	// DataTransmissions is the run's total data-frame sends, supplied by
	// the caller from the network counters.
	DataTransmissions uint64
	// Drops counts explicit protocol give-ups.
	Drops uint64
	// Published is the number of packets published.
	Published uint64
	// LateFactors holds (latency / deadline) for every delivered pair that
	// missed its deadline — the Fig. 7 sample (values > 1 by construction).
	LateFactors []float64
	// Latencies holds the end-to-end latency of every delivered pair.
	Latencies []time.Duration
}

// DeliveryRatio is Delivered / Expected.
func (r Result) DeliveryRatio() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Expected)
}

// QoSDeliveryRatio is OnTime / Expected.
func (r Result) QoSDeliveryRatio() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.OnTime) / float64(r.Expected)
}

// PacketsPerSubscriber is the paper's traffic metric: total data
// transmissions divided by the number of (packet, subscriber) pairs.
func (r Result) PacketsPerSubscriber() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.DataTransmissions) / float64(r.Expected)
}

// LateCDF builds the Fig. 7 empirical CDF over (latency / deadline) of
// deadline-missing deliveries.
func (r Result) LateCDF() *stats.CDF {
	return stats.NewCDF(r.LateFactors)
}

// MeanLatency averages the end-to-end latency of delivered pairs
// (0 when nothing was delivered).
func (r Result) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// LatencyQuantile returns the q-quantile (0..1) of delivered latencies.
func (r Result) LatencyQuantile(q float64) (time.Duration, error) {
	xs := make([]float64, len(r.Latencies))
	for i, l := range r.Latencies {
		xs[i] = float64(l)
	}
	v, err := stats.Quantile(xs, q)
	if err != nil {
		return 0, err
	}
	return time.Duration(v), nil
}

// String summarizes the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("delivered %d/%d (%.2f%%), on-time %.2f%%, %.2f pkts/sub, mean latency %v",
		r.Delivered, r.Expected, 100*r.DeliveryRatio(), 100*r.QoSDeliveryRatio(),
		r.PacketsPerSubscriber(), r.MeanLatency().Round(time.Microsecond))
}

// Result finalizes the collector against the run's data-transmission count.
// Latencies and LateFactors come out in (packet, node) order so two runs
// with identical deliveries produce byte-identical Results — the
// determinism regression tests compare them with reflect.DeepEqual.
func (c *Collector) Result(dataTransmissions uint64) Result {
	res := Result{
		Expected:          len(c.expected),
		Delivered:         len(c.delivered),
		DataTransmissions: dataTransmissions,
		Drops:             c.drops,
		Published:         c.published,
	}
	keys := make([]key, 0, len(c.delivered))
	for k := range c.delivered {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b key) int {
		if a.pkt != b.pkt {
			if a.pkt < b.pkt {
				return -1
			}
			return 1
		}
		return a.node - b.node
	})
	for _, k := range keys {
		latency := c.delivered[k]
		exp := c.expected[k]
		res.Latencies = append(res.Latencies, latency)
		if latency <= exp.deadline {
			res.OnTime++
		} else if exp.deadline > 0 {
			res.LateFactors = append(res.LateFactors, float64(latency)/float64(exp.deadline))
		}
	}
	return res
}

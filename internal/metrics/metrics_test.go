package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/pubsub"
)

func pkt(id uint64, at time.Duration) *pubsub.Packet {
	return &pubsub.Packet{ID: id, Topic: 0, Source: 0, PublishedAt: at}
}

func subs(deadline time.Duration, nodes ...int) []pubsub.Subscription {
	out := make([]pubsub.Subscription, len(nodes))
	for i, n := range nodes {
		out[i] = pubsub.Subscription{Topic: 0, Node: n, Deadline: deadline}
	}
	return out
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	res := c.Result(0)
	if res.Expected != 0 || res.Delivered != 0 {
		t.Errorf("empty result = %+v", res)
	}
	if res.DeliveryRatio() != 0 || res.QoSDeliveryRatio() != 0 || res.PacketsPerSubscriber() != 0 {
		t.Error("ratios on empty collector should be 0")
	}
}

func TestDeliverOnTimeAndLate(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(100*time.Millisecond, 1, 2))
	if !c.Deliver(1, 1, 80*time.Millisecond) {
		t.Error("first delivery should report true")
	}
	if !c.Deliver(1, 2, 150*time.Millisecond) {
		t.Error("late delivery still counts as delivered")
	}
	res := c.Result(5)
	if res.Expected != 2 || res.Delivered != 2 || res.OnTime != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("delivery ratio = %v", res.DeliveryRatio())
	}
	if res.QoSDeliveryRatio() != 0.5 {
		t.Errorf("QoS ratio = %v", res.QoSDeliveryRatio())
	}
	if res.PacketsPerSubscriber() != 2.5 {
		t.Errorf("packets/subscriber = %v", res.PacketsPerSubscriber())
	}
	if len(res.LateFactors) != 1 || math.Abs(res.LateFactors[0]-1.5) > 1e-9 {
		t.Errorf("late factors = %v, want [1.5]", res.LateFactors)
	}
}

func TestDeadlineBoundaryIsOnTime(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(100*time.Millisecond, 1))
	c.Deliver(1, 1, 100*time.Millisecond)
	res := c.Result(0)
	if res.OnTime != 1 {
		t.Error("delivery exactly at the deadline must count as on time")
	}
}

func TestDuplicateDeliveryCountedOnce(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1))
	if !c.Deliver(1, 1, 10*time.Millisecond) {
		t.Error("first delivery should be true")
	}
	if c.Deliver(1, 1, 20*time.Millisecond) {
		t.Error("duplicate delivery should be false")
	}
	res := c.Result(0)
	if res.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", res.Delivered)
	}
	// First delivery's latency wins.
	if res.Latencies[0] != 10*time.Millisecond {
		t.Errorf("latency = %v, want 10ms", res.Latencies[0])
	}
}

func TestUnknownDeliveryIgnored(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1))
	if c.Deliver(2, 1, time.Millisecond) {
		t.Error("unknown packet delivery should be ignored")
	}
	if c.Deliver(1, 9, time.Millisecond) {
		t.Error("unknown subscriber delivery should be ignored")
	}
	if res := c.Result(0); res.Delivered != 0 {
		t.Errorf("delivered = %d, want 0", res.Delivered)
	}
}

func TestLatencyRelativeToPublishTime(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 5*time.Second), subs(time.Second, 1))
	c.Deliver(1, 1, 5*time.Second+200*time.Millisecond)
	res := c.Result(0)
	if res.Latencies[0] != 200*time.Millisecond {
		t.Errorf("latency = %v, want 200ms", res.Latencies[0])
	}
	if res.OnTime != 1 {
		t.Error("200ms < 1s deadline should be on time")
	}
}

func TestDropsTracked(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1, 2))
	c.Drop(1, 1)
	c.Drop(1, 2)
	res := c.Result(0)
	if res.Drops != 2 {
		t.Errorf("drops = %d, want 2", res.Drops)
	}
	if res.Delivered != 0 {
		t.Errorf("delivered = %d, want 0", res.Delivered)
	}
}

func TestPublishedCount(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1))
	c.Publish(pkt(2, time.Second), subs(time.Second, 1, 2))
	res := c.Result(0)
	if res.Published != 2 {
		t.Errorf("published = %d, want 2", res.Published)
	}
	if res.Expected != 3 {
		t.Errorf("expected = %d, want 3", res.Expected)
	}
}

func TestLateCDF(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(100*time.Millisecond, 1, 2, 3))
	c.Deliver(1, 1, 125*time.Millisecond) // factor 1.25
	c.Deliver(1, 2, 150*time.Millisecond) // factor 1.5
	c.Deliver(1, 3, 50*time.Millisecond)  // on time, excluded
	res := c.Result(0)
	cdf := res.LateCDF()
	if cdf.Len() != 2 {
		t.Fatalf("late CDF over %d samples, want 2", cdf.Len())
	}
	if got := cdf.At(1.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF(1.25) = %v, want 0.5", got)
	}
	if got := cdf.At(1.5); got != 1 {
		t.Errorf("CDF(1.5) = %v, want 1", got)
	}
}

func TestLatencyStatistics(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1, 2, 3, 4))
	c.Deliver(1, 1, 10*time.Millisecond)
	c.Deliver(1, 2, 20*time.Millisecond)
	c.Deliver(1, 3, 30*time.Millisecond)
	c.Deliver(1, 4, 40*time.Millisecond)
	res := c.Result(0)
	if got := res.MeanLatency(); got != 25*time.Millisecond {
		t.Errorf("mean latency = %v, want 25ms", got)
	}
	q, err := res.LatencyQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 25*time.Millisecond {
		t.Errorf("median = %v, want 25ms", q)
	}
	q, err = res.LatencyQuantile(1)
	if err != nil || q != 40*time.Millisecond {
		t.Errorf("max quantile = %v, %v", q, err)
	}
	if (Result{}).MeanLatency() != 0 {
		t.Error("empty result mean latency != 0")
	}
	if _, err := (Result{}).LatencyQuantile(0.5); err == nil {
		t.Error("quantile on empty result should fail")
	}
}

func TestResultString(t *testing.T) {
	c := NewCollector()
	c.Publish(pkt(1, 0), subs(time.Second, 1))
	c.Deliver(1, 1, 5*time.Millisecond)
	s := c.Result(3).String()
	for _, want := range []string{"delivered 1/1", "100.00%", "3.00 pkts/sub", "5ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestZeroDeadlineNeverLate(t *testing.T) {
	// Deadline 0 with a late delivery must not divide by zero.
	c := NewCollector()
	c.Publish(pkt(1, 0), []pubsub.Subscription{{Topic: 0, Node: 1, Deadline: 0}})
	c.Deliver(1, 1, time.Millisecond)
	res := c.Result(0)
	if len(res.LateFactors) != 0 {
		t.Errorf("late factors = %v, want none for zero deadline", res.LateFactors)
	}
	if res.OnTime != 0 {
		t.Errorf("on time = %d, want 0 (1ms > 0 deadline)", res.OnTime)
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
	"time"
)

// FuzzWireRead feeds arbitrary byte streams to both decode paths — the
// compatibility Read (fresh structs) and the pooled Reader (recycled
// structs) — and checks three invariants a hostile peer must not be able to
// break:
//
//  1. neither path panics or over-reads, whatever the input;
//  2. both paths agree: they accept the same frames and produce equal
//     messages, or both reject;
//  3. every accepted message survives an encode/decode round trip.
//
// Seeds cover one well-formed frame per message type plus the malformed
// shapes the unit tests pin (empty, truncated, oversized, unknown type).
func FuzzWireRead(f *testing.F) {
	for _, msg := range allTypesCorpus() {
		f.Add(AppendFrame(nil, msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                // empty frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}) // oversized
	f.Add([]byte{0, 0, 0, 1, 200})           // unknown type
	f.Add([]byte{0, 0, 0, 5, 1, 1, 2, 3})    // truncated body
	// A Data frame claiming more destinations than the body holds.
	f.Add([]byte{0, 0, 0, 8, 2, 0, 0, 0x7F, 0xFF, 0xFF, 0xFF, 0})
	// Session-mux tier: a MuxDeliver truncated mid subscriber-ID list (the
	// length prefix is fixed up so only the varint list is short)...
	mux := AppendFrame(nil, &MuxDeliver{
		PublishedAt: time.Unix(0, 0),
		SubIDs:      []uint32{1, 128, 1 << 20, 4},
		Payload:     []byte("p"),
	})
	chopped := append([]byte(nil), mux[:len(mux)-8]...)
	binary.BigEndian.PutUint32(chopped, uint32(len(chopped)-4))
	f.Add(chopped)
	// ...one whose ID count (uvarint 200) exceeds the remaining body...
	f.Add(append(append([]byte{0, 0, 0, 27, byte(TypeMuxDeliver)},
		make([]byte, 24)...), 0xC8, 0x01))
	// ...and an ID value that overflows uint32 (uvarint 2^33).
	f.Add(append(append([]byte{0, 0, 0, 31, byte(TypeMuxDeliver)},
		make([]byte, 24)...), 1, 0x80, 0x80, 0x80, 0x80, 0x20))
	// An Advert whose R field is NaN — fuzz-found: NaN sinks DeepEqual
	// comparisons even when both decoders agree bit-for-bit.
	f.Add(AppendFrame(nil, &Advert{Topic: 1, Sub: 2, D: 3, R: math.NaN()}))
	// Relay-batch tier: a zero-length AckBatch (decoders must reject)...
	f.Add([]byte{0, 0, 0, 2, byte(TypeAckBatch), 0})
	// ...an AckBatch whose claimed count (uvarint 200) exceeds the body...
	f.Add([]byte{0, 0, 0, 3, byte(TypeAckBatch), 0xC8, 0x01})
	// ...and one whose single delta is an overlong (>10 byte) varint.
	f.Add(append([]byte{0, 0, 0, 13, byte(TypeAckBatch), 1},
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02))
	// A zero-length DataBatch, a DataBatch claiming 200 entries in an empty
	// body, and one whose first Dests delta reconstructs a node beyond int32.
	f.Add([]byte{0, 0, 0, 2, byte(TypeDataBatch), 0})
	f.Add([]byte{0, 0, 0, 3, byte(TypeDataBatch), 0xC8, 0x01})
	overflow := []byte{byte(TypeDataBatch), 1, 0, 0, 0, 0, 0, 0, 1}
	overflow = binary.AppendVarint(overflow, int64(math.MaxInt32)+1)
	overflow = append(overflow, 0, 0) // empty Path, empty Payload
	f.Add(append(binary.BigEndian.AppendUint32(nil, uint32(len(overflow))), overflow...))
	// Control-plane tier: a LinkState withdrawing every link (zero records —
	// valid, and the smallest flood a peer can send)...
	f.Add(AppendFrame(nil, &LinkState{Origin: 1, Epoch: 2}))
	// ...one whose record count (uvarint 200) exceeds the remaining body...
	f.Add([]byte{0, 0, 0, 15, byte(TypeLinkState),
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xC8, 0x01})
	// ...one whose single record starts with an overlong (>10 byte) varint To...
	f.Add(append([]byte{0, 0, 0, 25, byte(TypeLinkState),
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02))
	// ...one whose To delta reconstructs a node ID beyond int32...
	lsOverflow := []byte{byte(TypeLinkState), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	lsOverflow = binary.AppendVarint(lsOverflow, int64(math.MaxInt32)+1)
	lsOverflow = binary.AppendVarint(lsOverflow, 0)
	lsOverflow = append(lsOverflow, 0, 0, 0, 0, 0, 0, 0, 0) // Gamma
	f.Add(append(binary.BigEndian.AppendUint32(nil, uint32(len(lsOverflow))), lsOverflow...))
	// ...and a Probe truncated mid token (decoders must reject).
	f.Add([]byte{0, 0, 0, 5, byte(TypeProbe), 1, 2, 3, 4})

	// equal is DeepEqual with a fallback for frames carrying NaN floats
	// (an Advert's R is decoded straight from the wire, and arbitrary input
	// can put a NaN there; NaN != NaN sinks DeepEqual even when the decoders
	// produced bit-identical values). Byte-equal re-encodings are the
	// protocol-level agreement invariant, and the codec moves float bits
	// verbatim, so NaN payloads survive the comparison.
	equal := func(a, b Message) bool {
		return reflect.DeepEqual(a, b) ||
			bytes.Equal(AppendFrame(nil, a), AppendFrame(nil, b))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := Read(bytes.NewReader(raw))
		pooled, pooledErr := NewReader(bytes.NewReader(raw)).Next()
		if (err == nil) != (pooledErr == nil) {
			t.Fatalf("decoders disagree: Read err=%v, Reader err=%v", err, pooledErr)
		}
		if err != nil {
			return
		}
		if !equal(msg, pooled) {
			t.Fatalf("decoders disagree on %x:\n read   %#v\n pooled %#v", raw, msg, pooled)
		}
		frame := AppendFrame(nil, msg)
		again, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-decode of re-encoded %v failed: %v", msg.Type(), err)
		}
		if !equal(msg, again) {
			t.Fatalf("round trip changed %v:\n before %#v\n after  %#v", msg.Type(), msg, again)
		}
	})
}

package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireRead feeds arbitrary byte streams to both decode paths — the
// compatibility Read (fresh structs) and the pooled Reader (recycled
// structs) — and checks three invariants a hostile peer must not be able to
// break:
//
//  1. neither path panics or over-reads, whatever the input;
//  2. both paths agree: they accept the same frames and produce equal
//     messages, or both reject;
//  3. every accepted message survives an encode/decode round trip.
//
// Seeds cover one well-formed frame per message type plus the malformed
// shapes the unit tests pin (empty, truncated, oversized, unknown type).
func FuzzWireRead(f *testing.F) {
	for _, msg := range allTypesCorpus() {
		f.Add(AppendFrame(nil, msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                // empty frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}) // oversized
	f.Add([]byte{0, 0, 0, 1, 200})           // unknown type
	f.Add([]byte{0, 0, 0, 5, 1, 1, 2, 3})    // truncated body
	// A Data frame claiming more destinations than the body holds.
	f.Add([]byte{0, 0, 0, 8, 2, 0, 0, 0x7F, 0xFF, 0xFF, 0xFF, 0})

	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := Read(bytes.NewReader(raw))
		pooled, pooledErr := NewReader(bytes.NewReader(raw)).Next()
		if (err == nil) != (pooledErr == nil) {
			t.Fatalf("decoders disagree: Read err=%v, Reader err=%v", err, pooledErr)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(msg, pooled) {
			t.Fatalf("decoders disagree on %x:\n read   %#v\n pooled %#v", raw, msg, pooled)
		}
		frame := AppendFrame(nil, msg)
		again, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-decode of re-encoded %v failed: %v", msg.Type(), err)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("round trip changed %v:\n before %#v\n after  %#v", msg.Type(), msg, again)
		}
	})
}

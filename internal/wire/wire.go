// Package wire defines the binary protocol spoken between live DCRD brokers
// and their clients (internal/broker, cmd/dcrd-*): length-prefixed frames
// with a one-byte type tag and big-endian fixed-width fields.
//
// Frame layout on the wire:
//
//	uint32  payload length (not counting the length field itself)
//	uint8   message type
//	...     type-specific fields
//
// Strings and byte blobs are encoded as uint32 length + bytes. Node lists
// are uint16 count + int32 entries. The protocol is deliberately simple —
// fixed encodings, no compression — so a broker can be implemented in any
// language from this file alone. The one exception is the session-
// multiplexing tier: MuxDeliver's subscriber-ID list uses unsigned LEB128
// varints (count, then IDs), because that list is the dominant per-delivery
// wire cost at high fan-in and the IDs are small by construction.
//
// The codec offers two tiers. Write and Read are the convenience API: one
// frame per call, freshly allocated messages, safe to retain. The zero-
// allocation tier underneath is what the broker data plane uses: AppendFrame
// encodes into a caller-supplied byte slice (grow-once, reuse forever), and
// Reader decodes a frame stream into per-reader message structs whose
// buffers are recycled across frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"
)

// Type tags every message on the wire.
type Type uint8

// Message types.
const (
	// TypeHello introduces a broker (or client) after dialing.
	TypeHello Type = iota + 1
	// TypeData carries one routed packet copy between brokers.
	TypeData
	// TypeAck acknowledges a TypeData frame hop-by-hop.
	TypeAck
	// TypeAdvert shares <d, r> parameters for one (topic, subscriber
	// broker) pair with a neighbor (Algorithm 1's parameter exchange).
	TypeAdvert
	// TypePing and TypePong measure link round-trip times for alpha.
	TypePing
	TypePong
	// TypeSubscribe registers a client's topic subscription at its broker.
	TypeSubscribe
	// TypeUnsubscribe removes a client's topic subscription.
	TypeUnsubscribe
	// TypePublish submits a client's message to its broker.
	TypePublish
	// TypeDeliver hands a message to a subscribed client.
	TypeDeliver
	// TypeStatsRequest asks a broker for its operational state.
	TypeStatsRequest
	// TypeStatsReply answers a TypeStatsRequest.
	TypeStatsReply
	// TypeSessionHello upgrades a client connection to a multiplexed
	// session carrying many logical subscribers.
	TypeSessionHello
	// TypeSessionSub subscribes one session-local subscriber ID to a topic.
	TypeSessionSub
	// TypeSessionUnsub removes one session-local subscriber's subscription.
	TypeSessionUnsub
	// TypeMuxDeliver hands one payload to many logical subscribers of a
	// session at once (one frame per (topic, session) instead of one per
	// subscriber).
	TypeMuxDeliver
	// TypeAckBatch acknowledges many TypeData frames in one wire frame
	// (relay-plane ACK coalescing). Only sent to peers that advertised
	// CapRelayBatch in their Hello.
	TypeAckBatch
	// TypeDataBatch packs several same-neighbor TypeData frames into one
	// wire frame with delta-compressed headers and node lists. Only sent to
	// peers that advertised CapRelayBatch in their Hello.
	TypeDataBatch
	// TypeLinkState floods one broker's measured per-link <alpha, gamma>
	// estimates through the overlay (the live control plane's Algorithm-1
	// monitoring gossip). Only sent to peers that advertised CapLinkState
	// in their Hello.
	TypeLinkState
	// TypeProbe measures delay and delivery on idle links: the receiver
	// echoes the frame with Reply set, feeding the sender's alpha/gamma
	// estimates when no data traffic exercises the link. Only sent to peers
	// that advertised CapLinkState in their Hello.
	TypeProbe
	// TypeWalCustody is a custody-taken record in a broker's write-ahead
	// log: the full Data frame the broker accepted responsibility for. It
	// never crosses the network — the WAL reuses the wire codec as its
	// on-disk record format so recovery shares the frame decoder.
	TypeWalCustody
	// TypeWalClear is a WAL record marking destinations of a custody record
	// as handed off (downstream ACKed) or dropped; a packet whose every
	// destination is cleared needs no replay.
	TypeWalClear
	// TypeWalDeliver is a WAL record marking a packet as delivered to this
	// broker's local subscribers, so replay after a crash never re-delivers.
	TypeWalDeliver
	// TypeWalMeta is a WAL bookkeeping record carrying the broker's
	// incarnation number, which seeds frame/packet ID minting so IDs are
	// never reused across restarts.
	TypeWalMeta
)

// String returns the message type name.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeAdvert:
		return "ADVERT"
	case TypePing:
		return "PING"
	case TypePong:
		return "PONG"
	case TypeSubscribe:
		return "SUBSCRIBE"
	case TypeUnsubscribe:
		return "UNSUBSCRIBE"
	case TypePublish:
		return "PUBLISH"
	case TypeDeliver:
		return "DELIVER"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	case TypeSessionHello:
		return "SESSION_HELLO"
	case TypeSessionSub:
		return "SESSION_SUB"
	case TypeSessionUnsub:
		return "SESSION_UNSUB"
	case TypeMuxDeliver:
		return "MUX_DELIVER"
	case TypeAckBatch:
		return "ACK_BATCH"
	case TypeDataBatch:
		return "DATA_BATCH"
	case TypeLinkState:
		return "LINK_STATE"
	case TypeProbe:
		return "PROBE"
	case TypeWalCustody:
		return "WAL_CUSTODY"
	case TypeWalClear:
		return "WAL_CLEAR"
	case TypeWalDeliver:
		return "WAL_DELIVER"
	case TypeWalMeta:
		return "WAL_META"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a single frame; larger frames are rejected to protect
// brokers from corrupt peers.
const MaxFrameSize = 16 << 20

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrTruncated     = errors.New("wire: truncated message")
)

// Message is implemented by every wire message.
type Message interface {
	// Type returns the message's wire tag.
	Type() Type
	appendBody(dst []byte) []byte
	decode(*reader) error
}

// Hello introduces the dialing peer.
type Hello struct {
	// BrokerID is the sender's broker ID, or -1 for clients.
	BrokerID int32
	// Name is a free-form peer name (client identifier, broker label).
	// Brokers additionally carry space-separated capability tokens here
	// (see CapRelayBatch): the field predates capabilities, so reusing it
	// keeps the Hello wire format byte-identical for legacy peers.
	Name string
}

// CapRelayBatch is the Hello.Name capability token advertising that the
// sender understands AckBatch and DataBatch frames. A broker never emits
// either frame type to a peer that did not advertise the token — an
// unknown frame type errors a legacy reader and drops the connection.
const CapRelayBatch = "cap:relay-batch"

// CapLinkState is the Hello.Name capability token advertising that the
// sender runs the live Algorithm-1 control plane: it understands LinkState
// and Probe frames. A broker never emits either frame type to a peer that
// did not advertise the token, so legacy brokers keep running on their
// advert-provisioned tables with a byte-identical frame stream.
const CapLinkState = "cap:link-state"

// AddCap appends a capability token to a Hello name.
func AddCap(name, token string) string {
	if name == "" {
		return token
	}
	return name + " " + token
}

// HasCap reports whether a Hello name carries a capability token.
func HasCap(name, token string) bool {
	for _, f := range strings.Fields(name) {
		if f == token {
			return true
		}
	}
	return false
}

// Data carries one routed copy of a published packet.
type Data struct {
	FrameID     uint64
	PacketID    uint64
	Topic       int32
	Source      int32 // publishing broker
	PublishedAt time.Time
	Deadline    time.Duration // QoS requirement relative to PublishedAt
	Dests       []int32       // destination broker IDs this copy serves
	Path        []int32       // routing path: brokers that sent this copy
	Payload     []byte
}

// Ack acknowledges a Data frame hop-by-hop.
type Ack struct {
	FrameID uint64
}

// AckBatch acknowledges many Data frames in one wire frame. Frame IDs are
// encoded as a uvarint count followed by zigzag-varint deltas between
// consecutive IDs (the first delta is from zero); senders sort the IDs
// ascending, and consecutive frame IDs from one shard differ by one, so a
// typical entry costs 1–2 bytes against Ack's fixed 13-byte frame.
type AckBatch struct {
	FrameIDs []uint64
}

// DataBatch packs several Data frames bound for the same neighbor into one
// wire frame. Every header field is a varint delta against the previous
// entry (the first entry deltas from zero), and the Dests/Path node lists
// are uvarint counts with intra-list zigzag deltas — consecutive frames of
// one flow share topic, source, deadline and routing, so the repeated
// fields collapse to one byte each.
type DataBatch struct {
	Frames []Data
}

// Advert shares one (topic, subscriber broker) <d, r> estimate.
type Advert struct {
	Topic int32
	Sub   int32 // subscriber broker ID
	D     time.Duration
	R     float64
	// Deadline is the subscriber's QoS delay requirement, propagated so
	// upstream brokers can run the Algorithm-1 admission filter.
	Deadline time.Duration
	// Gone marks a withdrawn route (subscriber unsubscribed or became
	// unreachable); receivers must treat the pair as unreachable.
	Gone bool
}

// LinkRecord is one directed overlay link's monitored estimate inside a
// LinkState flood: the origin broker's single-transmission expected delay
// (alpha, from ping RTTs and ACK timing) and delivery ratio (gamma, from
// hop-by-hop ACK outcomes and probes) toward neighbor To. A Gamma of 0
// withdraws the link (down or partitioned).
type LinkRecord struct {
	To    int32
	Alpha time.Duration
	Gamma float64
}

// LinkState floods one broker's full measured neighbor set through the
// overlay. Origin stamps the measuring broker; Epoch is origin-local and
// strictly increasing (receivers drop stale or replayed floods and re-flood
// newer ones to their other capable neighbors), so every broker converges
// on each origin's latest record set regardless of gossip path. Receivers
// diff the records against the origin's previous set — the deltas are
// exactly the changed-link sets the incremental Algorithm-1 rebuild keys
// on, so a flood that changes nothing costs no table work.
type LinkState struct {
	Origin int32
	Epoch  uint64
	Links  []LinkRecord
}

// Probe measures an idle link: the sender stamps Token, the receiver
// echoes the frame back with Reply set, and the echo's round trip feeds
// the sender's alpha estimate while its arrival (or timeout) feeds gamma —
// the same signals data traffic produces via ACK timing, at a low fixed
// rate when there is no data traffic to piggyback on.
type Probe struct {
	Token uint64
	Reply bool
}

// Ping/Pong measure link RTT. Token echoes back verbatim.
type Ping struct {
	Token uint64
}

// Pong answers a Ping.
type Pong struct {
	Token uint64
}

// Subscribe registers a client subscription.
type Subscribe struct {
	Topic int32
	// Deadline is the client's QoS delay requirement for this topic.
	Deadline time.Duration
}

// Unsubscribe removes a client's subscription to a topic.
type Unsubscribe struct {
	Topic int32
}

// Publish submits a message from a client.
type Publish struct {
	Topic    int32
	Deadline time.Duration // requested QoS bound; 0 means broker default
	Payload  []byte
}

// Deliver hands a routed message to a subscribed client.
type Deliver struct {
	Topic       int32
	PacketID    uint64
	Source      int32
	PublishedAt time.Time
	Payload     []byte
}

// SessionHello upgrades the client connection it arrives on to a
// multiplexed session: many logical subscribers share the connection, its
// writer pipeline and (via MuxDeliver) each delivered payload. Sent once,
// after the Hello handshake.
type SessionHello struct {
	// Subscribers hints how many logical subscribers the session expects to
	// register (0 = unknown); brokers may pre-size per-session state.
	Subscribers uint32
}

// SessionSub subscribes one session-local subscriber ID to a topic.
// Subscriber IDs are chosen by the client and scoped to the session.
type SessionSub struct {
	SubID uint32
	Topic int32
	// Deadline is the subscriber's QoS delay requirement for this topic.
	Deadline time.Duration
}

// SessionUnsub removes one session-local subscriber's topic subscription.
type SessionUnsub struct {
	SubID uint32
	Topic int32
}

// MuxDeliver hands one routed message to many logical subscribers of a
// session: one payload plus the varint-encoded list of subscriber IDs it
// serves. The aggregated form is what lets a broker's delivery cost scale
// with distinct (topic, session) pairs instead of subscriber count.
type MuxDeliver struct {
	Topic       int32
	PacketID    uint64
	Source      int32
	PublishedAt time.Time
	SubIDs      []uint32
	Payload     []byte
}

// StatsRequest asks a broker for a StatsReply. Token echoes back so
// clients can correlate replies.
type StatsRequest struct {
	Token uint64
}

// NeighborStat is one overlay link's live state.
type NeighborStat struct {
	ID        int32
	Connected bool
	Alpha     time.Duration
	Gamma     float64
}

// LinkStat is one directed link of the broker's gossip-fed link-state
// view: origin From measured <Alpha, Gamma> toward To, last updated by
// From's flood Epoch. Unlike NeighborStat (this broker's own links only),
// LinkStats cover every link the control plane knows overlay-wide.
type LinkStat struct {
	From  int32
	To    int32
	Alpha time.Duration
	Gamma float64
	Epoch uint64
}

// CtrlStat reports the live Algorithm-1 control plane's state.
type CtrlStat struct {
	// Enabled is false when the broker runs without CapLinkState (legacy
	// provisioned-table mode).
	Enabled bool
	// Epoch is the broker's own flood epoch (the last LinkState it
	// originated).
	Epoch uint64
	// Version is the link-state database's estimate version; it advances
	// whenever a flood actually changes an estimate.
	Version uint64
	// Rebuilds counts control-plane epochs that rebuilt at least one route
	// table; Noops counts epochs that were pointer-identity no-ops.
	Rebuilds uint64
	Noops    uint64
	// TablesBuilt is the total number of per-pair fixpoint builds.
	TablesBuilt uint64
	// LinkStatesSent / LinkStatesRecv count LinkState frames exchanged
	// (floods originated, forwarded and received).
	LinkStatesSent uint64
	LinkStatesRecv uint64
	// StaleDrops counts received floods dropped as stale-epoch replays.
	StaleDrops uint64
	// ProbesSent / ProbeReplies count idle-link probes and their echoes.
	ProbesSent   uint64
	ProbeReplies uint64
}

// WalCustody is the custody-taken record in a broker's write-ahead log: the
// exact Data frame the broker accepted responsibility for (FrameID is the
// inbound relay frame, or 0 for locally published packets). Logged before
// the hop-by-hop ACK is sent, so the ACK is a durability promise.
type WalCustody struct {
	Data
}

// WalClear marks destinations of a logged custody record as settled —
// downstream custody transferred (ACK received) or the packet dropped. A
// record whose every destination is cleared is dead weight the next
// checkpoint compacts away.
type WalClear struct {
	PacketID uint64
	Dests    []int32
}

// WalDeliver marks a packet as delivered to this broker's local
// subscribers; recovery preloads it into the delivery dedup set so a
// replayed flight never delivers twice.
type WalDeliver struct {
	PacketID uint64
}

// WalMeta carries the broker's incarnation number, bumped on every WAL
// open. It seeds the frame-ID and packet-ID minting counters so a restarted
// broker never reuses IDs its peers may still remember.
type WalMeta struct {
	Incarnation uint64
}

// WalStat reports a broker's custody write-ahead log activity.
type WalStat struct {
	// Enabled is false when the broker runs without a DataDir (in-memory
	// custody only).
	Enabled bool
	// Appends counts records appended; Fsyncs counts group-commit flushes
	// (many appends share one fdatasync); Bytes is the total record bytes
	// written.
	Appends uint64
	Fsyncs  uint64
	Bytes   uint64
	// ReplayedFlights counts undelivered custody records re-injected into
	// the shard engines at startup.
	ReplayedFlights uint64
	// Checkpoints counts segment-rotation compactions.
	Checkpoints uint64
}

// RouteStat is one (topic, subscriber broker) routing-table entry.
type RouteStat struct {
	Topic   int32
	Sub     int32
	D       time.Duration
	R       float64
	ListLen int32
}

// ShardStat is one engine shard's data-plane state: mailbox depth plus
// lifetime enqueue/process counters, and (when the snapshot was taken on the
// shard's own goroutine) the engine's in-flight group count.
type ShardStat struct {
	Depth     int32
	Enqueued  uint64
	Processed uint64
	Inflight  int32
}

// StatsReply reports a broker's operational state.
type StatsReply struct {
	Token      uint64
	BrokerID   int32
	Published  uint64
	Delivered  uint64
	Forwarded  uint64
	Dropped    uint64
	QueueDrops uint64 // messages shed by full per-connection send queues
	Redials    uint64 // failed outbound dial attempts
	Reconnects uint64 // neighbor links re-established after a drop
	// Edge gauges: live multiplexed sessions and total logical
	// subscriptions (legacy connection-topic pairs plus session
	// (subscriber, topic) pairs).
	Sessions      uint64
	Subscriptions uint64
	// Relay-aggregation counters: AckBatch frames sent, legacy Acks they
	// replaced, and encoded bytes saved versus the legacy relay framing.
	AckBatches         uint64
	AckFramesCoalesced uint64
	RelayBytesSaved    uint64
	Neighbors          []NeighborStat
	Routes             []RouteStat
	Shards             []ShardStat
	// Links is the gossip-fed overlay-wide link view; Ctrl summarizes the
	// live control plane driving it.
	Links []LinkStat
	Ctrl  CtrlStat
	// Wal summarizes the custody write-ahead log (zero-valued with
	// Enabled=false when the broker runs in-memory).
	Wal WalStat
}

// interface conformance
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Data)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*Advert)(nil)
	_ Message = (*Ping)(nil)
	_ Message = (*Pong)(nil)
	_ Message = (*Subscribe)(nil)
	_ Message = (*Unsubscribe)(nil)
	_ Message = (*Publish)(nil)
	_ Message = (*Deliver)(nil)
	_ Message = (*StatsRequest)(nil)
	_ Message = (*StatsReply)(nil)
	_ Message = (*SessionHello)(nil)
	_ Message = (*SessionSub)(nil)
	_ Message = (*SessionUnsub)(nil)
	_ Message = (*MuxDeliver)(nil)
	_ Message = (*AckBatch)(nil)
	_ Message = (*DataBatch)(nil)
	_ Message = (*LinkState)(nil)
	_ Message = (*Probe)(nil)
	_ Message = (*WalCustody)(nil)
	_ Message = (*WalClear)(nil)
	_ Message = (*WalDeliver)(nil)
	_ Message = (*WalMeta)(nil)
)

// Type implementations.
func (*Hello) Type() Type        { return TypeHello }
func (*Data) Type() Type         { return TypeData }
func (*Ack) Type() Type          { return TypeAck }
func (*Advert) Type() Type       { return TypeAdvert }
func (*Ping) Type() Type         { return TypePing }
func (*Pong) Type() Type         { return TypePong }
func (*Subscribe) Type() Type    { return TypeSubscribe }
func (*Unsubscribe) Type() Type  { return TypeUnsubscribe }
func (*Publish) Type() Type      { return TypePublish }
func (*Deliver) Type() Type      { return TypeDeliver }
func (*StatsRequest) Type() Type { return TypeStatsRequest }
func (*StatsReply) Type() Type   { return TypeStatsReply }
func (*SessionHello) Type() Type { return TypeSessionHello }
func (*SessionSub) Type() Type   { return TypeSessionSub }
func (*SessionUnsub) Type() Type { return TypeSessionUnsub }
func (*MuxDeliver) Type() Type   { return TypeMuxDeliver }
func (*AckBatch) Type() Type     { return TypeAckBatch }
func (*DataBatch) Type() Type    { return TypeDataBatch }
func (*LinkState) Type() Type    { return TypeLinkState }
func (*Probe) Type() Type        { return TypeProbe }
func (*WalCustody) Type() Type   { return TypeWalCustody }
func (*WalClear) Type() Type     { return TypeWalClear }
func (*WalDeliver) Type() Type   { return TypeWalDeliver }
func (*WalMeta) Type() Type      { return TypeWalMeta }

// AppendFrame appends one complete encoded frame for msg — length header,
// type tag and body — to dst and returns the extended slice. It never
// allocates beyond growing dst, so a caller that reuses its buffer encodes
// frames allocation-free; multiple frames appended to the same buffer form
// a valid stream for a single coalesced write.
//
// AppendFrame does not enforce MaxFrameSize (it cannot fail); callers
// handing frames to a peer should check FrameFits first or bound their
// inputs.
func AppendFrame(dst []byte, msg Message) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(msg.Type()))
	dst = msg.appendBody(dst)
	binary.BigEndian.PutUint32(dst[base:], uint32(len(dst)-base-4))
	return dst
}

// FrameFits reports whether the frame appended to buf starting at base (as
// returned by len(dst) before an AppendFrame call) respects MaxFrameSize.
func FrameFits(buf []byte, base int) bool {
	return len(buf)-base-4 <= MaxFrameSize
}

// frameBufPool recycles encode buffers for the Write convenience path.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// pooledBufMaxCap bounds the capacity of buffers returned to the pool so a
// single giant frame does not pin megabytes forever.
const pooledBufMaxCap = 1 << 20

// Write encodes msg and writes one frame to w with a single Write call,
// using a pooled buffer.
func Write(w io.Writer, msg Message) error {
	bp := frameBufPool.Get().(*[]byte)
	buf := AppendFrame((*bp)[:0], msg)
	*bp = buf[:0]
	defer func() {
		if cap(buf) <= pooledBufMaxCap {
			frameBufPool.Put(bp)
		}
	}()
	if !FrameFits(buf, 0) {
		return ErrFrameTooLarge
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read reads one frame from r and decodes it into a freshly allocated
// message that the caller may retain. Connection read loops that care about
// allocation pressure should use a Reader instead.
func Read(r io.Reader) (Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if size == 0 {
		return nil, ErrTruncated
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	msg, err := newMessage(Type(body[0]))
	if err != nil {
		return nil, err
	}
	rd := &reader{buf: body[1:]}
	if err := msg.decode(rd); err != nil {
		return nil, err
	}
	if len(rd.buf) != 0 {
		return nil, fmt.Errorf("wire: %v has %d trailing bytes", msg.Type(), len(rd.buf))
	}
	return msg, nil
}

// Reader decodes a frame stream with buffer and message reuse: the body
// buffer grows once to the stream's working set, and each message type has
// one struct per Reader that is recycled across frames. After warm-up,
// Next decodes without allocating.
//
// The returned Message — including every slice it references (Payload,
// Dests, Path, Neighbors, Routes) — is owned by the Reader and is only
// valid until the next call to Next. Callers that retain any of it past
// that point must copy. A Reader serves one goroutine.
type Reader struct {
	r    io.Reader
	head [4]byte
	body []byte
	dec  reader

	hello        Hello
	data         Data
	ack          Ack
	advert       Advert
	ping         Ping
	pong         Pong
	subscribe    Subscribe
	unsubscribe  Unsubscribe
	publish      Publish
	deliver      Deliver
	statsRequest StatsRequest
	statsReply   StatsReply
	sessionHello SessionHello
	sessionSub   SessionSub
	sessionUnsub SessionUnsub
	muxDeliver   MuxDeliver
	ackBatch     AckBatch
	dataBatch    DataBatch
	linkState    LinkState
	probe        Probe
	walCustody   WalCustody
	walClear     WalClear
	walDeliver   WalDeliver
	walMeta      WalMeta
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads and decodes one frame. See the Reader doc for the ownership
// rules of the returned Message. io.EOF passes through unchanged for clean
// shutdown; any other error invalidates the stream.
func (rd *Reader) Next() (Message, error) {
	if _, err := io.ReadFull(rd.r, rd.head[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(rd.head[:])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if size == 0 {
		return nil, ErrTruncated
	}
	if cap(rd.body) < int(size) {
		rd.body = make([]byte, size)
	}
	body := rd.body[:size]
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	msg := rd.message(Type(body[0]))
	if msg == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, body[0])
	}
	rd.dec = reader{buf: body[1:]}
	if err := msg.decode(&rd.dec); err != nil {
		return nil, err
	}
	if len(rd.dec.buf) != 0 {
		return nil, fmt.Errorf("wire: %v has %d trailing bytes", msg.Type(), len(rd.dec.buf))
	}
	return msg, nil
}

// message returns the Reader's recycled struct for a wire tag, or nil for
// unknown tags.
func (rd *Reader) message(t Type) Message {
	switch t {
	case TypeHello:
		return &rd.hello
	case TypeData:
		return &rd.data
	case TypeAck:
		return &rd.ack
	case TypeAdvert:
		return &rd.advert
	case TypePing:
		return &rd.ping
	case TypePong:
		return &rd.pong
	case TypeSubscribe:
		return &rd.subscribe
	case TypeUnsubscribe:
		return &rd.unsubscribe
	case TypePublish:
		return &rd.publish
	case TypeDeliver:
		return &rd.deliver
	case TypeStatsRequest:
		return &rd.statsRequest
	case TypeStatsReply:
		return &rd.statsReply
	case TypeSessionHello:
		return &rd.sessionHello
	case TypeSessionSub:
		return &rd.sessionSub
	case TypeSessionUnsub:
		return &rd.sessionUnsub
	case TypeMuxDeliver:
		return &rd.muxDeliver
	case TypeAckBatch:
		return &rd.ackBatch
	case TypeDataBatch:
		return &rd.dataBatch
	case TypeLinkState:
		return &rd.linkState
	case TypeProbe:
		return &rd.probe
	case TypeWalCustody:
		return &rd.walCustody
	case TypeWalClear:
		return &rd.walClear
	case TypeWalDeliver:
		return &rd.walDeliver
	case TypeWalMeta:
		return &rd.walMeta
	default:
		return nil
	}
}

// newMessage allocates the message struct for a wire tag.
func newMessage(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeData:
		return &Data{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeAdvert:
		return &Advert{}, nil
	case TypePing:
		return &Ping{}, nil
	case TypePong:
		return &Pong{}, nil
	case TypeSubscribe:
		return &Subscribe{}, nil
	case TypeUnsubscribe:
		return &Unsubscribe{}, nil
	case TypePublish:
		return &Publish{}, nil
	case TypeDeliver:
		return &Deliver{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeSessionHello:
		return &SessionHello{}, nil
	case TypeSessionSub:
		return &SessionSub{}, nil
	case TypeSessionUnsub:
		return &SessionUnsub{}, nil
	case TypeMuxDeliver:
		return &MuxDeliver{}, nil
	case TypeAckBatch:
		return &AckBatch{}, nil
	case TypeDataBatch:
		return &DataBatch{}, nil
	case TypeLinkState:
		return &LinkState{}, nil
	case TypeProbe:
		return &Probe{}, nil
	case TypeWalCustody:
		return &WalCustody{}, nil
	case TypeWalClear:
		return &WalClear{}, nil
	case TypeWalDeliver:
		return &WalDeliver{}, nil
	case TypeWalMeta:
		return &WalMeta{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// --- primitive encoders ---

func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

func appendI32(dst []byte, v int32) []byte { return appendU32(dst, uint32(v)) }

func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }

func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendBytes(dst, v []byte) []byte {
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

func appendString(dst []byte, v string) []byte {
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

func appendNodes(dst []byte, nodes []int32) []byte {
	dst = appendU16(dst, uint16(len(nodes)))
	for _, n := range nodes {
		dst = appendI32(dst, n)
	}
	return dst
}

// appendSubIDs encodes a subscriber-ID list as uvarint count + uvarint IDs
// — the session tier's one variable-width encoding. Dense session-local IDs
// are 1–2 bytes each, so a 100-subscriber aggregate costs ~1 byte per
// subscriber instead of a whole Deliver frame each.
func appendSubIDs(dst []byte, ids []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

// appendDeltaNodes encodes a node list as uvarint count + zigzag-varint
// deltas between consecutive entries (the first from 0) — the relay-batch
// counterpart of appendNodes. Sorted or clustered broker IDs cost ~1 byte
// each instead of 4.
func appendDeltaNodes(dst []byte, nodes []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(nodes)))
	prev := int64(0)
	for _, v := range nodes {
		dst = binary.AppendVarint(dst, int64(v)-prev)
		prev = int64(v)
	}
	return dst
}

// appendVarBytes encodes a blob as uvarint length + bytes.
func appendVarBytes(dst, v []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// reader decodes primitives with bounds checking.
type reader struct {
	buf []byte
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.buf) < n {
		return nil, ErrTruncated
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) boolean() (bool, error) {
	b, err := r.take(1)
	if err != nil {
		return false, err
	}
	return b[0] != 0, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, ErrTruncated // n == 0: buffer ran out; n < 0: overflow
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, ErrTruncated // n == 0: buffer ran out; n < 0: overflow
	}
	r.buf = r.buf[n:]
	return v, nil
}

// deltaNodesInto decodes an appendDeltaNodes list into dst's storage,
// mirroring nodesInto's reuse and bounds-check idiom: the claimed count is
// checked against the remaining buffer (every varint is at least one byte)
// before any append, and reconstructed IDs outside int32 are rejected —
// hostile deltas cannot smuggle wrapped node values through.
func (r *reader) deltaNodesInto(dst []int32) ([]int32, error) {
	n, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if n > uint64(len(r.buf)) {
		return dst, ErrTruncated
	}
	dst = dst[:0]
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.varint()
		if err != nil {
			return dst, err
		}
		prev += d
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			return dst, fmt.Errorf("wire: node ID %d overflows int32", prev)
		}
		dst = append(dst, int32(prev))
	}
	return dst, nil
}

// varBytesInto decodes an appendVarBytes blob into dst's storage, mirroring
// bytesInto's reuse and nil semantics.
func (r *reader) varBytesInto(dst []byte) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if n > uint64(len(r.buf)) {
		return dst, ErrTruncated
	}
	b, err := r.take(int(n))
	if err != nil {
		return dst, err
	}
	return append(dst[:0], b...), nil
}

// subIDsInto decodes a varint subscriber-ID list into dst's storage,
// mirroring nodesInto's reuse and nil semantics. The claimed count is
// bounds-checked against the remaining buffer (every uvarint is at least
// one byte) before any append, so a hostile length cannot force a giant
// allocation.
func (r *reader) subIDsInto(dst []uint32) ([]uint32, error) {
	n, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if n > uint64(len(r.buf)) {
		return dst, ErrTruncated
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		if v > math.MaxUint32 {
			return dst, fmt.Errorf("wire: subscriber ID %d overflows uint32", v)
		}
		dst = append(dst, uint32(v))
	}
	return dst, nil
}

// bytesInto decodes a length-prefixed blob into dst's storage (growing it
// only when the capacity is too small) and returns the filled slice. A
// zero-length blob yields dst truncated to zero — nil stays nil, so the
// fresh-struct Read path keeps its historical "empty decodes to nil"
// behavior.
func (r *reader) bytesInto(dst []byte) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return dst, err
	}
	if uint64(n) > uint64(len(r.buf)) {
		return dst, ErrTruncated
	}
	b, err := r.take(int(n))
	if err != nil {
		return dst, err
	}
	return append(dst[:0], b...), nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytesInto(nil)
	return string(b), err
}

// nodesInto decodes a node list into dst's storage, mirroring bytesInto's
// reuse and nil semantics.
func (r *reader) nodesInto(dst []int32) ([]int32, error) {
	n, err := r.u16()
	if err != nil {
		return dst, err
	}
	if int(n)*4 > len(r.buf) {
		return dst, ErrTruncated
	}
	dst = dst[:0]
	for i := 0; i < int(n); i++ {
		v, err := r.i32()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// --- per-message codecs ---

func (m *Hello) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.BrokerID)
	return appendString(dst, m.Name)
}

func (m *Hello) decode(r *reader) (err error) {
	if m.BrokerID, err = r.i32(); err != nil {
		return err
	}
	m.Name, err = r.str()
	return err
}

func (m *Data) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.FrameID)
	dst = appendU64(dst, m.PacketID)
	dst = appendI32(dst, m.Topic)
	dst = appendI32(dst, m.Source)
	dst = appendI64(dst, m.PublishedAt.UnixNano())
	dst = appendI64(dst, int64(m.Deadline))
	dst = appendNodes(dst, m.Dests)
	dst = appendNodes(dst, m.Path)
	return appendBytes(dst, m.Payload)
}

func (m *Data) decode(r *reader) (err error) {
	if m.FrameID, err = r.u64(); err != nil {
		return err
	}
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.Source, err = r.i32(); err != nil {
		return err
	}
	ns, err := r.i64()
	if err != nil {
		return err
	}
	m.PublishedAt = time.Unix(0, ns)
	dl, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(dl)
	if m.Dests, err = r.nodesInto(m.Dests); err != nil {
		return err
	}
	if m.Path, err = r.nodesInto(m.Path); err != nil {
		return err
	}
	m.Payload, err = r.bytesInto(m.Payload)
	return err
}

// WalCustody's body is exactly a Data body (promoted methods); only the
// type tag differs, so a WAL segment is a valid frame stream for the
// standard decoder.

func (m *WalClear) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.PacketID)
	return appendNodes(dst, m.Dests)
}

func (m *WalClear) decode(r *reader) (err error) {
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	m.Dests, err = r.nodesInto(m.Dests)
	return err
}

func (m *WalDeliver) appendBody(dst []byte) []byte { return appendU64(dst, m.PacketID) }

func (m *WalDeliver) decode(r *reader) (err error) {
	m.PacketID, err = r.u64()
	return err
}

func (m *WalMeta) appendBody(dst []byte) []byte { return appendU64(dst, m.Incarnation) }

func (m *WalMeta) decode(r *reader) (err error) {
	m.Incarnation, err = r.u64()
	return err
}

func (m *Ack) appendBody(dst []byte) []byte { return appendU64(dst, m.FrameID) }

func (m *Ack) decode(r *reader) (err error) {
	m.FrameID, err = r.u64()
	return err
}

func (m *Advert) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Topic)
	dst = appendI32(dst, m.Sub)
	dst = appendI64(dst, int64(m.D))
	dst = appendF64(dst, m.R)
	dst = appendI64(dst, int64(m.Deadline))
	return appendBool(dst, m.Gone)
}

func (m *Advert) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.Sub, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.D = time.Duration(d)
	if m.R, err = r.f64(); err != nil {
		return err
	}
	dl, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(dl)
	m.Gone, err = r.boolean()
	return err
}

func (m *Ping) appendBody(dst []byte) []byte { return appendU64(dst, m.Token) }

func (m *Ping) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *Pong) appendBody(dst []byte) []byte { return appendU64(dst, m.Token) }

func (m *Pong) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *Subscribe) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Topic)
	return appendI64(dst, int64(m.Deadline))
}

func (m *Subscribe) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(d)
	return nil
}

func (m *Unsubscribe) appendBody(dst []byte) []byte { return appendI32(dst, m.Topic) }

func (m *Unsubscribe) decode(r *reader) (err error) {
	m.Topic, err = r.i32()
	return err
}

func (m *Publish) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Topic)
	dst = appendI64(dst, int64(m.Deadline))
	return appendBytes(dst, m.Payload)
}

func (m *Publish) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(d)
	m.Payload, err = r.bytesInto(m.Payload)
	return err
}

func (m *StatsRequest) appendBody(dst []byte) []byte { return appendU64(dst, m.Token) }

func (m *StatsRequest) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *StatsReply) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Token)
	dst = appendI32(dst, m.BrokerID)
	dst = appendU64(dst, m.Published)
	dst = appendU64(dst, m.Delivered)
	dst = appendU64(dst, m.Forwarded)
	dst = appendU64(dst, m.Dropped)
	dst = appendU64(dst, m.QueueDrops)
	dst = appendU64(dst, m.Redials)
	dst = appendU64(dst, m.Reconnects)
	dst = appendU64(dst, m.Sessions)
	dst = appendU64(dst, m.Subscriptions)
	dst = appendU64(dst, m.AckBatches)
	dst = appendU64(dst, m.AckFramesCoalesced)
	dst = appendU64(dst, m.RelayBytesSaved)
	dst = appendU16(dst, uint16(len(m.Neighbors)))
	for _, n := range m.Neighbors {
		dst = appendI32(dst, n.ID)
		dst = appendBool(dst, n.Connected)
		dst = appendI64(dst, int64(n.Alpha))
		dst = appendF64(dst, n.Gamma)
	}
	dst = appendU16(dst, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		dst = appendI32(dst, rt.Topic)
		dst = appendI32(dst, rt.Sub)
		dst = appendI64(dst, int64(rt.D))
		dst = appendF64(dst, rt.R)
		dst = appendI32(dst, rt.ListLen)
	}
	dst = appendU16(dst, uint16(len(m.Shards)))
	for _, sh := range m.Shards {
		dst = appendI32(dst, sh.Depth)
		dst = appendU64(dst, sh.Enqueued)
		dst = appendU64(dst, sh.Processed)
		dst = appendI32(dst, sh.Inflight)
	}
	dst = appendU16(dst, uint16(len(m.Links)))
	for _, l := range m.Links {
		dst = appendI32(dst, l.From)
		dst = appendI32(dst, l.To)
		dst = appendI64(dst, int64(l.Alpha))
		dst = appendF64(dst, l.Gamma)
		dst = appendU64(dst, l.Epoch)
	}
	dst = appendBool(dst, m.Ctrl.Enabled)
	dst = appendU64(dst, m.Ctrl.Epoch)
	dst = appendU64(dst, m.Ctrl.Version)
	dst = appendU64(dst, m.Ctrl.Rebuilds)
	dst = appendU64(dst, m.Ctrl.Noops)
	dst = appendU64(dst, m.Ctrl.TablesBuilt)
	dst = appendU64(dst, m.Ctrl.LinkStatesSent)
	dst = appendU64(dst, m.Ctrl.LinkStatesRecv)
	dst = appendU64(dst, m.Ctrl.StaleDrops)
	dst = appendU64(dst, m.Ctrl.ProbesSent)
	dst = appendU64(dst, m.Ctrl.ProbeReplies)
	dst = appendBool(dst, m.Wal.Enabled)
	dst = appendU64(dst, m.Wal.Appends)
	dst = appendU64(dst, m.Wal.Fsyncs)
	dst = appendU64(dst, m.Wal.Bytes)
	dst = appendU64(dst, m.Wal.ReplayedFlights)
	dst = appendU64(dst, m.Wal.Checkpoints)
	return dst
}

func (m *StatsReply) decode(r *reader) (err error) {
	if m.Token, err = r.u64(); err != nil {
		return err
	}
	if m.BrokerID, err = r.i32(); err != nil {
		return err
	}
	if m.Published, err = r.u64(); err != nil {
		return err
	}
	if m.Delivered, err = r.u64(); err != nil {
		return err
	}
	if m.Forwarded, err = r.u64(); err != nil {
		return err
	}
	if m.Dropped, err = r.u64(); err != nil {
		return err
	}
	if m.QueueDrops, err = r.u64(); err != nil {
		return err
	}
	if m.Redials, err = r.u64(); err != nil {
		return err
	}
	if m.Reconnects, err = r.u64(); err != nil {
		return err
	}
	if m.Sessions, err = r.u64(); err != nil {
		return err
	}
	if m.Subscriptions, err = r.u64(); err != nil {
		return err
	}
	if m.AckBatches, err = r.u64(); err != nil {
		return err
	}
	if m.AckFramesCoalesced, err = r.u64(); err != nil {
		return err
	}
	if m.RelayBytesSaved, err = r.u64(); err != nil {
		return err
	}
	m.Neighbors = m.Neighbors[:0]
	nn, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nn); i++ {
		var ns NeighborStat
		if ns.ID, err = r.i32(); err != nil {
			return err
		}
		if ns.Connected, err = r.boolean(); err != nil {
			return err
		}
		alpha, err := r.i64()
		if err != nil {
			return err
		}
		ns.Alpha = time.Duration(alpha)
		if ns.Gamma, err = r.f64(); err != nil {
			return err
		}
		m.Neighbors = append(m.Neighbors, ns)
	}
	m.Routes = m.Routes[:0]
	nr, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nr); i++ {
		var rt RouteStat
		if rt.Topic, err = r.i32(); err != nil {
			return err
		}
		if rt.Sub, err = r.i32(); err != nil {
			return err
		}
		d, err := r.i64()
		if err != nil {
			return err
		}
		rt.D = time.Duration(d)
		if rt.R, err = r.f64(); err != nil {
			return err
		}
		if rt.ListLen, err = r.i32(); err != nil {
			return err
		}
		m.Routes = append(m.Routes, rt)
	}
	m.Shards = m.Shards[:0]
	nsd, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nsd); i++ {
		var sh ShardStat
		if sh.Depth, err = r.i32(); err != nil {
			return err
		}
		if sh.Enqueued, err = r.u64(); err != nil {
			return err
		}
		if sh.Processed, err = r.u64(); err != nil {
			return err
		}
		if sh.Inflight, err = r.i32(); err != nil {
			return err
		}
		m.Shards = append(m.Shards, sh)
	}
	m.Links = m.Links[:0]
	nl, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nl); i++ {
		var l LinkStat
		if l.From, err = r.i32(); err != nil {
			return err
		}
		if l.To, err = r.i32(); err != nil {
			return err
		}
		alpha, err := r.i64()
		if err != nil {
			return err
		}
		l.Alpha = time.Duration(alpha)
		if l.Gamma, err = r.f64(); err != nil {
			return err
		}
		if l.Epoch, err = r.u64(); err != nil {
			return err
		}
		m.Links = append(m.Links, l)
	}
	if m.Ctrl.Enabled, err = r.boolean(); err != nil {
		return err
	}
	if m.Ctrl.Epoch, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.Version, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.Rebuilds, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.Noops, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.TablesBuilt, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.LinkStatesSent, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.LinkStatesRecv, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.StaleDrops, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.ProbesSent, err = r.u64(); err != nil {
		return err
	}
	if m.Ctrl.ProbeReplies, err = r.u64(); err != nil {
		return err
	}
	if m.Wal.Enabled, err = r.boolean(); err != nil {
		return err
	}
	if m.Wal.Appends, err = r.u64(); err != nil {
		return err
	}
	if m.Wal.Fsyncs, err = r.u64(); err != nil {
		return err
	}
	if m.Wal.Bytes, err = r.u64(); err != nil {
		return err
	}
	if m.Wal.ReplayedFlights, err = r.u64(); err != nil {
		return err
	}
	m.Wal.Checkpoints, err = r.u64()
	return err
}

func (m *Deliver) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Topic)
	dst = appendU64(dst, m.PacketID)
	dst = appendI32(dst, m.Source)
	dst = appendI64(dst, m.PublishedAt.UnixNano())
	return appendBytes(dst, m.Payload)
}

func (m *Deliver) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	if m.Source, err = r.i32(); err != nil {
		return err
	}
	ns, err := r.i64()
	if err != nil {
		return err
	}
	m.PublishedAt = time.Unix(0, ns)
	m.Payload, err = r.bytesInto(m.Payload)
	return err
}

func (m *SessionHello) appendBody(dst []byte) []byte { return appendU32(dst, m.Subscribers) }

func (m *SessionHello) decode(r *reader) (err error) {
	m.Subscribers, err = r.u32()
	return err
}

func (m *SessionSub) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.SubID)
	dst = appendI32(dst, m.Topic)
	return appendI64(dst, int64(m.Deadline))
}

func (m *SessionSub) decode(r *reader) (err error) {
	if m.SubID, err = r.u32(); err != nil {
		return err
	}
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(d)
	return nil
}

func (m *SessionUnsub) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.SubID)
	return appendI32(dst, m.Topic)
}

func (m *SessionUnsub) decode(r *reader) (err error) {
	if m.SubID, err = r.u32(); err != nil {
		return err
	}
	m.Topic, err = r.i32()
	return err
}

func (m *MuxDeliver) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Topic)
	dst = appendU64(dst, m.PacketID)
	dst = appendI32(dst, m.Source)
	dst = appendI64(dst, m.PublishedAt.UnixNano())
	dst = appendSubIDs(dst, m.SubIDs)
	return appendBytes(dst, m.Payload)
}

func (m *MuxDeliver) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	if m.Source, err = r.i32(); err != nil {
		return err
	}
	ns, err := r.i64()
	if err != nil {
		return err
	}
	m.PublishedAt = time.Unix(0, ns)
	if m.SubIDs, err = r.subIDsInto(m.SubIDs); err != nil {
		return err
	}
	m.Payload, err = r.bytesInto(m.Payload)
	return err
}

func (m *AckBatch) appendBody(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.FrameIDs)))
	prev := uint64(0)
	for _, id := range m.FrameIDs {
		// Unsigned subtraction wraps; int64 reinterprets the wrapped bits
		// and the decoder's wrapping add reverses both — exact for any IDs.
		dst = binary.AppendVarint(dst, int64(id-prev))
		prev = id
	}
	return dst
}

func (m *AckBatch) decode(r *reader) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("wire: empty ACK_BATCH")
	}
	if n > uint64(len(r.buf)) {
		return ErrTruncated
	}
	m.FrameIDs = m.FrameIDs[:0]
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.varint()
		if err != nil {
			return err
		}
		prev += uint64(d)
		m.FrameIDs = append(m.FrameIDs, prev)
	}
	return nil
}

// dataBatchMinEntry is the smallest possible encoded DataBatch entry: six
// one-byte varint deltas, two one-byte empty node lists, one one-byte empty
// payload. Bounds-checking the claimed count against it keeps a hostile
// count from forcing a giant Frames allocation.
const dataBatchMinEntry = 9

func (m *DataBatch) appendBody(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Frames)))
	// Previous-entry fields as scalars starting at zero, matching the
	// decoder exactly (a zero Data's PublishedAt.UnixNano() is NOT zero).
	var prevFrame, prevPacket uint64
	var prevTopic, prevSource, prevNS, prevDL int64
	for i := range m.Frames {
		e := &m.Frames[i]
		ns := e.PublishedAt.UnixNano()
		// Unsigned subtraction wraps; int64 reinterprets the wrapped bits
		// and the decoder's wrapping add reverses both — exact for any IDs.
		dst = binary.AppendVarint(dst, int64(e.FrameID-prevFrame))
		dst = binary.AppendVarint(dst, int64(e.PacketID-prevPacket))
		dst = binary.AppendVarint(dst, int64(e.Topic)-prevTopic)
		dst = binary.AppendVarint(dst, int64(e.Source)-prevSource)
		dst = binary.AppendVarint(dst, ns-prevNS)
		dst = binary.AppendVarint(dst, int64(e.Deadline)-prevDL)
		dst = appendDeltaNodes(dst, e.Dests)
		dst = appendDeltaNodes(dst, e.Path)
		dst = appendVarBytes(dst, e.Payload)
		prevFrame, prevPacket = e.FrameID, e.PacketID
		prevTopic, prevSource = int64(e.Topic), int64(e.Source)
		prevNS, prevDL = ns, int64(e.Deadline)
	}
	return dst
}

func (m *DataBatch) decode(r *reader) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("wire: empty DATA_BATCH")
	}
	if n > uint64(len(r.buf))/dataBatchMinEntry {
		return ErrTruncated
	}
	// Reuse the recycled entries' buffers: re-extending within capacity
	// re-exposes old elements (their Dests/Path/Payload storage intact),
	// and append beyond capacity copies those slice headers along.
	m.Frames = m.Frames[:0]
	var prevFrame, prevPacket uint64
	var prevTopic, prevSource, prevNS, prevDL int64
	for i := uint64(0); i < n; i++ {
		if len(m.Frames) < cap(m.Frames) {
			m.Frames = m.Frames[:len(m.Frames)+1]
		} else {
			m.Frames = append(m.Frames, Data{})
		}
		e := &m.Frames[len(m.Frames)-1]
		d, err := r.varint()
		if err != nil {
			return err
		}
		prevFrame += uint64(d)
		e.FrameID = prevFrame
		if d, err = r.varint(); err != nil {
			return err
		}
		prevPacket += uint64(d)
		e.PacketID = prevPacket
		if d, err = r.varint(); err != nil {
			return err
		}
		prevTopic += d
		if prevTopic < math.MinInt32 || prevTopic > math.MaxInt32 {
			return fmt.Errorf("wire: DATA_BATCH topic %d overflows int32", prevTopic)
		}
		e.Topic = int32(prevTopic)
		if d, err = r.varint(); err != nil {
			return err
		}
		prevSource += d
		if prevSource < math.MinInt32 || prevSource > math.MaxInt32 {
			return fmt.Errorf("wire: DATA_BATCH source %d overflows int32", prevSource)
		}
		e.Source = int32(prevSource)
		if d, err = r.varint(); err != nil {
			return err
		}
		prevNS += d
		e.PublishedAt = time.Unix(0, prevNS)
		if d, err = r.varint(); err != nil {
			return err
		}
		prevDL += d
		e.Deadline = time.Duration(prevDL)
		if e.Dests, err = r.deltaNodesInto(e.Dests); err != nil {
			return err
		}
		if e.Path, err = r.deltaNodesInto(e.Path); err != nil {
			return err
		}
		if e.Payload, err = r.varBytesInto(e.Payload); err != nil {
			return err
		}
	}
	return nil
}

// linkStateMinEntry is the smallest possible encoded LinkRecord: a one-byte
// To varint, a one-byte alpha varint and the fixed eight-byte gamma.
// Bounds-checking the claimed count against it (DATA_BATCH's division form)
// keeps a hostile count from forcing a giant Links allocation.
const linkStateMinEntry = 10

func (m *LinkState) appendBody(dst []byte) []byte {
	dst = appendI32(dst, m.Origin)
	dst = appendU64(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(m.Links)))
	for _, l := range m.Links {
		dst = binary.AppendVarint(dst, int64(l.To))
		dst = binary.AppendVarint(dst, int64(l.Alpha))
		dst = appendF64(dst, l.Gamma)
	}
	return dst
}

func (m *LinkState) decode(r *reader) (err error) {
	if m.Origin, err = r.i32(); err != nil {
		return err
	}
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	// A zero-count flood is valid: it withdraws every link the origin
	// previously advertised (the broker lost all its neighbors).
	if n > uint64(len(r.buf))/linkStateMinEntry {
		return ErrTruncated
	}
	m.Links = m.Links[:0]
	for i := uint64(0); i < n; i++ {
		var l LinkRecord
		to, err := r.varint()
		if err != nil {
			return err
		}
		if to < math.MinInt32 || to > math.MaxInt32 {
			return fmt.Errorf("wire: LINK_STATE node ID %d overflows int32", to)
		}
		l.To = int32(to)
		alpha, err := r.varint()
		if err != nil {
			return err
		}
		l.Alpha = time.Duration(alpha)
		if l.Gamma, err = r.f64(); err != nil {
			return err
		}
		m.Links = append(m.Links, l)
	}
	return nil
}

func (m *Probe) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Token)
	return appendBool(dst, m.Reply)
}

func (m *Probe) decode(r *reader) (err error) {
	if m.Token, err = r.u64(); err != nil {
		return err
	}
	m.Reply, err = r.boolean()
	return err
}

// Package wire defines the binary protocol spoken between live DCRD brokers
// and their clients (internal/broker, cmd/dcrd-*): length-prefixed frames
// with a one-byte type tag and big-endian fixed-width fields.
//
// Frame layout on the wire:
//
//	uint32  payload length (not counting the length field itself)
//	uint8   message type
//	...     type-specific fields
//
// Strings and byte blobs are encoded as uint32 length + bytes. Node lists
// are uint16 count + int32 entries. The protocol is deliberately simple —
// fixed encodings, no varints, no compression — so a broker can be
// implemented in any language from this file alone.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Type tags every message on the wire.
type Type uint8

// Message types.
const (
	// TypeHello introduces a broker (or client) after dialing.
	TypeHello Type = iota + 1
	// TypeData carries one routed packet copy between brokers.
	TypeData
	// TypeAck acknowledges a TypeData frame hop-by-hop.
	TypeAck
	// TypeAdvert shares <d, r> parameters for one (topic, subscriber
	// broker) pair with a neighbor (Algorithm 1's parameter exchange).
	TypeAdvert
	// TypePing and TypePong measure link round-trip times for alpha.
	TypePing
	TypePong
	// TypeSubscribe registers a client's topic subscription at its broker.
	TypeSubscribe
	// TypeUnsubscribe removes a client's topic subscription.
	TypeUnsubscribe
	// TypePublish submits a client's message to its broker.
	TypePublish
	// TypeDeliver hands a message to a subscribed client.
	TypeDeliver
	// TypeStatsRequest asks a broker for its operational state.
	TypeStatsRequest
	// TypeStatsReply answers a TypeStatsRequest.
	TypeStatsReply
)

// String returns the message type name.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeAdvert:
		return "ADVERT"
	case TypePing:
		return "PING"
	case TypePong:
		return "PONG"
	case TypeSubscribe:
		return "SUBSCRIBE"
	case TypeUnsubscribe:
		return "UNSUBSCRIBE"
	case TypePublish:
		return "PUBLISH"
	case TypeDeliver:
		return "DELIVER"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a single frame; larger frames are rejected to protect
// brokers from corrupt peers.
const MaxFrameSize = 16 << 20

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrTruncated     = errors.New("wire: truncated message")
)

// Message is implemented by every wire message.
type Message interface {
	// Type returns the message's wire tag.
	Type() Type
	encode(*bytes.Buffer)
	decode(*reader) error
}

// Hello introduces the dialing peer.
type Hello struct {
	// BrokerID is the sender's broker ID, or -1 for clients.
	BrokerID int32
	// Name is a free-form peer name (client identifier, broker label).
	Name string
}

// Data carries one routed copy of a published packet.
type Data struct {
	FrameID     uint64
	PacketID    uint64
	Topic       int32
	Source      int32 // publishing broker
	PublishedAt time.Time
	Deadline    time.Duration // QoS requirement relative to PublishedAt
	Dests       []int32       // destination broker IDs this copy serves
	Path        []int32       // routing path: brokers that sent this copy
	Payload     []byte
}

// Ack acknowledges a Data frame hop-by-hop.
type Ack struct {
	FrameID uint64
}

// Advert shares one (topic, subscriber broker) <d, r> estimate.
type Advert struct {
	Topic int32
	Sub   int32 // subscriber broker ID
	D     time.Duration
	R     float64
	// Deadline is the subscriber's QoS delay requirement, propagated so
	// upstream brokers can run the Algorithm-1 admission filter.
	Deadline time.Duration
	// Gone marks a withdrawn route (subscriber unsubscribed or became
	// unreachable); receivers must treat the pair as unreachable.
	Gone bool
}

// Ping/Pong measure link RTT. Token echoes back verbatim.
type Ping struct {
	Token uint64
}

// Pong answers a Ping.
type Pong struct {
	Token uint64
}

// Subscribe registers a client subscription.
type Subscribe struct {
	Topic int32
	// Deadline is the client's QoS delay requirement for this topic.
	Deadline time.Duration
}

// Unsubscribe removes a client's subscription to a topic.
type Unsubscribe struct {
	Topic int32
}

// Publish submits a message from a client.
type Publish struct {
	Topic    int32
	Deadline time.Duration // requested QoS bound; 0 means broker default
	Payload  []byte
}

// Deliver hands a routed message to a subscribed client.
type Deliver struct {
	Topic       int32
	PacketID    uint64
	Source      int32
	PublishedAt time.Time
	Payload     []byte
}

// StatsRequest asks a broker for a StatsReply. Token echoes back so
// clients can correlate replies.
type StatsRequest struct {
	Token uint64
}

// NeighborStat is one overlay link's live state.
type NeighborStat struct {
	ID        int32
	Connected bool
	Alpha     time.Duration
	Gamma     float64
}

// RouteStat is one (topic, subscriber broker) routing-table entry.
type RouteStat struct {
	Topic   int32
	Sub     int32
	D       time.Duration
	R       float64
	ListLen int32
}

// StatsReply reports a broker's operational state.
type StatsReply struct {
	Token     uint64
	BrokerID  int32
	Published uint64
	Delivered uint64
	Forwarded uint64
	Dropped   uint64
	Neighbors []NeighborStat
	Routes    []RouteStat
}

// interface conformance
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Data)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*Advert)(nil)
	_ Message = (*Ping)(nil)
	_ Message = (*Pong)(nil)
	_ Message = (*Subscribe)(nil)
	_ Message = (*Unsubscribe)(nil)
	_ Message = (*Publish)(nil)
	_ Message = (*Deliver)(nil)
	_ Message = (*StatsRequest)(nil)
	_ Message = (*StatsReply)(nil)
)

// Type implementations.
func (*Hello) Type() Type        { return TypeHello }
func (*Data) Type() Type         { return TypeData }
func (*Ack) Type() Type          { return TypeAck }
func (*Advert) Type() Type       { return TypeAdvert }
func (*Ping) Type() Type         { return TypePing }
func (*Pong) Type() Type         { return TypePong }
func (*Subscribe) Type() Type    { return TypeSubscribe }
func (*Unsubscribe) Type() Type  { return TypeUnsubscribe }
func (*Publish) Type() Type      { return TypePublish }
func (*Deliver) Type() Type      { return TypeDeliver }
func (*StatsRequest) Type() Type { return TypeStatsRequest }
func (*StatsReply) Type() Type   { return TypeStatsReply }

// Write encodes msg and writes one frame to w.
func Write(w io.Writer, msg Message) error {
	var body bytes.Buffer
	body.WriteByte(byte(msg.Type()))
	msg.encode(&body)
	if body.Len() > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(body.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Read reads one frame from r and decodes it.
func Read(r io.Reader) (Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if size == 0 {
		return nil, ErrTruncated
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	msg, err := newMessage(Type(body[0]))
	if err != nil {
		return nil, err
	}
	rd := &reader{buf: body[1:]}
	if err := msg.decode(rd); err != nil {
		return nil, err
	}
	if len(rd.buf) != 0 {
		return nil, fmt.Errorf("wire: %v has %d trailing bytes", msg.Type(), len(rd.buf))
	}
	return msg, nil
}

// newMessage allocates the message struct for a wire tag.
func newMessage(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeData:
		return &Data{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeAdvert:
		return &Advert{}, nil
	case TypePing:
		return &Ping{}, nil
	case TypePong:
		return &Pong{}, nil
	case TypeSubscribe:
		return &Subscribe{}, nil
	case TypeUnsubscribe:
		return &Unsubscribe{}, nil
	case TypePublish:
		return &Publish{}, nil
	case TypeDeliver:
		return &Deliver{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// --- primitive encoders ---

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func putI64(b *bytes.Buffer, v int64) { putU64(b, uint64(v)) }

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putI32(b *bytes.Buffer, v int32) { putU32(b, uint32(v)) }

func putU16(b *bytes.Buffer, v uint16) {
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], v)
	b.Write(tmp[:])
}

func putF64(b *bytes.Buffer, v float64) { putU64(b, math.Float64bits(v)) }

func putBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func putBytes(b *bytes.Buffer, v []byte) {
	putU32(b, uint32(len(v)))
	b.Write(v)
}

func putString(b *bytes.Buffer, v string) { putBytes(b, []byte(v)) }

func putNodes(b *bytes.Buffer, nodes []int32) {
	putU16(b, uint16(len(nodes)))
	for _, n := range nodes {
		putI32(b, n)
	}
}

// reader decodes primitives with bounds checking.
type reader struct {
	buf []byte
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.buf) < n {
		return nil, ErrTruncated
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) boolean() (bool, error) {
	b, err := r.take(1)
	if err != nil {
		return false, err
	}
	return b[0] != 0, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if uint64(n) > uint64(len(r.buf)) {
		return nil, ErrTruncated
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) nodes() ([]int32, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if int(n)*4 > len(r.buf) {
		return nil, ErrTruncated
	}
	out := make([]int32, n)
	for i := range out {
		v, err := r.i32()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// --- per-message codecs ---

func (m *Hello) encode(b *bytes.Buffer) {
	putI32(b, m.BrokerID)
	putString(b, m.Name)
}

func (m *Hello) decode(r *reader) (err error) {
	if m.BrokerID, err = r.i32(); err != nil {
		return err
	}
	m.Name, err = r.str()
	return err
}

func (m *Data) encode(b *bytes.Buffer) {
	putU64(b, m.FrameID)
	putU64(b, m.PacketID)
	putI32(b, m.Topic)
	putI32(b, m.Source)
	putI64(b, m.PublishedAt.UnixNano())
	putI64(b, int64(m.Deadline))
	putNodes(b, m.Dests)
	putNodes(b, m.Path)
	putBytes(b, m.Payload)
}

func (m *Data) decode(r *reader) (err error) {
	if m.FrameID, err = r.u64(); err != nil {
		return err
	}
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.Source, err = r.i32(); err != nil {
		return err
	}
	ns, err := r.i64()
	if err != nil {
		return err
	}
	m.PublishedAt = time.Unix(0, ns)
	dl, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(dl)
	if m.Dests, err = r.nodes(); err != nil {
		return err
	}
	if m.Path, err = r.nodes(); err != nil {
		return err
	}
	m.Payload, err = r.bytes()
	return err
}

func (m *Ack) encode(b *bytes.Buffer) { putU64(b, m.FrameID) }

func (m *Ack) decode(r *reader) (err error) {
	m.FrameID, err = r.u64()
	return err
}

func (m *Advert) encode(b *bytes.Buffer) {
	putI32(b, m.Topic)
	putI32(b, m.Sub)
	putI64(b, int64(m.D))
	putF64(b, m.R)
	putI64(b, int64(m.Deadline))
	putBool(b, m.Gone)
}

func (m *Advert) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.Sub, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.D = time.Duration(d)
	if m.R, err = r.f64(); err != nil {
		return err
	}
	dl, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(dl)
	m.Gone, err = r.boolean()
	return err
}

func (m *Ping) encode(b *bytes.Buffer) { putU64(b, m.Token) }

func (m *Ping) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *Pong) encode(b *bytes.Buffer) { putU64(b, m.Token) }

func (m *Pong) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *Subscribe) encode(b *bytes.Buffer) {
	putI32(b, m.Topic)
	putI64(b, int64(m.Deadline))
}

func (m *Subscribe) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(d)
	return nil
}

func (m *Unsubscribe) encode(b *bytes.Buffer) { putI32(b, m.Topic) }

func (m *Unsubscribe) decode(r *reader) (err error) {
	m.Topic, err = r.i32()
	return err
}

func (m *Publish) encode(b *bytes.Buffer) {
	putI32(b, m.Topic)
	putI64(b, int64(m.Deadline))
	putBytes(b, m.Payload)
}

func (m *Publish) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	d, err := r.i64()
	if err != nil {
		return err
	}
	m.Deadline = time.Duration(d)
	m.Payload, err = r.bytes()
	return err
}

func (m *StatsRequest) encode(b *bytes.Buffer) { putU64(b, m.Token) }

func (m *StatsRequest) decode(r *reader) (err error) {
	m.Token, err = r.u64()
	return err
}

func (m *StatsReply) encode(b *bytes.Buffer) {
	putU64(b, m.Token)
	putI32(b, m.BrokerID)
	putU64(b, m.Published)
	putU64(b, m.Delivered)
	putU64(b, m.Forwarded)
	putU64(b, m.Dropped)
	putU16(b, uint16(len(m.Neighbors)))
	for _, n := range m.Neighbors {
		putI32(b, n.ID)
		putBool(b, n.Connected)
		putI64(b, int64(n.Alpha))
		putF64(b, n.Gamma)
	}
	putU16(b, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		putI32(b, rt.Topic)
		putI32(b, rt.Sub)
		putI64(b, int64(rt.D))
		putF64(b, rt.R)
		putI32(b, rt.ListLen)
	}
}

func (m *StatsReply) decode(r *reader) (err error) {
	if m.Token, err = r.u64(); err != nil {
		return err
	}
	if m.BrokerID, err = r.i32(); err != nil {
		return err
	}
	if m.Published, err = r.u64(); err != nil {
		return err
	}
	if m.Delivered, err = r.u64(); err != nil {
		return err
	}
	if m.Forwarded, err = r.u64(); err != nil {
		return err
	}
	if m.Dropped, err = r.u64(); err != nil {
		return err
	}
	nn, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nn); i++ {
		var ns NeighborStat
		if ns.ID, err = r.i32(); err != nil {
			return err
		}
		if ns.Connected, err = r.boolean(); err != nil {
			return err
		}
		alpha, err := r.i64()
		if err != nil {
			return err
		}
		ns.Alpha = time.Duration(alpha)
		if ns.Gamma, err = r.f64(); err != nil {
			return err
		}
		m.Neighbors = append(m.Neighbors, ns)
	}
	nr, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nr); i++ {
		var rt RouteStat
		if rt.Topic, err = r.i32(); err != nil {
			return err
		}
		if rt.Sub, err = r.i32(); err != nil {
			return err
		}
		d, err := r.i64()
		if err != nil {
			return err
		}
		rt.D = time.Duration(d)
		if rt.R, err = r.f64(); err != nil {
			return err
		}
		if rt.ListLen, err = r.i32(); err != nil {
			return err
		}
		m.Routes = append(m.Routes, rt)
	}
	return nil
}

func (m *Deliver) encode(b *bytes.Buffer) {
	putI32(b, m.Topic)
	putU64(b, m.PacketID)
	putI32(b, m.Source)
	putI64(b, m.PublishedAt.UnixNano())
	putBytes(b, m.Payload)
}

func (m *Deliver) decode(r *reader) (err error) {
	if m.Topic, err = r.i32(); err != nil {
		return err
	}
	if m.PacketID, err = r.u64(); err != nil {
		return err
	}
	if m.Source, err = r.i32(); err != nil {
		return err
	}
	ns, err := r.i64()
	if err != nil {
		return err
	}
	m.PublishedAt = time.Unix(0, ns)
	m.Payload, err = r.bytes()
	return err
}

package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

// allTypesCorpus is one representative message per wire type.
func allTypesCorpus() []Message {
	at := time.Unix(0, 1720000000123456789)
	return []Message{
		&Hello{BrokerID: 7, Name: "broker-7"},
		&Hello{BrokerID: -1, Name: ""},
		&Data{
			FrameID: 42, PacketID: 99, Topic: 3, Source: 1,
			PublishedAt: at, Deadline: 150 * time.Millisecond,
			Dests: []int32{2, 5, 9}, Path: []int32{1, 4, 1},
			Payload: []byte("position report"),
		},
		&Data{FrameID: 1, PacketID: 2, PublishedAt: time.Unix(0, 0)},
		&Ack{FrameID: 12345678901234},
		&Advert{Topic: 2, Sub: 8, D: 75 * time.Millisecond, R: 0.987, Deadline: time.Second},
		&Advert{Gone: true},
		&Ping{Token: 555},
		&Pong{Token: 556},
		&Subscribe{Topic: 4, Deadline: 200 * time.Millisecond},
		&Unsubscribe{Topic: 9},
		&Publish{Topic: 4, Deadline: time.Second, Payload: []byte{0, 1, 2, 255}},
		&Publish{},
		&Deliver{Topic: 4, PacketID: 77, Source: 2, PublishedAt: at, Payload: []byte("x")},
		&StatsRequest{Token: 31337},
		&StatsReply{
			Token: 31337, BrokerID: 2,
			Published: 10, Delivered: 20, Forwarded: 30, Dropped: 1,
			Neighbors: []NeighborStat{
				{ID: 1, Connected: true, Alpha: 12 * time.Millisecond, Gamma: 0.97},
			},
			Routes: []RouteStat{
				{Topic: 3, Sub: 1, D: 45 * time.Millisecond, R: 0.93, ListLen: 2},
			},
			Shards: []ShardStat{
				{Depth: 2, Enqueued: 64, Processed: 62, Inflight: 5},
			},
			Sessions: 8, Subscriptions: 1000,
			AckBatches: 5, AckFramesCoalesced: 320, RelayBytesSaved: 4096,
		},
		&StatsReply{Token: 1},
		&SessionHello{Subscribers: 1000},
		&SessionSub{SubID: 42, Topic: 4, Deadline: 200 * time.Millisecond},
		&SessionUnsub{SubID: 42, Topic: 4},
		&MuxDeliver{
			Topic: 4, PacketID: 78, Source: 2, PublishedAt: at,
			SubIDs: []uint32{3, 17, 300}, Payload: []byte("agg"),
		},
		&AckBatch{FrameIDs: []uint64{12345678901234}},
		&AckBatch{FrameIDs: []uint64{1, 2, 3, 900, 1 << 60}},
		&DataBatch{Frames: []Data{
			{
				FrameID: 42, PacketID: 99, Topic: 3, Source: 1,
				PublishedAt: at, Deadline: 150 * time.Millisecond,
				Dests: []int32{2, 5, 9}, Path: []int32{1, 4, 1},
				Payload: []byte("position report"),
			},
			{
				FrameID: 43, PacketID: 100, Topic: 3, Source: 1,
				PublishedAt: at.Add(time.Millisecond), Deadline: 150 * time.Millisecond,
				Dests: []int32{2, 5, 9}, Path: []int32{1, 4, 1},
				Payload: []byte("p2"),
			},
		}},
		&DataBatch{Frames: []Data{{FrameID: 1, PacketID: 2, PublishedAt: time.Unix(0, 0)}}},
		&LinkState{Origin: 3, Epoch: 17, Links: []LinkRecord{
			{To: 1, Alpha: 12 * time.Millisecond, Gamma: 0.97},
			{To: 9, Alpha: 40 * time.Millisecond, Gamma: 0}, // withdrawal
		}},
		&LinkState{Origin: 0, Epoch: 1}, // zero records: withdraws all links
		&Probe{Token: 0xDEAD},
		&Probe{Token: 0xDEAD, Reply: true},
	}
}

// TestAppendFrameMatchesWrite pins the append encoder to the wire format
// Write emits: byte-identical frames for every message type.
func TestAppendFrameMatchesWrite(t *testing.T) {
	for _, msg := range allTypesCorpus() {
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("Write(%v): %v", msg.Type(), err)
		}
		frame := AppendFrame(nil, msg)
		if !bytes.Equal(buf.Bytes(), frame) {
			t.Errorf("%v: AppendFrame differs from Write:\n  write  %x\n  append %x",
				msg.Type(), buf.Bytes(), frame)
		}
	}
}

// TestAppendFrameAppends verifies AppendFrame extends dst in place so
// multiple frames coalesce into one valid stream.
func TestAppendFrameAppends(t *testing.T) {
	msgs := []Message{&Ping{Token: 1}, &Ack{FrameID: 2}, &Hello{BrokerID: 3, Name: "x"}}
	var stream []byte
	for _, m := range msgs {
		stream = AppendFrame(stream, m)
	}
	rd := NewReader(bytes.NewReader(stream))
	for i, want := range msgs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("frame %d mismatch: %#v vs %#v", i, want, got)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

// TestReaderRoundTripAllTypes decodes every message type through the pooled
// Reader and compares against the original.
func TestReaderRoundTripAllTypes(t *testing.T) {
	for _, msg := range allTypesCorpus() {
		t.Run(msg.Type().String(), func(t *testing.T) {
			rd := NewReader(bytes.NewReader(AppendFrame(nil, msg)))
			got, err := rd.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !reflect.DeepEqual(msg, got) {
				t.Errorf("round trip mismatch:\n sent %#v\n got  %#v", msg, got)
			}
		})
	}
}

// TestReaderReusesStructs verifies the ownership contract: the message
// returned by Next is recycled, so frame N's content overwrites frame N-1's,
// and slice fields shrink correctly between frames.
func TestReaderReusesStructs(t *testing.T) {
	big := &Data{
		FrameID: 1, PacketID: 1, PublishedAt: time.Unix(0, 1),
		Dests: []int32{1, 2, 3, 4, 5}, Path: []int32{9, 8, 7},
		Payload: bytes.Repeat([]byte("A"), 512),
	}
	small := &Data{
		FrameID: 2, PacketID: 2, PublishedAt: time.Unix(0, 2),
		Dests: []int32{6}, Payload: []byte("b"),
	}
	stream := AppendFrame(AppendFrame(nil, big), small)
	rd := NewReader(bytes.NewReader(stream))

	first, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	d1, ok := first.(*Data)
	if !ok {
		t.Fatalf("first frame is %T", first)
	}
	if len(d1.Dests) != 5 || len(d1.Payload) != 512 {
		t.Fatalf("first decode wrong: %d dests, %d payload", len(d1.Dests), len(d1.Payload))
	}
	second, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	d2, ok := second.(*Data)
	if !ok {
		t.Fatalf("second frame is %T", second)
	}
	if d2 != d1 {
		t.Error("Reader handed out distinct Data structs; expected recycling")
	}
	if d2.FrameID != 2 || len(d2.Dests) != 1 || d2.Dests[0] != 6 ||
		string(d2.Payload) != "b" || len(d2.Path) != 0 {
		t.Errorf("second decode carries stale state: %+v", d2)
	}
}

// TestReaderZeroAllocSteadyState pins the headline property: after warm-up,
// decoding frames through a Reader does not allocate.
func TestReaderZeroAllocSteadyState(t *testing.T) {
	msg := &Data{
		FrameID: 1, PacketID: 2, Topic: 3, Source: 4,
		PublishedAt: time.Unix(0, 12345), Deadline: time.Second,
		Dests: []int32{1, 2, 3}, Path: []int32{0, 5},
		Payload: bytes.Repeat([]byte("x"), 256),
	}
	frame := AppendFrame(nil, msg)
	src := &loopFrames{frames: frame}
	rd := NewReader(src)
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Reader.Next allocates %.1f objects/frame in steady state, want 0", allocs)
	}
	encodeAllocs := testing.AllocsPerRun(100, func() {
		frame = AppendFrame(frame[:0], msg)
	})
	if encodeAllocs != 0 {
		t.Errorf("AppendFrame allocates %.1f objects/frame with a warm buffer, want 0", encodeAllocs)
	}
}

// TestReaderRejectsMalformed mirrors the Read error tests on the pooled
// path.
func TestReaderRejectsMalformed(t *testing.T) {
	cases := map[string]struct {
		raw  []byte
		want error
	}{
		"unknown type": {[]byte{0, 0, 0, 1, 200}, ErrUnknownType},
		"oversized":    {[]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}, ErrFrameTooLarge},
		"empty frame":  {[]byte{0, 0, 0, 0}, ErrTruncated},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			rd := NewReader(bytes.NewReader(tc.raw))
			if _, err := rd.Next(); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
	t.Run("trailing bytes", func(t *testing.T) {
		raw := AppendFrame(nil, &Ack{FrameID: 9})
		raw = append(raw, 0xAA)
		raw[3]++
		rd := NewReader(bytes.NewReader(raw))
		if _, err := rd.Next(); err == nil {
			t.Error("frame with trailing bytes accepted")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		raw := AppendFrame(nil, &Data{FrameID: 1, PacketID: 2, PublishedAt: time.Unix(0, 0), Payload: []byte("hello")})
		for cut := 6; cut < len(raw)-1; cut += 7 {
			chopped := append([]byte(nil), raw[:cut]...)
			bodyLen := cut - 4
			chopped[0], chopped[1], chopped[2], chopped[3] = 0, 0, byte(bodyLen>>8), byte(bodyLen)
			rd := NewReader(bytes.NewReader(chopped))
			if _, err := rd.Next(); err == nil {
				t.Errorf("cut at %d: truncated frame accepted", cut)
			}
		}
	})
}

// TestReadThenReaderOnSameStream models the broker handshake: the Hello is
// read with the convenience Read, then the connection's remaining frames go
// through a pooled Reader. Nothing may be lost at the switch.
func TestReadThenReaderOnSameStream(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, &Hello{BrokerID: 4, Name: "b"})
	stream = AppendFrame(stream, &Ping{Token: 77})
	src := bytes.NewReader(stream)
	first, err := Read(src)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := first.(*Hello); !ok || h.BrokerID != 4 {
		t.Fatalf("first frame = %#v", first)
	}
	rd := NewReader(src)
	second, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := second.(*Ping); !ok || p.Token != 77 {
		t.Fatalf("second frame = %#v", second)
	}
}

// TestWriteRejectsOversizedFrame keeps the compatibility wrapper's frame
// bound intact on the new encode path.
func TestWriteRejectsOversizedFrame(t *testing.T) {
	msg := &Publish{Payload: make([]byte, MaxFrameSize+1)}
	if err := Write(io.Discard, msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// roundTrip encodes and decodes a message, returning the decoded copy.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write(%v): %v", msg.Type(), err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(%v): %v", msg.Type(), err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	at := time.Unix(0, 1720000000123456789)
	tests := []Message{
		&Hello{BrokerID: 7, Name: "broker-7"},
		&Hello{BrokerID: -1, Name: ""},
		&Data{
			FrameID:     42,
			PacketID:    99,
			Topic:       3,
			Source:      1,
			PublishedAt: at,
			Deadline:    150 * time.Millisecond,
			Dests:       []int32{2, 5, 9},
			Path:        []int32{1, 4, 1},
			Payload:     []byte("position report"),
		},
		&Data{FrameID: 1, PacketID: 2, PublishedAt: time.Unix(0, 0)},
		&Ack{FrameID: 12345678901234},
		&Advert{Topic: 2, Sub: 8, D: 75 * time.Millisecond, R: 0.987, Gone: false},
		&Advert{Topic: 0, Sub: 0, Gone: true},
		&Ping{Token: 555},
		&Pong{Token: 555},
		&Subscribe{Topic: 4, Deadline: 200 * time.Millisecond},
		&Publish{Topic: 4, Deadline: time.Second, Payload: []byte{0, 1, 2, 255}},
		&Publish{Topic: 0, Payload: nil},
		&Deliver{Topic: 4, PacketID: 77, Source: 2, PublishedAt: at, Payload: []byte("x")},
		&Unsubscribe{Topic: 9},
		&StatsRequest{Token: 31337},
		&StatsReply{
			Token: 31337, BrokerID: 2,
			Published: 10, Delivered: 20, Forwarded: 30, Dropped: 1,
			QueueDrops: 6, Redials: 4, Reconnects: 2,
			Sessions: 64, Subscriptions: 100000,
			AckBatches: 12, AckFramesCoalesced: 700, RelayBytesSaved: 9000,
			Neighbors: []NeighborStat{
				{ID: 1, Connected: true, Alpha: 12 * time.Millisecond, Gamma: 0.97},
				{ID: 5, Connected: false, Alpha: 30 * time.Millisecond, Gamma: 0.4},
			},
			Routes: []RouteStat{
				{Topic: 3, Sub: 1, D: 45 * time.Millisecond, R: 0.93, ListLen: 2},
			},
			Shards: []ShardStat{
				{Depth: 0, Enqueued: 1000, Processed: 1000, Inflight: 0},
				{Depth: 12, Enqueued: 5000, Processed: 4988, Inflight: 37},
			},
			Links: []LinkStat{
				{From: 2, To: 1, Alpha: 11 * time.Millisecond, Gamma: 0.98, Epoch: 40},
				{From: 5, To: 2, Alpha: 33 * time.Millisecond, Gamma: 0.5, Epoch: 12},
			},
			Ctrl: CtrlStat{
				Enabled: true, Epoch: 41, Version: 19,
				Rebuilds: 7, Noops: 30, TablesBuilt: 21,
				LinkStatesSent: 88, LinkStatesRecv: 90, StaleDrops: 2,
				ProbesSent: 14, ProbeReplies: 13,
			},
			Wal: WalStat{
				Enabled: true, Appends: 1000, Fsyncs: 40, Bytes: 1 << 20,
				ReplayedFlights: 3, Checkpoints: 2,
			},
		},
		&StatsReply{Token: 1, BrokerID: 0},
		&SessionHello{Subscribers: 100000},
		&SessionHello{},
		&SessionSub{SubID: 12345, Topic: 7, Deadline: 250 * time.Millisecond},
		&SessionUnsub{SubID: 12345, Topic: 7},
		&MuxDeliver{
			Topic: 4, PacketID: 77, Source: 2, PublishedAt: at,
			SubIDs:  []uint32{0, 1, 127, 128, 1 << 20},
			Payload: []byte("shared payload"),
		},
		&MuxDeliver{PacketID: 1, PublishedAt: time.Unix(0, 0)},
		&AckBatch{FrameIDs: []uint64{7}},
		&AckBatch{FrameIDs: []uint64{9, 5, 9, 1 << 63, 0}}, // unsorted, dup, wrap
		&DataBatch{Frames: []Data{
			{
				FrameID: 100, PacketID: 50, Topic: 2, Source: 0,
				PublishedAt: at, Deadline: time.Second,
				Dests: []int32{1, 3}, Path: []int32{0},
				Payload: []byte("a"),
			},
			{
				FrameID: 101, PacketID: 51, Topic: 2, Source: 0,
				PublishedAt: at.Add(time.Microsecond), Deadline: time.Second,
				Dests: []int32{1, 3}, Path: []int32{0},
				Payload: []byte("bb"),
			},
			{
				FrameID: 90, PacketID: 2, Topic: -1, Source: 7,
				PublishedAt: time.Unix(0, 0), Deadline: -time.Millisecond,
				Dests:   []int32{-2147483648, 2147483647},
				Payload: []byte{0xFF},
			},
		}},
		&DataBatch{Frames: []Data{{PublishedAt: time.Unix(0, 0)}}},
		&LinkState{Origin: 4, Epoch: 1720000000, Links: []LinkRecord{
			{To: 0, Alpha: 5 * time.Millisecond, Gamma: 0.999},
			{To: 7, Alpha: 80 * time.Millisecond, Gamma: 0.25},
			{To: 2, Alpha: 0, Gamma: 0}, // withdrawn link
		}},
		&LinkState{Origin: -1, Epoch: 0},
		&Probe{Token: 1 << 63},
		&Probe{Token: 0, Reply: true},
		&WalCustody{Data: Data{
			FrameID: 42, PacketID: 99, Topic: 3, Source: 1,
			PublishedAt: at, Deadline: 150 * time.Millisecond,
			Dests: []int32{2, 5}, Path: []int32{1},
			Payload: []byte("custody"),
		}},
		&WalCustody{Data: Data{PublishedAt: time.Unix(0, 0)}},
		&WalClear{PacketID: 99, Dests: []int32{2, 5}},
		&WalClear{PacketID: 0},
		&WalDeliver{PacketID: 1 << 63},
		&WalMeta{Incarnation: 7},
	}
	for _, msg := range tests {
		t.Run(msg.Type().String(), func(t *testing.T) {
			got := roundTrip(t, msg)
			if !reflect.DeepEqual(msg, got) {
				t.Errorf("round trip mismatch:\n sent %#v\n got  %#v", msg, got)
			}
		})
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Ping{Token: 1},
		&Ack{FrameID: 2},
		&Hello{BrokerID: 3, Name: "x"},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("frame %d mismatch: %#v vs %#v", i, want, got)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 200}) // length 1, type 200
	if _, err := Read(&buf); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, err := Read(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadRejectsEmptyFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := Read(&buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestReadRejectsTruncatedBody(t *testing.T) {
	var full bytes.Buffer
	if err := Write(&full, &Data{FrameID: 1, PacketID: 2, PublishedAt: time.Unix(0, 0), Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Chop the body but fix the length header to the chopped size so the
	// decoder (not ReadFull) sees the truncation.
	for cut := 6; cut < len(raw)-1; cut += 7 {
		chopped := append([]byte(nil), raw[:cut]...)
		bodyLen := cut - 4
		chopped[0], chopped[1], chopped[2], chopped[3] = 0, 0, byte(bodyLen>>8), byte(bodyLen)
		if _, err := Read(bytes.NewReader(chopped)); err == nil {
			t.Errorf("cut at %d: truncated frame accepted", cut)
		}
	}
}

func TestReadRejectsTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Ack{FrameID: 9}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Extend the body by one byte and bump the length.
	raw = append(raw, 0xAA)
	raw[3]++
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("frame with trailing bytes accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeHello: "HELLO", TypeData: "DATA", TypeAck: "ACK",
		TypeAdvert: "ADVERT", TypePing: "PING", TypePong: "PONG",
		TypeSubscribe: "SUBSCRIBE", TypePublish: "PUBLISH", TypeDeliver: "DELIVER",
		TypeSessionHello: "SESSION_HELLO", TypeSessionSub: "SESSION_SUB",
		TypeSessionUnsub: "SESSION_UNSUB", TypeMuxDeliver: "MUX_DELIVER",
		TypeAckBatch: "ACK_BATCH", TypeDataBatch: "DATA_BATCH",
		TypeLinkState: "LINK_STATE", TypeProbe: "PROBE",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Errorf("unknown type string = %q", Type(99).String())
	}
}

// Property: Data frames with arbitrary content survive a round trip.
func TestDataRoundTripProperty(t *testing.T) {
	f := func(frameID, pktID uint64, topic, source int32, ns int64, dl int64, dests, path []int32, payload []byte) bool {
		if len(dests) > 1000 {
			dests = dests[:1000]
		}
		if len(path) > 1000 {
			path = path[:1000]
		}
		in := &Data{
			FrameID:     frameID,
			PacketID:    pktID,
			Topic:       topic,
			Source:      source,
			PublishedAt: time.Unix(0, ns),
			Deadline:    time.Duration(dl),
			Dests:       dests,
			Path:        path,
			Payload:     payload,
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*Data)
		if !ok {
			return false
		}
		if got.FrameID != in.FrameID || got.PacketID != in.PacketID ||
			got.Topic != in.Topic || got.Source != in.Source ||
			!got.PublishedAt.Equal(in.PublishedAt) || got.Deadline != in.Deadline {
			return false
		}
		if len(got.Dests) != len(in.Dests) || len(got.Path) != len(in.Path) || len(got.Payload) != len(in.Payload) {
			return false
		}
		for i := range in.Dests {
			if got.Dests[i] != in.Dests[i] {
				return false
			}
		}
		for i := range in.Path {
			if got.Path[i] != in.Path[i] {
				return false
			}
		}
		return bytes.Equal(got.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDataRoundTrip(b *testing.B) {
	msg := &Data{
		FrameID: 1, PacketID: 2, Topic: 3, Source: 4,
		PublishedAt: time.Unix(0, 12345),
		Deadline:    100 * time.Millisecond,
		Dests:       []int32{1, 2, 3, 4},
		Path:        []int32{0, 5, 0},
		Payload:     bytes.Repeat([]byte("x"), 256),
	}
	b.ReportAllocs()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// TestAckBatchRoundTripExtremes pins the wrapping-delta encoding: unsorted,
// duplicated and boundary frame IDs all survive a round trip through both
// decode paths.
func TestAckBatchRoundTripExtremes(t *testing.T) {
	cases := [][]uint64{
		{0},
		{math.MaxUint64},
		{math.MaxUint64, 0, math.MaxUint64}, // wraps both directions
		{5, 5, 5},                           // duplicates
		{1 << 63, 1, 1 << 62},               // wildly out of order
		{1, 2, 3, 4, 5, 6, 7, 8},            // the common sorted run
	}
	for _, ids := range cases {
		msg := &AckBatch{FrameIDs: ids}
		frame := AppendFrame(nil, msg)
		got, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("Read(%v): %v", ids, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Errorf("round trip changed %v into %#v", ids, got)
		}
		pooled, err := NewReader(bytes.NewReader(frame)).Next()
		if err != nil {
			t.Fatalf("Reader(%v): %v", ids, err)
		}
		if pb := pooled.(*AckBatch); !reflect.DeepEqual(msg.FrameIDs, pb.FrameIDs) {
			t.Errorf("pooled round trip changed %v into %v", ids, pb.FrameIDs)
		}
	}
}

// TestBatchDecodeRejectsHostile pins the decoder's defenses for the batch
// frames: empty batches, counts exceeding the body, overlong varints and
// reconstructed values outside int32 must all error, never panic or
// over-allocate.
func TestBatchDecodeRejectsHostile(t *testing.T) {
	// frame wraps a hand-built body (type byte included) in a length header.
	frame := func(body ...byte) []byte {
		return append(binary.BigEndian.AppendUint32(nil, uint32(len(body))), body...)
	}
	overlong := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	nodeOverflow := append([]byte{byte(TypeDataBatch), 1, 0, 0, 0, 0, 0, 0, 1},
		binary.AppendVarint(nil, int64(math.MaxInt32)+1)...)
	nodeOverflow = append(nodeOverflow, 0, 0)
	topicOverflow := []byte{byte(TypeDataBatch), 1, 0, 0}
	topicOverflow = binary.AppendVarint(topicOverflow, int64(math.MaxInt32)+1)
	topicOverflow = append(topicOverflow, 0, 0, 0, 0, 0, 0)
	cases := map[string][]byte{
		"empty ack batch":        frame(byte(TypeAckBatch), 0),
		"ack count exceeds body": frame(byte(TypeAckBatch), 0xC8, 0x01),
		"ack delta overlong":     frame(append([]byte{byte(TypeAckBatch), 1}, overlong...)...),
		"empty data batch":       frame(byte(TypeDataBatch), 0),
		"data count exceeds":     frame(byte(TypeDataBatch), 0xC8, 0x01),
		"data node overflows":    frame(nodeOverflow...),
		"data topic overflows":   frame(topicOverflow...),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(raw)); err == nil {
				t.Error("Read accepted hostile frame")
			}
			if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
				t.Error("Reader accepted hostile frame")
			}
		})
	}
	// A well-formed count with a missing tail must surface as truncation.
	if _, err := Read(bytes.NewReader(frame(byte(TypeAckBatch), 2, 2))); !errors.Is(err, ErrTruncated) {
		t.Errorf("short ack batch: err = %v, want ErrTruncated", err)
	}
}

// TestBatchFramesAreSmaller pins the point of the exercise: batches of
// same-flow traffic cost a small fraction of the equivalent legacy frames.
func TestBatchFramesAreSmaller(t *testing.T) {
	const n = 64
	ab := &AckBatch{}
	legacyAcks := 0
	for i := uint64(0); i < n; i++ {
		id := uint64(3)<<48 | i // one broker's consecutive frame IDs
		ab.FrameIDs = append(ab.FrameIDs, id)
		legacyAcks += len(AppendFrame(nil, &Ack{FrameID: id}))
	}
	batched := len(AppendFrame(nil, ab))
	if batched*4 > legacyAcks {
		t.Errorf("AckBatch of %d = %dB, want <1/4 of %dB legacy", n, batched, legacyAcks)
	}

	db := &DataBatch{}
	legacyData := 0
	at := time.Unix(0, 1720000000123456789)
	for i := 0; i < 16; i++ {
		d := Data{
			FrameID: 3<<48 | uint64(i), PacketID: 7<<48 | uint64(i),
			Topic: 4, Source: 7, PublishedAt: at.Add(time.Duration(i) * time.Millisecond),
			Deadline: 150 * time.Millisecond,
			Dests:    []int32{2, 5, 9}, Path: []int32{7, 3},
			Payload: bytes.Repeat([]byte("x"), 32),
		}
		db.Frames = append(db.Frames, d)
		legacyData += len(AppendFrame(nil, &d))
	}
	if batched := len(AppendFrame(nil, db)); batched*2 > legacyData {
		t.Errorf("DataBatch of 16 = %dB, want <1/2 of %dB legacy", batched, legacyData)
	}
}

// TestHelloCaps pins the capability-token contract that relay batching
// negotiates through: tokens ride in Hello.Name, legacy names carry none,
// and lookups never match substrings.
func TestHelloCaps(t *testing.T) {
	if got := AddCap("", CapRelayBatch); got != CapRelayBatch {
		t.Errorf("AddCap on empty name = %q", got)
	}
	name := AddCap("broker-3", CapRelayBatch)
	if !HasCap(name, CapRelayBatch) {
		t.Errorf("HasCap(%q) = false after AddCap", name)
	}
	for _, legacy := range []string{"", "broker-3", "cap:relay-batch-v9", "xcap:relay-batch"} {
		if HasCap(legacy, CapRelayBatch) {
			t.Errorf("HasCap(%q) = true, want false", legacy)
		}
	}
	// The token must survive a Hello round trip untouched.
	got := roundTrip(t, &Hello{BrokerID: 3, Name: name}).(*Hello)
	if !HasCap(got.Name, CapRelayBatch) {
		t.Errorf("capability lost in round trip: %q", got.Name)
	}
}

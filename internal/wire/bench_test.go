package wire

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// benchData is a representative broker-to-broker frame: a routed packet copy
// with a few destinations, a short path and a 256-byte payload.
func benchData() *Data {
	return &Data{
		FrameID: 1, PacketID: 2, Topic: 3, Source: 4,
		PublishedAt: time.Unix(0, 12345),
		Deadline:    100 * time.Millisecond,
		Dests:       []int32{1, 2, 3, 4},
		Path:        []int32{0, 5, 0},
		Payload:     bytes.Repeat([]byte("x"), 256),
	}
}

// BenchmarkWireEncode measures the encode path the broker data plane uses to
// put one Data frame on the wire: AppendFrame into a reused buffer.
func BenchmarkWireEncode(b *testing.B) {
	msg := benchData()
	buf := AppendFrame(nil, msg) // pre-grow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], msg)
	}
	if len(buf) == 0 {
		b.Fatal("empty frame")
	}
}

// BenchmarkWireWrite measures the compatibility Write path (pooled buffer,
// one Write call per frame).
func BenchmarkWireWrite(b *testing.B) {
	msg := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// loopFrames replays a pre-encoded frame stream forever, so decode
// benchmarks never run out of input.
type loopFrames struct {
	frames []byte
	off    int
}

func (l *loopFrames) Read(p []byte) (int, error) {
	if l.off == len(l.frames) {
		l.off = 0
	}
	n := copy(p, l.frames[l.off:])
	l.off += n
	return n, nil
}

// BenchmarkWireDecode measures the decode path the broker data plane uses to
// take one Data frame off the wire: Reader.Next with recycled message
// structs and body buffer.
func BenchmarkWireDecode(b *testing.B) {
	frame := AppendFrame(nil, benchData())
	rd := NewReader(&loopFrames{frames: frame})
	if _, err := rd.Next(); err != nil { // warm the reused buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRead measures the compatibility Read path (fresh message per
// frame).
func BenchmarkWireRead(b *testing.B) {
	frame := AppendFrame(nil, benchData())
	src := &loopFrames{frames: frame}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(src); err != nil {
			b.Fatal(err)
		}
	}
}

package main

import (
	"reflect"
	"testing"
)

func TestParseTopics(t *testing.T) {
	cases := []struct {
		in   string
		want []int32
		ok   bool
	}{
		{"5", []int32{5}, true},
		{"1,2,3", []int32{1, 2, 3}, true},
		{" 1 , 2 ,3 ", []int32{1, 2, 3}, true},
		{"7,,8,", []int32{7, 8}, true},
		{"-3,0", []int32{-3, 0}, true},
		{"", nil, false},
		{",,", nil, false},
		{"1,x", nil, false},
		{"99999999999999", nil, false}, // overflows int32
	}
	for _, tc := range cases {
		got, err := parseTopics(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseTopics(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseTopics(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

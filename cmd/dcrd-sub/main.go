// Command dcrd-sub subscribes to a topic on a live DCRD broker and prints
// every delivery with its end-to-end latency and deadline verdict.
//
//	dcrd-sub -broker localhost:7002 -topic 5 -deadline 200ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/broker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-sub: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fs := flag.NewFlagSet("dcrd-sub", flag.ContinueOnError)
	var (
		addr     = fs.String("broker", "localhost:7000", "broker address")
		topic    = fs.Int("topic", 0, "topic to subscribe to")
		deadline = fs.Duration("deadline", 0, "QoS delay requirement (0 = broker default)")
		name     = fs.String("name", "dcrd-sub", "client name")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	c, err := broker.Dial(*addr, *name)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Subscribe(int32(*topic), *deadline); err != nil {
		return err
	}
	log.Printf("subscribed to topic %d at %s (deadline %v)", *topic, *addr, *deadline)

	for d := range c.Receive() {
		verdict := "on time"
		if *deadline > 0 && d.Latency > *deadline {
			verdict = fmt.Sprintf("LATE by %v", (d.Latency - *deadline).Round(time.Millisecond))
		}
		fmt.Printf("topic %d pkt %d from broker %d: %q (latency %v, %s)\n",
			d.Topic, d.PacketID, d.Source, d.Payload, d.Latency.Round(time.Microsecond), verdict)
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("connection lost: %w", err)
	}
	return nil
}

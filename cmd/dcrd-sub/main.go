// Command dcrd-sub subscribes to topics on a live DCRD broker and prints
// every delivery with its end-to-end latency and deadline verdict.
//
// The legacy single-topic mode uses the original per-subscriber protocol:
//
//	dcrd-sub -broker localhost:7002 -topic 5 -deadline 200ms
//
// With -topics, the edge-tier multiplexed protocol is used instead: the
// topics are spread over -sessions mux sessions, and the broker aggregates
// deliveries per (topic, session):
//
//	dcrd-sub -broker localhost:7002 -topics 1,2,3 -sessions 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-sub: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fs := flag.NewFlagSet("dcrd-sub", flag.ContinueOnError)
	var (
		addr     = fs.String("broker", "localhost:7000", "broker address")
		topic    = fs.Int("topic", 0, "topic to subscribe to (legacy single-topic mode)")
		topics   = fs.String("topics", "", "comma-separated topics (multiplexed session mode)")
		sessions = fs.Int("sessions", 1, "mux sessions to spread -topics over")
		deadline = fs.Duration("deadline", 0, "QoS delay requirement (0 = broker default)")
		name     = fs.String("name", "dcrd-sub", "client name")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *topics != "" {
		list, err := parseTopics(*topics)
		if err != nil {
			return err
		}
		return runMux(*addr, *name, list, *sessions, *deadline)
	}
	return runLegacy(*addr, *name, int32(*topic), *deadline)
}

// parseTopics splits a comma-separated topic list ("1,2,3", blanks
// tolerated) into topic IDs.
func parseTopics(s string) ([]int32, error) {
	var out []int32
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad topic %q in -topics: %v", part, err)
		}
		out = append(out, int32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-topics %q holds no topics", s)
	}
	return out, nil
}

// runLegacy is the original single-topic subscriber, wire-compatible with
// pre-session brokers: Hello, one Subscribe, per-subscriber Deliver frames.
func runLegacy(addr, name string, topic int32, deadline time.Duration) error {
	c, err := broker.Dial(addr, name)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Subscribe(topic, deadline); err != nil {
		return err
	}
	log.Printf("subscribed to topic %d at %s (deadline %v)", topic, addr, deadline)

	for d := range c.Receive() {
		printDelivery(d.Topic, d.PacketID, d.Source, d.Payload, d.Latency, 1, deadline)
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("connection lost: %w", err)
	}
	return nil
}

// runMux spreads the topics over n multiplexed sessions (topic i lands in
// session i%n with subscriber ID i) and prints aggregated deliveries.
func runMux(addr, name string, topics []int32, n int, deadline time.Duration) error {
	if n < 1 {
		n = 1
	}
	if n > len(topics) {
		n = len(topics)
	}
	var printMu sync.Mutex
	handler := func(m *wire.MuxDeliver) {
		printMu.Lock()
		defer printMu.Unlock()
		printDelivery(m.Topic, m.PacketID, m.Source, m.Payload,
			time.Since(m.PublishedAt), len(m.SubIDs), deadline)
	}
	ss := make([]*broker.Session, n)
	for i := range ss {
		s, err := broker.DialSession(addr, fmt.Sprintf("%s-%d", name, i), uint32(len(topics)/n+1), handler)
		if err != nil {
			return err
		}
		defer s.Close()
		ss[i] = s
	}
	for i, topic := range topics {
		s := ss[i%n]
		if err := s.Subscribe(uint32(i), topic, deadline); err != nil {
			return err
		}
	}
	for _, s := range ss {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	log.Printf("subscribed to %d topics over %d sessions at %s (deadline %v)", len(topics), n, addr, deadline)

	for _, s := range ss {
		<-s.Done()
	}
	for _, s := range ss {
		if err := s.Err(); err != nil {
			return fmt.Errorf("connection lost: %w", err)
		}
	}
	return nil
}

func printDelivery(topic int32, pkt uint64, source int32, payload []byte, latency time.Duration, fanout int, deadline time.Duration) {
	verdict := "on time"
	if deadline > 0 && latency > deadline {
		verdict = fmt.Sprintf("LATE by %v", (latency - deadline).Round(time.Millisecond))
	}
	suffix := ""
	if fanout > 1 {
		suffix = fmt.Sprintf(" x%d subscribers", fanout)
	}
	fmt.Printf("topic %d pkt %d from broker %d: %q (latency %v, %s)%s\n",
		topic, pkt, source, payload, latency.Round(time.Microsecond), verdict, suffix)
}

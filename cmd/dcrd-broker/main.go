// Command dcrd-broker runs one live DCRD broker node.
//
// A three-broker line overlay on one machine:
//
//	dcrd-broker -id 0 -listen :7000 -neighbor 1=localhost:7001
//	dcrd-broker -id 1 -listen :7001 -neighbor 0=localhost:7000 -neighbor 2=localhost:7002
//	dcrd-broker -id 2 -listen :7002 -neighbor 1=localhost:7001
//
// Then publish and subscribe with dcrd-pub / dcrd-sub.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
)

// neighborFlags collects repeated -neighbor id=addr flags.
type neighborFlags map[int]string

func (n neighborFlags) String() string {
	parts := make([]string, 0, len(n))
	for id, addr := range n {
		parts = append(parts, fmt.Sprintf("%d=%s", id, addr))
	}
	return strings.Join(parts, ",")
}

func (n neighborFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	i, err := strconv.Atoi(id)
	if err != nil {
		return fmt.Errorf("bad neighbor id in %q: %w", v, err)
	}
	n[i] = addr
	return nil
}

func main() {
	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	if err := run(logger); err != nil {
		logger.Fatalf("dcrd-broker: %v", err)
	}
}

func run(logger *log.Logger) error {
	fs := flag.NewFlagSet("dcrd-broker", flag.ContinueOnError)
	neighbors := neighborFlags{}
	var (
		id         = fs.Int("id", 0, "broker ID (unique in the overlay)")
		listen     = fs.String("listen", ":7000", "TCP listen address for brokers and clients")
		m          = fs.Int("m", 1, "transmissions per neighbor before failover")
		deadline   = fs.Duration("default-deadline", time.Second, "deadline applied when clients do not specify one")
		verbose    = fs.Bool("v", false, "log routing and forwarding events")
		configPath = fs.String("config", "", "overlay JSON file; -id selects this broker (overrides -listen/-neighbor)")
		dataDir    = fs.String("datadir", "", "directory for the crash-durable custody WAL; empty keeps custody in memory")
	)
	fs.Var(neighbors, "neighbor", "neighbor broker as id=addr (repeatable)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var cfg broker.Config
	if *configPath != "" {
		oc, err := broker.LoadOverlay(*configPath)
		if err != nil {
			return err
		}
		cfg, err = oc.BrokerConfig(*id)
		if err != nil {
			return err
		}
		if cfg.M == 0 {
			cfg.M = *m
		}
		if cfg.DefaultDeadline == 0 {
			cfg.DefaultDeadline = *deadline
		}
	} else {
		cfg = broker.Config{
			ID:              *id,
			Listen:          *listen,
			Neighbors:       neighbors,
			M:               *m,
			DefaultDeadline: *deadline,
		}
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}
	if *verbose {
		cfg.Logger = logger
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}
	if err := b.Start(); err != nil {
		return err
	}
	logger.Printf("broker %d listening on %s with %d neighbors", cfg.ID, b.Addr(), len(cfg.Neighbors))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down; stats: %+v", b.Stats())
	return b.Close()
}

// Command dcrd-loadgen drives a massive-subscriber edge load against a live
// DCRD broker: N simulated subscribers (default 100k) spread over M
// multiplexed sessions, an open-loop publisher, and publish→deliver latency
// percentiles from log-bucketed histograms.
//
//	dcrd-loadgen -broker localhost:7000 -subscribers 100000 -sessions 100 -rate 1000 -duration 10s
//	dcrd-loadgen -spawn -subscribers 1000 -sessions 8 -duration 2s -rate 200 -strict
//
// The summary line on stdout is testing.B-compatible and feeds benchjson:
//
//	BenchmarkEdgeLoadgen/subs=100000/sessions=100 1 812345 ns/op 1593201.0 deliveries/sec 0.61 p50_ms ...
//
// Open-loop means the publisher paces itself by wall clock alone: a broker
// that falls behind accumulates latency instead of silently slowing the
// generator down (closed-loop coordinated omission would hide exactly the
// tail this tool exists to measure).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/broker"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-loadgen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// lat histograms are log-bucketed: bucket i covers latencies around
// latBase^i nanoseconds, so every bucket is ~5% wide — enough resolution
// for percentile reporting without per-sample storage.
const (
	latBase    = 1.05
	latBuckets = 700 // latBase^700 ns ≈ 2 years; effectively unbounded
)

// hist is one goroutine's latency histogram (no locking; merge at the end).
type hist struct {
	buckets [latBuckets]uint64
	count   uint64
}

func (h *hist) add(d time.Duration, weight uint64) {
	ns := float64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	i := int(math.Log(ns) / math.Log(latBase))
	if i < 0 {
		i = 0
	}
	if i >= latBuckets {
		i = latBuckets - 1
	}
	h.buckets[i] += weight
	h.count += weight
}

func (h *hist) merge(o *hist) {
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
}

// quantile returns the latency at fraction q (0..1): the geometric midpoint
// of the bucket holding the q-th sample.
func (h *hist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			return time.Duration(math.Pow(latBase, float64(i)+0.5))
		}
	}
	return time.Duration(math.Pow(latBase, latBuckets))
}

// sessionStats is one session's delivery accounting, written only by that
// session's read goroutine while the run is live.
type sessionStats struct {
	hist      hist
	delivered uint64
	frames    uint64
	_         [64]byte // pad out false sharing between sessions
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcrd-loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("broker", "localhost:7000", "broker address")
		spawn       = fs.Bool("spawn", false, "run an in-process broker instead of dialing one (self-contained smoke runs)")
		subscribers = fs.Int("subscribers", 100000, "simulated logical subscribers")
		sessions    = fs.Int("sessions", 100, "multiplexed sessions to spread subscribers over")
		topics      = fs.Int("topics", 16, "distinct topics, striped across every session")
		rate        = fs.Int("rate", 1000, "publishes per second (open loop)")
		duration    = fs.Duration("duration", 10*time.Second, "publishing window")
		payload     = fs.Int("payload", 128, "payload bytes per publish")
		deadline    = fs.Duration("deadline", time.Second, "QoS delay requirement for subscriptions and publishes")
		drain       = fs.Duration("drain", time.Second, "post-run wait for in-flight deliveries")
		strict      = fs.Bool("strict", false, "exit non-zero unless >=99% of expected deliveries arrived")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *subscribers < 1 || *sessions < 1 || *topics < 1 || *rate < 1 {
		return fmt.Errorf("subscribers, sessions, topics and rate must all be >= 1")
	}
	if *sessions > *subscribers {
		*sessions = *subscribers
	}

	if *spawn {
		b, err := broker.New(broker.Config{ID: 0, Listen: "127.0.0.1:0"})
		if err != nil {
			return err
		}
		if err := b.Start(); err != nil {
			return err
		}
		defer b.Close()
		*addr = b.Addr()
		log.Printf("spawned in-process broker at %s", *addr)
	}

	// Register N logical subscribers over M sessions: subscriber i lands in
	// session i%M with the session-local ID i/M (dense IDs keep the
	// broker's per-session bitsets small) on topic (i/M)%T — striping by
	// the session-local index, not i, so every session holds subscribers on
	// every topic and each publish genuinely fans out across all sessions.
	stats := make([]*sessionStats, *sessions)
	ss := make([]*broker.Session, *sessions)
	start := time.Now()
	for s := 0; s < *sessions; s++ {
		st := &sessionStats{}
		stats[s] = st
		sess, err := broker.DialSession(*addr, fmt.Sprintf("loadgen-%d", s),
			uint32(*subscribers / *sessions+1), func(m *wire.MuxDeliver) {
				n := uint64(len(m.SubIDs))
				st.hist.add(time.Since(m.PublishedAt), n)
				st.delivered += n
				st.frames++
			})
		if err != nil {
			return fmt.Errorf("session %d: %w", s, err)
		}
		defer sess.Close()
		ss[s] = sess
	}
	subsPerTopic := make([]uint64, *topics)
	for i := 0; i < *subscribers; i++ {
		topic := (i / *sessions) % *topics
		subsPerTopic[topic]++
		if err := ss[i%*sessions].Subscribe(uint32(i / *sessions), int32(topic), *deadline); err != nil {
			return fmt.Errorf("subscribe %d: %w", i, err)
		}
	}
	for _, sess := range ss {
		if err := sess.Flush(); err != nil {
			return err
		}
	}

	// Wait until the broker's subscription gauge covers the registration
	// (works against remote brokers too), then give the snapshot flusher a
	// beat to publish the final ledger.
	mon, err := broker.Dial(*addr, "loadgen-mon")
	if err != nil {
		return err
	}
	defer mon.Close()
	regDeadline := time.Now().Add(60 * time.Second)
	for {
		reply, err := mon.Stats(5 * time.Second)
		if err != nil {
			return err
		}
		if reply.Subscriptions >= uint64(*subscribers) {
			break
		}
		if time.Now().After(regDeadline) {
			return fmt.Errorf("only %d/%d subscriptions registered after 60s", reply.Subscriptions, *subscribers)
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	log.Printf("registered %d subscribers over %d sessions in %v",
		*subscribers, *sessions, time.Since(start).Round(time.Millisecond))

	// Open-loop publishing: every tick, catch up to rate*elapsed publishes
	// regardless of how the broker is doing.
	pub, err := broker.Dial(*addr, "loadgen-pub")
	if err != nil {
		return err
	}
	defer pub.Close()
	body := make([]byte, *payload)
	var published uint64
	var expected uint64 // logical deliveries the publishes so far imply
	pubStart := time.Now()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	var sendErrs uint64
	for now := range ticker.C {
		elapsed := now.Sub(pubStart)
		if elapsed > *duration {
			break
		}
		due := uint64(elapsed.Seconds() * float64(*rate))
		for ; published < due; published++ {
			topic := int32(published % uint64(*topics))
			if err := pub.Publish(topic, *deadline, body); err != nil {
				sendErrs++
				if sendErrs > 100 {
					return fmt.Errorf("publish: %w", err)
				}
				continue
			}
			expected += subsPerTopic[topic]
		}
	}
	pubElapsed := time.Since(pubStart)
	time.Sleep(*drain)

	// Close the sessions before reading their stats: each read goroutine
	// ends, so the per-session histograms are quiescent.
	for _, sess := range ss {
		_ = sess.Close()
	}
	var merged hist
	var delivered, frames uint64
	for _, st := range stats {
		merged.merge(&st.hist)
		delivered += st.delivered
		frames += st.frames
	}

	ratio := 1.0
	if expected > 0 {
		ratio = float64(delivered) / float64(expected)
	}
	dps := float64(delivered) / pubElapsed.Seconds()
	ms := func(q float64) float64 { return float64(merged.quantile(q)) / 1e6 }
	log.Printf("published %d packets in %v (%d send errors); %d logical deliveries over %d frames (%.2f subscribers/frame), ratio %.4f",
		published, pubElapsed.Round(time.Millisecond), sendErrs, delivered, frames,
		float64(delivered)/math.Max(float64(frames), 1), ratio)

	// The testing.B-compatible summary, ingestible by cmd/benchjson. ns/op
	// is the MEAN publish→deliver latency (approximated from the histogram
	// midpoints), the percentiles carry the tail.
	var meanNs float64
	if merged.count > 0 {
		var sum float64
		for i, n := range merged.buckets {
			sum += float64(n) * math.Pow(latBase, float64(i)+0.5)
		}
		meanNs = sum / float64(merged.count)
	}
	fmt.Printf("BenchmarkEdgeLoadgen/subs=%d/sessions=%d 1 %.0f ns/op %.1f deliveries/sec %.3f p50_ms %.3f p90_ms %.3f p99_ms %.3f p999_ms %.4f delivered_ratio\n",
		*subscribers, *sessions, meanNs, dps, ms(0.50), ms(0.90), ms(0.99), ms(0.999), ratio)

	if *strict {
		if delivered == 0 {
			return fmt.Errorf("strict: no deliveries arrived")
		}
		if ratio < 0.99 {
			return fmt.Errorf("strict: delivered ratio %.4f < 0.99 (%d of %d expected)", ratio, delivered, expected)
		}
	}
	return nil
}

package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/wire"
)

func TestMonAgainstLiveBroker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := broker.New(broker.Config{ID: 3, Listen: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var sb strings.Builder
	if err := run([]string{"-broker", ln.Addr().String(), "-timeout", "3s"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "broker 3: published 0") {
		t.Errorf("mon output = %q", sb.String())
	}
}

func TestMonUnreachableBroker(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-broker", "127.0.0.1:1"}, &sb); err == nil {
		t.Error("unreachable broker accepted")
	}
}

func TestPrintStatsFull(t *testing.T) {
	var sb strings.Builder
	printStats(&sb, &wire.StatsReply{
		BrokerID: 1, Published: 2, Delivered: 3, Forwarded: 4, Dropped: 5,
		QueueDrops: 6, Redials: 7, Reconnects: 8,
		AckBatches: 11, AckFramesCoalesced: 640, RelayBytesSaved: 7680,
		Shards: []wire.ShardStat{
			{Depth: 0, Enqueued: 100, Processed: 100, Inflight: 0},
			{Depth: 3, Enqueued: 250, Processed: 247, Inflight: 9},
		},
		Neighbors: []wire.NeighborStat{
			{ID: 2, Connected: true, Alpha: 15 * time.Millisecond, Gamma: 0.98},
			{ID: 4, Connected: false, Alpha: 20 * time.Millisecond, Gamma: 0.5},
		},
		Routes: []wire.RouteStat{
			{Topic: 7, Sub: 2, D: 30 * time.Millisecond, R: 0.97, ListLen: 2},
		},
		Ctrl: wire.CtrlStat{
			Enabled: true, Epoch: 41, Version: 19, Rebuilds: 7, Noops: 30,
			TablesBuilt: 21, LinkStatesSent: 88, LinkStatesRecv: 90,
			StaleDrops: 2, ProbesSent: 14, ProbeReplies: 13,
		},
		Links: []wire.LinkStat{
			{From: 1, To: 2, Alpha: 11 * time.Millisecond, Gamma: 0.97, Epoch: 40},
		},
	})
	out := sb.String()
	for _, want := range []string{
		"broker 1: published 2, delivered 3, forwarded 4, dropped 5",
		"queue drops 6, redials 7, reconnects 8",
		"relay aggregation: 11 ack batches (640 acks coalesced), 7680 bytes saved",
		"shards:", "enqueued 250", "processed 247", "inflight 9",
		"up", "DOWN", "gamma 0.980",
		"topic 7", "list 2",
		"ctrl: epoch 41, db version 19, rebuilds 7 (noops 30, tables built 21)",
		"link-state sent 88 recv 90 (stale 2), probes sent 14 replied 13",
		"links (gossiped estimates, directed):",
		"1 -> 2   alpha 11ms", "epoch 40",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

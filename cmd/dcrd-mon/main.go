// Command dcrd-mon inspects a live DCRD broker: counters, per-neighbor
// link estimates (alpha from pings, gamma from ACK outcomes) and the
// broker's current <d, r> routing table — the live view of Algorithm 1.
//
//	dcrd-mon -broker localhost:7000
//	dcrd-mon -broker localhost:7000 -watch 2s
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/broker"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-mon: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dcrd-mon", flag.ContinueOnError)
	var (
		addr    = fs.String("broker", "localhost:7000", "broker address")
		watch   = fs.Duration("watch", 0, "refresh continuously at this interval (0 = once)")
		timeout = fs.Duration("timeout", 3*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := broker.Dial(*addr, "dcrd-mon")
	if err != nil {
		return err
	}
	defer c.Close()

	for {
		reply, err := c.Stats(*timeout)
		if err != nil {
			return err
		}
		printStats(out, reply)
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
		fmt.Fprintln(out)
	}
}

func printStats(out io.Writer, r *wire.StatsReply) {
	fmt.Fprintf(out, "broker %d: published %d, delivered %d, forwarded %d, dropped %d\n",
		r.BrokerID, r.Published, r.Delivered, r.Forwarded, r.Dropped)
	fmt.Fprintf(out, "  queue drops %d, redials %d, reconnects %d\n",
		r.QueueDrops, r.Redials, r.Reconnects)
	fmt.Fprintf(out, "  edge: %d mux sessions, %d subscriptions\n",
		r.Sessions, r.Subscriptions)
	fmt.Fprintf(out, "  relay aggregation: %d ack batches (%d acks coalesced), %d bytes saved\n",
		r.AckBatches, r.AckFramesCoalesced, r.RelayBytesSaved)
	if r.Wal.Enabled {
		fmt.Fprintf(out, "  wal: %d appends, %d fsyncs, %d bytes, %d replayed flights, %d checkpoints\n",
			r.Wal.Appends, r.Wal.Fsyncs, r.Wal.Bytes, r.Wal.ReplayedFlights, r.Wal.Checkpoints)
	}
	if len(r.Shards) > 0 {
		fmt.Fprintln(out, "shards:")
		for i, sh := range r.Shards {
			fmt.Fprintf(out, "  %3d  depth %-5d enqueued %-10d processed %-10d inflight %d\n",
				i, sh.Depth, sh.Enqueued, sh.Processed, sh.Inflight)
		}
	}
	if len(r.Neighbors) > 0 {
		fmt.Fprintln(out, "neighbors:")
		for _, n := range r.Neighbors {
			state := "up"
			if !n.Connected {
				state = "DOWN"
			}
			fmt.Fprintf(out, "  %3d  %-4s alpha %-12v gamma %.3f\n",
				n.ID, state, n.Alpha.Round(10*time.Microsecond), n.Gamma)
		}
	}
	if r.Ctrl.Enabled {
		fmt.Fprintf(out, "ctrl: epoch %d, db version %d, rebuilds %d (noops %d, tables built %d)\n",
			r.Ctrl.Epoch, r.Ctrl.Version, r.Ctrl.Rebuilds, r.Ctrl.Noops, r.Ctrl.TablesBuilt)
		fmt.Fprintf(out, "  link-state sent %d recv %d (stale %d), probes sent %d replied %d\n",
			r.Ctrl.LinkStatesSent, r.Ctrl.LinkStatesRecv, r.Ctrl.StaleDrops,
			r.Ctrl.ProbesSent, r.Ctrl.ProbeReplies)
	}
	if len(r.Links) > 0 {
		fmt.Fprintln(out, "links (gossiped estimates, directed):")
		for _, l := range r.Links {
			fmt.Fprintf(out, "  %3d -> %-3d alpha %-12v gamma %.3f  epoch %d\n",
				l.From, l.To, l.Alpha.Round(10*time.Microsecond), l.Gamma, l.Epoch)
		}
	}
	if len(r.Routes) > 0 {
		fmt.Fprintln(out, "routes (topic, subscriber broker) -> <d, r>, sending-list size:")
		for _, rt := range r.Routes {
			fmt.Fprintf(out, "  topic %-4d sub %-4d d %-12v r %.3f  list %d\n",
				rt.Topic, rt.Sub, rt.D.Round(10*time.Microsecond), rt.R, rt.ListLen)
		}
	}
}

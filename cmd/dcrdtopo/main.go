// Command dcrdtopo generates and inspects overlay topologies: it prints the
// link list, per-node degrees, diameter statistics and (optionally) the
// Yen top-k shortest paths between a node pair — the inputs every routing
// approach in this repository consumes.
//
//	dcrdtopo -nodes 20 -degree 5 -seed 3
//	dcrdtopo -nodes 20 -degree 5 -paths 0,7 -k 5
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dcrdtopo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dcrdtopo", flag.ContinueOnError)
	var (
		nodes  = fs.Int("nodes", 20, "overlay size")
		degree = fs.Int("degree", 0, "node degree; 0 = full mesh")
		seed   = fs.Uint64("seed", 1, "generator seed")
		links  = fs.Bool("links", false, "print the full link list")
		paths  = fs.String("paths", "", "print k shortest paths between a pair, e.g. -paths 0,7")
		k      = fs.Int("k", 5, "how many paths to print with -paths")
		waxman = fs.String("waxman", "", "build a Waxman graph instead, as \"alpha,beta\" (e.g. 0.9,0.5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewPCG(*seed, *seed^0xcafef00d))
	var (
		g   *topology.Graph
		err error
	)
	switch {
	case *waxman != "":
		alpha, beta, perr := parseWaxman(*waxman)
		if perr != nil {
			return perr
		}
		g, err = topology.Waxman(*nodes, alpha, beta, topology.DefaultDelayRange(), rng)
	case *degree == 0 || *degree == *nodes-1:
		g, err = topology.FullMesh(*nodes, topology.DefaultDelayRange(), rng)
	default:
		g, err = topology.RandomRegular(*nodes, *degree, topology.DefaultDelayRange(), rng)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "topology: %d nodes, %d links, connected=%v\n", g.N(), g.NumEdges(), g.Connected())

	// Delay-diameter and hop-diameter across all pairs.
	var maxDelay time.Duration
	maxHops := 0
	var sumDelay time.Duration
	pairs := 0
	for u := 0; u < g.N(); u++ {
		dj := topology.Dijkstra(g, u, nil)
		bf := topology.BFS(g, u)
		for v := u + 1; v < g.N(); v++ {
			if dj.Dist[v] == topology.Infinite {
				continue
			}
			pairs++
			sumDelay += dj.Dist[v]
			if dj.Dist[v] > maxDelay {
				maxDelay = dj.Dist[v]
			}
			p, err := bf.PathTo(v)
			if err == nil && p.Hops() > maxHops {
				maxHops = p.Hops()
			}
		}
	}
	if pairs > 0 {
		fmt.Fprintf(out, "shortest-path delay: mean %v, max %v; hop diameter %d\n",
			(sumDelay / time.Duration(pairs)).Round(time.Microsecond), maxDelay, maxHops)
	}

	if *links {
		for _, l := range g.Links() {
			fmt.Fprintf(out, "  %3d - %-3d %v\n", l.From, l.To, l.Delay)
		}
	}

	if *paths != "" {
		parts := strings.Split(*paths, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-paths wants \"src,dst\", got %q", *paths)
		}
		src, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("bad source in -paths: %w", err)
		}
		dst, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("bad destination in -paths: %w", err)
		}
		ps, err := topology.KShortestPaths(g, src, dst, *k)
		if err != nil {
			return fmt.Errorf("paths %d->%d: %w", src, dst, err)
		}
		fmt.Fprintf(out, "top %d shortest-delay paths %d -> %d:\n", len(ps), src, dst)
		for i, p := range ps {
			d, err := p.Delay(g)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %d. %v  (%v, %d hops)\n", i+1, []int(p), d, p.Hops())
		}
	}
	return nil
}

// parseWaxman parses "alpha,beta".
func parseWaxman(s string) (alpha, beta float64, err error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("-waxman wants \"alpha,beta\", got %q", s)
	}
	alpha, err = strconv.ParseFloat(strings.TrimSpace(a), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad alpha in -waxman: %w", err)
	}
	beta, err = strconv.ParseFloat(strings.TrimSpace(b), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad beta in -waxman: %w", err)
	}
	return alpha, beta, nil
}

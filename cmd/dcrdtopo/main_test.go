package main

import (
	"strings"
	"testing"
)

func TestTopoMesh(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nodes", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "8 nodes, 28 links, connected=true") {
		t.Errorf("mesh summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "hop diameter 1") {
		t.Errorf("mesh hop diameter wrong:\n%s", out)
	}
}

func TestTopoDegreeWithLinksAndPaths(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nodes", "12", "-degree", "4", "-links", "-paths", "0,5", "-k", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "12 nodes, 24 links") {
		t.Errorf("degree summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "shortest-delay paths 0 -> 5") {
		t.Errorf("paths section missing:\n%s", out)
	}
	// The link list should have exactly 24 link lines.
	links := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " - ") {
			links++
		}
	}
	if links != 24 {
		t.Errorf("printed %d links, want 24", links)
	}
}

func TestTopoBadArgs(t *testing.T) {
	tests := [][]string{
		{"-paths", "zzz"},
		{"-paths", "1"},
		{"-paths", "a,b"},
		{"-nodes", "5", "-degree", "3"}, // odd n*degree
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTopoWaxman(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nodes", "25", "-waxman", "0.9,0.5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "25 nodes") || !strings.Contains(sb.String(), "connected=true") {
		t.Errorf("waxman summary wrong:\n%s", sb.String())
	}
	for _, bad := range []string{"0.9", "x,y", "0.9,", ",0.5"} {
		var sb strings.Builder
		if err := run([]string{"-waxman", bad}, &sb); err == nil {
			t.Errorf("-waxman %q accepted", bad)
		}
	}
}

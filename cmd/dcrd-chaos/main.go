// Command dcrd-chaos runs a live in-process broker overlay through the
// deterministic chaos layer (internal/chaos) and reports whether delivery
// survived: every published packet must reach every subscriber exactly
// once, and shutting the overlay down must leak neither goroutines nor
// pooled engine objects. It is the soak test in executable form — handy for
// longer runs, other seeds and fault mixes than CI budgets allow.
//
// With -datadir every broker journals custody to a write-ahead log under
// the given root, and -crash-mid-traffic makes the crash an abrupt one —
// no drain first, un-fsynced state lost — which exactly-once must survive
// via WAL replay and upstream retransmission (DESIGN.md §16).
//
//	dcrd-chaos -seed 7 -packets 300
//	dcrd-chaos -brokers 10 -pf 0.3 -loss 0.1 -crash=false
//	dcrd-chaos -datadir /tmp/dcrd-wal -crash-mid-traffic
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
)

const topic = 42

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-chaos: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dcrd-chaos", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "chaos seed; same seed, same fault schedule")
		nBrok    = fs.Int("brokers", 8, "overlay size (even, >= 6)")
		packets  = fs.Int("packets", 90, "packets to publish (split into three phases)")
		pace     = fs.Duration("pace", 4*time.Millisecond, "gap between publishes")
		epoch    = fs.Duration("epoch", 150*time.Millisecond, "partition epoch length")
		pf       = fs.Float64("pf", 0.2, "per-epoch link failure probability (paper's Pf)")
		loss     = fs.Float64("loss", 0.05, "per-frame loss probability (Pl)")
		resets   = fs.Float64("resets", 0.004, "per-frame connection reset probability")
		crash    = fs.Bool("crash", true, "crash and restart one relay broker mid-run")
		dataDir  = fs.String("datadir", "", "root for per-broker WAL directories; empty keeps custody in memory")
		crashMid = fs.Bool("crash-mid-traffic", false, "crash the relay without draining first (requires -datadir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nBrok < 6 || *nBrok%2 != 0 {
		return fmt.Errorf("-brokers must be even and >= 6, got %d", *nBrok)
	}
	if *packets < 3 {
		return fmt.Errorf("-packets must be >= 3, got %d", *packets)
	}
	if *crashMid && *dataDir == "" {
		return fmt.Errorf("-crash-mid-traffic needs -datadir: without durable custody, " +
			"a mid-traffic crash legitimately loses ACKed packets")
	}

	cn := chaos.NewNetwork(chaos.Config{
		Seed:  *seed,
		Epoch: *epoch,
		Default: chaos.Faults{
			PartitionProb: *pf,
			DropProb:      *loss,
			DupProb:       0.05,
			CorruptProb:   0.002,
			ResetProb:     *resets,
			Delay:         200 * time.Microsecond,
			DelayJitter:   time.Millisecond,
		},
	})
	defer cn.Close()
	cn.SetActive(false) // converge clean, then churn

	ov, err := buildOverlay(cn, *nBrok, *dataDir)
	if err != nil {
		return err
	}
	defer ov.closeAll()

	// Roles: publisher on broker 0, subscribers either side of the relay at
	// n/2, which is the crash victim.
	subAt := []int{*nBrok/2 - 1, *nBrok/2 + 1}
	victim := *nBrok / 2

	cols := make([]*collector, len(subAt))
	for i, at := range subAt {
		c, err := broker.Dial(ov.addrs[at], fmt.Sprintf("sub-%d", at))
		if err != nil {
			return err
		}
		defer c.Close()
		if err := c.Subscribe(topic, 30*time.Second); err != nil {
			return err
		}
		cols[i] = newCollector(c)
	}
	if err := ov.awaitRoutes(subAt, 15*time.Second); err != nil {
		return err
	}
	pub, err := broker.Dial(ov.addrs[0], "pub")
	if err != nil {
		return err
	}
	defer pub.Close()

	cn.SetActive(true)
	start := time.Now()
	phase := *packets / 3

	publish := func(from, to int) error {
		for s := from; s < to; s++ {
			var payload [4]byte
			binary.BigEndian.PutUint32(payload[:], uint32(s))
			if err := pub.Publish(topic, 30*time.Second, payload[:]); err != nil {
				return fmt.Errorf("publish %d: %w", s, err)
			}
			time.Sleep(*pace)
		}
		return nil
	}
	drained := func(n int) bool {
		for _, col := range cols {
			if !col.have(n) {
				return false
			}
		}
		return true
	}

	if err := publish(0, phase); err != nil {
		return err
	}
	if *crash {
		if *crashMid {
			// Durable custody: crash straight into the in-flight traffic,
			// losing the WAL's un-fsynced tail. Un-ACKed packets are still
			// the upstream's responsibility; fsynced custody replays.
			fmt.Fprintf(out, "crashing broker %d mid-traffic\n", victim)
			if err := ov.brokers[victim].Crash(); err != nil {
				return err
			}
		} else {
			// Drain before the crash: without -datadir, hop-by-hop custody
			// is in-memory, so a crashing broker may legitimately lose
			// packets it has ACKed.
			if !waitUntil(60*time.Second, func() bool { return drained(phase) }) {
				return fmt.Errorf("phase A never drained: %s", deliveryReport(cols, phase))
			}
			fmt.Fprintf(out, "crashing broker %d\n", victim)
			if err := ov.brokers[victim].Close(); err != nil {
				return err
			}
		}
		if err := publish(phase, 2*phase); err != nil {
			return err
		}
		fmt.Fprintf(out, "restarting broker %d\n", victim)
		if err := ov.restart(cn, victim); err != nil {
			return err
		}
	} else {
		if err := publish(phase, 2*phase); err != nil {
			return err
		}
	}
	if err := publish(2*phase, *packets); err != nil {
		return err
	}

	cn.SetActive(false) // heal and require convergence
	if !waitUntil(60*time.Second, func() bool { return drained(*packets) }) {
		return fmt.Errorf("overlay never converged after healing: %s", deliveryReport(cols, *packets))
	}
	if !waitUntil(60*time.Second, ov.poolsDrained) {
		return fmt.Errorf("engine pools never drained")
	}
	elapsed := time.Since(start)

	var failed bool
	for i, col := range cols {
		if d := col.duplicates(); len(d) > 0 {
			fmt.Fprintf(out, "FAIL: subscriber %d saw duplicates %v\n", i, d)
			failed = true
		}
	}
	cs := cn.Stats()
	fmt.Fprintf(out, "chaos: %d frames seen, %d dropped, %d duplicated, %d corrupted, %d resets, %d stalls\n",
		cs.FramesSeen, cs.FramesDropped, cs.FramesDuped, cs.FramesCorrupt, cs.Resets, cs.Stalls)
	for _, b := range ov.brokers {
		st := b.Stats()
		fmt.Fprintf(out, "broker %d: published %d, delivered %d, forwarded %d, dropped %d, queue drops %d, redials %d, reconnects %d\n",
			b.ID(), st.Published, st.Delivered, st.Forwarded, st.Dropped,
			st.QueueDrops, st.Redials, st.Reconnects)
		if st.Wal.Enabled {
			fmt.Fprintf(out, "broker %d wal: appends %d, fsyncs %d, bytes %d, replayed flights %d, checkpoints %d\n",
				b.ID(), st.Wal.Appends, st.Wal.Fsyncs, st.Wal.Bytes,
				st.Wal.ReplayedFlights, st.Wal.Checkpoints)
		}
	}
	fmt.Fprintf(out, "delivery: %d packets to %d subscribers in %v — exactly once\n",
		*packets, len(cols), elapsed.Round(time.Millisecond))

	if err := ov.closeAll(); err != nil {
		return err
	}
	for _, b := range ov.brokers {
		if g := b.Goroutines(); g != 0 {
			fmt.Fprintf(out, "FAIL: broker %d leaked %d goroutines\n", b.ID(), g)
			failed = true
		}
		if works, flights, frames := b.PoolsLive(); works+flights+frames != 0 {
			fmt.Fprintf(out, "FAIL: broker %d leaked pooled objects (works=%d flights=%d frames=%d)\n",
				b.ID(), works, flights, frames)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("soak failed")
	}
	return nil
}

// overlay is the running broker set plus everything needed to restart one.
type overlay struct {
	brokers   []*broker.Broker
	addrs     []string
	neighbors []map[int]string
	dataRoot  string // per-broker WAL directories live under it; "" = memory
	closeOnce sync.Once
	closeErr  error
}

// dataDir returns broker id's WAL directory ("" in memory mode). Restarts
// reuse the same directory so recovery replays across the crash.
func (ov *overlay) dataDir(id int) string {
	if ov.dataRoot == "" {
		return ""
	}
	return filepath.Join(ov.dataRoot, fmt.Sprintf("broker-%d", id))
}

// buildOverlay starts n brokers on a chord-augmented ring (degree 3: no
// single broker loss disconnects it), every listener chaos-wrapped.
func buildOverlay(cn *chaos.Network, n int, dataRoot string) (*overlay, error) {
	listeners := make([]net.Listener, n)
	ov := &overlay{addrs: make([]string, n), neighbors: make([]map[int]string, n), dataRoot: dataRoot}
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		ov.addrs[i] = ln.Addr().String()
		ov.neighbors[i] = make(map[int]string)
	}
	link := func(a, b int) {
		ov.neighbors[a][b] = ov.addrs[b]
		ov.neighbors[b][a] = ov.addrs[a]
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n/2; i++ {
		link(i, i+n/2)
	}
	for i := 0; i < n; i++ {
		b, err := broker.New(brokerConfig(i, ov.addrs[i], ov.neighbors[i], ov.dataDir(i)))
		if err != nil {
			return nil, err
		}
		if err := b.StartListener(cn.Listener(listeners[i], i)); err != nil {
			return nil, err
		}
		ov.brokers = append(ov.brokers, b)
	}
	return ov, nil
}

func brokerConfig(id int, addr string, neighbors map[int]string, dataDir string) broker.Config {
	return broker.Config{
		DataDir:         dataDir,
		ID:              id,
		Listen:          addr,
		Neighbors:       neighbors,
		PingInterval:    20 * time.Millisecond,
		AdvertInterval:  40 * time.Millisecond,
		DialRetry:       20 * time.Millisecond,
		DialRetryMax:    250 * time.Millisecond,
		AckGuard:        40 * time.Millisecond,
		MaxLifetime:     2 * time.Minute,
		Persistent:      true,
		RetryInterval:   50 * time.Millisecond,
		DefaultDeadline: 30 * time.Second,
	}
}

// restart rebinds the crashed broker's address and rejoins the overlay.
func (ov *overlay) restart(cn *chaos.Network, id int) error {
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", ov.addrs[id])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rebinding %s: %w", ov.addrs[id], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b, err := broker.New(brokerConfig(id, ov.addrs[id], ov.neighbors[id], ov.dataDir(id)))
	if err != nil {
		return err
	}
	if err := b.StartListener(cn.Listener(ln, id)); err != nil {
		return err
	}
	ov.brokers[id] = b
	return nil
}

// awaitRoutes waits until broker 0 reports a live sending list for every
// subscriber broker, via the public stats protocol.
func (ov *overlay) awaitRoutes(subAt []int, timeout time.Duration) error {
	mon, err := broker.Dial(ov.addrs[0], "routes-probe")
	if err != nil {
		return err
	}
	defer mon.Close()
	ok := waitUntil(timeout, func() bool {
		reply, err := mon.Stats(2 * time.Second)
		if err != nil {
			return false
		}
		ready := 0
		for _, rt := range reply.Routes {
			for _, at := range subAt {
				if rt.Topic == topic && rt.Sub == int32(at) && rt.ListLen > 0 {
					ready++
				}
			}
		}
		return ready == len(subAt)
	})
	if !ok {
		return fmt.Errorf("routes to subscriber brokers %v never formed", subAt)
	}
	return nil
}

// poolsDrained reports whether every broker's engine pools are back to zero.
func (ov *overlay) poolsDrained() bool {
	for _, b := range ov.brokers {
		if works, flights, frames := b.PoolsLive(); works+flights+frames != 0 {
			return false
		}
	}
	return true
}

// closeAll shuts every broker down once; later calls return the first error.
func (ov *overlay) closeAll() error {
	ov.closeOnce.Do(func() {
		for _, b := range ov.brokers {
			if err := b.Close(); err != nil && ov.closeErr == nil {
				ov.closeErr = err
			}
		}
	})
	return ov.closeErr
}

// collector counts per-sequence deliveries for one subscriber.
type collector struct {
	mu  sync.Mutex
	got map[uint32]int
}

func newCollector(c *broker.Client) *collector {
	col := &collector{got: make(map[uint32]int)}
	go func() {
		for d := range c.Receive() {
			if len(d.Payload) != 4 {
				continue
			}
			seq := binary.BigEndian.Uint32(d.Payload)
			col.mu.Lock()
			col.got[seq]++
			col.mu.Unlock()
		}
	}()
	return col
}

// have reports whether every sequence in [0, n) arrived at least once.
func (col *collector) have(n int) bool {
	col.mu.Lock()
	defer col.mu.Unlock()
	for s := 0; s < n; s++ {
		if col.got[uint32(s)] == 0 {
			return false
		}
	}
	return true
}

// missing counts sequences below n that never arrived.
func (col *collector) missing(n int) int {
	col.mu.Lock()
	defer col.mu.Unlock()
	m := 0
	for s := 0; s < n; s++ {
		if col.got[uint32(s)] == 0 {
			m++
		}
	}
	return m
}

// duplicates returns sequences delivered more than once.
func (col *collector) duplicates() []uint32 {
	col.mu.Lock()
	defer col.mu.Unlock()
	var d []uint32
	for s, c := range col.got {
		if c > 1 {
			d = append(d, s)
		}
	}
	return d
}

// deliveryReport summarizes shortfalls for error messages.
func deliveryReport(cols []*collector, n int) string {
	s := ""
	for i, col := range cols {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("sub %d missing %d/%d", i, col.missing(n), n)
	}
	return s
}

// waitUntil polls cond every 20ms until it holds or timeout passes.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// Command dcrd-pub publishes messages on a topic through a live DCRD
// broker, either a single message or a periodic feed.
//
//	dcrd-pub -broker localhost:7000 -topic 5 -message "hello"
//	dcrd-pub -broker localhost:7000 -topic 5 -every 1s -count 60
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/broker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcrd-pub: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fs := flag.NewFlagSet("dcrd-pub", flag.ContinueOnError)
	var (
		addr     = fs.String("broker", "localhost:7000", "broker address")
		topic    = fs.Int("topic", 0, "topic to publish on")
		message  = fs.String("message", "", "message payload (default: sequence numbers)")
		deadline = fs.Duration("deadline", 0, "QoS delay requirement (0 = broker default)")
		every    = fs.Duration("every", 0, "publish periodically at this interval (0 = once)")
		count    = fs.Int("count", 0, "stop after this many periodic messages (0 = forever)")
		name     = fs.String("name", "dcrd-pub", "client name")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	c, err := broker.Dial(*addr, *name)
	if err != nil {
		return err
	}
	defer c.Close()

	payload := func(i int) []byte {
		if *message != "" {
			return []byte(*message)
		}
		return []byte(fmt.Sprintf("msg-%d", i))
	}

	if *every <= 0 {
		if err := c.Publish(int32(*topic), *deadline, payload(0)); err != nil {
			return err
		}
		log.Printf("published 1 message on topic %d via %s", *topic, *addr)
		// Give the broker a beat to route before the TCP teardown.
		time.Sleep(100 * time.Millisecond)
		return nil
	}

	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	sent := 0
	for range ticker.C {
		if err := c.Publish(int32(*topic), *deadline, payload(sent)); err != nil {
			return err
		}
		sent++
		if *count > 0 && sent >= *count {
			break
		}
	}
	log.Printf("published %d messages on topic %d via %s", sent, *topic, *addr)
	time.Sleep(100 * time.Millisecond)
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestRunCustomScenario(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-duration", "5s", "-topologies", "1", "-nodes", "10", "-degree", "4", "-pf", "0.05",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Scenario:", "DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-figure", "6", "-duration", "5s", "-topologies", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Errorf("output missing figure title:\n%s", sb.String())
	}
}

func TestRunFigureCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-figure", "6", "-duration", "5s", "-topologies", "1", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "QoS Req,DCRD,") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunFigureChart(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-figure", "6", "-duration", "5s", "-topologies", "1", "-chart"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "* DCRD") {
		t.Errorf("chart legend missing:\n%s", sb.String())
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "42"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunRejectsUnknownExtension(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-extension", "bogus"}, &sb); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nodes", "1", "-duration", "5s", "-topologies", "1"}, &sb); err == nil {
		t.Error("1-node scenario accepted")
	}
}

// Command dcrdsim regenerates the paper's evaluation figures (Fig. 2–8) or
// runs a custom scenario.
//
// Regenerate a figure at laptop scale (short runs, 2 topologies):
//
//	dcrdsim -figure 2
//
// Regenerate at the paper's full scale (2 h simulated, 10 topologies):
//
//	dcrdsim -figure 2 -full
//
// Run a custom scenario:
//
//	dcrdsim -nodes 40 -degree 6 -pf 0.08 -duration 5m
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dcrdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dcrdsim", flag.ContinueOnError)
	var (
		figure     = fs.Int("figure", 0, "paper figure to regenerate (2-8); 0 runs a custom scenario")
		extension  = fs.String("extension", "", "extension experiment: ordering | nodefail | persistency | congestion")
		full       = fs.Bool("full", false, "use the paper's full scale (2h x 10 topologies)")
		duration   = fs.Duration("duration", time.Minute, "simulated publishing time per run")
		topologies = fs.Int("topologies", 2, "random topologies to average over")
		seed       = fs.Uint64("seed", 1, "experiment seed")
		nodes      = fs.Int("nodes", 20, "overlay size (custom scenario)")
		degree     = fs.Int("degree", 0, "node degree; 0 = full mesh (custom scenario)")
		pf         = fs.Float64("pf", 0.06, "link failure probability (custom scenario)")
		pl         = fs.Float64("pl", 1e-4, "packet loss rate (custom scenario)")
		m          = fs.Int("m", 1, "transmissions per link before failover (custom scenario)")
		factor     = fs.Float64("deadline-factor", 3, "deadline as multiple of shortest-path delay")
		chart      = fs.Bool("chart", false, "render figure panels as ASCII charts")
		csvOut     = fs.Bool("csv", false, "emit figure panels as CSV instead of tables")
		traceN     = fs.Int("trace", 0, "print routing timelines of the N most eventful packets (DCRD, custom scenario only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *extension != "" {
		fn, ok := experiment.Extensions()[*extension]
		if !ok {
			return fmt.Errorf("unknown extension %q (have %v)", *extension, experiment.ExtensionNames())
		}
		opts := experiment.FigureOptions{
			Duration:   duration.String(),
			Topologies: *topologies,
			Seed:       *seed,
		}
		fmt.Fprintf(out, "Running extension experiment %q (duration %s, %d topologies, seed %d)...\n\n",
			*extension, opts.Duration, opts.Topologies, opts.Seed)
		tables, err := fn(opts)
		if err != nil {
			return err
		}
		return emitTables(out, tables, *chart, *csvOut)
	}

	if *figure != 0 {
		fn, ok := experiment.Figures()[*figure]
		if !ok {
			return fmt.Errorf("unknown figure %d (have 2-8)", *figure)
		}
		opts := experiment.FigureOptions{
			Duration:   duration.String(),
			Topologies: *topologies,
			Seed:       *seed,
		}
		if *full {
			opts = experiment.FullOptions()
			opts.Seed = *seed
		}
		fmt.Fprintf(out, "Regenerating Figure %d (duration %s, %d topologies, seed %d)...\n\n",
			*figure, opts.Duration, opts.Topologies, opts.Seed)
		tables, err := fn(opts)
		if err != nil {
			return err
		}
		return emitTables(out, tables, *chart, *csvOut)
	}

	s := experiment.DefaultScenario()
	s.Nodes = *nodes
	s.Degree = *degree
	s.Pf = *pf
	s.Pl = *pl
	s.M = *m
	s.DeadlineFactor = *factor
	s.Duration = *duration
	s.Topologies = *topologies
	s.Seed = *seed

	fmt.Fprintf(out, "Scenario: %d nodes, degree %s, Pf=%g, Pl=%g, m=%d, deadline %gx, %v x %d topologies\n\n",
		s.Nodes, degreeLabel(s.Degree), s.Pf, s.Pl, s.M, s.DeadlineFactor, s.Duration, s.Topologies)

	if *traceN > 0 {
		return runTraced(out, s, *traceN)
	}

	aggs, err := experiment.Run(s, experiment.AllApproaches())
	if err != nil {
		return err
	}
	sort.SliceStable(aggs, func(i, j int) bool { return aggs[i].Approach < aggs[j].Approach })
	fmt.Fprintf(out, "%-10s %16s %16s %18s\n", "approach", "delivery ratio", "QoS ratio", "pkts/subscriber")
	for _, a := range aggs {
		fmt.Fprintf(out, "%-10s %16.4f %16.4f %18.3f\n",
			a.Approach, a.MeanDeliveryRatio(), a.MeanQoSRatio(), a.MeanPacketsPerSubscriber())
	}
	return nil
}

func degreeLabel(d int) string {
	if d == 0 {
		return "full-mesh"
	}
	return fmt.Sprint(d)
}

// runTraced runs DCRD alone with tracing and prints the timelines of the
// n packets with the most routing events — the ones that hit failures.
func runTraced(out io.Writer, s experiment.Scenario, n int) error {
	buf := &trace.Buffer{Limit: 1 << 20}
	s.Tracer = buf
	s.Topologies = 1
	res, err := experiment.RunOne(s, experiment.DCRD, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "DCRD: delivery %.4f, QoS %.4f, %d packets traced\n\n",
		res.DeliveryRatio(), res.QoSDeliveryRatio(), len(buf.Packets()))
	sum := buf.Summarize()
	fmt.Fprintf(out, "events: %d sends, %d handoffs, %d timeouts, %d failovers, %d reroutes, %d drops\n\n",
		sum.ByKind[trace.Send], sum.ByKind[trace.Handoff], sum.ByKind[trace.Timeout],
		sum.Failovers, sum.Reroutes, sum.ByKind[trace.Drop])

	type scored struct {
		id     uint64
		events int
	}
	var ranked []scored
	for _, id := range buf.Packets() {
		ranked = append(ranked, scored{id: id, events: len(buf.ForPacket(id))})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].events != ranked[j].events {
			return ranked[i].events > ranked[j].events
		}
		return ranked[i].id < ranked[j].id
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Fprintf(out, "%d most eventful packets:\n\n", n)
	for _, r := range ranked[:n] {
		if err := buf.WriteTimeline(out, r.id); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// emitTables prints figure panels as aligned tables (default), ASCII charts
// (-chart) or CSV (-csv).
func emitTables(out io.Writer, tables []experiment.FigureTable, chart, csvOut bool) error {
	for i := range tables {
		switch {
		case csvOut:
			if _, err := fmt.Fprintf(out, "# %s\n", tables[i].Title); err != nil {
				return err
			}
			if err := tables[i].WriteCSV(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		case chart:
			rendered, err := tables[i].Chart()
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(out, rendered); err != nil {
				return err
			}
		default:
			if err := tables[i].Format(out); err != nil {
				return err
			}
		}
	}
	return nil
}

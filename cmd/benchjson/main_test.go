package main

import (
	"strings"
	"testing"
)

const sampleRun = `goos: linux
BenchmarkApproachDCRD-8   	       2	   9500000 ns/op	  123456 B/op	    1000 allocs/op	         0.950 qos_ratio
BenchmarkApproachDCRD-8   	       2	   9700000 ns/op	  123456 B/op	    1000 allocs/op	         0.952 qos_ratio
BenchmarkBrokerForwardTCP-8 	       2	  10000000 ns/op	    100000 msgs/sec	 3000000 B/op	   36000 allocs/op
PASS
`

func TestParseBenchAveragesRunsAndMetrics(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	dcrd, ok := results["BenchmarkApproachDCRD"]
	if !ok {
		t.Fatalf("missing BenchmarkApproachDCRD in %v", results)
	}
	if dcrd.Runs != 2 || dcrd.NsPerOp != 9600000 {
		t.Errorf("DCRD mean: runs=%d ns=%v, want 2 runs at 9.6ms", dcrd.Runs, dcrd.NsPerOp)
	}
	if got := dcrd.Metrics["qos_ratio"]; got < 0.95 || got > 0.952 {
		t.Errorf("qos_ratio mean = %v", got)
	}
	fwd := results["BenchmarkBrokerForwardTCP"]
	if fwd.Metrics["msgs/sec"] != 100000 {
		t.Errorf("msgs/sec = %v, want 100000", fwd.Metrics["msgs/sec"])
	}
}

// TestCheckThroughputRegression pins the broker gate: a >20% drop in a
// "/sec" metric fails -check even when ns/op stays flat.
func TestCheckThroughputRegression(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkBrokerForwardTCP": {
			NsPerOp: 10000000,
			Metrics: map[string]float64{"msgs/sec": 100000},
		},
	}
	healthy := map[string]Result{
		"BenchmarkBrokerForwardTCP": {
			NsPerOp: 10500000,
			Metrics: map[string]float64{"msgs/sec": 95000},
		},
	}
	var out strings.Builder
	if !check(&out, healthy, baseline, 0.20) {
		t.Errorf("healthy run failed check:\n%s", out.String())
	}
	slow := map[string]Result{
		"BenchmarkBrokerForwardTCP": {
			NsPerOp: 10000000,
			Metrics: map[string]float64{"msgs/sec": 70000},
		},
	}
	out.Reset()
	if check(&out, slow, baseline, 0.20) {
		t.Errorf("30%% throughput drop passed check:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "msgs/sec") {
		t.Errorf("failure report does not name the metric:\n%s", out.String())
	}
}

// TestCheckBytesRegression pins the allocation gate: a >30% B/op growth
// fails -check even when ns/op and throughput stay flat, while runs that
// didn't measure allocations (B/op 0 on either side) are never gated.
func TestCheckBytesRegression(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkBrokerForwardTCP": {NsPerOp: 10000000, BytesOp: 100000},
	}
	var out strings.Builder
	grown := map[string]Result{
		"BenchmarkBrokerForwardTCP": {NsPerOp: 10000000, BytesOp: 125000},
	}
	if !check(&out, grown, baseline, 0.20) {
		t.Errorf("25%% B/op growth failed check:\n%s", out.String())
	}
	out.Reset()
	bloated := map[string]Result{
		"BenchmarkBrokerForwardTCP": {NsPerOp: 10000000, BytesOp: 140000},
	}
	if check(&out, bloated, baseline, 0.20) {
		t.Errorf("40%% B/op growth passed check:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B/op") {
		t.Errorf("failure report does not name B/op:\n%s", out.String())
	}
	out.Reset()
	noMem := map[string]Result{
		"BenchmarkBrokerForwardTCP": {NsPerOp: 10000000},
	}
	if !check(&out, noMem, baseline, 0.20) {
		t.Errorf("run without -benchmem tripped the B/op gate:\n%s", out.String())
	}
	out.Reset()
	zeroBase := map[string]Result{
		"BenchmarkBrokerForwardTCP": {NsPerOp: 10000000},
	}
	if !check(&out, bloated, zeroBase, 0.20) {
		t.Errorf("baseline without B/op tripped the gate:\n%s", out.String())
	}
}

// TestCheckRequired pins the -require rule: a required benchmark prefix
// missing from the run fails the check (the regression gate alone treats
// absences as "new", so a gated benchmark could otherwise vanish silently).
func TestCheckRequired(t *testing.T) {
	results := map[string]Result{
		"BenchmarkBrokerSharded/cpus=8": {NsPerOp: 100},
	}
	var out strings.Builder
	if !checkRequired(&out, results, "BenchmarkBrokerSharded/cpus=8") {
		t.Errorf("present benchmark reported missing:\n%s", out.String())
	}
	out.Reset()
	if checkRequired(&out, map[string]Result{"BenchmarkOther": {NsPerOp: 1}}, "BenchmarkBrokerSharded/cpus=8") {
		t.Error("missing required benchmark passed check")
	}
	if !strings.Contains(out.String(), "MISS") || !strings.Contains(out.String(), "BenchmarkBrokerSharded/cpus=8") {
		t.Errorf("failure report does not name the missing benchmark:\n%s", out.String())
	}
	out.Reset()
	if !checkRequired(&out, map[string]Result{}, "") {
		t.Error("empty -require failed check")
	}
	// Prefix semantics: requiring the parent name is satisfied by sub-runs.
	out.Reset()
	if !checkRequired(&out, results, "BenchmarkBrokerSharded") {
		t.Errorf("prefix match failed:\n%s", out.String())
	}
}

// loadgenLine is the summary dcrd-loadgen prints; parseBench must ingest it
// like any testing.B line, keeping the percentile metrics by unit.
const loadgenLine = "BenchmarkEdgeLoadgen/subs=1000/sessions=8 1 812345 ns/op 159320.0 deliveries/sec 0.610 p50_ms 1.200 p90_ms 4.500 p99_ms 9.100 p999_ms 0.9990 delivered_ratio\n"

func TestParseBenchLoadgenLine(t *testing.T) {
	results, err := parseBench(strings.NewReader(loadgenLine))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := results["BenchmarkEdgeLoadgen/subs=1000/sessions=8"]
	if !ok {
		t.Fatalf("benchmark missing from parse: %v", results)
	}
	if r.NsPerOp != 812345 {
		t.Errorf("ns/op = %v, want 812345", r.NsPerOp)
	}
	for unit, want := range map[string]float64{
		"deliveries/sec":  159320.0,
		"p50_ms":          0.610,
		"p99_ms":          4.500,
		"delivered_ratio": 0.9990,
	} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
}

func TestIsLatencyUnit(t *testing.T) {
	for unit, want := range map[string]bool{
		"p50_ms":          true,
		"p90_ms":          true,
		"p999_us":         true,
		"p99_ns":          true,
		"p50_s":           true,
		"deliveries/sec":  false,
		"delivered_ratio": false,
		"p_ms":            false, // no digits
		"pxx_ms":          false, // non-numeric
		"p50_kg":          false, // unknown suffix
		"q50_ms":          false, // wrong prefix
	} {
		if got := isLatencyUnit(unit); got != want {
			t.Errorf("isLatencyUnit(%q) = %v, want %v", unit, got, want)
		}
	}
}

// TestCheckLatencyGate pins the lower-is-better direction of the percentile
// gate: a rising p99 fails, a falling p99 passes, and the "/sec" gate keeps
// its falling-fails direction alongside it.
func TestCheckLatencyGate(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkEdgeLoadgen": {
			NsPerOp: 1000,
			Metrics: map[string]float64{"p99_ms": 4.0, "deliveries/sec": 100000},
		},
	}
	cases := []struct {
		name string
		cur  Result
		ok   bool
	}{
		{"unchanged", Result{NsPerOp: 1000, Metrics: map[string]float64{"p99_ms": 4.0, "deliveries/sec": 100000}}, true},
		{"latency_improves", Result{NsPerOp: 1000, Metrics: map[string]float64{"p99_ms": 1.0, "deliveries/sec": 100000}}, true},
		{"latency_regresses", Result{NsPerOp: 1000, Metrics: map[string]float64{"p99_ms": 6.0, "deliveries/sec": 100000}}, false},
		{"throughput_falls", Result{NsPerOp: 1000, Metrics: map[string]float64{"p99_ms": 4.0, "deliveries/sec": 10000}}, false},
		{"throughput_rises", Result{NsPerOp: 1000, Metrics: map[string]float64{"p99_ms": 4.0, "deliveries/sec": 500000}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			results := map[string]Result{"BenchmarkEdgeLoadgen": tc.cur}
			if got := check(&out, results, baseline, 0.20); got != tc.ok {
				t.Errorf("check = %v, want %v\n%s", got, tc.ok, out.String())
			}
		})
	}
}

// TestCheckNsRegressionStillFails keeps the original ns/op rule intact.
func TestCheckNsRegressionStillFails(t *testing.T) {
	baseline := map[string]Result{"BenchmarkX": {NsPerOp: 100}}
	var out strings.Builder
	if check(&out, map[string]Result{"BenchmarkX": {NsPerOp: 130}}, baseline, 0.20) {
		t.Errorf("30%% ns/op regression passed check:\n%s", out.String())
	}
	out.Reset()
	if !check(&out, map[string]Result{"BenchmarkX": {NsPerOp: 110}}, baseline, 0.20) {
		t.Errorf("10%% ns/op increase failed check:\n%s", out.String())
	}
	out.Reset()
	if !check(&out, map[string]Result{"BenchmarkNew": {NsPerOp: 5}}, baseline, 0.20) {
		t.Errorf("benchmark absent from baseline failed check:\n%s", out.String())
	}
}
